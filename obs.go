package dissent

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"

	"dissent/internal/obs"
)

// RoundTrace is one DC-net round's span record — where the round's
// latency went, phase by phase. Servers fill every phase; clients see
// the round end-to-end. See Session.RecentTraces and the /debug/rounds
// endpoint of Host.DebugHandler.
type RoundTrace = obs.RoundTrace

// sessionHists is the per-session phase-latency state behind the
// dissent_round_phase_seconds histogram family. It exists only for the
// Prometheus exposition: scalar counters come from the same
// SessionMetrics snapshot the expvar endpoint serves, but histograms
// need per-observation bucketing no snapshot can reconstruct.
type sessionHists struct {
	window, pad, combine, certify, blame, total *obs.Histogram
	stragglers                                  obs.Counter

	// byDepth buckets round total latency by the pipeline occupancy at
	// the round's start (the dissent_round_duration_by_depth_seconds
	// family): under WithPipelineDepth it separates overlapped rounds
	// from drain/ramp rounds. Guarded by mu because scrapes read it
	// concurrently with the engine goroutine creating entries; the
	// histograms themselves are atomic.
	mu      sync.Mutex
	byDepth map[int]*obs.Histogram
}

func newSessionHists() *sessionHists {
	h := func() *obs.Histogram { return obs.NewHistogram(obs.LatencyBuckets...) }
	return &sessionHists{
		window: h(), pad: h(), combine: h(), certify: h(), blame: h(), total: h(),
		byDepth: make(map[int]*obs.Histogram),
	}
}

// depthHist returns the latency histogram for pipeline occupancy d,
// creating it on first use.
func (sh *sessionHists) depthHist(d int) *obs.Histogram {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h := sh.byDepth[d]
	if h == nil {
		h = obs.NewHistogram(obs.LatencyBuckets...)
		sh.byDepth[d] = h
	}
	return h
}

// depths returns the per-occupancy histograms in ascending depth order.
func (sh *sessionHists) depths() (out []struct {
	depth int
	hist  *obs.Histogram
}) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ds := make([]int, 0, len(sh.byDepth))
	for d := range sh.byDepth {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	for _, d := range ds {
		out = append(out, struct {
			depth int
			hist  *obs.Histogram
		}{d, sh.byDepth[d]})
	}
	return out
}

// observe folds one round span into the histograms. Zero durations are
// phases the role did not run (or timed at zero) and are skipped — a
// client's trace must not drag the server-phase histograms to zero.
func (sh *sessionHists) observe(t obs.RoundTrace) {
	if t.Window > 0 {
		sh.window.ObserveDuration(t.Window)
	}
	if t.Pad > 0 {
		sh.pad.ObserveDuration(t.Pad)
	}
	if t.Combine > 0 {
		sh.combine.ObserveDuration(t.Combine)
	}
	if t.Certify > 0 {
		sh.certify.ObserveDuration(t.Certify)
	}
	if t.Total > 0 {
		sh.total.ObserveDuration(t.Total)
		if t.Depth > 0 {
			sh.depthHist(t.Depth).ObserveDuration(t.Total)
		}
	}
	if t.Stragglers > 0 {
		sh.stragglers.Add(uint64(t.Stragglers))
	}
}

// phases lists the histogram per phase label, in exposition order.
func (sh *sessionHists) phases() []struct {
	name string
	hist *obs.Histogram
} {
	return []struct {
		name string
		hist *obs.Histogram
	}{
		{"window", sh.window}, {"pad", sh.pad}, {"combine", sh.combine},
		{"certify", sh.certify}, {"blame", sh.blame}, {"total", sh.total},
	}
}

// promLabels returns the session's identifying label set, matching the
// fields of its SessionMetrics snapshot.
func (s *Session) promLabels() obs.Labels {
	return obs.L("session", s.sid.String(), "group", s.def.Name, "role", s.role.String())
}

func sessionLabels(sm SessionMetrics) obs.Labels {
	return obs.L("session", sm.Session.String(), "group", sm.Group, "role", sm.Role)
}

// MetricsHandler returns an http.Handler serving the host's metrics in
// Prometheus text exposition format (0.0.4): host totals, one series
// per open session for the counter/gauge families, and the per-phase
// round-latency histograms. Scalar families render from the same
// Host.Metrics snapshot the expvar endpoint serves, so the two
// expositions can never disagree.
func (h *Host) MetricsHandler() http.Handler {
	reg := obs.NewRegistry()
	reg.Collect(h.collectMetrics)
	return reg
}

// collectMetrics renders one scrape. It runs on the scrape goroutine;
// everything it touches is either a point-in-time snapshot or atomic.
func (h *Host) collectMetrics(w *obs.Writer) {
	hm := h.Metrics() // one snapshot: the same state expvar serves

	w.Family("dissent_host_uptime_seconds", "gauge", "Seconds since the host was created.")
	w.Sample(nil, hm.Uptime.Seconds())
	w.Family("dissent_sessions_open", "gauge", "Currently open sessions on this host.")
	w.Sample(nil, float64(hm.Sessions))
	w.Family("dissent_sessions_opened_total", "counter", "Sessions opened over the host's lifetime.")
	w.Sample(nil, float64(hm.SessionsOpened))
	w.Family("dissent_sessions_closed_total", "counter", "Sessions closed over the host's lifetime.")
	w.Sample(nil, float64(hm.SessionsClosed))
	w.Family("dissent_host_messages_in_total", "counter", "Protocol messages handled, all sessions ever.")
	w.Sample(nil, float64(hm.MessagesIn))
	w.Family("dissent_host_messages_out_total", "counter", "Protocol messages sent, all sessions ever.")
	w.Sample(nil, float64(hm.MessagesOut))
	w.Family("dissent_host_bytes_in_total", "counter", "Approximate wire bytes handled, all sessions ever.")
	w.Sample(nil, float64(hm.BytesIn))
	w.Family("dissent_host_bytes_out_total", "counter", "Approximate wire bytes sent, all sessions ever.")
	w.Sample(nil, float64(hm.BytesOut))
	w.Family("dissent_host_rounds_completed_total", "counter", "Certified DC-net rounds, all sessions ever.")
	w.Sample(nil, float64(hm.RoundsCompleted))
	w.Family("dissent_host_rounds_failed_total", "counter", "Hard-timeout rounds, all sessions ever.")
	w.Sample(nil, float64(hm.RoundsFailed))

	if hm.Transport != nil {
		w.Family("dissent_transport_dial_failures_total", "counter", "Failed outbound dial attempts on the shared TCP fabric.")
		w.Sample(nil, float64(hm.Transport.DialFailures))
		w.Family("dissent_transport_frames_dropped_total", "counter", "Outbound frames lost to dial or write failures.")
		w.Sample(nil, float64(hm.Transport.FramesDropped))
		w.Family("dissent_transport_peers", "gauge", "Outbound peer connections by health state.")
		counts := map[string]int{}
		for _, p := range hm.Transport.Peers {
			counts[p.State]++
		}
		for _, state := range []string{"dialing", "connected", "failed"} {
			w.Sample(obs.L("state", state), float64(counts[state]))
		}
	}

	perSession := func(name, typ, help string, v func(SessionMetrics) float64) {
		w.Family(name, typ, help)
		for _, sm := range hm.PerSession {
			w.Sample(sessionLabels(sm), v(sm))
		}
	}
	perSession("dissent_uptime_seconds", "gauge", "Seconds since the session attached to its fabric.",
		func(sm SessionMetrics) float64 { return sm.Uptime.Seconds() })
	perSession("dissent_messages_in_total", "counter", "Protocol messages handled by the session.",
		func(sm SessionMetrics) float64 { return float64(sm.MessagesIn) })
	perSession("dissent_messages_out_total", "counter", "Protocol messages sent by the session.",
		func(sm SessionMetrics) float64 { return float64(sm.MessagesOut) })
	perSession("dissent_bytes_in_total", "counter", "Approximate wire bytes handled by the session.",
		func(sm SessionMetrics) float64 { return float64(sm.BytesIn) })
	perSession("dissent_bytes_out_total", "counter", "Approximate wire bytes sent by the session.",
		func(sm SessionMetrics) float64 { return float64(sm.BytesOut) })
	perSession("dissent_rounds_completed_total", "counter", "Certified DC-net rounds observed by the session.",
		func(sm SessionMetrics) float64 { return float64(sm.RoundsCompleted) })
	perSession("dissent_rounds_failed_total", "counter", "Hard-timeout rounds observed by the session.",
		func(sm SessionMetrics) float64 { return float64(sm.RoundsFailed) })
	perSession("dissent_last_round", "gauge", "Most recently certified round number.",
		func(sm SessionMetrics) float64 { return float64(sm.LastRound) })
	perSession("dissent_windows_closed_total", "counter", "Submission-window closures at this server.",
		func(sm SessionMetrics) float64 { return float64(sm.WindowsClosed) })
	perSession("dissent_window_seconds_total", "counter", "Cumulative submission-window time (round start to window close).",
		func(sm SessionMetrics) float64 { return sm.WindowTime.Seconds() })
	perSession("dissent_pad_compute_seconds_total", "counter", "Cumulative critical-path DC-net pad expansion time.",
		func(sm SessionMetrics) float64 { return sm.PadComputeTime.Seconds() })
	perSession("dissent_combine_seconds_total", "counter", "Cumulative combine latency (ciphertext fold + share assembly).",
		func(sm SessionMetrics) float64 { return sm.CombineTime.Seconds() })
	perSession("dissent_churn_joins_total", "counter", "Members admitted by certified roster updates.",
		func(sm SessionMetrics) float64 { return float64(sm.ChurnJoins) })
	perSession("dissent_churn_expels_total", "counter", "Members removed by certified roster updates.",
		func(sm SessionMetrics) float64 { return float64(sm.ChurnExpels) })
	perSession("dissent_roster_version", "gauge", "Current certified roster version.",
		func(sm SessionMetrics) float64 { return float64(sm.RosterVersion) })
	perSession("dissent_state_restores_total", "counter", "Live-session resumes from the durable state store.",
		func(sm SessionMetrics) float64 { return float64(sm.StateRestores) })
	perSession("dissent_replica_resyncs_total", "counter", "Schedule-replica replacements from a certified snapshot.",
		func(sm SessionMetrics) float64 { return float64(sm.ReplicaResyncs) })
	perSession("dissent_pipeline_depth", "gauge", "Configured round pipeline depth (WithPipelineDepth).",
		func(sm SessionMetrics) float64 { return float64(sm.PipelineDepth) })
	perSession("dissent_rounds_in_flight", "gauge", "Current pipeline occupancy: rounds between window open and retirement.",
		func(sm SessionMetrics) float64 { return float64(sm.RoundsInFlight) })
	perSession("dissent_blame_rounds_total", "counter", "Accusation shuffles observed opening (rounds sacrificed to disruptor tracing).",
		func(sm SessionMetrics) float64 { return float64(sm.BlameRounds) })

	w.Family("dissent_misbehavior_observed_total", "counter", "Attributed protocol offenses by kind (EventMisbehavior detail prefix).")
	for _, sm := range hm.PerSession {
		ls := sessionLabels(sm)
		for _, kind := range sortedKinds(sm.Misbehavior) {
			w.Sample(ls.With("kind", kind), float64(sm.Misbehavior[kind]))
		}
	}

	w.Family("dissent_pad_prefetch_total", "counter", "Rounds served from (hit) or without (miss) a prefetched server pad.")
	for _, sm := range hm.PerSession {
		ls := sessionLabels(sm)
		w.Sample(ls.With("result", "hit"), float64(sm.PadPrefetchHits))
		w.Sample(ls.With("result", "miss"), float64(sm.PadPrefetchMisses))
	}

	// Histograms come from live per-session state: phase-latency
	// bucketing cannot be reconstructed from a scalar snapshot.
	sessions := h.Sessions()
	w.Family("dissent_round_phase_seconds", "histogram", "Per-round phase latency: window, pad, combine, certify, blame, total.")
	for _, s := range sessions {
		ls := s.promLabels()
		for _, p := range s.hists.phases() {
			w.Hist(ls.With("phase", p.name), p.hist.Snapshot())
		}
	}
	w.Family("dissent_round_duration_by_depth_seconds", "histogram", "Round total latency by pipeline occupancy at round start.")
	for _, s := range sessions {
		ls := s.promLabels()
		for _, d := range s.hists.depths() {
			w.Hist(ls.With("depth", strconv.Itoa(d.depth)), d.hist.Snapshot())
		}
	}
	w.Family("dissent_round_stragglers_total", "counter", "Expected members the submission window closed without.")
	for _, s := range sessions {
		w.Sample(s.promLabels(), float64(s.hists.stragglers.Value()))
	}
}

// sessionTraces is one session's entry in the /debug/rounds payload.
type sessionTraces struct {
	Session SessionID    `json:"session"`
	Group   string       `json:"group"`
	Role    string       `json:"role"`
	Traces  []RoundTrace `json:"traces"`
}

// DebugHandler returns the host's operator/debug mux:
//
//	/metrics       Prometheus text exposition (see MetricsHandler)
//	/metrics.json  the same snapshot as JSON, expvar style
//	/debug/rounds  recent per-round span records, JSON (?n= limit)
//	/debug/pprof/  the standard runtime profiles
//	/roster        every session's certified roster snapshot
//
// cmd/dissentd serves it on the -metrics address.
func (h *Host) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", h.MetricsHandler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, h.Metrics())
	})
	mux.HandleFunc("/debug/rounds", func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		out := []sessionTraces{}
		for _, s := range h.Sessions() {
			out = append(out, sessionTraces{
				Session: s.sid,
				Group:   s.def.Name,
				Role:    s.role.String(),
				Traces:  s.RecentTraces(n),
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/roster", func(w http.ResponseWriter, r *http.Request) {
		infos := []RosterInfo{}
		for _, s := range h.Sessions() {
			infos = append(infos, s.RosterInfo())
		}
		writeJSON(w, infos)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// sortedKinds returns a misbehavior map's keys in stable order, so the
// exposition does not jitter between scrapes.
func sortedKinds(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
