// Package dissentcfg holds the on-disk formats of the Dissent SDK:
// key files (one per participant), group definition files (whose hash
// is the group's self-certifying identifier), and transport rosters.
// Generate produces a complete group's material in one call — the
// programmatic form of cmd/keygen.
package dissentcfg

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/big"
	"os"

	"dissent"
	"dissent/internal/crypto"
	"dissent/internal/group"
)

// KeyFile is the on-disk form of a participant's private keys.
type KeyFile struct {
	Role       string `json:"role"` // "server" or "client"
	Private    string `json:"private"`
	Public     string `json:"public"`
	MsgPrivate string `json:"msgprivate,omitempty"`
	MsgPublic  string `json:"msgpublic,omitempty"`
}

// WriteKeyFile stores a key file with private-key permissions.
func WriteKeyFile(path string, kf KeyFile) error {
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// SaveKeys writes a member's keys as a key file: servers carry both
// the identity and message-shuffle keypairs, clients only the former.
func SaveKeys(path string, keys dissent.Keys) error {
	if keys.Identity == nil {
		return fmt.Errorf("dissentcfg: keys lack an identity keypair")
	}
	keyGrp := crypto.P256()
	kf := KeyFile{
		Role:    "client",
		Private: keys.Identity.Private.Text(16),
		Public:  hex.EncodeToString(keyGrp.Encode(keys.Identity.Public)),
	}
	if keys.MsgShuffle != nil {
		kf.Role = "server"
		kf.MsgPrivate = keys.MsgShuffle.Private.Text(16)
		kf.MsgPublic = hex.EncodeToString(keys.MsgShuffle.Group.Encode(keys.MsgShuffle.Public))
	}
	return WriteKeyFile(path, kf)
}

// LoadKeys parses a key file. The group definition supplies the
// message-shuffle group for server files; client files (no message
// key) load with grp == nil too.
func LoadKeys(path string, grp *dissent.Group) (dissent.Keys, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return dissent.Keys{}, err
	}
	var kf KeyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return dissent.Keys{}, fmt.Errorf("parse %s: %w", path, err)
	}
	keyGrp := crypto.P256()
	priv, ok := new(big.Int).SetString(kf.Private, 16)
	if !ok {
		return dissent.Keys{}, fmt.Errorf("bad private key in %s", path)
	}
	keys := dissent.Keys{
		Identity: &crypto.KeyPair{Group: keyGrp, Private: priv, Public: keyGrp.BaseMult(priv)},
	}
	if kf.MsgPrivate != "" && grp != nil {
		msgGrp := grp.MsgGroup()
		mpriv, ok := new(big.Int).SetString(kf.MsgPrivate, 16)
		if !ok {
			return dissent.Keys{}, fmt.Errorf("bad msg private key in %s", path)
		}
		keys.MsgShuffle = &crypto.KeyPair{Group: msgGrp, Private: mpriv, Public: msgGrp.BaseMult(mpriv)}
	}
	return keys, nil
}

// LoadGroup parses and validates a group definition file.
func LoadGroup(path string) (*dissent.Group, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var def dissent.Group
	if err := json.Unmarshal(data, &def); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("invalid group in %s: %w", path, err)
	}
	return &def, nil
}

// SaveGroup writes a group definition file (canonical encoding, so
// the file's hash is the group ID every member agrees on).
func SaveGroup(path string, grp *dissent.Group) error {
	data, err := grp.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadRoster parses a roster file: a JSON object mapping hex node IDs
// to dialable addresses.
func LoadRoster(path string) (dissent.Roster, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	roster := dissent.Roster{}
	for idHex, addr := range raw {
		rawID, err := hex.DecodeString(idHex)
		if err != nil || len(rawID) != 8 {
			return nil, fmt.Errorf("bad node ID %q in %s", idHex, path)
		}
		var id group.NodeID
		copy(id[:], rawID)
		roster[id] = addr
	}
	return roster, nil
}

// WriteRoster stores a roster file.
func WriteRoster(path string, roster dissent.Roster) error {
	raw := map[string]string{}
	for id, addr := range roster {
		raw[id.String()] = addr
	}
	data, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
