package dissentcfg

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dissent"
)

// GenerateConfig sizes a fresh group's material.
type GenerateConfig struct {
	// Name is the group name ("" = "dissent-group").
	Name string
	// Servers and Clients count the members.
	Servers, Clients int
	// MessageGroup names the message-shuffle group ("" = "modp-2048").
	MessageGroup string
	// BeaconEpochRounds sets the beacon epoch length in rounds; 0
	// disables the beacon, negative keeps the policy default.
	BeaconEpochRounds int
	// BasePort is the first port of the localhost roster template
	// (0 = 7000).
	BasePort int
	// Policy, when non-nil, replaces the default policy wholesale before
	// the MessageGroup/BeaconEpochRounds overrides above apply. Scenario
	// harnesses use it to generate groups under test-grade policies
	// (small message groups, short windows).
	Policy *dissent.Policy
}

// Generate creates a complete group in dir: one key file per member
// (server-N.key / client-N.key, written in definition order so file N
// pairs with the N-th roster address), group.json, and a localhost
// roster.json template. It returns the group definition.
func Generate(dir string, cfg GenerateConfig) (*dissent.Group, error) {
	if cfg.Servers <= 0 {
		return nil, errors.New("dissentcfg: need at least one server")
	}
	if cfg.Clients <= 0 {
		return nil, errors.New("dissentcfg: need at least one client")
	}
	if cfg.Name == "" {
		cfg.Name = "dissent-group"
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 7000
	}
	policy := dissent.DefaultPolicy()
	if cfg.Policy != nil {
		policy = *cfg.Policy
	}
	if cfg.MessageGroup != "" {
		policy.MessageGroup = cfg.MessageGroup
	}
	if cfg.BeaconEpochRounds >= 0 {
		policy.BeaconEpochRounds = cfg.BeaconEpochRounds
	}

	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	serverKeys := make([]dissent.Keys, cfg.Servers)
	clientKeys := make([]dissent.Keys, cfg.Clients)
	var err error
	for i := range serverKeys {
		if serverKeys[i], err = dissent.GenerateServerKeys(policy); err != nil {
			return nil, err
		}
	}
	for i := range clientKeys {
		if clientKeys[i], err = dissent.GenerateClientKeys(); err != nil {
			return nil, err
		}
	}
	grp, err := dissent.NewGroup(cfg.Name, serverKeys, clientKeys, policy)
	if err != nil {
		return nil, err
	}

	// Write key files in *definition* order (NewGroup sorts members by
	// ID), so server-i.key is grp.Servers[i] and lines up with the i-th
	// roster address below.
	keyGrp := grp.Group()
	byPub := map[string]dissent.Keys{}
	for _, k := range serverKeys {
		byPub[string(keyGrp.Encode(k.Identity.Public))] = k
	}
	for _, k := range clientKeys {
		byPub[string(keyGrp.Encode(k.Identity.Public))] = k
	}
	for i, m := range grp.Servers {
		path := filepath.Join(dir, fmt.Sprintf("server-%d.key", i))
		if err := SaveKeys(path, byPub[string(keyGrp.Encode(m.PubKey))]); err != nil {
			return nil, err
		}
	}
	for i, m := range grp.Clients {
		path := filepath.Join(dir, fmt.Sprintf("client-%d.key", i))
		if err := SaveKeys(path, byPub[string(keyGrp.Encode(m.PubKey))]); err != nil {
			return nil, err
		}
	}
	if err := SaveGroup(filepath.Join(dir, "group.json"), grp); err != nil {
		return nil, err
	}

	// Roster template: localhost addresses in member order.
	roster := dissent.Roster{}
	port := cfg.BasePort
	for _, m := range grp.Servers {
		roster[m.ID] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	for _, m := range grp.Clients {
		roster[m.ID] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	if err := WriteRoster(filepath.Join(dir, "roster.json"), roster); err != nil {
		return nil, err
	}
	return grp, nil
}
