package dissentcfg

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dissent"
)

func testPolicy() dissent.Policy {
	p := dissent.DefaultPolicy()
	p.MessageGroup = "modp-512-test"
	return p
}

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	policy := testPolicy()
	sk, err := dissent.GenerateServerKeys(policy)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := dissent.GenerateClientKeys()
	if err != nil {
		t.Fatal(err)
	}
	grp, err := dissent.NewGroup("cfg-test", []dissent.Keys{sk}, []dissent.Keys{ck}, policy)
	if err != nil {
		t.Fatal(err)
	}

	sPath := filepath.Join(dir, "server.key")
	if err := SaveKeys(sPath, sk); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKeys(sPath, grp)
	if err != nil {
		t.Fatal(err)
	}
	keyGrp := grp.Group()
	if !keyGrp.Equal(got.Identity.Public, sk.Identity.Public) {
		t.Error("identity key changed through the file round trip")
	}
	if got.MsgShuffle == nil || !grp.MsgGroup().Equal(got.MsgShuffle.Public, sk.MsgShuffle.Public) {
		t.Error("message-shuffle key changed through the file round trip")
	}

	cPath := filepath.Join(dir, "client.key")
	if err := SaveKeys(cPath, ck); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadKeys(cPath, grp)
	if err != nil {
		t.Fatal(err)
	}
	if !keyGrp.Equal(got2.Identity.Public, ck.Identity.Public) {
		t.Error("client identity key changed")
	}
	if got2.MsgShuffle != nil {
		t.Error("client key file produced a message-shuffle key")
	}
	// A server file loaded without a group skips the message key.
	got3, err := LoadKeys(sPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got3.MsgShuffle != nil {
		t.Error("nil group should skip the message key")
	}
}

func TestLoadKeysCorruptInputs(t *testing.T) {
	dir := t.TempDir()
	policy := testPolicy()
	sk, _ := dissent.GenerateServerKeys(policy)
	ck, _ := dissent.GenerateClientKeys()
	grp, err := dissent.NewGroup("corrupt-test", []dissent.Keys{sk}, []dissent.Keys{ck}, policy)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		path string
	}{
		{"missing file", filepath.Join(dir, "nope.key")},
		{"not json", write("garbage.key", "{not json at all")},
		{"bad private hex", write("badpriv.key", `{"role":"client","private":"zz-not-hex"}`)},
		{"empty private", write("empty.key", `{"role":"client","private":""}`)},
		{"bad msg private hex", write("badmsg.key",
			`{"role":"server","private":"2a","msgprivate":"not-hex!"}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadKeys(tc.path, grp); err == nil {
				t.Errorf("LoadKeys(%s) accepted corrupt input", tc.path)
			}
		})
	}
}

func TestGroupRoundTripAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	policy := testPolicy()
	var sKeys, cKeys []dissent.Keys
	for i := 0; i < 2; i++ {
		k, _ := dissent.GenerateServerKeys(policy)
		sKeys = append(sKeys, k)
	}
	for i := 0; i < 3; i++ {
		k, _ := dissent.GenerateClientKeys()
		cKeys = append(cKeys, k)
	}
	grp, err := dissent.NewGroup("cfg-test", sKeys, cKeys, policy)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "group.json")
	if err := SaveGroup(path, grp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGroup(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GroupID() != grp.GroupID() {
		t.Error("group ID changed through file round trip")
	}

	if _, err := LoadGroup(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing group accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadGroup(bad); err == nil {
		t.Error("malformed JSON group accepted")
	}
	// Structurally valid JSON that fails validation: no members.
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"name":"x","servers":[],"clients":[],"policy":{"MessageGroup":"modp-512-test"}}`), 0o644)
	if _, err := LoadGroup(empty); err == nil {
		t.Error("memberless group accepted")
	}
	// Definitions are self-certifying: tampering with a member key
	// cannot be hidden, because the group ID (the definition's hash)
	// changes — a node holding the real ID will not join the group the
	// tampered file describes.
	data, _ := os.ReadFile(path)
	tampered := strings.Replace(string(data), `"pubkey":"02`, `"pubkey":"03`, 1)
	if tampered == string(data) {
		tampered = strings.Replace(string(data), `"pubkey":"03`, `"pubkey":"02`, 1)
	}
	tpath := filepath.Join(dir, "tampered.json")
	os.WriteFile(tpath, []byte(tampered), 0o644)
	if tampered != string(data) {
		if tgrp, err := LoadGroup(tpath); err == nil && tgrp.GroupID() == grp.GroupID() {
			t.Error("tampered group file kept the original group ID")
		}
	}
	// A corrupted key that is not even a curve point must fail outright.
	mangled := strings.Replace(string(data), `"pubkey":"0`, `"pubkey":"ff0`, 1)
	mpath := filepath.Join(dir, "mangled.json")
	os.WriteFile(mpath, []byte(mangled), 0o644)
	if _, err := LoadGroup(mpath); err == nil {
		t.Error("non-point member key accepted")
	}
}

func TestRosterRoundTripAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	policy := testPolicy()
	ck, _ := dissent.GenerateClientKeys()
	sk, _ := dissent.GenerateServerKeys(policy)
	grp, err := dissent.NewGroup("roster-test", []dissent.Keys{sk}, []dissent.Keys{ck}, policy)
	if err != nil {
		t.Fatal(err)
	}
	id := grp.Clients[0].ID
	roster := dissent.Roster{id: "127.0.0.1:7000"}
	path := filepath.Join(dir, "roster.json")
	if err := WriteRoster(path, roster); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[id] != "127.0.0.1:7000" {
		t.Errorf("roster round trip: %v", got)
	}

	cases := map[string]string{
		"not json":     "[",
		"non-hex id":   `{"zz-not-hex": "127.0.0.1:1"}`,
		"short hex id": `{"abcd": "127.0.0.1:1"}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, "bad-roster.json")
			os.WriteFile(p, []byte(content), 0o644)
			if _, err := LoadRoster(p); err == nil {
				t.Errorf("corrupt roster (%s) accepted", name)
			}
		})
	}
	if _, err := LoadRoster(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing roster accepted")
	}
}

func TestGenerate(t *testing.T) {
	dir := t.TempDir()
	grp, err := Generate(dir, GenerateConfig{
		Name: "gen-test", Servers: 2, Clients: 3,
		MessageGroup: "modp-512-test", BeaconEpochRounds: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grp.Servers) != 2 || len(grp.Clients) != 3 {
		t.Fatalf("group has %d servers / %d clients", len(grp.Servers), len(grp.Clients))
	}
	if grp.Policy.BeaconEpochRounds != 8 {
		t.Errorf("BeaconEpochRounds = %d, want 8", grp.Policy.BeaconEpochRounds)
	}

	loaded, err := LoadGroup(filepath.Join(dir, "group.json"))
	if err != nil {
		t.Fatalf("generated group does not load: %v", err)
	}
	if loaded.GroupID() != grp.GroupID() {
		t.Error("generated group ID changed through its own file")
	}
	roster, err := LoadRoster(filepath.Join(dir, "roster.json"))
	if err != nil {
		t.Fatalf("generated roster does not load: %v", err)
	}
	if len(roster) != 5 {
		t.Fatalf("roster has %d entries, want 5", len(roster))
	}

	// Key files load, match members, and sit at definition order.
	keyGrp := grp.Group()
	for i := 0; i < 2; i++ {
		keys, err := LoadKeys(filepath.Join(dir, "server-"+string(rune('0'+i))+".key"), grp)
		if err != nil {
			t.Fatalf("server key %d: %v", i, err)
		}
		if keys.MsgShuffle == nil {
			t.Fatalf("server key %d lacks a message-shuffle key", i)
		}
		if !keyGrp.Equal(keys.Identity.Public, grp.Servers[i].PubKey) {
			t.Fatalf("server-%d.key does not match definition index %d", i, i)
		}
	}
	for i := 0; i < 3; i++ {
		keys, err := LoadKeys(filepath.Join(dir, "client-"+string(rune('0'+i))+".key"), grp)
		if err != nil {
			t.Fatalf("client key %d: %v", i, err)
		}
		if !keyGrp.Equal(keys.Identity.Public, grp.Clients[i].PubKey) {
			t.Fatalf("client-%d.key does not match definition index %d", i, i)
		}
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	dir := t.TempDir()
	cases := []GenerateConfig{
		{Servers: 0, Clients: 1},
		{Servers: 1, Clients: 0},
		{Servers: 1, Clients: 1, MessageGroup: "no-such-group"},
	}
	for _, cfg := range cases {
		if _, err := Generate(dir, cfg); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", cfg)
		}
	}
}
