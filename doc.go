// Package dissent is a from-scratch Go implementation of Dissent, the
// scalable traffic-analysis-resistant anonymous group communication
// system of "Dissent in Numbers: Making Strong Anonymity Scale"
// (Wolinsky, Corrigan-Gibbs, Ford, Johnson — OSDI 2012).
//
// The library lives under internal/: the anytrust client/server DC-net
// engines (internal/core), the DC-net slot machinery and epoch-rotated
// schedule (internal/dcnet), the anytrust randomness beacon driving
// that rotation (internal/beacon), verifiable shuffles
// (internal/shuffle), the crypto substrate (internal/crypto), group
// definitions (internal/group), TCP and simulated transports
// (internal/transport, internal/simnet), the application interfaces
// (internal/socks), the evaluation baselines and workloads
// (internal/relay, internal/browse), and the experiment harnesses
// regenerating every figure of the paper (internal/bench).
//
// Entry points: cmd/dissentd (server daemon with HTTP beacon
// endpoints), cmd/dissent (client with HTTP API, SOCKS proxy, and a
// beacon fetch/verify subcommand), cmd/keygen (group creation), and
// cmd/dissent-bench (the evaluation). Runnable walkthroughs live in
// examples/.
package dissent

// Version identifies this reproduction release.
const Version = "1.0.0"
