// Package dissent is a from-scratch Go implementation of Dissent, the
// scalable traffic-analysis-resistant anonymous group communication
// system of "Dissent in Numbers: Making Strong Anonymity Scale"
// (Wolinsky, Corrigan-Gibbs, Ford, Johnson — OSDI 2012), exposed as an
// embeddable SDK.
//
// Applications interact with one type: Node. A Node is a group member
// — anytrust server or anonymity-set client — bound to a Transport,
// with a context-based lifecycle:
//
//	grp, _ := dissentcfg.LoadGroup("group.json")
//	keys, _ := dissentcfg.LoadKeys("client-0.key", grp)
//	node, _ := dissent.NewClient(grp, keys,
//		dissent.WithListenAddr(":7100"), dissent.WithRoster(roster))
//	go node.Run(ctx)                       // owns transport, timers, shutdown
//	node.Send(ctx, []byte("anonymous"))    // queue into our pseudonym slot
//	for m := range node.Messages() { ... } // the channel's cleartext
//	for e := range node.Subscribe(dissent.EventRoundComplete) { ... }
//
// Rounds, slots, ciphertexts, shuffles, and certification stay behind
// the API: Send fragments payloads across certified DC-net rounds and
// Messages surfaces every slot's decoded output, attributed only to an
// unlinkable pseudonym slot. Two Transport implementations ship —
// TCP for deployment and SimNet for in-process groups (tests, the
// quickstart example, embedded simulations) — and custom ones plug in
// through the same interface.
//
// # Hosts and Sessions
//
// Processes that serve many groups at once use Host instead of
// individual Nodes. A Session is the per-group engine unit — its own
// protocol engine, timers, beacon chain, schedule certificate, and
// Send/Messages/Subscribe channels — and a Node is exactly one Session
// bound to a Run(ctx) lifecycle. A Host multiplexes many Sessions over
// one shared fabric (a single TCP listener, or one SimNet hub):
//
//	host, _ := dissent.NewHost(dissent.WithHostListenAddr(":7000"))
//	a, _ := host.OpenSession(groupA, keysA, dissent.WithRoster(rosterA))
//	b, _ := host.OpenSession(groupB, keysB, dissent.WithRoster(rosterB))
//	for m := range a.Messages() { ... }     // sessions never share messages
//	host.CloseSession(a.SessionID())        // b keeps running
//
// Sessions are identified by their group's self-certifying ID; on the
// wire every frame carries that session tag, so the shared listener
// routes each message to the right engine and messages can never cross
// groups (see ARCHITECTURE.md for the design). Per-session and
// host-aggregated metrics — rounds/s, bytes in and out, submission
// window timings — are snapshots from Metrics, or expvar-style vars
// from MetricsVar.
//
// Randomness-beacon access hangs off the Node: BeaconChain returns the
// verified replica, WithBeaconHTTP serves it (plus the schedule
// certificate anchoring the chain's session-bound genesis), and
// SyncBeacon is the external verifier's fetch-and-verify path.
//
// Group material lives in the sibling package dissentcfg (key files,
// group definitions, rosters, generation); the protocol itself — the
// sans-I/O client/server engines (Algorithms 1–2), DC-net slot
// machinery, verifiable shuffles, the anytrust beacon, and the
// evaluation harnesses reproducing the paper's figures — remains under
// internal/, consumed only through this package.
//
// Entry points built on the SDK: cmd/dissentd (multi-group server
// daemon), cmd/dissent (client with HTTP API, SOCKS proxy, and a
// beacon fetch/verify subcommand), cmd/keygen (group creation), and
// cmd/dissent-bench (the evaluation). Runnable walkthroughs live in
// examples/ — examples/quickstart for one group, examples/multitenant
// for several behind one Host.
package dissent

// Version identifies this reproduction release.
const Version = "2.1.0"
