// Package dissent is a from-scratch Go implementation of Dissent, the
// scalable traffic-analysis-resistant anonymous group communication
// system of "Dissent in Numbers: Making Strong Anonymity Scale"
// (Wolinsky, Corrigan-Gibbs, Ford, Johnson — OSDI 2012), exposed as an
// embeddable SDK.
//
// Applications interact with one type: Node. A Node is a group member
// — anytrust server or anonymity-set client — bound to a Transport,
// with a context-based lifecycle:
//
//	grp, _ := dissentcfg.LoadGroup("group.json")
//	keys, _ := dissentcfg.LoadKeys("client-0.key", grp)
//	node, _ := dissent.NewClient(grp, keys,
//		dissent.WithListenAddr(":7100"), dissent.WithRoster(roster))
//	go node.Run(ctx)                       // owns transport, timers, shutdown
//	node.Send(ctx, []byte("anonymous"))    // queue into our pseudonym slot
//	for m := range node.Messages() { ... } // the channel's cleartext
//	for e := range node.Subscribe(dissent.EventRoundComplete) { ... }
//
// Rounds, slots, ciphertexts, shuffles, and certification stay behind
// the API: Send fragments payloads across certified DC-net rounds and
// Messages surfaces every slot's decoded output, attributed only to an
// unlinkable pseudonym slot. Two Transport implementations ship —
// TCP for deployment and SimNet for in-process groups (tests, the
// quickstart example, embedded simulations) — and custom ones plug in
// through the same interface.
//
// Randomness-beacon access hangs off the Node: BeaconChain returns the
// verified replica, WithBeaconHTTP serves it (plus the schedule
// certificate anchoring the chain's session-bound genesis), and
// SyncBeacon is the external verifier's fetch-and-verify path.
//
// Group material lives in the sibling package dissentcfg (key files,
// group definitions, rosters, generation); the protocol itself — the
// sans-I/O client/server engines (Algorithms 1–2), DC-net slot
// machinery, verifiable shuffles, the anytrust beacon, and the
// evaluation harnesses reproducing the paper's figures — remains under
// internal/, consumed only through this package.
//
// Entry points built on the SDK: cmd/dissentd (server daemon),
// cmd/dissent (client with HTTP API, SOCKS proxy, and a beacon
// fetch/verify subcommand), cmd/keygen (group creation), and
// cmd/dissent-bench (the evaluation). Runnable walkthroughs live in
// examples/.
package dissent

// Version identifies this reproduction release.
const Version = "2.0.0"
