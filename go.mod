module dissent

go 1.24
