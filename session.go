package dissent

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/core"
	"dissent/internal/obs"
)

// Session is one group membership running inside a process: a protocol
// engine bound to a message fabric, with its own timers, beacon chain,
// schedule certificate, and application channels. A Session is the
// per-group unit of the SDK — a standalone Node wraps exactly one, and
// a Host runs many concurrently over one shared listener, each
// isolated from the others. Obtain one from Host.OpenSession (or
// Node.Session); all methods are safe for concurrent use.
type Session struct {
	role Role
	def  *Group
	cfg  nodeConfig
	sid  SessionID

	engine core.Engine
	server *core.Server // nil for clients
	client *core.Client // nil for servers
	id     NodeID

	mu        sync.Mutex // engine lock; guards link/timer/lifecycle below
	link      Link
	beaconSrv *http.Server
	timer     *time.Timer
	timerAt   time.Time
	started   bool
	closed    bool
	// startDone gates inbound delivery: messages arriving between the
	// transport attach and engine.Start buffer here, else an early
	// peer's message could advance the engine before Start initializes
	// it (and Start would then clobber that progress).
	startDone bool
	preStart  []*Message

	subMu     sync.Mutex
	subs      []*subscription
	msgs      chan RoundOutput
	chansDone bool

	// onClose lets a supervising Host unregister the session once it
	// has fully shut down; nil for standalone Nodes.
	onClose func(*Session)
	done    chan struct{}

	stats counters

	// Observability state (see obs.go): the session's structured
	// logger (session/group/role attrs attached), the phase-latency
	// histograms fed by engine round traces, the bounded ring of recent
	// round spans, and the wall-clock origin of an in-flight accusation
	// shuffle (unix-nanos; 0 when no blame is running).
	log        *slog.Logger
	hists      *sessionHists
	traces     *obs.TraceRing
	blameNanos atomic.Int64
}

// traceRingCap bounds the per-session ring of recent round spans
// served at /debug/rounds and by Session.RecentTraces.
const traceRingCap = 128

type subscription struct {
	kinds map[EventKind]bool // nil = all kinds
	ch    chan Event
}

// dialFunc attaches a session to its message fabric.
type dialFunc func(recv func(*Message), onError func(error)) (Link, error)

// newSessionShell builds the Session scaffolding (channels, IDs,
// config) shared by member sessions and joiner sessions, plus the core
// engine options derived from the config.
func newSessionShell(role Role, def *Group, cfg nodeConfig) (*Session, core.Options) {
	sid := GroupSessionID(def)
	base := cfg.logger
	if base == nil {
		base = slog.Default()
	}
	logger := base.With("session", sid.String(), "group", def.Name, "role", role.String())
	if cfg.onError == nil {
		cfg.onError = func(err error) { logger.Warn("session error", "err", err) }
	}
	s := &Session{
		role:   role,
		def:    def,
		cfg:    cfg,
		sid:    sid,
		log:    logger,
		hists:  newSessionHists(),
		traces: obs.NewTraceRing(traceRingCap),
		msgs:   make(chan RoundOutput, cfg.msgBuf),
		done:   make(chan struct{}),
	}
	coreOpts := core.Options{
		MessageGroup:  def.MsgGroup(),
		BeaconStore:   cfg.store,
		Logger:        logger,
		OnRoundTrace:  s.onRoundTrace,
		PipelineDepth: cfg.pipelineDepth,
		Retry:         cfg.retry,
		Interdict:     cfg.interdict,
	}
	if cfg.stateStore != nil {
		// Guard the typed-nil: a nil *StateStore inside the interface
		// would pass the engine's == nil checks and panic on first use.
		coreOpts.StateStore = cfg.stateStore
		if cfg.store == nil {
			// The beacon chain rides the same store file unless the
			// caller supplied a dedicated beacon store. A state store
			// fresh from OpenStateStore always yields a readable (if
			// empty) beacon bucket; treat failure as content damage.
			bs, err := beacon.NewKVStore(cfg.stateStore, "beacon")
			if err != nil {
				logger.Warn("state store beacon bucket unreadable; beacon chain stays in-memory", "err", err)
			} else {
				coreOpts.BeaconStore = bs
			}
		}
	}
	return s, coreOpts
}

// onRoundTrace receives one span record per completed round from the
// engine (on the engine's goroutine, under the session lock): stamp the
// session, feed the phase-latency histograms, and retain it in the
// ring. Histograms are atomics and the ring has its own lock, so this
// never blocks the engine.
func (s *Session) onRoundTrace(t obs.RoundTrace) {
	t.Session = s.sid.String()
	s.hists.observe(t)
	s.traces.Push(t)
}

// observeSpan folds span-relevant events into the observability state:
// accusation-shuffle wall-clock (blame starts and concludes outside
// the round state machine, so the engine cannot time it) and the blame
// histogram plus ring annotation at the verdict.
func (s *Session) observeSpan(e Event) {
	switch e.Kind {
	case core.EventBlameStarted:
		s.blameNanos.Store(time.Now().UnixNano())
	case core.EventBlameVerdict:
		t0 := s.blameNanos.Swap(0)
		if t0 == 0 {
			return
		}
		d := time.Duration(time.Now().UnixNano() - t0)
		s.hists.blame.ObserveDuration(d)
		s.traces.Annotate(e.Round, func(t *obs.RoundTrace) {
			t.Blame = d
			t.BlameVerdict = e.Detail
			if e.Culprit != (NodeID{}) {
				t.BlameAccused = e.Culprit.String()
			}
		})
	}
}

// RecentTraces returns up to n of the session's most recent round span
// records, oldest first (all retained spans when n <= 0). The ring
// holds the last 128 rounds.
func (s *Session) RecentTraces(n int) []RoundTrace {
	return s.traces.Snapshot(n)
}

// newMemberSession builds the engine and channels for one membership.
func newMemberSession(role Role, def *Group, keys Keys, opts []Option) (*Session, error) {
	if keys.Identity == nil {
		return nil, errors.New("dissent: keys lack an identity keypair")
	}
	s, coreOpts := newSessionShell(role, def, buildConfig(opts))
	switch role {
	case RoleServer:
		if keys.MsgShuffle == nil {
			return nil, errors.New("dissent: server keys lack a message-shuffle keypair")
		}
		srv, err := core.NewServer(def, keys.Identity, keys.MsgShuffle, coreOpts)
		if err != nil {
			return nil, err
		}
		s.server, s.engine, s.id = srv, srv, srv.ID()
	case RoleClient:
		cl, err := core.NewClient(def, keys.Identity, coreOpts)
		if err != nil {
			return nil, err
		}
		s.client, s.engine, s.id = cl, cl, cl.ID()
	default:
		return nil, errors.New("dissent: unknown role")
	}
	return s, nil
}

// ID returns the member's self-certifying node ID.
func (s *Session) ID() NodeID { return s.id }

// SessionID returns the session's identifier — the group's
// self-certifying ID, which also tags the session's frames on shared
// transports.
func (s *Session) SessionID() SessionID { return s.sid }

// Role returns whether this membership is a server or a client.
func (s *Session) Role() Role { return s.role }

// Group returns the group definition the session runs.
func (s *Session) Group() *Group { return s.def }

// Index returns the member's index within its role's member list.
func (s *Session) Index() int {
	if s.server != nil {
		return s.server.Index()
	}
	return s.client.Index()
}

// Slot returns a client's anonymous slot index in the current
// transmission schedule, or -1 before setup completes (and always -1
// for servers). Slots are reassigned at beacon epoch boundaries, so
// long-lived callers should re-read after EventEpochAdvanced.
func (s *Session) Slot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client == nil {
		return -1
	}
	return s.client.Slot()
}

// ScheduleEstablished reports whether the verifiable-shuffle setup has
// completed and the slot schedule is certified — the point from which
// Send can actually transmit and rounds proceed. Harness code polls it
// as the session's readiness signal.
func (s *Session) ScheduleEstablished() bool {
	return s.scheduleCert() != nil
}

// Addr returns the transport-level address once the session is
// attached, or "".
func (s *Session) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.link == nil {
		return ""
	}
	return s.link.Addr()
}

// Done returns a channel closed when the session has fully shut down.
func (s *Session) Done() <-chan struct{} { return s.done }

// BeaconChain returns the session's verified randomness-beacon
// replica, or nil when the group policy disables the beacon. The chain
// is safe for concurrent reads while the session runs.
func (s *Session) BeaconChain() *BeaconChain {
	if s.server != nil {
		return s.server.BeaconChain()
	}
	return s.client.BeaconChain()
}

// open attaches the session to its fabric, starts the beacon HTTP
// server when configured, and runs the engine's Start. It may be
// called once; errors shut the session down (channels closed).
func (s *Session) open(dial dialFunc) error {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return errors.New("dissent: session already started")
	}
	s.started = true
	s.mu.Unlock()
	s.stats.openedAt.Store(time.Now().UnixNano())

	link, err := dial(s.inject, s.cfg.onError)
	if err != nil {
		s.shutdown()
		return err
	}
	s.mu.Lock()
	if s.closed { // closed between dial and here
		s.mu.Unlock()
		link.Close()
		return errors.New("dissent: session closed during open")
	}
	s.link = link
	s.mu.Unlock()

	if s.cfg.beaconAddr != "" {
		chain := s.BeaconChain()
		if chain == nil {
			s.shutdown()
			return errors.New("dissent: beacon HTTP enabled but the group policy disables the beacon")
		}
		ln, err := net.Listen("tcp", s.cfg.beaconAddr)
		if err != nil {
			s.shutdown()
			return err
		}
		hs := &http.Server{Handler: beacon.HandlerWithSchedule(chain, s.scheduleCert)}
		s.mu.Lock()
		if s.closed { // closed while the listener came up: nothing will close hs for us
			s.mu.Unlock()
			ln.Close()
			return errors.New("dissent: session closed during open")
		}
		s.beaconSrv = hs
		s.mu.Unlock()
		go hs.Serve(ln)
	}

	s.mu.Lock()
	if s.closed { // closed while the beacon listener came up
		s.mu.Unlock()
		return errors.New("dissent: session closed during open")
	}
	// A server whose state store holds a live session snapshot resumes
	// that session instead of starting a fresh setup: RestoreFromStore
	// rebuilds the engine from the snapshot plus the durable roster
	// log, and its output re-announces us to the group. A store with no
	// snapshot falls through to the normal Start.
	var out *core.Output
	var restored bool
	if s.server != nil {
		out, restored, err = s.server.RestoreFromStore(time.Now())
		if err != nil {
			s.mu.Unlock()
			s.shutdown()
			return fmt.Errorf("dissent: session restore: %w", err)
		}
	}
	if !restored {
		out, err = s.engine.Start(time.Now())
		if err != nil {
			s.mu.Unlock()
			s.shutdown()
			return err
		}
	}
	s.startDone = true
	buffered := s.preStart
	s.preStart = nil
	s.mu.Unlock()
	s.dispatch(out)
	// Replay messages that raced ahead of Start, in arrival order.
	for _, m := range buffered {
		s.inject(m)
	}
	return nil
}

// Send queues an application payload for anonymous transmission in
// the client's pseudonym slot. Payloads larger than the slot are
// fragmented across rounds; reassembly (and any framing) is the
// application's concern. Queueing succeeds before the schedule is
// established — the payload rides the first available round.
func (s *Session) Send(ctx context.Context, data []byte) error {
	if s.client == nil {
		return errors.New("dissent: Send on a server session (servers relay; only clients originate)")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("dissent: session is shut down")
	}
	s.client.Send(data)
	return nil
}

// Messages returns the channel of decoded anonymous messages — every
// certified round's slot payloads, at servers and clients alike. The
// channel closes when the session shuts down. If the application does
// not drain it, the oldest undelivered outputs are dropped (see
// WithMessageBuffer).
func (s *Session) Messages() <-chan RoundOutput { return s.msgs }

// Subscribe returns a channel of protocol events, filtered to the
// given kinds (none = every kind). Events are dropped rather than
// blocking the protocol if the subscriber lags behind its 64-event
// buffer. The channel closes when the session shuts down.
func (s *Session) Subscribe(kinds ...EventKind) <-chan Event {
	sub := &subscription{ch: make(chan Event, 64)}
	if len(kinds) > 0 {
		sub.kinds = make(map[EventKind]bool, len(kinds))
		for _, k := range kinds {
			sub.kinds[k] = true
		}
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.chansDone {
		close(sub.ch)
		return sub.ch
	}
	s.subs = append(s.subs, sub)
	return sub.ch
}

// inject feeds one inbound transport message to the engine.
func (s *Session) inject(m *Message) {
	s.stats.msgsIn.Add(1)
	s.stats.bytesIn.Add(uint64(m.WireSize()))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if !s.startDone {
		s.preStart = append(s.preStart, m)
		s.mu.Unlock()
		return
	}
	out, err := s.engine.Handle(time.Now(), m)
	s.mu.Unlock()
	if err != nil {
		// Engine rejections are soft: a malformed or mistimed message
		// from the network must not stop the session.
		s.cfg.onError(err)
		return
	}
	s.dispatch(out)
}

// dispatch consumes one engine output: deliveries and events to the
// application channels, envelopes to the transport, the timer armed.
func (s *Session) dispatch(out *core.Output) {
	if out == nil {
		return
	}
	for _, d := range out.Deliveries {
		s.pushMessage(d)
	}
	for _, e := range out.Events {
		s.stats.observe(e)
		s.observeSpan(e)
		s.pushEvent(e)
	}
	if len(out.NewPeers) > 0 {
		// Register members admitted mid-session with the fabric before
		// transmitting: the welcome envelope below needs them routable.
		s.mu.Lock()
		link := s.link
		s.mu.Unlock()
		if pa, ok := link.(peerAdder); ok {
			for _, p := range out.NewPeers {
				if p.Addr == "" {
					continue
				}
				if err := pa.AddPeer(p.ID, p.Addr); err != nil {
					s.cfg.onError(err)
				}
			}
		}
	}
	if len(out.Send) > 0 {
		s.mu.Lock()
		link, closed := s.link, s.closed
		s.mu.Unlock()
		if link != nil && !closed {
			for _, env := range out.Send {
				s.stats.msgsOut.Add(1)
				s.stats.bytesOut.Add(uint64(env.Msg.WireSize()))
				if err := link.Send(env.To, env.Msg); err != nil {
					s.cfg.onError(err)
				}
			}
		}
	}
	if !out.Timer.IsZero() {
		s.armTimer(out.Timer)
	}
}

func (s *Session) pushMessage(d RoundOutput) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.chansDone {
		return
	}
	for {
		select {
		case s.msgs <- d:
			return
		default:
			// Full: drop the oldest so fresh rounds win.
			select {
			case <-s.msgs:
			default:
			}
		}
	}
}

func (s *Session) pushEvent(e Event) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.chansDone {
		return
	}
	for _, sub := range s.subs {
		if sub.kinds != nil && !sub.kinds[e.Kind] {
			continue
		}
		select {
		case sub.ch <- e:
		default: // lagging subscriber: drop
		}
	}
}

// armTimer keeps the earliest requested engine wakeup: engines request
// timers liberally (window close, hard deadline) and ticks are
// idempotent, so only the soonest pending one matters.
func (s *Session) armTimer(at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if !s.timerAt.IsZero() && !at.Before(s.timerAt) {
		return // an earlier wakeup is already pending
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timerAt = at
	s.timer = time.AfterFunc(d, s.tick)
}

func (s *Session) tick() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.timerAt = time.Time{}
	out, err := s.engine.Tick(time.Now())
	s.mu.Unlock()
	if err != nil {
		s.cfg.onError(err)
		return
	}
	s.dispatch(out)
}

// scheduleCert exposes the session's certified schedule to the beacon
// HTTP handler (nil until setup completes). Servers retain the
// certificate they assembled; clients the one they verified — either
// suffices for an external verifier to derive the session genesis.
func (s *Session) scheduleCert() *beacon.ScheduleCert {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys, sigs [][]byte
	if s.server != nil {
		keys, sigs = s.server.ScheduleCertificate()
	} else {
		keys, sigs = s.client.ScheduleCertificate()
	}
	if keys == nil {
		return nil
	}
	return &beacon.ScheduleCert{Keys: keys, Sigs: sigs}
}

// Close tears the session down: transport detached, timers stopped,
// beacon HTTP server closed, application channels closed, and — when
// the session runs under a Host — the host's registry updated. Close
// is idempotent and returns nil once shutdown completes.
func (s *Session) Close() error {
	s.shutdown()
	return nil
}

// shutdown tears the session down exactly once.
func (s *Session) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
	}
	link := s.link
	s.link = nil
	hs := s.beaconSrv
	s.beaconSrv = nil
	s.mu.Unlock()

	if hs != nil {
		hs.Close()
	}
	if link != nil {
		link.Close() // joins transport readers; late injects see closed
	}

	s.subMu.Lock()
	s.chansDone = true
	for _, sub := range s.subs {
		close(sub.ch)
	}
	close(s.msgs)
	s.subMu.Unlock()

	close(s.done)
	if s.onClose != nil {
		s.onClose(s)
	}
}
