package dissent

// One benchmark per table/figure of the paper's evaluation (§5), each
// running a scaled-down configuration of the exact harness behind
// cmd/dissent-bench (the full-scale sweeps take minutes to hours; run
// those via `go run ./cmd/dissent-bench -exp all`). Ablation
// benchmarks quantify the design choices DESIGN.md calls out.

import (
	"testing"

	"dissent/internal/bench"
	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/shuffle"
)

// BenchmarkWindowPolicyTable regenerates the §5.1 missed-client table.
func BenchmarkWindowPolicyTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(bench.QuickFig6Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.MissedFrac*100, "missed%/"+r.Policy.Name)
		}
	}
}

// BenchmarkFig6WindowPolicies regenerates the exchange-time CDFs.
func BenchmarkFig6WindowPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(bench.QuickFig6Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			med := r.Times[len(r.Times)/2]
			b.ReportMetric(med.Seconds(), "median-s/"+r.Policy.Name)
		}
	}
}

// BenchmarkFig7Scaling regenerates the client-scaling sweep (Fig. 7).
func BenchmarkFig7Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(bench.QuickFig7Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Total.Seconds(), "round-s/"+r.Scenario)
		}
	}
}

// BenchmarkFig8Servers regenerates the server-scaling sweep (Fig. 8).
func BenchmarkFig8Servers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(bench.QuickFig8Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Total.Seconds(), "round-s/"+r.Scenario)
		}
	}
}

// BenchmarkRoundPipelined measures certified-rounds-per-virtual-second
// on a 3-server, 8-client SimNet deployment at pipeline depth 1
// (serial) and 2 (round r+1's window overlapped with round r's
// combine/certify). The depth2/depth1 ratio is the PR 8 tentpole
// number: ≥1.5× when certification is comparable to the window.
func BenchmarkRoundPipelined(b *testing.B) {
	for _, depth := range []int{1, 2} {
		b.Run(map[int]string{1: "depth1-serial", 2: "depth2-pipelined"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.PipelineThroughput(depth, 30, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.RoundsPerSec, "vrounds/s")
			}
		})
	}
}

// BenchmarkFig9FullProtocol regenerates the stage breakdown (Fig. 9).
func BenchmarkFig9FullProtocol(b *testing.B) {
	cfg := bench.DefaultFig9Config()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig9(cfg)
		last := rows[len(rows)-1]
		b.ReportMetric(last.KeyShuffle.Seconds(), "keyshuffle-s@1000")
		b.ReportMetric(last.BlameShuffle.Seconds(), "blameshuffle-s@1000")
	}
}

// BenchmarkFig10WebBrowsing regenerates the browsing comparison
// (Figs. 10–11).
func BenchmarkFig10WebBrowsing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig10(bench.QuickFig10Config())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.Stats.Mean().Seconds(), "page-s/"+r.Config)
		}
	}
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationClientPads compares the per-round client compute of
// Dissent's anytrust design (M = 16 server-shared pads) against a
// classic all-pairs DC-net (N-1 = 1023 peer-shared pads) for the same
// 1 KiB round vector — the §3.4 O(M) vs O(N) claim.
func BenchmarkAblationClientPads(b *testing.B) {
	const roundLen = 1024
	mkSeeds := func(n int) [][]byte {
		seeds := make([][]byte, n)
		for i := range seeds {
			seeds[i] = crypto.Hash("ablation", crypto.HashUint64(uint64(i)))
		}
		return seeds
	}
	msg := make([]byte, roundLen)
	b.Run("anytrust-16-servers", func(b *testing.B) {
		pad := dcnet.NewPad(crypto.NewAESPRNG)
		seeds := mkSeeds(16)
		b.SetBytes(roundLen)
		for i := 0; i < b.N; i++ {
			pad.ClientCiphertext(seeds, uint64(i), msg)
		}
	})
	b.Run("allpairs-1024-peers", func(b *testing.B) {
		pad := dcnet.NewPad(crypto.NewAESPRNG)
		seeds := mkSeeds(1023)
		b.SetBytes(roundLen)
		for i := 0; i < b.N; i++ {
			pad.ClientCiphertext(seeds, uint64(i), msg)
		}
	})
}

// BenchmarkAblationShuffleKinds compares a key shuffle (P-256, bare
// group elements) against a general message shuffle (2048-bit mod-p,
// embedded messages) at identical small scale — the §3.10 asymmetry
// that shapes Figure 9.
func BenchmarkAblationShuffleKinds(b *testing.B) {
	const servers, clients, shadows = 2, 6, 4
	b.Run("key-shuffle-p256", func(b *testing.B) {
		g := crypto.P256()
		srv := make([]*crypto.KeyPair, servers)
		for i := range srv {
			srv[i], _ = crypto.GenerateKeyPair(g, nil)
		}
		keys := make([]crypto.Element, clients)
		for i := range keys {
			kp, _ := crypto.GenerateKeyPair(g, nil)
			keys[i] = kp.Public
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := shuffle.KeyShuffle(g, srv, keys, shadows, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("msg-shuffle-modp2048", func(b *testing.B) {
		g := crypto.ModP2048()
		srv := make([]*crypto.KeyPair, servers)
		for i := range srv {
			srv[i], _ = crypto.GenerateKeyPair(g, nil)
		}
		msgs := make([][]byte, clients)
		for i := range msgs {
			msgs[i] = []byte("an accusation-sized anonymous message payload....................")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := shuffle.MessageShuffle(g, srv, msgs, 1, shadows, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPRNG compares the production AES-CTR stream against
// the benchmark-harness xoshiro stream.
func BenchmarkAblationPRNG(b *testing.B) {
	buf := make([]byte, 1<<20)
	for name, mk := range map[string]crypto.PRNGMaker{
		"aes-ctr": crypto.NewAESPRNG, "xoshiro": crypto.NewFastPRNG,
	} {
		b.Run(name, func(b *testing.B) {
			p := mk(crypto.Hash("bench", nil))
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				p.XORKeyStream(buf, buf)
			}
		})
	}
}

// BenchmarkAblationServerCombine measures server-side pad generation —
// the O(N) work the anytrust model concentrates on provisioned
// servers (§3.4) — at two anonymity-set sizes.
func BenchmarkAblationServerCombine(b *testing.B) {
	const roundLen = 1024
	for _, n := range []int{128, 1024} {
		seeds := make([][]byte, n)
		for i := range seeds {
			seeds[i] = crypto.Hash("srv", crypto.HashUint64(uint64(i)))
		}
		b.Run(itoa(n)+"-clients", func(b *testing.B) {
			pad := dcnet.NewPad(crypto.NewAESPRNG)
			b.SetBytes(int64(n) * roundLen)
			for i := 0; i < b.N; i++ {
				pad.ServerPad(seeds, uint64(i), roundLen)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
