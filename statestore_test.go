package dissent_test

// SDK-level durability tests: a server node backed by WithStateStore
// is killed mid-session and a fresh process (a new Node over the same
// store file) resumes the live session — through the public API alone.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"dissent"
)

// TestSDKServerRestartResumesFromStateStore kills a state-store-backed
// server after the group has certified rounds, then restarts it as a
// brand-new Node against the same store file. The restarted node must
// fire EventStateRestored, rejoin the round pipeline without a fresh
// setup, and observe new certified rounds — including a payload sent
// only after the restart.
func TestSDKServerRestartResumesFromStateStore(t *testing.T) {
	policy := testPolicy(func(p *dissent.Policy) { p.BeaconEpochRounds = 4 })
	sKeys, cKeys, grp := buildGroup(t, 3, 4, policy)
	net := dissent.NewSimNet()
	defer net.Close()
	net.SetLatency(func(from, to dissent.NodeID) time.Duration { return time.Millisecond })

	storePath := filepath.Join(t.TempDir(), "srv0.kv")
	kv, err := dissent.OpenStateStore(storePath)
	if err != nil {
		t.Fatal(err)
	}

	// Server 0 runs under its own context so it can be killed alone;
	// the rest of the group shares one.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx0, kill0 := context.WithCancel(ctx)
	defer kill0()

	simOpts := func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net)}
	}
	srv0, err := dissent.NewServer(grp, sKeys[0], dissent.WithTransport(net), dissent.WithStateStore(kv))
	if err != nil {
		t.Fatal(err)
	}
	run0 := make(chan error, 1)
	go func() { run0 <- srv0.Run(ctx0) }()
	var rest []*dissent.Node
	for i, k := range sKeys[1:] {
		n, err := dissent.NewServer(grp, k, simOpts(dissent.RoleServer, i+1)...)
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, n)
	}
	for i, k := range cKeys {
		n, err := dissent.NewClient(grp, k, simOpts(dissent.RoleClient, i)...)
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, n)
	}
	runRest := make(chan error, len(rest))
	for _, n := range rest {
		n := n
		go func() { runRest <- n.Run(ctx) }()
	}

	// Let the session establish its schedule and certify a few rounds
	// so the store holds a mid-session snapshot worth resuming.
	waitRounds := func(node *dissent.Node, n int, what string) {
		t.Helper()
		ch := node.Subscribe(dissent.EventRoundComplete)
		deadline := time.After(60 * time.Second)
		for i := 0; i < n; i++ {
			select {
			case _, ok := <-ch:
				if !ok {
					t.Fatalf("%s: subscription closed early", what)
				}
			case <-deadline:
				t.Fatalf("%s: only %d/%d rounds after 60s", what, i, n)
			}
		}
	}
	waitRounds(srv0, 3, "pre-kill rounds")

	// Kill server 0 the way a crash looks to everyone else: its Run
	// returns, its link detaches, its store file stays behind.
	kill0()
	select {
	case err := <-run0:
		if err != nil {
			t.Fatalf("killed server Run returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("killed server did not stop")
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a brand-new Node (fresh process in real life) over the
	// same store file. OpenStateStore must keep the snapshot — a wiped
	// store here would silently fall back to a fresh setup and hang.
	kv2, err := dissent.OpenStateStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if kv2.Len() == 0 {
		t.Fatal("state store was cleared on reopen despite holding a session snapshot")
	}
	srv0b, err := dissent.NewServer(grp, sKeys[0], dissent.WithTransport(net), dissent.WithStateStore(kv2))
	if err != nil {
		t.Fatal(err)
	}
	restored := srv0b.Subscribe(dissent.EventStateRestored)
	run0b := make(chan error, 1)
	go func() { run0b <- srv0b.Run(ctx) }()

	select {
	case e, ok := <-restored:
		if !ok {
			t.Fatal("restore subscription closed early")
		}
		t.Logf("restored: round %d, %s", e.Round, e.Detail)
	case <-time.After(20 * time.Second):
		t.Fatal("restarted server never fired EventStateRestored")
	}

	// The restarted server certifies new rounds with the group...
	waitRounds(srv0b, 3, "post-restart rounds")

	// ...and a payload sent only after the restart flows end to end,
	// surfacing at the restarted server itself.
	const payload = "sent after the restart"
	if err := rest[len(rest)-1].Send(context.Background(), []byte(payload)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for {
		select {
		case m, ok := <-srv0b.Messages():
			if !ok {
				t.Fatal("message channel closed early")
			}
			if string(m.Data) == payload {
				if srv0b.Metrics().StateRestores != 1 {
					t.Errorf("StateRestores = %d, want 1", srv0b.Metrics().StateRestores)
				}
				return
			}
		case <-deadline:
			t.Fatal("post-restart payload never surfaced at the restarted server")
		}
	}
}

// TestOpenStateStoreClearsStaleContent pins the fresh-session
// semantics: a store file with content but no session snapshot (e.g.
// an abandoned run's beacon bucket) is cleared at open so it cannot
// poison the new session's replica.
func TestOpenStateStoreClearsStaleContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.kv")
	kv, err := dissent.OpenStateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("beacon", "0001", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2, err := dissent.OpenStateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if n := kv2.Len(); n != 0 {
		t.Fatalf("stale snapshot-less store reopened with %d records, want 0", n)
	}
}
