package dissent

import (
	"fmt"

	"dissent/internal/core"
	"dissent/internal/store"
)

// StateStore is the embedded durable key-value store backing a
// server's session state: the certified roster-update log, blame
// transcripts, the beacon chain, and the restart snapshot. One store
// file serves one session; give each session its own path.
type StateStore = store.KV

// OpenStateStore opens (creating if needed) the durable state store at
// path and prepares it for a session:
//
//   - A torn final record — the artifact of a crash mid-append — is
//     healed by truncation, exactly like the beacon file store.
//     Mid-file garbage is content damage and refuses to open.
//   - Unlike OpenBeaconStore, prior content is NOT archived away: the
//     whole point of the store is that a restarted server resumes the
//     session recorded in it. A file with no session snapshot holds
//     nothing a fresh session can resume, so it is cleared instead —
//     stale roster or beacon buckets from an abandoned run would
//     otherwise poison the new session's replica.
//   - When shadowed log records outnumber the live set the log is
//     compacted down to the live set before use, bounding file growth
//     across repeated restarts.
func OpenStateStore(path string) (*StateStore, error) {
	kv, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	if !core.HasSnapshot(kv) {
		if kv.Len() > 0 {
			if err := kv.Reset(); err != nil {
				kv.Close()
				return nil, fmt.Errorf("dissent: clearing stale state store: %w", err)
			}
		}
		return kv, nil
	}
	if kv.Garbage() > kv.Len() {
		if err := kv.Compact(); err != nil {
			kv.Close()
			return nil, fmt.Errorf("dissent: compacting state store: %w", err)
		}
	}
	return kv, nil
}
