package dissent_test

// Observability integration tests: a Host's Prometheus exposition,
// round-span ring, and structured logs are scraped concurrently while
// a SimNet group certifies rounds through an expel + rejoin churn
// scenario — under -race, this doubles as a data-race check on every
// collect-at-scrape path.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dissent"
)

// sampleLine is the text-exposition sample grammar (values like 12,
// 0.5, 1e-05, +Inf, NaN).
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// checkExposition asserts every non-comment line parses as a sample.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("exposition line does not parse: %q", line)
		}
	}
}

// metricValue returns the first sample of family whose label block
// contains every given substring.
func metricValue(t *testing.T, text, family string, labelSubs ...string) (float64, bool) {
	t.Helper()
line:
	for _, l := range strings.Split(text, "\n") {
		if !strings.HasPrefix(l, family+"{") && !strings.HasPrefix(l, family+" ") {
			continue
		}
		for _, sub := range labelSubs {
			if !strings.Contains(l, sub) {
				continue line
			}
		}
		fields := strings.Fields(l)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", l, err)
		}
		return v, true
	}
	return 0, false
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(b), nil
}

// syncBuffer is a mutex-guarded log sink safe for concurrent writes.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestObservabilityDuringChurn runs an expel + rejoin scenario on a
// hosted SimNet group while hammering /metrics and /debug/rounds, then
// asserts the exposition parses, the phase histograms and churn
// counters advanced, the span ring filled, and the engine's structured
// logs carried session attributes.
func TestObservabilityDuringChurn(t *testing.T) {
	policy := churnPolicy()
	sKeys, cKeys, grp := buildGroup(t, 2, 4, policy)
	net := dissent.NewSimNet()
	defer net.Close()

	logs := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug}))
	host, err := dissent.NewHost(dissent.WithHostSimNet(net), dissent.WithHostLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	sess, err := host.OpenSession(grp, sKeys[0])
	if err != nil {
		t.Fatal(err)
	}
	rounds := sess.Subscribe(dissent.EventRoundComplete)
	roster := sess.Subscribe(dissent.EventMemberExpelled, dissent.EventMemberJoined)

	peers := startGroup(t, grp, sKeys[1:], cKeys, func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net)}
	})
	defer peers.stop(t)

	ts := httptest.NewServer(host.DebugHandler())
	defer ts.Close()

	// Hammer the scrape paths while the protocol churns: under -race
	// this exercises collector reads against live engine writes.
	scrapeDone := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		for {
			select {
			case <-scrapeDone:
				return
			case <-time.After(20 * time.Millisecond):
			}
			for _, path := range []string{"/metrics", "/debug/rounds", "/metrics.json"} {
				if _, err := httpGet(ts.URL + path); err != nil {
					select {
					case scrapeErr <- err:
					default:
					}
					return
				}
			}
		}
	}()

	waitEvent(t, "first certified round", rounds, func(dissent.Event) bool { return true }, 60*time.Second)

	// Expel a client (definition index 2: upstream server 0) and rejoin
	// it, so the churn counters and roster version move.
	var expellee *dissent.Node
	for _, n := range peers.clients {
		if n.Index() == 2 {
			expellee = n
		}
	}
	if expellee == nil {
		t.Fatal("no client with definition index 2")
	}
	selfExpel := expellee.Subscribe(dissent.EventMemberExpelled)
	if err := sess.Expel(expellee.ID()); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, "expulsion", roster, func(e dissent.Event) bool {
		return e.Kind == dissent.EventMemberExpelled && e.Culprit == expellee.ID()
	}, 60*time.Second)
	// Rejoin only once the expellee has learned of its own expulsion.
	waitEvent(t, "expulsion at the expellee", selfExpel, func(e dissent.Event) bool {
		return e.Culprit == expellee.ID()
	}, 60*time.Second)
	rejoinCtx, cancelRejoin := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelRejoin()
	if err := expellee.Rejoin(rejoinCtx); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, "re-admission", roster, func(e dissent.Event) bool {
		return e.Kind == dissent.EventMemberJoined && e.Culprit == expellee.ID()
	}, 60*time.Second)
	waitEvent(t, "round after churn", rounds, func(dissent.Event) bool { return true }, 60*time.Second)

	close(scrapeDone)
	if err := <-scrapeErr; err != nil {
		t.Fatalf("background scrape: %v", err)
	}

	// The expvar-style JSON and the Prometheus text render the same
	// snapshot path; the JSON read first, counters can only have grown
	// by the time the text scrape lands.
	var hm dissent.HostMetrics
	jsonText, err := httpGet(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(jsonText), &hm); err != nil {
		t.Fatalf("/metrics.json does not decode as HostMetrics: %v", err)
	}
	text, err := httpGet(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	checkExposition(t, text)

	serverSel := []string{`role="server"`, `session="` + sess.SessionID().String() + `"`}
	mustAtLeast := func(family string, min float64, labelSubs ...string) {
		t.Helper()
		v, ok := metricValue(t, text, family, labelSubs...)
		if !ok {
			t.Fatalf("family %s (labels %v) missing from exposition", family, labelSubs)
		}
		if v < min {
			t.Fatalf("%s = %v, want >= %v", family, v, min)
		}
	}
	mustAtLeast("dissent_rounds_completed_total", 1, serverSel...)
	mustAtLeast("dissent_round_phase_seconds_count", 1, append(serverSel, `phase="window"`)...)
	mustAtLeast("dissent_round_phase_seconds_count", 1, append(serverSel, `phase="total"`)...)
	mustAtLeast("dissent_round_phase_seconds_bucket", 1, append(serverSel, `phase="window"`, `le="+Inf"`)...)
	mustAtLeast("dissent_churn_expels_total", 1, serverSel...)
	mustAtLeast("dissent_churn_joins_total", 1, serverSel...)
	mustAtLeast("dissent_roster_version", 2, serverSel...)
	mustAtLeast("dissent_sessions_open", 1)
	mustAtLeast("dissent_host_rounds_completed_total", float64(hm.RoundsCompleted))
	if _, ok := metricValue(t, text, "dissent_pad_prefetch_total", append(serverSel, `result="hit"`)...); !ok {
		t.Fatal("dissent_pad_prefetch_total{result=\"hit\"} missing")
	}
	for _, family := range []string{"dissent_round_phase_seconds", "dissent_rounds_completed_total"} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Fatalf("exposition lacks TYPE header for %s", family)
		}
	}

	// The span ring: the host session's recent traces are non-trivial
	// and served at /debug/rounds.
	roundsText, err := httpGet(ts.URL + "/debug/rounds")
	if err != nil {
		t.Fatal(err)
	}
	var traced []struct {
		Session string               `json:"session"`
		Role    string               `json:"role"`
		Traces  []dissent.RoundTrace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(roundsText), &traced); err != nil {
		t.Fatalf("/debug/rounds does not decode: %v", err)
	}
	var serverTraces []dissent.RoundTrace
	for _, s := range traced {
		if s.Session == sess.SessionID().String() {
			serverTraces = s.Traces
		}
	}
	if len(serverTraces) == 0 {
		t.Fatal("no round traces for the host session")
	}
	last := serverTraces[len(serverTraces)-1]
	if last.Total <= 0 || last.Participation == 0 {
		t.Fatalf("trace lacks substance: %+v", last)
	}
	if got := sess.RecentTraces(1); len(got) != 1 {
		t.Fatalf("RecentTraces(1) returned %d spans", len(got))
	}

	// Structured logs: engine debug milestones flowed through the host
	// logger with the session attribute attached.
	logged := logs.String()
	for _, want := range []string{"window closed", "roster update applied",
		"session=" + sess.SessionID().String(), "role=server"} {
		if !strings.Contains(logged, want) {
			t.Fatalf("structured logs lack %q; logs:\n%.2000s", want, logged)
		}
	}
}
