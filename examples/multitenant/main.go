// Multitenant: one process sharding several Dissent groups behind a
// single Host. The host runs one anytrust-server membership per group
// over one shared fabric (here the in-process SimNet; with
// dissent.WithHostListenAddr the same code serves both groups from one
// TCP listener, exactly like `dissentd -group a.json ... -group
// b.json ...`). Each group is an isolated session: its own engine,
// schedule, beacon chain, and channels — messages never cross, and
// sessions tear down independently.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dissent"
)

const (
	tenants          = 2
	serversPerGroup  = 2
	clientsPerGroup  = 3
	payloadPerTenant = "tenant %d: confidential report"
)

func main() {
	policy := dissent.DefaultPolicy()
	policy.MessageGroup = "modp-512-test" // small accusation group for the demo
	policy.Shadows = 4
	policy.WindowMin = 10 * time.Millisecond
	policy.DefaultOpenLen = 128

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One fabric, one host, many groups.
	net := dissent.NewSimNet()
	defer net.Close()
	host, err := dissent.NewHost(dissent.WithHostSimNet(net))
	must(err)
	defer host.Close()

	sessions := make([]*dissent.Session, tenants)
	clients := make([][]*dissent.Node, tenants)
	for tenant := 0; tenant < tenants; tenant++ {
		// Each tenant is a complete independent group.
		var serverKeys, clientKeys []dissent.Keys
		for i := 0; i < serversPerGroup; i++ {
			k, err := dissent.GenerateServerKeys(policy)
			must(err)
			serverKeys = append(serverKeys, k)
		}
		for i := 0; i < clientsPerGroup; i++ {
			k, err := dissent.GenerateClientKeys()
			must(err)
			clientKeys = append(clientKeys, k)
		}
		grp, err := dissent.NewGroup(fmt.Sprintf("tenant-%d", tenant), serverKeys, clientKeys, policy)
		must(err)

		// The host carries server 0 of every group; the role is located
		// by key, the session ID is the group ID.
		sess, err := host.OpenSession(grp, serverKeys[0])
		must(err)
		sessions[tenant] = sess

		// The remaining members run as standalone Nodes on the same
		// fabric — in a deployment these are other machines.
		for _, k := range serverKeys[1:] {
			n, err := dissent.NewServer(grp, k, dissent.WithTransport(net))
			must(err)
			go n.Run(ctx)
		}
		for _, k := range clientKeys {
			n, err := dissent.NewClient(grp, k, dissent.WithTransport(net))
			must(err)
			clients[tenant] = append(clients[tenant], n)
			go n.Run(ctx)
		}
		gid := grp.GroupID()
		fmt.Printf("session %x open: %d servers, %d clients\n",
			gid[:8], serversPerGroup, clientsPerGroup)
	}

	// Drive both groups concurrently: one anonymous post per tenant.
	for tenant, sess := range sessions {
		payload := fmt.Sprintf(payloadPerTenant, tenant)
		must(clients[tenant][1].Send(ctx, []byte(payload)))
		for {
			m := <-sess.Messages()
			if string(m.Data) == payload {
				fmt.Printf("tenant %d: round %d, slot %d (anonymous): %q\n",
					tenant, m.Round, m.Slot, m.Data)
				break
			}
		}
	}

	// Per-host and per-session metrics aggregate behind one hook
	// (host.MetricsVar() plugs straight into expvar).
	hm := host.Metrics()
	fmt.Printf("host: %d sessions, %d rounds certified, %d KB in / %d KB out\n",
		hm.Sessions, hm.RoundsCompleted, hm.BytesIn/1024, hm.BytesOut/1024)

	// Sessions close independently: tenant 0 goes away, tenant 1 keeps
	// certifying rounds.
	rounds := sessions[1].Subscribe(dissent.EventRoundComplete)
	must(host.CloseSession(sessions[0].SessionID()))
	<-sessions[0].Done()
	e := <-rounds
	fmt.Printf("tenant 0 torn down; tenant 1 still certifying (round %d)\n", e.Round)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
