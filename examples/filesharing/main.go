// Filesharing: the §5.2 data-sharing scenario — one anonymous client
// pushes 128 KB per round through its DC-net slot while the rest of
// the group provides the anonymity set. Demonstrates slot growth via
// the length field (§3.8) and reports effective anonymous throughput.
package main

import (
	"flag"
	"fmt"
	"log"

	"dissent/internal/bench"
)

func main() {
	clients := flag.Int("clients", 32, "number of clients")
	servers := flag.Int("servers", 4, "number of servers")
	chunks := flag.Int("chunks", 6, "128 KB chunks to transfer")
	flag.Parse()

	const chunkSize = 128 << 10
	s, err := bench.BuildSession(bench.SessionConfig{
		Servers:        *servers,
		Clients:        *clients,
		Profile:        bench.DeterLab(),
		SlotLen:        1024,
		MaxSlotLen:     chunkSize + 4096,
		Sign:           false,
		MeasureCompute: 1.0,
		Alpha:          0.9,
		AlphaSet:       true,
		WindowMin:      100_000_000,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	sender := s.Clients[0]
	payload := make([]byte, chunkSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for k := 0; k < *chunks; k++ {
		sender.Send(payload)
	}

	fmt.Printf("filesharing: %d x 128 KB through a %d-client group (%d servers)\n",
		*chunks, *clients, *servers)
	s.Bootstrap()
	s.RunRounds(uint64(*chunks+4), 100_000_000)
	for _, err := range s.H.Errors {
		log.Fatalf("error: %v", err)
	}

	var received int
	var lastAt, firstAt int64
	slot := sender.Slot()
	for _, d := range s.H.Deliveries {
		if d.Node != s.Servers[0].ID() || d.Slot != slot {
			continue
		}
		if firstAt == 0 {
			firstAt = d.At.UnixNano()
		}
		received += len(d.Data)
		lastAt = d.At.UnixNano()
		fmt.Printf("  round %-3d +%6d bytes (total %d)\n", d.Round, len(d.Data), received)
	}
	want := *chunks * chunkSize
	if received < want {
		log.Fatalf("received %d of %d bytes", received, want)
	}
	elapsed := float64(lastAt-firstAt) / 1e9
	if elapsed > 0 {
		fmt.Printf("\nanonymous throughput: %.1f KB/s over the DeterLab topology\n",
			float64(received)/1024/elapsed)
	}
}
