// Filesharing: the §5.2 data-sharing scenario on the public SDK — one
// anonymous client pushes 128 KB chunks through its DC-net slot while
// the rest of the group provides the anonymity set. Demonstrates slot
// growth via the length field (§3.8) — Send fragments each chunk and
// the slot widens across rounds — and reports effective anonymous
// throughput as one server observes it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"dissent"
)

func main() {
	clients := flag.Int("clients", 8, "number of clients")
	servers := flag.Int("servers", 2, "number of servers")
	chunks := flag.Int("chunks", 4, "128 KB chunks to transfer")
	flag.Parse()

	const chunkSize = 128 << 10
	policy := dissent.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.Shadows = 4
	policy.WindowMin = 20 * time.Millisecond
	policy.DefaultOpenLen = 1024
	policy.MaxSlotLen = chunkSize + 4096
	policy.BeaconEpochRounds = 0

	var serverKeys, clientKeys []dissent.Keys
	for i := 0; i < *servers; i++ {
		k, err := dissent.GenerateServerKeys(policy)
		must(err)
		serverKeys = append(serverKeys, k)
	}
	for i := 0; i < *clients; i++ {
		k, err := dissent.GenerateClientKeys()
		must(err)
		clientKeys = append(clientKeys, k)
	}
	grp, err := dissent.NewGroup("filesharing", serverKeys, clientKeys, policy)
	must(err)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := dissent.NewSimNet()
	var watch *dissent.Node
	var clientNodes []*dissent.Node
	for _, k := range serverKeys {
		n, err := dissent.NewServer(grp, k, dissent.WithTransport(net))
		must(err)
		if watch == nil {
			watch = n
		}
		go n.Run(ctx)
	}
	for _, k := range clientKeys {
		n, err := dissent.NewClient(grp, k, dissent.WithTransport(net))
		must(err)
		clientNodes = append(clientNodes, n)
		go n.Run(ctx)
	}

	// One sender, many cover-traffic peers. The sender's payload is
	// fragmented across rounds by the SDK; the application only sees
	// whole Send calls and per-round slot output.
	sender := clientNodes[0]
	payload := make([]byte, chunkSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for k := 0; k < *chunks; k++ {
		must(sender.Send(ctx, payload))
	}
	want := *chunks * chunkSize
	fmt.Printf("filesharing: %d x 128 KB through a %d-client group (%d servers)\n",
		*chunks, *clients, *servers)

	received := 0
	var first time.Time
	for received < want {
		m, ok := <-watch.Messages()
		if !ok {
			log.Fatal("node stopped early")
		}
		if len(m.Data) == 0 {
			continue
		}
		if first.IsZero() {
			first = time.Now()
		}
		received += len(m.Data)
		fmt.Printf("  round %-3d +%6d bytes (total %d)\n", m.Round, len(m.Data), received)
	}
	elapsed := time.Since(first).Seconds()
	if elapsed > 0 {
		fmt.Printf("\nanonymous throughput: %.1f KB/s in-process (slot grew %d -> %d bytes)\n",
			float64(received)/1024/elapsed, policy.DefaultOpenLen, policy.MaxSlotLen)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
