// Quickstart: a complete Dissent group — 3 anytrust servers and 8
// clients — on the public SDK, running the full production path:
// pseudonym-key submission, the verifiable scheduling shuffle,
// certified DC-net rounds, and anonymous delivery. The group runs over
// the in-process SimNet transport; swap in dissent.TCP (or just a
// listen address and roster) and the same code is a deployment.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dissent"
)

func main() {
	// 1. Keys and the group definition, whose hash is the group ID.
	policy := dissent.DefaultPolicy()
	policy.MessageGroup = "modp-512-test" // small accusation group for the demo
	policy.Shadows = 4
	policy.WindowMin = 10 * time.Millisecond
	policy.DefaultOpenLen = 128
	var serverKeys, clientKeys []dissent.Keys
	for i := 0; i < 3; i++ {
		k, err := dissent.GenerateServerKeys(policy)
		must(err)
		serverKeys = append(serverKeys, k)
	}
	for i := 0; i < 8; i++ {
		k, err := dissent.GenerateClientKeys()
		must(err)
		clientKeys = append(clientKeys, k)
	}
	grp, err := dissent.NewGroup("quickstart", serverKeys, clientKeys, policy)
	must(err)
	gid := grp.GroupID()
	fmt.Printf("group %x: %d servers, %d clients\n", gid[:8], len(grp.Servers), len(grp.Clients))

	// 2. One Node per member, all sharing an in-process transport.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	net := dissent.NewSimNet()
	var watch *dissent.Node // one server's view of the anonymous channel
	var clients []*dissent.Node
	for _, k := range serverKeys {
		n, err := dissent.NewServer(grp, k, dissent.WithTransport(net))
		must(err)
		if watch == nil {
			watch = n
		}
		go n.Run(ctx)
	}
	for _, k := range clientKeys {
		n, err := dissent.NewClient(grp, k, dissent.WithTransport(net))
		must(err)
		clients = append(clients, n)
		go n.Run(ctx)
	}
	rounds := watch.Subscribe(dissent.EventRoundComplete)

	// 3. Anonymous posts. Deliveries carry only a pseudonym slot —
	// nothing links a slot to a client.
	must(clients[2].Send(ctx, []byte("whistleblower report: the numbers were falsified")))
	must(clients[5].Send(ctx, []byte("meet at the square at noon")))

	for delivered := 0; delivered < 2; {
		m := <-watch.Messages()
		fmt.Printf("  round %d, slot %d (anonymous): %q\n", m.Round, m.Slot, m.Data)
		delivered++
	}
	e := <-rounds
	fmt.Printf("certified DC-net round %d complete — every message signed, every shuffle proof verified\n", e.Round)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
