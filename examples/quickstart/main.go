// Quickstart: a complete in-process Dissent group — 3 anytrust servers
// and 8 clients — running the full production path: pseudonym-key
// submission, the verifiable scheduling shuffle, certified DC-net
// rounds, and anonymous delivery. Every protocol message is signed and
// every shuffle proof verified; the group runs over the deterministic
// event harness so the demo finishes in under a second.
package main

import (
	"fmt"
	"log"
	"time"

	"dissent/internal/core"
	"dissent/internal/crypto"
	"dissent/internal/group"
)

func main() {
	const servers, clients = 3, 8
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test() // small accusation group for the demo

	// 1. Every participant generates a long-term keypair; servers also
	//    hold a key in the message-shuffle group.
	serverKPs := make([]*crypto.KeyPair, servers)
	serverMsgKPs := make([]*crypto.KeyPair, servers)
	serverKeys := make([]crypto.Element, servers)
	serverMsgKeys := make([]crypto.Element, servers)
	for i := 0; i < servers; i++ {
		serverKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		serverMsgKPs[i], _ = crypto.GenerateKeyPair(msgGrp, nil)
		serverKeys[i] = serverKPs[i].Public
		serverMsgKeys[i] = serverMsgKPs[i].Public
	}
	clientKPs := make([]*crypto.KeyPair, clients)
	clientKeys := make([]crypto.Element, clients)
	for i := 0; i < clients; i++ {
		clientKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		clientKeys[i] = clientKPs[i].Public
	}

	// 2. Someone assembles the group definition — the static key lists
	//    plus policy — whose hash is the self-certifying group ID.
	policy := group.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.Shadows = 4
	policy.WindowMin = 10 * time.Millisecond
	policy.DefaultOpenLen = 128
	def, err := group.NewDefinition("quickstart", serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		log.Fatal(err)
	}
	gid := def.GroupID()
	fmt.Printf("group %x: %d servers, %d clients\n", gid[:8], servers, clients)

	// 3. Wire the engines over the in-process harness (zero-config
	//    deterministic transport; cmd/dissentd runs the same engines
	//    over TCP).
	kpByID := map[group.NodeID]*crypto.KeyPair{}
	msgKPByID := map[group.NodeID]*crypto.KeyPair{}
	for i := 0; i < servers; i++ {
		id := group.IDFromKey(keyGrp, serverKeys[i])
		kpByID[id] = serverKPs[i]
		msgKPByID[id] = serverMsgKPs[i]
	}
	for i := 0; i < clients; i++ {
		kpByID[group.IDFromKey(keyGrp, clientKeys[i])] = clientKPs[i]
	}

	h := core.NewHarness()
	h.Latency = func(from, to group.NodeID) time.Duration { return time.Millisecond }
	opts := core.Options{MessageGroup: msgGrp}

	var clientEngines []*core.Client
	for _, mem := range def.Servers {
		srv, err := core.NewServer(def, kpByID[mem.ID], msgKPByID[mem.ID], opts)
		if err != nil {
			log.Fatal(err)
		}
		h.AddNode(mem.ID, srv, 0)
	}
	for _, mem := range def.Clients {
		cl, err := core.NewClient(def, kpByID[mem.ID], opts)
		if err != nil {
			log.Fatal(err)
		}
		clientEngines = append(clientEngines, cl)
		h.AddNode(mem.ID, cl, 0)
	}

	// 4. Queue some anonymous posts, run the group.
	clientEngines[2].Send([]byte("whistleblower report: the numbers were falsified"))
	clientEngines[5].Send([]byte("meet at the square at noon"))

	h.StartAll()
	h.Run(2_000) // a couple dozen rounds
	for _, err := range h.Errors {
		log.Fatalf("harness error: %v", err)
	}

	// 5. Report: schedule establishment, rounds, and deliveries. Slots
	//    are pseudonyms — nothing links them to client indices.
	for _, e := range h.EventsOf(core.EventScheduleReady) {
		fmt.Printf("  %-12s %s\n", "schedule", e.Detail)
		break
	}
	seen := map[string]bool{}
	for _, d := range h.Deliveries {
		key := fmt.Sprintf("%d/%d", d.Round, d.Slot)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("  round %d, slot %d (anonymous): %q\n", d.Round, d.Slot, d.Data)
	}
	rounds := h.EventsOf(core.EventRoundComplete)
	fmt.Printf("completed %d certified DC-net rounds\n", len(rounds)/servers)
}
