// Microblog: the §4.2 anonymous microblogging workload — a wide-area
// group on the DeterLab topology where ~2% of clients post short
// messages each round. Prints per-round latency split into the
// client-submission and server-processing phases, the decomposition of
// the paper's Figures 7–8.
package main

import (
	"flag"
	"fmt"
	"log"

	"dissent/internal/bench"
)

func main() {
	clients := flag.Int("clients", 64, "number of clients")
	servers := flag.Int("servers", 8, "number of servers")
	rounds := flag.Int("rounds", 10, "rounds to run")
	flag.Parse()

	s, err := bench.BuildSession(bench.SessionConfig{
		Servers:        *servers,
		Clients:        *clients,
		Profile:        bench.DeterLab(),
		SlotLen:        192,
		Sign:           false, // signature cost charged analytically
		MeasureCompute: 1.0,
		Alpha:          0.9,
		AlphaSet:       true,
		WindowMin:      100_000_000, // 100ms
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ~2% of clients each carry a backlog of 128-byte posts.
	posters := *clients / 50
	if posters < 1 {
		posters = 1
	}
	for i := 0; i < posters; i++ {
		c := s.Clients[i*(*clients)/posters]
		for k := 0; k < *rounds+4; k++ {
			c.Send([]byte(fmt.Sprintf("post %d from an anonymous source, round-sized padding......", k)))
		}
	}

	fmt.Printf("microblog: %d clients, %d servers, %d posters (DeterLab topology)\n",
		*clients, *servers, posters)
	s.Bootstrap()
	s.RunRounds(uint64(*rounds+2), 100_000_000)
	for _, err := range s.H.Errors {
		log.Fatalf("error: %v", err)
	}

	fmt.Printf("%-7s %-12s %-14s %-10s %s\n", "round", "submission", "processing", "total", "posts")
	postsByRound := map[uint64]int{}
	for _, d := range s.H.Deliveries {
		if d.Node == s.Servers[0].ID() {
			postsByRound[d.Round]++
		}
	}
	for _, m := range bench.RoundMetrics(s.H, s.Servers[0].ID()) {
		fmt.Printf("%-7d %-12v %-14v %-10v %d\n",
			m.Round, m.Submit.Round(1e6), m.Process.Round(1e6), m.Total.Round(1e6), postsByRound[m.Round])
	}
	submit, process, total, n := bench.MeanSplit(bench.RoundMetrics(s.H, s.Servers[0].ID()), 2)
	fmt.Printf("\nmean over %d rounds: submission %v, processing %v, total %v\n",
		n, submit.Round(1e6), process.Round(1e6), total.Round(1e6))
}
