// Microblog: the §4.2 anonymous microblogging workload on the public
// SDK — a group with wide-area-like latencies (10 ms server–server,
// 50 ms client–server, the shape of the paper's DeterLab topology)
// where a couple of clients post short messages every round. Prints
// each certified round's posts as one server observes them, plus
// wall-clock round times. (For the paper's calibrated
// submission/processing decomposition at thousands of clients, see
// cmd/dissent-bench, which runs the same engines over the
// discrete-event simulator.)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"dissent"
)

func main() {
	clients := flag.Int("clients", 16, "number of clients")
	servers := flag.Int("servers", 3, "number of servers")
	rounds := flag.Int("rounds", 5, "certified rounds to run")
	flag.Parse()

	policy := dissent.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.Shadows = 4
	policy.WindowMin = 50 * time.Millisecond
	policy.DefaultOpenLen = 192
	policy.BeaconEpochRounds = 0

	var serverKeys, clientKeys []dissent.Keys
	for i := 0; i < *servers; i++ {
		k, err := dissent.GenerateServerKeys(policy)
		must(err)
		serverKeys = append(serverKeys, k)
	}
	for i := 0; i < *clients; i++ {
		k, err := dissent.GenerateClientKeys()
		must(err)
		clientKeys = append(clientKeys, k)
	}
	grp, err := dissent.NewGroup("microblog", serverKeys, clientKeys, policy)
	must(err)

	// The in-process transport with the DeterLab-like latency model.
	isServer := map[dissent.NodeID]bool{}
	for _, m := range grp.Servers {
		isServer[m.ID] = true
	}
	net := dissent.NewSimNet()
	net.SetLatency(func(from, to dissent.NodeID) time.Duration {
		if isServer[from] && isServer[to] {
			return 10 * time.Millisecond
		}
		return 50 * time.Millisecond
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var watch *dissent.Node
	var clientNodes []*dissent.Node
	for _, k := range serverKeys {
		n, err := dissent.NewServer(grp, k, dissent.WithTransport(net))
		must(err)
		if watch == nil {
			watch = n
		}
		go n.Run(ctx)
	}
	for _, k := range clientKeys {
		n, err := dissent.NewClient(grp, k, dissent.WithTransport(net))
		must(err)
		clientNodes = append(clientNodes, n)
		go n.Run(ctx)
	}

	// ~2 posters (the paper's ~2% at scale) carry a backlog of
	// 128-byte posts; everyone else is pure anonymity set.
	posters := *clients / 8
	if posters < 1 {
		posters = 1
	}
	for i := 0; i < posters; i++ {
		c := clientNodes[i*(*clients)/posters]
		for k := 0; k < *rounds+2; k++ {
			must(c.Send(ctx, []byte(fmt.Sprintf("post %d from an anonymous source, round-sized padding......", k))))
		}
	}
	fmt.Printf("microblog: %d clients, %d servers, %d posters, wide-area latencies\n",
		*clients, *servers, posters)

	completions := watch.Subscribe(dissent.EventRoundComplete)
	var postsMu sync.Mutex
	posts := map[uint64]int{}
	go func() {
		for m := range watch.Messages() {
			postsMu.Lock()
			posts[m.Round]++
			postsMu.Unlock()
		}
	}()

	fmt.Printf("%-7s %-12s %s\n", "round", "wall-time", "posts")
	start := time.Now()
	prev := start
	for done := 0; done < *rounds; {
		e, ok := <-completions
		if !ok {
			log.Fatal("node stopped early")
		}
		now := time.Now()
		postsMu.Lock()
		n := posts[e.Round]
		postsMu.Unlock()
		fmt.Printf("%-7d %-12v %d\n", e.Round, now.Sub(prev).Round(time.Millisecond), n)
		prev = now
		done++
	}
	fmt.Printf("\n%d certified rounds in %v (includes the verifiable scheduling shuffle)\n",
		*rounds, time.Since(start).Round(time.Millisecond))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
