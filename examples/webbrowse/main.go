// Webbrowse: the §5.4 local-area anonymous browsing comparison — pages
// from an Alexa-Top-100-like corpus downloaded directly, through the
// onion-relay baseline, through a real local-area Dissent group
// (SOCKS-style streaming via the exit client), and through the
// Dissent+relay composition. A miniature of Figures 10–11.
package main

import (
	"flag"
	"fmt"
	"log"

	"dissent/internal/bench"
)

func main() {
	pages := flag.Int("pages", 8, "pages to download per configuration")
	flag.Parse()

	cfg := bench.QuickFig10Config()
	cfg.Pages = *pages
	fmt.Printf("webbrowse: %d pages, %d-server/%d-client Dissent group on a 24 Mbit/s WLAN\n\n",
		cfg.Pages, cfg.Servers, cfg.Clients)

	results, err := bench.Fig10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-10s %-10s %-10s\n", "config", "mean", "median", "p90")
	for _, r := range results {
		fmt.Printf("%-14s %-10v %-10v %-10v\n", r.Config,
			r.Stats.Mean().Round(1e7),
			r.Stats.Percentile(50).Round(1e7),
			r.Stats.Percentile(90).Round(1e7))
	}
	fmt.Println("\nexpected shape (paper §5.4): direct ≪ tor ≈ dissent < dissent+tor")
}
