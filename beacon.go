package dissent

import (
	"errors"
	"fmt"
	"os"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/core"
)

// OpenBeaconStore opens (creating if needed) a durable beacon chain
// file for WithBeaconStore. A chain file spans one protocol session —
// DC-net round numbers restart with every fresh setup and the genesis
// is session-bound — so content from a previous session is archived
// beside the file (returned as archivedTo) and a fresh chain begun;
// mid-file corruption is archived the same way. The caller owns the
// store: close it after the node's Run returns so the chain's final
// entries are flushed to disk.
func OpenBeaconStore(path string) (store *BeaconFileStore, archivedTo string, err error) {
	store, err = beacon.OpenFileStore(path)
	if errors.Is(err, beacon.ErrCorruptStore) {
		// Mid-file corruption (a torn final line is already healed by
		// OpenFileStore): preserve the damaged file for forensics and
		// start fresh — the stored chain is only ever archived, never
		// extended. I/O and permission errors abort instead: the file
		// may be intact.
		archivedTo = fmt.Sprintf("%s.corrupt-%d", path, time.Now().Unix())
		if renameErr := os.Rename(path, archivedTo); renameErr != nil {
			return nil, "", fmt.Errorf("archiving corrupt chain file: %v (%w)", renameErr, err)
		}
		store, err = beacon.OpenFileStore(path)
	}
	if err != nil {
		return nil, "", err
	}
	if store.Len() > 0 {
		latest, _ := store.Latest()
		store.Close()
		archivedTo = fmt.Sprintf("%s.prev-r%d-%d", path, latest.Round, time.Now().Unix())
		if err := os.Rename(path, archivedTo); err != nil {
			return nil, "", err
		}
		if store, err = beacon.OpenFileStore(path); err != nil {
			return nil, "", err
		}
	}
	return store, archivedTo, nil
}

// BeaconSync is the result of SyncBeacon: a fully verified chain
// replica plus how its genesis was anchored.
type BeaconSync struct {
	// Chain holds the verified entries.
	Chain *BeaconChain
	// Added is how many entries the sync fetched.
	Added int
	// SessionBound reports whether the genesis was derived from the
	// server's schedule certificate (verified against the group's keys)
	// rather than the pre-session group-wide value. Only a
	// session-bound chain proves liveness: without it, an archived
	// previous-session chain verifies identically.
	SessionBound bool
}

// SyncBeacon fetches a server's randomness-beacon chain over HTTP
// (from a node running WithBeaconHTTP) and verifies every share and
// chain link with the group's public keys alone. When the server
// publishes its schedule certificate, the certificate's signatures are
// verified and the chain is anchored at the session genesis they
// determine — rejecting archived previous-session chains replayed as
// live; otherwise (setup still in progress) the sync falls back to the
// pre-session genesis and reports SessionBound=false.
func SyncBeacon(url string, def *Group) (*BeaconSync, error) {
	if def.Policy.BeaconEpochRounds == 0 {
		return nil, errors.New("dissent: the group policy disables the beacon")
	}
	src := &beacon.HTTPSource{URL: url}
	res := &BeaconSync{}
	genesis := beacon.GenesisValue(def.GroupID())
	cert, err := src.Schedule()
	switch {
	case err == nil:
		digest, err := core.VerifyScheduleCert(def, cert.Keys, cert.Sigs)
		if err != nil {
			return nil, fmt.Errorf("dissent: served schedule certificate rejected: %w", err)
		}
		genesis = beacon.SessionGenesis(def.GroupID(), digest)
		res.SessionBound = true
	case errors.Is(err, beacon.ErrNotFound):
		// No certified schedule yet (or a pre-SDK server): fall back to
		// the pre-session anchor.
	default:
		return nil, err
	}
	res.Chain = beacon.NewChain(def.Group(), def.ServerPubKeys(), genesis)
	// Sync verifies every fetched entry (share signatures and chain
	// links) as it appends; a completed sync IS a verified chain.
	if res.Added, err = res.Chain.Sync(src); err != nil {
		return nil, err
	}
	return res, nil
}
