package dissent_test

// Godoc examples for the root SDK surface. They have no "Output:"
// comment — `go test -run Example` compiles them (CI keeps them
// building) without running live groups — and pkg.go.dev renders them
// as usage on the corresponding symbols.

import (
	"context"
	"fmt"
	"log"
	"os/signal"
	"syscall"

	"dissent"
	"dissent/dissentcfg"
)

// ExampleNewServer runs one anytrust-server membership over TCP from
// the files keygen produces: the standard single-group deployment.
func ExampleNewServer() {
	grp, err := dissentcfg.LoadGroup("group.json")
	if err != nil {
		log.Fatal(err)
	}
	keys, err := dissentcfg.LoadKeys("server-0.key", grp)
	if err != nil {
		log.Fatal(err)
	}
	roster, err := dissentcfg.LoadRoster("roster.json")
	if err != nil {
		log.Fatal(err)
	}

	node, err := dissent.NewServer(grp, keys,
		dissent.WithListenAddr(":7000"),
		dissent.WithRoster(roster))
	if err != nil {
		log.Fatal(err)
	}

	// Run owns the transport, timers, and graceful shutdown; cancel
	// the context (here: SIGINT/SIGTERM) to stop serving.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := node.Run(ctx); err != nil {
		log.Fatal(err)
	}
}

// ExampleHost_OpenSession shards two independent groups behind one
// process and one TCP listener: each OpenSession is an isolated
// Session (own engine, schedule, beacon chain, channels) routed over
// the shared fabric by its session tag.
func ExampleHost_OpenSession() {
	host, err := dissent.NewHost(dissent.WithHostListenAddr(":7000"))
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	for _, dir := range []string{"alpha", "beta"} {
		grp, err := dissentcfg.LoadGroup(dir + "/group.json")
		if err != nil {
			log.Fatal(err)
		}
		keys, err := dissentcfg.LoadKeys(dir+"/server-0.key", grp)
		if err != nil {
			log.Fatal(err)
		}
		roster, err := dissentcfg.LoadRoster(dir + "/roster.json")
		if err != nil {
			log.Fatal(err)
		}
		// The member's role is located by its identity key; over TCP a
		// per-group roster is required, with this member's entry
		// pointing at the host's shared listen address.
		sess, err := host.OpenSession(grp, keys, dissent.WithRoster(roster))
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			for m := range sess.Messages() {
				fmt.Printf("%s round %d slot %d: %q\n", sess.SessionID(), m.Round, m.Slot, m.Data)
			}
		}()
	}

	// Aggregated and per-session counters behind one expvar-style hook.
	fmt.Printf("%d sessions on %s\n", host.Metrics().Sessions, host.Addr())

	// Sessions tear down independently; Close stops the whole host.
	for _, sess := range host.Sessions() {
		defer host.CloseSession(sess.SessionID())
	}
}

// ExampleNode_Subscribe watches protocol events — here round
// certifications and blame verdicts — without touching the message
// stream.
func ExampleNode_Subscribe() {
	var node *dissent.Node // built with NewServer or NewClient

	events := node.Subscribe(dissent.EventRoundComplete, dissent.EventBlameVerdict)
	go func() {
		for e := range events { // channel closes when the node shuts down
			switch e.Kind {
			case dissent.EventRoundComplete:
				fmt.Printf("round %d certified\n", e.Round)
			case dissent.EventBlameVerdict:
				fmt.Printf("round %d: disruptor %s expelled\n", e.Round, e.Culprit)
			}
		}
	}()
}
