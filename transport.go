package dissent

import (
	"dissent/internal/transport"
)

// Transport connects a Node to its group's message fabric. The SDK
// ships two implementations — TCP for deployment and SimNet for
// in-process groups — and a Node runs identically over either; custom
// implementations (QUIC, TLS tunnels, test interceptors) plug in the
// same way.
//
// The built-in transports additionally tag every frame with the
// group's session ID, so a peer serving several groups behind one
// listener (a Host) routes traffic to the right session; custom
// Transports carry whole Messages and remain single-session.
type Transport interface {
	// Dial attaches a node: inbound messages are handed to recv (the
	// transport may call it from multiple goroutines; the Node
	// serializes), soft I/O errors to onError (may be nil). The
	// returned Link carries outbound traffic until closed.
	Dial(self NodeID, recv func(*Message), onError func(error)) (Link, error)
}

// sessionDialer is the session-aware dial the built-in transports
// implement: frames are tagged with sid so multi-session peers can
// route them. Node.Run prefers it over Dial when available.
type sessionDialer interface {
	dialSession(sid SessionID, self NodeID, recv func(*Message), onError func(error)) (Link, error)
}

// peerAdder is an optional Link extension for address-based fabrics:
// members admitted by a roster update mid-session are registered so
// outbound traffic can reach them. SimNet links route by node ID and
// need no registration.
type peerAdder interface {
	AddPeer(id NodeID, addr string) error
}

// Link is one attached node's handle on the transport.
type Link interface {
	// Send transmits one protocol message to a group member.
	Send(to NodeID, m *Message) error
	// Addr returns the transport-level local address ("" when the
	// medium has none).
	Addr() string
	// Close detaches the node and releases transport resources.
	Close() error
}

// TCP returns the deployment transport: a listener on `listen` plus
// lazily dialed connections to the roster's addresses. The roster must
// cover every member the node exchanges messages with (servers: all
// servers and their attached clients; clients: their upstream server).
// The roster map is read at send time and must not be mutated once the
// node runs.
func TCP(listen string, roster Roster) Transport {
	return &tcpTransport{listen: listen, roster: roster}
}

type tcpTransport struct {
	listen string
	roster Roster
}

func (t *tcpTransport) Dial(self NodeID, recv func(*Message), onError func(error)) (Link, error) {
	mesh, err := transport.ListenMesh(t.listen, t.roster, recv, onError)
	if err != nil {
		return nil, err
	}
	return tcpLink{mesh: mesh, sid: transport.NoSession}, nil
}

func (t *tcpTransport) dialSession(sid SessionID, self NodeID, recv func(*Message), onError func(error)) (Link, error) {
	mesh, err := transport.NewMesh(t.listen, onError)
	if err != nil {
		return nil, err
	}
	tsid := transport.SessionID(sid)
	if err := mesh.Bind(tsid, t.roster, recv); err != nil {
		mesh.Close()
		return nil, err
	}
	return tcpLink{mesh: mesh, sid: tsid}, nil
}

// meshStatser lets the SDK surface connection health from links backed
// by the built-in TCP mesh (see Session.TransportMetrics).
type meshStatser interface {
	meshStats() transport.Stats
}

// tcpLink owns its mesh: Close tears the whole listener down.
type tcpLink struct {
	mesh *transport.Mesh
	sid  transport.SessionID
}

func (l tcpLink) Send(to NodeID, m *Message) error { return l.mesh.SendSession(l.sid, to, m) }
func (l tcpLink) Addr() string                     { return l.mesh.Addr() }
func (l tcpLink) Close() error                     { return l.mesh.Close() }
func (l tcpLink) AddPeer(id NodeID, addr string) error {
	return l.mesh.AddPeer(l.sid, id, addr)
}
func (l tcpLink) meshStats() transport.Stats { return l.mesh.Stats() }

// meshSessionLink is one Host session's handle on the shared mesh:
// Close unbinds only this session, leaving the listener (and the other
// sessions) running.
type meshSessionLink struct {
	mesh *transport.Mesh
	sid  transport.SessionID
}

func (l meshSessionLink) Send(to NodeID, m *Message) error { return l.mesh.SendSession(l.sid, to, m) }
func (l meshSessionLink) Addr() string                     { return l.mesh.Addr() }
func (l meshSessionLink) Close() error                     { l.mesh.Unbind(l.sid); return nil }
func (l meshSessionLink) AddPeer(id NodeID, addr string) error {
	return l.mesh.AddPeer(l.sid, id, addr)
}
func (l meshSessionLink) meshStats() transport.Stats { return l.mesh.Stats() }
