package dissent

import (
	"dissent/internal/transport"
)

// Transport connects a Node to its group's message fabric. The SDK
// ships two implementations — TCP for deployment and SimNet for
// in-process groups — and a Node runs identically over either; custom
// implementations (QUIC, TLS tunnels, test interceptors) plug in the
// same way.
type Transport interface {
	// Dial attaches a node: inbound messages are handed to recv (the
	// transport may call it from multiple goroutines; the Node
	// serializes), soft I/O errors to onError (may be nil). The
	// returned Link carries outbound traffic until closed.
	Dial(self NodeID, recv func(*Message), onError func(error)) (Link, error)
}

// Link is one attached node's handle on the transport.
type Link interface {
	// Send transmits one protocol message to a group member.
	Send(to NodeID, m *Message) error
	// Addr returns the transport-level local address ("" when the
	// medium has none).
	Addr() string
	// Close detaches the node and releases transport resources.
	Close() error
}

// TCP returns the deployment transport: a listener on `listen` plus
// lazily dialed connections to the roster's addresses. The roster must
// cover every member the node exchanges messages with (servers: all
// servers and their attached clients; clients: their upstream server).
// The roster map is read at send time and must not be mutated once the
// node runs.
func TCP(listen string, roster Roster) Transport {
	return &tcpTransport{listen: listen, roster: roster}
}

type tcpTransport struct {
	listen string
	roster Roster
}

func (t *tcpTransport) Dial(self NodeID, recv func(*Message), onError func(error)) (Link, error) {
	mesh, err := transport.ListenMesh(t.listen, t.roster, recv, onError)
	if err != nil {
		return nil, err
	}
	return tcpLink{mesh}, nil
}

type tcpLink struct{ mesh *transport.Mesh }

func (l tcpLink) Send(to NodeID, m *Message) error { return l.mesh.Send(to, m) }
func (l tcpLink) Addr() string                     { return l.mesh.Addr() }
func (l tcpLink) Close() error                     { return l.mesh.Close() }
