package dissent

import (
	"log/slog"

	"dissent/internal/core"
)

// Option tunes Node construction.
type Option func(*nodeConfig)

type nodeConfig struct {
	transport     Transport
	listenAddr    string
	listenAddrSet bool // distinguishes an explicit WithListenAddr from the ":0" default
	roster        Roster
	store         BeaconStore
	stateStore    *StateStore
	beaconAddr    string
	advertiseAddr string
	onError       func(error)
	logger        *slog.Logger
	msgBuf        int
	pipelineDepth int
	retry         *core.RetryPolicy
	interdict     *core.Interdict
}

// buildConfig folds the options over the defaults. onError and logger
// stay nil here; newSessionShell resolves them together so the default
// error handler logs through the session's own structured logger.
func buildConfig(opts []Option) nodeConfig {
	cfg := nodeConfig{
		listenAddr:    ":0",
		msgBuf:        1024,
		pipelineDepth: 1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithTransport selects the message fabric the node runs over (a
// SimNet, a custom implementation, ...). When omitted, the node uses
// TCP with the configured listen address and roster.
func WithTransport(t Transport) Option {
	return func(c *nodeConfig) { c.transport = t }
}

// WithListenAddr sets the TCP listen address for the default transport
// (ignored when WithTransport is given; rejected by Host.OpenSession,
// whose sessions share the host's listener). Default ":0".
func WithListenAddr(addr string) Option {
	return func(c *nodeConfig) { c.listenAddr, c.listenAddrSet = addr, true }
}

// WithRoster supplies the node-ID → address map for the default TCP
// transport (ignored when WithTransport is given).
func WithRoster(r Roster) Option {
	return func(c *nodeConfig) { c.roster = r }
}

// WithBeaconStore backs the node's beacon chain replica with a durable
// store (see OpenBeaconStore); omitted, the chain lives in memory. The
// caller retains ownership: close the store after Run returns.
func WithBeaconStore(s BeaconStore) Option {
	return func(c *nodeConfig) { c.store = s }
}

// WithStateStore backs the node's session state — the certified
// roster-update log, blame transcripts, the restart snapshot, and
// (unless WithBeaconStore overrides it) the beacon chain — with a
// durable embedded store (see OpenStateStore). A server restarted
// against a store holding a live session snapshot resumes that
// session instead of waiting out a fresh setup; a client gains a
// durable roster log it can replay to stragglers. The caller retains
// ownership: close the store after Run returns.
func WithStateStore(s *StateStore) Option {
	return func(c *nodeConfig) { c.stateStore = s }
}

// WithBeaconHTTP serves the node's beacon chain over HTTP on addr
// while the node runs: GET /beacon/latest, /beacon/{round},
// /beacon/from/{round}, /beacon/range/{from}, /beacon/info, and — on
// servers, once setup completes — /beacon/schedule, the schedule
// certificate that binds the chain's session genesis.
func WithBeaconHTTP(addr string) Option {
	return func(c *nodeConfig) { c.beaconAddr = addr }
}

// WithAdvertiseAddr sets the dialable address a joiner embeds in its
// join request (see NewJoiner), so servers can attach it to the TCP
// fabric mid-session. Unnecessary on address-less fabrics like SimNet.
func WithAdvertiseAddr(addr string) Option {
	return func(c *nodeConfig) { c.advertiseAddr = addr }
}

// WithErrorHandler observes soft errors — transport read failures,
// messages the engine rejects — that do not stop the node. The default
// handler logs them at Warn through the session's structured logger
// (see WithLogger).
func WithErrorHandler(fn func(error)) Option {
	return func(c *nodeConfig) { c.onError = fn }
}

// WithLogger routes the session's structured logs — engine round
// milestones at Debug, blame verdicts and roster updates at Info, soft
// errors at Warn — through the given logger, with session, group, and
// role attributes attached. Default slog.Default(). Host sessions
// inherit the host's logger unless overridden.
func WithLogger(l *slog.Logger) Option {
	return func(c *nodeConfig) { c.logger = l }
}

// WithPipelineDepth sets the round pipeline depth — how many DC-net
// rounds the node keeps in flight (default 1, the serial engine). At
// depth 2 servers open round r+1's submission window the moment round
// r's collection closes, running r's pad/combine/certify concurrently
// with r+1's collection, and clients submit into r+1 while awaiting
// r's output; when certification is the bottleneck this roughly
// doubles round throughput. Every member of a group must run the same
// depth. Values below 1 are ignored.
func WithPipelineDepth(d int) Option {
	return func(c *nodeConfig) {
		if d > 0 {
			c.pipelineDepth = d
		}
	}
}

// WithRetryPolicy overrides the engine's retransmission backoff — the
// capped exponential-with-jitter discipline behind server round-phase
// rebroadcasts, roster-phase rebroadcasts, and client stale-submission
// resends. Zero fields keep their defaults (first retry at the
// engine's legacy period, cap 8× that, factor 2, jitter 0.2). All
// members may run different policies; only liveness, not correctness,
// depends on them.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *nodeConfig) { c.retry = &p }
}

// WithInterdict installs a scripted byzantine behavior hook (see
// Interdict and the internal adversary catalog behind the byzantine
// harness scenarios): the node runs the honest protocol and the
// interdict tampers with what it computes or sends. Robustness
// harnesses only — production nodes must leave this unset.
func WithInterdict(i *Interdict) Option {
	return func(c *nodeConfig) { c.interdict = i }
}

// WithMessageBuffer sets the Messages() channel capacity (default
// 1024). When the application does not drain the channel, the oldest
// undelivered outputs are dropped — the protocol never blocks on a
// slow consumer.
func WithMessageBuffer(n int) Option {
	return func(c *nodeConfig) {
		if n > 0 {
			c.msgBuf = n
		}
	}
}
