package dissent

import (
	"context"
	"encoding/hex"
	"errors"
	"time"

	"dissent/internal/core"
)

// Membership churn through the SDK. Expulsion and admission are
// server-side policy decisions (Session.Expel, Session.Admit, or blame
// verdicts); the shared mechanism — a RosterUpdate certified by every
// server and hash-chained to the previous roster version — applies at
// each beacon epoch boundary (Policy.BeaconEpochRounds). Clients
// observe churn through EventMemberJoined / EventMemberExpelled /
// EventRosterChanged subscriptions, expelled clients re-enter with
// Session.Rejoin, and brand-new members attach mid-session with
// NewJoiner.

// RosterMemberInfo describes one member in a roster snapshot.
type RosterMemberInfo struct {
	ID       string `json:"id"`
	Role     string `json:"role"`
	Expelled bool   `json:"expelled,omitempty"`
}

// RosterInfo is a point-in-time snapshot of a session's certified
// roster, served by dissentd's /roster endpoint.
type RosterInfo struct {
	// Session is the session's identifier (the genesis group ID, stable
	// across churn).
	Session SessionID `json:"session"`
	// Group is the group's human-readable name.
	Group string `json:"group"`
	// Version is the roster version: 0 at genesis, +1 per epoch
	// boundary's certified update.
	Version uint64 `json:"version"`
	// Digest is the roster hash-chain head (hex).
	Digest string `json:"digest"`
	// ActiveClients counts clients not currently expelled.
	ActiveClients int `json:"active_clients"`
	// Members lists every roster member with role and expulsion state.
	Members []RosterMemberInfo `json:"members"`
	// Update is the latest certified RosterUpdate (hex of its canonical
	// encoding), verifiable against the group's server keys; empty
	// before the first boundary and on client sessions.
	Update string `json:"update,omitempty"`
}

// RosterVersion returns the session's current roster version.
func (s *Session) RosterVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.server != nil {
		return s.server.RosterVersion()
	}
	return s.client.RosterVersion()
}

// RosterInfo returns a snapshot of the session's certified roster.
func (s *Session) RosterInfo() RosterInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	def := s.def
	if s.server != nil {
		def = s.server.Definition()
	} else if s.client != nil {
		def = s.client.Definition()
	}
	digest := def.RosterDigest()
	info := RosterInfo{
		Session:       s.sid,
		Group:         def.Name,
		Version:       def.Version,
		Digest:        hex.EncodeToString(digest[:]),
		ActiveClients: def.ActiveClients(),
	}
	for _, m := range def.Servers {
		info.Members = append(info.Members, RosterMemberInfo{ID: m.ID.String(), Role: "server"})
	}
	for _, m := range def.Clients {
		info.Members = append(info.Members, RosterMemberInfo{ID: m.ID.String(), Role: "client", Expelled: m.Expelled})
	}
	if s.server != nil {
		if u := s.server.LatestRosterUpdate(); u != nil {
			info.Update = hex.EncodeToString(u.Encode())
		}
	}
	return info
}

// Admit pre-approves an identity public key (its canonical encoding,
// e.g. EncodePublicKey) for admission on this server session: a
// subsequent JoinRequest bearing the key is accepted even under closed
// admission. The member enters only via the certified roster update at
// the next epoch boundary.
func (s *Session) Admit(encodedPub []byte) error {
	if s.server == nil {
		return errors.New("dissent: Admit on a client session (admission is server policy)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("dissent: session is shut down")
	}
	s.server.Admit(encodedPub)
	return nil
}

// Expel queues a client for removal at the next epoch boundary on this
// server session. The expulsion takes effect everywhere at once when
// the certified roster update applies.
func (s *Session) Expel(id NodeID) error {
	if s.server == nil {
		return errors.New("dissent: Expel on a client session (expulsion is server policy)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("dissent: session is shut down")
	}
	return s.server.Expel(id)
}

// rejoinRetry paces re-sent rejoin requests while waiting for an
// eligible epoch boundary.
const rejoinRetry = 300 * time.Millisecond

// Rejoin asks the group to re-admit this (expelled) client. It sends a
// signed rejoin request to the upstream server — retrying across epoch
// boundaries, since eligibility is gated by the policy cooldown
// (Policy.ReadmitCooldownRounds) — and blocks until a certified roster
// update re-admits the client, the context ends, or the session shuts
// down. After Rejoin returns nil the client is active again and resumes
// submitting with its original slot and seeds.
func (s *Session) Rejoin(ctx context.Context) error {
	if s.client == nil {
		return errors.New("dissent: Rejoin on a server session")
	}
	events := s.Subscribe(EventMemberJoined)
	defer s.unsubscribe(events)
	send := func() (*core.Output, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return nil, errors.New("dissent: session is shut down")
		}
		if !s.client.Expelled() {
			return nil, nil // already (re-)admitted
		}
		return s.client.RequestRejoin(time.Now())
	}
	// The first send is strict: calling Rejoin before this client has
	// learned of its own expulsion (wait for EventMemberExpelled) is a
	// caller bug that would otherwise silently do nothing.
	out, err := send()
	if err != nil {
		return err
	}
	if out == nil {
		return errors.New("dissent: Rejoin on a client that is not expelled")
	}
	s.dispatch(out)

	ticker := time.NewTicker(rejoinRetry)
	defer ticker.Stop()
	for {
		select {
		case e, ok := <-events:
			if !ok {
				return errors.New("dissent: session shut down during rejoin")
			}
			if e.Culprit == s.id {
				return nil
			}
		case <-ticker.C:
			// Re-send: the previous request may have raced a version bump
			// or awaits the cooldown. Errors here are soft (e.g. already
			// re-admitted, with the event still in flight).
			if out, err := send(); err == nil && out != nil {
				s.dispatch(out)
			} else if err == nil && out == nil {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// unsubscribe detaches a Subscribe channel and closes it.
func (s *Session) unsubscribe(ch <-chan Event) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.chansDone {
		return
	}
	for i, sub := range s.subs {
		if sub.ch == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			close(sub.ch)
			return
		}
	}
}

// EncodePublicKey returns the canonical encoding of a member's identity
// public key — the form Session.Admit and JoinRequests use.
func EncodePublicKey(grp *Group, keys Keys) []byte {
	return grp.Group().Encode(keys.Identity.Public)
}

// NewJoiner builds a client node for a key that is not (yet) in the
// group definition. Run attaches it to the fabric and sends a join
// request to a server; once an epoch boundary's certified roster update
// admits the key (Session.Admit on a server, or Policy.OpenAdmission),
// the node bootstraps from its upstream server's state snapshot and
// behaves like any client. On TCP fabrics, pass WithAdvertiseAddr so
// servers can dial the joiner mid-session.
func NewJoiner(def *Group, keys Keys, opts ...Option) (*Node, error) {
	if keys.Identity == nil {
		return nil, errors.New("dissent: joiner keys lack an identity keypair")
	}
	s, coreOpts := newSessionShell(RoleClient, def, buildConfig(opts))
	cl, err := core.NewJoinerClient(def, keys.Identity, s.cfg.advertiseAddr, coreOpts)
	if err != nil {
		return nil, err
	}
	s.client, s.engine, s.id = cl, cl, cl.ID()
	return &Node{s: s}, nil
}

// Rejoin re-enters the group after expulsion; see Session.Rejoin.
func (n *Node) Rejoin(ctx context.Context) error { return n.s.Rejoin(ctx) }

// RosterVersion returns the node's current roster version.
func (n *Node) RosterVersion() uint64 { return n.s.RosterVersion() }

// Admit pre-approves a key for admission; see Session.Admit.
func (n *Node) Admit(encodedPub []byte) error { return n.s.Admit(encodedPub) }

// Expel queues a client's removal; see Session.Expel.
func (n *Node) Expel(id NodeID) error { return n.s.Expel(id) }
