package dissent_test

// Multi-session hosting tests: one Host serving several independent
// groups over one shared fabric — an in-process SimNet hub and a
// single TCP listener — with per-session isolation, independent
// teardown, and metrics.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"dissent"
)

// reservePorts grabs n distinct free loopback ports, holding every
// listener open until all are allocated so the batch cannot hand out
// duplicates (reserve-then-close one at a time can).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]interface{ Close() error }, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// hostGroup is one group's worth of members: the host runs server 0,
// the rest are standalone Nodes.
type hostGroup struct {
	sKeys, cKeys []dissent.Keys
	grp          *dissent.Group
	sess         *dissent.Session // host-side membership (server 0)
	peers        *sdkGroup        // standalone members
	payload      string
}

// startHostGroup opens the group's server-0 membership on the host and
// runs every other member as a standalone Node.
func startHostGroup(t *testing.T, host *dissent.Host, g *hostGroup,
	sessOpts func() []dissent.Option,
	peerOpts func(role dissent.Role, i int) []dissent.Option) {
	t.Helper()
	sess, err := host.OpenSession(g.grp, g.sKeys[0], sessOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	g.sess = sess
	if sess.Role() != dissent.RoleServer {
		t.Fatalf("host session role = %v, want server", sess.Role())
	}
	if sess.SessionID() != dissent.GroupSessionID(g.grp) {
		t.Fatal("session ID does not match the group ID")
	}
	g.peers = startGroup(t, g.grp, g.sKeys[1:], g.cKeys, func(role dissent.Role, i int) []dissent.Option {
		if role == dissent.RoleServer {
			i++ // server 0 lives on the host
		}
		return peerOpts(role, i)
	})
}

// driveConcurrently sends each group's payload and waits until every
// host session has delivered its own group's payload and certified a
// round. It returns everything each session delivered, for
// cross-session assertions.
func driveConcurrently(t *testing.T, groups []*hostGroup) map[int][]string {
	t.Helper()
	deadline := time.After(90 * time.Second)
	rounds := make([]<-chan dissent.Event, len(groups))
	for i, g := range groups {
		rounds[i] = g.sess.Subscribe(dissent.EventRoundComplete)
		if err := g.peers.clients[0].Send(context.Background(), []byte(g.payload)); err != nil {
			t.Fatal(err)
		}
	}
	delivered := make(map[int][]string)
	for i, g := range groups {
		found := false
		for !found {
			select {
			case m, ok := <-g.sess.Messages():
				if !ok {
					t.Fatalf("group %d: session message channel closed early", i)
				}
				if len(m.Data) > 0 {
					delivered[i] = append(delivered[i], string(m.Data))
				}
				if string(m.Data) == g.payload {
					found = true
				}
			case <-deadline:
				t.Fatalf("group %d: payload not delivered", i)
			}
		}
		select {
		case _, ok := <-rounds[i]:
			if !ok {
				t.Fatalf("group %d: round subscription closed early", i)
			}
		case <-deadline:
			t.Fatalf("group %d: no certified round", i)
		}
	}
	return delivered
}

// assertIsolated fails if any session delivered another group's
// payload.
func assertIsolated(t *testing.T, groups []*hostGroup, delivered map[int][]string) {
	t.Helper()
	for i := range groups {
		for j, g := range groups {
			if i == j {
				continue
			}
			for _, d := range delivered[i] {
				if d == g.payload {
					t.Errorf("group %d's session delivered group %d's payload %q: sessions crossed", i, j, d)
				}
			}
		}
	}
}

// TestHostTwoSessionsSimNet is the acceptance scenario over the
// in-process hub: one Host, two independent groups, one SimNet, both
// driven to certified rounds concurrently, then torn down
// independently.
func TestHostTwoSessionsSimNet(t *testing.T) {
	policy := testPolicy(nil)
	net := dissent.NewSimNet()
	defer net.Close()
	host, err := dissent.NewHost(dissent.WithHostSimNet(net))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	if host.Addr() != "sim" {
		t.Fatalf("SimNet host addr = %q", host.Addr())
	}

	groups := make([]*hostGroup, 2)
	for i := range groups {
		g := &hostGroup{payload: fmt.Sprintf("tenant %d secret", i)}
		g.sKeys, g.cKeys, g.grp = buildGroup(t, 2, 3, policy)
		groups[i] = g
		startHostGroup(t, host, g,
			func() []dissent.Option { return nil },
			func(dissent.Role, int) []dissent.Option {
				return []dissent.Option{dissent.WithTransport(net)}
			})
		defer g.peers.stop(t)
	}
	if got := len(host.Sessions()); got != 2 {
		t.Fatalf("host has %d sessions, want 2", got)
	}

	delivered := driveConcurrently(t, groups)
	assertIsolated(t, groups, delivered)

	// Metrics: both sessions progressed and the host aggregates them.
	hm := host.Metrics()
	if hm.Sessions != 2 || hm.SessionsOpened != 2 {
		t.Errorf("host metrics sessions=%d opened=%d, want 2/2", hm.Sessions, hm.SessionsOpened)
	}
	if hm.RoundsCompleted == 0 || hm.BytesIn == 0 || hm.BytesOut == 0 || hm.MessagesIn == 0 {
		t.Errorf("host metrics did not accumulate traffic: %+v", hm)
	}
	if len(hm.PerSession) != 2 {
		t.Fatalf("per-session metrics count = %d", len(hm.PerSession))
	}
	for _, sm := range hm.PerSession {
		if sm.RoundsCompleted == 0 || sm.RoundsPerSec <= 0 {
			t.Errorf("session %s metrics stalled: %+v", sm.Session, sm)
		}
		if sm.Role != "server" {
			t.Errorf("session %s role = %q", sm.Session, sm.Role)
		}
	}

	// Independent teardown: closing session 0 leaves session 1 running
	// — it keeps certifying rounds.
	moreRounds := groups[1].sess.Subscribe(dissent.EventRoundComplete)
	if err := host.CloseSession(groups[0].sess.SessionID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-groups[0].sess.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("closed session did not finish shutting down")
	}
	if host.Session(groups[0].sess.SessionID()) != nil {
		t.Fatal("closed session still registered on the host")
	}
	select {
	case _, ok := <-moreRounds:
		if !ok {
			t.Fatal("surviving session's subscription closed")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("surviving session stopped certifying rounds after sibling teardown")
	}
	hm = host.Metrics()
	if hm.Sessions != 1 || hm.SessionsClosed != 1 {
		t.Errorf("after teardown: sessions=%d closed=%d, want 1/1", hm.Sessions, hm.SessionsClosed)
	}
	if err := host.CloseSession(groups[0].sess.SessionID()); err == nil {
		t.Error("closing an already-closed session succeeded")
	}
}

// TestHostTwoSessionsTCP runs two independent groups behind one
// Host with one shared TCP listener: remote members of both groups
// dial the same address, and session-tagged frames route each message
// to the right engine.
func TestHostTwoSessionsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	policy := testPolicy(func(p *dissent.Policy) { p.WindowMin = 20 * time.Millisecond })
	host, err := dissent.NewHost(dissent.WithHostListenAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	hostAddr := host.Addr()

	// Reserve every standalone member's port in one batch — the
	// listeners stay open until all are allocated, so no two members
	// can be handed the same port.
	const perGroup = 1 + 3 // servers beyond the host's + clients
	ports := reservePorts(t, 2*perGroup)

	groups := make([]*hostGroup, 2)
	for i := range groups {
		g := &hostGroup{payload: fmt.Sprintf("tcp tenant %d secret", i)}
		g.sKeys, g.cKeys, g.grp = buildGroup(t, 2, 3, policy)
		groups[i] = g

		// One roster per group: server 0 is the host's shared listener,
		// everyone else gets a loopback port of their own.
		roster := dissent.Roster{}
		batch := ports[i*perGroup : (i+1)*perGroup]
		sAddrs := make([]string, len(g.sKeys))
		cAddrs := make([]string, len(g.cKeys))
		sAddrs[0] = hostAddr
		for j := 1; j < len(g.sKeys); j++ {
			sAddrs[j] = batch[j-1]
		}
		for j := range g.cKeys {
			cAddrs[j] = batch[len(g.sKeys)-1+j]
		}
		for j, k := range g.sKeys {
			roster[memberID(g.grp, k)] = sAddrs[j]
		}
		for j, k := range g.cKeys {
			roster[memberID(g.grp, k)] = cAddrs[j]
		}

		startHostGroup(t, host, g,
			func() []dissent.Option { return []dissent.Option{dissent.WithRoster(roster)} },
			func(role dissent.Role, j int) []dissent.Option {
				addr := sAddrs
				if role == dissent.RoleClient {
					addr = cAddrs
				}
				return []dissent.Option{dissent.WithListenAddr(addr[j]), dissent.WithRoster(roster)}
			})
		defer g.peers.stop(t)
	}

	delivered := driveConcurrently(t, groups)
	assertIsolated(t, groups, delivered)

	hm := host.Metrics()
	if hm.Addr != hostAddr {
		t.Errorf("host metrics addr = %q, want %q", hm.Addr, hostAddr)
	}
	if hm.Sessions != 2 || hm.RoundsCompleted == 0 {
		t.Errorf("host metrics: %+v", hm)
	}
}

// TestHostOpenSessionErrors pins the host's validation paths: foreign
// keys, duplicate sessions, missing roster over TCP, and use after
// Close.
func TestHostOpenSessionErrors(t *testing.T) {
	policy := testPolicy(nil)
	sKeys, cKeys, grp := buildGroup(t, 2, 2, policy)
	net := dissent.NewSimNet()
	defer net.Close()

	// Foreign keys: not a member of the group.
	stranger, err := dissent.GenerateClientKeys()
	if err != nil {
		t.Fatal(err)
	}
	simHost, err := dissent.NewHost(dissent.WithHostSimNet(net))
	if err != nil {
		t.Fatal(err)
	}
	defer simHost.Close()
	if _, err := simHost.OpenSession(grp, stranger); err == nil {
		t.Error("OpenSession accepted keys outside the group")
	}

	// Role inference: client keys open a client session.
	sess, err := simHost.OpenSession(grp, cKeys[0])
	if err != nil {
		t.Fatal(err)
	}
	if sess.Role() != dissent.RoleClient {
		t.Errorf("role = %v, want client", sess.Role())
	}

	// One membership per group per host.
	if _, err := simHost.OpenSession(grp, cKeys[1]); err == nil {
		t.Error("second membership of the same group accepted")
	}

	// Options that pick a private fabric are rejected loudly: host
	// sessions share the host's listener.
	if _, err := simHost.OpenSession(grp, sKeys[0], dissent.WithListenAddr(":7001")); err == nil {
		t.Error("WithListenAddr on a host session accepted")
	}
	if _, err := simHost.OpenSession(grp, sKeys[0], dissent.WithTransport(net)); err == nil {
		t.Error("WithTransport on a host session accepted")
	}

	// TCP hosts require a per-session roster.
	tcpHost, err := dissent.NewHost(dissent.WithHostListenAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tcpHost.OpenSession(grp, sKeys[0]); err == nil {
		t.Error("TCP OpenSession without a roster accepted")
	}
	tcpHost.Close()
	if _, err := tcpHost.OpenSession(grp, sKeys[0], dissent.WithRoster(dissent.Roster{})); err == nil {
		t.Error("OpenSession on a closed host accepted")
	}
}
