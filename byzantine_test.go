package dissent_test

// Byzantine-churn integration test: a scripted adversary JOINS an
// established session through the public joiner path, starts jamming
// other members' slots, and must be traced, convicted, and certifiably
// removed — after which the honest group's round rate recovers to
// within 20% of its pre-attack baseline. The whole arc runs through
// the public SDK alone (the attack behavior comes from the
// internal/adversary catalog via WithInterdict, exactly how the
// cluster scenarios script it).

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"dissent"
	"dissent/internal/adversary"
)

// measureRoundRate counts certified rounds arriving on ch for the
// window and returns rounds/second.
func measureRoundRate(t *testing.T, ch <-chan dissent.Event, window time.Duration) float64 {
	t.Helper()
	start := time.Now()
	deadline := time.After(window)
	n := 0
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				t.Fatal("round subscription closed early")
			}
			n++
		case <-deadline:
			return float64(n) / time.Since(start).Seconds()
		}
	}
}

func TestByzantineJoinerExpelledAndRateRecovers(t *testing.T) {
	policy := testPolicy(func(p *dissent.Policy) {
		p.BeaconEpochRounds = 4
		p.ReadmitCooldownRounds = 0
		p.Alpha = 0.5
		p.WindowThreshold = 0.6
		p.OpenAdmission = false
	})
	sKeys, cKeys, grp := buildGroup(t, 2, 3, policy)
	jKeys, err := dissent.GenerateClientKeys()
	if err != nil {
		t.Fatal(err)
	}
	net := dissent.NewSimNet()
	defer net.Close()

	// The joiner is an honest engine plus the catalog's slot-jam
	// behavior behind an arm switch: it joins clean, then turns.
	adv, err := adversary.New(adversary.Behavior{Kind: adversary.SlotJam, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	inner := adv.Interdict()
	var armed atomic.Bool
	jam := &dissent.Interdict{Vector: func(info dissent.VectorInfo, vec []byte) {
		if armed.Load() {
			inner.Vector(info, vec)
		}
	}}
	joiner, err := dissent.NewJoiner(grp, jKeys,
		dissent.WithTransport(net), dissent.WithInterdict(jam))
	if err != nil {
		t.Fatal(err)
	}

	g := startGroup(t, grp, sKeys, cKeys, func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net)}
	})
	defer g.stop(t)

	server := g.servers[0]
	rounds := server.Subscribe(dissent.EventRoundComplete)
	joined := server.Subscribe(dissent.EventMemberJoined)
	expelCh := server.Subscribe(dissent.EventMemberExpelled)
	verdictCh := g.clients[0].Subscribe(dissent.EventBlameVerdict)
	waitEvent(t, "first certified round", rounds, func(dissent.Event) bool { return true }, 60*time.Second)

	// Continuous honest traffic keeps slots open for the jammer to hit
	// and gives the honest victims fresh disruptions to witness.
	trafficCtx, stopTraffic := context.WithCancel(context.Background())
	defer stopTraffic()
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-trafficCtx.Done():
				return
			case <-tick.C:
				_ = g.clients[0].Send(trafficCtx, []byte("honest steady traffic under byzantine churn"))
				_ = g.clients[1].Send(trafficCtx, []byte("more honest steady traffic"))
			}
		}
	}()

	// Admit and run the (still honest) joiner. Closed admission: the
	// pre-approval must land on the joiner's contact server, definition
	// server 0 (startGroup may order nodes differently).
	var contact *dissent.Node
	for _, s := range g.servers {
		if s.ID() == grp.Servers[0].ID {
			contact = s
		}
	}
	if contact == nil {
		t.Fatal("contact server not running")
	}
	if err := contact.Admit(dissent.EncodePublicKey(grp, jKeys)); err != nil {
		t.Fatal(err)
	}
	joinCtx, cancelJoin := context.WithCancel(context.Background())
	defer cancelJoin()
	joinErr := make(chan error, 1)
	go func() { joinErr <- joiner.Run(joinCtx) }()
	defer func() {
		cancelJoin()
		if err := <-joinErr; err != nil {
			t.Errorf("joiner Run returned %v", err)
		}
	}()
	waitEvent(t, "byzantine joiner admission", joined, func(e dissent.Event) bool {
		return e.Culprit == joiner.ID()
	}, 120*time.Second)

	// Pre-attack baseline round rate.
	preRate := measureRoundRate(t, rounds, 3*time.Second)
	if preRate <= 0 {
		t.Fatalf("no certified rounds in the baseline window")
	}

	// Turn: the admitted member starts jamming. The honest victims must
	// detect, accuse, convict (verdict at an honest client), and the
	// servers must certify the removal at an epoch boundary.
	armed.Store(true)
	waitEvent(t, "blame verdict against the jammer", verdictCh, func(e dissent.Event) bool {
		return e.Culprit == joiner.ID()
	}, 120*time.Second)
	waitEvent(t, "certified expulsion of the jammer", expelCh, func(e dissent.Event) bool {
		return e.Culprit == joiner.ID()
	}, 120*time.Second)
	armed.Store(false)

	// Recovery: drain the subscription backlog accumulated while we
	// waited on the expulsion, then measure the post-attack rate fresh.
	for {
		select {
		case <-rounds:
			continue
		default:
		}
		break
	}
	postRate := measureRoundRate(t, rounds, 3*time.Second)
	if postRate < 0.8*preRate {
		t.Fatalf("round rate did not recover: pre-attack %.1f/s, post-expulsion %.1f/s (< 80%%)", preRate, postRate)
	}
	t.Logf("round rate: pre-attack %.1f/s, post-expulsion %.1f/s", preRate, postRate)
}
