package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dissent/internal/group"
)

// Hub is the real-time sibling of the discrete-event Network: an
// in-process message fabric connecting a set of nodes by ID, with an
// optional latency model, running on the wall clock. It exists so the
// public dissent SDK can offer the same Transport contract over an
// in-memory medium as over TCP — tests and the quickstart example run
// the production Node lifecycle without sockets.
//
// Like the TCP mesh, the hub routes by (session, member): many
// concurrent Dissent groups share one hub, each under its own session
// ID, and a payload sent within one session can never surface in
// another. The session-less Attach/Detach/Send forms address the zero
// session and remain equivalent to the pre-session behavior.
//
// Payloads are opaque to the hub. Delivery preserves per-(from,to)
// FIFO order as long as Latency is a pure function of the endpoint
// pair: each member drains a deliver-at-ordered queue (sequence
// numbers break ties), so two messages A→B sent in order are handed
// to B's callback in order, exactly like a TCP stream.
type Hub struct {
	// Latency returns the one-way propagation delay from → to. Nil (or
	// a zero return) delivers immediately. Set before the first Attach;
	// it is read concurrently afterwards.
	Latency func(from, to group.NodeID) time.Duration

	mu      sync.Mutex
	members map[hubKey]*hubMember
	pending map[hubKey][]hubDelivery
	seq     int64
	closed  bool

	// Fault injection (SetLinkFault): per-link specs, a seeded RNG for
	// reproducible drop/jitter draws, and per-directed-pair last
	// scheduled delivery times so jitter never reorders a pair's
	// stream (delivery stays TCP-like FIFO).
	faults   map[linkKey]FaultSpec
	faultRNG *rand.Rand
	lastAt   map[pairKey]time.Time

	// Timers armed by ScheduleLinkFault; stopped on Close so a
	// scenario's pre-programmed fault schedule cannot outlive the hub.
	faultTimers []*time.Timer
}

// FaultSpec models an impaired link for fault-injection tests: fixed
// extra one-way latency, uniform random jitter on top, a probabilistic
// drop rate in [0,1], and a hard partition until a wall-clock deadline
// (every payload dropped before it). Jitter never reorders a directed
// pair's stream: delivery times are clamped monotonic per (from, to),
// mirroring TCP's in-order delivery under delay variance.
type FaultSpec struct {
	Latency        time.Duration
	Jitter         time.Duration
	DropRate       float64
	PartitionUntil time.Time
}

// linkKey identifies an undirected member pair.
type linkKey struct{ a, b group.NodeID }

// pairKey identifies a directed per-session stream.
type pairKey struct {
	sid      [32]byte
	from, to group.NodeID
}

func normLink(a, b group.NodeID) linkKey {
	if string(a[:]) > string(b[:]) {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// SetLinkFault installs (or, with a zero spec, effectively clears) a
// fault model on the undirected link between a and b, applying to both
// directions and every session. Draws come from a deterministic seeded
// RNG (SetFaultSeed), so a failing churn test replays identically.
func (h *Hub) SetLinkFault(a, b group.NodeID, spec FaultSpec) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setLinkFaultLocked(a, b, spec)
}

// ClearLinkFault removes the fault model on a link.
func (h *Hub) ClearLinkFault(a, b group.NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.faults, normLink(a, b))
}

// setLinkFaultLocked is SetLinkFault's body for callers holding h.mu.
func (h *Hub) setLinkFaultLocked(a, b group.NodeID, spec FaultSpec) {
	if h.faults == nil {
		h.faults = make(map[linkKey]FaultSpec)
		h.lastAt = make(map[pairKey]time.Time)
	}
	h.faults[normLink(a, b)] = spec
}

// ScheduleLinkFault arms a timed fault window on the undirected link
// between a and b: after `after` elapses the spec installs (both
// directions, every session), and `duration` later it clears again. A
// zero or negative duration leaves the fault in place until
// ClearLinkFault. Scenario harnesses use this to pre-program a run's
// whole fault schedule before the workload starts; pending windows die
// with the hub on Close.
func (h *Hub) ScheduleLinkFault(a, b group.NodeID, spec FaultSpec, after, duration time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	apply := time.AfterFunc(after, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if h.closed {
			return
		}
		h.setLinkFaultLocked(a, b, spec)
	})
	h.faultTimers = append(h.faultTimers, apply)
	if duration > 0 {
		clear := time.AfterFunc(after+duration, func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.closed {
				return
			}
			delete(h.faults, normLink(a, b))
		})
		h.faultTimers = append(h.faultTimers, clear)
	}
}

// SetFaultSeed seeds the fault RNG (default 1) for reproducible runs.
func (h *Hub) SetFaultSeed(seed int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faultRNG = rand.New(rand.NewSource(seed))
}

// applyFaultLocked folds the link's fault spec into the delivery delay.
// It returns drop=true when the payload is lost. Callers hold h.mu.
func (h *Hub) applyFaultLocked(now time.Time, sid [32]byte, from, to group.NodeID, lat time.Duration) (time.Time, bool) {
	at := now.Add(lat)
	if spec, ok := h.faults[normLink(from, to)]; ok {
		if now.Before(spec.PartitionUntil) {
			return at, true
		}
		if h.faultRNG == nil {
			h.faultRNG = rand.New(rand.NewSource(1))
		}
		if spec.DropRate > 0 && h.faultRNG.Float64() < spec.DropRate {
			return at, true
		}
		at = at.Add(spec.Latency)
		if spec.Jitter > 0 {
			at = at.Add(time.Duration(h.faultRNG.Int63n(int64(spec.Jitter))))
		}
	}
	// Per-pair monotonic clamp: a later send never arrives before an
	// earlier one, so jitter cannot reorder the stream. Applied to every
	// pair once fault injection is in use — clearing or replacing a
	// link's spec must not let fresh sends overtake jittered in-flight
	// ones.
	pk := pairKey{sid: sid, from: from, to: to}
	if last := h.lastAt[pk]; at.Before(last) {
		at = last
	}
	h.lastAt[pk] = at
	return at, false
}

// hubKey addresses one member of one session.
type hubKey struct {
	sid [32]byte
	id  group.NodeID
}

// pendingCap bounds payloads buffered for a member that has not
// attached yet (the in-process analogue of TCP dial retries: a node
// may start sending before its peers' Run has dialed the medium).
const pendingCap = 4096

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{
		members: make(map[hubKey]*hubMember),
		pending: make(map[hubKey][]hubDelivery),
	}
}

// Attach registers a member of the zero session (the single-group
// form): inbound payloads — including any buffered while the member
// was not yet attached — are handed to recv, one at a time, from a
// dedicated dispatcher goroutine.
func (h *Hub) Attach(id group.NodeID, recv func(payload any)) error {
	return h.AttachSession([32]byte{}, id, recv)
}

// AttachSession registers a member of one session. The same node ID
// may attach under several sessions; each attachment has its own
// inbound queue and dispatcher.
func (h *Hub) AttachSession(sid [32]byte, id group.NodeID, recv func(payload any)) error {
	k := hubKey{sid: sid, id: id}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("simnet: hub closed")
	}
	if _, dup := h.members[k]; dup {
		return fmt.Errorf("simnet: member %s already attached in session %x", id, sid[:4])
	}
	m := newHubMember()
	h.members[k] = m
	for _, d := range h.pending[k] {
		m.enqueue(d)
	}
	delete(h.pending, k)
	go m.run(recv)
	return nil
}

// Detach removes a zero-session member and stops its dispatcher;
// payloads still in flight to it are dropped.
func (h *Hub) Detach(id group.NodeID) {
	h.DetachSession([32]byte{}, id)
}

// DetachSession removes one session's member.
func (h *Hub) DetachSession(sid [32]byte, id group.NodeID) {
	k := hubKey{sid: sid, id: id}
	h.mu.Lock()
	m := h.members[k]
	delete(h.members, k)
	h.mu.Unlock()
	if m != nil {
		m.close()
	}
}

// Close detaches every member of every session and cancels any fault
// windows still scheduled.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	members := h.members
	h.members = make(map[hubKey]*hubMember)
	timers := h.faultTimers
	h.faultTimers = nil
	h.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, m := range members {
		m.close()
	}
}

// Send queues one payload within the zero session.
func (h *Hub) Send(from, to group.NodeID, payload any) error {
	return h.SendSession([32]byte{}, from, to, payload)
}

// SendSession queues one payload for delivery to `to` within a session
// after the modeled latency. A member that has not attached yet
// receives buffered payloads upon attaching — group members start in
// arbitrary order, exactly as on the TCP path, where dials retry until
// the peer's listener is up. The buffer is bounded; overflow fails the
// send.
func (h *Hub) SendSession(sid [32]byte, from, to group.NodeID, payload any) error {
	var lat time.Duration
	if h.Latency != nil {
		lat = h.Latency(from, to)
	}
	k := hubKey{sid: sid, id: to}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("simnet: hub closed")
	}
	now := time.Now()
	at := now.Add(lat)
	if h.faults != nil {
		var drop bool
		if at, drop = h.applyFaultLocked(now, sid, from, to, lat); drop {
			return nil // lost on the wire, exactly like a dropped packet
		}
	}
	h.seq++
	d := hubDelivery{at: at, seq: h.seq, payload: payload}
	if m, ok := h.members[k]; ok {
		m.enqueue(d)
		return nil
	}
	if len(h.pending[k]) >= pendingCap {
		return fmt.Errorf("simnet: member %s not attached and its buffer is full", to)
	}
	h.pending[k] = append(h.pending[k], d)
	return nil
}

// hubDelivery is one queued payload with its due time.
type hubDelivery struct {
	at      time.Time
	seq     int64
	payload any
}

type deliveryHeap []hubDelivery

func (q deliveryHeap) Len() int { return len(q) }
func (q deliveryHeap) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q deliveryHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deliveryHeap) Push(x any)   { *q = append(*q, x.(hubDelivery)) }
func (q *deliveryHeap) Pop() (popped any) {
	old := *q
	n := len(old)
	popped = old[n-1]
	*q = old[:n-1]
	return
}

// hubMember is one attached node: a due-time-ordered inbound queue
// drained by a dispatcher goroutine.
type hubMember struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  deliveryHeap
	closed bool
}

func newHubMember() *hubMember {
	m := &hubMember{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *hubMember) enqueue(d hubDelivery) {
	m.mu.Lock()
	if !m.closed {
		heap.Push(&m.queue, d)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

func (m *hubMember) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// run drains the queue in due-time order, sleeping until each entry's
// deadline. Latencies are small (milliseconds), so the bounded sleep
// between close and exit is negligible.
func (m *hubMember) run(recv func(any)) {
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		next := m.queue[0]
		if wait := time.Until(next.at); wait > 0 {
			m.mu.Unlock()
			time.Sleep(wait)
			continue // re-check: an earlier delivery may have arrived
		}
		heap.Pop(&m.queue)
		m.mu.Unlock()
		recv(next.payload)
	}
}
