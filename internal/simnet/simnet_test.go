package simnet

import (
	"math/rand"
	"testing"
	"time"
)

func t0() time.Time { return time.Unix(1_000_000, 0) }

func TestEventOrdering(t *testing.T) {
	n := New(t0())
	var got []int
	n.Schedule(t0().Add(3*time.Second), func(time.Time) { got = append(got, 3) })
	n.Schedule(t0().Add(1*time.Second), func(time.Time) { got = append(got, 1) })
	n.Schedule(t0().Add(2*time.Second), func(time.Time) { got = append(got, 2) })
	n.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if n.Now() != t0().Add(3*time.Second) {
		t.Errorf("clock = %v", n.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	n := New(t0())
	var got []int
	at := t0().Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		n.Schedule(at, func(time.Time) { got = append(got, i) })
	}
	n.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	n := New(t0())
	n.Schedule(t0().Add(time.Second), func(now time.Time) {
		n.Schedule(t0(), func(now2 time.Time) {
			if now2.Before(now) {
				t.Error("event ran in the past")
			}
		})
	})
	n.Run(0)
}

func TestNestedScheduling(t *testing.T) {
	n := New(t0())
	count := 0
	var chain func(now time.Time)
	chain = func(now time.Time) {
		count++
		if count < 10 {
			n.After(time.Millisecond, chain)
		}
	}
	n.After(0, chain)
	n.Run(0)
	if count != 10 {
		t.Errorf("chain ran %d times", count)
	}
}

func TestRunUntil(t *testing.T) {
	n := New(t0())
	ran := 0
	for i := 1; i <= 5; i++ {
		n.Schedule(t0().Add(time.Duration(i)*time.Second), func(time.Time) { ran++ })
	}
	n.RunUntil(t0().Add(3 * time.Second))
	if ran != 3 {
		t.Errorf("ran %d events, want 3", ran)
	}
	if n.Pending() != 2 {
		t.Errorf("pending %d, want 2", n.Pending())
	}
	if !n.Now().Equal(t0().Add(3 * time.Second)) {
		t.Errorf("clock %v", n.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	n := New(t0())
	for i := 0; i < 10; i++ {
		n.Schedule(t0(), func(time.Time) {})
	}
	if got := n.Run(4); got != 4 {
		t.Errorf("Run(4) executed %d", got)
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{Latency: 10 * time.Millisecond, Bandwidth: Mbps(100)}
	// 12500 bytes at 100 Mbit/s = 1 ms.
	if got := l.TransferTime(12500); got != time.Millisecond {
		t.Errorf("TransferTime = %v, want 1ms", got)
	}
	inf := Link{}
	if inf.TransferTime(1<<30) != 0 {
		t.Error("infinite link should transfer instantly")
	}
}

func TestUplinkSerialization(t *testing.T) {
	u := &Uplink{Bandwidth: 1000} // 1000 B/s
	start := t0()
	d1 := u.Reserve(start, 500) // 0.5s
	if d1 != start.Add(500*time.Millisecond) {
		t.Errorf("first reservation done at %v", d1)
	}
	// Second message queues behind the first.
	d2 := u.Reserve(start, 500)
	if d2 != start.Add(time.Second) {
		t.Errorf("second reservation done at %v", d2)
	}
	// After idle time, no queueing.
	d3 := u.Reserve(start.Add(5*time.Second), 1000)
	if d3 != start.Add(6*time.Second) {
		t.Errorf("third reservation done at %v", d3)
	}
}

func TestUplinkInfinite(t *testing.T) {
	u := &Uplink{}
	if got := u.Reserve(t0(), 1<<30); !got.Equal(t0()) {
		t.Errorf("infinite uplink delayed to %v", got)
	}
}

func TestMbps(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Errorf("Mbps(8) = %v, want 1e6 B/s", Mbps(8))
	}
}

func TestDelayModelSampleRanges(t *testing.T) {
	m := PlanetLabModel()
	rng := rand.New(rand.NewSource(42))
	drops := 0
	tail := 0
	const n = 20000
	for i := 0; i < n; i++ {
		d, dropped := m.Sample(rng)
		if dropped {
			drops++
			continue
		}
		if d < 0 || d > m.Cap {
			t.Fatalf("delay %v out of range", d)
		}
		if d > 10*time.Second {
			tail++
		}
	}
	if drops == 0 {
		t.Error("no drops sampled")
	}
	if frac := float64(drops) / n; frac > 0.02 {
		t.Errorf("drop fraction %f too high", frac)
	}
	if tail == 0 {
		t.Error("no straggler tail sampled")
	}
}

func TestDelayModelBodyMedian(t *testing.T) {
	m := LANModel()
	rng := rand.New(rand.NewSource(7))
	var below, above int
	for i := 0; i < 10000; i++ {
		d, _ := m.Sample(rng)
		if d < time.Duration(m.Median*float64(time.Second)) {
			below++
		} else {
			above++
		}
	}
	ratio := float64(below) / float64(below+above)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("median miscentered: %f below", ratio)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a := GenerateTrace(PlanetLabModel(), 5, 100, 1)
	b := GenerateTrace(PlanetLabModel(), 5, 100, 1)
	for r := range a.Delays {
		for i := range a.Delays[r] {
			if a.Delays[r][i] != b.Delays[r][i] {
				t.Fatal("same seed produced different traces")
			}
		}
	}
	c := GenerateTrace(PlanetLabModel(), 5, 100, 2)
	same := true
	for r := range a.Delays {
		for i := range a.Delays[r] {
			if a.Delays[r][i] != c.Delays[r][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestTraceWraps(t *testing.T) {
	tr := GenerateTrace(LANModel(), 2, 3, 9)
	d0, ok0 := tr.Delay(0, 1)
	d2, ok2 := tr.Delay(2, 1) // wraps to round 0
	if d0 != d2 || ok0 != ok2 {
		t.Error("trace wrap mismatch")
	}
	// Client index wraps too.
	d, _ := tr.Delay(0, 4)
	dWant, _ := tr.Delay(0, 1)
	if d != dWant {
		t.Error("client wrap mismatch")
	}
}
