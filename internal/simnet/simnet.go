// Package simnet is a discrete-event network simulator: a virtual
// clock, an event queue, and link models (latency + bandwidth with
// access-link serialization). It reproduces the paper's testbed
// topologies (DeterLab: 100 Mbit/s links, 10 ms server–server and
// 50 ms client–server latency; Emulab WiFi: 24 Mbit/s, 10 ms;
// PlanetLab: heavy-tailed wide-area delays) so the real protocol
// engines can be measured at 5,000-client scale in virtual time on a
// single machine.
package simnet

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Time
	seq int64 // tie-break for deterministic ordering
	fn  func(now time.Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network is a virtual-time event loop.
type Network struct {
	now    time.Time
	seq    int64
	events eventHeap
	steps  int64
}

// New creates a network whose clock starts at start.
func New(start time.Time) *Network {
	return &Network{now: start}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// Steps returns the number of events executed.
func (n *Network) Steps() int64 { return n.steps }

// Schedule queues fn at the given virtual time (clamped to now).
func (n *Network) Schedule(at time.Time, fn func(now time.Time)) {
	if at.Before(n.now) {
		at = n.now
	}
	n.seq++
	heap.Push(&n.events, &event{at: at, seq: n.seq, fn: fn})
}

// After queues fn after a delay.
func (n *Network) After(d time.Duration, fn func(now time.Time)) {
	n.Schedule(n.now.Add(d), fn)
}

// Step executes the next event; it reports false when none remain.
func (n *Network) Step() bool {
	if len(n.events) == 0 {
		return false
	}
	e := heap.Pop(&n.events).(*event)
	n.now = e.at
	n.steps++
	e.fn(n.now)
	return true
}

// Run executes events until the queue drains or maxEvents fire
// (maxEvents <= 0 means unbounded). It returns the number executed.
func (n *Network) Run(maxEvents int64) int64 {
	var c int64
	for (maxEvents <= 0 || c < maxEvents) && n.Step() {
		c++
	}
	return c
}

// RunUntil executes events with timestamps <= t; the clock ends at t
// if the queue drains earlier.
func (n *Network) RunUntil(t time.Time) {
	for len(n.events) > 0 && !n.events[0].at.After(t) {
		n.Step()
	}
	if n.now.Before(t) {
		n.now = t
	}
}

// RunWhile executes events while cond holds and events remain.
func (n *Network) RunWhile(cond func() bool) {
	for cond() && n.Step() {
	}
}

// Pending returns the number of queued events.
func (n *Network) Pending() int { return len(n.events) }

// Link models a point-to-point path: propagation latency plus a
// bandwidth-limited pipe.
type Link struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; 0 = infinite
}

// TransferTime returns the serialization time of size bytes.
func (l Link) TransferTime(size int) time.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(size) / l.Bandwidth * float64(time.Second))
}

// Uplink serializes a node's transmissions on its access link: a
// message cannot start transmitting until earlier ones finish — the
// effect that makes large fan-out broadcasts expensive for servers.
type Uplink struct {
	Bandwidth float64 // bytes per second; 0 = infinite
	free      time.Time
}

// Reserve books size bytes starting no earlier than now and returns
// the time the last byte leaves the node.
func (u *Uplink) Reserve(now time.Time, size int) time.Time {
	start := now
	if u.free.After(start) {
		start = u.free
	}
	if u.Bandwidth <= 0 {
		u.free = start
		return start
	}
	done := start.Add(time.Duration(float64(size) / u.Bandwidth * float64(time.Second)))
	u.free = done
	return done
}

// Free returns when the uplink next becomes idle.
func (u *Uplink) Free() time.Time { return u.free }

// Mbps converts megabits per second to bytes per second.
func Mbps(m float64) float64 { return m * 1e6 / 8 }
