package simnet

import (
	"math"
	"math/rand"
	"time"
)

// DelayModel generates synthetic client submission delays standing in
// for the paper's 24-hour PlanetLab trace (§5.1). The bulk of clients
// respond quickly (log-normal body); a small fraction are stragglers
// with Pareto-tail delays of tens of seconds; a further fraction drop
// out of a round entirely — the behaviours that motivate Dissent's
// window-closure policies.
type DelayModel struct {
	// Median and Sigma parameterize the log-normal body (seconds).
	Median float64
	Sigma  float64
	// TailFrac is the fraction of submissions drawn from the straggler
	// tail instead of the body.
	TailFrac float64
	// TailScale and TailShape parameterize the Pareto tail (seconds).
	TailScale float64
	TailShape float64
	// DropFrac is the per-round probability a client submits nothing.
	DropFrac float64
	// Cap bounds any sampled delay.
	Cap time.Duration
}

// PlanetLabModel returns parameters fit to the paper's observations:
// ~95% of clients submit within a couple of seconds, a straggler tail
// stretches past 100 s, and a small fraction vanish per round.
func PlanetLabModel() DelayModel {
	return DelayModel{
		Median:    0.45,
		Sigma:     0.55,
		TailFrac:  0.045,
		TailScale: 2.0,
		TailShape: 0.85,
		DropFrac:  0.004,
		Cap:       10 * time.Minute,
	}
}

// LANModel returns a low-variance model for DeterLab-style controlled
// topologies: client delays are dominated by the link, not the host.
func LANModel() DelayModel {
	return DelayModel{
		Median: 0.015,
		Sigma:  0.25,
		Cap:    5 * time.Second,
	}
}

// Sample draws one submission delay; dropped means the client never
// submits this round.
func (m DelayModel) Sample(rng *rand.Rand) (delay time.Duration, dropped bool) {
	if m.DropFrac > 0 && rng.Float64() < m.DropFrac {
		return 0, true
	}
	var sec float64
	if m.TailFrac > 0 && rng.Float64() < m.TailFrac {
		// Pareto: scale * U^(-1/shape).
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		sec = m.TailScale * math.Pow(u, -1.0/m.TailShape)
	} else {
		sec = m.Median * math.Exp(m.Sigma*rng.NormFloat64())
	}
	d := time.Duration(sec * float64(time.Second))
	if m.Cap > 0 && d > m.Cap {
		d = m.Cap
	}
	if d < 0 {
		d = 0
	}
	return d, false
}

// Trace is a pre-drawn delay matrix: Delays[r][i] is client i's
// submission delay in round r (negative = dropped). Pre-drawing makes
// window-policy comparisons paired: every policy faces the same
// client behaviour, as in the paper's replayed PlanetLab trace.
type Trace struct {
	Delays [][]time.Duration
}

// GenerateTrace draws a rounds x clients trace from the model.
func GenerateTrace(m DelayModel, rounds, clients int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Delays: make([][]time.Duration, rounds)}
	for r := range tr.Delays {
		row := make([]time.Duration, clients)
		for i := range row {
			d, dropped := m.Sample(rng)
			if dropped {
				row[i] = -1
			} else {
				row[i] = d
			}
		}
		tr.Delays[r] = row
	}
	return tr
}

// Delay returns client i's delay in round r, wrapping the trace if r
// exceeds the generated rounds. ok is false if the client dropped.
func (t *Trace) Delay(r uint64, i int) (time.Duration, bool) {
	row := t.Delays[int(r)%len(t.Delays)]
	d := row[i%len(row)]
	if d < 0 {
		return 0, false
	}
	return d, true
}
