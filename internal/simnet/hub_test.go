package simnet

import (
	"sync"
	"testing"
	"time"

	"dissent/internal/group"
)

func hubID(s string) group.NodeID {
	var id group.NodeID
	copy(id[:], s)
	return id
}

// TestHubDeliversInOrder checks per-pair FIFO under a nonzero latency
// model: 100 messages A→B arrive in send order.
func TestHubDeliversInOrder(t *testing.T) {
	h := NewHub()
	h.Latency = func(from, to group.NodeID) time.Duration { return time.Millisecond }
	defer h.Close()

	a, b := hubID("member-A"), hubID("member-B")
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	if err := h.Attach(b, func(p any) {
		mu.Lock()
		got = append(got, p.(int))
		if len(got) == 100 {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(a, func(any) {}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		if err := h.Send(a, b, i); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		mu.Lock()
		t.Fatalf("only %d/100 delivered", len(got))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d got %d: reordered", i, v)
		}
	}
}

// TestHubBuffersUntilAttach checks the startup-order tolerance: sends
// to a member that has not attached yet are buffered and delivered
// once it does — nodes of a group start in arbitrary order.
func TestHubBuffersUntilAttach(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, b := hubID("early-A"), hubID("late-B")
	for i := 0; i < 3; i++ {
		if err := h.Send(a, b, i); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	if err := h.Attach(b, func(p any) {
		mu.Lock()
		got = append(got, p.(int))
		if len(got) == 3 {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("buffered payloads not delivered after attach")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d got %d: reordered", i, v)
		}
	}
}

// TestHubSessionIsolation checks the multi-group routing: the same
// node ID attached under two sessions gets two independent queues, and
// a payload sent within one session never surfaces in the other.
func TestHubSessionIsolation(t *testing.T) {
	h := NewHub()
	defer h.Close()
	var s1, s2 [32]byte
	s1[0], s2[0] = 1, 2
	a, b := hubID("member-A"), hubID("member-B")

	type box struct {
		mu   sync.Mutex
		got  []string
		done chan struct{}
	}
	mk := func() *box { return &box{done: make(chan struct{})} }
	recv := func(bx *box, want int) func(any) {
		return func(p any) {
			bx.mu.Lock()
			bx.got = append(bx.got, p.(string))
			if len(bx.got) == want {
				close(bx.done)
			}
			bx.mu.Unlock()
		}
	}
	in1, in2 := mk(), mk()
	if err := h.AttachSession(s1, b, recv(in1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.AttachSession(s2, b, recv(in2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.AttachSession(s1, b, func(any) {}); err == nil {
		t.Fatal("duplicate (session, id) attach accepted")
	}

	for i := 0; i < 2; i++ {
		if err := h.SendSession(s1, a, b, "one"); err != nil {
			t.Fatal(err)
		}
		if err := h.SendSession(s2, a, b, "two"); err != nil {
			t.Fatal(err)
		}
	}
	for _, bx := range []*box{in1, in2} {
		select {
		case <-bx.done:
		case <-time.After(5 * time.Second):
			t.Fatal("session deliveries incomplete")
		}
	}
	in1.mu.Lock()
	defer in1.mu.Unlock()
	in2.mu.Lock()
	defer in2.mu.Unlock()
	for _, v := range in1.got {
		if v != "one" {
			t.Fatalf("session 1 received %q: crossed sessions", v)
		}
	}
	for _, v := range in2.got {
		if v != "two" {
			t.Fatalf("session 2 received %q: crossed sessions", v)
		}
	}

	// Detaching one session's member leaves the other attached.
	h.DetachSession(s1, b)
	if err := h.SendSession(s2, a, b, "two"); err != nil {
		t.Fatal(err)
	}
}

// TestHubDetachStopsDelivery checks no payloads reach a detached
// member's callback.
func TestHubDetachStopsDelivery(t *testing.T) {
	h := NewHub()
	defer h.Close()
	a, b := hubID("detach-A"), hubID("detach-B")
	var mu sync.Mutex
	n := 0
	if err := h.Attach(b, func(any) { mu.Lock(); n++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	h.Detach(b)
	if err := h.Send(a, b, 1); err != nil {
		t.Fatal(err) // buffered against a possible re-attach
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if n != 0 {
		t.Errorf("%d payloads delivered after detach", n)
	}
}

// TestHubDuplicateAttach checks double registration is refused.
func TestHubDuplicateAttach(t *testing.T) {
	h := NewHub()
	defer h.Close()
	id := hubID("dup")
	if err := h.Attach(id, func(any) {}); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(id, func(any) {}); err == nil {
		t.Error("duplicate attach succeeded")
	}
}
