package simnet

import (
	"sync"
	"testing"
	"time"

	"dissent/internal/group"
)

func hubIDs(names ...string) []group.NodeID {
	ids := make([]group.NodeID, len(names))
	for i, n := range names {
		copy(ids[i][:], n)
	}
	return ids
}

// collector records payloads delivered to one member, in order.
type collector struct {
	mu   sync.Mutex
	got  []int
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) recv(p any) {
	c.mu.Lock()
	c.got = append(c.got, p.(int))
	c.cond.Broadcast()
	c.mu.Unlock()
}

// waitLen blocks until n payloads arrived or the deadline passes.
func (c *collector) waitLen(t *testing.T, n int, d time.Duration) []int {
	t.Helper()
	deadline := time.Now().Add(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d payloads after %v", len(c.got), n, d)
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
		c.mu.Lock()
	}
	return append([]int(nil), c.got...)
}

// TestFaultJitterPreservesOrder pins the satellite requirement: under
// random jitter, per-pair delivery order is still FIFO (the monotonic
// per-pair clamp), exactly like a TCP stream under delay variance.
func TestFaultJitterPreservesOrder(t *testing.T) {
	ids := hubIDs("node-AAA", "node-BBB")
	h := NewHub()
	defer h.Close()
	h.SetFaultSeed(42)
	h.SetLinkFault(ids[0], ids[1], FaultSpec{
		Latency: time.Millisecond,
		Jitter:  20 * time.Millisecond,
	})
	c := newCollector()
	if err := h.Attach(ids[1], c.recv); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := h.Send(ids[0], ids[1], i); err != nil {
			t.Fatal(err)
		}
	}
	got := c.waitLen(t, n, 10*time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery %d carried payload %d: jitter reordered the stream (%v...)", i, v, got[:i+1])
		}
	}
}

// TestFaultDropRateDeterministic checks that drops follow the seeded
// RNG: the same seed drops the same subset, a different seed differs.
func TestFaultDropRateDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		ids := hubIDs("node-AAA", "node-BBB")
		h := NewHub()
		defer h.Close()
		h.SetFaultSeed(seed)
		h.SetLinkFault(ids[0], ids[1], FaultSpec{DropRate: 0.5})
		c := newCollector()
		if err := h.Attach(ids[1], c.recv); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := h.Send(ids[0], ids[1], i); err != nil {
				t.Fatal(err)
			}
		}
		// Survivors deliver immediately (no latency); a short settle
		// suffices.
		time.Sleep(50 * time.Millisecond)
		c.mu.Lock()
		defer c.mu.Unlock()
		return append([]int(nil), c.got...)
	}
	a1, a2, b := run(7), run(7), run(8)
	if len(a1) == 0 || len(a1) == 200 {
		t.Fatalf("drop rate 0.5 delivered %d/200", len(a1))
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed delivered %d vs %d payloads", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, a1[i], a2[i])
		}
	}
	same := len(a1) == len(b)
	if same {
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

// TestFaultPartitionUntil checks the hard partition: everything sent
// before the deadline is lost, traffic after it flows again.
func TestFaultPartitionUntil(t *testing.T) {
	ids := hubIDs("node-AAA", "node-BBB")
	h := NewHub()
	defer h.Close()
	until := time.Now().Add(100 * time.Millisecond)
	h.SetLinkFault(ids[0], ids[1], FaultSpec{PartitionUntil: until})
	c := newCollector()
	if err := h.Attach(ids[1], c.recv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Send(ids[0], ids[1], i); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(time.Until(until) + 20*time.Millisecond)
	c.mu.Lock()
	lost := len(c.got)
	c.mu.Unlock()
	if lost != 0 {
		t.Fatalf("%d payloads crossed the partition", lost)
	}
	if err := h.Send(ids[0], ids[1], 99); err != nil {
		t.Fatal(err)
	}
	got := c.waitLen(t, 1, 5*time.Second)
	if got[0] != 99 {
		t.Fatalf("post-partition payload %d, want 99", got[0])
	}
}

// TestScheduleLinkFault checks the timed fault window: traffic flows
// before the window opens, is dropped inside it, and flows again after
// the window's duration elapses.
func TestScheduleLinkFault(t *testing.T) {
	ids := hubIDs("node-AAA", "node-BBB")
	h := NewHub()
	defer h.Close()
	h.ScheduleLinkFault(ids[0], ids[1], FaultSpec{DropRate: 1.0},
		60*time.Millisecond, 100*time.Millisecond)
	c := newCollector()
	if err := h.Attach(ids[1], c.recv); err != nil {
		t.Fatal(err)
	}
	// Before the window: delivered.
	if err := h.Send(ids[0], ids[1], 1); err != nil {
		t.Fatal(err)
	}
	got := c.waitLen(t, 1, 5*time.Second)
	if got[0] != 1 {
		t.Fatalf("pre-window payload %d, want 1", got[0])
	}
	// Inside the window: dropped.
	time.Sleep(90 * time.Millisecond)
	if err := h.Send(ids[0], ids[1], 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	c.mu.Lock()
	n := len(c.got)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d payloads delivered during the fault window, want 1", n)
	}
	// After the window clears itself: delivered again.
	time.Sleep(60 * time.Millisecond)
	if err := h.Send(ids[0], ids[1], 3); err != nil {
		t.Fatal(err)
	}
	got = c.waitLen(t, 2, 5*time.Second)
	if got[1] != 3 {
		t.Fatalf("post-window payload %d, want 3", got[1])
	}
}

// TestScheduleLinkFaultCancelledOnClose checks that Close stops pending
// fault timers: a window scheduled far out must not fire against a new
// hub's state or leak a timer.
func TestScheduleLinkFaultCancelledOnClose(t *testing.T) {
	ids := hubIDs("node-AAA", "node-BBB")
	h := NewHub()
	h.ScheduleLinkFault(ids[0], ids[1], FaultSpec{DropRate: 1.0},
		10*time.Millisecond, 0)
	h.Close()
	// The apply timer may already be queued; firing against a closed hub
	// must be a no-op rather than a panic or map write.
	time.Sleep(30 * time.Millisecond)
}

// TestFaultOtherLinksUnaffected checks fault isolation: a fault on one
// link leaves other pairs' traffic untouched.
func TestFaultOtherLinksUnaffected(t *testing.T) {
	ids := hubIDs("node-AAA", "node-BBB", "node-CCC")
	h := NewHub()
	defer h.Close()
	h.SetLinkFault(ids[0], ids[1], FaultSpec{DropRate: 1.0})
	c := newCollector()
	if err := h.Attach(ids[1], c.recv); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(ids[0], ids[1], 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Send(ids[2], ids[1], 2); err != nil {
		t.Fatal(err)
	}
	got := c.waitLen(t, 1, 5*time.Second)
	if got[0] != 2 {
		t.Fatalf("got payload %d, want only the unfaulted link's 2", got[0])
	}
	h.ClearLinkFault(ids[0], ids[1])
	if err := h.Send(ids[0], ids[1], 3); err != nil {
		t.Fatal(err)
	}
	got = c.waitLen(t, 2, 5*time.Second)
	if got[1] != 3 {
		t.Fatalf("cleared link delivered %d, want 3", got[1])
	}
}
