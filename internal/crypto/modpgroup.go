package crypto

import (
	"fmt"
	"io"
	"math/big"
)

// modpElement is an element of the quadratic-residue subgroup of Z_p*.
type modpElement struct {
	v *big.Int
}

func (e *modpElement) String() string {
	b := e.v.Bytes()
	if len(b) > 4 {
		b = b[:4]
	}
	return fmt.Sprintf("ModP(%x…)", b)
}

// ModPGroup is a Schnorr group: the order-q subgroup of quadratic
// residues modulo a safe prime p = 2q+1. Dissent's general message
// shuffles run in this group because arbitrary byte strings embed
// cheaply into residues, at the cost of much more expensive arithmetic
// than P-256 — the asymmetry behind Figure 9's key-vs-accusation
// shuffle gap (§3.10).
type ModPGroup struct {
	name string
	p    *big.Int // safe prime
	q    *big.Int // (p-1)/2, prime
	g    *modpElement
}

// rfc3526Group2048 is the 2048-bit MODP group from RFC 3526 §3.
const rfc3526Group2048 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// ModP2048 returns the RFC 3526 2048-bit Schnorr group with generator 4
// (= 2², guaranteed to be a quadratic residue).
func ModP2048() *ModPGroup {
	p, ok := new(big.Int).SetString(rfc3526Group2048, 16)
	if !ok {
		panic("crypto: bad RFC 3526 prime constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &ModPGroup{
		name: "modp-2048",
		p:    p,
		q:    q,
		g:    &modpElement{v: big.NewInt(4)},
	}
}

// ModP512Test returns a small Schnorr group over a 512-bit safe prime.
// It exists so tests and fast simulations can exercise mod-p code paths
// cheaply; it offers no meaningful security margin and must never be
// used in production deployments.
func ModP512Test() *ModPGroup {
	// 512-bit safe prime p (with (p-1)/2 prime), generated offline.
	const hexP = "CE7ECE926E1F1FB51BCAD765F55457B45A362FBAB50111886FE1787A51B783B1" +
		"9A7829D5BA875D1C4F8F2EFB535F67020329BB58AF13C531251BC2B8EA7EF81F"
	p, ok := new(big.Int).SetString(hexP, 16)
	if !ok {
		panic("crypto: bad test prime constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &ModPGroup{name: "modp-512-test", p: p, q: q, g: &modpElement{v: big.NewInt(4)}}
}

// GroupByName resolves a group registered under Name(). Group
// definitions record the message-shuffle group by name.
func GroupByName(name string) (Group, error) {
	switch name {
	case "P-256":
		return P256(), nil
	case "modp-2048":
		return ModP2048(), nil
	case "modp-512-test":
		return ModP512Test(), nil
	default:
		return nil, fmt.Errorf("crypto: unknown group %q", name)
	}
}

// Name implements Group.
func (g *ModPGroup) Name() string { return g.name }

// Order implements Group.
func (g *ModPGroup) Order() *big.Int { return new(big.Int).Set(g.q) }

// Generator implements Group.
func (g *ModPGroup) Generator() Element { return g.g }

// Identity implements Group.
func (g *ModPGroup) Identity() Element { return &modpElement{v: big.NewInt(1)} }

// Add implements Group (multiplication mod p in this notation).
func (g *ModPGroup) Add(a, b Element) Element {
	va, vb := a.(*modpElement).v, b.(*modpElement).v
	v := new(big.Int).Mul(va, vb)
	v.Mod(v, g.p)
	return &modpElement{v: v}
}

// Neg implements Group (modular inverse).
func (g *ModPGroup) Neg(a Element) Element {
	v := new(big.Int).ModInverse(a.(*modpElement).v, g.p)
	return &modpElement{v: v}
}

// ScalarMult implements Group (modular exponentiation).
func (g *ModPGroup) ScalarMult(a Element, k *big.Int) Element {
	kk := new(big.Int).Mod(k, g.q)
	v := new(big.Int).Exp(a.(*modpElement).v, kk, g.p)
	return &modpElement{v: v}
}

// BaseMult implements Group.
func (g *ModPGroup) BaseMult(k *big.Int) Element { return g.ScalarMult(g.g, k) }

// Equal implements Group.
func (g *ModPGroup) Equal(a, b Element) bool {
	return a.(*modpElement).v.Cmp(b.(*modpElement).v) == 0
}

// IsIdentity implements Group.
func (g *ModPGroup) IsIdentity(a Element) bool {
	return a.(*modpElement).v.Cmp(big.NewInt(1)) == 0
}

// ElementLen implements Group.
func (g *ModPGroup) ElementLen() int { return (g.p.BitLen() + 7) / 8 }

// Encode implements Group.
func (g *ModPGroup) Encode(a Element) []byte {
	buf := make([]byte, g.ElementLen())
	a.(*modpElement).v.FillBytes(buf)
	return buf
}

// Decode implements Group. Membership in the QR subgroup is verified,
// costing one exponentiation; shuffle verifiers rely on this check.
func (g *ModPGroup) Decode(data []byte) (Element, error) {
	if len(data) != g.ElementLen() {
		return nil, ErrBadElement
	}
	v := new(big.Int).SetBytes(data)
	if v.Sign() <= 0 || v.Cmp(g.p) >= 0 {
		return nil, ErrBadElement
	}
	if !g.isResidue(v) {
		return nil, ErrBadElement
	}
	return &modpElement{v: v}, nil
}

func (g *ModPGroup) isResidue(v *big.Int) bool {
	return new(big.Int).Exp(v, g.q, g.p).Cmp(big.NewInt(1)) == 0
}

// RandomScalar implements Group.
func (g *ModPGroup) RandomScalar(r io.Reader) (*big.Int, error) {
	return randScalar(r, g.q)
}

// RandomElement implements Group.
func (g *ModPGroup) RandomElement(r io.Reader) (Element, error) {
	k, err := g.RandomScalar(r)
	if err != nil {
		return nil, err
	}
	return g.BaseMult(k), nil
}

// EmbedLimit implements Group: two header bytes (counter, length) and
// one zero byte of headroom are reserved, and we keep the value well
// under p by leaving the top 16 bytes clear.
func (g *ModPGroup) EmbedLimit() int { return g.ElementLen() - 19 }

// Embed implements Group. Candidates are tested for quadratic
// residuosity (one exponentiation each, two attempts expected), bumping
// a counter until one lands in the subgroup.
func (g *ModPGroup) Embed(msg []byte, r io.Reader) (Element, error) {
	if len(msg) > g.EmbedLimit() {
		return nil, ErrEmbedTooLong
	}
	buf := make([]byte, g.ElementLen())
	// Layout: [16 zero bytes][counter][length][payload][zero pad].
	buf[17] = byte(len(msg))
	copy(buf[18:], msg)
	for ctr := 0; ctr < 256; ctr++ {
		buf[16] = byte(ctr)
		v := new(big.Int).SetBytes(buf)
		if v.Sign() > 0 && g.isResidue(v) {
			return &modpElement{v: v}, nil
		}
	}
	return nil, fmt.Errorf("crypto: modp embedding failed after 256 attempts")
}

// Extract implements Group.
func (g *ModPGroup) Extract(a Element) ([]byte, error) {
	buf := make([]byte, g.ElementLen())
	a.(*modpElement).v.FillBytes(buf)
	for i := 0; i < 16; i++ {
		if buf[i] != 0 {
			return nil, ErrNotEmbedded
		}
	}
	n := int(buf[17])
	if n > g.EmbedLimit() {
		return nil, ErrNotEmbedded
	}
	return append([]byte(nil), buf[18:18+n]...), nil
}
