package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func prngMakers() map[string]PRNGMaker {
	return map[string]PRNGMaker{
		"aes":  NewAESPRNG,
		"fast": NewFastPRNG,
	}
}

func TestPRNGDeterministic(t *testing.T) {
	for name, mk := range prngMakers() {
		t.Run(name, func(t *testing.T) {
			seed := Hash("seed", []byte("a"))
			a := make([]byte, 1024)
			b := make([]byte, 1024)
			mk(seed).Read(a)
			mk(seed).Read(b)
			if !bytes.Equal(a, b) {
				t.Error("same seed produced different streams")
			}
			c := make([]byte, 1024)
			mk(Hash("seed", []byte("b"))).Read(c)
			if bytes.Equal(a, c) {
				t.Error("different seeds produced identical streams")
			}
		})
	}
}

func TestPRNGReadChunkingConsistent(t *testing.T) {
	// Reading in odd-sized chunks must produce the same stream as one
	// big read — the DC-net layers slice streams at arbitrary offsets.
	for name, mk := range prngMakers() {
		t.Run(name, func(t *testing.T) {
			seed := Hash("seed", []byte("chunk"))
			whole := make([]byte, 257)
			mk(seed).Read(whole)

			p := mk(seed)
			var parts []byte
			for _, n := range []int{1, 2, 3, 5, 7, 11, 13, 64, 151} {
				buf := make([]byte, n)
				p.Read(buf)
				parts = append(parts, buf...)
			}
			if !bytes.Equal(whole, parts[:len(whole)]) {
				t.Error("chunked reads diverge from contiguous read")
			}
		})
	}
}

func TestPRNGXORKeyStreamMatchesRead(t *testing.T) {
	for name, mk := range prngMakers() {
		t.Run(name, func(t *testing.T) {
			seed := Hash("seed", []byte("xor"))
			stream := make([]byte, 300)
			mk(seed).Read(stream)

			src := make([]byte, 300)
			for i := range src {
				src[i] = byte(i * 7)
			}
			dst := make([]byte, 300)
			mk(seed).XORKeyStream(dst, src)
			for i := range dst {
				if dst[i] != src[i]^stream[i] {
					t.Fatalf("byte %d: got %#x want %#x", i, dst[i], src[i]^stream[i])
				}
			}
		})
	}
}

func TestPRNGXORCancels(t *testing.T) {
	// The DC-net invariant: XORing the same seeded stream twice is a
	// no-op.
	for name, mk := range prngMakers() {
		t.Run(name, func(t *testing.T) {
			seed := Hash("seed", []byte("cancel"))
			msg := []byte("the medium is the message")
			buf := append([]byte(nil), msg...)
			mk(seed).XORKeyStream(buf, buf)
			mk(seed).XORKeyStream(buf, buf)
			if !bytes.Equal(buf, msg) {
				t.Error("double-XOR did not cancel")
			}
		})
	}
}

func TestAESPRNGSeekMatchesSequential(t *testing.T) {
	// XORKeyStreamAt at any offset must agree with the sequential
	// stream, including across block boundaries and partial blocks.
	seed := Hash("seed", []byte("seek"))
	whole := make([]byte, 400)
	NewAESPRNG(seed).Read(whole)

	sk, ok := NewAESPRNG(seed).(SeekableStream)
	if !ok {
		t.Fatal("aes PRNG does not implement SeekableStream")
	}
	for _, off := range []int{0, 1, 15, 16, 17, 31, 32, 100, 255, 256, 399} {
		dst := make([]byte, len(whole)-off)
		sk.XORKeyStreamAt(dst, uint64(off))
		if !bytes.Equal(dst, whole[off:]) {
			t.Fatalf("seek to %d diverges from sequential stream", off)
		}
	}
}

func TestAESPRNGSeekDoesNotDisturbSequential(t *testing.T) {
	seed := Hash("seed", []byte("interleave"))
	whole := make([]byte, 128)
	NewAESPRNG(seed).Read(whole)

	p := NewAESPRNG(seed)
	head := make([]byte, 64)
	p.Read(head)
	scratch := make([]byte, 48)
	p.(SeekableStream).XORKeyStreamAt(scratch, 1000)
	tail := make([]byte, 64)
	p.Read(tail)
	if !bytes.Equal(append(head, tail...), whole) {
		t.Fatal("XORKeyStreamAt disturbed the sequential position")
	}
}

func TestAESPRNGXORKeyStreamZeroAlloc(t *testing.T) {
	// Both the in-place and the two-operand XOR paths must not allocate:
	// the server pad expands one stream per client per round.
	p := NewAESPRNG(Hash("seed", []byte("alloc")))
	buf := make([]byte, 4096)
	if avg := testing.AllocsPerRun(50, func() {
		p.XORKeyStream(buf, buf)
	}); avg != 0 {
		t.Fatalf("in-place XORKeyStream allocates %.1f/run, want 0", avg)
	}
	src := make([]byte, 4096)
	if avg := testing.AllocsPerRun(50, func() {
		p.XORKeyStream(buf, src)
	}); avg != 0 {
		t.Fatalf("two-operand XORKeyStream allocates %.1f/run, want 0", avg)
	}
}

func TestXORBytes(t *testing.T) {
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	b := []byte{11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	dst := append([]byte(nil), a...)
	n := XORBytes(dst, b)
	if n != len(a) {
		t.Fatalf("n = %d, want %d", n, len(a))
	}
	for i := range dst {
		if dst[i] != a[i]^b[i] {
			t.Fatalf("byte %d wrong", i)
		}
	}
	// Shorter src.
	dst = append([]byte(nil), a...)
	if n := XORBytes(dst, b[:3]); n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if dst[3] != a[3] {
		t.Error("XORBytes wrote past src length")
	}
}

func TestXORBytesProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		dst := append([]byte(nil), a...)
		XORBytes(dst, b)
		XORBytes(dst, b)
		return bytes.Equal(dst[:n], a[:n])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashInjective(t *testing.T) {
	// Length prefixing must distinguish ("ab","c") from ("a","bc").
	h1 := Hash("d", []byte("ab"), []byte("c"))
	h2 := Hash("d", []byte("a"), []byte("bc"))
	if bytes.Equal(h1, h2) {
		t.Error("hash not injective across part boundaries")
	}
	if bytes.Equal(Hash("d1", []byte("x")), Hash("d2", []byte("x"))) {
		t.Error("hash ignores domain")
	}
}

func TestHashToScalarInRange(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 16; i++ {
				s := HashToScalar(g, "d", HashUint64(uint64(i)))
				if s.Sign() < 0 || s.Cmp(g.Order()) >= 0 {
					t.Fatalf("scalar out of range: %v", s)
				}
			}
		})
	}
}
