package crypto

import (
	"math/big"
	"testing"
)

func TestDLEQProofRoundTrip(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			x, _ := g.RandomScalar(nil)
			y := g.BaseMult(x)
			b, _ := g.RandomElement(nil)
			d := g.ScalarMult(b, x)
			ctx := []byte("test-ctx")
			proof, err := ProveDLEQ(g, x, b, y, d, ctx, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyDLEQ(g, b, y, d, proof, ctx); err != nil {
				t.Errorf("valid proof rejected: %v", err)
			}
		})
	}
}

func TestDLEQProofRejectsWrongStatement(t *testing.T) {
	g := P256()
	x, _ := g.RandomScalar(nil)
	y := g.BaseMult(x)
	b, _ := g.RandomElement(nil)
	d := g.ScalarMult(b, x)
	ctx := []byte("ctx")
	proof, _ := ProveDLEQ(g, x, b, y, d, ctx, nil)

	// Wrong d.
	wrongD, _ := g.RandomElement(nil)
	if err := VerifyDLEQ(g, b, y, wrongD, proof, ctx); err == nil {
		t.Error("proof accepted for wrong d")
	}
	// Wrong context.
	if err := VerifyDLEQ(g, b, y, d, proof, []byte("other")); err == nil {
		t.Error("proof accepted under different context")
	}
	// Tampered response.
	bad := proof
	bad.Z = new(big.Int).Add(proof.Z, big.NewInt(1))
	if err := VerifyDLEQ(g, b, y, d, bad, ctx); err == nil {
		t.Error("tampered proof accepted")
	}
	// Incomplete proof.
	if err := VerifyDLEQ(g, b, y, d, DLEQProof{}, ctx); err == nil {
		t.Error("empty proof accepted")
	}
	// Out-of-range values.
	huge := DLEQProof{C: g.Order(), Z: proof.Z}
	if err := VerifyDLEQ(g, b, y, d, huge, ctx); err == nil {
		t.Error("out-of-range challenge accepted")
	}
}

func TestDLEQBatchProof(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			const n = 8
			x, _ := g.RandomScalar(nil)
			y := g.BaseMult(x)
			bs := make([]Element, n)
			ds := make([]Element, n)
			for i := range bs {
				bs[i], _ = g.RandomElement(nil)
				ds[i] = g.ScalarMult(bs[i], x)
			}
			ctx := []byte("batch")
			proof, err := ProveDLEQBatch(g, x, bs, ds, y, ctx, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyDLEQBatch(g, bs, ds, y, proof, ctx); err != nil {
				t.Errorf("valid batch proof rejected: %v", err)
			}
			// Corrupt one share: verification must fail.
			ds[3], _ = g.RandomElement(nil)
			if err := VerifyDLEQBatch(g, bs, ds, y, proof, ctx); err == nil {
				t.Error("batch proof accepted with corrupted share")
			}
		})
	}
}

func TestDLEQBatchLengthMismatch(t *testing.T) {
	g := P256()
	x, _ := g.RandomScalar(nil)
	y := g.BaseMult(x)
	b, _ := g.RandomElement(nil)
	if _, err := ProveDLEQBatch(g, x, []Element{b}, nil, y, nil, nil); err == nil {
		t.Error("mismatched batch lengths accepted by prover")
	}
	if err := VerifyDLEQBatch(g, []Element{b}, nil, y, DLEQProof{}, nil); err == nil {
		t.Error("mismatched batch lengths accepted by verifier")
	}
}

func TestSchnorrSignatureRoundTrip(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			kp, _ := GenerateKeyPair(g, nil)
			msg := []byte("signed protocol message")
			sig, err := kp.Sign("test", msg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, kp.Public, "test", msg, sig); err != nil {
				t.Errorf("valid signature rejected: %v", err)
			}
		})
	}
}

func TestSchnorrSignatureRejections(t *testing.T) {
	g := P256()
	kp, _ := GenerateKeyPair(g, nil)
	other, _ := GenerateKeyPair(g, nil)
	msg := []byte("msg")
	sig, _ := kp.Sign("d", msg, nil)

	if err := Verify(g, kp.Public, "d", []byte("other msg"), sig); err == nil {
		t.Error("signature accepted for different message")
	}
	if err := Verify(g, kp.Public, "other-domain", msg, sig); err == nil {
		t.Error("signature accepted under different domain")
	}
	if err := Verify(g, other.Public, "d", msg, sig); err == nil {
		t.Error("signature accepted under different key")
	}
	bad := sig
	bad.Z = new(big.Int).Add(sig.Z, big.NewInt(1))
	if err := Verify(g, kp.Public, "d", msg, bad); err == nil {
		t.Error("tampered signature accepted")
	}
	if err := Verify(g, kp.Public, "d", msg, Signature{}); err == nil {
		t.Error("empty signature accepted")
	}
}

func TestSignatureEncodeDecode(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			kp, _ := GenerateKeyPair(g, nil)
			sig, _ := kp.Sign("d", []byte("m"), nil)
			enc := EncodeSignature(g, sig)
			if len(enc) != SignatureLen(g) {
				t.Fatalf("encoded length %d, want %d", len(enc), SignatureLen(g))
			}
			dec, err := DecodeSignature(g, enc)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, kp.Public, "d", []byte("m"), dec); err != nil {
				t.Errorf("decoded signature invalid: %v", err)
			}
			if _, err := DecodeSignature(g, enc[:3]); err == nil {
				t.Error("short signature accepted")
			}
		})
	}
}
