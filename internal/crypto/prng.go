package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
)

// PRNG is a deterministic pseudo-random byte stream. Client/server
// pairs seed one PRNG per (pair, round) from their shared secret; the
// XOR of matching streams cancels in the DC-net combine step, so any
// deterministic stream construction preserves protocol correctness.
//
// Two implementations are provided: the AES-256-CTR stream used in
// production, and a much faster xoshiro-based stream used by the
// large-scale benchmark harnesses, where timing is accounted by the
// simulator's calibrated cost model rather than by the cipher actually
// executed (see internal/bench).
type PRNG interface {
	// Read fills p with pseudo-random bytes; it never fails.
	Read(p []byte) (int, error)
	// XORKeyStream XORs the next len(src) stream bytes into dst.
	// dst and src may overlap entirely or not at all.
	XORKeyStream(dst, src []byte)
}

// PRNGMaker constructs a stream from a 32-byte seed. It parameterizes
// the DC-net engines so benchmarks can swap in FastPRNG.
type PRNGMaker func(seed []byte) PRNG

// SeekableStream is implemented by PRNGs whose keystream supports
// random access: XORKeyStreamAt XORs keystream bytes [off, off+len(dst))
// into dst in place, independently of any sequential position. The
// DC-net's parallel pad expander uses it to let several workers cover
// disjoint byte ranges of one huge round vector.
type SeekableStream interface {
	XORKeyStreamAt(dst []byte, off uint64)
}

// aesPRNG implements PRNG over AES-256-CTR with a zero IV; the seed is
// unique per (pair, round, purpose) so IV reuse cannot occur.
//
// The hot path is allocation-free: the in-place XOR (dst == src, the
// DC-net pad accumulate pattern) feeds the stdlib's vectorized CTR
// directly, and the two-operand form stages keystream chunks through a
// fixed scratch buffer owned by the stream instead of allocating a
// temporary per call.
type aesPRNG struct {
	block  cipher.Block
	stream cipher.Stream
	buf    []byte // lazy keystream scratch for the two-operand XOR path
}

// aesScratchLen sizes the two-operand XOR path's keystream chunks. The
// scratch is allocated on first use only: the dominant DC-net pattern
// (pad accumulate, dst == src) never touches it, keeping per-stream
// setup small when a server builds one stream per client per round.
const aesScratchLen = 512

// NewAESPRNG returns the production AES-256-CTR stream for seed.
func NewAESPRNG(seed []byte) PRNG {
	key := Hash("dissent/prng-key", seed)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("crypto: aes.NewCipher: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	return &aesPRNG{block: block, stream: cipher.NewCTR(block, iv[:])}
}

func (p *aesPRNG) Read(b []byte) (int, error) {
	for i := range b {
		b[i] = 0
	}
	p.stream.XORKeyStream(b, b)
	return len(b), nil
}

func (p *aesPRNG) XORKeyStream(dst, src []byte) {
	if len(src) == 0 {
		return
	}
	dst = dst[:len(src)]
	if &dst[0] == &src[0] {
		// Entire overlap: CTR's native in-place XOR is exactly dst ^= ks.
		p.stream.XORKeyStream(dst, src)
		return
	}
	if p.buf == nil {
		p.buf = make([]byte, aesScratchLen)
	}
	for len(src) > 0 {
		n := len(src)
		if n > len(p.buf) {
			n = len(p.buf)
		}
		ks := p.buf[:n]
		for i := range ks {
			ks[i] = 0
		}
		p.stream.XORKeyStream(ks, ks)
		subtle.XORBytes(dst[:n], src[:n], ks)
		dst, src = dst[n:], src[n:]
	}
}

// XORKeyStreamAt XORs keystream bytes [off, off+len(dst)) into dst,
// seeking by rebuilding the CTR state at the containing block. It is
// independent of (and does not disturb) the sequential stream position.
func (p *aesPRNG) XORKeyStreamAt(dst []byte, off uint64) {
	if len(dst) == 0 {
		return
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[8:], off/aes.BlockSize)
	s := cipher.NewCTR(p.block, iv[:])
	if skip := int(off % aes.BlockSize); skip > 0 {
		var head [aes.BlockSize]byte
		s.XORKeyStream(head[:skip], head[:skip])
	}
	s.XORKeyStream(dst, dst)
}

// fastPRNG is a xoshiro256** stream: deterministic, uniform-looking,
// and several times faster than AES-CTR without hardware acceleration.
// NOT cryptographically secure — benchmark harness use only.
type fastPRNG struct {
	s   [4]uint64
	buf [8]byte
	n   int // bytes remaining in buf
}

// NewFastPRNG returns a non-cryptographic stream for seed, for use in
// benchmark harnesses only.
func NewFastPRNG(seed []byte) PRNG {
	h := Hash("dissent/fast-prng", seed)
	p := &fastPRNG{}
	for i := 0; i < 4; i++ {
		p.s[i] = binary.LittleEndian.Uint64(h[i*8:])
		if p.s[i] == 0 {
			p.s[i] = 0x9E3779B97F4A7C15
		}
	}
	return p
}

func (p *fastPRNG) next() uint64 {
	s := &p.s
	result := rotl64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl64(s[3], 45)
	return result
}

func rotl64(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

func (p *fastPRNG) Read(b []byte) (int, error) {
	i := 0
	// Drain buffered bytes first.
	for p.n > 0 && i < len(b) {
		b[i] = p.buf[8-p.n]
		p.n--
		i++
	}
	for i+8 <= len(b) {
		binary.LittleEndian.PutUint64(b[i:], p.next())
		i += 8
	}
	if i < len(b) {
		binary.LittleEndian.PutUint64(p.buf[:], p.next())
		p.n = 8
		for i < len(b) {
			b[i] = p.buf[8-p.n]
			p.n--
			i++
		}
	}
	return len(b), nil
}

func (p *fastPRNG) XORKeyStream(dst, src []byte) {
	i := 0
	for p.n > 0 && i < len(src) {
		dst[i] = src[i] ^ p.buf[8-p.n]
		p.n--
		i++
	}
	for i+8 <= len(src) {
		v := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v^p.next())
		i += 8
	}
	if i < len(src) {
		binary.LittleEndian.PutUint64(p.buf[:], p.next())
		p.n = 8
		for i < len(src) {
			dst[i] = src[i] ^ p.buf[8-p.n]
			p.n--
			i++
		}
	}
}

// XORBytes XORs src into dst in place (dst[i] ^= src[i]) and returns
// the number of bytes processed (the shorter length). It rides the
// stdlib's vectorized XOR.
func XORBytes(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n == 0 {
		return 0
	}
	subtle.XORBytes(dst[:n], dst[:n], src[:n])
	return n
}
