package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
)

// PRNG is a deterministic pseudo-random byte stream. Client/server
// pairs seed one PRNG per (pair, round) from their shared secret; the
// XOR of matching streams cancels in the DC-net combine step, so any
// deterministic stream construction preserves protocol correctness.
//
// Two implementations are provided: the AES-256-CTR stream used in
// production, and a much faster xoshiro-based stream used by the
// large-scale benchmark harnesses, where timing is accounted by the
// simulator's calibrated cost model rather than by the cipher actually
// executed (see internal/bench).
type PRNG interface {
	// Read fills p with pseudo-random bytes; it never fails.
	Read(p []byte) (int, error)
	// XORKeyStream XORs the next len(src) stream bytes into dst.
	// dst and src may overlap entirely or not at all.
	XORKeyStream(dst, src []byte)
}

// PRNGMaker constructs a stream from a 32-byte seed. It parameterizes
// the DC-net engines so benchmarks can swap in FastPRNG.
type PRNGMaker func(seed []byte) PRNG

// aesPRNG implements PRNG over AES-256-CTR with a zero IV; the seed is
// unique per (pair, round, purpose) so IV reuse cannot occur.
type aesPRNG struct {
	stream cipher.Stream
}

// NewAESPRNG returns the production AES-256-CTR stream for seed.
func NewAESPRNG(seed []byte) PRNG {
	key := Hash("dissent/prng-key", seed)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("crypto: aes.NewCipher: " + err.Error())
	}
	iv := make([]byte, aes.BlockSize)
	return &aesPRNG{stream: cipher.NewCTR(block, iv)}
}

func (p *aesPRNG) Read(b []byte) (int, error) {
	for i := range b {
		b[i] = 0
	}
	p.stream.XORKeyStream(b, b)
	return len(b), nil
}

func (p *aesPRNG) XORKeyStream(dst, src []byte) {
	tmp := make([]byte, len(src))
	p.stream.XORKeyStream(tmp, tmp)
	for i := range src {
		dst[i] = src[i] ^ tmp[i]
	}
}

// fastPRNG is a xoshiro256** stream: deterministic, uniform-looking,
// and several times faster than AES-CTR without hardware acceleration.
// NOT cryptographically secure — benchmark harness use only.
type fastPRNG struct {
	s   [4]uint64
	buf [8]byte
	n   int // bytes remaining in buf
}

// NewFastPRNG returns a non-cryptographic stream for seed, for use in
// benchmark harnesses only.
func NewFastPRNG(seed []byte) PRNG {
	h := Hash("dissent/fast-prng", seed)
	p := &fastPRNG{}
	for i := 0; i < 4; i++ {
		p.s[i] = binary.LittleEndian.Uint64(h[i*8:])
		if p.s[i] == 0 {
			p.s[i] = 0x9E3779B97F4A7C15
		}
	}
	return p
}

func (p *fastPRNG) next() uint64 {
	s := &p.s
	result := rotl64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl64(s[3], 45)
	return result
}

func rotl64(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

func (p *fastPRNG) Read(b []byte) (int, error) {
	i := 0
	// Drain buffered bytes first.
	for p.n > 0 && i < len(b) {
		b[i] = p.buf[8-p.n]
		p.n--
		i++
	}
	for i+8 <= len(b) {
		binary.LittleEndian.PutUint64(b[i:], p.next())
		i += 8
	}
	if i < len(b) {
		binary.LittleEndian.PutUint64(p.buf[:], p.next())
		p.n = 8
		for i < len(b) {
			b[i] = p.buf[8-p.n]
			p.n--
			i++
		}
	}
	return len(b), nil
}

func (p *fastPRNG) XORKeyStream(dst, src []byte) {
	i := 0
	for p.n > 0 && i < len(src) {
		dst[i] = src[i] ^ p.buf[8-p.n]
		p.n--
		i++
	}
	for i+8 <= len(src) {
		v := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v^p.next())
		i += 8
	}
	if i < len(src) {
		binary.LittleEndian.PutUint64(p.buf[:], p.next())
		p.n = 8
		for i < len(src) {
			dst[i] = src[i] ^ p.buf[8-p.n]
			p.n--
			i++
		}
	}
}

// XORBytes XORs src into dst in place (dst[i] ^= src[i]) and returns
// the number of bytes processed (the shorter length).
func XORBytes(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}
