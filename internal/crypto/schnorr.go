package crypto

import (
	"errors"
	"io"
	"math/big"
)

// Signature is a Schnorr signature (c, z) over the signing group.
// Dissent signs every protocol message with the sender's long-term key
// for integrity and accountability, and signs accusations with
// pseudonym slot keys — which are bare group elements produced by the
// key shuffle, hence Schnorr rather than a fixed-curve ECDSA (§3.3, §3.9).
type Signature struct {
	C *big.Int
	Z *big.Int
}

// SignatureLen returns the encoded signature size for group g.
func SignatureLen(g Group) int { return 2 * scalarLen(g) }

func scalarLen(g Group) int { return (g.Order().BitLen() + 7) / 8 }

// Sign produces a Schnorr signature on msg with the keypair, bound to
// domain for cross-protocol separation.
func (kp *KeyPair) Sign(domain string, msg []byte, rand io.Reader) (Signature, error) {
	if kp.Private == nil {
		return Signature{}, errors.New("crypto: signing requires a private key")
	}
	g := kp.Group
	k, err := g.RandomScalar(rand)
	if err != nil {
		return Signature{}, err
	}
	r := g.BaseMult(k)
	c := schnorrChallenge(g, domain, r, kp.Public, msg)
	z := new(big.Int).Mul(c, kp.Private)
	z.Add(z, k)
	z.Mod(z, g.Order())
	return Signature{C: c, Z: z}, nil
}

// Verify checks a Schnorr signature on msg under public key pub.
func Verify(g Group, pub Element, domain string, msg []byte, sig Signature) error {
	if sig.C == nil || sig.Z == nil {
		return errors.New("crypto: incomplete signature")
	}
	q := g.Order()
	if sig.C.Sign() < 0 || sig.C.Cmp(q) >= 0 || sig.Z.Sign() < 0 || sig.Z.Cmp(q) >= 0 {
		return errors.New("crypto: signature values out of range")
	}
	// r = zG - c*pub
	r := g.Add(g.BaseMult(sig.Z), g.Neg(g.ScalarMult(pub, sig.C)))
	c := schnorrChallenge(g, domain, r, pub, msg)
	if c.Cmp(sig.C) != 0 {
		return errors.New("crypto: signature verification failed")
	}
	return nil
}

func schnorrChallenge(g Group, domain string, r, pub Element, msg []byte) *big.Int {
	return HashToScalar(g, "dissent/schnorr",
		[]byte(domain), g.Encode(r), g.Encode(pub), msg)
}

// EncodeSignature serializes sig as two fixed-width scalars.
func EncodeSignature(g Group, sig Signature) []byte {
	n := scalarLen(g)
	buf := make([]byte, 2*n)
	sig.C.FillBytes(buf[:n])
	sig.Z.FillBytes(buf[n:])
	return buf
}

// DecodeSignature parses a signature serialized by EncodeSignature.
func DecodeSignature(g Group, data []byte) (Signature, error) {
	n := scalarLen(g)
	if len(data) != 2*n {
		return Signature{}, errors.New("crypto: bad signature length")
	}
	return Signature{
		C: new(big.Int).SetBytes(data[:n]),
		Z: new(big.Int).SetBytes(data[n:]),
	}, nil
}
