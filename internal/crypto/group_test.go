package crypto

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

// testGroups returns the groups every generic test runs against.
func testGroups() map[string]Group {
	return map[string]Group{
		"P-256":    P256(),
		"modp-512": ModP512Test(),
	}
}

func TestGroupAxioms(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			a, err := g.RandomElement(nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := g.RandomElement(nil)
			if err != nil {
				t.Fatal(err)
			}
			// Commutativity.
			if !g.Equal(g.Add(a, b), g.Add(b, a)) {
				t.Error("Add not commutative")
			}
			// Identity.
			if !g.Equal(g.Add(a, g.Identity()), a) {
				t.Error("identity not neutral")
			}
			// Inverse.
			if !g.IsIdentity(g.Add(a, g.Neg(a))) {
				t.Error("a + (-a) != identity")
			}
			// Associativity.
			c, _ := g.RandomElement(nil)
			if !g.Equal(g.Add(g.Add(a, b), c), g.Add(a, g.Add(b, c))) {
				t.Error("Add not associative")
			}
			// Order: q*g == identity.
			if !g.IsIdentity(g.BaseMult(g.Order())) {
				t.Error("order*G != identity")
			}
		})
	}
}

func TestScalarMultDistributes(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			k1, _ := g.RandomScalar(nil)
			k2, _ := g.RandomScalar(nil)
			sum := new(big.Int).Add(k1, k2)
			lhs := g.BaseMult(sum)
			rhs := g.Add(g.BaseMult(k1), g.BaseMult(k2))
			if !g.Equal(lhs, rhs) {
				t.Error("(k1+k2)G != k1 G + k2 G")
			}
			a, _ := g.RandomElement(nil)
			prod := new(big.Int).Mul(k1, k2)
			if !g.Equal(g.ScalarMult(g.ScalarMult(a, k1), k2), g.ScalarMult(a, prod)) {
				t.Error("k2(k1 A) != (k1 k2) A")
			}
		})
	}
}

func TestBaseMultMatchesScalarMult(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			k, _ := g.RandomScalar(nil)
			if !g.Equal(g.BaseMult(k), g.ScalarMult(g.Generator(), k)) {
				t.Error("BaseMult disagrees with ScalarMult(Generator)")
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 8; i++ {
				a, _ := g.RandomElement(nil)
				enc := g.Encode(a)
				if len(enc) != g.ElementLen() {
					t.Fatalf("encoding length %d, want %d", len(enc), g.ElementLen())
				}
				dec, err := g.Decode(enc)
				if err != nil {
					t.Fatal(err)
				}
				if !g.Equal(a, dec) {
					t.Fatal("decode(encode(a)) != a")
				}
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			if _, err := g.Decode(nil); err == nil {
				t.Error("Decode(nil) accepted")
			}
			junk := bytes.Repeat([]byte{0xFF}, g.ElementLen())
			if _, err := g.Decode(junk); err == nil {
				t.Error("Decode(0xFF...) accepted")
			}
			if _, err := g.Decode(make([]byte, g.ElementLen()-1)); err == nil {
				t.Error("short encoding accepted")
			}
		})
	}
}

func TestECIdentityEncodeDecode(t *testing.T) {
	g := P256()
	id := g.Identity()
	enc := g.Encode(id)
	dec, err := g.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIdentity(dec) {
		t.Error("identity round-trip failed")
	}
}

func TestModPDecodeRejectsNonResidue(t *testing.T) {
	g := ModP512Test()
	// Find a non-residue: -1 is a non-residue mod a safe prime p ≡ 3 (mod 4).
	nonres := new(big.Int).Sub(g.p, big.NewInt(1))
	buf := make([]byte, g.ElementLen())
	nonres.FillBytes(buf)
	if _, err := g.Decode(buf); err == nil {
		t.Error("Decode accepted a quadratic non-residue")
	}
}

func TestEmbedExtractRoundTrip(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			msgs := [][]byte{
				nil,
				{},
				[]byte("x"),
				[]byte("hello dissent"),
				bytes.Repeat([]byte{0xAB}, g.EmbedLimit()),
			}
			for _, m := range msgs {
				e, err := g.Embed(m, nil)
				if err != nil {
					t.Fatalf("Embed(%d bytes): %v", len(m), err)
				}
				got, err := g.Extract(e)
				if err != nil {
					t.Fatalf("Extract: %v", err)
				}
				if !bytes.Equal(got, m) && !(len(got) == 0 && len(m) == 0) {
					t.Fatalf("Extract = %q, want %q", got, m)
				}
			}
		})
	}
}

func TestEmbedTooLong(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			long := make([]byte, g.EmbedLimit()+1)
			if _, err := g.Embed(long, nil); err != ErrEmbedTooLong {
				t.Errorf("Embed(too long) = %v, want ErrEmbedTooLong", err)
			}
		})
	}
}

func TestEmbedProperty(t *testing.T) {
	g := P256()
	f := func(data []byte) bool {
		if len(data) > g.EmbedLimit() {
			data = data[:g.EmbedLimit()]
		}
		e, err := g.Embed(data, nil)
		if err != nil {
			return false
		}
		got, err := g.Extract(e)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestEmbeddedElementSurvivesEncode(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			m := []byte("wire round-trip msg")
			e, err := g.Embed(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := g.Decode(g.Encode(e))
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.Extract(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, m) {
				t.Error("embedded message corrupted by encode/decode")
			}
		})
	}
}

func TestSharedSecretSymmetry(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			a, err := GenerateKeyPair(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := GenerateKeyPair(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			sab, err := a.SharedSecret(b.Public)
			if err != nil {
				t.Fatal(err)
			}
			sba, err := b.SharedSecret(a.Public)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(sab, sba) {
				t.Error("DH shared secrets disagree")
			}
			seedAB := SecretSeed(g, sab, a.Public, b.Public)
			seedBA := SecretSeed(g, sba, b.Public, a.Public)
			if !bytes.Equal(seedAB, seedBA) {
				t.Error("secret seeds disagree despite key ordering")
			}
		})
	}
}

func TestSharedSecretRejectsIdentity(t *testing.T) {
	g := P256()
	a, _ := GenerateKeyPair(g, nil)
	if _, err := a.SharedSecret(g.Identity()); err == nil {
		t.Error("SharedSecret accepted identity peer key")
	}
}

func TestPublicOnlyCannotSign(t *testing.T) {
	g := P256()
	a, _ := GenerateKeyPair(g, nil)
	pub := PublicOnly(g, a.Public)
	if _, err := pub.Sign("d", []byte("m"), nil); err == nil {
		t.Error("public-only keypair signed")
	}
	if _, err := pub.SharedSecret(a.Public); err == nil {
		t.Error("public-only keypair produced DH secret")
	}
}

func TestRandomScalarNonZeroInRange(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 32; i++ {
				k, err := g.RandomScalar(nil)
				if err != nil {
					t.Fatal(err)
				}
				if k.Sign() <= 0 || k.Cmp(g.Order()) >= 0 {
					t.Fatalf("scalar out of range: %v", k)
				}
			}
		})
	}
}
