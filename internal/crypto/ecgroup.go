package crypto

import (
	"crypto/elliptic"
	"fmt"
	"io"
	"math/big"
)

// ecPoint is an element of an elliptic-curve group. The identity
// (point at infinity) is represented by x == nil.
type ecPoint struct {
	x, y *big.Int
}

func (p *ecPoint) String() string {
	if p.x == nil {
		return "EC(∞)"
	}
	return fmt.Sprintf("EC(%x…)", p.x.Bytes()[:4])
}

// ECGroup wraps a crypto/elliptic curve as a Group. Dissent uses P-256:
// the curve's prime order makes every non-identity point a generator,
// and the stdlib carries constant-time assembly for it.
type ECGroup struct {
	curve elliptic.Curve
	name  string
	gen   *ecPoint
}

// P256 returns the NIST P-256 group used for pseudonym-key shuffles,
// node identities, signatures, and pairwise DH secrets.
func P256() *ECGroup {
	c := elliptic.P256()
	return &ECGroup{
		curve: c,
		name:  "P-256",
		gen:   &ecPoint{x: c.Params().Gx, y: c.Params().Gy},
	}
}

// Name implements Group.
func (g *ECGroup) Name() string { return g.name }

// Order implements Group.
func (g *ECGroup) Order() *big.Int { return new(big.Int).Set(g.curve.Params().N) }

// Generator implements Group.
func (g *ECGroup) Generator() Element { return g.gen }

// Identity implements Group.
func (g *ECGroup) Identity() Element { return &ecPoint{} }

// Add implements Group.
func (g *ECGroup) Add(a, b Element) Element {
	pa, pb := a.(*ecPoint), b.(*ecPoint)
	if pa.x == nil {
		return pb
	}
	if pb.x == nil {
		return pa
	}
	x, y := g.curve.Add(pa.x, pa.y, pb.x, pb.y)
	if x.Sign() == 0 && y.Sign() == 0 {
		return &ecPoint{}
	}
	return &ecPoint{x: x, y: y}
}

// Neg implements Group.
func (g *ECGroup) Neg(a Element) Element {
	pa := a.(*ecPoint)
	if pa.x == nil {
		return pa
	}
	ny := new(big.Int).Sub(g.curve.Params().P, pa.y)
	ny.Mod(ny, g.curve.Params().P)
	return &ecPoint{x: new(big.Int).Set(pa.x), y: ny}
}

// ScalarMult implements Group.
func (g *ECGroup) ScalarMult(a Element, k *big.Int) Element {
	pa := a.(*ecPoint)
	kk := new(big.Int).Mod(k, g.curve.Params().N)
	if pa.x == nil || kk.Sign() == 0 {
		return &ecPoint{}
	}
	x, y := g.curve.ScalarMult(pa.x, pa.y, kk.Bytes())
	if x.Sign() == 0 && y.Sign() == 0 {
		return &ecPoint{}
	}
	return &ecPoint{x: x, y: y}
}

// BaseMult implements Group.
func (g *ECGroup) BaseMult(k *big.Int) Element {
	kk := new(big.Int).Mod(k, g.curve.Params().N)
	if kk.Sign() == 0 {
		return &ecPoint{}
	}
	x, y := g.curve.ScalarBaseMult(kk.Bytes())
	return &ecPoint{x: x, y: y}
}

// Equal implements Group.
func (g *ECGroup) Equal(a, b Element) bool {
	pa, pb := a.(*ecPoint), b.(*ecPoint)
	if pa.x == nil || pb.x == nil {
		return pa.x == nil && pb.x == nil
	}
	return pa.x.Cmp(pb.x) == 0 && pa.y.Cmp(pb.y) == 0
}

// IsIdentity implements Group.
func (g *ECGroup) IsIdentity(a Element) bool { return a.(*ecPoint).x == nil }

// ElementLen implements Group: compressed point encoding.
func (g *ECGroup) ElementLen() int { return 1 + (g.curve.Params().BitSize+7)/8 }

// Encode implements Group. The identity encodes as all zero bytes.
func (g *ECGroup) Encode(a Element) []byte {
	pa := a.(*ecPoint)
	if pa.x == nil {
		return make([]byte, g.ElementLen())
	}
	return elliptic.MarshalCompressed(g.curve, pa.x, pa.y)
}

// Decode implements Group.
func (g *ECGroup) Decode(data []byte) (Element, error) {
	if len(data) != g.ElementLen() {
		return nil, ErrBadElement
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return &ecPoint{}, nil
	}
	x, y := elliptic.UnmarshalCompressed(g.curve, data)
	if x == nil {
		return nil, ErrBadElement
	}
	return &ecPoint{x: x, y: y}, nil
}

// RandomScalar implements Group.
func (g *ECGroup) RandomScalar(r io.Reader) (*big.Int, error) {
	return randScalar(r, g.curve.Params().N)
}

// RandomElement implements Group.
func (g *ECGroup) RandomElement(r io.Reader) (Element, error) {
	k, err := g.RandomScalar(r)
	if err != nil {
		return nil, err
	}
	return g.BaseMult(k), nil
}

// EmbedLimit implements Group. The x-coordinate layout is
// [1-byte counter][1-byte length][payload][zero padding], so the field
// width minus two bytes of header minus one byte of headroom (so the
// integer stays below the field prime) is available.
func (g *ECGroup) EmbedLimit() int { return (g.curve.Params().BitSize+7)/8 - 3 }

// Embed implements Group using try-and-increment: candidate
// x-coordinates are tested for curve membership, bumping a counter byte
// until one works (~2 attempts expected).
func (g *ECGroup) Embed(msg []byte, r io.Reader) (Element, error) {
	if len(msg) > g.EmbedLimit() {
		return nil, ErrEmbedTooLong
	}
	fieldLen := (g.curve.Params().BitSize + 7) / 8
	buf := make([]byte, fieldLen)
	// buf[0] stays zero (headroom below the prime), buf[1] is the
	// counter, buf[2] the length, then the payload.
	buf[2] = byte(len(msg))
	copy(buf[3:], msg)
	for ctr := 0; ctr < 256; ctr++ {
		buf[1] = byte(ctr)
		x := new(big.Int).SetBytes(buf)
		if y := ecSolveY(g.curve, x); y != nil {
			return &ecPoint{x: x, y: y}, nil
		}
	}
	return nil, fmt.Errorf("crypto: embedding failed after 256 attempts")
}

// Extract implements Group.
func (g *ECGroup) Extract(a Element) ([]byte, error) {
	pa := a.(*ecPoint)
	if pa.x == nil {
		return nil, ErrNotEmbedded
	}
	fieldLen := (g.curve.Params().BitSize + 7) / 8
	buf := make([]byte, fieldLen)
	pa.x.FillBytes(buf)
	if buf[0] != 0 {
		return nil, ErrNotEmbedded
	}
	n := int(buf[2])
	if n > g.EmbedLimit() {
		return nil, ErrNotEmbedded
	}
	return append([]byte(nil), buf[3:3+n]...), nil
}

// ecSolveY returns a y with y² = x³ - 3x + b (mod p) if one exists.
func ecSolveY(curve elliptic.Curve, x *big.Int) *big.Int {
	p := curve.Params().P
	if x.Cmp(p) >= 0 {
		return nil
	}
	// rhs = x³ - 3x + b mod p
	rhs := new(big.Int).Mul(x, x)
	rhs.Mod(rhs, p)
	rhs.Mul(rhs, x)
	rhs.Mod(rhs, p)
	threeX := new(big.Int).Lsh(x, 1)
	threeX.Add(threeX, x)
	rhs.Sub(rhs, threeX)
	rhs.Add(rhs, curve.Params().B)
	rhs.Mod(rhs, p)
	y := new(big.Int).ModSqrt(rhs, p)
	if y == nil {
		return nil
	}
	if !curve.IsOnCurve(x, y) {
		return nil
	}
	return y
}
