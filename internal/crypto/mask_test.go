package crypto

import (
	"bytes"
	"testing"
)

func TestXORHashStreamDeterministic(t *testing.T) {
	seed := Hash("mask-test", []byte("seed"))
	a := make([]byte, 200)
	b := make([]byte, 200)
	XORHashStream("d", seed, 0, a)
	XORHashStream("d", seed, 0, b)
	if !bytes.Equal(a, b) {
		t.Fatal("stream not deterministic")
	}
	if allZeroBytes(a) {
		t.Fatal("stream is all zero")
	}
	c := make([]byte, 200)
	XORHashStream("d2", seed, 0, c)
	if bytes.Equal(a, c) {
		t.Fatal("domains share a stream")
	}
}

func TestXORHashStreamOffsets(t *testing.T) {
	// XORing at offset k must match the tail of the full stream, for
	// offsets around every block boundary.
	seed := Hash("mask-test", []byte("offsets"))
	full := make([]byte, 300)
	XORHashStream("off", seed, 0, full)
	for _, off := range []int{0, 1, 31, 32, 33, 63, 64, 65, 100, 255, 256, 299} {
		part := make([]byte, len(full)-off)
		XORHashStream("off", seed, off, part)
		if !bytes.Equal(part, full[off:]) {
			t.Fatalf("offset %d diverges from the sequential stream", off)
		}
	}
}

func TestXORHashStreamXORSemantics(t *testing.T) {
	// dst ^= KS applied twice restores dst.
	seed := Hash("mask-test", []byte("xor"))
	orig := []byte("the mask must be an involution over the payload bytes")
	buf := append([]byte(nil), orig...)
	XORHashStream("x", seed, 3, buf)
	if bytes.Equal(buf, orig) {
		t.Fatal("mask did nothing")
	}
	XORHashStream("x", seed, 3, buf)
	if !bytes.Equal(buf, orig) {
		t.Fatal("mask is not an involution")
	}
}

func TestXORHashStreamZeroAlloc(t *testing.T) {
	seed := Hash("mask-test", []byte("alloc"))
	buf := make([]byte, 1024)
	if avg := testing.AllocsPerRun(100, func() {
		XORHashStream("alloc", seed, 5, buf)
	}); avg != 0 {
		t.Fatalf("XORHashStream allocates %.1f times per run, want 0", avg)
	}
}

func allZeroBytes(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
