package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// Hash computes a domain-separated SHA-256 over a sequence of byte
// strings. Each part is length-prefixed so the encoding is injective.
func Hash(domain string, parts ...[]byte) []byte {
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(domain)))
	h.Write(lenBuf[:])
	h.Write([]byte(domain))
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	return h.Sum(nil)
}

// HashToScalar hashes the given parts into a scalar modulo the group
// order, used for Fiat–Shamir challenges. A counter extends the digest
// so the result is statistically close to uniform even when the order
// is slightly below a power of two.
func HashToScalar(g Group, domain string, parts ...[]byte) *big.Int {
	q := g.Order()
	// Two SHA-256 blocks give 512 bits, far above any supported order's
	// bit length for P-256; for modp-2048 the 256-bit statistical bias
	// from a single block is irrelevant to soundness, but we extend to
	// cover the order's width anyway.
	need := (q.BitLen() + 7) / 8
	buf := make([]byte, 0, need+32)
	var ctr uint64
	seed := Hash(domain, parts...)
	for len(buf) < need+16 {
		var ctrBuf [8]byte
		binary.BigEndian.PutUint64(ctrBuf[:], ctr)
		buf = append(buf, Hash("dissent/hts-expand", seed, ctrBuf[:])...)
		ctr++
	}
	v := new(big.Int).SetBytes(buf)
	return v.Mod(v, q)
}

// HashUint64 renders n big-endian for inclusion in a Hash call.
func HashUint64(n uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n)
	return b[:]
}
