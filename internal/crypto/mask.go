package crypto

import (
	"crypto/sha256"
	"encoding/binary"
)

// maskBlock is the keystream block size of XORHashStream (one SHA-256
// digest per block).
const maskBlock = sha256.Size

// maxMaskHeader bounds len(domain)+len(seed) so the per-block hash
// input fits a fixed stack buffer (no allocation on the hot path).
const maxMaskHeader = 96

// XORHashStream XORs a deterministic SHA-256-based keystream derived
// from (domain, seed) into dst, starting at byte offset off of the
// stream: dst[i] ^= KS[off+i]. Block b of the keystream is
// SHA-256(len8(domain) || domain || len8(seed) || seed || ctr64(b)),
// an injective encoding, so distinct (domain, seed) pairs yield
// independent streams.
//
// Unlike the AES PRNG — whose per-use key schedule forces an
// allocation — this stream is allocation-free for any one-shot key,
// which is what the DC-net slot mask needs: every EncodeSlot draws a
// fresh random seed, and the submit path must stay at 0 allocs/op.
func XORHashStream(domain string, seed []byte, off int, dst []byte) {
	if len(domain) > 255 || len(seed) > 255 || len(domain)+len(seed) > maxMaskHeader {
		panic("crypto: XORHashStream header too long")
	}
	if off < 0 {
		panic("crypto: XORHashStream negative offset")
	}
	var in [maxMaskHeader + 10]byte
	n := 0
	in[n] = byte(len(domain))
	n++
	n += copy(in[n:], domain)
	in[n] = byte(len(seed))
	n++
	n += copy(in[n:], seed)
	ctrPos := n
	n += 8

	blk := uint64(off / maskBlock)
	skip := off % maskBlock
	for len(dst) > 0 {
		binary.BigEndian.PutUint64(in[ctrPos:], blk)
		d := sha256.Sum256(in[:n])
		ks := d[skip:]
		m := len(dst)
		if m > len(ks) {
			m = len(ks)
		}
		XORBytes(dst[:m], ks[:m])
		dst = dst[m:]
		skip = 0
		blk++
	}
}
