package crypto

import (
	"errors"
	"io"
	"math/big"
)

// Ciphertext is an ElGamal ciphertext (C1, C2) = (rG, M + rY) where Y
// is the (possibly aggregated) public key. Dissent's shuffles encrypt
// under the sum of all server keys; each server later strips its own
// layer (§3.10).
type Ciphertext struct {
	C1, C2 Element
}

// Encrypt encrypts message element m under public key y with fresh
// randomness from r (crypto/rand if nil).
func Encrypt(g Group, y, m Element, r io.Reader) (Ciphertext, *big.Int, error) {
	k, err := g.RandomScalar(r)
	if err != nil {
		return Ciphertext{}, nil, err
	}
	return EncryptWith(g, y, m, k), k, nil
}

// EncryptWith encrypts m under y with explicit randomness k.
func EncryptWith(g Group, y, m Element, k *big.Int) Ciphertext {
	return Ciphertext{
		C1: g.BaseMult(k),
		C2: g.Add(m, g.ScalarMult(y, k)),
	}
}

// Reencrypt rerandomizes ct under public key y with fresh randomness,
// returning the new ciphertext and the randomness used (needed by
// shuffle proofs).
func Reencrypt(g Group, y Element, ct Ciphertext, r io.Reader) (Ciphertext, *big.Int, error) {
	k, err := g.RandomScalar(r)
	if err != nil {
		return Ciphertext{}, nil, err
	}
	return ReencryptWith(g, y, ct, k), k, nil
}

// ReencryptWith rerandomizes ct under y with explicit randomness k.
func ReencryptWith(g Group, y Element, ct Ciphertext, k *big.Int) Ciphertext {
	return Ciphertext{
		C1: g.Add(ct.C1, g.BaseMult(k)),
		C2: g.Add(ct.C2, g.ScalarMult(y, k)),
	}
}

// Decrypt fully decrypts ct with private key x (where y = xG).
func Decrypt(g Group, x *big.Int, ct Ciphertext) Element {
	return g.Add(ct.C2, g.Neg(g.ScalarMult(ct.C1, x)))
}

// DecryptShare computes a server's decryption share x*C1 for layered
// decryption: subtracting every server's share from C2 recovers the
// plaintext when the ciphertext was encrypted under the sum of the
// server keys.
func DecryptShare(g Group, x *big.Int, ct Ciphertext) Element {
	return g.ScalarMult(ct.C1, x)
}

// StripLayer removes one server's layer from ct: C2 -= share. C1 is
// unchanged, so the result is a valid ciphertext under the remaining
// aggregate key.
func StripLayer(g Group, ct Ciphertext, share Element) Ciphertext {
	return Ciphertext{C1: ct.C1, C2: g.Add(ct.C2, g.Neg(share))}
}

// AggregateKeys sums a set of public keys; encrypting under the sum
// requires every corresponding private key to decrypt, which is what
// gives the shuffle its anytrust property.
func AggregateKeys(g Group, keys []Element) Element {
	acc := g.Identity()
	for _, k := range keys {
		acc = g.Add(acc, k)
	}
	return acc
}

// EncodeCiphertext serializes ct.
func EncodeCiphertext(g Group, ct Ciphertext) []byte {
	buf := make([]byte, 0, 2*g.ElementLen())
	buf = append(buf, g.Encode(ct.C1)...)
	buf = append(buf, g.Encode(ct.C2)...)
	return buf
}

// DecodeCiphertext parses a ciphertext serialized by EncodeCiphertext.
func DecodeCiphertext(g Group, data []byte) (Ciphertext, error) {
	n := g.ElementLen()
	if len(data) != 2*n {
		return Ciphertext{}, errors.New("crypto: bad ciphertext length")
	}
	c1, err := g.Decode(data[:n])
	if err != nil {
		return Ciphertext{}, err
	}
	c2, err := g.Decode(data[n:])
	if err != nil {
		return Ciphertext{}, err
	}
	return Ciphertext{C1: c1, C2: c2}, nil
}
