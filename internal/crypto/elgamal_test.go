package crypto

import (
	"bytes"
	"testing"
)

func TestElGamalRoundTrip(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			kp, _ := GenerateKeyPair(g, nil)
			m, _ := g.RandomElement(nil)
			ct, _, err := Encrypt(g, kp.Public, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(Decrypt(g, kp.Private, ct), m) {
				t.Error("decrypt(encrypt(m)) != m")
			}
		})
	}
}

func TestElGamalReencryptPreservesPlaintext(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			kp, _ := GenerateKeyPair(g, nil)
			m, _ := g.RandomElement(nil)
			ct, _, _ := Encrypt(g, kp.Public, m, nil)
			ct2, _, err := Reencrypt(g, kp.Public, ct, nil)
			if err != nil {
				t.Fatal(err)
			}
			if g.Equal(ct.C1, ct2.C1) && g.Equal(ct.C2, ct2.C2) {
				t.Error("reencryption did not change the ciphertext")
			}
			if !g.Equal(Decrypt(g, kp.Private, ct2), m) {
				t.Error("reencryption changed the plaintext")
			}
		})
	}
}

func TestElGamalLayeredDecryption(t *testing.T) {
	// Encrypt under the sum of three keys, strip layers one at a time —
	// exactly the shuffle pipeline's decryption structure.
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			const servers = 3
			kps := make([]*KeyPair, servers)
			pubs := make([]Element, servers)
			for i := range kps {
				kps[i], _ = GenerateKeyPair(g, nil)
				pubs[i] = kps[i].Public
			}
			agg := AggregateKeys(g, pubs)
			m, _ := g.RandomElement(nil)
			ct, _, _ := Encrypt(g, agg, m, nil)
			for i := 0; i < servers; i++ {
				share := DecryptShare(g, kps[i].Private, ct)
				ct = StripLayer(g, ct, share)
			}
			if !g.Equal(ct.C2, m) {
				t.Error("layered decryption did not recover plaintext")
			}
		})
	}
}

func TestElGamalLayeredWithReencryption(t *testing.T) {
	// Interleave re-encryption under the remaining aggregate key with
	// layer stripping, as the shuffle servers do.
	g := P256()
	const servers = 4
	kps := make([]*KeyPair, servers)
	pubs := make([]Element, servers)
	for i := range kps {
		kps[i], _ = GenerateKeyPair(g, nil)
		pubs[i] = kps[i].Public
	}
	m, _ := g.RandomElement(nil)
	ct, _, _ := Encrypt(g, AggregateKeys(g, pubs), m, nil)
	for i := 0; i < servers; i++ {
		remaining := AggregateKeys(g, pubs[i:])
		var err error
		ct, _, err = Reencrypt(g, remaining, ct, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct = StripLayer(g, ct, DecryptShare(g, kps[i].Private, ct))
	}
	if !g.Equal(ct.C2, m) {
		t.Error("pipeline decryption did not recover plaintext")
	}
}

func TestCiphertextEncodeDecode(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			kp, _ := GenerateKeyPair(g, nil)
			m, _ := g.RandomElement(nil)
			ct, _, _ := Encrypt(g, kp.Public, m, nil)
			enc := EncodeCiphertext(g, ct)
			dec, err := DecodeCiphertext(g, enc)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(dec.C1, ct.C1) || !g.Equal(dec.C2, ct.C2) {
				t.Error("ciphertext round-trip mismatch")
			}
			if _, err := DecodeCiphertext(g, enc[:len(enc)-1]); err == nil {
				t.Error("short ciphertext accepted")
			}
		})
	}
}

func TestElGamalEmbeddedMessage(t *testing.T) {
	for name, g := range testGroups() {
		t.Run(name, func(t *testing.T) {
			kp, _ := GenerateKeyPair(g, nil)
			msg := []byte("anonymous accusation payload")
			m, err := g.Embed(msg, nil)
			if err != nil {
				t.Fatal(err)
			}
			ct, _, _ := Encrypt(g, kp.Public, m, nil)
			out, err := g.Extract(Decrypt(g, kp.Private, ct))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, msg) {
				t.Errorf("extracted %q, want %q", out, msg)
			}
		})
	}
}
