package crypto

import (
	"errors"
	"io"
	"math/big"
)

// DLEQProof is a Chaum–Pedersen non-interactive proof that
// log_G(Y) == log_B(D): the prover knows x with Y = xG and D = xB.
// Dissent uses these to make shuffle decryption verifiable (a server
// proves its decryption share D = x*C1 matches its public key) and in
// accusation rebuttals (a client proves the revealed DH secret
// K = x*S matches its public key) (§3.9–3.10).
type DLEQProof struct {
	C *big.Int // Fiat–Shamir challenge
	Z *big.Int // response
}

// ProveDLEQ proves log_G(y) == log_b(d) with witness x, binding the
// proof to ctx. rand may be nil for crypto/rand.
func ProveDLEQ(g Group, x *big.Int, b, y, d Element, ctx []byte, rand io.Reader) (DLEQProof, error) {
	w, err := g.RandomScalar(rand)
	if err != nil {
		return DLEQProof{}, err
	}
	a1 := g.BaseMult(w)
	a2 := g.ScalarMult(b, w)
	c := dleqChallenge(g, b, y, d, a1, a2, ctx)
	// z = w + c*x mod q
	z := new(big.Int).Mul(c, x)
	z.Add(z, w)
	z.Mod(z, g.Order())
	return DLEQProof{C: c, Z: z}, nil
}

// VerifyDLEQ checks a proof that log_G(y) == log_b(d) under context ctx.
func VerifyDLEQ(g Group, b, y, d Element, proof DLEQProof, ctx []byte) error {
	if proof.C == nil || proof.Z == nil {
		return errors.New("crypto: incomplete DLEQ proof")
	}
	q := g.Order()
	if proof.C.Sign() < 0 || proof.C.Cmp(q) >= 0 || proof.Z.Sign() < 0 || proof.Z.Cmp(q) >= 0 {
		return errors.New("crypto: DLEQ proof values out of range")
	}
	// a1 = zG - cY ; a2 = zB - cD
	a1 := g.Add(g.BaseMult(proof.Z), g.Neg(g.ScalarMult(y, proof.C)))
	a2 := g.Add(g.ScalarMult(b, proof.Z), g.Neg(g.ScalarMult(d, proof.C)))
	c := dleqChallenge(g, b, y, d, a1, a2, ctx)
	if c.Cmp(proof.C) != 0 {
		return errors.New("crypto: DLEQ proof verification failed")
	}
	return nil
}

func dleqChallenge(g Group, b, y, d, a1, a2 Element, ctx []byte) *big.Int {
	return HashToScalar(g, "dissent/dleq",
		g.Encode(g.Generator()), g.Encode(b), g.Encode(y), g.Encode(d),
		g.Encode(a1), g.Encode(a2), ctx)
}

// ProveDLEQBatch proves log_G(y) == log_{b_i}(d_i) for every i with a
// single proof, by taking a Fiat–Shamir random linear combination of
// the statement pairs. Shuffle servers use this to prove an entire
// batch of decryption shares at once, keeping verification cost at two
// scalar multiplications plus one multi-combination regardless of N.
func ProveDLEQBatch(g Group, x *big.Int, bs, ds []Element, y Element, ctx []byte, rand io.Reader) (DLEQProof, error) {
	if len(bs) != len(ds) {
		return DLEQProof{}, errors.New("crypto: batch length mismatch")
	}
	bc, dc := dleqBatchCombine(g, bs, ds, y, ctx)
	return ProveDLEQ(g, x, bc, y, dc, ctx, rand)
}

// VerifyDLEQBatch verifies a batch proof from ProveDLEQBatch.
func VerifyDLEQBatch(g Group, bs, ds []Element, y Element, proof DLEQProof, ctx []byte) error {
	if len(bs) != len(ds) {
		return errors.New("crypto: batch length mismatch")
	}
	bc, dc := dleqBatchCombine(g, bs, ds, y, ctx)
	return VerifyDLEQ(g, bc, y, dc, proof, ctx)
}

// dleqBatchCombine derives deterministic weights ρ_i from the full
// statement and returns (Σρ_i b_i, Σρ_i d_i).
func dleqBatchCombine(g Group, bs, ds []Element, y Element, ctx []byte) (Element, Element) {
	parts := make([][]byte, 0, 2*len(bs)+2)
	parts = append(parts, g.Encode(y), ctx)
	for i := range bs {
		parts = append(parts, g.Encode(bs[i]), g.Encode(ds[i]))
	}
	seed := Hash("dissent/dleq-batch", parts...)
	bc, dc := g.Identity(), g.Identity()
	for i := range bs {
		rho := HashToScalar(g, "dissent/dleq-batch-rho", seed, HashUint64(uint64(i)))
		bc = g.Add(bc, g.ScalarMult(bs[i], rho))
		dc = g.Add(dc, g.ScalarMult(ds[i], rho))
	}
	return bc, dc
}
