// Package crypto provides the cryptographic substrate for Dissent:
// prime-order group abstractions (NIST P-256 and an RFC 3526 Schnorr
// group), ElGamal encryption with message embedding, Chaum–Pedersen
// discrete-log equality proofs, Schnorr signatures, Diffie–Hellman
// shared secrets, and deterministic PRNG streams used to build DC-net
// ciphertexts.
//
// Everything in this package is built on the Go standard library only.
package crypto

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
)

// Element is an opaque group element. Elements are immutable: group
// operations always allocate fresh results.
type Element interface {
	// String returns a short human-readable form for debugging.
	String() string
}

// Group abstracts a cyclic group of prime order in which the decisional
// Diffie–Hellman problem is assumed hard. Dissent uses two concrete
// groups: ECGroup (P-256) for pseudonym-key shuffles, where elements are
// already keys and no message embedding is needed, and ModPGroup
// (RFC 3526 2048-bit) for general message shuffles, where arbitrary
// byte strings must be embedded into elements (§3.10 of the paper).
type Group interface {
	// Name identifies the group, e.g. "P-256" or "modp-2048".
	Name() string
	// Order returns the prime order q of the group.
	Order() *big.Int
	// Generator returns the standard base point/element g.
	Generator() Element
	// Identity returns the neutral element.
	Identity() Element

	// Add returns a+b (elliptic notation; multiplication for mod-p groups).
	Add(a, b Element) Element
	// Neg returns the inverse of a.
	Neg(a Element) Element
	// ScalarMult returns k*a.
	ScalarMult(a Element, k *big.Int) Element
	// BaseMult returns k*g, typically faster than ScalarMult(Generator(), k).
	BaseMult(k *big.Int) Element
	// Equal reports whether a and b are the same element.
	Equal(a, b Element) bool
	// IsIdentity reports whether a is the neutral element.
	IsIdentity(a Element) bool

	// Encode serializes an element to a canonical fixed-length form.
	Encode(a Element) []byte
	// Decode parses an element encoded by Encode, validating membership.
	Decode(data []byte) (Element, error)
	// ElementLen returns the length in bytes of Encode's output.
	ElementLen() int

	// RandomScalar returns a uniform scalar in [1, q-1].
	RandomScalar(r io.Reader) (*big.Int, error)
	// RandomElement returns a uniform non-identity element.
	RandomElement(r io.Reader) (Element, error)

	// Embed maps a message of at most EmbedLimit bytes into an element
	// such that Extract recovers it. Embedding is randomized
	// (try-and-increment) and may consult r for padding.
	Embed(msg []byte, r io.Reader) (Element, error)
	// Extract recovers a message embedded by Embed.
	Extract(a Element) ([]byte, error)
	// EmbedLimit returns the maximum message length Embed accepts.
	EmbedLimit() int
}

// Errors shared by group implementations.
var (
	ErrBadElement   = errors.New("crypto: malformed or out-of-group element")
	ErrEmbedTooLong = errors.New("crypto: message too long to embed")
	ErrNotEmbedded  = errors.New("crypto: element does not carry an embedded message")
)

// randScalar returns a uniform scalar in [1, q-1] using rejection sampling.
func randScalar(r io.Reader, q *big.Int) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		k, err := rand.Int(r, q)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}

// KeyPair is a group keypair: Public = Private * g. It serves both as a
// long-term node identity (for Schnorr signatures and DH shared secrets)
// and as a pseudonym slot key.
type KeyPair struct {
	Group   Group
	Private *big.Int
	Public  Element
}

// GenerateKeyPair creates a fresh keypair in g. If r is nil, crypto/rand
// is used.
func GenerateKeyPair(g Group, r io.Reader) (*KeyPair, error) {
	priv, err := g.RandomScalar(r)
	if err != nil {
		return nil, err
	}
	return &KeyPair{Group: g, Private: priv, Public: g.BaseMult(priv)}, nil
}

// PublicOnly wraps a bare public element as a KeyPair with no private part.
func PublicOnly(g Group, pub Element) *KeyPair {
	return &KeyPair{Group: g, Public: pub}
}

// SharedSecret computes the Diffie–Hellman shared point priv * peerPub.
// Both directions of a client/server pair derive the same point, which
// seeds their pairwise PRNG streams (§3.4). The returned element must be
// hashed (see SecretSeed) before use as key material.
func (kp *KeyPair) SharedSecret(peer Element) (Element, error) {
	if kp.Private == nil {
		return nil, errors.New("crypto: shared secret requires a private key")
	}
	if kp.Group.IsIdentity(peer) {
		return nil, ErrBadElement
	}
	return kp.Group.ScalarMult(peer, kp.Private), nil
}

// SecretSeed hashes a DH shared point into a 32-byte seed bound to the
// group and both parties' public keys, preventing cross-context reuse.
func SecretSeed(g Group, shared, pubA, pubB Element) []byte {
	// Order the public keys canonically so both sides derive the same seed.
	ea, eb := g.Encode(pubA), g.Encode(pubB)
	if compareBytes(ea, eb) > 0 {
		ea, eb = eb, ea
	}
	return Hash("dissent/shared-seed", []byte(g.Name()), g.Encode(shared), ea, eb)
}

func compareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
