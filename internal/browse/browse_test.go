package browse

import (
	"testing"
	"time"

	"dissent/internal/simnet"
)

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(Alexa2012())
	b := GenerateCorpus(Alexa2012())
	if len(a) != 100 {
		t.Fatalf("corpus size %d, want 100", len(a))
	}
	for i := range a {
		if a[i].HTMLSize != b[i].HTMLSize || len(a[i].Assets) != len(b[i].Assets) {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestCorpusShape(t *testing.T) {
	pages := GenerateCorpus(Alexa2012())
	var totalBytes, totalAssets int
	p := Alexa2012()
	for _, pg := range pages {
		if len(pg.Assets) < p.AssetsMin || len(pg.Assets) > p.AssetsMax {
			t.Fatalf("page %s has %d assets", pg.Name, len(pg.Assets))
		}
		if pg.OriginRTT < p.RTTMin || pg.OriginRTT > p.RTTMax {
			t.Fatalf("page %s RTT %v out of range", pg.Name, pg.OriginRTT)
		}
		totalBytes += pg.TotalBytes()
		totalAssets += len(pg.Assets)
	}
	avg := totalBytes / len(pages)
	// 2012-era average page weight: roughly 0.3–2.5 MB.
	if avg < 300<<10 || avg > 2500<<10 {
		t.Errorf("average page weight %d bytes implausible for 2012", avg)
	}
}

func TestDirectFetcherTiming(t *testing.T) {
	net := simnet.New(time.Unix(0, 0))
	f := NewDirectFetcher(simnet.Link{Latency: 10 * time.Millisecond, Bandwidth: simnet.Mbps(24)}, simnet.Mbps(2))
	var at time.Time
	f.Fetch(net, 400, 250_000, 100*time.Millisecond, func(t2 time.Time) { at = t2 })
	net.Run(0)
	elapsed := at.Sub(time.Unix(0, 0))
	// Floor: 2x10ms access latency + 100ms origin RTT + 250k/2Mbps = 1s.
	if elapsed < 1100*time.Millisecond {
		t.Errorf("fetch %v below floor", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("fetch %v implausibly slow", elapsed)
	}
}

func TestDownloadPageCompletesAllAssets(t *testing.T) {
	net := simnet.New(time.Unix(0, 0))
	f := NewDirectFetcher(simnet.Link{Latency: 5 * time.Millisecond, Bandwidth: simnet.Mbps(24)}, simnet.Mbps(4))
	page := Page{
		Name:      "test",
		HTMLSize:  40 << 10,
		Assets:    []Asset{{10 << 10}, {20 << 10}, {30 << 10}, {5 << 10}, {50 << 10}, {15 << 10}, {8 << 10}},
		OriginRTT: 50 * time.Millisecond,
	}
	var at time.Time
	DownloadPage(net, f, page, 3, func(t2 time.Time) { at = t2 })
	net.Run(0)
	if at.IsZero() {
		t.Fatal("download never completed")
	}
	// Floor: at least HTML fetch + ceil(7/3) asset waves of origin RTT.
	floor := 3 * (50 * time.Millisecond)
	if at.Sub(time.Unix(0, 0)) < floor {
		t.Errorf("download %v below RTT floor %v", at.Sub(time.Unix(0, 0)), floor)
	}
}

func TestDownloadPageNoAssets(t *testing.T) {
	net := simnet.New(time.Unix(0, 0))
	f := NewDirectFetcher(simnet.Link{Latency: time.Millisecond, Bandwidth: simnet.Mbps(24)}, 0)
	page := Page{Name: "bare", HTMLSize: 1024, OriginRTT: 10 * time.Millisecond}
	done := false
	DownloadPage(net, f, page, 6, func(time.Time) { done = true })
	net.Run(0)
	if !done {
		t.Error("asset-free page never completed")
	}
}

func TestParallelismSpeedsDownload(t *testing.T) {
	page := Page{Name: "p", HTMLSize: 10 << 10, OriginRTT: 80 * time.Millisecond}
	for i := 0; i < 24; i++ {
		page.Assets = append(page.Assets, Asset{Size: 8 << 10})
	}
	run := func(par int) time.Duration {
		net := simnet.New(time.Unix(0, 0))
		f := NewDirectFetcher(simnet.Link{Latency: 5 * time.Millisecond, Bandwidth: simnet.Mbps(100)}, simnet.Mbps(50))
		var at time.Time
		DownloadPage(net, f, page, par, func(t2 time.Time) { at = t2 })
		net.Run(0)
		return at.Sub(time.Unix(0, 0))
	}
	if run(6) >= run(1) {
		t.Error("parallel download not faster than serial")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	for _, v := range []int{5, 1, 3, 2, 4} {
		s.Add(time.Duration(v) * time.Second)
	}
	if s.Mean() != 3*time.Second {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Percentile(50) != 3*time.Second {
		t.Errorf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(100) != 5*time.Second {
		t.Errorf("p100 = %v", s.Percentile(100))
	}
	if s.Percentile(1) != time.Second {
		t.Errorf("p1 = %v", s.Percentile(1))
	}
	var empty Stats
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Error("empty stats should be zero")
	}
}
