// Package browse models the web-browsing workload of the paper's §5.4:
// an Alexa-Top-100-like corpus of index pages (HTML plus dependent
// assets, with 2012-era page weights) and a fetch engine that downloads
// a page over an abstract transport — direct, through the relay
// baseline, through a Dissent group, or through their composition —
// with bounded request parallelism like a contemporary browser.
package browse

import (
	"math"
	"math/rand"
	"time"

	"dissent/internal/simnet"
)

// Asset is one dependent resource of a page.
type Asset struct {
	Size int // bytes
}

// Page is one synthetic "index page": the HTML document plus the
// assets discovered by parsing it.
type Page struct {
	Name     string
	HTMLSize int
	Assets   []Asset
	// OriginRTT is the round-trip latency to this site's origin from
	// the vantage network's exit point.
	OriginRTT time.Duration
}

// TotalBytes returns the page's full transfer size.
func (p *Page) TotalBytes() int {
	n := p.HTMLSize
	for _, a := range p.Assets {
		n += a.Size
	}
	return n
}

// CorpusParams shape the synthetic corpus.
type CorpusParams struct {
	Pages int
	// HTMLMedian/AssetMedian are log-normal medians in bytes.
	HTMLMedian  float64
	HTMLSigma   float64
	AssetMedian float64
	AssetSigma  float64
	// AssetsMin/Max bound the per-page asset count.
	AssetsMin, AssetsMax int
	// RTTMin/Max bound origin round-trip latencies.
	RTTMin, RTTMax time.Duration
	Seed           int64
}

// Alexa2012 returns parameters matching published 2012 page-weight
// statistics for popular index pages: ~1 MB total, dozens of assets of
// ~10–30 KB, wide-area origins.
func Alexa2012() CorpusParams {
	return CorpusParams{
		Pages:       100,
		HTMLMedian:  45 << 10,
		HTMLSigma:   0.7,
		AssetMedian: 14 << 10,
		AssetSigma:  1.0,
		AssetsMin:   15,
		AssetsMax:   90,
		RTTMin:      30 * time.Millisecond,
		RTTMax:      200 * time.Millisecond,
		Seed:        2012,
	}
}

// GenerateCorpus draws a deterministic page corpus.
func GenerateCorpus(p CorpusParams) []Page {
	rng := rand.New(rand.NewSource(p.Seed))
	logn := func(median, sigma float64) int {
		v := median * math.Exp(sigma*rng.NormFloat64())
		if v < 256 {
			v = 256
		}
		return int(v)
	}
	pages := make([]Page, p.Pages)
	for i := range pages {
		nAssets := p.AssetsMin
		if p.AssetsMax > p.AssetsMin {
			nAssets += rng.Intn(p.AssetsMax - p.AssetsMin + 1)
		}
		assets := make([]Asset, nAssets)
		for j := range assets {
			assets[j] = Asset{Size: logn(p.AssetMedian, p.AssetSigma)}
		}
		rttSpan := p.RTTMax - p.RTTMin
		pages[i] = Page{
			Name:      pageName(i),
			HTMLSize:  logn(p.HTMLMedian, p.HTMLSigma),
			Assets:    assets,
			OriginRTT: p.RTTMin + time.Duration(rng.Int63n(int64(rttSpan)+1)),
		}
	}
	return pages
}

func pageName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return "site-" + string(letters[i%26]) + string(letters[(i/26)%26])
}

// Fetcher abstracts "issue one HTTP request of reqLen bytes, receive
// respLen bytes, call done at completion" over some anonymizing (or
// direct) transport. Implementations schedule their own events on the
// shared network.
type Fetcher interface {
	Fetch(net *simnet.Network, reqLen, respLen int, originRTT time.Duration, done func(at time.Time))
}

// DownloadPage fetches the HTML, then the assets with the given
// parallelism (browsers of the era used ~6 connections), and calls
// done with the completion time of the last asset.
func DownloadPage(net *simnet.Network, f Fetcher, page Page, parallel int, done func(at time.Time)) {
	DownloadPageProgress(net, f, page, parallel, nil, done)
}

// DownloadPageProgress is DownloadPage with a per-resource progress
// callback: onChunk fires as each resource (HTML, then every asset)
// finishes, with its byte count. The Dissent browsing harness uses
// this to stream fetched bytes into the anonymity channel as they
// arrive at the exit node.
func DownloadPageProgress(net *simnet.Network, f Fetcher, page Page, parallel int, onChunk func(at time.Time, bytes int), done func(at time.Time)) {
	if parallel <= 0 {
		parallel = 6
	}
	const reqLen = 400 // typical GET with headers
	f.Fetch(net, reqLen, page.HTMLSize, page.OriginRTT, func(at time.Time) {
		if onChunk != nil {
			onChunk(at, page.HTMLSize)
		}
		// HTML parsed; fetch assets with a bounded worker pool.
		remaining := len(page.Assets)
		if remaining == 0 {
			done(at)
			return
		}
		var last time.Time
		next := 0
		var launch func(now time.Time)
		finish := func(size int) func(time.Time) {
			return func(at2 time.Time) {
				if onChunk != nil {
					onChunk(at2, size)
				}
				if at2.After(last) {
					last = at2
				}
				remaining--
				if remaining == 0 {
					done(last)
					return
				}
				if next < len(page.Assets) {
					launch(at2)
				}
			}
		}
		launch = func(now time.Time) {
			a := page.Assets[next]
			next++
			net.Schedule(now, func(time.Time) {
				f.Fetch(net, reqLen, a.Size, page.OriginRTT, finish(a.Size))
			})
		}
		for k := 0; k < parallel && next < len(page.Assets); k++ {
			launch(at)
		}
	})
}

// DirectFetcher models an un-anonymized client on an access link: one
// origin RTT plus transfer at the effective per-connection bandwidth.
type DirectFetcher struct {
	// Access is the client's access link.
	Access simnet.Link
	// PerConn caps a single connection's effective throughput
	// (TCP-of-the-era over a WAN path), in bytes/sec.
	PerConn float64
	uplink  simnet.Uplink
}

// NewDirectFetcher builds a direct fetcher over an access link.
func NewDirectFetcher(access simnet.Link, perConn float64) *DirectFetcher {
	return &DirectFetcher{Access: access, PerConn: perConn,
		uplink: simnet.Uplink{Bandwidth: access.Bandwidth}}
}

// Fetch implements Fetcher.
func (d *DirectFetcher) Fetch(net *simnet.Network, reqLen, respLen int, originRTT time.Duration, done func(at time.Time)) {
	t := net.Now()
	t = d.uplink.Reserve(t, reqLen)
	t = t.Add(d.Access.Latency).Add(originRTT)
	// Response constrained by both the share of the access link and the
	// per-connection ceiling.
	bw := d.Access.Bandwidth
	if d.PerConn > 0 && (bw <= 0 || d.PerConn < bw) {
		bw = d.PerConn
	}
	resp := simnet.Link{Bandwidth: bw}
	t = t.Add(resp.TransferTime(respLen)).Add(d.Access.Latency)
	net.Schedule(t, done)
}

// Stats summarizes a set of download times.
type Stats struct {
	Times []time.Duration
}

// Add records one sample.
func (s *Stats) Add(d time.Duration) { s.Times = append(s.Times, d) }

// Mean returns the average.
func (s *Stats) Mean() time.Duration {
	if len(s.Times) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.Times {
		sum += d
	}
	return sum / time.Duration(len(s.Times))
}

// Percentile returns the p-th percentile (0–100) by nearest rank.
func (s *Stats) Percentile(p float64) time.Duration {
	if len(s.Times) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Times...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
