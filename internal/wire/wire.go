// Package wire provides the shared bounds-checked binary codec
// primitives used by every protocol payload: a length-prefixed,
// big-endian format in which signatures cover a canonical byte string.
//
// The Reader folds together the two readers that previously lived on
// opposite sides of the core→group import edge (internal/core's decBuf
// and internal/group's rosterDec): one implementation, so the message
// framing and the certified roster framing can never drift apart, and
// every decode path gets the same hostile-input hardening (truncation
// checks before any slice, list-length sanity bounds before any
// allocation).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports an input that ended before a declared field.
var ErrTruncated = errors.New("wire: truncated input")

// Reader is a bounds-checked sequential reader over one wire payload.
// Methods consume from B; every read checks the remaining length first,
// so hostile inputs can truncate anywhere without panicking a decoder.
type Reader struct {
	B []byte
}

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	if len(r.B) < 1 {
		return 0, ErrTruncated
	}
	v := r.B[0]
	r.B = r.B[1:]
	return v, nil
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() (uint32, error) {
	if len(r.B) < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.B)
	r.B = r.B[4:]
	return v, nil
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() (uint64, error) {
	if len(r.B) < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.B)
	r.B = r.B[8:]
	return v, nil
}

// Raw reads exactly n unprefixed bytes (fixed-width fields: node IDs,
// digests). The returned slice aliases the input with a clipped
// capacity, so appends by the caller cannot scribble past it.
func (r *Reader) Raw(n int) ([]byte, error) {
	if n < 0 || len(r.B) < n {
		return nil, ErrTruncated
	}
	v := r.B[:n:n]
	r.B = r.B[n:]
	return v, nil
}

// Bytes reads a u32-length-prefixed byte string. The result aliases
// the input with a clipped capacity.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.B)) < n {
		return nil, ErrTruncated
	}
	v := r.B[:n:n]
	r.B = r.B[n:]
	return v, nil
}

// Count reads a u32 list length and rejects values beyond max or the
// remaining input length — the guard that keeps a hostile length word
// from driving a huge allocation before per-element reads fail.
func (r *Reader) Count(max int) (int, error) {
	n, err := r.U32()
	if err != nil {
		return 0, err
	}
	if uint64(n) > uint64(max) || uint64(n) > uint64(len(r.B)) {
		return 0, fmt.Errorf("wire: list length %d out of range", n)
	}
	return int(n), nil
}

// ByteSlices reads a u32-count-prefixed list of length-prefixed byte
// strings.
func (r *Reader) ByteSlices() ([][]byte, error) {
	n, err := r.Count(len(r.B))
	if err != nil {
		return nil, err
	}
	out := make([][]byte, n)
	for i := range out {
		if out[i], err = r.Bytes(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Int32s reads a u32-count-prefixed list of big-endian int32s.
func (r *Reader) Int32s() ([]int32, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*4 > uint64(len(r.B)) {
		return nil, ErrTruncated
	}
	out := make([]int32, n)
	for i := range out {
		v, err := r.U32()
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}

// Done verifies the payload was fully consumed: trailing bytes mean a
// malformed (or maliciously extended) message.
func (r *Reader) Done() error {
	if len(r.B) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.B))
	}
	return nil
}

// Writer is the matching append-only encoder.
type Writer struct {
	B []byte
}

// U8 appends one byte.
func (w *Writer) U8(v byte) { w.B = append(w.B, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.B = binary.BigEndian.AppendUint32(w.B, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.B = binary.BigEndian.AppendUint64(w.B, v) }

// Bytes appends a u32-length-prefixed byte string.
func (w *Writer) Bytes(v []byte) {
	w.U32(uint32(len(v)))
	w.B = append(w.B, v...)
}

// ByteSlices appends a u32-count-prefixed list of length-prefixed byte
// strings.
func (w *Writer) ByteSlices(v [][]byte) {
	w.U32(uint32(len(v)))
	for _, s := range v {
		w.Bytes(s)
	}
}

// Int32s appends a u32-count-prefixed list of big-endian int32s.
func (w *Writer) Int32s(v []int32) {
	w.U32(uint32(len(v)))
	for _, s := range v {
		w.U32(uint32(s))
	}
}

// AppendBytes appends a u32-length-prefixed byte string to b — the
// free-function form used by codecs that thread a plain []byte.
func AppendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}
