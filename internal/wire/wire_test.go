package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U32(0xDEADBEEF)
	w.U64(1 << 40)
	w.Bytes([]byte("payload"))
	w.ByteSlices([][]byte{{1}, {}, {2, 3}})
	w.Int32s([]int32{-1, 0, 42})

	r := Reader{B: w.B}
	if v, err := r.U8(); err != nil || v != 7 {
		t.Fatalf("U8 = %d, %v", v, err)
	}
	if v, err := r.U32(); err != nil || v != 0xDEADBEEF {
		t.Fatalf("U32 = %x, %v", v, err)
	}
	if v, err := r.U64(); err != nil || v != 1<<40 {
		t.Fatalf("U64 = %d, %v", v, err)
	}
	if v, err := r.Bytes(); err != nil || string(v) != "payload" {
		t.Fatalf("Bytes = %q, %v", v, err)
	}
	bs, err := r.ByteSlices()
	if err != nil || len(bs) != 3 || !bytes.Equal(bs[2], []byte{2, 3}) {
		t.Fatalf("ByteSlices = %v, %v", bs, err)
	}
	is, err := r.Int32s()
	if err != nil || len(is) != 3 || is[0] != -1 || is[2] != 42 {
		t.Fatalf("Int32s = %v, %v", is, err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTruncationAtEveryPrefix(t *testing.T) {
	var w Writer
	w.U64(9)
	w.Bytes([]byte("abcdef"))
	w.ByteSlices([][]byte{{1, 2}, {3}})
	w.Int32s([]int32{5, 6})
	full := w.B

	decode := func(b []byte) error {
		r := Reader{B: b}
		if _, err := r.U64(); err != nil {
			return err
		}
		if _, err := r.Bytes(); err != nil {
			return err
		}
		if _, err := r.ByteSlices(); err != nil {
			return err
		}
		if _, err := r.Int32s(); err != nil {
			return err
		}
		return r.Done()
	}
	if err := decode(full); err != nil {
		t.Fatalf("full payload rejected: %v", err)
	}
	for cut := 0; cut < len(full); cut++ {
		if decode(full[:cut]) == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if decode(append(append([]byte(nil), full...), 0)) == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestHostileLengthWords(t *testing.T) {
	// A huge declared length must fail cleanly, without allocating.
	r := Reader{B: []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}}
	if _, err := r.Bytes(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile Bytes length: %v", err)
	}
	r = Reader{B: []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}}
	if _, err := r.ByteSlices(); err == nil {
		t.Fatal("hostile ByteSlices length accepted")
	}
	r = Reader{B: []byte{0x00, 0x00, 0x00, 0x08, 1, 2, 3}}
	if _, err := r.Count(4); err == nil {
		t.Fatal("count beyond max accepted")
	}
}

func TestRawClipsCapacity(t *testing.T) {
	r := Reader{B: []byte{1, 2, 3, 4, 5}}
	v, err := r.Raw(2)
	if err != nil || len(v) != 2 {
		t.Fatalf("Raw: %v, %v", v, err)
	}
	if cap(v) != 2 {
		t.Fatalf("Raw capacity %d leaks past the field", cap(v))
	}
	if _, err := r.Raw(4); !errors.Is(err, ErrTruncated) {
		t.Fatalf("over-long Raw: %v", err)
	}
}

func TestByteSlicesProperty(t *testing.T) {
	f := func(in [][]byte) bool {
		var w Writer
		w.ByteSlices(in)
		r := Reader{B: w.B}
		out, err := r.ByteSlices()
		if err != nil || r.Done() != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !bytes.Equal(out[i], in[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
