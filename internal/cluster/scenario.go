// Package cluster is the scenario-orchestration subsystem: it runs
// whole Dissent deployments — N anytrust servers and M clients over an
// in-process SimNet or as separate OS processes on real loopback TCP —
// through declarative scenarios combining a workload (microblog
// fan-out, SOCKS web browsing, bulk filesharing, churn storms) with a
// timed fault schedule (server partitions, link degradation, process
// kills), and distills each run into one BENCH_<scenario>.json
// benchmark report in the repository's perf-trajectory schema.
//
// The Scenario type is pure policy: what topology, what traffic, what
// goes wrong when. The orchestrator (Run) is pure mechanism: it
// provisions keys and group material through dissentcfg, deploys the
// topology, supervises member lifecycles through the SDK, scrapes
// every server's /metrics.json and /debug/rounds during the run, and
// reduces the samples to a report. cmd/dissent-cluster is the CLI.
package cluster

import (
	"fmt"
	"time"
)

// Mode selects the deployment fabric.
type Mode string

// Deployment modes.
const (
	// ModeSim runs every member in-process over one SimNet hub. Link
	// faults (partitions, degradation) are available; process kills are
	// not.
	ModeSim Mode = "sim"
	// ModeTCP runs each server as a separate OS process over real
	// loopback TCP, with clients in the driver process. Process kills
	// are available; link faults are not (loopback has no hub).
	ModeTCP Mode = "tcp"
)

// Topology sizes the group and its protocol policy.
type Topology struct {
	// Servers and Clients count the members.
	Servers, Clients int
	// MessageGroup names the shuffle group ("" = modp-512-test, the
	// test-grade group every scenario uses by default — scenarios
	// measure systems behavior, not bignum throughput).
	MessageGroup string
	// WindowMin floors the submission window (0 = 15ms).
	WindowMin time.Duration
	// HardTimeout bounds a stalled round's collection window (0 = 30s).
	// Rounds stalled in the server-server phases recover on their own:
	// servers retransmit the round's phase messages on a WindowMin-scaled
	// timer, so a healed partition resumes rounds within a few periods.
	HardTimeout time.Duration
	// EpochRounds sets BeaconEpochRounds: 0 disables the beacon (slots
	// never rotate — required for long-lived SOCKS flows), nonzero
	// enables epochs and therefore churn.
	EpochRounds int
	// OpenLen sets the open slot length in bytes (0 = 256).
	OpenLen int
	// PipelineDepth sets every member's round pipeline depth (0 or 1 =
	// serial rounds; 2 overlaps round r+1's submission window with
	// round r's combine/certify — see dissent.WithPipelineDepth).
	PipelineDepth int
	// DurableStores gives each server process a durable state store
	// file (tcp mode), so a FaultKillServer restart resumes the live
	// session from its snapshot instead of stalling the group.
	DurableStores bool
}

// WorkloadKind names a traffic driver.
type WorkloadKind string

// Workload kinds.
const (
	// WorkloadIdle drives no traffic: rounds still proceed on cover
	// traffic, measuring the protocol floor.
	WorkloadIdle WorkloadKind = "idle"
	// WorkloadMicroblog has a few posters broadcast small payloads on a
	// period while every client counts deliveries (the paper's
	// microblogging application, §4.2).
	WorkloadMicroblog WorkloadKind = "microblog"
	// WorkloadSocksBrowse replays scaled-down web page downloads
	// through the SOCKS entry/exit pair over the anonymous channel (the
	// paper's web-browsing evaluation, Fig. 10).
	WorkloadSocksBrowse WorkloadKind = "socks-browse"
	// WorkloadFileshare bulk-transfers one file from a single sender
	// while an observer measures slot throughput (§4.2 filesharing).
	WorkloadFileshare WorkloadKind = "fileshare"
	// WorkloadChurnStorm mass-expels a set of clients and concurrently
	// rejoins them, repeatedly — epoch-boundary roster machinery under
	// stress.
	WorkloadChurnStorm WorkloadKind = "churn-storm"
)

// Workload configures the traffic driver. Only the fields of the
// selected Kind matter.
type Workload struct {
	Kind WorkloadKind

	// Microblog: Posters clients post PostBytes payloads every
	// PostEvery.
	Posters   int
	PostBytes int
	PostEvery time.Duration

	// SocksBrowse: Browsers clients each fetch Pages corpus pages
	// through the exit (the last client).
	Browsers int
	Pages    int

	// Fileshare: one sender moves FileBytes in ChunkBytes pieces.
	FileBytes  int
	ChunkBytes int

	// ChurnStorm: Victims clients are expelled and rejoined, Storms
	// times over.
	Victims int
	Storms  int

	// ChurnVictims, when nonzero, additionally churns that many clients
	// (from the end of the client list, never workload participants) in
	// the background of ANY workload — traffic under membership churn.
	// Requires Topology.EpochRounds > 0.
	ChurnVictims int
}

// Fault kinds.
const (
	// FaultPartitionServer cuts one server off from every other server
	// for the window: certification needs all servers, so rounds stall
	// until the window heals (sim only).
	FaultPartitionServer = "partition-server"
	// FaultDegradeServer impairs one server's links to all other
	// members with latency/jitter/loss for the window (sim only).
	FaultDegradeServer = "degrade-server"
	// FaultKillServer kills one server process at At and restarts it
	// Duration later (tcp only). With Topology.DurableStores the
	// restarted process resumes the live session from its state-store
	// snapshot — rounds wedge during the outage and recover after the
	// restart. Without durable stores the restarted process cannot
	// rejoin and rounds stay stalled; the fault then measures detection
	// and degradation only.
	FaultKillServer = "kill-server"
)

// Fault is one timed entry of the fault schedule, relative to the
// workload start.
type Fault struct {
	// Kind is one of the Fault* constants.
	Kind string
	// At is when the fault opens, measured from workload start;
	// Duration is how long it lasts (0 = rest of the run).
	At, Duration time.Duration
	// Server indexes the affected server in definition order.
	Server int
	// Client indexes the affected client (FaultByzantineClient).
	Client int
	// Attack names the adversary behavior a byzantine fault arms
	// (internal/adversary kind, e.g. "slot-jam", "corrupt-share").
	Attack string
	// Degradation parameters (FaultDegradeServer).
	Latency, Jitter time.Duration
	DropRate        float64
}

// Scenario is one complete, declarative run description.
type Scenario struct {
	Name        string
	Description string
	Mode        Mode
	Topology    Topology
	Workload    Workload
	Faults      []Fault
	// Warmup bounds setup: provisioning, deployment, and the shuffle
	// until every client's schedule is established (0 = 90s).
	Warmup time.Duration
	// Run is the measured workload window (0 = 30s). Drivers that
	// finish their work list early (socks-browse, fileshare) end the
	// window early.
	Run time.Duration
	// Drain is the settle time between workload end and the final
	// scrape (0 = 2s).
	Drain time.Duration
}

// builtin is the scenario registry, in presentation order.
var builtin = []Scenario{
	{
		Name:        "microblog",
		Description: "3x8 SimNet group; 3 posters broadcast 128B posts; fan-out counted at every client",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 8},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 3, PostBytes: 128, PostEvery: 150 * time.Millisecond},
		Run:         20 * time.Second,
	},
	{
		Name:        "socks-browse",
		Description: "3x6 SimNet group; 2 browsers replay scaled web pages through the SOCKS exit (Fig. 10 shape)",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 6, OpenLen: 1024},
		Workload:    Workload{Kind: WorkloadSocksBrowse, Browsers: 2, Pages: 3},
		Run:         90 * time.Second,
	},
	{
		Name:        "fileshare",
		Description: "3x4 SimNet group; one sender bulk-transfers 256KiB; observer measures slot throughput",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 4, OpenLen: 4096},
		Workload:    Workload{Kind: WorkloadFileshare, FileBytes: 256 << 10, ChunkBytes: 4 << 10},
		Run:         90 * time.Second,
	},
	{
		Name:        "churn-storm",
		Description: "3x8 SimNet group with 4-round epochs; 2 clients mass-expelled and rejoined, twice",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 8, EpochRounds: 4},
		Workload:    Workload{Kind: WorkloadChurnStorm, Victims: 2, Storms: 2},
		Run:         120 * time.Second,
	},
	{
		Name:        "partition-heal",
		Description: "3x8 SimNet microblog run; one server partitioned from its peers for 5s mid-run, then healed",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 8},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 150 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultPartitionServer, Server: 2, At: 8 * time.Second, Duration: 5 * time.Second},
		},
		Run: 25 * time.Second,
	},
	{
		Name:        "partition-heal-pipelined",
		Description: "partition-heal at pipeline depth 2 with 6-round epochs: overlapped rounds must drain at every boundary and resume after the heal",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 8, EpochRounds: 6, PipelineDepth: 2},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 150 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultPartitionServer, Server: 2, At: 8 * time.Second, Duration: 5 * time.Second},
		},
		Run: 25 * time.Second,
	},
	{
		Name:        "kill-restart-tcp",
		Description: "3x6 multi-process TCP group with durable stores; server 1 killed mid-run and restarted 4s later, resuming from its snapshot",
		Mode:        ModeTCP,
		Topology:    Topology{Servers: 3, Clients: 6, EpochRounds: 8, DurableStores: true},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 200 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultKillServer, Server: 1, At: 6 * time.Second, Duration: 4 * time.Second},
		},
		Run: 25 * time.Second,
	},
	{
		Name:        "byzantine-server",
		Description: "3x6 SimNet microblog; server 1 corrupts its DC-net shares for 4s mid-run; time-to-exposure and recovery measured",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 6},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 150 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultByzantineServer, Server: 1, Attack: "corrupt-share", At: 6 * time.Second, Duration: 4 * time.Second},
		},
		Run: 20 * time.Second,
	},
	{
		Name:        "slot-jammer",
		Description: "3x6 SimNet group with 6-round epochs; the last client jams a victim slot from t=4s until the blame path expels it; time-to-expel measured",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 6, EpochRounds: 6},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 150 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultByzantineClient, Client: 5, Attack: "slot-jam", At: 4 * time.Second},
		},
		Run: 30 * time.Second,
	},
	{
		Name:        "equivocator",
		Description: "3x6 SimNet group with 6-round epochs; the last client double-submits conflicting ciphertexts until the misbehavior ledger escalates to certified removal",
		Mode:        ModeSim,
		Topology:    Topology{Servers: 3, Clients: 6, EpochRounds: 6},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 150 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultByzantineClient, Client: 5, Attack: "equivocate", At: 4 * time.Second},
		},
		Run: 30 * time.Second,
	},
	{
		Name:        "microblog-tcp",
		Description: "3x6 multi-process group over loopback TCP; servers are separate OS processes; microblog fan-out",
		Mode:        ModeTCP,
		Topology:    Topology{Servers: 3, Clients: 6},
		Workload:    Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 128, PostEvery: 200 * time.Millisecond},
		Run:         20 * time.Second,
	},
}

// Scenarios returns the built-in scenario list.
func Scenarios() []Scenario {
	out := make([]Scenario, len(builtin))
	copy(out, builtin)
	return out
}

// Lookup finds a built-in scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, sc := range builtin {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("cluster: unknown scenario %q", name)
}

// Quick shrinks a scenario for CI smoke runs: fewer members, shorter
// measured window, smaller work lists. The shape (workload kind, fault
// schedule relative ordering) is preserved.
func (sc Scenario) Quick() Scenario {
	if sc.Topology.Clients > 5 {
		sc.Topology.Clients = 5
	}
	if sc.Run > 15*time.Second {
		sc.Run = 15 * time.Second
	}
	if sc.Workload.Pages > 2 {
		sc.Workload.Pages = 2
	}
	if sc.Workload.Browsers > 1 {
		sc.Workload.Browsers = 1
	}
	if sc.Workload.FileBytes > 64<<10 {
		sc.Workload.FileBytes = 64 << 10
	}
	if sc.Workload.Storms > 1 {
		sc.Workload.Storms = 1
	}
	if sc.Workload.Victims > 1 {
		sc.Workload.Victims = 1
	}
	for i := range sc.Faults {
		if sc.Faults[i].At > 4*time.Second {
			sc.Faults[i].At = 4 * time.Second
		}
		if sc.Faults[i].Duration > 3*time.Second {
			sc.Faults[i].Duration = 3 * time.Second
		}
		// Shrinking the client list must not orphan a byzantine client.
		if sc.Faults[i].Kind == FaultByzantineClient && sc.Faults[i].Client >= sc.Topology.Clients {
			sc.Faults[i].Client = sc.Topology.Clients - 1
		}
	}
	return sc
}

// Validate rejects impossible scenario combinations before any
// provisioning work happens.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("cluster: scenario needs a name")
	}
	if sc.Mode != ModeSim && sc.Mode != ModeTCP {
		return fmt.Errorf("cluster: scenario %s: unknown mode %q", sc.Name, sc.Mode)
	}
	t := sc.Topology
	if t.Servers < 1 || t.Clients < 1 {
		return fmt.Errorf("cluster: scenario %s: need at least 1 server and 1 client", sc.Name)
	}
	if t.PipelineDepth < 0 {
		return fmt.Errorf("cluster: scenario %s: negative pipeline depth", sc.Name)
	}
	w := sc.Workload
	switch w.Kind {
	case WorkloadIdle:
	case WorkloadMicroblog:
		if w.Posters < 1 || w.Posters > t.Clients {
			return fmt.Errorf("cluster: scenario %s: %d posters out of range for %d clients", sc.Name, w.Posters, t.Clients)
		}
	case WorkloadSocksBrowse:
		// Browsers plus the exit client must fit the topology.
		if w.Browsers < 1 || w.Browsers+1 > t.Clients {
			return fmt.Errorf("cluster: scenario %s: %d browsers + 1 exit exceed %d clients", sc.Name, w.Browsers, t.Clients)
		}
		if t.EpochRounds > 0 && w.Pages > 0 && t.OpenLen > 512 {
			// Long flows across rotating slots need single-slot frames;
			// callers opting into churned browsing keep pages tiny.
			return fmt.Errorf("cluster: scenario %s: socks-browse with epochs needs OpenLen <= 512 (single-slot frames)", sc.Name)
		}
	case WorkloadFileshare:
		if t.Clients < 2 {
			return fmt.Errorf("cluster: scenario %s: fileshare needs a sender and an observer", sc.Name)
		}
		if w.FileBytes <= 0 {
			return fmt.Errorf("cluster: scenario %s: fileshare needs FileBytes > 0", sc.Name)
		}
	case WorkloadChurnStorm:
		if t.EpochRounds <= 0 {
			return fmt.Errorf("cluster: scenario %s: churn needs EpochRounds > 0 (roster updates land at epoch boundaries)", sc.Name)
		}
		if w.Victims < 1 || w.Victims >= t.Clients {
			return fmt.Errorf("cluster: scenario %s: %d victims out of range for %d clients", sc.Name, w.Victims, t.Clients)
		}
	default:
		return fmt.Errorf("cluster: scenario %s: unknown workload %q", sc.Name, w.Kind)
	}
	if w.ChurnVictims > 0 {
		if t.EpochRounds <= 0 {
			return fmt.Errorf("cluster: scenario %s: background churn needs EpochRounds > 0", sc.Name)
		}
		if w.ChurnVictims+workloadClients(w) > t.Clients {
			return fmt.Errorf("cluster: scenario %s: %d churn victims overlap workload participants", sc.Name, w.ChurnVictims)
		}
	}
	for _, f := range sc.Faults {
		switch f.Kind {
		case FaultPartitionServer, FaultDegradeServer:
			if sc.Mode != ModeSim {
				return fmt.Errorf("cluster: scenario %s: %s needs sim mode (link faults live in the hub)", sc.Name, f.Kind)
			}
		case FaultKillServer:
			if sc.Mode != ModeTCP {
				return fmt.Errorf("cluster: scenario %s: kill-server needs tcp mode (sim members are not processes)", sc.Name)
			}
		case FaultByzantineServer, FaultByzantineClient:
			if sc.Mode != ModeSim {
				return fmt.Errorf("cluster: scenario %s: %s needs sim mode (the scripted member runs in-process)", sc.Name, f.Kind)
			}
			if err := validAttack(f.Attack); err != nil {
				return fmt.Errorf("cluster: scenario %s: %w", sc.Name, err)
			}
			if f.Kind == FaultByzantineClient {
				if f.Client < 0 || f.Client >= t.Clients {
					return fmt.Errorf("cluster: scenario %s: byzantine client %d out of range", sc.Name, f.Client)
				}
				if t.EpochRounds <= 0 {
					return fmt.Errorf("cluster: scenario %s: byzantine-client needs EpochRounds > 0 (certified removal lands at epoch boundaries)", sc.Name)
				}
			}
		default:
			return fmt.Errorf("cluster: scenario %s: unknown fault %q", sc.Name, f.Kind)
		}
		if f.Server < 0 || f.Server >= t.Servers {
			return fmt.Errorf("cluster: scenario %s: fault server %d out of range", sc.Name, f.Server)
		}
	}
	if _, err := buildByzantine(sc); err != nil {
		return err
	}
	return nil
}

// workloadClients counts the clients the workload itself occupies from
// the front (and, for socks-browse, the back) of the client list.
func workloadClients(w Workload) int {
	switch w.Kind {
	case WorkloadMicroblog:
		return w.Posters
	case WorkloadSocksBrowse:
		return w.Browsers + 1 // + exit
	case WorkloadFileshare:
		return 2 // sender + observer
	case WorkloadChurnStorm:
		return w.Victims
	default:
		return 0
	}
}

// warmup/run/drain with defaults applied.
func (sc Scenario) warmup() time.Duration {
	if sc.Warmup > 0 {
		return sc.Warmup
	}
	return 90 * time.Second
}

func (sc Scenario) run() time.Duration {
	if sc.Run > 0 {
		return sc.Run
	}
	return 30 * time.Second
}

func (sc Scenario) drain() time.Duration {
	if sc.Drain > 0 {
		return sc.Drain
	}
	return 2 * time.Second
}
