package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dissent"
	"dissent/internal/adversary"
	"dissent/internal/core"
)

// Byzantine fault kinds: one member runs the honest protocol with a
// scripted adversary behavior (internal/adversary) armed for the fault
// window. Sim mode only — the scripted member must run in-process so
// the interdict hook can be installed at construction.
const (
	// FaultByzantineServer arms an adversary behavior on one server for
	// the window: Fault.Server picks the member, Fault.Attack the
	// behavior (e.g. "corrupt-share", "equivocate", "withhold"). Servers
	// are fixed at genesis, so the measured outcome is exposure — the
	// first blame verdict pinning the server — not removal.
	FaultByzantineServer = "byzantine-server"
	// FaultByzantineClient arms an adversary behavior on one client:
	// Fault.Client picks the member, Fault.Attack the behavior (e.g.
	// "slot-jam", "equivocate"). The measured outcome is the certified
	// expulsion landing at an epoch boundary, so the scenario needs
	// Topology.EpochRounds > 0.
	FaultByzantineClient = "byzantine-client"
)

// validAttack checks an attack name against the adversary catalog.
func validAttack(name string) error {
	_, err := adversary.New(adversary.Behavior{Kind: adversary.Kind(name)})
	return err
}

// byzGate wraps a compiled adversary behind an atomic arm switch: the
// interdict must be installed when the member is constructed, but the
// fault schedule decides when the behavior actually runs. Disarmed,
// every hook is a pass-through.
type byzGate struct {
	armed atomic.Bool
	inner *core.Interdict
}

func newByzGate(f Fault) (*byzGate, error) {
	adv, err := adversary.New(adversary.Behavior{
		Kind: adversary.Kind(f.Attack),
		// Seeded off the schedule position so two byzantine members never
		// make correlated choices; the behavior itself stays unbounded in
		// rounds — the gate's arm window is the schedule.
		Seed: uint64(f.Server)<<32 ^ uint64(f.Client+1),
	})
	if err != nil {
		return nil, err
	}
	return &byzGate{inner: adv.Interdict()}, nil
}

// interdict returns the gated hook set to install on the member.
func (g *byzGate) interdict() *dissent.Interdict {
	return &dissent.Interdict{
		Vector: func(info core.VectorInfo, vec []byte) {
			if g.armed.Load() && g.inner.Vector != nil {
				g.inner.Vector(info, vec)
			}
		},
		Share: func(round uint64, share []byte) {
			if g.armed.Load() && g.inner.Share != nil {
				g.inner.Share(round, share)
			}
		},
		Outbound: func(env core.Envelope, resign func(*core.Message) *core.Message) []core.Envelope {
			if g.armed.Load() && g.inner.Outbound != nil {
				return g.inner.Outbound(env, resign)
			}
			return []core.Envelope{env}
		},
	}
}

// byzPlan is a scenario's compiled byzantine schedule: the gates to
// install per member index, plus the timed entries that arm them.
type byzPlan struct {
	serverGates map[int]*byzGate
	clientGates map[int]*byzGate
	entries     []byzEntry
}

type byzEntry struct {
	fault Fault
	gate  *byzGate
}

// buildByzantine compiles the scenario's byzantine faults; nil when it
// has none.
func buildByzantine(sc Scenario) (*byzPlan, error) {
	plan := &byzPlan{
		serverGates: make(map[int]*byzGate),
		clientGates: make(map[int]*byzGate),
	}
	for _, f := range sc.Faults {
		var gates map[int]*byzGate
		var idx int
		switch f.Kind {
		case FaultByzantineServer:
			gates, idx = plan.serverGates, f.Server
		case FaultByzantineClient:
			gates, idx = plan.clientGates, f.Client
		default:
			continue
		}
		if _, dup := gates[idx]; dup {
			return nil, fmt.Errorf("cluster: scenario %s: two byzantine faults target the same member", sc.Name)
		}
		g, err := newByzGate(f)
		if err != nil {
			return nil, err
		}
		gates[idx] = g
		plan.entries = append(plan.entries, byzEntry{fault: f, gate: g})
	}
	if len(plan.entries) == 0 {
		return nil, nil
	}
	return plan, nil
}

// byzRun watches one deployment's byzantine schedule play out: it arms
// the gates on the fault timetable and records the attribution events
// an honest observer client sees, reducing them to time-to-expel and
// honest goodput under attack.
type byzRun struct {
	scr     *scraper
	targets map[dissent.NodeID]string // byz member ID -> role

	mu           sync.Mutex
	armedAt      time.Time
	verdictAt    time.Time
	verdictRound uint64
	expelledAt   time.Time
	expelRound   uint64
	expelled     bool

	timers []*time.Timer
	stop   chan struct{}
}

// ByzantineOutcome is the distilled result of a byzantine fault
// schedule.
type ByzantineOutcome struct {
	// Expelled reports the terminal attribution: a certified roster
	// removal for a byzantine client, the first exposing blame verdict
	// for a byzantine server (servers are fixed at genesis).
	Expelled bool
	// TimeToExpel / RoundsToExpel measure from the first arming of a
	// byzantine behavior to the terminal attribution, in wall seconds
	// and certified rounds.
	TimeToExpel   time.Duration
	RoundsToExpel uint64
	// TimeToVerdict measures to the first blame verdict naming the
	// member (zero when attribution went through ledger escalation
	// without an accusation shuffle).
	TimeToVerdict time.Duration
	// AttackRounds / AttackRoundsPerSec are the rounds the honest
	// members certified while the attack was live — goodput under
	// attack, taken from arming to expulsion (or to run end when the
	// member survived).
	AttackRounds       uint64
	AttackRoundsPerSec float64
}

// startByzantine installs the fault timetable and the observer watch.
// The observer is the first honest in-process client (clients run in
// the driver process in every mode).
func startByzantine(dep *deployment, plan *byzPlan, scr *scraper) (*byzRun, error) {
	r := &byzRun{
		scr:     scr,
		targets: make(map[dissent.NodeID]string),
		stop:    make(chan struct{}),
	}
	for idx := range plan.serverGates {
		r.targets[dep.grp.Servers[idx].ID] = "server"
	}
	var observer *dissent.Node
	for i, c := range dep.clients {
		if _, byzantine := plan.clientGates[i]; byzantine {
			r.targets[c.ID()] = "client"
			continue
		}
		if observer == nil {
			observer = c
		}
	}
	if observer == nil {
		return nil, fmt.Errorf("cluster: byzantine schedule leaves no honest client to observe attribution")
	}

	// Subscribe before arming anything so no attribution event is lost.
	expelCh := observer.Subscribe(dissent.EventMemberExpelled)
	verdictCh := observer.Subscribe(dissent.EventBlameVerdict)
	go r.watch(expelCh, verdictCh)

	for _, e := range plan.entries {
		e := e
		r.timers = append(r.timers, time.AfterFunc(e.fault.At, func() {
			e.gate.armed.Store(true)
			// Only the wall clock is pinned here: the attribution events
			// race this callback, and a scrape (seconds under load) would
			// let a fast verdict record its timestamp first. The arm-time
			// round number is recovered from the round traces afterwards.
			r.mu.Lock()
			if r.armedAt.IsZero() {
				r.armedAt = time.Now()
			}
			r.mu.Unlock()
		}))
		if e.fault.Duration > 0 {
			r.timers = append(r.timers, time.AfterFunc(e.fault.At+e.fault.Duration, func() {
				e.gate.armed.Store(false)
			}))
		}
	}
	return r, nil
}

// watch reduces the observer's event streams to the first attribution
// timestamps. A blame verdict is terminal for a server target
// (exposure); a client target's terminal event is the certified
// removal, which ledger escalation reaches without any verdict.
func (r *byzRun) watch(expelCh, verdictCh <-chan dissent.Event) {
	for {
		select {
		case <-r.stop:
			return
		case e, ok := <-expelCh:
			if !ok {
				return
			}
			if _, hit := r.targets[e.Culprit]; hit && r.recordTerminal(e) {
				return
			}
		case e, ok := <-verdictCh:
			if !ok {
				return
			}
			role, hit := r.targets[e.Culprit]
			if !hit {
				continue
			}
			r.mu.Lock()
			if r.verdictAt.IsZero() {
				r.verdictAt = time.Now()
				r.verdictRound = e.Round
			}
			r.mu.Unlock()
			if role == "server" && r.recordTerminal(e) {
				return
			}
		}
	}
}

func (r *byzRun) recordTerminal(e dissent.Event) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.expelled {
		return true
	}
	r.expelled = true
	r.expelledAt = time.Now()
	r.expelRound = e.Round
	return true
}

// halt cancels pending arm timers and the watcher.
func (r *byzRun) halt() {
	for _, t := range r.timers {
		t.Stop()
	}
	close(r.stop)
}

// outcome reduces the recorded timestamps after the run's final scrape.
func (r *byzRun) outcome() *ByzantineOutcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	o := &ByzantineOutcome{Expelled: r.expelled}
	if r.armedAt.IsZero() {
		return o
	}
	// The arm-time round number comes from the trace union after the
	// fact: the newest server round that started before the arm
	// timestamp. The arm callback itself must not scrape (seconds under
	// load) or a fast verdict would beat armedAt into the record.
	roundAtArm := r.scr.roundAt(r.armedAt)
	// End of the measured attack span: the terminal attribution, or the
	// run's end for a member that survived (outcome runs after the final
	// scrape, so lastRound is fresh then).
	end, endRound := time.Now(), r.scr.counters().lastRound
	if r.expelled {
		end, endRound = r.expelledAt, r.expelRound
		o.TimeToExpel = r.expelledAt.Sub(r.armedAt)
	}
	if !r.verdictAt.IsZero() {
		o.TimeToVerdict = r.verdictAt.Sub(r.armedAt)
	}
	if endRound > roundAtArm {
		o.AttackRounds = endRound - roundAtArm
	}
	if r.expelled {
		o.RoundsToExpel = o.AttackRounds
	}
	if secs := end.Sub(r.armedAt).Seconds(); secs > 0 {
		o.AttackRoundsPerSec = float64(o.AttackRounds) / secs
	}
	return o
}
