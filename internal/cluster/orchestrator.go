package cluster

import (
	"context"
	"fmt"
	"os"
	"time"

	"dissent/internal/bench"
)

// Options tunes a scenario run's mechanism without touching the
// scenario itself.
type Options struct {
	// Mode overrides the scenario's deployment mode ("" keeps it).
	Mode Mode
	// Dir is where group material and worker files are provisioned
	// ("" = a fresh temp dir, removed afterwards).
	Dir string
	// WorkerExe is the binary re-executed as server workers in tcp
	// mode ("" = os.Executable(); the binary must honor WorkerEnv).
	WorkerExe string
	// Quick shrinks the scenario for smoke runs (Scenario.Quick).
	Quick bool
	// ScrapeInterval is the metrics poll period (0 = 250ms).
	ScrapeInterval time.Duration
	// Logf, when set, narrates run phases (the CLI wires it to -v).
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Result is one scenario run's distilled outcome.
type Result struct {
	Scenario Scenario
	// Rounds certified during the measured window; RoundsPerSec over
	// the window's wall time.
	Rounds       uint64
	RoundsPerSec float64
	// Healthy/Fault percentiles of the servers' per-round totals,
	// classified by whether the round started inside a fault window.
	HealthyP50, HealthyP99 time.Duration
	FaultP50, FaultP99     time.Duration
	// DegradationRatio is FaultP50/HealthyP50 (0 when either side has
	// no samples).
	DegradationRatio float64
	// BytesMoved sums the servers' wire-byte deltas over the window.
	BytesMoved uint64
	// ChurnJoins/ChurnExpels are certified roster transitions during
	// the window; DialFailures counts transport dial failures (tcp).
	ChurnJoins, ChurnExpels uint64
	DialFailures            uint64
	// StateRestores counts live-session resumes from durable state
	// stores during the window (kill-server faults with
	// Topology.DurableStores).
	StateRestores uint64
	// BlameRounds counts accusation shuffles during the window (max
	// across servers); Misbehavior counts attributed protocol offenses
	// by kind over the same span.
	BlameRounds uint64
	Misbehavior map[string]uint64
	// Byzantine is the scripted-adversary outcome: time-to-expel and
	// goodput under attack (nil without byzantine faults).
	Byzantine *ByzantineOutcome
	// WorkloadRows carries the traffic driver's own measurements.
	WorkloadRows []bench.PerfResult
}

// Run executes one scenario end to end: provision, deploy, wait for
// the schedule, drive workload + faults while scraping every server,
// drain, and reduce to a Result.
func Run(ctx context.Context, sc Scenario, opts Options) (*Result, error) {
	if opts.Quick {
		sc = sc.Quick()
	}
	if opts.Mode != "" {
		sc.Mode = opts.Mode
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}

	dir := opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dissent-cluster-"+sc.Name+"-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	opts.logf("provisioning %d servers, %d clients in %s", sc.Topology.Servers, sc.Topology.Clients, dir)
	m, err := provision(dir, sc)
	if err != nil {
		return nil, err
	}
	if m.byz, err = buildByzantine(sc); err != nil {
		return nil, err
	}

	opts.logf("deploying (%s mode)", sc.Mode)
	var dep *deployment
	if sc.Mode == ModeTCP {
		dep, err = deployTCP(ctx, m, opts.WorkerExe)
	} else {
		dep, err = deploySim(ctx, m)
	}
	if err != nil {
		return nil, err
	}
	defer dep.stop()

	opts.logf("waiting for the slot schedule (warmup %v)", sc.warmup())
	if err := dep.waitReady(ctx, sc.warmup()); err != nil {
		return nil, err
	}

	urls := make([]string, len(dep.servers))
	for i, h := range dep.servers {
		urls[i] = h.debugURL
	}
	scr := newScraper(urls, opts.ScrapeInterval)
	scr.scrapeOnce() // baseline before traffic
	base := scr.counters()
	scr.start()

	start := time.Now()
	var faultWindows []window
	for _, f := range sc.Faults {
		w := window{from: start.Add(f.At)}
		if f.Duration > 0 {
			w.to = start.Add(f.At + f.Duration)
		}
		faultWindows = append(faultWindows, w)
	}
	stopFaults := dep.armFaults(sc)
	defer stopFaults()
	var byz *byzRun
	if m.byz != nil {
		byz, err = startByzantine(dep, m.byz, scr)
		if err != nil {
			return nil, err
		}
		defer byz.halt()
	}

	opts.logf("running %s workload for up to %v (%d fault(s) armed)", sc.Workload.Kind, sc.run(), len(sc.Faults))
	wctx, cancel := context.WithTimeout(ctx, sc.run())
	ws, werr := runWorkload(wctx, dep, sc)
	cancel()

	opts.logf("draining %v", sc.drain())
	select {
	case <-time.After(sc.drain()):
	case <-ctx.Done():
	}
	scr.halt()
	// The final scrape (inside halt) closes the measured window: the
	// counter deltas include rounds certified during the drain, so the
	// rate must be taken over the same span.
	elapsed := time.Since(start)
	if werr != nil {
		return nil, werr
	}

	final := scr.counters()
	res := &Result{
		Scenario:      sc,
		Rounds:        final.rounds - base.rounds,
		BytesMoved:    final.bytes - base.bytes,
		ChurnJoins:    final.joins - base.joins,
		ChurnExpels:   final.expels - base.expels,
		DialFailures:  final.dialFailures - base.dialFailures,
		StateRestores: final.restores - base.restores,
		BlameRounds:   final.blame - base.blame,
		Misbehavior:   misbehaviorDelta(base.misbehavior, final.misbehavior),
		WorkloadRows:  ws.rows,
	}
	if byz != nil {
		res.Byzantine = byz.outcome()
		opts.logf("byzantine outcome: expelled=%v time-to-expel=%v rounds-to-expel=%d goodput-under-attack=%.1f rounds/s",
			res.Byzantine.Expelled, res.Byzantine.TimeToExpel.Round(time.Millisecond),
			res.Byzantine.RoundsToExpel, res.Byzantine.AttackRoundsPerSec)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.RoundsPerSec = float64(res.Rounds) / secs
	}
	healthy, faulted := scr.latencies(start, faultWindows)
	res.HealthyP50 = percentile(healthy, 50)
	res.HealthyP99 = percentile(healthy, 99)
	res.FaultP50 = percentile(faulted, 50)
	res.FaultP99 = percentile(faulted, 99)
	if res.HealthyP50 > 0 && res.FaultP50 > 0 {
		res.DegradationRatio = float64(res.FaultP50) / float64(res.HealthyP50)
	}
	opts.logf("done: %d rounds (%.1f/s), %d bytes moved", res.Rounds, res.RoundsPerSec, res.BytesMoved)
	return res, nil
}

// sanity check that rounds actually proceeded, shared by the CLI and
// tests: cover traffic keeps rounds turning over even idle, so a run
// with zero rounds means the deployment never worked.
func (r *Result) check() error {
	if r.Rounds == 0 {
		return fmt.Errorf("cluster: scenario %s certified no rounds", r.Scenario.Name)
	}
	return nil
}
