package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dissent/internal/bench"
)

// TestMain doubles as the tcp-mode worker entry point: the orchestrator
// re-executes the test binary with WorkerEnv set, so the same binary
// that drives a tcp scenario also serves as its server processes.
func TestMain(m *testing.M) {
	if cfg := os.Getenv(WorkerEnv); cfg != "" {
		if err := RunWorkerFile(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "cluster worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// --- scenario policy -------------------------------------------------

func TestBuiltinScenariosValidate(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) < 4 {
		t.Fatalf("only %d built-in scenarios", len(scenarios))
	}
	for _, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s: %v", sc.Name, err)
		}
		if err := sc.Quick().Validate(); err != nil {
			t.Errorf("builtin %s (quick): %v", sc.Name, err)
		}
		got, err := Lookup(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Errorf("Lookup(%s) = %v, %v", sc.Name, got.Name, err)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup of unknown scenario succeeded")
	}
}

func TestQuickShrinks(t *testing.T) {
	sc, err := Lookup("churn-storm")
	if err != nil {
		t.Fatal(err)
	}
	q := sc.Quick()
	if q.Topology.Clients > 5 {
		t.Errorf("quick kept %d clients", q.Topology.Clients)
	}
	if q.Run > 15*time.Second {
		t.Errorf("quick kept run window %v", q.Run)
	}
	if q.Workload.Storms > 1 || q.Workload.Victims > 1 {
		t.Errorf("quick kept storms=%d victims=%d", q.Workload.Storms, q.Workload.Victims)
	}
	if q.Workload.Kind != sc.Workload.Kind {
		t.Errorf("quick changed the workload kind to %s", q.Workload.Kind)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:     "probe",
			Mode:     ModeSim,
			Topology: Topology{Servers: 3, Clients: 6},
			Workload: Workload{Kind: WorkloadIdle},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"unnamed", func(sc *Scenario) { sc.Name = "" }},
		{"bad mode", func(sc *Scenario) { sc.Mode = "udp" }},
		{"no clients", func(sc *Scenario) { sc.Topology.Clients = 0 }},
		{"too many posters", func(sc *Scenario) {
			sc.Workload = Workload{Kind: WorkloadMicroblog, Posters: 7}
		}},
		{"browsers exceed clients", func(sc *Scenario) {
			sc.Workload = Workload{Kind: WorkloadSocksBrowse, Browsers: 6, Pages: 1}
		}},
		{"churned browse with multi-slot frames", func(sc *Scenario) {
			sc.Topology.EpochRounds = 4
			sc.Topology.OpenLen = 1024
			sc.Workload = Workload{Kind: WorkloadSocksBrowse, Browsers: 1, Pages: 1}
		}},
		{"churn without epochs", func(sc *Scenario) {
			sc.Workload = Workload{Kind: WorkloadChurnStorm, Victims: 1, Storms: 1}
		}},
		{"all clients are victims", func(sc *Scenario) {
			sc.Topology.EpochRounds = 4
			sc.Workload = Workload{Kind: WorkloadChurnStorm, Victims: 6, Storms: 1}
		}},
		{"background churn without epochs", func(sc *Scenario) {
			sc.Workload.ChurnVictims = 1
		}},
		{"background churn overlaps workload", func(sc *Scenario) {
			sc.Topology.EpochRounds = 4
			sc.Workload = Workload{Kind: WorkloadMicroblog, Posters: 4, ChurnVictims: 3}
		}},
		{"unknown workload", func(sc *Scenario) { sc.Workload.Kind = "torrent" }},
		{"partition in tcp mode", func(sc *Scenario) {
			sc.Mode = ModeTCP
			sc.Faults = []Fault{{Kind: FaultPartitionServer, Server: 0}}
		}},
		{"kill in sim mode", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: FaultKillServer, Server: 0}}
		}},
		{"fault server out of range", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: FaultPartitionServer, Server: 3}}
		}},
		{"unknown fault", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: "meteor", Server: 0}}
		}},
		{"byzantine in tcp mode", func(sc *Scenario) {
			sc.Mode = ModeTCP
			sc.Topology.EpochRounds = 4
			sc.Faults = []Fault{{Kind: FaultByzantineClient, Client: 1, Attack: "slot-jam"}}
		}},
		{"byzantine unknown attack", func(sc *Scenario) {
			sc.Topology.EpochRounds = 4
			sc.Faults = []Fault{{Kind: FaultByzantineClient, Client: 1, Attack: "ddos"}}
		}},
		{"byzantine client without epochs", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: FaultByzantineClient, Client: 1, Attack: "slot-jam"}}
		}},
		{"byzantine client out of range", func(sc *Scenario) {
			sc.Topology.EpochRounds = 4
			sc.Faults = []Fault{{Kind: FaultByzantineClient, Client: 6, Attack: "slot-jam"}}
		}},
		{"two byzantine faults on one member", func(sc *Scenario) {
			sc.Topology.EpochRounds = 4
			sc.Faults = []Fault{
				{Kind: FaultByzantineClient, Client: 1, Attack: "slot-jam"},
				{Kind: FaultByzantineClient, Client: 1, Attack: "equivocate"},
			}
		}},
	}
	for _, tc := range cases {
		sc := base()
		tc.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, sc)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
}

// --- report schema ---------------------------------------------------

func TestValidateReport(t *testing.T) {
	good := bench.PerfReport{
		GoVersion: "go1.24.0",
		Scenario:  "probe",
		Results: []bench.PerfResult{
			{Name: "rounds-per-sec", Value: 3.5, Unit: "rounds/s"},
			{Name: "bytes-moved", Value: 1024, Unit: "bytes"},
		},
	}
	if err := ValidateReport(good); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}

	bad := good
	bad.Scenario = ""
	if err := ValidateReport(bad); err == nil {
		t.Error("report without scenario accepted")
	}

	bad = good
	bad.Results = []bench.PerfResult{{Name: "rounds-per-sec", Value: 2}}
	if err := ValidateReport(bad); err == nil {
		t.Error("unitless row accepted (would leak into the microbench gate)")
	}

	bad = good
	bad.Results = []bench.PerfResult{{Name: "bytes-moved", Value: 1, Unit: "bytes"}}
	if err := ValidateReport(bad); err == nil {
		t.Error("report without rounds-per-sec accepted")
	}

	bad = good
	bad.Results[0].Value = 0
	if err := ValidateReport(bad); err == nil {
		t.Error("zero rounds-per-sec accepted")
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %v", got)
	}
	samples := []time.Duration{40, 10, 30, 20, 50}
	if got := percentile(samples, 50); got != 30 {
		t.Errorf("p50 = %v, want 30", got)
	}
	if got := percentile(samples, 99); got != 50 {
		t.Errorf("p99 = %v, want 50", got)
	}
	if got := percentile(samples, 0); got != 10 {
		t.Errorf("p0 = %v, want 10", got)
	}
}

// --- end-to-end scenarios --------------------------------------------

// runScenario executes a scenario with test-friendly options and fails
// the test on any error.
func runScenario(t *testing.T, sc Scenario, opts Options) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("cluster scenarios are long; skipped with -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	if opts.ScrapeInterval == 0 {
		opts.ScrapeInterval = 100 * time.Millisecond
	}
	opts.Logf = t.Logf
	res, err := Run(ctx, sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.check(); err != nil {
		t.Fatal(err)
	}
	return res
}

// row finds a workload/report row by name.
func row(t *testing.T, res *Result, name string) bench.PerfResult {
	t.Helper()
	for _, r := range res.Report().Results {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("report lacks the %q row; have %+v", name, res.Report().Results)
	return bench.PerfResult{}
}

func TestScenarioMicroblogSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-microblog",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 4},
		Workload: Workload{Kind: WorkloadMicroblog, Posters: 2, PostBytes: 96, PostEvery: 100 * time.Millisecond},
		Run:      6 * time.Second,
		Drain:    time.Second,
	}
	res := runScenario(t, sc, Options{})
	if res.Rounds == 0 || res.RoundsPerSec <= 0 {
		t.Fatalf("no rounds: %+v", res)
	}
	if sent := row(t, res, "microblog-posts-sent"); sent.Value < 1 {
		t.Errorf("posts sent = %v", sent.Value)
	}
	if ratio := row(t, res, "microblog-fanout-ratio"); ratio.Value <= 0 {
		t.Errorf("fan-out ratio = %v", ratio.Value)
	}
	if res.BytesMoved == 0 {
		t.Error("no wire bytes counted")
	}

	// The emitted report must round-trip through the perf schema.
	dir := t.TempDir()
	path, err := res.WriteReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_test-microblog.json" {
		t.Errorf("unexpected report name %s", path)
	}
	rep, err := bench.ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(rep); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioPartitionHealSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-partition-heal",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 4},
		Workload: Workload{Kind: WorkloadMicroblog, Posters: 1, PostBytes: 96, PostEvery: 100 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultPartitionServer, Server: 2, At: 2 * time.Second, Duration: 2 * time.Second},
		},
		Run:   9 * time.Second,
		Drain: time.Second,
	}
	res := runScenario(t, sc, Options{})
	// Certification needs every server, so rounds must have kept going
	// only because the partition healed: the run still certifies rounds
	// overall, and healthy-latency percentiles exist.
	if res.Rounds == 0 {
		t.Fatal("no rounds certified across the partition window")
	}
	if res.HealthyP50 <= 0 {
		t.Error("no healthy-round latency samples")
	}
}

// TestScenarioPartitionHealPipelinedSim reruns the partition/heal
// scenario with the whole group at pipeline depth 2 and short epochs:
// every epoch boundary forces the two-deep pipeline to drain to depth
// 1 before the beacon rotates, and the healed partition must resume
// overlapped rounds. A drain failure diverges the group (layout
// mismatch → protocol violations → no further certified rounds), so
// rounds certifying across many boundaries is the drain assertion.
func TestScenarioPartitionHealPipelinedSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-partition-heal-pipelined",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 4, EpochRounds: 6, PipelineDepth: 2},
		Workload: Workload{Kind: WorkloadMicroblog, Posters: 1, PostBytes: 96, PostEvery: 100 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultPartitionServer, Server: 2, At: 2 * time.Second, Duration: 2 * time.Second},
		},
		Run:   9 * time.Second,
		Drain: time.Second,
	}
	res := runScenario(t, sc, Options{})
	if res.Rounds == 0 {
		t.Fatal("no rounds certified across the partition window at depth 2")
	}
	// With 6-round epochs the run crosses boundaries both before and
	// after the heal; surviving them plus the partition means the
	// pipeline drained and refilled repeatedly.
	if res.Rounds < 12 {
		t.Errorf("only %d rounds certified — pipeline likely wedged after the heal", res.Rounds)
	}
	if res.HealthyP50 <= 0 {
		t.Error("no healthy-round latency samples")
	}
}

func TestScenarioChurnStormSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-churn-storm",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 6, EpochRounds: 4},
		Workload: Workload{Kind: WorkloadChurnStorm, Victims: 1, Storms: 1},
		Run:      60 * time.Second,
		Drain:    time.Second,
	}
	res := runScenario(t, sc, Options{})
	if storms := row(t, res, "churn-storms-completed"); storms.Value < 1 {
		t.Fatalf("no churn storm completed: %v", storms.Value)
	}
	if res.ChurnExpels < 1 || res.ChurnJoins < 1 {
		t.Errorf("scraped churn counters: joins=%d expels=%d", res.ChurnJoins, res.ChurnExpels)
	}
}

func TestScenarioSocksBrowseSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-socks-browse",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 3, OpenLen: 1024},
		Workload: Workload{Kind: WorkloadSocksBrowse, Browsers: 1, Pages: 2},
		Run:      60 * time.Second,
		Drain:    time.Second,
	}
	res := runScenario(t, sc, Options{})
	if pages := row(t, res, "browse-pages-fetched"); pages.Value != 2 {
		t.Fatalf("pages fetched = %v, want 2", pages.Value)
	}
	if p50 := row(t, res, "browse-page-p50"); p50.Value <= 0 {
		t.Errorf("page p50 = %v", p50.Value)
	}
}

// TestSocksBrowseUnderChurn exercises the SOCKS relay end to end while
// an uninvolved client is repeatedly expelled and rejoined: pages must
// keep landing across epoch rotations and certified roster updates.
func TestSocksBrowseUnderChurn(t *testing.T) {
	sc := Scenario{
		Name:     "test-browse-under-churn",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 5, EpochRounds: 4},
		Workload: Workload{Kind: WorkloadSocksBrowse, Browsers: 1, Pages: 2, ChurnVictims: 1},
		Run:      25 * time.Second,
		Drain:    time.Second,
	}
	res := runScenario(t, sc, Options{})
	if pages := row(t, res, "browse-pages-fetched"); pages.Value != 2 {
		t.Fatalf("pages fetched under churn = %v, want 2", pages.Value)
	}
	if cycles := row(t, res, "background-churn-cycles"); cycles.Value < 1 {
		t.Errorf("background churn cycles = %v, want >= 1", cycles.Value)
	}
}

// TestScenarioByzantineServerSim runs a corrupt-share byzantine server
// through the scenario harness: the blame path must expose the server
// while honest rounds keep certifying, and the report must carry the
// byzantine outcome rows.
func TestScenarioByzantineServerSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-byzantine-server",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 4},
		Workload: Workload{Kind: WorkloadMicroblog, Posters: 1, PostBytes: 96, PostEvery: 100 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultByzantineServer, Server: 1, Attack: "corrupt-share", At: 2 * time.Second, Duration: 3 * time.Second},
		},
		Run:   12 * time.Second,
		Drain: time.Second,
	}
	res := runScenario(t, sc, Options{})
	if res.Byzantine == nil {
		t.Fatal("no byzantine outcome recorded")
	}
	if !res.Byzantine.Expelled {
		t.Fatalf("byzantine server never exposed: %+v (blame=%d misbehavior=%v)",
			res.Byzantine, res.BlameRounds, res.Misbehavior)
	}
	if res.Byzantine.TimeToExpel <= 0 {
		t.Errorf("time-to-exposure = %v", res.Byzantine.TimeToExpel)
	}
	if res.BlameRounds == 0 {
		t.Error("no blame rounds scraped during the attack")
	}
	if res.Rounds == 0 {
		t.Fatal("honest traffic never recovered: no rounds certified")
	}
	if row(t, res, "byzantine-expelled").Value != 1 {
		t.Error("report lacks byzantine-expelled = 1")
	}
	if row(t, res, "time-to-expel-seconds").Value <= 0 {
		t.Error("report lacks a positive time-to-expel-seconds")
	}
}

// TestScenarioSlotJammerSim runs the full client attack arc at cluster
// scale: the last client jams a victim slot, the accusation shuffle
// pins it, and the certified roster removal lands at an epoch boundary
// while rounds keep turning over.
func TestScenarioSlotJammerSim(t *testing.T) {
	sc := Scenario{
		Name:     "test-slot-jammer",
		Mode:     ModeSim,
		Topology: Topology{Servers: 3, Clients: 5, EpochRounds: 4},
		Workload: Workload{Kind: WorkloadMicroblog, Posters: 1, PostBytes: 96, PostEvery: 100 * time.Millisecond},
		Faults: []Fault{
			{Kind: FaultByzantineClient, Client: 4, Attack: "slot-jam", At: 2 * time.Second},
		},
		Run:   25 * time.Second,
		Drain: time.Second,
	}
	res := runScenario(t, sc, Options{})
	if res.Byzantine == nil || !res.Byzantine.Expelled {
		t.Fatalf("slot jammer never expelled: %+v (blame=%d misbehavior=%v expels=%d)",
			res.Byzantine, res.BlameRounds, res.Misbehavior, res.ChurnExpels)
	}
	if res.Byzantine.TimeToExpel <= 0 || res.Byzantine.RoundsToExpel == 0 {
		t.Errorf("time-to-expel = %v / %d rounds", res.Byzantine.TimeToExpel, res.Byzantine.RoundsToExpel)
	}
	if res.Byzantine.AttackRoundsPerSec <= 0 {
		t.Errorf("no honest goodput measured under attack: %+v", res.Byzantine)
	}
	if res.ChurnExpels == 0 {
		t.Error("no certified expulsion scraped")
	}
	if row(t, res, "time-to-expel-rounds").Value <= 0 {
		t.Error("report lacks a positive time-to-expel-rounds")
	}
	if row(t, res, "honest-goodput-under-attack").Value <= 0 {
		t.Error("report lacks honest-goodput-under-attack")
	}
}

func TestScenarioMicroblogTCP(t *testing.T) {
	sc := Scenario{
		Name:     "test-microblog-tcp",
		Mode:     ModeTCP,
		Topology: Topology{Servers: 3, Clients: 4},
		Workload: Workload{Kind: WorkloadMicroblog, Posters: 1, PostBytes: 96, PostEvery: 150 * time.Millisecond},
		Run:      8 * time.Second,
		Drain:    time.Second,
	}
	// WorkerExe defaults to os.Executable() — the test binary, whose
	// TestMain dispatches on WorkerEnv.
	res := runScenario(t, sc, Options{})
	if res.Rounds == 0 {
		t.Fatal("no rounds certified over tcp")
	}
	if sent := row(t, res, "microblog-posts-sent"); sent.Value < 1 {
		t.Errorf("posts sent = %v", sent.Value)
	}
}
