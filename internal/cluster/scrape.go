package cluster

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"dissent"
)

// snapshot is one server's scraped state at an instant.
type snapshot struct {
	ok      bool // scrape succeeded (kill windows make servers vanish)
	metrics dissent.HostMetrics
}

// traceKey dedups round traces across scrapes: the /debug/rounds ring
// re-serves recent rounds every poll.
type traceKey struct {
	url     string
	session string
	role    string
	round   uint64
}

// scrapedTraces mirrors the /debug/rounds payload shape.
type scrapedTraces struct {
	Session string               `json:"session"`
	Group   string               `json:"group"`
	Role    string               `json:"role"`
	Traces  []dissent.RoundTrace `json:"traces"`
}

// scraper polls every server's debug endpoint during a run, keeping
// the latest metrics snapshot per server and the deduped union of all
// round traces it saw.
type scraper struct {
	urls     []string
	interval time.Duration
	client   *http.Client

	mu     sync.Mutex
	latest map[string]snapshot
	traces map[traceKey]dissent.RoundTrace

	stop chan struct{}
	done chan struct{}
}

func newScraper(urls []string, interval time.Duration) *scraper {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &scraper{
		urls:     urls,
		interval: interval,
		client:   &http.Client{Timeout: 2 * time.Second},
		latest:   make(map[string]snapshot),
		traces:   make(map[traceKey]dissent.RoundTrace),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// start launches the poll loop.
func (s *scraper) start() {
	go func() {
		defer close(s.done)
		for {
			s.scrapeOnce()
			select {
			case <-s.stop:
				return
			case <-time.After(s.interval):
			}
		}
	}()
}

// halt stops the loop after one final scrape.
func (s *scraper) halt() {
	close(s.stop)
	<-s.done
	s.scrapeOnce()
}

// scrapeOnce polls every URL; errors mark the snapshot not-ok and are
// otherwise tolerated (a killed server is supposed to vanish).
func (s *scraper) scrapeOnce() {
	for _, url := range s.urls {
		var hm dissent.HostMetrics
		if err := s.getJSON(url+"/metrics.json", &hm); err != nil {
			s.mu.Lock()
			s.latest[url] = snapshot{ok: false}
			s.mu.Unlock()
			continue
		}
		var ts []scrapedTraces
		_ = s.getJSON(url+"/debug/rounds?n=128", &ts)
		s.mu.Lock()
		s.latest[url] = snapshot{ok: true, metrics: hm}
		for _, st := range ts {
			for _, tr := range st.Traces {
				k := traceKey{url: url, session: st.Session, role: st.Role, round: tr.Round}
				s.traces[k] = tr
			}
		}
		s.mu.Unlock()
	}
}

func (s *scraper) getJSON(url string, v any) error {
	resp, err := s.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// counterState aggregates the monotonic counters a delta is taken
// over.
type counterState struct {
	rounds       uint64 // max across servers (all certify the same chain)
	bytes        uint64 // sum of BytesIn+BytesOut across servers
	joins        uint64 // max across servers
	expels       uint64 // max across servers
	dialFailures uint64 // sum across servers (tcp only)
	restores     uint64 // sum across servers (durable-store restarts)
	blame        uint64 // max across servers (all run the same shuffles)
	lastRound    uint64 // max across servers: the newest certified round number
	// misbehavior holds per-kind attribution counts, max across servers
	// (each server attributes the same offender's offenses itself; the
	// max is the most-complete observer, not a double count).
	misbehavior map[string]uint64
}

// counters reduces the latest snapshots.
func (s *scraper) counters() counterState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := counterState{misbehavior: make(map[string]uint64)}
	for _, snap := range s.latest {
		if !snap.ok {
			continue
		}
		hm := snap.metrics
		if hm.RoundsCompleted > st.rounds {
			st.rounds = hm.RoundsCompleted
		}
		st.bytes += hm.BytesIn + hm.BytesOut
		for _, sm := range hm.PerSession {
			if sm.ChurnJoins > st.joins {
				st.joins = sm.ChurnJoins
			}
			if sm.ChurnExpels > st.expels {
				st.expels = sm.ChurnExpels
			}
			if sm.BlameRounds > st.blame {
				st.blame = sm.BlameRounds
			}
			if sm.LastRound > st.lastRound {
				st.lastRound = sm.LastRound
			}
			for kind, n := range sm.Misbehavior {
				if n > st.misbehavior[kind] {
					st.misbehavior[kind] = n
				}
			}
			st.restores += sm.StateRestores
		}
		if hm.Transport != nil {
			st.dialFailures += hm.Transport.DialFailures
		}
	}
	return st
}

// roundAt returns the newest server-role round that had started by t,
// from the deduped trace union. It recovers "what round was the
// cluster on at time t" after the fact, without a synchronous scrape
// on the timing-critical path.
func (s *scraper) roundAt(t time.Time) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var r uint64
	for k, tr := range s.traces {
		if k.role != "server" || tr.Start.After(t) {
			continue
		}
		if tr.Round > r {
			r = tr.Round
		}
	}
	return r
}

// misbehaviorDelta subtracts a baseline's per-kind counts, dropping
// kinds that saw nothing during the window; nil when the window saw no
// misbehavior at all.
func misbehaviorDelta(base, final map[string]uint64) map[string]uint64 {
	var out map[string]uint64
	for kind, n := range final {
		if d := n - base[kind]; d > 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[kind] = d
		}
	}
	return out
}

// window is one absolute fault interval.
type window struct{ from, to time.Time }

func (w window) contains(t time.Time) bool {
	if t.Before(w.from) {
		return false
	}
	return w.to.IsZero() || t.Before(w.to)
}

// overlaps reports whether [from, to) intersects the window.
func (w window) overlaps(from, to time.Time) bool {
	if !to.After(w.from) {
		return false
	}
	return w.to.IsZero() || from.Before(w.to)
}

// latencies splits the scraped server-role round totals observed since
// `since` into healthy samples and samples whose round overlapped a
// fault window. Overlap (not just start-inside) matters: a partition
// stalls the in-flight round, so the degraded sample is a round that
// STARTED healthy and dragged across the window.
func (s *scraper) latencies(since time.Time, faults []window) (healthy, faulted []time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, tr := range s.traces {
		if k.role != "server" || tr.Start.Before(since) || tr.Total <= 0 {
			continue
		}
		inFault := false
		for _, w := range faults {
			if w.overlaps(tr.Start, tr.Start.Add(tr.Total)) {
				inFault = true
				break
			}
		}
		if inFault {
			faulted = append(faulted, tr.Total)
		} else {
			healthy = append(healthy, tr.Total)
		}
	}
	return healthy, faulted
}

// percentile returns the p-th percentile (0-100) of the samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Round to the nearest rank so high percentiles of small samples
	// reach the tail (p99 of 5 samples is the max, not the 4th value).
	idx := int(math.Round(p / 100 * float64(len(sorted)-1)))
	return sorted[idx]
}
