package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"dissent"
	"dissent/dissentcfg"
)

// reservePorts grabs n distinct loopback ports by binding and
// releasing listeners. The usual TOCTOU caveat applies; scenario runs
// are short-lived and local, and a clash surfaces as a deploy error.
func reservePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// workerProc supervises one spawned server process.
type workerProc struct {
	exe     string
	cfgPath string
	logPath string

	mu    sync.Mutex
	cmd   *exec.Cmd
	stdin *os.File // held open; closing it tells the worker to exit
}

func (w *workerProc) start() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, wr, err := os.Pipe()
	if err != nil {
		return err
	}
	logf, err := os.OpenFile(w.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		r.Close()
		wr.Close()
		return err
	}
	cmd := exec.Command(w.exe)
	cmd.Env = append(os.Environ(), WorkerEnv+"="+w.cfgPath)
	cmd.Stdin = r
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		r.Close()
		wr.Close()
		logf.Close()
		return err
	}
	// The child holds its own copy of the read end; the log file is
	// likewise duplicated into the child.
	r.Close()
	logf.Close()
	go cmd.Wait()
	w.cmd, w.stdin = cmd, wr
	return nil
}

// kill terminates the process immediately (the fault path — no
// graceful shutdown).
func (w *workerProc) kill() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cmd == nil || w.cmd.Process == nil {
		return nil
	}
	err := w.cmd.Process.Kill()
	if w.stdin != nil {
		w.stdin.Close()
		w.stdin = nil
	}
	w.cmd = nil
	return err
}

// release asks a live worker to exit cleanly by closing its stdin.
func (w *workerProc) release() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stdin != nil {
		w.stdin.Close()
		w.stdin = nil
	}
	if w.cmd != nil && w.cmd.Process != nil {
		// Belt and braces: don't leave orphans if the worker wedged.
		p := w.cmd.Process
		time.AfterFunc(3*time.Second, func() { p.Kill() })
	}
	w.cmd = nil
}

// deployTCP stands the topology up multi-process: every server is a
// spawned OS process (the orchestrator re-executes workerExe with
// WorkerEnv pointing at a per-server config) listening on real
// loopback TCP; clients run in the driver process, each with its own
// listener, all wired through a rewritten roster.
func deployTCP(ctx context.Context, m *material, workerExe string) (*deployment, error) {
	if workerExe == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		workerExe = exe
	}
	nS, nC := len(m.grp.Servers), len(m.grp.Clients)
	ports, err := reservePorts(2*nS + nC)
	if err != nil {
		return nil, err
	}
	serverPorts, debugPorts, clientPorts := ports[:nS], ports[nS:2*nS], ports[2*nS:]

	// Rewrite the roster with the reserved ports and persist it — the
	// workers load it from disk.
	roster := dissent.Roster{}
	for i, mem := range m.grp.Servers {
		roster[mem.ID] = fmt.Sprintf("127.0.0.1:%d", serverPorts[i])
	}
	for i, mem := range m.grp.Clients {
		roster[mem.ID] = fmt.Sprintf("127.0.0.1:%d", clientPorts[i])
	}
	rosterPath := filepath.Join(m.dir, "roster.json")
	if err := dissentcfg.WriteRoster(rosterPath, roster); err != nil {
		return nil, err
	}

	sid := dissent.GroupSessionID(m.grp)
	dep := &deployment{grp: m.grp, sid: sid}
	var closers []func()
	dep.stop = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	fail := func(err error) (*deployment, error) {
		dep.stop()
		return nil, err
	}

	for i := range m.grp.Servers {
		cfg := WorkerConfig{
			GroupFile:     filepath.Join(m.dir, "group.json"),
			KeyFile:       filepath.Join(m.dir, fmt.Sprintf("server-%d.key", i)),
			RosterFile:    rosterPath,
			Listen:        fmt.Sprintf("127.0.0.1:%d", serverPorts[i]),
			Debug:         fmt.Sprintf("127.0.0.1:%d", debugPorts[i]),
			PipelineDepth: m.pipelineDepth,
		}
		if m.durableStores {
			cfg.StoreFile = filepath.Join(m.dir, fmt.Sprintf("server-%d.kv", i))
		}
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return fail(err)
		}
		cfgPath := filepath.Join(m.dir, fmt.Sprintf("worker-%d.json", i))
		if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
			return fail(err)
		}
		proc := &workerProc{
			exe:     workerExe,
			cfgPath: cfgPath,
			logPath: filepath.Join(m.dir, fmt.Sprintf("worker-%d.log", i)),
		}
		if err := proc.start(); err != nil {
			return fail(fmt.Errorf("cluster: spawn server %d: %w", i, err))
		}
		closers = append(closers, proc.release)
		url := "http://" + cfg.Debug
		dep.servers = append(dep.servers, serverHandle{
			id:       m.grp.Servers[i].ID,
			debugURL: url,
			expel: func(id dissent.NodeID) error {
				return httpExpel(url, sid, id)
			},
			kill:    proc.kill,
			restart: proc.start,
		})
	}

	// Workers are up when their debug endpoints answer.
	for i, h := range dep.servers {
		if err := waitHTTP(ctx, h.debugURL+"/metrics.json", 30*time.Second); err != nil {
			return fail(fmt.Errorf("cluster: server %d never served its debug endpoint: %w", i, err))
		}
	}

	cctx, cancelClients := context.WithCancel(ctx)
	closers = append(closers, cancelClients)
	for i, keys := range m.clientKeys {
		cliOpts := []dissent.Option{
			dissent.WithListenAddr(fmt.Sprintf("127.0.0.1:%d", clientPorts[i])),
			dissent.WithRoster(roster),
			dissent.WithMessageBuffer(4096),
			dissent.WithLogger(quietLogger()),
			dissent.WithErrorHandler(func(error) {}),
		}
		if m.pipelineDepth > 1 {
			cliOpts = append(cliOpts, dissent.WithPipelineDepth(m.pipelineDepth))
		}
		node, err := dissent.NewClient(m.grp, keys, cliOpts...)
		if err != nil {
			return fail(fmt.Errorf("cluster: client %d: %w", i, err))
		}
		go node.Run(cctx)
		dep.clients = append(dep.clients, node)
	}
	return dep, nil
}

// httpExpel drives a worker's /admin/expel endpoint.
func httpExpel(baseURL string, sid dissent.SessionID, id dissent.NodeID) error {
	url := fmt.Sprintf("%s/admin/expel?session=%s&id=%s", baseURL, sid, id)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: expel via %s: HTTP %d", baseURL, resp.StatusCode)
	}
	return nil
}

// waitHTTP polls a URL until it answers 200 or the deadline passes.
func waitHTTP(ctx context.Context, url string, d time.Duration) error {
	deadline := time.Now().Add(d)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("cluster: %s not ready after %v", url, d)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
