package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"dissent/internal/bench"
)

// Report renders the result in the repository's BENCH_*.json perf
// schema. Every row carries a Unit, so the bench regression gate
// treats scenario reports as informational and never compares them
// against microbenchmark trajectories.
func (r *Result) Report() bench.PerfReport {
	rep := bench.PerfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scenario:   r.Scenario.Name,
		Note:       fmt.Sprintf("cluster scenario, mode=%s, %dx%d", r.Scenario.Mode, r.Scenario.Topology.Servers, r.Scenario.Topology.Clients),
	}
	add := func(name string, value float64, unit string) {
		rep.Results = append(rep.Results, bench.PerfResult{Name: name, Value: value, Unit: unit})
	}
	add("rounds-completed", float64(r.Rounds), "rounds")
	add("rounds-per-sec", r.RoundsPerSec, "rounds/s")
	if r.HealthyP50 > 0 {
		add("round-latency-healthy-p50", float64(r.HealthyP50.Nanoseconds()), "ns")
		add("round-latency-healthy-p99", float64(r.HealthyP99.Nanoseconds()), "ns")
	}
	if r.FaultP50 > 0 {
		add("round-latency-fault-p50", float64(r.FaultP50.Nanoseconds()), "ns")
		add("round-latency-fault-p99", float64(r.FaultP99.Nanoseconds()), "ns")
	}
	if r.DegradationRatio > 0 {
		add("fault-degradation-ratio", r.DegradationRatio, "ratio")
	}
	add("bytes-moved", float64(r.BytesMoved), "bytes")
	if r.ChurnJoins > 0 || r.ChurnExpels > 0 {
		add("churn-joins", float64(r.ChurnJoins), "members")
		add("churn-expels", float64(r.ChurnExpels), "members")
	}
	if r.DialFailures > 0 {
		add("transport-dial-failures", float64(r.DialFailures), "dials")
	}
	if r.StateRestores > 0 {
		add("state-restores", float64(r.StateRestores), "restores")
	}
	if r.BlameRounds > 0 {
		add("blame-rounds", float64(r.BlameRounds), "rounds")
	}
	if len(r.Misbehavior) > 0 {
		var total uint64
		for _, n := range r.Misbehavior {
			total += n
		}
		add("misbehavior-observed", float64(total), "events")
	}
	if b := r.Byzantine; b != nil {
		expelled := 0.0
		if b.Expelled {
			expelled = 1.0
		}
		add("byzantine-expelled", expelled, "bool")
		if b.Expelled {
			add("time-to-expel-seconds", b.TimeToExpel.Seconds(), "s")
			add("time-to-expel-rounds", float64(b.RoundsToExpel), "rounds")
		}
		if b.TimeToVerdict > 0 {
			add("time-to-verdict-seconds", b.TimeToVerdict.Seconds(), "s")
		}
		add("honest-goodput-under-attack", b.AttackRoundsPerSec, "rounds/s")
	}
	rep.Results = append(rep.Results, r.WorkloadRows...)
	return rep
}

// WriteReport writes BENCH_<scenario>.json into dir and returns the
// path.
func (r *Result) WriteReport(dir string) (string, error) {
	if err := r.check(); err != nil {
		return "", err
	}
	rep := r.Report()
	if err := ValidateReport(rep); err != nil {
		return "", err
	}
	data, err := rep.WriteJSON()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+r.Scenario.Name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ValidateReport checks a scenario report is schema-complete: CI's
// scenario-smoke job gates on this, and the tests pin it.
func ValidateReport(rep bench.PerfReport) error {
	if rep.Scenario == "" {
		return fmt.Errorf("cluster: report lacks a scenario name")
	}
	if rep.GoVersion == "" {
		return fmt.Errorf("cluster: report lacks the Go version")
	}
	var roundsPerSec *bench.PerfResult
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Name == "" {
			return fmt.Errorf("cluster: report row %d lacks a name", i)
		}
		if res.Unit == "" {
			return fmt.Errorf("cluster: report row %q lacks a unit (scenario rows must not enter the microbench gate)", res.Name)
		}
		if res.Name == "rounds-per-sec" {
			roundsPerSec = res
		}
	}
	if roundsPerSec == nil {
		return fmt.Errorf("cluster: report lacks the rounds-per-sec row")
	}
	if roundsPerSec.Value <= 0 {
		return fmt.Errorf("cluster: rounds-per-sec is %v — rounds never proceeded", roundsPerSec.Value)
	}
	return nil
}
