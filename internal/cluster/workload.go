package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dissent"
	"dissent/internal/bench"
)

// workloadStats collects a driver's own measurements; the orchestrator
// merges them into the scenario report as informational rows.
type workloadStats struct {
	rows []bench.PerfResult
}

func (ws *workloadStats) add(name string, value float64, unit string) {
	ws.rows = append(ws.rows, bench.PerfResult{Name: name, Value: value, Unit: unit})
}

// runWorkload dispatches the scenario's traffic driver and, when
// configured, background churn alongside it. ctx bounds the measured
// window; drivers that finish their work list early return early.
func runWorkload(ctx context.Context, dep *deployment, sc Scenario) (*workloadStats, error) {
	ws := &workloadStats{}

	var churnWG sync.WaitGroup
	var churnStorms uint64
	if n := sc.Workload.ChurnVictims; n > 0 {
		// Background victims come from the tail of the client list, but
		// never clients the workload itself occupies there: socks-browse
		// parks its exit on the last client, churn-storm its own victims.
		pool := dep.clients
		switch sc.Workload.Kind {
		case WorkloadSocksBrowse:
			pool = pool[:len(pool)-1]
		case WorkloadChurnStorm:
			pool = pool[:len(pool)-sc.Workload.Victims]
		}
		victims := pool[len(pool)-n:]
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			storms, _ := churnClients(ctx, dep, victims, 0)
			atomic.StoreUint64(&churnStorms, uint64(storms))
		}()
	}

	var err error
	switch sc.Workload.Kind {
	case WorkloadIdle:
		select {
		case <-ctx.Done():
		}
	case WorkloadMicroblog:
		err = driveMicroblog(ctx, dep, sc.Workload, ws)
	case WorkloadSocksBrowse:
		err = driveSocksBrowse(ctx, dep, sc.Topology, sc.Workload, ws)
	case WorkloadFileshare:
		err = driveFileshare(ctx, dep, sc.Workload, ws)
	case WorkloadChurnStorm:
		err = driveChurnStorm(ctx, dep, sc.Workload, ws)
	}
	churnWG.Wait()
	if sc.Workload.ChurnVictims > 0 {
		ws.add("background-churn-cycles", float64(atomic.LoadUint64(&churnStorms)), "cycles")
	}
	return ws, err
}

// mbMarker prefixes every microblog post so collectors can count
// deliveries even when the engine coalesces queued posts into one slot
// payload.
var mbMarker = []byte("MBPOST|")

// driveMicroblog has the first Posters clients broadcast fixed-size
// posts on a period while every client counts marker deliveries. The
// fan-out ratio (delivered / sent*clients) measures how completely the
// anonymous broadcast reached the membership.
func driveMicroblog(ctx context.Context, dep *deployment, w Workload, ws *workloadStats) error {
	var sent, delivered atomic.Uint64

	// Collectors: every client drains its anonymous channel, counting
	// marker occurrences.
	var wg sync.WaitGroup
	for _, c := range dep.clients {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case d, ok := <-c.Messages():
					if !ok {
						return
					}
					if n := bytes.Count(d.Data, mbMarker); n > 0 {
						delivered.Add(uint64(n))
					}
				}
			}
		}()
	}

	// Posters.
	post := func(poster int, seq uint64) []byte {
		head := fmt.Sprintf("%s%d|%d|", mbMarker, poster, seq)
		buf := make([]byte, w.PostBytes)
		copy(buf, head)
		return buf
	}
	every := w.PostEvery
	if every <= 0 {
		every = 200 * time.Millisecond
	}
	for i := 0; i < w.Posters; i++ {
		i := i
		node := dep.clients[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			var seq uint64
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := node.Send(ctx, post(i, seq)); err != nil {
						return
					}
					seq++
					sent.Add(1)
				}
			}
		}()
	}

	<-ctx.Done()
	wg.Wait()

	s, d := sent.Load(), delivered.Load()
	ws.add("microblog-posts-sent", float64(s), "posts")
	ws.add("microblog-deliveries", float64(d), "deliveries")
	if s > 0 {
		expected := float64(s) * float64(len(dep.clients))
		ws.add("microblog-fanout-ratio", float64(d)/expected, "ratio")
	}
	if s == 0 {
		return fmt.Errorf("cluster: microblog sent nothing (rounds never turned over?)")
	}
	return nil
}

// driveFileshare moves FileBytes from client 0 through its pseudonym
// slot in ChunkBytes pieces; client 1 observes the sender's slot and
// measures goodput. The driver returns once the transfer lands or the
// window closes.
func driveFileshare(ctx context.Context, dep *deployment, w Workload, ws *workloadStats) error {
	sender, observer := dep.clients[0], dep.clients[1]
	slot := sender.Slot()
	if slot < 0 {
		return fmt.Errorf("cluster: fileshare sender has no slot")
	}
	chunk := w.ChunkBytes
	if chunk <= 0 {
		chunk = 4 << 10
	}

	done := make(chan struct{})
	var got atomic.Uint64
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case d, ok := <-observer.Messages():
				if !ok {
					return
				}
				if d.Slot == slot {
					if got.Add(uint64(len(d.Data))) >= uint64(w.FileBytes) {
						return
					}
				}
			}
		}
	}()

	start := time.Now()
	payload := bytes.Repeat([]byte{0xD1}, chunk)
	for off := 0; off < w.FileBytes; off += chunk {
		n := chunk
		if w.FileBytes-off < n {
			n = w.FileBytes - off
		}
		if err := sender.Send(ctx, payload[:n]); err != nil {
			return fmt.Errorf("cluster: fileshare send: %w", err)
		}
	}
	<-done
	elapsed := time.Since(start)

	moved := got.Load()
	ws.add("fileshare-bytes-received", float64(moved), "bytes")
	if secs := elapsed.Seconds(); secs > 0 {
		ws.add("fileshare-goodput", float64(moved)/secs/1024, "KiB/s")
	}
	if moved == 0 {
		return fmt.Errorf("cluster: fileshare moved nothing")
	}
	return nil
}

// driveChurnStorm mass-expels the last Victims clients and rejoins
// them concurrently, Storms times over — every expulsion and
// re-admission is a certified roster update landing at an epoch
// boundary.
func driveChurnStorm(ctx context.Context, dep *deployment, w Workload, ws *workloadStats) error {
	victims := dep.clients[len(dep.clients)-w.Victims:]
	storms, err := churnClients(ctx, dep, victims, w.Storms)
	ws.add("churn-storms-completed", float64(storms), "storms")
	ws.add("churn-victims-per-storm", float64(len(victims)), "clients")
	if err != nil {
		return err
	}
	if storms == 0 {
		return fmt.Errorf("cluster: no churn storm completed inside the window")
	}
	return nil
}

// churnClients expels every victim via server 0, waits for each to
// observe its own expulsion, then rejoins them all concurrently. It
// repeats until `storms` cycles complete (0 = until ctx closes) and
// returns the completed cycle count.
func churnClients(ctx context.Context, dep *deployment, victims []*dissent.Node, storms int) (int, error) {
	// Subscribe before the first expel so no event is missed.
	expelled := make([]<-chan dissent.Event, len(victims))
	for i, v := range victims {
		expelled[i] = v.Subscribe(dissent.EventMemberExpelled)
	}
	completed := 0
	for storms == 0 || completed < storms {
		if ctx.Err() != nil {
			break
		}
		// Mass expel.
		for _, v := range victims {
			if err := dep.servers[0].expel(v.ID()); err != nil {
				return completed, fmt.Errorf("cluster: expel %s: %w", v.ID(), err)
			}
		}
		// Every victim observes its own expulsion...
		allSaw := true
		for i, v := range victims {
			if !awaitExpel(ctx, expelled[i], v.ID()) {
				allSaw = false
				break
			}
		}
		if !allSaw {
			break
		}
		// ...then the whole set rejoins concurrently.
		errs := make(chan error, len(victims))
		for _, v := range victims {
			v := v
			go func() { errs <- v.Rejoin(ctx) }()
		}
		ok := true
		for range victims {
			if err := <-errs; err != nil {
				ok = false
			}
		}
		if !ok {
			break
		}
		completed++
	}
	return completed, nil
}

// awaitExpel drains ch until the victim's own expulsion shows up or
// ctx closes.
func awaitExpel(ctx context.Context, ch <-chan dissent.Event, id dissent.NodeID) bool {
	for {
		select {
		case <-ctx.Done():
			return false
		case e, ok := <-ch:
			if !ok {
				return false
			}
			if e.Culprit == id {
				return true
			}
		}
	}
}
