package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dissent"
	"dissent/dissentcfg"
)

// WorkerEnv names the environment variable that turns a process into a
// cluster worker: its value is the path of a WorkerConfig JSON file.
// cmd/dissent-cluster (and the package's own tests) check it at
// startup before normal flag parsing, so the orchestrator can spawn
// workers by re-executing its own binary.
const WorkerEnv = "DISSENT_CLUSTER_WORKER"

// WorkerConfig tells a spawned server process what to run.
type WorkerConfig struct {
	// GroupFile / KeyFile / RosterFile locate the member's provisioned
	// material (dissentcfg formats).
	GroupFile  string `json:"group_file"`
	KeyFile    string `json:"key_file"`
	RosterFile string `json:"roster_file"`
	// Listen is the member's protocol listen address — it must match
	// the roster's entry for this member's ID.
	Listen string `json:"listen"`
	// Debug is where the worker serves its admin/debug mux
	// (/metrics.json, /debug/rounds, /admin/expel).
	Debug string `json:"debug"`
	// PipelineDepth is the session's round pipeline depth (0/1 =
	// serial); it must match the rest of the group.
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// StoreFile, when set, backs the session with a durable state
	// store at that path: a worker restarted against the same file
	// resumes its live session from the snapshot (kill-server faults).
	StoreFile string `json:"store_file,omitempty"`
}

// RunWorkerFile is the worker-process entry point: load the config at
// path, run the member until stdin closes or SIGTERM/SIGINT arrives,
// then tear down. The orchestrator holds the worker's stdin pipe open
// for its lifetime, so an orphaned worker exits when the driver dies.
func RunWorkerFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var cfg WorkerConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("cluster: parse worker config %s: %w", path, err)
	}
	return runWorker(cfg)
}

func runWorker(cfg WorkerConfig) error {
	grp, err := dissentcfg.LoadGroup(cfg.GroupFile)
	if err != nil {
		return err
	}
	keys, err := dissentcfg.LoadKeys(cfg.KeyFile, grp)
	if err != nil {
		return err
	}
	roster, err := dissentcfg.LoadRoster(cfg.RosterFile)
	if err != nil {
		return err
	}
	// The store opens (and its close defers) before the host, so the
	// LIFO defer order drains every session before the store flushes
	// and closes.
	var kv *dissent.StateStore
	if cfg.StoreFile != "" {
		kv, err = dissent.OpenStateStore(cfg.StoreFile)
		if err != nil {
			return err
		}
		defer kv.Close()
	}
	host, err := dissent.NewHost(
		dissent.WithHostListenAddr(cfg.Listen),
		dissent.WithHostLogger(quietLogger()),
		dissent.WithHostErrorHandler(func(error) {}),
	)
	if err != nil {
		return err
	}
	defer host.Close()
	sessOpts := []dissent.Option{dissent.WithRoster(roster)}
	if cfg.PipelineDepth > 1 {
		sessOpts = append(sessOpts, dissent.WithPipelineDepth(cfg.PipelineDepth))
	}
	if kv != nil {
		sessOpts = append(sessOpts, dissent.WithStateStore(kv))
	}
	if _, err := host.OpenSession(grp, keys, sessOpts...); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.Debug)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: adminHandler(host)}
	go srv.Serve(ln)
	defer srv.Close()

	// Exit on stdin EOF (orchestrator died or released us) or signal.
	eof := make(chan struct{})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := os.Stdin.Read(buf); err != nil {
				close(eof)
				return
			}
		}
	}()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case <-eof:
	case <-sigs:
	}
	return nil
}
