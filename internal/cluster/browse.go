package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"dissent"
	"dissent/internal/browse"
	"dissent/internal/socks"
)

// driveSocksBrowse replays the paper's web-browsing workload (Fig. 10)
// through a live session: the last client runs the SOCKS exit, the
// first Browsers clients fetch scaled-down corpus pages from a local
// origin server, flow-multiplexed through the anonymous channel.
//
// Direction discrimination is by pseudonym slot: every member sees
// every slot's payloads, so the exit ignores its own slot (its own
// responses) and browsers ignore theirs (their own requests), matching
// response frames to requests by flow ID — each browser draws IDs from
// a disjoint range.
func driveSocksBrowse(ctx context.Context, dep *deployment, t Topology, w Workload, ws *workloadStats) error {
	// Local origin: "GET <n>\n" -> n bytes -> close. Stands in for the
	// public web so page size distributions stay exact and offline.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer origin.Close()
	go serveOrigin(origin)

	// Scaled-down Alexa-shaped corpus: same log-normal shape as the
	// Fig. 10 replay, medians shrunk so pages fit a scenario window.
	params := browse.Alexa2012()
	params.Pages = w.Pages * w.Browsers
	if params.Pages < 1 {
		params.Pages = 1
	}
	params.HTMLMedian = 2048
	params.HTMLSigma = 0.4
	params.AssetMedian = 512
	params.AssetSigma = 0.4
	params.AssetsMin, params.AssetsMax = 2, 4
	if t.EpochRounds > 0 {
		// Slots rotate at epoch boundaries, so a frame split across
		// payloads can straddle a slot reassignment and desync. Keep
		// every resource inside one single-payload frame: frame header
		// (9B) + data + a trailing Close frame must fit the open slot.
		params.HTMLMedian = 128
		params.AssetMedian = 64
		params.AssetsMin, params.AssetsMax = 1, 2
	}
	corpus := browse.GenerateCorpus(params)
	if t.EpochRounds > 0 {
		openLen := t.OpenLen
		if openLen <= 0 {
			openLen = 256
		}
		max := openLen - 32
		for i := range corpus {
			if corpus[i].HTMLSize > max {
				corpus[i].HTMLSize = max
			}
			for j := range corpus[i].Assets {
				if corpus[i].Assets[j].Size > max {
					corpus[i].Assets[j].Size = max
				}
			}
		}
	}

	exitNode := dep.clients[len(dep.clients)-1]
	exit := newSlotPeer(ctx, exitNode)
	x := socks.NewExit(exit.send)
	go exit.pump(func(fs []socks.Frame) { x.Deliver(fs) })

	var pages browse.Stats
	var pagesMu sync.Mutex
	var fetchErr error
	var wg sync.WaitGroup
	for b := 0; b < w.Browsers; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			br := newBrowser(ctx, dep.clients[b], uint32(b+1), origin.Addr().String())
			for p := 0; p < w.Pages; p++ {
				page := corpus[(b*w.Pages+p)%len(corpus)]
				d, err := br.fetchPage(page)
				if err != nil {
					pagesMu.Lock()
					if fetchErr == nil && ctx.Err() == nil {
						fetchErr = fmt.Errorf("cluster: browser %d page %q: %w", b, page.Name, err)
					}
					pagesMu.Unlock()
					return
				}
				pagesMu.Lock()
				pages.Add(d)
				pagesMu.Unlock()
			}
		}()
	}
	wg.Wait()

	pagesMu.Lock()
	defer pagesMu.Unlock()
	ws.add("browse-pages-fetched", float64(len(pages.Times)), "pages")
	if len(pages.Times) > 0 {
		ws.add("browse-page-p50", float64(pages.Percentile(50).Nanoseconds()), "ns")
		ws.add("browse-page-p99", float64(pages.Percentile(99).Nanoseconds()), "ns")
	}
	if fetchErr != nil {
		return fetchErr
	}
	if len(pages.Times) == 0 {
		return fmt.Errorf("cluster: no page fetched inside the window")
	}
	return nil
}

// serveOrigin answers "GET <n>\n" with n bytes and closes.
func serveOrigin(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			line, err := bufio.NewReader(c).ReadString('\n')
			if err != nil {
				return
			}
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "GET ")))
			if err != nil || n <= 0 {
				return
			}
			buf := make([]byte, 4096)
			for i := range buf {
				buf[i] = byte('a' + i%26)
			}
			for n > 0 {
				chunk := len(buf)
				if n < chunk {
					chunk = n
				}
				if _, err := c.Write(buf[:chunk]); err != nil {
					return
				}
				n -= chunk
			}
		}(conn)
	}
}

// slotPeer adapts one client node to the socks package's byte-stream
// world: send queues into the anonymous channel, pump reassembles
// frames from every *other* slot (payloads may split frames across
// rounds, so each slot keeps its own remainder buffer).
type slotPeer struct {
	ctx  context.Context
	node *dissent.Node
}

func newSlotPeer(ctx context.Context, node *dissent.Node) *slotPeer {
	return &slotPeer{ctx: ctx, node: node}
}

func (p *slotPeer) send(data []byte) {
	p.node.Send(p.ctx, data)
}

// pump drains the node's anonymous channel, decoding frames from every
// slot but its own and handing them to deliver.
func (p *slotPeer) pump(deliver func([]socks.Frame)) {
	rests := make(map[int][]byte)
	for {
		select {
		case <-p.ctx.Done():
			return
		case d, ok := <-p.node.Messages():
			if !ok {
				return
			}
			if len(d.Data) == 0 || d.Slot == p.node.Slot() {
				continue
			}
			buf := append(rests[d.Slot], d.Data...)
			frames, rest, err := socks.DecodeFrames(buf)
			if err != nil {
				// Desynced stream (e.g. a slot reassigned mid-frame at an
				// epoch boundary): drop the remainder and resync.
				delete(rests, d.Slot)
				continue
			}
			rests[d.Slot] = rest
			if len(frames) > 0 {
				deliver(frames)
			}
		}
	}
}

// clusterBrowser fetches pages flow-by-flow through the channel.
type clusterBrowser struct {
	peer   *slotPeer
	origin string
	nextID uint32

	mu    sync.Mutex
	flows map[uint32]chan socks.Frame
}

func newBrowser(ctx context.Context, node *dissent.Node, idRange uint32, origin string) *clusterBrowser {
	br := &clusterBrowser{
		peer:   newSlotPeer(ctx, node),
		origin: origin,
		nextID: idRange << 20,
		flows:  make(map[uint32]chan socks.Frame),
	}
	go br.peer.pump(br.deliver)
	return br
}

// deliver routes exit-response frames to the waiting fetch; frames for
// other browsers' flows (different ID ranges) fall through harmlessly.
func (br *clusterBrowser) deliver(frames []socks.Frame) {
	for _, f := range frames {
		br.mu.Lock()
		ch := br.flows[f.FlowID]
		br.mu.Unlock()
		if ch == nil {
			continue
		}
		select {
		case ch <- f:
		default:
		}
	}
}

// fetch tunnels one "GET <n>" resource through a fresh flow and waits
// for n response bytes (or the exit's close).
func (br *clusterBrowser) fetch(n int) error {
	br.mu.Lock()
	br.nextID++
	id := br.nextID
	ch := make(chan socks.Frame, 256)
	br.flows[id] = ch
	br.mu.Unlock()
	defer func() {
		br.mu.Lock()
		delete(br.flows, id)
		br.mu.Unlock()
	}()

	// Open + request ride one queued payload; the stream decoder at the
	// exit splits them back apart.
	req := append(
		socks.EncodeFrame(socks.Frame{FlowID: id, Kind: socks.FrameOpen, Data: []byte(br.origin)}),
		socks.EncodeFrame(socks.Frame{FlowID: id, Kind: socks.FrameData, Data: []byte(fmt.Sprintf("GET %d\n", n))})...,
	)
	br.peer.send(req)

	got := 0
	for {
		select {
		case <-br.peer.ctx.Done():
			return br.peer.ctx.Err()
		case f := <-ch:
			switch f.Kind {
			case socks.FrameData:
				got += len(f.Data)
				if got >= n {
					// Tell the exit to drop the flow; the origin closes
					// its side after the last byte anyway.
					br.peer.send(socks.EncodeFrame(socks.Frame{FlowID: id, Kind: socks.FrameClose}))
					return nil
				}
			case socks.FrameClose:
				if got >= n {
					return nil
				}
				return fmt.Errorf("flow closed after %d/%d bytes", got, n)
			}
		}
	}
}

// fetchPage downloads a corpus page: the HTML document, then each
// asset, sequentially — the paper's per-page download time.
func (br *clusterBrowser) fetchPage(page browse.Page) (time.Duration, error) {
	start := time.Now()
	if err := br.fetch(page.HTMLSize); err != nil {
		return 0, err
	}
	for _, a := range page.Assets {
		if err := br.fetch(a.Size); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
