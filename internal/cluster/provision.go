package cluster

import (
	"fmt"
	"path/filepath"
	"time"

	"dissent"
	"dissent/dissentcfg"
)

// policy derives the group policy a topology runs under: test-grade
// shuffle parameters (scenarios measure systems behavior, not bignum
// throughput), short windows so rounds turn over fast, and — when
// epochs are on — the same relaxed churn thresholds the SDK's churn
// tests use, so a storm of simultaneous expulsions cannot stall the
// participation floor.
func (t Topology) policy() dissent.Policy {
	p := dissent.DefaultPolicy()
	p.MessageGroup = "modp-512-test"
	if t.MessageGroup != "" {
		p.MessageGroup = t.MessageGroup
	}
	p.Shadows = 4
	p.WindowMin = 15 * time.Millisecond
	if t.WindowMin > 0 {
		p.WindowMin = t.WindowMin
	}
	p.HardTimeout = 30 * time.Second
	if t.HardTimeout > 0 {
		p.HardTimeout = t.HardTimeout
	}
	p.DefaultOpenLen = 256
	if t.OpenLen > 0 {
		p.DefaultOpenLen = t.OpenLen
	}
	// Cluster rounds turn over in single-digit milliseconds, so the
	// default 8-round trace retention is ~50ms of wall clock — shorter
	// than a victim's detect-accuse-shuffle arc under load, which
	// squashes accusations into inconclusive verdicts. Scale retention
	// to the round rate instead of the paper's seconds-per-round pace.
	p.RetainRounds = 64
	p.BeaconEpochRounds = t.EpochRounds
	if t.EpochRounds > 0 {
		p.ReadmitCooldownRounds = 0
		p.Alpha = 0.5
		p.WindowThreshold = 0.6
		p.OpenAdmission = false
	}
	return p
}

// material is the provisioned group: definition plus every member's
// keys, in definition order.
type material struct {
	grp        *dissent.Group
	serverKeys []dissent.Keys
	clientKeys []dissent.Keys
	dir        string
	// pipelineDepth is the topology's round pipeline depth, applied to
	// every member's session options at deployment (0/1 = serial).
	pipelineDepth int
	// durableStores gives each tcp-mode server worker a state store
	// file beside its other material (Topology.DurableStores).
	durableStores bool
	// byz is the compiled byzantine fault schedule: deployment installs
	// its gated interdicts on the targeted members (nil = none).
	byz *byzPlan
}

// provision generates the group's material on disk through dissentcfg
// — the same files a real deployment starts from — and loads every
// member's keys back in definition order.
func provision(dir string, sc Scenario) (*material, error) {
	pol := sc.Topology.policy()
	grp, err := dissentcfg.Generate(dir, dissentcfg.GenerateConfig{
		Name:    "cluster-" + sc.Name,
		Servers: sc.Topology.Servers,
		Clients: sc.Topology.Clients,
		Policy:  &pol,
		// -1 keeps the policy's epoch setting (0 would override it off).
		BeaconEpochRounds: -1,
	})
	if err != nil {
		return nil, err
	}
	m := &material{grp: grp, dir: dir, pipelineDepth: sc.Topology.PipelineDepth, durableStores: sc.Topology.DurableStores}
	for i := range grp.Servers {
		k, err := dissentcfg.LoadKeys(filepath.Join(dir, fmt.Sprintf("server-%d.key", i)), grp)
		if err != nil {
			return nil, err
		}
		m.serverKeys = append(m.serverKeys, k)
	}
	for i := range grp.Clients {
		k, err := dissentcfg.LoadKeys(filepath.Join(dir, fmt.Sprintf("client-%d.key", i)), grp)
		if err != nil {
			return nil, err
		}
		m.clientKeys = append(m.clientKeys, k)
	}
	return m, nil
}
