package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"dissent"
)

// serverHandle is the orchestrator's grip on one running server,
// uniform across deployment modes: a debug URL to scrape, an expel
// control, and — in tcp mode — process kill/restart.
type serverHandle struct {
	id       dissent.NodeID
	debugURL string
	expel    func(id dissent.NodeID) error
	kill     func() error // tcp only; nil otherwise
	restart  func() error // tcp only; nil otherwise
}

// deployment is one running topology.
type deployment struct {
	grp     *dissent.Group
	sid     dissent.SessionID
	servers []serverHandle
	// clients holds the in-process client nodes in definition order
	// (both modes run clients in the driver process).
	clients []*dissent.Node
	// sim is the hub for link-fault injection; nil in tcp mode.
	sim  *dissent.SimNet
	stop func()
}

// quietLogger drops member logs: a scenario run deliberately breaks
// links and kills processes, and the resulting warn-spam would bury
// the driver's own narration.
func quietLogger() *slog.Logger {
	if path := os.Getenv("DISSENT_CLUSTER_DEBUG_LOG"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			return slog.New(slog.NewTextHandler(f, &slog.HandlerOptions{Level: slog.LevelInfo}))
		}
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// adminHandler wraps a host's debug mux with the orchestration control
// surface: /admin/expel?session=<hex64>&id=<hex16> queues a member's
// removal, so the driver steers churn in worker processes over the
// same HTTP channel it scrapes.
func adminHandler(h *dissent.Host) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/expel", func(w http.ResponseWriter, r *http.Request) {
		var sid dissent.SessionID
		if err := sid.UnmarshalText([]byte(r.URL.Query().Get("session"))); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := parseNodeID(r.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.Expel(sid, id); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/", h.DebugHandler())
	return mux
}

// parseNodeID parses the 16-hex-char NodeID rendering.
func parseNodeID(s string) (dissent.NodeID, error) {
	var id dissent.NodeID
	if len(s) != len(id)*2 {
		return id, fmt.Errorf("cluster: node ID must be %d hex characters", len(id)*2)
	}
	for i := 0; i < len(id); i++ {
		var b byte
		if _, err := fmt.Sscanf(s[i*2:i*2+2], "%02x", &b); err != nil {
			return id, err
		}
		id[i] = b
	}
	return id, nil
}

// serveDebug serves a handler on a fresh loopback listener and returns
// its base URL plus a closer.
func serveDebug(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// deploySim stands the topology up in-process: one Host per server
// over a shared SimNet hub (each host still serves its debug mux on a
// real loopback listener, so scraping is uniform with tcp mode), and
// one client Node per client key.
func deploySim(ctx context.Context, m *material) (*deployment, error) {
	sim := dissent.NewSimNet()
	sid := dissent.GroupSessionID(m.grp)
	dep := &deployment{grp: m.grp, sid: sid, sim: sim}
	var closers []func()
	dep.stop = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		sim.Close()
	}
	fail := func(err error) (*deployment, error) {
		dep.stop()
		return nil, err
	}

	for i, keys := range m.serverKeys {
		host, err := dissent.NewHost(
			dissent.WithHostSimNet(sim),
			dissent.WithHostLogger(quietLogger()),
			dissent.WithHostErrorHandler(func(error) {}),
		)
		if err != nil {
			return fail(err)
		}
		closers = append(closers, func() { host.Close() })
		sessOpts := []dissent.Option{}
		if m.pipelineDepth > 1 {
			sessOpts = append(sessOpts, dissent.WithPipelineDepth(m.pipelineDepth))
		}
		if m.byz != nil {
			if g, ok := m.byz.serverGates[i]; ok {
				sessOpts = append(sessOpts, dissent.WithInterdict(g.interdict()))
			}
		}
		if _, err := host.OpenSession(m.grp, keys, sessOpts...); err != nil {
			return fail(fmt.Errorf("cluster: server %d: %w", i, err))
		}
		url, closeDebug, err := serveDebug(adminHandler(host))
		if err != nil {
			return fail(err)
		}
		closers = append(closers, closeDebug)
		dep.servers = append(dep.servers, serverHandle{
			id:       m.grp.Servers[i].ID,
			debugURL: url,
			expel:    func(id dissent.NodeID) error { return host.Expel(sid, id) },
		})
	}

	cctx, cancelClients := context.WithCancel(ctx)
	closers = append(closers, cancelClients)
	for i, keys := range m.clientKeys {
		cliOpts := []dissent.Option{
			dissent.WithTransport(sim),
			dissent.WithMessageBuffer(4096),
			dissent.WithLogger(quietLogger()),
			dissent.WithErrorHandler(func(error) {}),
		}
		if m.pipelineDepth > 1 {
			cliOpts = append(cliOpts, dissent.WithPipelineDepth(m.pipelineDepth))
		}
		if m.byz != nil {
			if g, ok := m.byz.clientGates[i]; ok {
				cliOpts = append(cliOpts, dissent.WithInterdict(g.interdict()))
			}
		}
		node, err := dissent.NewClient(m.grp, keys, cliOpts...)
		if err != nil {
			return fail(fmt.Errorf("cluster: client %d: %w", i, err))
		}
		go node.Run(cctx)
		dep.clients = append(dep.clients, node)
	}
	return dep, nil
}

// waitReady polls until every client's slot schedule is established or
// the warmup deadline passes.
func (d *deployment) waitReady(ctx context.Context, warmup time.Duration) error {
	deadline := time.Now().Add(warmup)
	for {
		ready := 0
		for _, c := range d.clients {
			if c.ScheduleEstablished() {
				ready++
			}
		}
		if ready == len(d.clients) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d/%d clients ready after %v warmup", ready, len(d.clients), warmup)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// armFaults schedules the scenario's fault windows relative to now.
// Link faults pre-program the SimNet hub; kill faults run on driver
// timers. The returned stop func cancels pending kill timers (hub
// windows die with the hub).
func (d *deployment) armFaults(sc Scenario) func() {
	var timers []*time.Timer
	for _, f := range sc.Faults {
		f := f
		switch f.Kind {
		case FaultPartitionServer:
			spec := dissent.FaultSpec{DropRate: 1.0}
			for _, other := range d.servers {
				if other.id != d.servers[f.Server].id {
					d.sim.ScheduleLinkFault(d.servers[f.Server].id, other.id, spec, f.At, f.Duration)
				}
			}
		case FaultDegradeServer:
			spec := dissent.FaultSpec{Latency: f.Latency, Jitter: f.Jitter, DropRate: f.DropRate}
			for _, other := range d.servers {
				if other.id != d.servers[f.Server].id {
					d.sim.ScheduleLinkFault(d.servers[f.Server].id, other.id, spec, f.At, f.Duration)
				}
			}
			for _, c := range d.clients {
				d.sim.ScheduleLinkFault(d.servers[f.Server].id, c.ID(), spec, f.At, f.Duration)
			}
		case FaultKillServer:
			h := d.servers[f.Server]
			if h.kill == nil {
				continue
			}
			timers = append(timers, time.AfterFunc(f.At, func() { h.kill() }))
			if f.Duration > 0 && h.restart != nil {
				timers = append(timers, time.AfterFunc(f.At+f.Duration, func() { h.restart() }))
			}
		}
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}
