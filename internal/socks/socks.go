// Package socks implements the application interfaces of §4.1: a
// SOCKS v5 entry proxy that frames TCP flows into the anonymous
// channel, the exit-node flow handler that forwards tunneled traffic
// to the public network, and a small HTTP API for posting raw messages
// into a protocol session. The entry and exit sides communicate only
// through an opaque "send bytes anonymously / deliver bytes" pair of
// functions, so they run over any Dissent session (in-process, TCP, or
// simulated).
package socks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Frame kinds for flow multiplexing inside the anonymous channel.
const (
	FrameOpen  = byte(1) // payload: destination "host:port"
	FrameData  = byte(2) // payload: flow bytes
	FrameClose = byte(3)
)

// Frame is one flow-multiplexing unit: every tunneled TCP flow gets a
// random identifier so the exit can demultiplex many flows arriving
// through the shared channel (§4.1).
type Frame struct {
	FlowID uint32
	Kind   byte
	Data   []byte
}

// EncodeFrame serializes a frame.
func EncodeFrame(f Frame) []byte {
	buf := make([]byte, 9+len(f.Data))
	binary.BigEndian.PutUint32(buf[0:4], f.FlowID)
	buf[4] = f.Kind
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(f.Data)))
	copy(buf[9:], f.Data)
	return buf
}

// DecodeFrames parses zero or more concatenated frames from a byte
// stream, returning any trailing partial bytes for the next call
// (slot payloads may split frames arbitrarily).
func DecodeFrames(buf []byte) (frames []Frame, rest []byte, err error) {
	for {
		if len(buf) < 9 {
			return frames, buf, nil
		}
		n := binary.BigEndian.Uint32(buf[5:9])
		if n > 1<<24 {
			return frames, nil, fmt.Errorf("socks: frame length %d too large", n)
		}
		if uint32(len(buf)-9) < n {
			return frames, buf, nil
		}
		frames = append(frames, Frame{
			FlowID: binary.BigEndian.Uint32(buf[0:4]),
			Kind:   buf[4],
			Data:   append([]byte(nil), buf[9:9+n]...),
		})
		buf = buf[9+n:]
	}
}

// SendFunc transmits bytes into the anonymous channel (e.g.
// core.Client.Send).
type SendFunc func(data []byte)

// Entry is the SOCKS v5 entry node: it accepts proxy connections and
// frames their traffic into the channel.
type Entry struct {
	send SendFunc

	mu     sync.Mutex
	flows  map[uint32]net.Conn
	nextID uint32
	rnd    func() uint32
}

// NewEntry builds an entry node that transmits via send.
func NewEntry(send SendFunc) *Entry {
	var ctr uint32
	return &Entry{
		send:  send,
		flows: make(map[uint32]net.Conn),
		rnd: func() uint32 {
			ctr++
			return ctr ^ 0x5EED1E55
		},
	}
}

// Serve accepts SOCKS connections on ln until it is closed.
func (e *Entry) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go e.handleConn(conn)
	}
}

// handleConn speaks the SOCKS v5 handshake, then pumps client bytes
// into the channel.
func (e *Entry) handleConn(conn net.Conn) {
	defer conn.Close()
	dst, err := Handshake(conn)
	if err != nil {
		return
	}
	e.mu.Lock()
	id := e.rnd()
	e.flows[id] = conn
	e.mu.Unlock()

	e.send(EncodeFrame(Frame{FlowID: id, Kind: FrameOpen, Data: []byte(dst)}))
	buf := make([]byte, 16<<10)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			e.send(EncodeFrame(Frame{FlowID: id, Kind: FrameData, Data: buf[:n]}))
		}
		if err != nil {
			break
		}
	}
	e.send(EncodeFrame(Frame{FlowID: id, Kind: FrameClose}))
	e.mu.Lock()
	delete(e.flows, id)
	e.mu.Unlock()
}

// Deliver hands channel output (response frames from the exit) back to
// the matching proxy connections.
func (e *Entry) Deliver(frames []Frame) {
	for _, f := range frames {
		e.mu.Lock()
		conn := e.flows[f.FlowID]
		e.mu.Unlock()
		if conn == nil {
			continue
		}
		switch f.Kind {
		case FrameData:
			conn.Write(f.Data)
		case FrameClose:
			conn.Close()
		}
	}
}

// Handshake performs the server side of a SOCKS v5 CONNECT handshake
// and returns the requested destination as "host:port".
func Handshake(conn io.ReadWriter) (string, error) {
	// Greeting: VER, NMETHODS, METHODS...
	var hdr [2]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return "", err
	}
	if hdr[0] != 5 {
		return "", fmt.Errorf("socks: version %d unsupported", hdr[0])
	}
	methods := make([]byte, hdr[1])
	if _, err := io.ReadFull(conn, methods); err != nil {
		return "", err
	}
	// No authentication.
	if _, err := conn.Write([]byte{5, 0}); err != nil {
		return "", err
	}
	// Request: VER, CMD, RSV, ATYP, DST.ADDR, DST.PORT.
	var req [4]byte
	if _, err := io.ReadFull(conn, req[:]); err != nil {
		return "", err
	}
	if req[1] != 1 { // CONNECT only
		conn.Write([]byte{5, 7, 0, 1, 0, 0, 0, 0, 0, 0})
		return "", errors.New("socks: only CONNECT supported")
	}
	var host string
	switch req[3] {
	case 1: // IPv4
		var a [4]byte
		if _, err := io.ReadFull(conn, a[:]); err != nil {
			return "", err
		}
		host = net.IP(a[:]).String()
	case 3: // domain
		var l [1]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return "", err
		}
		d := make([]byte, l[0])
		if _, err := io.ReadFull(conn, d); err != nil {
			return "", err
		}
		host = string(d)
	case 4: // IPv6
		var a [16]byte
		if _, err := io.ReadFull(conn, a[:]); err != nil {
			return "", err
		}
		host = net.IP(a[:]).String()
	default:
		return "", fmt.Errorf("socks: address type %d unsupported", req[3])
	}
	var port [2]byte
	if _, err := io.ReadFull(conn, port[:]); err != nil {
		return "", err
	}
	// Success reply (bound address zeroed).
	if _, err := conn.Write([]byte{5, 0, 0, 1, 0, 0, 0, 0, 0, 0}); err != nil {
		return "", err
	}
	return net.JoinHostPort(host, fmt.Sprint(binary.BigEndian.Uint16(port[:]))), nil
}

// Exit is the non-anonymous exit node (§4.1): it reads tunneled flows
// from the channel, opens real TCP connections, and frames responses
// back.
type Exit struct {
	send SendFunc
	// Dial is swappable for tests (default net.Dial).
	Dial func(network, addr string) (net.Conn, error)

	mu    sync.Mutex
	flows map[uint32]*exitFlow
}

// exitFlow tracks one tunneled flow. Data frames arriving while the
// outbound dial is still in flight (open and data can share a DC-net
// round) buffer in pending and flush once connected.
type exitFlow struct {
	conn    net.Conn
	pending [][]byte
	closed  bool
}

// NewExit builds an exit node responding via send.
func NewExit(send SendFunc) *Exit {
	return &Exit{send: send, Dial: net.Dial, flows: make(map[uint32]*exitFlow)}
}

// Deliver consumes channel output at the exit: open/data/close frames
// from anonymous clients.
func (x *Exit) Deliver(frames []Frame) {
	for _, f := range frames {
		switch f.Kind {
		case FrameOpen:
			x.mu.Lock()
			if _, dup := x.flows[f.FlowID]; !dup {
				x.flows[f.FlowID] = &exitFlow{}
				go x.open(f.FlowID, string(f.Data))
			}
			x.mu.Unlock()
		case FrameData:
			x.mu.Lock()
			fl := x.flows[f.FlowID]
			if fl != nil {
				if fl.conn != nil {
					conn := fl.conn
					x.mu.Unlock()
					conn.Write(f.Data)
					continue
				}
				fl.pending = append(fl.pending, append([]byte(nil), f.Data...))
			}
			x.mu.Unlock()
		case FrameClose:
			x.mu.Lock()
			fl := x.flows[f.FlowID]
			delete(x.flows, f.FlowID)
			x.mu.Unlock()
			if fl != nil && fl.conn != nil {
				fl.conn.Close()
			}
		}
	}
}

func (x *Exit) open(id uint32, addr string) {
	conn, err := x.Dial("tcp", addr)
	if err != nil {
		x.mu.Lock()
		delete(x.flows, id)
		x.mu.Unlock()
		x.send(EncodeFrame(Frame{FlowID: id, Kind: FrameClose}))
		return
	}
	x.mu.Lock()
	fl := x.flows[id]
	if fl == nil {
		// Closed while dialing.
		x.mu.Unlock()
		conn.Close()
		return
	}
	fl.conn = conn
	pending := fl.pending
	fl.pending = nil
	x.mu.Unlock()
	for _, p := range pending {
		conn.Write(p)
	}
	buf := make([]byte, 16<<10)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			x.send(EncodeFrame(Frame{FlowID: id, Kind: FrameData, Data: buf[:n]}))
		}
		if err != nil {
			break
		}
	}
	x.send(EncodeFrame(Frame{FlowID: id, Kind: FrameClose}))
	x.mu.Lock()
	delete(x.flows, id)
	x.mu.Unlock()
}
