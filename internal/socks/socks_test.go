package socks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameEncodeDecode(t *testing.T) {
	frames := []Frame{
		{FlowID: 7, Kind: FrameOpen, Data: []byte("example.com:80")},
		{FlowID: 7, Kind: FrameData, Data: []byte("GET / HTTP/1.0\r\n\r\n")},
		{FlowID: 7, Kind: FrameClose},
	}
	var wire []byte
	for _, f := range frames {
		wire = append(wire, EncodeFrame(f)...)
	}
	got, rest, err := DecodeFrames(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d frames", len(got))
	}
	for i := range frames {
		if got[i].FlowID != frames[i].FlowID || got[i].Kind != frames[i].Kind ||
			!bytes.Equal(got[i].Data, frames[i].Data) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestDecodeFramesPartial(t *testing.T) {
	f := EncodeFrame(Frame{FlowID: 3, Kind: FrameData, Data: []byte("split payload")})
	// Split at every boundary: first part decodes nothing, remainder
	// completes after concatenation.
	for cut := 1; cut < len(f); cut++ {
		got, rest, err := DecodeFrames(f[:cut])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("cut %d: decoded %d frames from partial data", cut, len(got))
		}
		got, rest2, err := DecodeFrames(append(rest, f[cut:]...))
		if err != nil || len(got) != 1 || len(rest2) != 0 {
			t.Fatalf("cut %d: reassembly failed", cut)
		}
	}
}

func TestDecodeFramesRejectsHugeLength(t *testing.T) {
	bad := EncodeFrame(Frame{FlowID: 1, Kind: FrameData})
	bad[5] = 0xFF // length = huge
	if _, _, err := DecodeFrames(bad); err == nil {
		t.Error("oversized frame length accepted")
	}
}

func TestSocksHandshakeDomain(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		// Client side: greeting, then CONNECT to example.com:8080.
		client.Write([]byte{5, 1, 0})
		var resp [2]byte
		io.ReadFull(client, resp[:])
		req := []byte{5, 1, 0, 3, byte(len("example.com"))}
		req = append(req, "example.com"...)
		req = append(req, 0x1F, 0x90) // 8080
		client.Write(req)
		// Consume the success reply: net.Pipe writes are synchronous,
		// so Handshake's final write would otherwise block forever.
		var rep [10]byte
		io.ReadFull(client, rep[:])
	}()
	dst, err := Handshake(server)
	if err != nil {
		t.Fatal(err)
	}
	if dst != "example.com:8080" {
		t.Errorf("dst = %q", dst)
	}
}

func TestSocksHandshakeIPv4(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		client.Write([]byte{5, 1, 0})
		var resp [2]byte
		io.ReadFull(client, resp[:])
		client.Write([]byte{5, 1, 0, 1, 127, 0, 0, 1, 0, 80})
		var rep [10]byte
		io.ReadFull(client, rep[:])
	}()
	dst, err := Handshake(server)
	if err != nil {
		t.Fatal(err)
	}
	if dst != "127.0.0.1:80" {
		t.Errorf("dst = %q", dst)
	}
}

func TestSocksHandshakeRejectsBadVersion(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go client.Write([]byte{4, 1, 0})
	if _, err := Handshake(server); err == nil {
		t.Error("SOCKS4 accepted")
	}
}

// TestEntryExitPipe wires an Entry directly to an Exit (a zero-latency
// anonymous channel) and tunnels HTTP-ish traffic to a real local TCP
// echo server.
func TestEntryExitPipe(t *testing.T) {
	// Echo server standing in for an origin.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	go func() {
		for {
			c, err := origin.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				n, _ := c.Read(buf)
				c.Write([]byte("ECHO:"))
				c.Write(buf[:n])
				c.Close()
			}()
		}
	}()

	// Channel: entry.send -> exit.Deliver; exit.send -> entry.Deliver.
	var exit *Exit
	var entry *Entry
	var mu sync.Mutex
	var entryBuf, exitBuf []byte
	entry = NewEntry(func(data []byte) {
		mu.Lock()
		exitBuf = append(exitBuf, data...)
		frames, rest, err := DecodeFrames(exitBuf)
		exitBuf = rest
		mu.Unlock()
		if err == nil {
			exit.Deliver(frames)
		}
	})
	exit = NewExit(func(data []byte) {
		mu.Lock()
		entryBuf = append(entryBuf, data...)
		frames, rest, err := DecodeFrames(entryBuf)
		entryBuf = rest
		mu.Unlock()
		if err == nil {
			entry.Deliver(frames)
		}
	})

	// SOCKS listener for the entry.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go entry.Serve(ln)

	// Speak SOCKS5 to the entry, CONNECT to the origin, send a request.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{5, 1, 0})
	var greet [2]byte
	if _, err := io.ReadFull(conn, greet[:]); err != nil {
		t.Fatal(err)
	}
	host, portStr, _ := net.SplitHostPort(origin.Addr().String())
	var port int
	fmt.Sscanf(portStr, "%d", &port)
	req := []byte{5, 1, 0, 3, byte(len(host))}
	req = append(req, host...)
	req = append(req, byte(port>>8), byte(port))
	conn.Write(req)
	var rep [10]byte
	if _, err := io.ReadFull(conn, rep[:]); err != nil {
		t.Fatal(err)
	}
	if rep[1] != 0 {
		t.Fatalf("CONNECT refused: %d", rep[1])
	}

	conn.Write([]byte("hello through the tunnel"))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, _ := io.ReadAll(conn)
	if !strings.HasPrefix(string(resp), "ECHO:hello through the tunnel") {
		t.Errorf("response %q", resp)
	}
}

func TestHTTPAPI(t *testing.T) {
	var sent [][]byte
	api := NewAPI(func(d []byte) { sent = append(sent, d) }, 4)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/send", "text/plain", strings.NewReader("post me"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("POST /send status %d", resp.StatusCode)
	}
	if len(sent) != 1 || string(sent[0]) != "post me" {
		t.Fatalf("send hook got %q", sent)
	}

	for i := 0; i < 6; i++ {
		api.Record(uint64(i), i, []byte(fmt.Sprintf("m%d", i)))
	}
	resp, err = srv.Client().Get(srv.URL + "/messages")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msgs []APIMessage
	if err := json.NewDecoder(resp.Body).Decode(&msgs); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 { // limit trims to the most recent 4
		t.Fatalf("got %d messages, want 4", len(msgs))
	}
	if msgs[len(msgs)-1].Data != "m5" {
		t.Errorf("last message %q", msgs[len(msgs)-1].Data)
	}

	// GET on /send rejected.
	resp, _ = srv.Client().Get(srv.URL + "/send")
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /send status %d", resp.StatusCode)
	}
}
