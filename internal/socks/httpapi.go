package socks

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// API is the HTTP interface of §4.1: applications POST raw byte
// strings into the protocol session and poll delivered messages — the
// interface the anonymous microblogging prototype used (§4.2).
type API struct {
	send SendFunc

	mu       sync.Mutex
	messages []APIMessage
	limit    int
}

// APIMessage is one delivered anonymous message.
type APIMessage struct {
	Round uint64 `json:"round"`
	Slot  int    `json:"slot"`
	Data  string `json:"data"`
}

// NewAPI builds the HTTP API posting via send and retaining up to
// limit delivered messages (0 = 1024).
func NewAPI(send SendFunc, limit int) *API {
	if limit <= 0 {
		limit = 1024
	}
	return &API{send: send, limit: limit}
}

// Record stores a delivered message for later polling.
func (a *API) Record(round uint64, slot int, data []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.messages = append(a.messages, APIMessage{Round: round, Slot: slot, Data: string(data)})
	if len(a.messages) > a.limit {
		a.messages = a.messages[len(a.messages)-a.limit:]
	}
}

// Handler returns the API's HTTP mux:
//
//	POST /send      — body posted into the session verbatim
//	GET  /messages  — JSON array of delivered messages
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/send", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil || len(body) == 0 {
			http.Error(w, "empty body", http.StatusBadRequest)
			return
		}
		a.send(body)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/messages", func(w http.ResponseWriter, r *http.Request) {
		a.mu.Lock()
		msgs := append([]APIMessage(nil), a.messages...)
		a.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(msgs)
	})
	return mux
}
