package beacon

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// KV is the embedded key-value surface the beacon adapter persists
// through — satisfied by *store.KV. Mutations must be durable before
// they return (the KV fsyncs each Put/Delete).
type KV interface {
	Put(bucket, key string, value []byte) error
	Get(bucket, key string) ([]byte, bool)
	List(bucket string) []string
	Delete(bucket, key string) error
}

// anchorKey names the checkpoint anchor record in the meta bucket.
const anchorKey = "anchor"

// roundKey renders a round number as a fixed-width key so the KV's
// sorted key listing is numeric round order.
func roundKey(r uint64) string { return fmt.Sprintf("%020d", r) }

// KVStore adapts one bucket of an embedded KV into a beacon Store,
// with the same in-memory mirror pattern as FileStore: writes reach
// the KV (which fsyncs) before the mirror accepts them, and reads are
// served from the mirror. Unlike FileStore's append-only log it
// supports checkpoint compaction — DropBefore deletes a verified
// prefix — and persists the resulting verification anchor in a sibling
// meta bucket, so a reopened chain remembers where Verify roots.
type KVStore struct {
	kv     KV
	bucket string
	meta   string
	mem    MemStore
}

// NewKVStore loads the bucket's entries (sorted keys = round order)
// into the mirror. Entries are trusted as loaded, exactly like a
// reopened FileStore; wrap the store in a Chain and call Verify to
// re-check them.
func NewKVStore(kv KV, bucket string) (*KVStore, error) {
	s := &KVStore{kv: kv, bucket: bucket, meta: bucket + ".meta"}
	for _, k := range kv.List(bucket) {
		raw, ok := kv.Get(bucket, k)
		if !ok {
			continue
		}
		var j entryJSON
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("beacon: kv entry %s: %w", k, err)
		}
		e, err := decodeEntry(j)
		if err != nil {
			return nil, err
		}
		if err := s.mem.Append(e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Append implements Store: the entry is durably stored before the
// mirror accepts it.
func (s *KVStore) Append(e *Entry) error {
	data, err := json.Marshal(encodeEntry(e))
	if err != nil {
		return err
	}
	if err := s.kv.Put(s.bucket, roundKey(e.Round), data); err != nil {
		return err
	}
	return s.mem.Append(e)
}

// Get implements Store.
func (s *KVStore) Get(round uint64) (*Entry, bool) { return s.mem.Get(round) }

// From implements Store.
func (s *KVStore) From(round uint64) (*Entry, bool) { return s.mem.From(round) }

// Latest implements Store.
func (s *KVStore) Latest() (*Entry, bool) { return s.mem.Latest() }

// Len implements Store.
func (s *KVStore) Len() int { return s.mem.Len() }

// DropBefore implements Pruner: entries with Round < round are deleted
// from the KV and the mirror.
func (s *KVStore) DropBefore(round uint64) error {
	cut := roundKey(round)
	for _, k := range s.kv.List(s.bucket) {
		if k >= cut {
			break
		}
		if err := s.kv.Delete(s.bucket, k); err != nil {
			return err
		}
	}
	return s.mem.DropBefore(round)
}

// AnchorRound implements Anchored.
func (s *KVStore) AnchorRound() (uint64, bool) {
	raw, ok := s.kv.Get(s.meta, anchorKey)
	if !ok {
		return 0, false
	}
	r, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, false
	}
	return r, true
}

// SetAnchor implements Anchored.
func (s *KVStore) SetAnchor(round uint64) error {
	return s.kv.Put(s.meta, anchorKey, []byte(strconv.FormatUint(round, 10)))
}
