package beacon

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler serves a chain over HTTP. Routes (all GET, JSON responses):
//
//	/beacon/latest        newest entry (404 on an empty chain)
//	/beacon/{round}       entry for an exact round (404 when missing)
//	/beacon/from/{round}  earliest entry with Round >= round
//	/beacon/range/{from}  JSON array of entries with Round >= from
//	                      (paged; ?max= caps the page, server limit 1024)
//	/beacon/info          chain summary: length, head round, genesis
//
// The dissent SDK mounts this next to the protocol transport;
// HTTPSource is the matching client side.
func Handler(c *Chain) http.Handler {
	return HandlerWithSchedule(c, nil)
}

// ScheduleCert is the session artifact a beacon chain's genesis binds
// to: the certified slot-key list and every server's Schnorr signature
// over it (verifiable with the group definition alone). Serving it
// beside the chain lets an external verifier derive the session
// genesis itself instead of trusting the server's claimed value.
type ScheduleCert struct {
	Keys [][]byte // encoded pseudonym public keys, slot order
	Sigs [][]byte // per server index, over the schedule-cert bytes
}

type scheduleCertJSON struct {
	Keys []string `json:"keys"`
	Sigs []string `json:"sigs"`
}

// HandlerWithSchedule serves a chain plus, when cert is non-nil,
//
//	/beacon/schedule      the session's schedule certificate (404
//	                      until the schedule certifies)
//
// cert is a callback because the certificate only exists once setup
// completes; it must return nil until then.
func HandlerWithSchedule(c *Chain, cert func() *ScheduleCert) http.Handler {
	mux := http.NewServeMux()
	writeEntry := func(w http.ResponseWriter, e *Entry) {
		if e == nil {
			http.Error(w, "no such beacon entry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(encodeEntry(e))
	}
	mux.HandleFunc("GET /beacon/latest", func(w http.ResponseWriter, r *http.Request) {
		writeEntry(w, c.Latest())
	})
	mux.HandleFunc("GET /beacon/info", func(w http.ResponseWriter, r *http.Request) {
		info := struct {
			Entries   int    `json:"entries"`
			HeadRound uint64 `json:"head_round"`
			HeadValue string `json:"head_value"`
			Genesis   string `json:"genesis"`
		}{Entries: c.Len()}
		genesis := c.Genesis()
		info.Genesis = hex.EncodeToString(genesis[:])
		head := c.Head()
		info.HeadValue = hex.EncodeToString(head[:])
		if latest := c.Latest(); latest != nil {
			info.HeadRound = latest.Round
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(info)
	})
	mux.HandleFunc("GET /beacon/range/{from}", func(w http.ResponseWriter, r *http.Request) {
		from, err := strconv.ParseUint(r.PathValue("from"), 10, 64)
		if err != nil {
			http.Error(w, "bad round", http.StatusBadRequest)
			return
		}
		max := 256
		if q := r.URL.Query().Get("max"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				max = v
			}
		}
		if max > 1024 {
			max = 1024
		}
		page := c.RangeFrom(from, max)
		out := make([]entryJSON, len(page)) // empty page encodes as [], not null
		for i, e := range page {
			out[i] = encodeEntry(e)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /beacon/from/{round}", func(w http.ResponseWriter, r *http.Request) {
		round, err := strconv.ParseUint(r.PathValue("round"), 10, 64)
		if err != nil {
			http.Error(w, "bad round", http.StatusBadRequest)
			return
		}
		writeEntry(w, c.From(round))
	})
	mux.HandleFunc("GET /beacon/{round}", func(w http.ResponseWriter, r *http.Request) {
		round, err := strconv.ParseUint(r.PathValue("round"), 10, 64)
		if err != nil {
			http.Error(w, "bad round", http.StatusBadRequest)
			return
		}
		writeEntry(w, c.Get(round))
	})
	if cert != nil {
		mux.HandleFunc("GET /beacon/schedule", func(w http.ResponseWriter, r *http.Request) {
			sc := cert()
			if sc == nil {
				http.Error(w, "schedule not yet certified", http.StatusNotFound)
				return
			}
			j := scheduleCertJSON{Keys: hexSlice(sc.Keys), Sigs: hexSlice(sc.Sigs)}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(j)
		})
	}
	return mux
}

func hexSlice(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = hex.EncodeToString(b)
	}
	return out
}

// defaultHTTPClient bounds fetches against unresponsive servers so a
// CLI sync fails instead of hanging forever.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// HTTPSource fetches chain entries from a node serving Handler. It
// implements Source, so Chain.Sync can catch up (verifying every
// entry) directly from a server's beacon endpoint.
type HTTPSource struct {
	// URL is the base URL, e.g. "http://127.0.0.1:7080".
	URL string
	// Client overrides the default 30s-timeout client when non-nil.
	Client *http.Client
}

func (s *HTTPSource) get(path string) (*Entry, error) {
	client := s.Client
	if client == nil {
		client = defaultHTTPClient
	}
	resp, err := client.Get(strings.TrimSuffix(s.URL, "/") + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("beacon: GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var j entryJSON
	if err := json.Unmarshal(body, &j); err != nil {
		return nil, fmt.Errorf("beacon: GET %s: %w", path, err)
	}
	return decodeEntry(j)
}

// Latest implements Source.
func (s *HTTPSource) Latest() (*Entry, error) { return s.get("/beacon/latest") }

// Range implements BatchSource: one request fetches a page of entries.
func (s *HTTPSource) Range(from uint64, max int) ([]*Entry, error) {
	client := s.Client
	if client == nil {
		client = defaultHTTPClient
	}
	path := fmt.Sprintf("/beacon/range/%d?max=%d", from, max)
	resp, err := client.Get(strings.TrimSuffix(s.URL, "/") + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("beacon: GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	var js []entryJSON
	if err := json.Unmarshal(body, &js); err != nil {
		return nil, fmt.Errorf("beacon: GET %s: %w", path, err)
	}
	entries := make([]*Entry, len(js))
	for i, j := range js {
		if entries[i], err = decodeEntry(j); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// Schedule fetches the session's schedule certificate, or ErrNotFound
// when the server has not certified one (or predates the endpoint).
// Callers must verify the certificate's signatures themselves before
// deriving a SessionGenesis from it.
func (s *HTTPSource) Schedule() (*ScheduleCert, error) {
	client := s.Client
	if client == nil {
		client = defaultHTTPClient
	}
	resp, err := client.Get(strings.TrimSuffix(s.URL, "/") + "/beacon/schedule")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("beacon: GET /beacon/schedule: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var j scheduleCertJSON
	if err := json.Unmarshal(body, &j); err != nil {
		return nil, fmt.Errorf("beacon: GET /beacon/schedule: %w", err)
	}
	sc := &ScheduleCert{}
	if sc.Keys, err = unhexSlice(j.Keys); err != nil {
		return nil, fmt.Errorf("beacon: schedule keys: %w", err)
	}
	if sc.Sigs, err = unhexSlice(j.Sigs); err != nil {
		return nil, fmt.Errorf("beacon: schedule sigs: %w", err)
	}
	return sc, nil
}

func unhexSlice(ss []string) ([][]byte, error) {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		b, err := hex.DecodeString(s)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// Entry fetches the entry for an exact round.
func (s *HTTPSource) Entry(round uint64) (*Entry, error) {
	return s.get("/beacon/" + strconv.FormatUint(round, 10))
}

// From implements Source.
func (s *HTTPSource) From(round uint64) (*Entry, error) {
	return s.get("/beacon/from/" + strconv.FormatUint(round, 10))
}
