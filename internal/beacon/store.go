package beacon

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrCorruptStore marks mid-file garbage in a chain file — content
// damage, as opposed to I/O or permission errors opening it. Callers
// (cmd/dissentd) archive corrupt files and start fresh but abort on
// anything else.
var ErrCorruptStore = errors.New("beacon: corrupt chain file")

// entryJSON is the serialized form of an Entry, shared by the file
// store and the HTTP API.
type entryJSON struct {
	Round  uint64   `json:"round"`
	Prev   string   `json:"prev"`
	Value  string   `json:"value"`
	Shares []string `json:"shares"`
}

func encodeEntry(e *Entry) entryJSON {
	j := entryJSON{
		Round: e.Round,
		Prev:  hex.EncodeToString(e.Prev[:]),
		Value: hex.EncodeToString(e.Value[:]),
	}
	for _, s := range e.Shares {
		j.Shares = append(j.Shares, hex.EncodeToString(s))
	}
	return j
}

func decodeEntry(j entryJSON) (*Entry, error) {
	e := &Entry{Round: j.Round}
	prev, err := hex.DecodeString(j.Prev)
	if err != nil || len(prev) != ValueLen {
		return nil, fmt.Errorf("beacon: bad prev in entry %d", j.Round)
	}
	value, err := hex.DecodeString(j.Value)
	if err != nil || len(value) != ValueLen {
		return nil, fmt.Errorf("beacon: bad value in entry %d", j.Round)
	}
	copy(e.Prev[:], prev)
	copy(e.Value[:], value)
	for i, s := range j.Shares {
		raw, err := hex.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("beacon: bad share %d in entry %d", i, j.Round)
		}
		e.Shares = append(e.Shares, raw)
	}
	return e, nil
}

// FileStore persists the chain as an append-only file of JSON lines,
// one entry per line, kept mirrored in memory for reads. It implements
// Store. Note that a chain file spans one protocol session: DC-net
// round numbers restart with every fresh setup, so cmd/dissentd
// archives a previous session's file at startup and begins a new one —
// the file is a durable audit log, not a resumable head.
type FileStore struct {
	mem  MemStore
	file *os.File
}

// OpenFileStore opens (creating if needed) the chain file at path and
// loads any existing entries. A torn final line — the artifact of a
// crash mid-append — is truncated away and loading continues; garbage
// anywhere else is an error. The caller should run Chain.Verify after
// wrapping it when the file is not trusted.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{file: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	goodEnd := int64(0) // byte offset just past the last valid line
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		e, lineErr := parseEntryLine(raw)
		if lineErr == nil {
			lineErr = fs.mem.Append(e)
		}
		if lineErr != nil {
			if !sc.Scan() && sc.Err() == nil {
				// Final line: a torn write from a crash mid-append.
				// Drop it and keep the valid prefix.
				if err := f.Truncate(goodEnd); err != nil {
					f.Close()
					return nil, err
				}
				if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
					f.Close()
					return nil, err
				}
				return fs, nil
			}
			f.Close()
			return nil, fmt.Errorf("%w: %s line %d: %v", ErrCorruptStore, path, line, lineErr)
		}
		goodEnd += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, err
	}
	// A valid final line may have lost its newline to a crash between
	// the JSON bytes and the '\n'. Complete it, or the next Append
	// would concatenate onto it and turn a good entry into "garbage"
	// a later reopen truncates away.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, info.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return fs, nil
}

// parseEntryLine decodes one JSON line of the chain file.
func parseEntryLine(raw []byte) (*Entry, error) {
	var j entryJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return nil, err
	}
	return decodeEntry(j)
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.file.Close() }

// Append implements Store: the entry is written and fsynced before the
// in-memory mirror accepts it, so certified entries survive a crash.
func (s *FileStore) Append(e *Entry) error {
	data, err := json.Marshal(encodeEntry(e))
	if err != nil {
		return err
	}
	if _, err := s.file.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return err
	}
	return s.mem.Append(e)
}

// Get implements Store.
func (s *FileStore) Get(round uint64) (*Entry, bool) { return s.mem.Get(round) }

// From implements Store.
func (s *FileStore) From(round uint64) (*Entry, bool) { return s.mem.From(round) }

// Latest implements Store.
func (s *FileStore) Latest() (*Entry, bool) { return s.mem.Latest() }

// Len implements Store.
func (s *FileStore) Len() int { return s.mem.Len() }
