package beacon

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"dissent/internal/crypto"
)

// testServers generates m anytrust server keypairs.
func testServers(t *testing.T, m int) ([]*crypto.KeyPair, []crypto.Element) {
	t.Helper()
	g := crypto.P256()
	kps := make([]*crypto.KeyPair, m)
	pubs := make([]crypto.Element, m)
	for i := range kps {
		kp, err := crypto.GenerateKeyPair(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		kps[i] = kp
		pubs[i] = kp.Public
	}
	return kps, pubs
}

// runRound executes one full commit–reveal exchange and appends the
// resulting entry to every chain in chains.
func runRound(t *testing.T, kps []*crypto.KeyPair, pubs []crypto.Element, round uint64, chains ...*Chain) *Entry {
	t.Helper()
	g := crypto.P256()
	prev := chains[0].Head()
	shares := make([][]byte, len(kps))
	r := NewRound(g, pubs, round, prev)
	for i, kp := range kps {
		share, err := MakeShare(kp, round, prev, nil)
		if err != nil {
			t.Fatal(err)
		}
		shares[i] = share
		if err := r.Commit(i, CommitShare(share)); err != nil {
			t.Fatal(err)
		}
	}
	for i, share := range shares {
		if err := r.Reveal(i, share); err != nil {
			t.Fatal(err)
		}
	}
	e, err := r.Entry()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chains {
		if err := c.Append(e); err != nil {
			t.Fatalf("append round %d: %v", round, err)
		}
	}
	return e
}

func TestThreeServerChainVerifies(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-test-group-id------------")
	chain := NewChain(crypto.P256(), pubs, GenesisValue(gid))

	for r := uint64(0); r < 10; r++ {
		runRound(t, kps, pubs, r, chain)
	}
	if chain.Len() != 10 {
		t.Fatalf("chain has %d entries, want 10", chain.Len())
	}
	if err := chain.Verify(); err != nil {
		t.Fatalf("chain verification failed: %v", err)
	}
	// Values chain: each entry's Prev is the predecessor's Value.
	for r := uint64(1); r < 10; r++ {
		if chain.Get(r).Prev != chain.Get(r-1).Value {
			t.Fatalf("round %d does not chain from round %d", r, r-1)
		}
	}
	if chain.Get(0).Prev != GenesisValue(gid) {
		t.Fatal("round 0 does not chain from genesis")
	}
	// Distinct outputs every round.
	seen := map[Value]bool{}
	for r := uint64(0); r < 10; r++ {
		v := chain.Get(r).Value
		if seen[v] {
			t.Fatalf("duplicate beacon value at round %d", r)
		}
		seen[v] = true
	}
}

func TestLaggingNodeCatchesUp(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-catchup-group------------")
	genesis := GenesisValue(gid)
	full := NewChain(crypto.P256(), pubs, genesis)
	lagging := NewChain(crypto.P256(), pubs, genesis)

	// Both nodes see rounds 0-2; the lagging node then misses 5 rounds.
	for r := uint64(0); r < 3; r++ {
		runRound(t, kps, pubs, r, full, lagging)
	}
	for r := uint64(3); r < 8; r++ {
		runRound(t, kps, pubs, r, full)
	}

	added, err := lagging.Sync(chainSource{full})
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if added != 5 {
		t.Fatalf("sync added %d entries, want 5", added)
	}
	if lagging.Len() != 8 || lagging.Head() != full.Head() {
		t.Fatalf("lagging chain did not converge: len %d head %x, want len 8 head %x",
			lagging.Len(), lagging.Head(), full.Head())
	}
	if err := lagging.Verify(); err != nil {
		t.Fatalf("caught-up chain fails verification: %v", err)
	}
	// A second sync is a no-op.
	if added, err := lagging.Sync(chainSource{full}); err != nil || added != 0 {
		t.Fatalf("idempotent sync added %d entries, err %v", added, err)
	}
}

// TestCatchupSkipsFailedRounds exercises round-number gaps (DC-net
// rounds that failed produce no beacon entry).
func TestCatchupSkipsFailedRounds(t *testing.T) {
	kps, pubs := testServers(t, 2)
	var gid [32]byte
	copy(gid[:], "beacon-gap-group----------------")
	genesis := GenesisValue(gid)
	full := NewChain(crypto.P256(), pubs, genesis)
	lagging := NewChain(crypto.P256(), pubs, genesis)

	for _, r := range []uint64{0, 1, 4, 7, 9} { // rounds 2,3,5,6,8 failed
		runRound(t, kps, pubs, r, full)
	}
	if added, err := lagging.Sync(chainSource{full}); err != nil || added != 5 {
		t.Fatalf("sync over gaps added %d, err %v", added, err)
	}
	if err := lagging.Verify(); err != nil {
		t.Fatal(err)
	}
}

// chainSource adapts a local chain as a Source for sync tests.
type chainSource struct{ c *Chain }

func (s chainSource) Latest() (*Entry, error) {
	if e := s.c.Latest(); e != nil {
		return e, nil
	}
	return nil, ErrNotFound
}

func (s chainSource) From(round uint64) (*Entry, error) {
	if e := s.c.From(round); e != nil {
		return e, nil
	}
	return nil, ErrNotFound
}

func TestTamperingDetected(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-tamper-group-------------")

	build := func() *Chain {
		chain := NewChain(crypto.P256(), pubs, GenesisValue(gid))
		for r := uint64(0); r < 5; r++ {
			runRound(t, kps, pubs, r, chain)
		}
		return chain
	}

	cases := []struct {
		name   string
		tamper func(c *Chain)
	}{
		{"share bit flip", func(c *Chain) { c.Get(2).Shares[1][3] ^= 0x40 }},
		{"share swap across rounds", func(c *Chain) {
			c.Get(2).Shares[0], c.Get(3).Shares[0] = c.Get(3).Shares[0], c.Get(2).Shares[0]
		}},
		{"value rewrite", func(c *Chain) { c.Get(4).Value[0] ^= 1 }},
		{"chain link rewrite", func(c *Chain) { c.Get(3).Prev[5] ^= 0x80 }},
		{"round renumber", func(c *Chain) { c.Get(1).Round = 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chain := build()
			if err := chain.Verify(); err != nil {
				t.Fatalf("pristine chain fails: %v", err)
			}
			tc.tamper(chain)
			if err := chain.Verify(); err == nil {
				t.Fatal("tampered chain passed verification")
			}
		})
	}
}

func TestCommitRevealBinding(t *testing.T) {
	kps, pubs := testServers(t, 3)
	g := crypto.P256()
	var prev Value
	copy(prev[:], crypto.Hash("test-prev"))

	share0, _ := MakeShare(kps[0], 7, prev, nil)
	share0b, _ := MakeShare(kps[0], 7, prev, nil) // same message, fresh nonce

	r := NewRound(g, pubs, 7, prev)
	if err := r.Reveal(0, share0); err == nil {
		t.Fatal("reveal before commit accepted")
	}
	if err := r.Commit(0, CommitShare(share0)); err != nil {
		t.Fatal(err)
	}
	// Conflicting re-commit is equivocation.
	if err := r.Commit(0, CommitShare(share0b)); err == nil {
		t.Fatal("conflicting commitment accepted")
	}
	// Revealing a different (even validly signed) share breaks binding.
	if err := r.Reveal(0, share0b); err == nil {
		t.Fatal("share not matching commitment accepted")
	}
	if err := r.Reveal(0, share0); err != nil {
		t.Fatal(err)
	}
	// A share signed by the wrong server fails verification.
	wrong, _ := MakeShare(kps[2], 7, prev, nil)
	if err := r.Commit(1, CommitShare(wrong)); err != nil {
		t.Fatal(err)
	}
	if err := r.Reveal(1, wrong); err == nil {
		t.Fatal("share signed by wrong server accepted")
	}
	// A share over the wrong prev value fails too.
	var otherPrev Value
	copy(otherPrev[:], crypto.Hash("other-prev"))
	stale, _ := MakeShare(kps[1], 7, otherPrev, nil)
	r2 := NewRound(g, pubs, 7, prev)
	if err := r2.Commit(1, CommitShare(stale)); err != nil {
		t.Fatal(err)
	}
	if err := r2.Reveal(1, stale); err == nil {
		t.Fatal("share chained from wrong prev accepted")
	}
}

func TestFileStorePersists(t *testing.T) {
	kps, pubs := testServers(t, 2)
	var gid [32]byte
	copy(gid[:], "beacon-file-group---------------")
	genesis := GenesisValue(gid)
	path := filepath.Join(t.TempDir(), "chain.jsonl")

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChainWithStore(crypto.P256(), pubs, genesis, fs)
	for r := uint64(0); r < 4; r++ {
		runRound(t, kps, pubs, r, chain)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	reloaded := NewChainWithStore(crypto.P256(), pubs, genesis, fs2)
	if reloaded.Len() != 4 {
		t.Fatalf("reloaded %d entries, want 4", reloaded.Len())
	}
	if err := reloaded.Verify(); err != nil {
		t.Fatalf("reloaded chain fails verification: %v", err)
	}
	if reloaded.Head() != chain.Head() {
		t.Fatal("reloaded head differs")
	}
	// The reloaded store keeps accepting appends.
	runRound(t, kps, pubs, 4, reloaded)
	if reloaded.Len() != 5 {
		t.Fatal("append after reload failed")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-http-group---------------")
	genesis := GenesisValue(gid)
	serving := NewChain(crypto.P256(), pubs, genesis)
	for r := uint64(0); r < 6; r++ {
		runRound(t, kps, pubs, r, serving)
	}

	var requests atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		Handler(serving).ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counted)
	defer ts.Close()
	src := &HTTPSource{URL: ts.URL, Client: ts.Client()}

	latest, err := src.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Round != 5 || latest.Value != serving.Head() {
		t.Fatalf("latest = round %d, want 5", latest.Round)
	}
	e3, err := src.Entry(3)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Round != 3 || e3.Value != serving.Get(3).Value {
		t.Fatal("exact-round fetch mismatch")
	}
	if _, err := src.Entry(99); err != ErrNotFound {
		t.Fatalf("missing round: got %v, want ErrNotFound", err)
	}

	// A fresh client verifies the whole chain over HTTP.
	client := NewChain(crypto.P256(), pubs, genesis)
	requests.Store(0)
	added, err := client.Sync(src)
	if err != nil {
		t.Fatal(err)
	}
	if added != 6 || client.Head() != serving.Head() {
		t.Fatalf("HTTP sync added %d entries, head match %v", added, client.Head() == serving.Head())
	}
	if err := client.Verify(); err != nil {
		t.Fatal(err)
	}
	// Batch catchup: 6 entries must not cost 6 round trips (one
	// /beacon/latest plus one /beacon/range page suffices).
	if n := requests.Load(); n > 3 {
		t.Fatalf("sync of 6 entries used %d HTTP requests", n)
	}
}

// TestFileStoreHealsTornFinalLine simulates a crash mid-append: a
// partial JSON line at EOF is truncated away on reopen and the valid
// prefix keeps working; garbage mid-file stays a hard error.
func TestFileStoreHealsTornFinalLine(t *testing.T) {
	kps, pubs := testServers(t, 2)
	var gid [32]byte
	copy(gid[:], "beacon-torn-group---------------")
	genesis := GenesisValue(gid)
	path := filepath.Join(t.TempDir(), "chain.jsonl")

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChainWithStore(crypto.P256(), pubs, genesis, fs)
	for r := uint64(0); r < 3; r++ {
		runRound(t, kps, pubs, r, chain)
	}
	fs.Close()

	// Torn write: a partial line at EOF.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"round":3,"prev":"00`)
	f.Close()

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("torn final line not healed: %v", err)
	}
	healed := NewChainWithStore(crypto.P256(), pubs, genesis, fs2)
	if healed.Len() != 3 {
		t.Fatalf("healed chain has %d entries, want 3", healed.Len())
	}
	if err := healed.Verify(); err != nil {
		t.Fatal(err)
	}
	// The file keeps accepting appends after the truncation.
	runRound(t, kps, pubs, 3, healed)
	fs2.Close()
	fs3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs3.Close()
	if fs3.Len() != 4 {
		t.Fatalf("post-heal append not durable: %d entries", fs3.Len())
	}

	// Mid-file garbage is NOT healed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte("{garbage}\n"), data...)
	bad := filepath.Join(filepath.Dir(path), "bad.jsonl")
	if err := os.WriteFile(bad, corrupt, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(bad); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

// TestFileStoreHealsMissingFinalNewline covers the crash window
// between an entry's JSON bytes and its newline: the valid entry is
// kept, the newline restored, and the next append lands on its own
// line instead of concatenating.
func TestFileStoreHealsMissingFinalNewline(t *testing.T) {
	kps, pubs := testServers(t, 2)
	var gid [32]byte
	copy(gid[:], "beacon-nonl-group---------------")
	genesis := GenesisValue(gid)
	path := filepath.Join(t.TempDir(), "chain.jsonl")

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChainWithStore(crypto.P256(), pubs, genesis, fs)
	for r := uint64(0); r < 2; r++ {
		runRound(t, kps, pubs, r, chain)
	}
	fs.Close()

	// Chop the trailing newline.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("fixture: no trailing newline to chop")
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o600); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Len() != 2 {
		t.Fatalf("reopened with %d entries, want 2", fs2.Len())
	}
	healed := NewChainWithStore(crypto.P256(), pubs, genesis, fs2)
	runRound(t, kps, pubs, 2, healed)
	fs2.Close()

	// All three entries must survive another reopen intact.
	fs3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs3.Close()
	final := NewChainWithStore(crypto.P256(), pubs, genesis, fs3)
	if final.Len() != 3 {
		t.Fatalf("final chain has %d entries, want 3", final.Len())
	}
	if err := final.Verify(); err != nil {
		t.Fatal(err)
	}
}
