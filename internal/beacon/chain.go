package beacon

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dissent/internal/crypto"
)

// ErrNotFound reports a beacon round with no stored entry.
var ErrNotFound = errors.New("beacon: entry not found")

// Store is the persistence contract for chain entries. Implementations
// must return entries in increasing round order from From and must not
// mutate stored entries. The in-memory MemStore is the default; see
// FileStore for durable persistence.
type Store interface {
	// Append stores a new entry. The chain guarantees entries arrive
	// in strictly increasing round order.
	Append(e *Entry) error
	// Get returns the entry for an exact round.
	Get(round uint64) (*Entry, bool)
	// From returns the earliest entry with Round >= round.
	From(round uint64) (*Entry, bool)
	// Latest returns the highest-round entry.
	Latest() (*Entry, bool)
	// Len returns the number of stored entries.
	Len() int
}

// Pruner is an optional Store extension for checkpoint compaction:
// a store that can drop a verified prefix of the chain.
type Pruner interface {
	// DropBefore removes every entry with Round < round.
	DropBefore(round uint64) error
}

// Anchored is an optional Store extension that persists the
// checkpoint anchor — the round of the first retained entry after a
// compaction — so a reopened chain remembers where Verify roots.
type Anchored interface {
	// AnchorRound returns the persisted anchor, if any.
	AnchorRound() (uint64, bool)
	// SetAnchor durably records the anchor.
	SetAnchor(round uint64) error
}

// MemStore is the default in-memory Store: a round-ordered slice.
type MemStore struct {
	entries []*Entry
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(e *Entry) error {
	if n := len(s.entries); n > 0 && e.Round <= s.entries[n-1].Round {
		return fmt.Errorf("beacon: append round %d after round %d", e.Round, s.entries[n-1].Round)
	}
	s.entries = append(s.entries, e)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(round uint64) (*Entry, bool) {
	if e, ok := s.From(round); ok && e.Round == round {
		return e, true
	}
	return nil, false
}

// From implements Store.
func (s *MemStore) From(round uint64) (*Entry, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Round >= round })
	if i == len(s.entries) {
		return nil, false
	}
	return s.entries[i], true
}

// Latest implements Store.
func (s *MemStore) Latest() (*Entry, bool) {
	if len(s.entries) == 0 {
		return nil, false
	}
	return s.entries[len(s.entries)-1], true
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.entries) }

// DropBefore implements Pruner.
func (s *MemStore) DropBefore(round uint64) error {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Round >= round })
	s.entries = append(s.entries[:0:0], s.entries[i:]...)
	return nil
}

// Chain is a node's replica of the beacon chain: the verification
// context (group, server keys, genesis) plus a Store. All methods are
// safe for concurrent use, so an HTTP serving goroutine can read while
// the protocol engine appends.
type Chain struct {
	g       crypto.Group
	pubs    []crypto.Element
	genesis Value

	mu    sync.RWMutex
	store Store

	// anchor, when anchored, is the round of the chain's checkpoint:
	// the first retained entry after a prefix compaction (or a
	// BootstrapFrom). Verify roots trust at the anchor entry — its
	// internal consistency (m share signatures, value recompute) is
	// checked but its Prev link points at a discarded prefix and is
	// trusted — and verifies linkage onward from there.
	anchor   uint64
	anchored bool
}

// NewChain creates a chain over an empty in-memory store.
func NewChain(g crypto.Group, serverPubs []crypto.Element, genesis Value) *Chain {
	return NewChainWithStore(g, serverPubs, genesis, NewMemStore())
}

// NewChainWithStore creates a chain over the given store. Entries
// already present (e.g. loaded by a FileStore) are trusted as-is;
// call Verify to re-check them.
func NewChainWithStore(g crypto.Group, serverPubs []crypto.Element, genesis Value, store Store) *Chain {
	c := &Chain{g: g, pubs: serverPubs, genesis: genesis, store: store}
	if a, ok := store.(Anchored); ok {
		if r, ok := a.AnchorRound(); ok {
			c.anchor, c.anchored = r, true
		}
	}
	return c
}

// Genesis returns the chain's genesis value.
func (c *Chain) Genesis() Value {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.genesis
}

// Rebind replaces the chain's genesis value. It is legal only while
// the chain is empty: nodes create their chain replica at construction
// under the group-wide GenesisValue and rebind it to the
// SessionGenesis the moment the slot schedule certifies, before any
// entry exists. Rebinding a non-empty chain would orphan its entries,
// so it is refused.
func (c *Chain) Rebind(genesis Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.store.Len(); n > 0 {
		return fmt.Errorf("beacon: rebind of a chain with %d entries", n)
	}
	c.genesis = genesis
	c.anchored = false
	return nil
}

// RebindTrusted replaces the genesis value even when entries exist.
// It exists for the restart path: a server reopening its durable
// store holds entries it verified before persisting them, and the
// resumed session's genesis is recomputed from the restored snapshot's
// certified schedule digest. Trusting one's own disk here matches the
// FileStore contract ("entries already present are trusted as-is");
// Verify still re-checks lineage from the new genesis, or from the
// checkpoint anchor when the prefix was compacted away.
func (c *Chain) RebindTrusted(genesis Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.genesis = genesis
}

// ResetTrusted drops every stored entry and rebinds the chain to a new
// genesis — the established-replica re-sync path: a client adopting a
// certified session snapshot discards its (possibly diverged) chain
// replica and resumes appending from the snapshot's head value. The
// store must support pruning; both MemStore and KVStore do.
func (c *Chain) ResetTrusted(genesis Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if latest, ok := c.store.Latest(); ok {
		p, okp := c.store.(Pruner)
		if !okp {
			return fmt.Errorf("beacon: store %T cannot reset", c.store)
		}
		if err := p.DropBefore(latest.Round + 1); err != nil {
			return err
		}
	}
	c.genesis = genesis
	c.anchored = false
	return nil
}

// Anchor returns the checkpoint anchor round, if the chain has one.
func (c *Chain) Anchor() (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.anchor, c.anchored
}

// BootstrapFrom seeds an empty chain with a checkpoint entry obtained
// from a peer, so a node can join (or catch up to) a long-lived chain
// without replaying every entry from genesis. The entry's internal
// consistency — all m share signatures over (prev, round) and the
// value recomputation — is verified, so at least one honest server
// endorsed its lineage; its Prev link itself is trusted as the
// checkpoint boundary. The entry becomes the chain's anchor.
func (c *Chain) BootstrapFrom(e *Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e == nil {
		return errors.New("beacon: nil checkpoint entry")
	}
	if n := c.store.Len(); n > 0 {
		return fmt.Errorf("beacon: bootstrap of a chain with %d entries", n)
	}
	if err := VerifyEntry(c.g, c.pubs, e.Prev, e); err != nil {
		return fmt.Errorf("beacon: checkpoint entry %d: %w", e.Round, err)
	}
	if err := c.store.Append(e); err != nil {
		return err
	}
	return c.setAnchorLocked(e.Round)
}

// CompactBefore drops every entry with Round < round from the store
// (which must implement Pruner) and anchors verification at the first
// retained entry. A caller checkpoints a long chain this way — e.g.
// retaining the last few epochs — so neither storage nor Verify cost
// grows with session lifetime. Compaction never drops the newest
// entry: an empty suffix is refused.
func (c *Chain) CompactBefore(round uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.store.(Pruner)
	if !ok {
		return fmt.Errorf("beacon: store %T cannot compact", c.store)
	}
	first, ok := c.store.From(round)
	if !ok {
		return fmt.Errorf("beacon: compacting before round %d would empty the chain", round)
	}
	if err := p.DropBefore(first.Round); err != nil {
		return err
	}
	return c.setAnchorLocked(first.Round)
}

// setAnchorLocked records the anchor in memory and, when the store
// supports it, durably.
func (c *Chain) setAnchorLocked(round uint64) error {
	c.anchor, c.anchored = round, true
	if a, ok := c.store.(Anchored); ok {
		return a.SetAnchor(round)
	}
	return nil
}

// NumServers returns the number of share contributors per entry.
func (c *Chain) NumServers() int { return len(c.pubs) }

// Head returns the value the next entry must chain from: the latest
// entry's value, or the genesis value for an empty chain.
func (c *Chain) Head() Value {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headLocked()
}

func (c *Chain) headLocked() Value {
	if e, ok := c.store.Latest(); ok {
		return e.Value
	}
	return c.genesis
}

// Latest returns the newest entry, or nil for an empty chain.
func (c *Chain) Latest() *Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.store.Latest(); ok {
		return e
	}
	return nil
}

// Get returns the entry for an exact round, or nil.
func (c *Chain) Get(round uint64) *Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.store.Get(round); ok {
		return e
	}
	return nil
}

// From returns the earliest entry with Round >= round, or nil.
func (c *Chain) From(round uint64) *Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e, ok := c.store.From(round); ok {
		return e
	}
	return nil
}

// Len returns the number of chain entries.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.store.Len()
}

// Append verifies e against the current head and stores it. The entry
// must chain from the head value and carry a round beyond the latest.
func (c *Chain) Append(e *Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if latest, ok := c.store.Latest(); ok && e != nil && e.Round <= latest.Round {
		return fmt.Errorf("beacon: append round %d at or before head round %d", e.Round, latest.Round)
	}
	if err := VerifyEntry(c.g, c.pubs, c.headLocked(), e); err != nil {
		return err
	}
	return c.store.Append(e)
}

// AppendTrusted stores an entry whose share authenticity the caller
// has already established through a stronger channel — in
// internal/core, all m servers' certification signatures cover the
// entry's chained value, and one of the m is honest by assumption.
// Only the chain linkage (round order, prev link, value recompute) is
// checked; the m per-share Schnorr verifications of Append are
// skipped, halving per-round client signature work.
func (c *Chain) AppendTrusted(e *Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e == nil {
		return errors.New("beacon: nil entry")
	}
	if latest, ok := c.store.Latest(); ok && e.Round <= latest.Round {
		return fmt.Errorf("beacon: append round %d at or before head round %d", e.Round, latest.Round)
	}
	if head := c.headLocked(); e.Prev != head {
		return fmt.Errorf("beacon: entry %d chains from %x, want %x", e.Round, e.Prev[:8], head[:8])
	}
	if len(e.Shares) != len(c.pubs) {
		return fmt.Errorf("beacon: entry %d has %d shares, want %d", e.Round, len(e.Shares), len(c.pubs))
	}
	if e.Value != computeValue(e.Prev, e.Round, e.Shares) {
		return fmt.Errorf("beacon: entry %d value mismatch", e.Round)
	}
	return c.store.Append(e)
}

// AppendShares builds, verifies, and appends the entry for round from
// a complete share set, returning the stored entry.
func (c *Chain) AppendShares(round uint64, shares [][]byte) (*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if latest, ok := c.store.Latest(); ok && round <= latest.Round {
		return nil, fmt.Errorf("beacon: append round %d at or before head round %d", round, latest.Round)
	}
	e := NewEntry(round, c.headLocked(), shares)
	if err := VerifyEntry(c.g, c.pubs, e.Prev, e); err != nil {
		return nil, err
	}
	if err := c.store.Append(e); err != nil {
		return nil, err
	}
	return e, nil
}

// Verify re-checks the entire retained chain: every link, every
// share. It detects any after-the-fact tampering with stored entries.
// On an unanchored chain verification starts at genesis; on a
// checkpointed chain it roots at the anchor entry, whose internal
// consistency is checked but whose Prev link (into the compacted-away
// prefix) is trusted.
func (c *Chain) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	prev := c.genesis
	next := uint64(0)
	if c.anchored {
		e, ok := c.store.Get(c.anchor)
		if !ok {
			return fmt.Errorf("beacon: anchor entry %d missing", c.anchor)
		}
		if err := VerifyEntry(c.g, c.pubs, e.Prev, e); err != nil {
			return fmt.Errorf("beacon: anchor entry %d: %w", c.anchor, err)
		}
		prev = e.Value
		next = e.Round + 1
	}
	for {
		e, ok := c.store.From(next)
		if !ok {
			return nil
		}
		if err := VerifyEntry(c.g, c.pubs, prev, e); err != nil {
			return err
		}
		prev = e.Value
		next = e.Round + 1
	}
}

// Source supplies remote chain entries for catchup. The HTTP client in
// httpapi.go implements it against cmd/dissentd's beacon endpoints.
type Source interface {
	// Latest returns the source's newest entry, or ErrNotFound when
	// the source chain is empty.
	Latest() (*Entry, error)
	// From returns the source's earliest entry with Round >= round, or
	// ErrNotFound when none exists.
	From(round uint64) (*Entry, error)
}

// BatchSource is an optional Source extension delivering a page of
// entries per call. Sync prefers it, turning catchup from one round
// trip per entry into one per page — the difference between 10^6 and
// ~4000 requests when catching up from round 10^6.
type BatchSource interface {
	Source
	// Range returns up to max entries with Round >= from, in
	// increasing round order. An empty slice means no entries remain.
	Range(from uint64, max int) ([]*Entry, error)
}

// syncPageSize bounds entries fetched per BatchSource round trip.
const syncPageSize = 256

// RangeFrom returns up to max stored entries with Round >= round, in
// increasing round order (the serving side of BatchSource).
func (c *Chain) RangeFrom(round uint64, max int) []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Entry
	for len(out) < max {
		e, ok := c.store.From(round)
		if !ok {
			break
		}
		out = append(out, e)
		round = e.Round + 1
	}
	return out
}

// Sync catches this chain up to src: entries past the local head are
// fetched in order, verified, and appended. It returns the number of
// entries added. A node that missed any number of rounds converges to
// the source's head as long as the source is honest; a tampered source
// entry fails verification and aborts the sync.
func (c *Chain) Sync(src Source) (int, error) {
	remote, err := src.Latest()
	if errors.Is(err, ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	batch, _ := src.(BatchSource)
	added := 0
	for {
		next := uint64(0)
		if latest := c.Latest(); latest != nil {
			if latest.Round >= remote.Round {
				return added, nil
			}
			next = latest.Round + 1
		}
		var entries []*Entry
		if batch != nil {
			page, err := batch.Range(next, syncPageSize)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return added, err
			}
			entries = page
		} else {
			e, err := src.From(next)
			if errors.Is(err, ErrNotFound) {
				return added, nil
			}
			if err != nil {
				return added, err
			}
			entries = []*Entry{e}
		}
		if len(entries) == 0 {
			return added, nil
		}
		for _, e := range entries {
			if err := c.Append(e); err != nil {
				return added, fmt.Errorf("beacon: sync round %d: %w", e.Round, err)
			}
			added++
		}
	}
}
