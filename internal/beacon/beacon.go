// Package beacon implements an anytrust randomness beacon for Dissent:
// a publicly verifiable, unbiasable source of per-round randomness
// driving slot-schedule rotation, shuffle challenges, and epoch churn.
//
// Each beacon round, every one of the m anytrust servers produces a
// share: a Schnorr signature over the previous beacon value and the
// round number. Shares are exchanged commit-then-reveal — a server
// first broadcasts H(share) and reveals the share only after seeing
// every commitment — so no server can choose its share as a function
// of the others'. The round's output chains drand-style:
//
//	value_r = H(prev_value || r || share_0 || ... || share_{m-1})
//
// Because a Schnorr signature is unforgeable, a share cannot be
// computed without the server's private key, and because of the
// commit–reveal exchange, the combined value is unpredictable and
// unbiasable as long as at least one server is honest — the same
// anytrust assumption the rest of Dissent already makes (§3.1 of the
// paper). Anyone holding the group definition can verify a chain from
// its genesis value with public keys alone.
//
// The package is transport-agnostic: Round drives one commit–reveal
// exchange, Chain stores and verifies the resulting entries (with
// pluggable persistence), Sync catches a node up over any Source, and
// httpapi.go provides the HTTP surface cmd/dissentd mounts.
package beacon

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"dissent/internal/crypto"
)

// ValueLen is the byte length of beacon values (SHA-256 output).
const ValueLen = 32

// Value is one beacon output.
type Value = [ValueLen]byte

// Domain strings for the beacon's hash and signature contexts.
const (
	shareDomain   = "dissent/beacon-share"
	commitDomain  = "dissent/beacon-share-commit"
	valueDomain   = "dissent/beacon-value"
	genesisDomain = "dissent/beacon-genesis"
)

// GenesisValue derives a group's beacon genesis from its
// self-certifying group ID, so independent nodes agree on round-0
// input without communication — external verifiers need nothing
// beyond group.json.
//
// This group-wide genesis is only the chain's *pre-session* anchor:
// once a session's slot schedule certifies, nodes rebind their (still
// empty) chains to SessionGenesis, which folds the schedule
// certificate digest into the genesis. Trusted-bootstrap harnesses,
// which certify no schedule, keep this value.
func GenesisValue(groupID [32]byte) Value {
	var v Value
	copy(v[:], crypto.Hash(genesisDomain, groupID[:]))
	return v
}

// SessionGenesis binds a chain's genesis to one protocol session: the
// group ID plus the digest of the session's schedule certificate (the
// shuffled slot-key list and every server's signature over it). DC-net
// round numbers restart with each session, so without this binding an
// archived previous-session chain would verify identically to the live
// one; with it, a verifier that authenticates the schedule certificate
// (its signatures check against group.json alone) rejects any chain
// grown under a different session's certificate.
func SessionGenesis(groupID [32]byte, certDigest [32]byte) Value {
	var v Value
	copy(v[:], crypto.Hash(genesisDomain, groupID[:], certDigest[:]))
	return v
}

// shareMessage is the byte string a share signs: the previous beacon
// value chained with the round number.
func shareMessage(prev Value, round uint64) []byte {
	return crypto.Hash("dissent/beacon-share-msg", prev[:], crypto.HashUint64(round))
}

// MakeShare produces this server's share for a beacon round: a Schnorr
// signature, under its identity key, over the previous value and round.
func MakeShare(kp *crypto.KeyPair, round uint64, prev Value, rand io.Reader) ([]byte, error) {
	sig, err := kp.Sign(shareDomain, shareMessage(prev, round), rand)
	if err != nil {
		return nil, fmt.Errorf("beacon: share for round %d: %w", round, err)
	}
	return crypto.EncodeSignature(kp.Group, sig), nil
}

// CommitShare returns the binding commitment a server broadcasts
// before revealing its share.
func CommitShare(share []byte) []byte {
	return crypto.Hash(commitDomain, share)
}

// VerifyShare checks that share is a valid signature by pub over the
// chained (prev, round) message.
func VerifyShare(g crypto.Group, pub crypto.Element, round uint64, prev Value, share []byte) error {
	sig, err := crypto.DecodeSignature(g, share)
	if err != nil {
		return fmt.Errorf("beacon: round %d share: %w", round, err)
	}
	if err := crypto.Verify(g, pub, shareDomain, shareMessage(prev, round), sig); err != nil {
		return fmt.Errorf("beacon: round %d share: %w", round, err)
	}
	return nil
}

// Entry is one link of the beacon chain: the round number, the
// previous entry's value, every server's share, and the chained output.
type Entry struct {
	Round  uint64
	Prev   Value
	Value  Value
	Shares [][]byte // one per server, in server-index order
}

// computeValue chains the round output from its inputs.
func computeValue(prev Value, round uint64, shares [][]byte) Value {
	parts := make([][]byte, 0, len(shares)+2)
	parts = append(parts, prev[:], crypto.HashUint64(round))
	parts = append(parts, shares...)
	var v Value
	copy(v[:], crypto.Hash(valueDomain, parts...))
	return v
}

// NewEntry assembles a chain entry from a complete share set. It does
// not verify the shares; see VerifyEntry.
func NewEntry(round uint64, prev Value, shares [][]byte) *Entry {
	cp := make([][]byte, len(shares))
	for i, s := range shares {
		cp[i] = append([]byte(nil), s...)
	}
	return &Entry{Round: round, Prev: prev, Value: computeValue(prev, round, cp), Shares: cp}
}

// VerifyEntry fully verifies one entry against the chain value it
// claims to extend: exactly one share per server, every share a valid
// signature over (prev, round), the declared Prev matching the actual
// predecessor, and the output value correctly chained. Tampering with
// any share, the round, Prev, or Value fails this check.
func VerifyEntry(g crypto.Group, serverPubs []crypto.Element, prev Value, e *Entry) error {
	if e == nil {
		return errors.New("beacon: nil entry")
	}
	if e.Prev != prev {
		return fmt.Errorf("beacon: entry %d chains from %x, want %x", e.Round, e.Prev[:8], prev[:8])
	}
	if len(e.Shares) != len(serverPubs) {
		return fmt.Errorf("beacon: entry %d has %d shares, want %d", e.Round, len(e.Shares), len(serverPubs))
	}
	for i, pub := range serverPubs {
		if err := VerifyShare(g, pub, e.Round, prev, e.Shares[i]); err != nil {
			return fmt.Errorf("beacon: entry %d server %d: %w", e.Round, i, err)
		}
	}
	if want := computeValue(prev, e.Round, e.Shares); want != e.Value {
		return fmt.Errorf("beacon: entry %d value mismatch", e.Round)
	}
	return nil
}

// Round drives one commit–reveal beacon exchange at a participant.
// Commits must all be recorded before any reveal is accepted from this
// participant's perspective of honesty; Reveal checks each share
// against its commitment and signature.
type Round struct {
	g     crypto.Group
	pubs  []crypto.Element
	round uint64
	prev  Value

	commits [][]byte
	shares  [][]byte
	nShares int
}

// NewRound starts a beacon round chaining from prev.
func NewRound(g crypto.Group, serverPubs []crypto.Element, round uint64, prev Value) *Round {
	return &Round{
		g:       g,
		pubs:    serverPubs,
		round:   round,
		prev:    prev,
		commits: make([][]byte, len(serverPubs)),
		shares:  make([][]byte, len(serverPubs)),
	}
}

// Prev returns the chain value this round extends.
func (r *Round) Prev() Value { return r.prev }

// Commit records server i's share commitment. A conflicting duplicate
// is an error; an identical duplicate is idempotent.
func (r *Round) Commit(i int, commit []byte) error {
	if i < 0 || i >= len(r.pubs) {
		return fmt.Errorf("beacon: commit from out-of-range server %d", i)
	}
	if len(commit) == 0 {
		return fmt.Errorf("beacon: empty commitment from server %d", i)
	}
	if r.commits[i] != nil {
		if !bytes.Equal(r.commits[i], commit) {
			return fmt.Errorf("beacon: server %d equivocated its commitment", i)
		}
		return nil
	}
	r.commits[i] = append([]byte(nil), commit...)
	return nil
}

// Reveal records server i's share, checking it against the recorded
// commitment and verifying the signature.
func (r *Round) Reveal(i int, share []byte) error {
	if i < 0 || i >= len(r.pubs) {
		return fmt.Errorf("beacon: reveal from out-of-range server %d", i)
	}
	if r.commits[i] == nil {
		return fmt.Errorf("beacon: server %d revealed before committing", i)
	}
	if !bytes.Equal(CommitShare(share), r.commits[i]) {
		return fmt.Errorf("beacon: server %d share does not match its commitment", i)
	}
	if err := VerifyShare(r.g, r.pubs[i], r.round, r.prev, share); err != nil {
		return err
	}
	if r.shares[i] == nil {
		r.shares[i] = append([]byte(nil), share...)
		r.nShares++
	}
	return nil
}

// Complete reports whether every server has revealed a valid share.
func (r *Round) Complete() bool { return r.nShares == len(r.pubs) }

// Entry assembles the verified chain entry once the round is complete.
func (r *Round) Entry() (*Entry, error) {
	if !r.Complete() {
		return nil, fmt.Errorf("beacon: round %d has %d/%d shares", r.round, r.nShares, len(r.pubs))
	}
	return NewEntry(r.round, r.prev, r.shares), nil
}
