package beacon

import (
	"path/filepath"
	"testing"

	"dissent/internal/crypto"
	"dissent/internal/store"
)

func openKV(t *testing.T, path string) *store.KV {
	t.Helper()
	kv, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kv.Close() })
	return kv
}

func TestKVStoreChainSurvivesReopen(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-kvstore-group------------")
	genesis := GenesisValue(gid)
	path := filepath.Join(t.TempDir(), "state.kv")

	kv := openKV(t, path)
	st, err := NewKVStore(kv, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChainWithStore(crypto.P256(), pubs, genesis, st)
	for r := uint64(0); r < 6; r++ {
		runRound(t, kps, pubs, r, chain)
	}
	head := chain.Head()
	kv.Close()

	kv2 := openKV(t, path)
	st2, err := NewKVStore(kv2, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	chain2 := NewChainWithStore(crypto.P256(), pubs, genesis, st2)
	if chain2.Len() != 6 {
		t.Fatalf("reopened chain has %d entries, want 6", chain2.Len())
	}
	if chain2.Head() != head {
		t.Fatal("reopened chain head differs")
	}
	if err := chain2.Verify(); err != nil {
		t.Fatalf("reopened chain fails verification: %v", err)
	}
	// And it keeps extending.
	runRound(t, kps, pubs, 6, chain2)
}

func TestChainCheckpointCompaction(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-checkpoint-group---------")
	genesis := GenesisValue(gid)
	path := filepath.Join(t.TempDir(), "state.kv")

	kv := openKV(t, path)
	st, err := NewKVStore(kv, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChainWithStore(crypto.P256(), pubs, genesis, st)
	for r := uint64(0); r < 10; r++ {
		runRound(t, kps, pubs, r, chain)
	}
	if err := chain.CompactBefore(6); err != nil {
		t.Fatalf("CompactBefore: %v", err)
	}
	if chain.Len() != 4 {
		t.Fatalf("compacted chain has %d entries, want 4", chain.Len())
	}
	if a, ok := chain.Anchor(); !ok || a != 6 {
		t.Fatalf("anchor = %d,%v, want 6,true", a, ok)
	}
	if chain.Get(3) != nil {
		t.Fatal("compacted-away entry still readable")
	}
	if err := chain.Verify(); err != nil {
		t.Fatalf("anchored verification failed: %v", err)
	}
	// Compacting away the whole chain is refused.
	if err := chain.CompactBefore(100); err == nil {
		t.Fatal("CompactBefore past the head succeeded")
	}
	kv.Close()

	// The anchor survives reopen: verification still roots at round 6
	// instead of expecting genesis linkage.
	kv2 := openKV(t, path)
	st2, err := NewKVStore(kv2, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	chain2 := NewChainWithStore(crypto.P256(), pubs, genesis, st2)
	if a, ok := chain2.Anchor(); !ok || a != 6 {
		t.Fatalf("reopened anchor = %d,%v, want 6,true", a, ok)
	}
	if err := chain2.Verify(); err != nil {
		t.Fatalf("reopened anchored verification failed: %v", err)
	}
	// Tampering with a retained entry is still caught.
	raw, ok := kv2.Get("beacon", roundKey(8))
	if !ok {
		t.Fatal("entry 8 missing from KV")
	}
	tampered := []byte(string(raw))
	for i := range tampered {
		if tampered[i] == '7' {
			tampered[i] = '8'
			break
		} else if tampered[i] == '8' {
			tampered[i] = '7'
			break
		}
	}
	if err := kv2.Put("beacon", roundKey(8), tampered); err != nil {
		t.Fatal(err)
	}
	kv2.Close()
	kv3 := openKV(t, path)
	st3, err := NewKVStore(kv3, "beacon")
	if err != nil {
		t.Skipf("tampered entry no longer parses: %v", err)
	}
	chain3 := NewChainWithStore(crypto.P256(), pubs, genesis, st3)
	if err := chain3.Verify(); err == nil {
		t.Fatal("tampered chain passed verification")
	}
}

func TestBootstrapFromCheckpoint(t *testing.T) {
	kps, pubs := testServers(t, 3)
	var gid [32]byte
	copy(gid[:], "beacon-bootstrap-group----------")
	genesis := GenesisValue(gid)
	full := NewChain(crypto.P256(), pubs, genesis)
	for r := uint64(0); r < 10; r++ {
		runRound(t, kps, pubs, r, full)
	}

	// A node bootstraps at round 7's checkpoint entry and syncs only
	// the suffix — no genesis replay.
	fresh := NewChain(crypto.P256(), pubs, genesis)
	if err := fresh.BootstrapFrom(full.Get(7)); err != nil {
		t.Fatalf("BootstrapFrom: %v", err)
	}
	added, err := fresh.Sync(chainSource{full})
	if err != nil {
		t.Fatalf("sync after bootstrap: %v", err)
	}
	if added != 2 {
		t.Fatalf("sync added %d entries, want 2", added)
	}
	if fresh.Len() != 3 {
		t.Fatalf("bootstrapped chain has %d entries, want 3", fresh.Len())
	}
	if fresh.Head() != full.Head() {
		t.Fatal("bootstrapped chain head differs from source")
	}
	if err := fresh.Verify(); err != nil {
		t.Fatalf("bootstrapped chain fails verification: %v", err)
	}

	// A forged checkpoint entry (bad share signatures) is rejected.
	forged := *full.Get(7)
	forged.Shares = append([][]byte(nil), forged.Shares...)
	forged.Shares[0] = append([]byte(nil), forged.Shares[0]...)
	forged.Shares[0][len(forged.Shares[0])-1] ^= 1
	empty := NewChain(crypto.P256(), pubs, genesis)
	if err := empty.BootstrapFrom(&forged); err == nil {
		t.Fatal("forged checkpoint entry accepted")
	}
}
