package bench

import (
	"testing"
	"time"
)

func TestCalibrateSane(t *testing.T) {
	m := Calibrate()
	if m.ECBaseMul <= 0 || m.ECScalarMul <= 0 || m.ModExp <= 0 {
		t.Fatalf("non-positive op costs: %+v", m)
	}
	if m.AESBps < 1e6 {
		t.Errorf("AES throughput %v B/s implausibly low", m.AESBps)
	}
	// Ordering: a 2048-bit modexp must cost far more than a P-256 op.
	if m.ModExp < m.ECScalarMul {
		t.Errorf("modexp (%v) cheaper than EC scalar mult (%v)", m.ModExp, m.ECScalarMul)
	}
}

func TestShuffleTimeScalesLinearly(t *testing.T) {
	m := Calibrate()
	p := ShuffleParams{Servers: 4, Inputs: 100, Width: 1, Shadows: 8}
	t100 := ShuffleTime(ecCosts(m), p)
	p.Inputs = 200
	t200 := ShuffleTime(ecCosts(m), p)
	ratio := float64(t200) / float64(t100)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling N scaled time by %.2f, want ~2", ratio)
	}
}

func TestModPShuffleDwarfsKeyShuffle(t *testing.T) {
	// The Fig. 9 asymmetry: accusation shuffles (mod-p, wide vectors)
	// must cost far more than key shuffles (P-256, width 1).
	m := Calibrate()
	key := ShuffleTime(ecCosts(m), ShuffleParams{Servers: 24, Inputs: 500, Width: 1, Shadows: 16})
	blame := ShuffleTime(modpCosts(m), ShuffleParams{Servers: 24, Inputs: 500, Width: AccusationWidth(), Shadows: 16})
	if blame < 5*key {
		t.Errorf("blame shuffle (%v) not ≫ key shuffle (%v)", blame, key)
	}
}

func TestFig9RowsMonotone(t *testing.T) {
	rows := Fig9(DefaultFig9Config())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].KeyShuffle <= rows[i-1].KeyShuffle {
			t.Error("key shuffle time not increasing with N")
		}
		if rows[i].BlameShuffle <= rows[i-1].BlameShuffle {
			t.Error("blame shuffle time not increasing with N")
		}
	}
	// DC-net round is a negligible fraction of the shuffles at 1000
	// clients ("extremely efficient, accounting for a negligible
	// portion of total time in large groups").
	last := rows[len(rows)-1]
	if last.DCNetRound*10 > last.KeyShuffle {
		t.Errorf("DC-net round (%v) not ≪ key shuffle (%v) at N=1000",
			last.DCNetRound, last.KeyShuffle)
	}
}

func TestFig9ValidationAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("real shuffle validation is slow")
	}
	v, err := Fig9Validate(3, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, real, model time.Duration) {
		ratio := float64(real) / float64(model)
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%s: real %v vs model %v (ratio %.2f) outside 4x band",
				name, real, model, ratio)
		}
	}
	check("key shuffle", v.KeyShuffleReal, v.KeyShuffleModel)
	check("message shuffle", v.MsgShuffleReal, v.MsgShuffleModel)
}

func TestRunScalePointQuick(t *testing.T) {
	row, err := RunScalePoint(4, 16, Microblog(), DeterLab(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if row.Rounds < 2 {
		t.Fatalf("measured %d rounds", row.Rounds)
	}
	if row.Total <= 0 || row.Submit <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	// DeterLab floor: client latency alone is 50 ms one-way.
	if row.Total < 50*time.Millisecond {
		t.Errorf("round time %v below latency floor", row.Total)
	}
	if row.Total > 30*time.Second {
		t.Errorf("round time %v implausibly high for 16 clients", row.Total)
	}
}

func TestBulkScenarioCarries128KB(t *testing.T) {
	row, err := RunScalePoint(3, 8, DataSharing(), DeterLab(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 128 KB through 100/16 Mbit/s client uplink alone is ~170 ms.
	if row.Total < 150*time.Millisecond {
		t.Errorf("bulk round %v too fast to have carried 128KB", row.Total)
	}
}

func TestFig6Quick(t *testing.T) {
	res, err := Fig6(QuickFig6Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d policies", len(res))
	}
	byName := map[string]Fig6Result{}
	for _, r := range res {
		if len(r.Times) == 0 {
			t.Fatalf("policy %s produced no rounds", r.Policy.Name)
		}
		byName[r.Policy.Name] = r
	}
	// The early-cutoff policies must beat the wait-for-all baseline at
	// the median.
	base := byName["baseline-120s"]
	fast := byName["1.1x"]
	medBase := base.Times[len(base.Times)/2]
	medFast := fast.Times[len(fast.Times)/2]
	if medFast >= medBase {
		t.Errorf("1.1x median (%v) not below baseline median (%v)", medFast, medBase)
	}
	// Wider windows admit more stragglers.
	if byName["2.0x"].MissedFrac > byName["1.1x"].MissedFrac+1e-9 {
		t.Errorf("2.0x missed more clients (%.4f) than 1.1x (%.4f)",
			byName["2.0x"].MissedFrac, byName["1.1x"].MissedFrac)
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("browsing sim is slow")
	}
	res, err := Fig10(QuickFig10Config())
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]time.Duration{}
	for _, r := range res {
		if len(r.Stats.Times) == 0 {
			t.Fatalf("config %s produced no samples", r.Config)
		}
		means[r.Config] = r.Stats.Mean()
	}
	// The paper's ordering: direct ≪ tor ≤ dissent < dissent+tor.
	if !(means["direct"] < means["tor"]) {
		t.Errorf("direct (%v) not faster than tor (%v)", means["direct"], means["tor"])
	}
	if !(means["direct"] < means["dissent"]) {
		t.Errorf("direct (%v) not faster than dissent (%v)", means["direct"], means["dissent"])
	}
	if !(means["dissent"] < means["dissent+tor"]) {
		t.Errorf("dissent (%v) not faster than dissent+tor (%v)", means["dissent"], means["dissent+tor"])
	}
	if !(means["tor"] < means["dissent+tor"]) {
		t.Errorf("tor (%v) not faster than dissent+tor (%v)", means["tor"], means["dissent+tor"])
	}
}

func TestCDFShape(t *testing.T) {
	pts := CDF([]time.Duration{time.Second, 2 * time.Second, 4 * time.Second})
	if len(pts) != 3 {
		t.Fatal("wrong point count")
	}
	if pts[0][1] <= 0 || pts[2][1] != 1.0 {
		t.Errorf("CDF endpoints wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Error("CDF not monotone")
		}
	}
}
