package bench

import (
	"fmt"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/shuffle"
	"dissent/internal/simnet"
)

// Figure 9: time for each stage of a whole protocol run — key shuffle,
// one DC-net exchange, accusation (blame) shuffle, and blame
// evaluation — for 24–1000 clients over 24 servers with 128-byte
// messages.
//
// The shuffle stages are priced by the analytic operation-count model
// (see package comment): the real cut-and-choose mix at 1000 clients
// in the 2048-bit message group would run for hours of serial
// big-integer arithmetic, exactly the regime the paper reports (>1 h
// for its 1000-client accusation shuffle). Fig9Validate cross-checks
// the model against real executions at small N.

// Fig9Row is one client-count's stage breakdown.
type Fig9Row struct {
	Clients      int
	KeyShuffle   time.Duration
	DCNetRound   time.Duration
	BlameShuffle time.Duration
	BlameEval    time.Duration
}

// Fig9Config sizes the sweep.
type Fig9Config struct {
	Servers     int
	ClientSizes []int
	Shadows     int
	MsgBytes    int
}

// DefaultFig9Config matches the paper's sweep.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Servers:     24,
		ClientSizes: []int{24, 100, 500, 1000},
		Shadows:     16,
		MsgBytes:    128,
	}
}

// Fig9 evaluates the stage model across the sweep.
func Fig9(cfg Fig9Config) []Fig9Row {
	m := Calibrate()
	prof := DeterLab()
	rows := make([]Fig9Row, 0, len(cfg.ClientSizes))
	for _, n := range cfg.ClientSizes {
		roundBytes := (n+7)/8 + n*(cfg.MsgBytes+32) // request bits + open slots
		dc := DCNetParams{
			Servers:         cfg.Servers,
			Clients:         n,
			RoundBytes:      roundBytes,
			ClientLatency:   prof.ClientLatency,
			ServerLatency:   prof.ServerLatency,
			ServerBandwidth: prof.ServerBandwidth,
			ClientBandwidth: prof.ClientBandwidth,
		}
		rows = append(rows, Fig9Row{
			Clients: n,
			KeyShuffle: ShuffleTime(ecCosts(m), ShuffleParams{
				Servers: cfg.Servers, Inputs: n, Width: 1, Shadows: cfg.Shadows,
				ServerBandwidth: prof.ServerBandwidth, ServerLatency: prof.ServerLatency,
			}),
			DCNetRound: DCNetRoundTime(m, dc),
			BlameShuffle: ShuffleTime(modpCosts(m), ShuffleParams{
				Servers: cfg.Servers, Inputs: n, Width: AccusationWidth(), Shadows: cfg.Shadows,
				ServerBandwidth: prof.ServerBandwidth, ServerLatency: prof.ServerLatency,
			}),
			BlameEval: BlameEvalTime(m, dc),
		})
	}
	return rows
}

// Fig9Validation compares the analytic model against a real execution
// of the same shuffle at small scale.
type Fig9Validation struct {
	Servers, Clients int
	Shadows          int
	KeyShuffleReal   time.Duration
	KeyShuffleModel  time.Duration
	MsgShuffleReal   time.Duration
	MsgShuffleModel  time.Duration
}

// Fig9Validate runs a real key shuffle (P-256) and a real message
// shuffle (modp-512 scaled to modp-2048 cost by the calibration ratio)
// and reports model agreement. The real runs execute the actual
// shuffle.Run pipeline, including every proof and verification.
func Fig9Validate(servers, clients, shadows int) (Fig9Validation, error) {
	m := Calibrate()
	v := Fig9Validation{Servers: servers, Clients: clients, Shadows: shadows}

	// Real key shuffle on P-256.
	g := crypto.P256()
	srvKPs := make([]*crypto.KeyPair, servers)
	for i := range srvKPs {
		srvKPs[i], _ = crypto.GenerateKeyPair(g, nil)
	}
	keys := make([]crypto.Element, clients)
	for i := range keys {
		kp, _ := crypto.GenerateKeyPair(g, nil)
		keys[i] = kp.Public
	}
	t0 := time.Now()
	if _, err := shuffle.KeyShuffle(g, srvKPs, keys, shadows, nil); err != nil {
		return v, err
	}
	v.KeyShuffleReal = time.Since(t0)
	// The model charges only compute when bandwidth/latency are zero.
	v.KeyShuffleModel = ShuffleTime(ecCosts(m), ShuffleParams{
		Servers: servers, Inputs: clients, Width: 1, Shadows: shadows,
	})

	// Real message shuffle on the 2048-bit production group, kept small.
	mg := crypto.ModP2048()
	msrvKPs := make([]*crypto.KeyPair, servers)
	for i := range msrvKPs {
		kp, err := crypto.GenerateKeyPair(mg, nil)
		if err != nil {
			return v, err
		}
		msrvKPs[i] = kp
	}
	msgs := make([][]byte, clients)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("validation message %d", i))
	}
	t0 = time.Now()
	if _, err := shuffle.MessageShuffle(mg, msrvKPs, msgs, 1, shadows, nil); err != nil {
		return v, err
	}
	v.MsgShuffleReal = time.Since(t0)
	v.MsgShuffleModel = ShuffleTime(modpCosts(m), ShuffleParams{
		Servers: servers, Inputs: clients, Width: 1, Shadows: shadows,
	})
	return v, nil
}

var _ = simnet.Mbps // keep import if formulas change
