package bench

import (
	"fmt"
	"math/rand"
	"time"

	"dissent/internal/core"
	"dissent/internal/crypto"
	"dissent/internal/group"
	"dissent/internal/simnet"
)

// Profile is a testbed topology from the paper's evaluation.
type Profile struct {
	Name string
	// ServerLatency is the one-way server–server delay.
	ServerLatency time.Duration
	// ClientLatency is the one-way client–server delay (base; PlanetLab
	// adds per-client jitter).
	ClientLatency time.Duration
	ClientJitter  time.Duration
	// Bandwidths in bytes/sec (0 = infinite).
	ServerBandwidth float64
	ClientBandwidth float64
	// Delays injects per-round client submission delays (nil = none).
	Delays *simnet.Trace
}

// DeterLab reproduces §5.2's controlled topology: servers on a
// 100 Mbit/s network with 10 ms latency; clients on 100 Mbit/s uplinks
// (shared by 16 client processes per machine) with 50 ms latency.
func DeterLab() Profile {
	return Profile{
		Name:            "DeterLab",
		ServerLatency:   10 * time.Millisecond,
		ClientLatency:   50 * time.Millisecond,
		ServerBandwidth: simnet.Mbps(100),
		ClientBandwidth: simnet.Mbps(100.0 / 16),
	}
}

// PlanetLab reproduces the wide-area deployment: 16 EC2 servers plus a
// control server ~14 ms apart, public-Internet clients with jittery
// latency and heavy-tailed submission delays.
func PlanetLab(rounds, clients int, seed int64) Profile {
	return Profile{
		Name:            "PlanetLab",
		ServerLatency:   7 * time.Millisecond, // ~14 ms RTT
		ClientLatency:   45 * time.Millisecond,
		ClientJitter:    60 * time.Millisecond,
		ServerBandwidth: simnet.Mbps(100),
		ClientBandwidth: simnet.Mbps(10),
		Delays:          simnet.GenerateTrace(simnet.PlanetLabModel(), rounds, clients, seed),
	}
}

// EmulabWiFi reproduces §5.4's simulated wireless LAN: a 24 Mbit/s
// medium with 10 ms hops through a central switch (~20 ms node to
// node). The medium is shared — roughly 30 stations contend for the
// same 24 Mbit/s — which we fold into a per-node access rate of about
// a sixth of the nominal link (typical CSMA efficiency under load).
func EmulabWiFi() Profile {
	return Profile{
		Name:            "EmulabWiFi",
		ServerLatency:   20 * time.Millisecond,
		ClientLatency:   20 * time.Millisecond,
		ServerBandwidth: simnet.Mbps(24.0 / 6),
		ClientBandwidth: simnet.Mbps(24.0 / 6),
	}
}

// SessionConfig sizes one simulated deployment.
type SessionConfig struct {
	Servers int
	Clients int
	Profile Profile
	// SlotLen is the DC-net default open-slot length.
	SlotLen int
	// MaxSlotLen caps slot growth (0 = policy default).
	MaxSlotLen int
	// Sign enables per-message signatures (off for very large runs;
	// their cost is charged analytically via the Compute hook).
	Sign bool
	// MeasureCompute charges real crypto execution time as virtual
	// time (scale 1.0). Zero disables.
	MeasureCompute float64
	// Policy overrides (zero values keep defaults).
	Alpha           float64
	AlphaSet        bool
	WindowThreshold float64
	WindowMult      float64
	HardTimeout     time.Duration
	WindowMin       time.Duration
	Seed            int64
	// PipelineDepth is the engines' round pipeline depth (0 or 1 =
	// serial; 2 overlaps round r+1's window with round r's certify).
	PipelineDepth int
}

// Session is a bootstrapped simulated deployment ready to run rounds.
type Session struct {
	Def     *group.Definition
	Servers []*core.Server
	Clients []*core.Client
	H       *core.Harness
	Profile Profile

	clientLat []time.Duration // per-client latency (jittered)
	serverIDs map[group.NodeID]bool
	clientIdx map[group.NodeID]int
}

// BuildSession constructs engines, topology, and harness.
func BuildSession(cfg SessionConfig) (*Session, error) {
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test() // blame group unused by round benches
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	serverKPs := make([]*crypto.KeyPair, cfg.Servers)
	serverMsgKPs := make([]*crypto.KeyPair, cfg.Servers)
	serverKeys := make([]crypto.Element, cfg.Servers)
	serverMsgKeys := make([]crypto.Element, cfg.Servers)
	for i := range serverKPs {
		serverKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		serverMsgKPs[i], _ = crypto.GenerateKeyPair(msgGrp, nil)
		serverKeys[i] = serverKPs[i].Public
		serverMsgKeys[i] = serverMsgKPs[i].Public
	}
	clientKPs := make([]*crypto.KeyPair, cfg.Clients)
	clientKeys := make([]crypto.Element, cfg.Clients)
	for i := range clientKPs {
		clientKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		clientKeys[i] = clientKPs[i].Public
	}

	policy := group.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.SignMessages = cfg.Sign
	policy.RetainRounds = 2 // bound memory at 5,000-client scale
	// The beacon is not part of the paper's measured protocol, and its
	// per-round Schnorr work would dominate unsigned 5,000-client runs.
	policy.BeaconEpochRounds = 0
	if cfg.SlotLen > 0 {
		policy.DefaultOpenLen = cfg.SlotLen
	}
	if cfg.MaxSlotLen > 0 {
		policy.MaxSlotLen = cfg.MaxSlotLen
	}
	if cfg.AlphaSet {
		policy.Alpha = cfg.Alpha
	}
	if cfg.WindowThreshold > 0 {
		policy.WindowThreshold = cfg.WindowThreshold
	}
	if cfg.WindowMult > 0 {
		policy.WindowMultiplier = cfg.WindowMult
	}
	if cfg.HardTimeout > 0 {
		policy.HardTimeout = cfg.HardTimeout
	}
	if cfg.WindowMin > 0 {
		policy.WindowMin = cfg.WindowMin
	}

	def, err := group.NewDefinition(fmt.Sprintf("bench-%s-%dx%d", cfg.Profile.Name, cfg.Servers, cfg.Clients),
		serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		return nil, err
	}

	kpByID := make(map[group.NodeID]*crypto.KeyPair)
	msgKPByID := make(map[group.NodeID]*crypto.KeyPair)
	for i := range serverKPs {
		id := group.IDFromKey(keyGrp, serverKeys[i])
		kpByID[id] = serverKPs[i]
		msgKPByID[id] = serverMsgKPs[i]
	}
	for i := range clientKPs {
		kpByID[group.IDFromKey(keyGrp, clientKeys[i])] = clientKPs[i]
	}

	opts := core.Options{
		MessageGroup: msgGrp,
		PairSeed: func(ci, si int) []byte {
			return crypto.Hash("bench-pair", crypto.HashUint64(uint64(cfg.Seed)),
				crypto.HashUint64(uint64(ci)), crypto.HashUint64(uint64(si)))
		},
		// Background prefetch would move pad work outside the engine
		// calls whose real execution time MeasureCompute charges as
		// virtual time; keep the simulator's cost accounting
		// well-defined by expanding pads on-call.
		NoPadPrefetch: true,
		PipelineDepth: cfg.PipelineDepth,
	}

	s := &Session{
		Def:       def,
		H:         core.NewHarness(),
		Profile:   cfg.Profile,
		serverIDs: make(map[group.NodeID]bool),
		clientIdx: make(map[group.NodeID]int),
	}
	s.H.MeasureCompute = cfg.MeasureCompute

	for _, mem := range def.Servers {
		srv, err := core.NewServer(def, kpByID[mem.ID], msgKPByID[mem.ID], opts)
		if err != nil {
			return nil, err
		}
		s.Servers = append(s.Servers, srv)
		s.serverIDs[mem.ID] = true
		s.H.AddNode(mem.ID, srv, cfg.Profile.ServerBandwidth)
	}
	s.clientLat = make([]time.Duration, cfg.Clients)
	for i, mem := range def.Clients {
		cl, err := core.NewClient(def, kpByID[mem.ID], opts)
		if err != nil {
			return nil, err
		}
		s.Clients = append(s.Clients, cl)
		s.clientIdx[mem.ID] = i
		s.H.AddNode(mem.ID, cl, cfg.Profile.ClientBandwidth)
		s.clientLat[i] = cfg.Profile.ClientLatency
		if cfg.Profile.ClientJitter > 0 {
			s.clientLat[i] += time.Duration(rng.Int63n(int64(cfg.Profile.ClientJitter)))
		}
	}

	prof := cfg.Profile
	s.H.Latency = func(from, to group.NodeID) time.Duration {
		if s.serverIDs[from] && s.serverIDs[to] {
			return prof.ServerLatency
		}
		if ci, ok := s.clientIdx[from]; ok {
			return s.clientLat[ci]
		}
		if ci, ok := s.clientIdx[to]; ok {
			return s.clientLat[ci]
		}
		return prof.ServerLatency
	}

	if prof.Delays != nil {
		tr := prof.Delays
		s.H.Outbound = func(from group.NodeID, m *core.Message) (time.Duration, bool) {
			if m.Type != core.MsgClientSubmit {
				return 0, false
			}
			ci, ok := s.clientIdx[from]
			if !ok {
				return 0, false
			}
			d, submitted := tr.Delay(m.Round, ci)
			if !submitted {
				return 0, true
			}
			return d, false
		}
	}

	if !cfg.Sign {
		// Charge signature work analytically: every protocol message
		// would carry a signature the receiver verifies, and the sender
		// would have signed it.
		cm := Calibrate()
		per := cm.SchnorrVrfy + cm.SchnorrSign
		s.H.Compute = func(node group.NodeID, m *core.Message) time.Duration {
			return per
		}
	}
	return s, nil
}

// Bootstrap installs a trusted schedule (client i ↔ slot i) and begins
// round 0 on every engine.
func (s *Session) Bootstrap() {
	slotKeys := make([]crypto.Element, len(s.Clients))
	pseu := make([]*crypto.KeyPair, len(s.Clients))
	for i := range s.Clients {
		kp, _ := crypto.GenerateKeyPair(crypto.P256(), nil)
		pseu[i] = kp
		slotKeys[i] = kp.Public
	}
	now := s.H.Net.Now()
	for _, srv := range s.Servers {
		srv := srv
		s.H.Net.Schedule(now, func(t time.Time) {
			out, err := srv.InstallSchedule(t, slotKeys)
			s.processInstall(srv.ID(), t, out, err)
		})
	}
	for i, cl := range s.Clients {
		cl, i := cl, i
		s.H.Net.Schedule(now, func(t time.Time) {
			out, err := cl.InstallSchedule(t, len(slotKeys), i, pseu[i])
			s.processInstall(cl.ID(), t, out, err)
		})
	}
}

// processInstall routes InstallSchedule outputs through the harness.
func (s *Session) processInstall(id group.NodeID, t time.Time, out *core.Output, err error) {
	s.H.ProcessExternal(id, t, out, err)
}

// RunRounds drives the network until server 0 passes the given round
// or the event budget is exhausted.
func (s *Session) RunRounds(round uint64, maxEvents int64) {
	var steps int64
	for steps < maxEvents && s.Servers[0].Round() <= round {
		if !s.H.Net.Step() {
			break
		}
		steps++
	}
}

// RoundMetric is one round's timing split at a server, matching the
// paper's "client submission" vs "server processing" decomposition.
type RoundMetric struct {
	Round   uint64
	Submit  time.Duration // prior output -> window close
	Process time.Duration // window close -> certified output
	Total   time.Duration
	Failed  bool
	Count   int
}

// RoundMetrics extracts per-round splits at the given server.
func RoundMetrics(h *core.Harness, server group.NodeID) []RoundMetric {
	type marks struct {
		start, closed, done time.Time
		failed              bool
		haveStart           bool
	}
	byRound := map[uint64]*marks{}
	get := func(r uint64) *marks {
		if m, ok := byRound[r]; ok {
			return m
		}
		m := &marks{}
		byRound[r] = m
		return m
	}
	var maxRound uint64
	for _, e := range h.Events {
		if e.Node != server {
			continue
		}
		switch e.Kind {
		case core.EventScheduleReady:
			m := get(0)
			m.start, m.haveStart = e.At, true
		case core.EventWindowClosed:
			// Only the first close (attempt 0) marks the boundary.
			m := get(e.Round)
			if m.closed.IsZero() {
				m.closed = e.At
			}
		case core.EventRoundComplete, core.EventRoundFailed:
			m := get(e.Round)
			m.done = e.At
			m.failed = e.Kind == core.EventRoundFailed
			n := get(e.Round + 1)
			n.start, n.haveStart = e.At, true
			if e.Round > maxRound {
				maxRound = e.Round
			}
		}
	}
	var out []RoundMetric
	for r := uint64(0); r <= maxRound; r++ {
		m, ok := byRound[r]
		if !ok || !m.haveStart || m.done.IsZero() {
			continue
		}
		rm := RoundMetric{Round: r, Total: m.done.Sub(m.start), Failed: m.failed}
		if !m.closed.IsZero() {
			rm.Submit = m.closed.Sub(m.start)
			rm.Process = m.done.Sub(m.closed)
		} else {
			rm.Process = rm.Total
		}
		out = append(out, rm)
	}
	return out
}

// MeanSplit averages metrics, skipping the first warmup rounds.
func MeanSplit(ms []RoundMetric, warmup int) (submit, process, total time.Duration, n int) {
	for i, m := range ms {
		if i < warmup {
			continue
		}
		submit += m.Submit
		process += m.Process
		total += m.Total
		n++
	}
	if n > 0 {
		submit /= time.Duration(n)
		process /= time.Duration(n)
		total /= time.Duration(n)
	}
	return submit, process, total, n
}
