package bench

import (
	"fmt"
	"time"
)

// Figures 7 and 8: time per DC-net round versus client count (Fig. 7,
// 32 servers) and versus server count (Fig. 8, 640 clients), in the
// microblog scenario (1% of clients submit 128-byte messages each
// round) and the data-sharing scenario (one client transmits 128 KB
// per round), split into client-submission and server-processing time.

// Scenario is one of the paper's two §5.2 workloads.
type Scenario struct {
	Name string
	// SenderFrac of clients transmit each round (microblog: 0.01).
	SenderFrac float64
	// MsgBytes per sender per round.
	MsgBytes int
	// Bulk marks the single-sender 128 KB scenario.
	Bulk bool
}

// Microblog returns the 1%-submit 128-byte scenario.
func Microblog() Scenario {
	return Scenario{Name: "microblog-1pct-128B", SenderFrac: 0.01, MsgBytes: 128}
}

// DataSharing returns the single-sender 128 KB scenario.
func DataSharing() Scenario {
	return Scenario{Name: "datashare-128KB", MsgBytes: 128 << 10, Bulk: true}
}

// ScaleRow is one point of Fig. 7 or Fig. 8.
type ScaleRow struct {
	Clients  int
	Servers  int
	Scenario string
	Profile  string
	Submit   time.Duration
	Process  time.Duration
	Total    time.Duration
	Rounds   int
}

// RunScalePoint runs one (servers, clients, scenario, profile)
// configuration for the given number of measured rounds.
func RunScalePoint(servers, clients int, sc Scenario, profile Profile, rounds int, seed int64) (ScaleRow, error) {
	slotLen := 192
	maxSlot := 0
	if sc.Bulk {
		// One slot carries the 128 KB payload; room for overhead.
		maxSlot = sc.MsgBytes + 4096
	}
	cfg := SessionConfig{
		Servers:        servers,
		Clients:        clients,
		Profile:        profile,
		SlotLen:        slotLen,
		MaxSlotLen:     maxSlot,
		Sign:           false,
		MeasureCompute: 1.0,
		Alpha:          0.9,
		AlphaSet:       true,
		HardTimeout:    120 * time.Second,
		WindowMin:      100 * time.Millisecond,
		Seed:           seed,
	}
	s, err := BuildSession(cfg)
	if err != nil {
		return ScaleRow{}, err
	}

	// Queue the workload before bootstrapping: senders carry a backlog
	// so every measured round bears the scenario's load.
	warmup := 2
	total := warmup + rounds + 2
	if sc.Bulk {
		for i := 0; i < total+2; i++ {
			s.Clients[0].Send(make([]byte, sc.MsgBytes))
		}
	} else {
		senders := int(float64(clients)*sc.SenderFrac + 0.5)
		if senders < 1 {
			senders = 1
		}
		stride := clients / senders
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < clients; i += stride {
			for k := 0; k < total+2; k++ {
				s.Clients[i].Send(make([]byte, sc.MsgBytes))
			}
		}
	}

	s.Bootstrap()
	s.RunRounds(uint64(total), 200_000_000)
	if len(s.H.Errors) > 0 {
		return ScaleRow{}, fmt.Errorf("scale point %d/%d: %v", servers, clients, s.H.Errors[0])
	}
	ms := RoundMetrics(s.H, s.Servers[0].ID())
	submit, process, totalT, n := MeanSplit(ms, warmup)
	return ScaleRow{
		Clients: clients, Servers: servers,
		Scenario: sc.Name, Profile: profile.Name,
		Submit: submit, Process: process, Total: totalT, Rounds: n,
	}, nil
}

// Fig7Config sizes the client-scaling sweep.
type Fig7Config struct {
	Servers     int
	ClientSizes []int
	Rounds      int
	Seed        int64
	// PlanetLabMicro additionally runs the microblog scenario on the
	// wide-area profile, as in the paper.
	PlanetLabMicro bool
}

// DefaultFig7Config matches the paper's sweep (32 servers, 32–5120
// clients).
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Servers:        32,
		ClientSizes:    []int{32, 100, 320, 1000, 2048, 5120},
		Rounds:         3,
		Seed:           71,
		PlanetLabMicro: true,
	}
}

// QuickFig7Config is a scaled-down sweep for tests.
func QuickFig7Config() Fig7Config {
	return Fig7Config{Servers: 8, ClientSizes: []int{16, 48}, Rounds: 2, Seed: 71}
}

// Fig7 runs the client-scaling sweep.
func Fig7(cfg Fig7Config) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, n := range cfg.ClientSizes {
		for _, sc := range []Scenario{Microblog(), DataSharing()} {
			row, err := RunScalePoint(cfg.Servers, n, sc, DeterLab(), cfg.Rounds, cfg.Seed)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
		if cfg.PlanetLabMicro {
			pl := PlanetLab(cfg.Rounds+8, n, cfg.Seed)
			row, err := RunScalePoint(cfg.Servers, n, Microblog(), pl, cfg.Rounds, cfg.Seed)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8Config sizes the server-scaling sweep.
type Fig8Config struct {
	Clients     int
	ServerSizes []int
	Rounds      int
	Seed        int64
}

// DefaultFig8Config matches the paper (640 clients, 1–32 servers).
func DefaultFig8Config() Fig8Config {
	return Fig8Config{Clients: 640, ServerSizes: []int{1, 2, 4, 10, 24, 32}, Rounds: 3, Seed: 81}
}

// QuickFig8Config is a scaled-down sweep for tests.
func QuickFig8Config() Fig8Config {
	return Fig8Config{Clients: 32, ServerSizes: []int{1, 4}, Rounds: 2, Seed: 81}
}

// Fig8 runs the server-scaling sweep.
func Fig8(cfg Fig8Config) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, m := range cfg.ServerSizes {
		for _, sc := range []Scenario{Microblog(), DataSharing()} {
			row, err := RunScalePoint(m, cfg.Clients, sc, DeterLab(), cfg.Rounds, cfg.Seed)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
