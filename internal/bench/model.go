// Package bench regenerates every table and figure of the paper's
// evaluation (§5): the window-policy table and CDF (Fig. 6), DC-net
// round scaling with clients and servers (Figs. 7–8), the full-protocol
// breakdown (Fig. 9), and the web-browsing comparison (Figs. 10–11).
//
// Methodology: DC-net rounds run the *real* protocol engines over the
// discrete-event simulator with the paper's testbed topologies, with
// real crypto execution time charged as virtual time. The
// public-key-heavy shuffle sweeps of Fig. 9 use an analytic operation
// count priced by microbenchmark calibration, validated against real
// engine runs at small scale (the full sweep would cost hours of
// serial big-integer arithmetic, just as it did for the paper's
// authors — their 1,000-client accusation shuffle ran for over an
// hour on a testbed).
package bench

import (
	"sync"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/shuffle"
)

// CostModel holds microbenchmark-calibrated per-operation costs used
// by the analytic parts of the harness (Fig. 9 sweeps, signature
// charges in unsigned simulation mode).
type CostModel struct {
	ECBaseMul   time.Duration // P-256 k*G
	ECScalarMul time.Duration // P-256 k*P
	ModExp      time.Duration // modp-2048 exponentiation
	SchnorrSign time.Duration
	SchnorrVrfy time.Duration
	AESBps      float64 // AES-CTR stream throughput, bytes/sec
}

var (
	calOnce  sync.Once
	calModel CostModel
)

// Calibrate measures per-operation costs on this machine (cached).
func Calibrate() CostModel {
	calOnce.Do(func() {
		calModel = calibrate()
	})
	return calModel
}

func timeOp(iters int, op func()) time.Duration {
	op() // warm up
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	return time.Since(t0) / time.Duration(iters)
}

func calibrate() CostModel {
	ec := crypto.P256()
	mp := crypto.ModP2048()
	k, _ := ec.RandomScalar(nil)
	p, _ := ec.RandomElement(nil)
	mk, _ := mp.RandomScalar(nil)
	mpE, _ := mp.RandomElement(nil)
	kp, _ := crypto.GenerateKeyPair(ec, nil)
	msg := []byte("calibration message")
	sig, _ := kp.Sign("cal", msg, nil)

	var m CostModel
	m.ECBaseMul = timeOp(50, func() { ec.BaseMult(k) })
	m.ECScalarMul = timeOp(50, func() { ec.ScalarMult(p, k) })
	m.ModExp = timeOp(10, func() { mp.ScalarMult(mpE, mk) })
	m.SchnorrSign = timeOp(30, func() { sig, _ = kp.Sign("cal", msg, nil) })
	m.SchnorrVrfy = timeOp(30, func() { _ = crypto.Verify(ec, kp.Public, "cal", msg, sig) })

	buf := make([]byte, 1<<20)
	prng := crypto.NewAESPRNG(crypto.Hash("cal", nil))
	d := timeOp(8, func() { prng.XORKeyStream(buf, buf) })
	m.AESBps = float64(len(buf)) / d.Seconds()
	return m
}

// --- Analytic shuffle model (Fig. 9) ----------------------------------

// GroupCosts prices the three group operations a shuffle performs.
type GroupCosts struct {
	Mul        time.Duration // scalar multiplication / exponentiation
	BaseMul    time.Duration
	ElementLen int
}

// ecCosts and modpCosts derive group costs from the calibration.
func ecCosts(m CostModel) GroupCosts {
	return GroupCosts{Mul: m.ECScalarMul, BaseMul: m.ECBaseMul, ElementLen: 33}
}

func modpCosts(m CostModel) GroupCosts {
	return GroupCosts{Mul: m.ModExp, BaseMul: m.ModExp, ElementLen: 256}
}

// ShuffleParams describe one verifiable-shuffle execution.
type ShuffleParams struct {
	Servers int
	Inputs  int // N
	Width   int // ciphertexts per input vector
	Shadows int // k
	// ServerBandwidth and ServerLatency model the inter-server links.
	ServerBandwidth float64
	ServerLatency   time.Duration
}

// reencCost is one ElGamal re-encryption: one base mult (rG) plus one
// scalar mult (rY) and two group additions (additions are negligible
// next to multiplications).
func reencCost(g GroupCosts) time.Duration { return g.BaseMul + g.Mul }

// ShuffleTime prices a complete serial mix (the §3.10 pipeline): every
// server re-encrypts and permutes (with k shadow shuffles for the
// proof), strips its decryption layer with a batch DLEQ proof, and
// every other server verifies each step before the next proceeds.
//
// Per step:
//
//	prove  = (k+1)·N·W re-encryptions + N·W decrypt-share mults
//	         + 2·N·W batch-DLEQ mults
//	verify = k·N·W re-encryption checks + 2·N·W batch-DLEQ mults
//	         (verifiers run in parallel on distinct servers)
//	wire   = step output ≈ (3 + k)·N·W ciphertexts + k·N·W scalars
//
// total = Σ_steps (prove + verify + transfer + latency).
func ShuffleTime(g GroupCosts, p ShuffleParams) time.Duration {
	nw := float64(p.Inputs * p.Width)
	prove := time.Duration(nw * float64(p.Shadows+1) * float64(reencCost(g)))
	prove += time.Duration(nw * float64(g.Mul)) // decrypt shares
	prove += time.Duration(2 * nw * float64(g.Mul))
	verify := time.Duration(nw * float64(p.Shadows) * float64(reencCost(g)))
	verify += time.Duration(2 * nw * float64(g.Mul))

	ctBytes := 2 * g.ElementLen
	stepBytes := float64((3+p.Shadows)*p.Inputs*p.Width*ctBytes + p.Shadows*p.Inputs*p.Width*32)
	var transfer time.Duration
	if p.ServerBandwidth > 0 {
		// The prover broadcasts its step to the other servers over its
		// access link.
		transfer = time.Duration(stepBytes * float64(p.Servers-1) / p.ServerBandwidth * float64(time.Second))
	}
	perStep := prove + verify + transfer + p.ServerLatency
	return time.Duration(p.Servers) * perStep
}

// DCNetParams describe one DC-net exchange for the analytic model.
type DCNetParams struct {
	Servers, Clients int
	RoundBytes       int
	ClientLatency    time.Duration
	ServerLatency    time.Duration
	ServerBandwidth  float64
	ClientBandwidth  float64
}

// DCNetRoundTime prices one exchange: client pad generation and
// upload, server pad generation (parallel across servers), the
// inventory/commit/share/certify exchanges, and output distribution.
func DCNetRoundTime(m CostModel, p DCNetParams) time.Duration {
	b := float64(p.RoundBytes)
	client := time.Duration(float64(p.Servers) * b / m.AESBps * float64(time.Second))
	var clientTx time.Duration
	if p.ClientBandwidth > 0 {
		clientTx = time.Duration(b / p.ClientBandwidth * float64(time.Second))
	}
	server := time.Duration(float64(p.Clients) * b / m.AESBps * float64(time.Second))
	var serverTx time.Duration
	if p.ServerBandwidth > 0 {
		// Share exchange: each server sends its ciphertext to M-1 peers;
		// output distribution to its clients is a comparable volume.
		serverTx = time.Duration(2 * b * float64(p.Servers-1) / p.ServerBandwidth * float64(time.Second))
	}
	// 4 server-to-server phases (inventory, commit, share, certify).
	return client + clientTx + p.ClientLatency + server + serverTx +
		4*p.ServerLatency + p.ClientLatency
}

// BlameEvalTime prices accusation tracing (§3.9): every server
// recomputes one PRNG bit per included client (expanding the stream up
// to the witness byte) plus two rounds of small inter-server messages
// and a rebuttal round trip.
func BlameEvalTime(m CostModel, p DCNetParams) time.Duration {
	expand := float64(p.RoundBytes) / 2 // expected stream prefix to the witness bit
	perServer := time.Duration(float64(p.Clients) * expand / m.AESBps * float64(time.Second))
	return perServer + 2*p.ServerLatency + 2*p.ClientLatency
}

// AccusationWidth returns the blame-shuffle vector width in the
// production message group.
func AccusationWidth() int {
	// accusation = 16 bytes + P-256 Schnorr signature (64 bytes).
	return shuffle.VecWidth(crypto.ModP2048(), 16+crypto.SignatureLen(crypto.P256()))
}
