package bench

import (
	"fmt"
	"time"
)

// PipelineResult is one pipelined-round throughput measurement: how
// many certified rounds per second of virtual network time a small
// deployment sustains at the given pipeline depth. Virtual time makes
// the measurement deterministic — the ratio depth2/depth1 is the
// tentpole number for the two-deep round pipeline, and approaches
// (window + certify) / max(window, certify).
type PipelineResult struct {
	Depth        int           `json:"depth"`
	Rounds       uint64        `json:"rounds"`
	VirtualTime  time.Duration `json:"virtual_time_ns"`
	RoundsPerSec float64       `json:"rounds_per_sec"`
}

// PipelineThroughput drives `rounds` certified rounds on a 3-server,
// 8-client SimNet deployment at the given pipeline depth and returns
// the virtual-time throughput. The topology is shaped so the
// certification chain (a few server-server RTTs) is comparable to the
// submission window — the regime the pipeline targets: with
// certification hidden behind the next window, depth 2 approaches one
// round per window instead of one per window-plus-certify.
func PipelineThroughput(depth int, rounds uint64, seed int64) (PipelineResult, error) {
	prof := Profile{
		Name:          "Pipeline",
		ServerLatency: 25 * time.Millisecond,
		ClientLatency: 30 * time.Millisecond,
	}
	s, err := BuildSession(SessionConfig{
		Servers:       3,
		Clients:       8,
		Profile:       prof,
		WindowMin:     70 * time.Millisecond,
		Seed:          seed,
		PipelineDepth: depth,
	})
	if err != nil {
		return PipelineResult{}, err
	}
	s.Bootstrap()
	start := s.H.Net.Now()
	s.RunRounds(rounds, 4_000_000)
	if got := s.Servers[0].Round(); got <= rounds {
		return PipelineResult{}, fmt.Errorf("bench: pipeline depth %d stalled at round %d of %d", depth, got, rounds)
	}
	if len(s.H.Errors) > 0 {
		return PipelineResult{}, fmt.Errorf("bench: pipeline depth %d: %v", depth, s.H.Errors[0])
	}
	el := s.H.Net.Now().Sub(start)
	res := PipelineResult{Depth: depth, Rounds: rounds, VirtualTime: el}
	if el > 0 {
		res.RoundsPerSec = float64(rounds) / el.Seconds()
	}
	return res, nil
}
