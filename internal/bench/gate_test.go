package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func gateReport(results ...PerfResult) PerfReport {
	return PerfReport{GoVersion: "go-test", Results: results}
}

func TestComparePerfGatesSlowdown(t *testing.T) {
	base := gateReport(PerfResult{Name: "case-a", NsPerOp: 10_000, AllocsPerOp: 4})
	cur := gateReport(PerfResult{Name: "case-a", NsPerOp: 25_000, AllocsPerOp: 4})
	regs, _ := ComparePerf(base, cur, 2.0)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Metric != "ns_per_op" || regs[0].Ratio != 2.5 {
		t.Fatalf("regression %+v", regs[0])
	}
}

func TestComparePerfWithinThresholdPasses(t *testing.T) {
	base := gateReport(PerfResult{Name: "case-a", NsPerOp: 10_000})
	cur := gateReport(PerfResult{Name: "case-a", NsPerOp: 19_000})
	if regs, _ := ComparePerf(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("within-threshold run gated: %v", regs)
	}
}

func TestComparePerfNoiseFloorShieldsSubMicrosecond(t *testing.T) {
	// 240ns -> 520ns is > 2x but below the absolute noise floor: a
	// sub-µs bench doubling on timer jitter must not fail the build.
	base := gateReport(PerfResult{Name: "tiny", NsPerOp: 240})
	cur := gateReport(PerfResult{Name: "tiny", NsPerOp: 420})
	if regs, _ := ComparePerf(base, cur, 2.0); len(regs) != 0 {
		t.Fatalf("sub-µs noise gated: %v", regs)
	}
	// But a genuine order-of-magnitude blowup still gates.
	cur = gateReport(PerfResult{Name: "tiny", NsPerOp: 2_400})
	if regs, _ := ComparePerf(base, cur, 2.0); len(regs) != 1 {
		t.Fatal("10x slowdown on a sub-µs bench not gated")
	}
}

func TestComparePerfGatesAllocGrowth(t *testing.T) {
	base := gateReport(PerfResult{Name: "case-a", NsPerOp: 100, AllocsPerOp: 2})
	cur := gateReport(PerfResult{Name: "case-a", NsPerOp: 100, AllocsPerOp: 9})
	regs, _ := ComparePerf(base, cur, 2.0)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("alloc growth not gated: %v", regs)
	}
}

func TestComparePerfSkipsUnmatchedAndUnits(t *testing.T) {
	base := gateReport(
		PerfResult{Name: "renamed-away", NsPerOp: 100},
		PerfResult{Name: "shared", NsPerOp: 100},
	)
	cur := gateReport(
		PerfResult{Name: "shared", NsPerOp: 100},
		PerfResult{Name: "brand-new", NsPerOp: 1},
		PerfResult{Name: "rounds-per-sec", Value: 12.5, Unit: "rounds/s"},
	)
	regs, skipped := ComparePerf(base, cur, 2.0)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %v, want the rename pair", skipped)
	}
}

func TestReadPerfReportRoundTrip(t *testing.T) {
	rep := gateReport(PerfResult{Name: "case-a", NsPerOp: 123})
	data, err := rep.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Name != "case-a" {
		t.Fatalf("round trip lost results: %+v", got)
	}
	if _, err := ReadPerfReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
