package bench

import (
	"bytes"
	"fmt"
	"time"

	"dissent/internal/browse"
	"dissent/internal/core"
	"dissent/internal/group"
	"dissent/internal/relay"
	"dissent/internal/simnet"
)

// Figures 10–11: Alexa-Top-100 page download times under four
// configurations (§5.4): direct access, the onion-relay baseline
// ("Tor"), a local-area Dissent group, and Dissent composed with the
// relay baseline. Direct and relay runs use the workload model alone;
// the Dissent runs stream pages through the *real* protocol engines —
// a 5-server/24-client group on the Emulab WiFi topology — with the
// exit node fetching from origins through the respective upstream.

// Fig10Config sizes the browsing experiment.
type Fig10Config struct {
	Pages    int
	Servers  int
	Clients  int
	Parallel int
	Seed     int64
}

// DefaultFig10Config matches §5.4: 5 servers, 24 clients, 100 pages.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{Pages: 100, Servers: 5, Clients: 24, Parallel: 6, Seed: 101}
}

// QuickFig10Config is a scaled-down run for tests.
func QuickFig10Config() Fig10Config {
	return Fig10Config{Pages: 6, Servers: 3, Clients: 8, Parallel: 6, Seed: 101}
}

// Fig10Result holds per-configuration download-time samples.
type Fig10Result struct {
	Config string
	Stats  browse.Stats
}

// torFetcher adapts a relay circuit to the browse.Fetcher interface.
type torFetcher struct {
	circ *relay.Circuit
}

func (t *torFetcher) Fetch(net *simnet.Network, reqLen, respLen int, originRTT time.Duration, done func(at time.Time)) {
	// Half the origin RTT is the exit→origin leg latency; the origin
	// "think time" is folded into the RTT already.
	t.circ.Exit.Latency = originRTT / 2
	t.circ.RoundTrip(net, reqLen, respLen, 30*time.Millisecond, done)
}

// directAccess returns the un-anonymized LAN fetcher used for the
// "no anonymity" line and for the Dissent exit node's origin access.
// The per-connection ceiling models 2012-era wide-area TCP throughput
// from the testbed to real origins; it is the constant calibrated so
// the direct configuration lands near the paper's ~10 s per ~1 MB.
func directAccess() *browse.DirectFetcher {
	return browse.NewDirectFetcher(
		simnet.Link{Latency: 10 * time.Millisecond, Bandwidth: simnet.Mbps(24)},
		simnet.Mbps(0.9))
}

// Fig10 runs all four configurations over the same page corpus.
func Fig10(cfg Fig10Config) ([]Fig10Result, error) {
	corpus := browse.GenerateCorpus(browse.Alexa2012())
	if cfg.Pages < len(corpus) {
		corpus = corpus[:cfg.Pages]
	}

	var results []Fig10Result

	// Direct.
	direct, err := runModelOnly(corpus, cfg.Parallel, func(net *simnet.Network) browse.Fetcher {
		return directAccess()
	})
	if err != nil {
		return nil, err
	}
	results = append(results, Fig10Result{Config: "direct", Stats: direct})

	// Relay baseline ("Tor").
	torNet := relay.NewNetwork(relay.DefaultTorParams())
	tor, err := runModelOnly(corpus, cfg.Parallel, func(net *simnet.Network) browse.Fetcher {
		circ, err := torNet.BuildCircuit(50 * time.Millisecond)
		if err != nil {
			panic(err)
		}
		return &torFetcher{circ: circ}
	})
	if err != nil {
		return nil, err
	}
	results = append(results, Fig10Result{Config: "tor", Stats: tor})

	// Dissent (LAN), exit fetching directly.
	dd, err := runDissentBrowse(cfg, corpus, func(net *simnet.Network) browse.Fetcher {
		return directAccess()
	})
	if err != nil {
		return nil, err
	}
	results = append(results, Fig10Result{Config: "dissent", Stats: dd})

	// Dissent + Tor: the exit node reaches origins through the relay
	// baseline; DC-net streaming overlaps the relay fetch waves.
	torNet2 := relay.NewNetwork(relay.DefaultTorParams())
	dt, err := runDissentBrowse(cfg, corpus, func(net *simnet.Network) browse.Fetcher {
		circ, err := torNet2.BuildCircuit(50 * time.Millisecond)
		if err != nil {
			panic(err)
		}
		return &torFetcher{circ: circ}
	})
	if err != nil {
		return nil, err
	}
	results = append(results, Fig10Result{Config: "dissent+tor", Stats: dt})

	return results, nil
}

// runModelOnly downloads the corpus over a fetcher without Dissent.
func runModelOnly(corpus []browse.Page, parallel int, mk func(net *simnet.Network) browse.Fetcher) (browse.Stats, error) {
	var stats browse.Stats
	net := simnet.New(time.Unix(0, 0))
	var runPage func(i int)
	runPage = func(i int) {
		if i >= len(corpus) {
			return
		}
		start := net.Now()
		f := mk(net) // fresh circuit per page
		browse.DownloadPage(net, f, corpus[i], parallel, func(at time.Time) {
			stats.Add(at.Sub(start))
			net.Schedule(at, func(time.Time) { runPage(i + 1) })
		})
	}
	runPage(0)
	net.Run(0)
	if len(stats.Times) != len(corpus) {
		return stats, fmt.Errorf("browse: %d/%d pages completed", len(stats.Times), len(corpus))
	}
	return stats, nil
}

// runDissentBrowse streams the corpus through a real Dissent group:
// the requesting client sends a request into its slot; the exit client
// sees it, fetches the page from the origin via the supplied fetcher,
// and streams bytes back through its own slot as resources arrive.
func runDissentBrowse(cfg Fig10Config, corpus []browse.Page, mkOrigin func(net *simnet.Network) browse.Fetcher) (browse.Stats, error) {
	s, err := BuildSession(SessionConfig{
		Servers:        cfg.Servers,
		Clients:        cfg.Clients,
		Profile:        EmulabWiFi(),
		SlotLen:        1024,
		MaxSlotLen:     64 << 10,
		Sign:           true,
		MeasureCompute: 1.0,
		Alpha:          0.9,
		AlphaSet:       true,
		WindowMin:      20 * time.Millisecond,
		HardTimeout:    60 * time.Second,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return browse.Stats{}, err
	}

	requester := s.Clients[0]
	exit := s.Clients[len(s.Clients)-1]
	reqMarker := []byte("DISSENT-REQ:")

	var stats browse.Stats
	page := 0
	var pageStart time.Time
	received := 0
	expecting := 0
	requesterID := requester.ID()

	var startPage func(t time.Time)
	startPage = func(t time.Time) {
		if page >= len(corpus) {
			return
		}
		pageStart = t
		received = 0
		expecting = corpus[page].TotalBytes()
		req := append(append([]byte(nil), reqMarker...), []byte(corpus[page].Name)...)
		requester.Send(req)
	}

	s.H.OnDelivery = func(d core.TimedDelivery) {
		// The exit node reacts to requests appearing in any slot.
		if d.Node == exit.ID() && bytes.HasPrefix(d.Data, reqMarker) {
			p := corpus[page]
			origin := mkOrigin(s.H.Net)
			browse.DownloadPageProgress(s.H.Net, origin, p, cfg.Parallel,
				func(at time.Time, n int) {
					// Stream each fetched resource into the exit's slot.
					s.H.Net.Schedule(at, func(time.Time) {
						exit.Send(make([]byte, n))
					})
				},
				func(at time.Time) {})
			return
		}
		// The requester counts bytes arriving in the exit's slot.
		if d.Node == requesterID && d.Slot == exit.Slot() && expecting > 0 &&
			!bytes.HasPrefix(d.Data, reqMarker) {
			received += len(d.Data)
			if received >= expecting {
				stats.Add(d.At.Sub(pageStart))
				expecting = 0
				page++
				s.H.Net.Schedule(d.At, startPage)
			}
		}
	}

	s.Bootstrap()
	// Kick off the first page once the schedule settles.
	s.H.Net.Schedule(s.H.Net.Now().Add(time.Second), startPage)

	// Drive until all pages complete or the budget runs out.
	var steps int64
	for steps < 400_000_000 && page < len(corpus) {
		if !s.H.Net.Step() {
			break
		}
		steps++
	}
	if len(s.H.Errors) > 0 {
		return stats, fmt.Errorf("dissent browse: %v", s.H.Errors[0])
	}
	if page < len(corpus) {
		return stats, fmt.Errorf("dissent browse: %d/%d pages completed", page, len(corpus))
	}
	return stats, nil
}

var _ = group.NodeID{} // reserved for future per-node instrumentation
