package bench

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"dissent/internal/core"
	"dissent/internal/socks"
)

// TestSocksThroughDissent tunnels a TCP flow through a real Dissent
// session (§4.1 end to end): a SOCKS frame stream enters at one
// client, crosses the DC-net, exits at another client which dials a
// real local TCP origin, and the response returns through the channel.
func TestSocksThroughDissent(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Local origin: replies with a fixed banner then echoes.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	go func() {
		for {
			c, err := origin.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				n, _ := c.Read(buf)
				c.Write(append([]byte("BANNER|"), buf[:n]...))
				c.Close()
			}()
		}
	}()

	s, err := BuildSession(SessionConfig{
		Servers: 2, Clients: 4, Profile: EmulabWiFi(),
		SlotLen: 512, Sign: true,
		Alpha: 0.9, AlphaSet: true,
		WindowMin: 10 * time.Millisecond, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	entryClient := s.Clients[0]
	exitClient := s.Clients[3]

	// The exit node: parses frames from the entry's slot, dials the
	// origin for real, responds through its own slot. Its sends arrive
	// from OS goroutines while the test goroutine drives the same
	// engine through Step, so both sides hold mu: every engine call
	// happens inside Step, and Step runs under the lock below.
	var mu sync.Mutex
	exit := socks.NewExit(func(data []byte) {
		mu.Lock()
		defer mu.Unlock()
		exitClient.Send(data)
	})

	var entryBuf, exitBuf []byte
	var response []byte
	s.H.OnDelivery = func(d core.TimedDelivery) {
		switch {
		case d.Node == exitClient.ID() && d.Slot == entryClient.Slot():
			exitBuf = append(exitBuf, d.Data...)
			frames, rest, err := socks.DecodeFrames(exitBuf)
			if err != nil {
				t.Errorf("exit decode: %v", err)
				return
			}
			exitBuf = rest
			exit.Deliver(frames)
		case d.Node == entryClient.ID() && d.Slot == exitClient.Slot():
			entryBuf = append(entryBuf, d.Data...)
			frames, rest, err := socks.DecodeFrames(entryBuf)
			if err != nil {
				t.Errorf("entry decode: %v", err)
				return
			}
			entryBuf = rest
			for _, f := range frames {
				if f.Kind == socks.FrameData {
					response = append(response, f.Data...)
				}
			}
		}
	}

	// Entry side: open a flow to the origin and send a payload.
	entryClient.Send(socks.EncodeFrame(socks.Frame{
		FlowID: 7, Kind: socks.FrameOpen, Data: []byte(origin.Addr().String())}))
	entryClient.Send(socks.EncodeFrame(socks.Frame{
		FlowID: 7, Kind: socks.FrameData, Data: []byte("hello origin")}))

	s.Bootstrap()
	want := []byte("BANNER|hello origin")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !bytes.Contains(response, want) {
		// The exit's real dial and reads happen on OS goroutines while
		// the simulation runs in virtual time; keep stepping and give
		// the OS side brief chances to catch up.
		for i := 0; i < 2000; i++ {
			mu.Lock()
			ok := s.H.Net.Step()
			mu.Unlock()
			if !ok {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, err := range s.H.Errors {
		t.Fatalf("harness error: %v", err)
	}
	if !bytes.Contains(response, want) {
		t.Fatalf("tunneled response %q does not contain %q", response, want)
	}
}
