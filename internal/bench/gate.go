package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// minNsDelta is the absolute floor below which a ratio regression is
// noise: sub-microsecond benchmarks (the streaming critical path runs
// in a few hundred ns) can double on timer jitter alone, so a gated
// regression must also be slower by at least this many ns/op.
const minNsDelta = 200.0

// Regression is one benchmark that got worse than the committed
// trajectory allows.
type Regression struct {
	// Name is the benchmark, Metric the dimension that regressed
	// ("ns_per_op" or "allocs_per_op").
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// Baseline and Current are the committed and measured values;
	// Ratio is Current/Baseline.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Ratio    float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.0f -> %.0f (%.2fx)",
		r.Name, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// ComparePerf gates a fresh perf run against a committed baseline.
// A benchmark regresses when its ns/op exceeds baseline*threshold AND
// the absolute slowdown clears minNsDelta (shields sub-µs cases from
// timer noise), or when its allocs/op exceeds baseline*threshold
// (allocation counts are deterministic — no noise floor needed).
// threshold <= 0 defaults to 2.0 — deliberately generous: the gate
// exists to catch order-of-magnitude accidents (a dropped fast path, an
// accidental quadratic loop), not to police scheduler variance on
// shared CI runners. Benchmarks present in only one report are returned
// in skipped, never gated — renames must not fail the build.
func ComparePerf(baseline, current PerfReport, threshold float64) (regs []Regression, skipped []string) {
	if threshold <= 0 {
		threshold = 2.0
	}
	base := make(map[string]PerfResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Results))
	for _, cur := range current.Results {
		seen[cur.Name] = true
		if cur.Unit != "" {
			continue // scenario measurement, informational only
		}
		b, ok := base[cur.Name]
		if !ok {
			skipped = append(skipped, cur.Name+" (no baseline)")
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*threshold &&
			cur.NsPerOp-b.NsPerOp > minNsDelta {
			regs = append(regs, Regression{
				Name: cur.Name, Metric: "ns_per_op",
				Baseline: b.NsPerOp, Current: cur.NsPerOp,
				Ratio: cur.NsPerOp / b.NsPerOp,
			})
		}
		if b.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*threshold {
			regs = append(regs, Regression{
				Name: cur.Name, Metric: "allocs_per_op",
				Baseline: float64(b.AllocsPerOp), Current: float64(cur.AllocsPerOp),
				Ratio: float64(cur.AllocsPerOp) / float64(b.AllocsPerOp),
			})
		}
	}
	for _, b := range baseline.Results {
		if !seen[b.Name] {
			skipped = append(skipped, b.Name+" (not in current run)")
		}
	}
	return regs, skipped
}

// ReadPerfReport loads a committed BENCH_*.json perf baseline.
func ReadPerfReport(path string) (PerfReport, error) {
	var rep PerfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("bench: %s holds no results", path)
	}
	return rep, nil
}
