package bench

import (
	"fmt"
	"sort"
	"time"
)

// Figure 6 and the §5.1 window-policy table: message-exchange-time
// CDFs under four window-closure policies, replaying the same
// synthetic PlanetLab straggler trace against each policy.

// WindowPolicy is one §5.1 policy under test.
type WindowPolicy struct {
	Name string
	// Threshold is the submit fraction that arms the adaptive close;
	// 1.0 with Mult 0 means "wait for all clients or the hard timeout"
	// (the paper's baseline).
	Threshold float64
	Mult      float64
}

// Fig6Policies returns the paper's four policies.
func Fig6Policies() []WindowPolicy {
	return []WindowPolicy{
		{Name: "baseline-120s", Threshold: 1.0, Mult: 1.0},
		{Name: "1.1x", Threshold: 0.95, Mult: 1.1},
		{Name: "1.2x", Threshold: 0.95, Mult: 1.2},
		{Name: "2.0x", Threshold: 0.95, Mult: 2.0},
	}
}

// Fig6Result is one policy's outcome.
type Fig6Result struct {
	Policy WindowPolicy
	// Times are per-round exchange times (sorted), the CDF's samples.
	Times []time.Duration
	// MissedFrac is the mean fraction of online clients whose
	// ciphertext missed the submission window (the §5.1 table).
	MissedFrac float64
	// DeadlineFrac is the fraction of rounds that ran into the hard
	// deadline.
	DeadlineFrac float64
}

// Fig6Config sizes the experiment. The paper used >500 PlanetLab
// clients, 8 EC2 servers, a 120 s window, and a 24-hour trace.
type Fig6Config struct {
	Clients     int
	Servers     int
	Rounds      int
	HardTimeout time.Duration
	Seed        int64
}

// DefaultFig6Config returns the paper-scale configuration.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{Clients: 500, Servers: 8, Rounds: 40, HardTimeout: 120 * time.Second, Seed: 61}
}

// QuickFig6Config returns a fast configuration for tests.
func QuickFig6Config() Fig6Config {
	return Fig6Config{Clients: 60, Servers: 4, Rounds: 10, HardTimeout: 30 * time.Second, Seed: 61}
}

// Fig6 runs every policy against the same delay trace.
func Fig6(cfg Fig6Config) ([]Fig6Result, error) {
	var results []Fig6Result
	for _, pol := range Fig6Policies() {
		profile := PlanetLab(cfg.Rounds+4, cfg.Clients, cfg.Seed)
		sc := SessionConfig{
			Servers:         cfg.Servers,
			Clients:         cfg.Clients,
			Profile:         profile,
			SlotLen:         192, // small chat slots
			Sign:            false,
			Alpha:           0, // isolate the window policy (§5.1)
			AlphaSet:        true,
			WindowThreshold: pol.Threshold,
			WindowMult:      pol.Mult,
			HardTimeout:     cfg.HardTimeout,
			WindowMin:       200 * time.Millisecond,
			Seed:            cfg.Seed,
		}
		s, err := BuildSession(sc)
		if err != nil {
			return nil, err
		}
		s.Bootstrap()
		s.RunRounds(uint64(cfg.Rounds+2), 80_000_000)
		if len(s.H.Errors) > 0 {
			return nil, fmt.Errorf("fig6 %s: %v", pol.Name, s.H.Errors[0])
		}

		ms := RoundMetrics(s.H, s.Servers[0].ID())
		res := Fig6Result{Policy: pol}
		deadline := 0
		var missedSum float64
		counted := 0
		for i, m := range ms {
			if i < 2 || i >= 2+cfg.Rounds { // warmup / tail trim
				continue
			}
			res.Times = append(res.Times, m.Total)
			if m.Total >= cfg.HardTimeout {
				deadline++
			}
			// Online clients this round: those the trace lets submit.
			online := 0
			for ci := 0; ci < cfg.Clients; ci++ {
				if _, ok := profile.Delays.Delay(m.Round, ci); ok {
					online++
				}
			}
			counted++
			// Missed = online minus counted participation.
			part := participationAt(s, m.Round)
			if online > 0 && part >= 0 && part < online {
				missedSum += float64(online-part) / float64(online)
			}
		}
		if counted > 0 {
			res.MissedFrac = missedSum / float64(counted)
			res.DeadlineFrac = float64(deadline) / float64(counted)
		}
		sort.Slice(res.Times, func(a, b int) bool { return res.Times[a] < res.Times[b] })
		results = append(results, res)
	}
	return results, nil
}

// participationAt extracts round r's participation count from server
// events (the Detail of round-complete events), or -1.
func participationAt(s *Session, r uint64) int {
	for _, e := range s.H.Events {
		if e.Node != s.Servers[0].ID() || e.Round != r {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Detail, "participation %d", &n); err == nil {
			return n
		}
	}
	return -1
}

// CDF returns (x, F(x)) pairs for plotting from sorted samples.
func CDF(sorted []time.Duration) [][2]float64 {
	out := make([][2]float64, len(sorted))
	for i, d := range sorted {
		out[i] = [2]float64{d.Seconds(), float64(i+1) / float64(len(sorted))}
	}
	return out
}
