package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"dissent/internal/crypto"
	"dissent/internal/dcnet"
)

// PerfResult is one data-plane microbenchmark measurement, serialized
// into the repository's BENCH_*.json perf trajectory.
type PerfResult struct {
	// Name identifies the benchmark (e.g. "server-pad/1024clients/4workers").
	Name string `json:"name"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerSec is payload throughput, when the benchmark moves bytes.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// AllocsPerOp / BytesPerOp are steady-state allocation counts.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Value/Unit carry scenario-harness measurements that are not
	// per-op timings (rounds/s, fan-out ratios, byte totals). Results
	// with a Unit are informational and never gated.
	Value float64 `json:"value,omitempty"`
	Unit  string  `json:"unit,omitempty"`
}

// PerfReport is the JSON document cmd/dissent-bench -exp perf emits:
// the measured data-plane hot paths plus enough environment to compare
// runs across machines and PRs.
type PerfReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the machine's visible CPU count — read alongside
	// GOMAXPROCS to spot oversubscribed runs (workers > cores), where
	// parallel-speedup numbers are not meaningful.
	NumCPU int  `json:"num_cpu,omitempty"`
	Quick  bool `json:"quick"`
	// Scenario names the cluster scenario that produced this report;
	// empty for microbenchmark runs.
	Scenario string `json:"scenario,omitempty"`
	// Note carries free-form environment caveats (CPU limits, etc.).
	Note    string       `json:"note,omitempty"`
	Results []PerfResult `json:"results"`
}

// perfCase is one benchmark to run.
type perfCase struct {
	name  string
	bytes int64
	fn    func(b *testing.B)
}

// PerfSuite measures the DC-net data plane's hot paths: serial vs
// parallel server pad expansion across worker counts and client
// counts, the streaming round critical path, the steady-state client
// submit path, and the slot codec. quick shrinks the sweep for CI
// smoke runs.
func PerfSuite(quick bool) PerfReport {
	const roundLen = 1024
	clientCounts := []int{128, 1024}
	workerCounts := []int{1, 2, 4, 8}
	if quick {
		clientCounts = []int{128}
		workerCounts = []int{1}
		if w := runtime.GOMAXPROCS(0); w > 1 {
			workerCounts = append(workerCounts, w)
		}
	}

	var cases []perfCase
	for _, clients := range clientCounts {
		seeds := perfSeeds(clients)
		moved := int64(clients) * roundLen
		cases = append(cases, perfCase{
			name:  fmt.Sprintf("server-pad-serial/%dclients", clients),
			bytes: moved,
			fn: func(b *testing.B) {
				pad := dcnet.NewPad(crypto.NewAESPRNG)
				dst := make([]byte, roundLen)
				b.SetBytes(moved)
				for i := 0; i < b.N; i++ {
					clear(dst)
					pad.ServerPadInto(dst, seeds, uint64(i))
				}
			},
		})
		for _, workers := range workerCounts {
			workers := workers
			cases = append(cases, perfCase{
				name:  fmt.Sprintf("server-pad-parallel/%dclients/%dworkers", clients, workers),
				bytes: moved,
				fn: func(b *testing.B) {
					pp := dcnet.NewParallelPad(crypto.NewAESPRNG, workers)
					dst := make([]byte, roundLen)
					b.SetBytes(moved)
					for i := 0; i < b.N; i++ {
						clear(dst)
						pp.ServerPadInto(dst, seeds, uint64(i))
					}
				},
			})
		}
	}

	cases = append(cases,
		perfCase{
			name: "round-critical-path/stream/1024clients",
			fn:   benchCriticalPathStream,
		},
		perfCase{
			name: "round-critical-path/batch/1024clients",
			fn:   benchCriticalPathBatch,
		},
		perfCase{
			name: "client-submit-steady-state/16servers",
			fn:   benchClientSubmit,
		},
		perfCase{
			name: "slot-encode/1KiB",
			fn:   benchSlotEncode,
		},
	)

	rep := PerfReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
	}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		res := PerfResult{
			Name:        c.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if c.bytes > 0 && r.NsPerOp() > 0 {
			res.MBPerSec = float64(c.bytes) / float64(r.NsPerOp()) * 1e3 / 1.048576
		}
		rep.Results = append(rep.Results, res)
	}

	// Pipelined-round throughput: virtual-time SimNet rounds/s at depth
	// 1 (serial) and 2 (window overlapped with certify). Deterministic,
	// so the depth2/depth1 ratio is a stable trajectory number.
	pipeRounds := uint64(30)
	if quick {
		pipeRounds = 15
	}
	for _, depth := range []int{1, 2} {
		res, err := PipelineThroughput(depth, pipeRounds, 1)
		if err != nil {
			rep.Note = fmt.Sprintf("round-pipeline/depth%d failed: %v", depth, err)
			continue
		}
		rep.Results = append(rep.Results, PerfResult{
			Name:  fmt.Sprintf("round-pipeline/depth%d", depth),
			Value: res.RoundsPerSec,
			Unit:  "rounds/s",
		})
	}
	return rep
}

// WriteJSON renders the report with stable indentation.
func (r PerfReport) WriteJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func perfSeeds(n int) [][]byte {
	seeds := make([][]byte, n)
	for i := range seeds {
		seeds[i] = crypto.Hash("perf-seed", crypto.HashUint64(uint64(i)))
	}
	return seeds
}

const perfRoundLen = 1024

func benchCriticalPathStream(b *testing.B) {
	const clients = 1024
	seeds := perfSeeds(clients)
	// Staged off the critical path, as the engine does during the
	// window: full pad prefetch + streaming ciphertext accumulator.
	pp := dcnet.NewParallelPad(crypto.NewAESPRNG, 0)
	prefetch := make([]byte, perfRoundLen)
	pp.ServerPadInto(prefetch, seeds, 1)
	acc := make([]byte, perfRoundLen)
	crypto.NewFastPRNG(crypto.Hash("acc", nil)).Read(acc)
	shares := perfShares(4)
	work := make([]byte, perfRoundLen)
	out := make([]byte, perfRoundLen)
	b.SetBytes(int64(clients) * perfRoundLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, prefetch)
		crypto.XORBytes(work, acc)
		clear(out)
		crypto.XORBytes(out, work)
		for _, s := range shares {
			crypto.XORBytes(out, s)
		}
	}
}

func benchCriticalPathBatch(b *testing.B) {
	const clients = 1024
	seeds := perfSeeds(clients)
	pad := dcnet.NewPad(crypto.NewAESPRNG)
	cts := make([][]byte, clients)
	for i := range cts {
		cts[i] = make([]byte, perfRoundLen)
		crypto.NewFastPRNG(crypto.HashUint64(uint64(i))).Read(cts[i])
	}
	shares := perfShares(4)
	out := make([]byte, perfRoundLen)
	b.SetBytes(int64(clients) * perfRoundLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		share := pad.ServerPad(seeds, uint64(i), perfRoundLen)
		for _, ct := range cts {
			crypto.XORBytes(share, ct)
		}
		clear(out)
		crypto.XORBytes(out, share)
		for _, s := range shares {
			crypto.XORBytes(out, s)
		}
	}
}

func benchClientSubmit(b *testing.B) {
	const servers, slotLen, vecLen = 16, 1024, 4096
	seeds := perfSeeds(servers)
	pad := dcnet.NewPad(crypto.NewAESPRNG)
	vec := make([]byte, vecLen)
	ct := make([]byte, vecLen)
	payload := dcnet.SlotPayload{NextLen: slotLen, Data: make([]byte, slotLen-dcnet.MinSlotLen)}
	rnd := crypto.NewFastPRNG(crypto.Hash("perf-rnd", nil))
	b.SetBytes(vecLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps := pad.Prepare(seeds, uint64(i)) // idle-window prefetch
		b.StartTimer()
		if err := dcnet.EncodeSlot(vec[:slotLen], payload, rnd); err != nil {
			b.Fatal(err)
		}
		ps.CiphertextInto(ct, vec)
	}
}

func benchSlotEncode(b *testing.B) {
	buf := make([]byte, perfRoundLen)
	payload := dcnet.SlotPayload{NextLen: perfRoundLen, Data: make([]byte, perfRoundLen-dcnet.MinSlotLen)}
	rnd := crypto.NewFastPRNG(crypto.Hash("perf-rnd", nil))
	b.SetBytes(perfRoundLen)
	for i := 0; i < b.N; i++ {
		if err := dcnet.EncodeSlot(buf, payload, rnd); err != nil {
			b.Fatal(err)
		}
	}
}

func perfShares(m int) [][]byte {
	shares := make([][]byte, m)
	for j := range shares {
		shares[j] = make([]byte, perfRoundLen)
		crypto.NewFastPRNG(crypto.HashUint64(uint64(5000 + j))).Read(shares[j])
	}
	return shares
}
