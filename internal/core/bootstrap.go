package core

import (
	"errors"
	"fmt"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/dcnet"
)

// Trusted-bootstrap entry points. Benchmark harnesses reproducing the
// paper's Figures 7–8 measure DC-net round behaviour at thousands of
// clients; running the full verifiable scheduling shuffle there would
// measure Figure 9's subject instead (and costs O(k·N·M²) public-key
// operations). InstallSchedule lets a harness inject a pre-agreed slot
// assignment so the engines start directly in the running phase. The
// production path remains Start + the shuffle protocol.

// InstallSchedule (server) installs slot pseudonym keys directly and
// begins round 0. It must be called instead of Start.
func (s *Server) InstallSchedule(now time.Time, slotKeys []crypto.Element) (*Output, error) {
	if s.phase != phaseSetupCollect && s.sched != nil {
		return nil, errors.New("core: schedule already established")
	}
	if len(slotKeys) == 0 {
		return nil, errors.New("core: empty slot key list")
	}
	s.slotKeys = slotKeys
	cfg := dcnet.Config{
		NumSlots:        len(slotKeys),
		DefaultOpenLen:  s.def.Policy.DefaultOpenLen,
		MaxSlotLen:      s.def.Policy.MaxSlotLen,
		IdleCloseRounds: s.def.Policy.IdleCloseRounds,
	}
	sched, err := dcnet.NewSchedule(cfg)
	if err != nil {
		return nil, err
	}
	s.installRotation(sched)
	sched.SetLag(s.depth - 1)
	s.sched = sched
	s.prevCount = len(slotKeys)
	s.phase = phaseRunning
	s.rosterDigests[s.def.Version] = sched.Digest()
	s.persistSnapshot()
	out := &Output{Events: []Event{{Kind: EventScheduleReady,
		Detail: fmt.Sprintf("%d slots (trusted bootstrap)", len(slotKeys))}}}
	s.startRound(now, out)
	return out, nil
}

// InstallSchedule (client) installs the slot assignment and pseudonym
// keypair and submits round 0. It must be called instead of Start.
func (c *Client) InstallSchedule(now time.Time, numSlots, mySlot int, pseudonym *crypto.KeyPair) (*Output, error) {
	if c.ready {
		return nil, errors.New("core: schedule already established")
	}
	if mySlot < 0 || mySlot >= numSlots {
		return nil, fmt.Errorf("core: slot %d out of range [0,%d)", mySlot, numSlots)
	}
	if pseudonym == nil {
		kp, err := crypto.GenerateKeyPair(c.keyGrp, c.rand)
		if err != nil {
			return nil, err
		}
		pseudonym = kp
	}
	c.pseudonym = pseudonym
	c.mySlot = mySlot
	cfg := dcnet.Config{
		NumSlots:        numSlots,
		DefaultOpenLen:  c.def.Policy.DefaultOpenLen,
		MaxSlotLen:      c.def.Policy.MaxSlotLen,
		IdleCloseRounds: c.def.Policy.IdleCloseRounds,
	}
	sched, err := dcnet.NewSchedule(cfg)
	if err != nil {
		return nil, err
	}
	c.installRotation(sched)
	sched.SetLag(c.depth - 1)
	c.sched = sched
	c.ready = true
	dig := sched.Digest()
	c.applyDigest = dig[:]
	out := &Output{Events: []Event{{Kind: EventScheduleReady,
		Detail: fmt.Sprintf("slot %d of %d (trusted bootstrap)", mySlot, numSlots)}}}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}
