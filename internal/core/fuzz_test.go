package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dissent/internal/group"
)

// fuzzState is the shared adversarial-op cursor: every message
// delivery across the whole group consumes one byte of the fuzz input
// to decide whether (and how) to redeliver an adversarial variant.
// Exhausted input means no further injections, so short inputs are
// mostly-clean runs and the fuzzer grows hostility incrementally.
type fuzzState struct {
	ops []byte
	cur int
}

func (st *fuzzState) next() byte {
	if st.cur >= len(st.ops) {
		return 0
	}
	b := st.ops[st.cur]
	st.cur++
	return b
}

// dispatchFuzzer wraps one node's engine and, steered by the op
// stream, redelivers adversarial variants of the messages the node
// legitimately receives: immediate duplicates, stale replays of past
// rounds' traffic, and forged copies with the round number shifted to
// r−1/r+1 (whose signatures no longer verify, and which cross the
// pipeline's round boundaries). The engine must reject or ignore every
// variant without a hard error, without wedging, and without
// disturbing its certified outputs.
type dispatchFuzzer struct {
	inner Engine
	st    *fuzzState
	hist  []*Message
}

func (d *dispatchFuzzer) Start(now time.Time) (*Output, error) { return d.inner.Start(now) }
func (d *dispatchFuzzer) Tick(now time.Time) (*Output, error)  { return d.inner.Tick(now) }

func (d *dispatchFuzzer) Handle(now time.Time, m *Message) (*Output, error) {
	out, err := d.inner.Handle(now, m)
	if err != nil {
		return out, err
	}
	var extra *Message
	switch d.st.next() & 7 {
	case 3: // immediate duplicate
		extra = m
	case 4, 7: // stale replay of an earlier delivery to this node
		if len(d.hist) > 0 {
			extra = d.hist[int(d.st.next())%len(d.hist)]
		}
	case 5: // forged copy shifted one round ahead (into the pipeline)
		mm := *m
		mm.Round++
		extra = &mm
	case 6: // forged copy shifted one round back
		if m.Round > 0 {
			mm := *m
			mm.Round--
			extra = &mm
		}
	}
	if extra != nil {
		o, err := d.inner.Handle(now, extra)
		if err != nil {
			return out, err
		}
		if out == nil {
			out = o
		} else {
			out.merge(o)
		}
	}
	if len(d.hist) < 64 {
		d.hist = append(d.hist, m)
	} else {
		d.hist[int(m.Round)%64] = m
	}
	return out, nil
}

// fuzzFixture builds the 2-server, 2-client pipelined group every
// dispatch-fuzz run (and the trace seed) uses: depth 2 so injected
// cross-round traffic lands while two rounds are genuinely in flight,
// and an epoch boundary mid-run so the drain path is exercised too.
func fuzzFixture(tb testing.TB, wrap func(Engine) Engine) *fixture {
	return newFixture(tb, 2, 2, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.Alpha = 1.0
			p.BeaconEpochRounds = 4
			p.DefaultOpenLen = 32
			p.MaxSlotLen = 256
		},
		mutateOpts: func(o *Options) { o.PipelineDepth = 2 },
		wrapServer: func(_ int, s *Server) Engine { return wrap(s) },
		wrapClient: func(_ int, c *Client) Engine { return wrap(c) },
	})
}

// driveFuzzWorkload runs the standard workload against an
// already-wrapped fixture: payloads trickle in across several rounds
// (spanning an epoch boundary at round 4), then the run drains.
func driveFuzzWorkload(f *fixture) {
	f.h.StartAll()
	f.stepUntilRound(0, 400_000)
	for r := uint64(1); r <= 5; r++ {
		f.clients[int(r)%len(f.clients)].Send([]byte(fmt.Sprintf("fuzz-r%d-payload", r)))
		f.stepUntilRound(r, 400_000)
	}
	f.stepUntilRound(7, 600_000)
}

// traceRecorder taps each node's inbound dispatch to record one byte
// per delivered message (its type), turning a clean SimNet run into a
// realistic-length op stream for the fuzz seed corpus.
type traceRecorder struct {
	inner Engine
	trace *[]byte
}

func (r *traceRecorder) Start(now time.Time) (*Output, error) { return r.inner.Start(now) }
func (r *traceRecorder) Tick(now time.Time) (*Output, error)  { return r.inner.Tick(now) }
func (r *traceRecorder) Handle(now time.Time, m *Message) (*Output, error) {
	*r.trace = append(*r.trace, byte(m.Type))
	return r.inner.Handle(now, m)
}

// FuzzRoundDispatch is the pipelined round engine's message-hostility
// fuzz target: under interleaved, duplicated, and stale cross-round
// deliveries (r−1, r, r+1) the group must not panic, must not return a
// hard engine error (a remote peer could weaponize one as a DoS), must
// keep each node's certified-round stream strictly monotone, and must
// keep all servers' delivered cleartext byte-identical per (round,
// slot) — the observable form of cross-round state bleed.
func FuzzRoundDispatch(f *testing.F) {
	f.Add([]byte{})                                        // clean run
	f.Add(bytes.Repeat([]byte{3}, 48))                     // duplicate storms
	f.Add(bytes.Repeat([]byte{4, 9}, 24))                  // stale replays
	f.Add(bytes.Repeat([]byte{5, 6}, 24))                  // round-shifted forgeries
	f.Add(bytes.Repeat([]byte{3, 4, 1, 5, 0, 6, 7, 2}, 8)) // mixed

	// Seed drawn from an actual SimNet trace: the message-type sequence
	// of a clean run, so the fuzzer starts from op streams whose length
	// and rhythm match real protocol traffic.
	var trace []byte
	tf := fuzzFixture(f, func(e Engine) Engine { return &traceRecorder{inner: e, trace: &trace} })
	driveFuzzWorkload(tf)
	f.Add(trace)

	f.Fuzz(func(t *testing.T, ops []byte) {
		st := &fuzzState{ops: ops}
		fx := fuzzFixture(t, func(e Engine) Engine { return &dispatchFuzzer{inner: e, st: st} })
		driveFuzzWorkload(fx)

		// Liveness floor: adversarial redelivery must not wedge the
		// group (hard timeouts and resends bound every phase).
		for i, s := range fx.servers {
			if s.Round() < 3 {
				t.Fatalf("server %d wedged at round %d", i, s.Round())
			}
		}

		// Certified outputs stay strictly monotone per node: a stale or
		// cross-round message must never re-certify or reorder a round.
		lastDone := make(map[group.NodeID]uint64)
		for _, e := range fx.h.EventsOf(EventRoundComplete) {
			if prev, ok := lastDone[e.Node]; ok && e.Round <= prev {
				t.Fatalf("node %x certified round %d after %d", e.Node[:4], e.Round, prev)
			}
			lastDone[e.Node] = e.Round
		}

		// No cross-round state bleed: every server that delivered
		// (round, slot) must have delivered identical bytes. A stale
		// vector counted into the wrong round shows up here as a
		// cross-server divergence.
		type key struct {
			r    uint64
			slot int
		}
		serverIDs := make(map[group.NodeID]bool, len(fx.servers))
		for _, s := range fx.servers {
			serverIDs[s.ID()] = true
		}
		canon := make(map[key][]byte)
		for _, d := range fx.h.Deliveries {
			if !serverIDs[d.Node] {
				continue
			}
			k := key{d.Round, d.Slot}
			if want, ok := canon[k]; ok {
				if !bytes.Equal(want, d.Data) {
					t.Fatalf("round %d slot %d: servers delivered divergent cleartext", d.Round, d.Slot)
				}
			} else {
				canon[k] = d.Data
			}
		}
	})
}
