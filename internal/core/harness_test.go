package core

import (
	"testing"
	"time"

	"dissent/internal/group"
)

// echoEngine is a trivial engine for harness plumbing tests: it
// replies to every message, reports an event on start, and asks for a
// tick.
type echoEngine struct {
	peer    group.NodeID
	started bool
	ticked  int
	got     []*Message
}

func (e *echoEngine) Start(now time.Time) (*Output, error) {
	e.started = true
	return &Output{
		Events: []Event{{Kind: EventScheduleReady, Detail: "echo up"}},
		Timer:  now.Add(time.Second),
	}, nil
}

func (e *echoEngine) Handle(now time.Time, m *Message) (*Output, error) {
	e.got = append(e.got, m)
	if m.Type == MsgClientSubmit {
		reply := &Message{From: m.From, Type: MsgOutput, Round: m.Round, Body: m.Body}
		return &Output{Send: []Envelope{{To: e.peer, Msg: reply}}}, nil
	}
	return &Output{}, nil
}

func (e *echoEngine) Tick(now time.Time) (*Output, error) {
	e.ticked++
	return &Output{}, nil
}

func hid(b byte) group.NodeID {
	var id group.NodeID
	id[0] = b
	return id
}

func TestHarnessDeliveryAndLatency(t *testing.T) {
	h := NewHarness()
	a, b := hid(1), hid(2)
	ea := &echoEngine{peer: b}
	eb := &echoEngine{peer: a}
	h.AddNode(a, ea, 0)
	h.AddNode(b, eb, 0)
	h.Latency = func(from, to group.NodeID) time.Duration { return 100 * time.Millisecond }

	h.StartAll()
	start := h.Net.Now()
	// Inject a message from a to b through the harness.
	h.ProcessExternal(a, start, &Output{Send: []Envelope{{To: b,
		Msg: &Message{From: a, Type: MsgClientSubmit, Round: 1, Body: []byte("x")}}}}, nil)
	h.Run(0)

	if len(eb.got) != 1 {
		t.Fatalf("b received %d messages", len(eb.got))
	}
	if len(ea.got) != 1 || ea.got[0].Type != MsgOutput {
		t.Fatalf("a did not get the echo reply: %+v", ea.got)
	}
	// The round trip took at least 2x latency.
	if h.Net.Now().Sub(start) < 200*time.Millisecond {
		t.Errorf("round trip finished after %v, want >= 200ms", h.Net.Now().Sub(start))
	}
	if !ea.started || !eb.started || ea.ticked == 0 {
		t.Error("start/tick plumbing broken")
	}
}

func TestHarnessUplinkSerialization(t *testing.T) {
	h := NewHarness()
	a, b := hid(1), hid(2)
	ea := &echoEngine{peer: b}
	eb := &echoEngine{peer: a}
	h.AddNode(a, ea, 1000) // 1000 B/s uplink
	h.AddNode(b, eb, 0)

	big := make([]byte, 2000)
	msg := &Message{From: a, Type: MsgInventory, Round: 1, Body: big}
	h.ProcessExternal(a, h.Net.Now(), &Output{Send: []Envelope{{To: b, Msg: msg}, {To: b, Msg: msg}}}, nil)
	h.Run(0)
	if len(eb.got) != 2 {
		t.Fatalf("b received %d messages", len(eb.got))
	}
	// Two ~2KB messages through 1000 B/s should take >= 4 seconds.
	if got := h.Net.Now().Sub(time.Unix(0, 0)); got < 4*time.Second {
		t.Errorf("transfer finished after %v, want >= 4s", got)
	}
}

func TestHarnessOutboundDropAndDelay(t *testing.T) {
	h := NewHarness()
	a, b := hid(1), hid(2)
	ea := &echoEngine{peer: b}
	eb := &echoEngine{peer: a}
	h.AddNode(a, ea, 0)
	h.AddNode(b, eb, 0)
	h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if m.Round == 13 {
			return 0, true // drop
		}
		return 500 * time.Millisecond, false
	}
	send := func(round uint64) {
		h.ProcessExternal(a, h.Net.Now(), &Output{Send: []Envelope{{To: b,
			Msg: &Message{From: a, Type: MsgInventory, Round: round}}}}, nil)
	}
	send(13)
	send(14)
	h.Run(0)
	if len(eb.got) != 1 || eb.got[0].Round != 14 {
		t.Fatalf("drop/delay hook misbehaved: %+v", eb.got)
	}
	if h.Net.Now().Sub(time.Unix(0, 0)) < 500*time.Millisecond {
		t.Error("delay not applied")
	}
}

func TestHarnessComputeSerializesCPU(t *testing.T) {
	h := NewHarness()
	a, b := hid(1), hid(2)
	ea := &echoEngine{peer: b}
	eb := &echoEngine{peer: a}
	h.AddNode(a, ea, 0)
	h.AddNode(b, eb, 0)
	h.Compute = func(node group.NodeID, m *Message) time.Duration { return time.Second }

	out := &Output{}
	for i := 0; i < 3; i++ {
		out.Send = append(out.Send, Envelope{To: b,
			Msg: &Message{From: a, Type: MsgInventory, Round: uint64(i)}})
	}
	h.ProcessExternal(a, h.Net.Now(), out, nil)
	h.Run(0)
	if len(eb.got) != 3 {
		t.Fatalf("b received %d messages", len(eb.got))
	}
	// 3 messages x 1s serialized compute.
	if got := h.Net.Now().Sub(time.Unix(0, 0)); got < 3*time.Second {
		t.Errorf("CPU serialization: finished after %v, want >= 3s", got)
	}
}

func TestHarnessUnknownDestination(t *testing.T) {
	h := NewHarness()
	a := hid(1)
	h.AddNode(a, &echoEngine{}, 0)
	h.ProcessExternal(a, h.Net.Now(), &Output{Send: []Envelope{{To: hid(9),
		Msg: &Message{From: a, Type: MsgInventory}}}}, nil)
	h.Run(0)
	if len(h.Errors) != 1 {
		t.Fatalf("expected 1 error, got %v", h.Errors)
	}
}

func TestHarnessAccounting(t *testing.T) {
	h := NewHarness()
	a, b := hid(1), hid(2)
	h.AddNode(a, &echoEngine{peer: b}, 0)
	h.AddNode(b, &echoEngine{peer: a}, 0)
	m := &Message{From: a, Type: MsgCommit, Round: 1, Body: make([]byte, 100)}
	h.ProcessExternal(a, h.Net.Now(), &Output{Send: []Envelope{{To: b, Msg: m}}}, nil)
	h.Run(0)
	if h.BytesSent[a] < 100 {
		t.Errorf("BytesSent[a] = %d", h.BytesSent[a])
	}
	if h.MsgCount[MsgCommit] != 1 {
		t.Errorf("MsgCount = %v", h.MsgCount)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventScheduleReady; k <= EventWindowClosed; k++ {
		if s := k.String(); len(s) == 0 || s[0] == 'e' && s != "event(0)" && len(s) > 6 && s[:6] == "event(" {
			t.Errorf("missing name for kind %d", k)
		}
	}
	if EventKind(99).String() != "event(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestOutputMergeTimers(t *testing.T) {
	t1 := time.Unix(100, 0)
	t2 := time.Unix(50, 0)
	a := &Output{Timer: t1}
	a.merge(&Output{Timer: t2})
	if !a.Timer.Equal(t2) {
		t.Error("merge did not keep the earlier timer")
	}
	b := &Output{}
	b.merge(&Output{Timer: t1})
	if !b.Timer.Equal(t1) {
		t.Error("merge ignored timer on zero base")
	}
	b.merge(nil) // must not panic
}
