package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
	"dissent/internal/obs"
	"dissent/internal/shuffle"
)

// witnessInfo records a detected disruption pending accusation: the
// round, our slot, and a slot-relative bit we sent as 0 that came out 1.
type witnessInfo struct {
	round uint64
	bit   int
}

// clientRound records one submitted, not-yet-certified round at a
// client. With pipelining up to depth coexist: the client submits round
// r+1 while still awaiting round r's certified output.
type clientRound struct {
	r      uint64
	start  time.Time // submit time (trace span origin)
	padDur time.Duration

	vec      []byte // message vector submitted (resend on failure); pooled
	sentSlot []byte // our encoded slot region (nil if closed); aliases sentBuf
	sentBuf  []byte // reusable backing for sentSlot
	// sub retains the signed submission so Tick can resend it while the
	// round stays uncertified. A resend is idempotent at the server
	// (duplicate submissions drop), and for a round that retired while we
	// were unreachable it elicits the retained certified output — the
	// catch-up ladder a client behind the group climbs back up on.
	// resendAt/resendN drive the resend backoff.
	sub      *Message
	resendAt time.Time
	resendN  int
}

// Client is the Dissent client engine (Algorithm 1). Applications
// queue payloads with Send; the engine requests a slot, transmits, and
// surfaces every slot's decoded payload as Deliveries.
type Client struct {
	node
	idx      int
	upstream group.NodeID

	serverSeeds [][]byte // pairwise DC-net seeds, by server index
	pad         *dcnet.Pad

	pseudonym *crypto.KeyPair
	mySlot    int
	sched     *dcnet.Schedule
	ready     bool
	// certKeys/certSigs retain the verified schedule certificate for
	// ScheduleCertificate (beacon verifiers fetch it from any node).
	certKeys [][]byte
	certSigs [][]byte

	round   uint64 // next round to submit
	nextOut uint64 // next round output to process
	depth   int    // pipeline depth: rounds submitted before an output returns
	// inflight holds the submitted-but-uncertified rounds, oldest first
	// (at most depth); spare recycles retired records so the steady-state
	// submit path stays allocation-free. parked holds a failed round's
	// vector across an epoch boundary (resubmitAfterRoster).
	inflight      []*clientRound
	spare         []*clientRound
	parked        *clientRound
	outbox        [][]byte
	reqPending    bool // we have an unserved slot request in flight
	awaitingBlame bool
	// rosterDone is the highest epoch-boundary round whose roster update
	// has been applied: submission into that boundary may proceed. The
	// boundary wait is edge-triggered off this watermark (the server
	// analogue is rosterDue).
	rosterDone uint64
	// drain is the first round after the latest pipeline drain the client
	// has observed (session start, applied roster update, completed blame
	// session, or the welcome's exported drain point). Rounds ramp their
	// schedule delta-queue depth up from here, mirroring the servers'
	// drainRound — see pendingAhead and dcnet.Schedule.SyncPipeline.
	drain uint64

	// Data-plane hot path: nextStreams holds the (pair, round) streams
	// prepared during the previous round's idle window — pairwise seeds
	// are round-independent, so round r+1's AES key schedules can be
	// built the moment round r is submitted, leaving the submit path
	// itself allocation-free. bufs recycles message vectors and
	// ciphertext buffers; perf records pad timings for Metrics.
	nextStreams *dcnet.PadStreams
	bufs        bufPool
	perf        perfCounters

	// Membership churn state (see roster.go).
	expelled        bool   // expelled by verdict or certified removal; not submitting
	joining         bool   // prospective member awaiting admission
	joinAddr        string // advertised transport address for the join request
	awaitingRoster  bool   // epoch boundary: hold submission for MsgRosterUpdate
	resubmitPending bool   // a failed round's vector awaits the roster update
	pairSeedFn      func(clientIdx, serverIdx int) []byte
	// applyDigest is the schedule digest captured when the current
	// roster version was applied (or at schedule install for the initial
	// version); nil when no apply-point digest is known (mid-stream
	// welcome or snapshot re-sync). It rides the catch-up probe so the
	// upstream server can detect a silently diverged replica and force a
	// certified snapshot re-sync.
	applyDigest []byte

	witness          *witnessInfo
	accusedInSession int32

	// retry is the resolved stale-submission resend backoff.
	retry RetryPolicy
}

// NewClient builds a client engine for the given identity key.
func NewClient(def *group.Definition, kp *crypto.KeyPair, opts Options) (*Client, error) {
	c := &Client{node: newNode(def, kp, opts)}
	c.idx = def.ClientIndex(c.id)
	if c.idx < 0 {
		return nil, errors.New("core: key is not a client in this group")
	}
	c.upstream = def.Servers[def.UpstreamServer(c.idx)].ID
	c.serverSeeds = make([][]byte, len(def.Servers))
	for j, srv := range def.Servers {
		if opts.PairSeed != nil {
			c.serverSeeds[j] = opts.PairSeed(c.idx, j)
		} else {
			seed, err := c.pairSeed(srv.PubKey)
			if err != nil {
				return nil, fmt.Errorf("core: server %d seed: %w", j, err)
			}
			c.serverSeeds[j] = seed
		}
	}
	c.pad = dcnet.NewPad(c.prng)
	c.mySlot = -1
	c.pairSeedFn = opts.PairSeed
	c.depth = opts.PipelineDepth
	if c.depth < 1 {
		c.depth = 1
	}
	var retry RetryPolicy
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	c.retry = retry.withDefaults(submitResendInterval)
	return c, nil
}

// takeRound returns a reset round record, reusing a retired one.
func (c *Client) takeRound() *clientRound {
	if n := len(c.spare); n > 0 {
		cr := c.spare[n-1]
		c.spare = c.spare[:n-1]
		*cr = clientRound{sentBuf: cr.sentBuf}
		return cr
	}
	return &clientRound{}
}

// retireRound recycles a round record's pooled vector and returns the
// record to the spare list.
func (c *Client) retireRound(cr *clientRound) {
	c.bufs.put(cr.vec)
	cr.vec, cr.sentSlot, cr.sub = nil, nil, nil
	c.spare = append(c.spare, cr)
}

// ID returns the client's node ID.
func (c *Client) ID() group.NodeID { return c.id }

// Index returns the client's index in the group definition.
func (c *Client) Index() int { return c.idx }

// Slot returns the client's anonymous slot index, or -1 before setup.
func (c *Client) Slot() int { return c.mySlot }

// Ready reports whether the schedule is established.
func (c *Client) Ready() bool { return c.ready }

// Round returns the next round the client will submit for.
func (c *Client) Round() uint64 { return c.round }

// ScheduleCertificate returns the verified schedule certificate — the
// slot-key list and every server's signature over it — or nils before
// the schedule arrives (including under trusted bootstrap). The
// dissent SDK serves it beside the beacon chain so external verifiers
// can derive the session's beacon genesis from any node.
func (c *Client) ScheduleCertificate() (keys, sigs [][]byte) {
	return c.certKeys, c.certSigs
}

// SchedulePermutation returns the current slot-layout permutation, or
// nil before the schedule is established.
func (c *Client) SchedulePermutation() []int {
	if c.sched == nil {
		return nil
	}
	return c.sched.Permutation()
}

// Send queues an application payload for anonymous transmission. Large
// payloads are fragmented across rounds up to the slot-length cap;
// reassembly is the application's concern.
func (c *Client) Send(data []byte) {
	c.outbox = append(c.outbox, append([]byte(nil), data...))
}

// Pending returns the number of queued outbound payloads.
func (c *Client) Pending() int { return len(c.outbox) }

// Start generates the pseudonym key and submits it for scheduling —
// or, for a joining engine, sends the join request instead.
func (c *Client) Start(now time.Time) (*Output, error) {
	if c.joining {
		return c.startJoin(now)
	}
	pseu, err := crypto.GenerateKeyPair(c.keyGrp, c.rand)
	if err != nil {
		return nil, err
	}
	c.pseudonym = pseu
	in, err := shuffle.PrepareInput(c.keyGrp, c.serverIdentityKeys(), []crypto.Element{pseu.Public}, c.rand)
	if err != nil {
		return nil, err
	}
	body := (&PseudonymSubmit{CT: crypto.EncodeCiphertext(c.keyGrp, in[0])}).Encode()
	m, err := c.sign(MsgPseudonymSubmit, 0, body)
	if err != nil {
		return nil, err
	}
	out := &Output{Send: []Envelope{{To: c.upstream, Msg: m}}}
	c.applyInterdict(out)
	return out, nil
}

func (c *Client) serverIdentityKeys() []crypto.Element {
	return c.def.ServerPubKeys()
}

// Handle processes one incoming message.
func (c *Client) Handle(now time.Time, m *Message) (*Output, error) {
	out, err := c.dispatch(now, m)
	if err != nil {
		return out, err
	}
	c.applyInterdict(out)
	return out, nil
}

func (c *Client) dispatch(now time.Time, m *Message) (*Output, error) {
	switch m.Type {
	case MsgSchedule:
		return c.onSchedule(now, m)
	case MsgOutput:
		return c.onOutput(now, m)
	case MsgBlameStart:
		return c.onBlameStart(now, m)
	case MsgBlameDone:
		return c.onBlameDone(now, m)
	case MsgRebuttalRequest:
		return c.onRebuttalRequest(now, m)
	case MsgRosterUpdate:
		return c.onRosterUpdate(now, m)
	case MsgJoinWelcome:
		return c.onJoinWelcome(now, m)
	case MsgSnapshotSync:
		return c.onSnapshotSync(now, m)
	default:
		return nil, fmt.Errorf("core: client got unexpected %s", m.Type)
	}
}

// submitResendInterval bounds how long a submitted round may sit
// uncertified before the client re-sends it. Healthy rounds certify
// well inside the interval, so the steady-state cost is one no-op
// timer per interval; a round the group retired while the client was
// unreachable answers the resend with the retained certified output
// (onClientSubmit's stale path), which is what lets a behind client
// ladder back up to the live round instead of wedging.
const submitResendInterval = 2 * time.Second

// Tick re-sends a joiner's pending join request; for a client stuck
// waiting on a roster update past the sync interval it asks its
// upstream server to replay missed certified updates (the catch-up for
// a lost MsgRosterUpdate frame); and for a submitted round uncertified
// past submitResendInterval it re-sends the submission (lost frame, or
// a round certified while our upstream server was down).
func (c *Client) Tick(now time.Time) (*Output, error) {
	if c.joining && !c.ready && c.pseudonym != nil {
		return c.sendJoinRequest(now)
	}
	if c.ready && c.awaitingRoster {
		body := (&JoinRequest{Version: c.def.Version, SchedDigest: c.applyDigest}).Encode()
		m, err := c.sign(MsgJoinRequest, c.round, body)
		if err != nil {
			return nil, err
		}
		return &Output{
			Send:  []Envelope{{To: c.upstream, Msg: m}},
			Timer: now.Add(rosterSyncInterval),
		}, nil
	}
	if c.ready && !c.awaitingBlame && !c.expelled && len(c.inflight) > 0 {
		cr := c.inflight[0]
		if cr.resendAt.IsZero() {
			cr.resendAt = cr.start.Add(c.retry.delay(0, c.retrySeed^cr.r))
		}
		out := &Output{Timer: cr.resendAt}
		if !now.Before(cr.resendAt) {
			// Reschedule past due timers even when there is nothing to
			// resend yet (a round inflight before its submission is
			// built), so the returned timer is always in the future.
			if cr.sub != nil {
				out.Send = append(out.Send, Envelope{To: c.upstream, Msg: cr.sub})
			}
			cr.resendN++
			cr.resendAt = now.Add(c.retry.delay(cr.resendN, c.retrySeed^cr.r))
			out.Timer = cr.resendAt
		}
		c.applyInterdict(out)
		return out, nil
	}
	return &Output{}, nil
}

func (c *Client) onSchedule(now time.Time, m *Message) (*Output, error) {
	if c.ready {
		return &Output{}, nil
	}
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	p, err := DecodeSchedule(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	certDigest, err := VerifyScheduleCert(c.def, p.Keys, p.Sigs)
	if err != nil {
		return c.violation(err), nil
	}
	myKey := c.keyGrp.Encode(c.pseudonym.Public)
	c.mySlot = -1
	for i, k := range p.Keys {
		if bytes.Equal(k, myKey) {
			c.mySlot = i
			break
		}
	}
	if c.mySlot < 0 {
		return nil, errors.New("core: our pseudonym key is missing from the schedule")
	}
	cfg := dcnet.Config{
		NumSlots:        len(p.Keys),
		DefaultOpenLen:  c.def.Policy.DefaultOpenLen,
		MaxSlotLen:      c.def.Policy.MaxSlotLen,
		IdleCloseRounds: c.def.Policy.IdleCloseRounds,
	}
	sched, err := dcnet.NewSchedule(cfg)
	if err != nil {
		return nil, err
	}
	if err := c.bindBeaconSession(certDigest); err != nil {
		return nil, err
	}
	c.installRotation(sched)
	sched.SetLag(c.depth - 1)
	c.sched = sched
	c.ready = true
	c.certKeys, c.certSigs = p.Keys, p.Sigs
	dig := sched.Digest()
	c.applyDigest = dig[:]
	out := &Output{Events: []Event{{Kind: EventScheduleReady, Detail: fmt.Sprintf("slot %d of %d", c.mySlot, len(p.Keys))}}}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}

// pendingAhead returns how many of the schedule's queued deltas fall
// within the layout horizon of round r: round r is composed (and later
// decoded) against the deltas of rounds ≤ max(drain−1, r−depth). With p
// deltas queued for the rounds (nextOut−1−p, nextOut−1], the oldest
// p − ((nextOut−1) − horizon) are within the horizon. The bound matters
// after a drain ramp and for a freshly welcomed joiner, whose restored
// queue holds deltas beyond its first round's horizon.
func (c *Client) pendingAhead(r uint64) int {
	p := c.sched.PendingDeltas()
	if p == 0 {
		return 0
	}
	a := int64(c.nextOut) - 1 // every round ≤ this has queued its delta
	h := int64(r) - int64(c.depth)
	if d := int64(c.drain) - 1; d > h {
		h = d
	}
	k := p - int(a-h)
	if k < 0 {
		k = 0
	}
	if k > p {
		k = p
	}
	return k
}

// composeVector lays out one round's message vector (Algorithm 1
// step 2) into cr and records what we transmitted for disruption
// detection. The layout comes from the schedule's ahead view bounded to
// round cr.r's horizon: under pipelining older rounds' directives are
// still queued when this round composes, and the bounded view is
// exactly the layout the servers will decode this round at. The vector
// comes from the buffer pool.
func (c *Client) composeVector(cr *clientRound) ([]byte, error) {
	ahead := c.pendingAhead(cr.r)
	vec := c.bufs.get(c.sched.AheadLenUpTo(ahead))
	slotLen := c.sched.AheadSlotLenUpTo(c.mySlot, ahead)
	cr.sentSlot = nil
	if slotLen == 0 {
		if len(c.outbox) > 0 || c.witness != nil {
			bit := true
			if c.reqPending {
				// §3.8: randomize retries so a disruptor cannot keep
				// cancelling our request bit.
				bit = randBit(c.rand)
			}
			c.sched.SetReqBit(vec, c.mySlot, bit)
			c.reqPending = true
		}
		return vec, nil
	}
	payload := dcnet.SlotPayload{}
	capacity := dcnet.SlotCapacity(slotLen)
	// Drain as many queued payloads as fit: the slot is a byte stream,
	// so consecutive payloads concatenate (framing is the
	// application's concern, as with any SOCKS byte tunnel).
	var data []byte
	for len(c.outbox) > 0 && len(data) < capacity {
		msg := c.outbox[0]
		take := capacity - len(data)
		if len(msg) <= take {
			data = append(data, msg...)
			c.outbox = c.outbox[1:]
		} else {
			data = append(data, msg[:take]...)
			c.outbox[0] = msg[take:]
		}
	}
	payload.Data = data
	remaining := 0
	for _, msg := range c.outbox {
		remaining += len(msg)
	}
	switch {
	case remaining > 0:
		next := dcnet.SlotLenFor(remaining)
		if next > c.def.Policy.MaxSlotLen {
			next = c.def.Policy.MaxSlotLen
		}
		payload.NextLen = next
	case c.witness != nil:
		payload.NextLen = slotLen // keep the slot open to carry requests
	default:
		payload.NextLen = 0
	}
	if c.witness != nil {
		payload.ShuffleReq = randNonzeroByte(c.rand)
	}
	off, n := c.sched.AheadSlotRangeUpTo(c.mySlot, ahead)
	if err := dcnet.EncodeSlot(vec[off:off+n], payload, c.rand); err != nil {
		return nil, err
	}
	cr.sentBuf = append(cr.sentBuf[:0], vec[off:off+n]...)
	cr.sentSlot = cr.sentBuf
	return vec, nil
}

// submitRound fills the pipeline: it submits rounds until depth are in
// flight or a hold (blame, roster wait, expulsion, epoch boundary)
// stops it. At depth 1 this is exactly the serial one-round submit.
func (c *Client) submitRound(now time.Time) (*Output, error) {
	out := &Output{}
	for len(c.inflight) < c.depth {
		if c.awaitingBlame || c.awaitingRoster || c.expelled {
			break
		}
		if c.epochBoundary(c.round) && c.round > c.rosterDone {
			// Epoch boundary ahead: servers drain the pipeline and run the
			// roster phase before this round; hold further submissions
			// until the certified MsgRosterUpdate. The timer probes for a
			// lost update via the catch-up path. Only flip to waiting once
			// the earlier rounds have drained on our side too, so their
			// outputs are processed under the pre-rotation schedule.
			if len(c.inflight) == 0 {
				c.awaitingRoster = true
				out.Timer = now.Add(rosterSyncInterval)
			}
			break
		}
		cr := c.takeRound()
		cr.r = c.round
		vec, err := c.composeVector(cr)
		if err != nil {
			return nil, err
		}
		cr.vec = vec
		sub, err := c.submitVector(now, cr, vec)
		if err != nil {
			return nil, err
		}
		c.inflight = append(c.inflight, cr)
		c.round++
		out.merge(sub)
	}
	c.perf.setRoundsInFlight(len(c.inflight))
	return out, nil
}

func (c *Client) submitVector(now time.Time, cr *clientRound, vec []byte) (*Output, error) {
	// Adversary injection (slot jamming): mutate the cleartext vector
	// before the pads go on and the submission is signed, so the
	// tampering rides a perfectly well-formed, authentic submission.
	if c.interdict != nil && c.interdict.Vector != nil {
		ahead := c.pendingAhead(cr.r)
		c.interdict.Vector(VectorInfo{
			Round:    cr.r,
			OwnSlot:  c.mySlot,
			NumSlots: c.sched.NumSlots(),
			SlotRange: func(slot int) (int, int) {
				return c.sched.AheadSlotRangeUpTo(slot, ahead)
			},
		}, vec)
	}
	// Build the ciphertext into a pooled buffer, using the streams
	// prepared during the previous idle window when they match this
	// round (pairwise seeds never change with the roster, so a round
	// match is the only freshness condition). Encode copies the bytes,
	// so the buffer recycles immediately.
	ct := c.bufs.get(len(vec))
	ps := c.nextStreams
	c.nextStreams = nil
	t0 := time.Now()
	if ps != nil && ps.Round() == cr.r {
		ps.CiphertextInto(ct, vec)
		c.perf.prefetchHits.Add(1)
	} else {
		c.pad.ClientCiphertextInto(ct, c.serverSeeds, cr.r, vec)
		c.perf.prefetchMisses.Add(1)
	}
	d := time.Since(t0)
	c.perf.addPad(d)
	cr.padDur = d
	cr.start = now
	body := (&ClientSubmit{CT: ct}).Encode()
	c.bufs.put(ct)
	m, err := c.sign(MsgClientSubmit, cr.r, body)
	if err != nil {
		return nil, err
	}
	cr.sub = m
	cr.resendN = 0
	cr.resendAt = now.Add(c.retry.delay(0, c.retrySeed^cr.r))
	// Idle-window prefetch: build the next round's streams while the
	// network is the bottleneck.
	c.nextStreams = c.pad.Prepare(c.serverSeeds, cr.r+1)
	// The timer sustains the stale-submission resend loop (Tick): if the
	// round goes uncertified past the backoff delay — lost frame, or a
	// round the group certified while our upstream was down — the resend
	// either drops as a duplicate or pulls back the retained certified
	// output.
	return &Output{
		Send:  []Envelope{{To: c.upstream, Msg: m}},
		Timer: cr.resendAt,
	}, nil
}

// PerfStats returns the client's data-plane timing counters. Safe to
// call concurrently with engine progress.
func (c *Client) PerfStats() PerfStats { return c.perf.snapshot() }

// emitRoundTrace renders the client's view of a certified round as a
// span record: submit-to-output latency plus the ciphertext-build time.
// cr may be nil when the output matched no in-flight record (e.g. an
// expelled client following outputs without submitting).
func (c *Client) emitRoundTrace(now time.Time, round uint64, participation int, failed bool, cr *clientRound) {
	if c.trace == nil {
		return
	}
	t := obs.RoundTrace{
		Round:         round,
		Participation: participation,
		Failed:        failed,
	}
	if cr != nil {
		t.Start = cr.start
		t.Pad = cr.padDur
		if !cr.start.IsZero() {
			t.Total = now.Sub(cr.start)
		}
	}
	c.trace(t)
}

func (c *Client) onOutput(now time.Time, m *Message) (*Output, error) {
	if !c.ready || m.Round != c.nextOut {
		return &Output{}, nil
	}
	p, err := DecodeRoundOutput(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	if len(p.Sigs) != len(c.def.Servers) {
		return c.violation(errors.New("round output lacks a signature per server")), nil
	}
	// Reconstruct the round's beacon entry from the carried shares: its
	// chained value is covered by the certification signatures, so a
	// bogus share set fails the certificate check below before it can
	// touch our chain replica.
	var bEntry *beacon.Entry
	if !p.Failed && c.beaconChain != nil {
		bEntry = beacon.NewEntry(m.Round, c.beaconChain.Head(), p.Beacon)
	}
	signed := cleartextSignedBytes(c.grpID, m.Round, int(p.Count), p.Cleartext, beaconValueBytes(bEntry))
	for j, srv := range c.def.Servers {
		sig, err := crypto.DecodeSignature(c.keyGrp, p.Sigs[j])
		if err != nil {
			return c.violation(err), nil
		}
		if err := crypto.Verify(c.keyGrp, srv.PubKey, "dissent/cleartext", signed, sig); err != nil {
			return c.violation(fmt.Errorf("round %d cert %d: %w", m.Round, j, err)), nil
		}
	}
	// The oldest in-flight record is this round's, unless we were not
	// submitting (expelled, or following outputs after a join).
	var cr *clientRound
	if len(c.inflight) > 0 && c.inflight[0].r == m.Round {
		cr = c.inflight[0]
		copy(c.inflight, c.inflight[1:])
		c.inflight[len(c.inflight)-1] = nil
		c.inflight = c.inflight[:len(c.inflight)-1]
		c.perf.setRoundsInFlight(len(c.inflight))
	}
	c.nextOut = m.Round + 1
	if c.round < c.nextOut {
		// Non-submitting clients track the round counter from outputs so
		// a later re-admission resumes at the right round.
		c.round = c.nextOut
	}
	// Catch the applied layout up to the one round m.Round was composed
	// at before decoding: keep exactly q deltas queued, where q ramps up
	// from the last pipeline drain (see pendingAhead).
	q := c.depth - 1
	if d := m.Round - c.drain; d < uint64(q) {
		q = int(d)
	}
	c.sched.SyncPipeline(q)

	if p.Failed {
		c.emitRoundTrace(now, m.Round, int(p.Count), true, cr)
		out := &Output{Events: []Event{{Kind: EventRoundFailed, Round: m.Round,
			Detail: fmt.Sprintf("participation %d", p.Count)}}}
		// Keep the layout queue aligned with the servers: a failed round
		// contributes no directives but still consumes a pipeline stage
		// (no-op at depth 1).
		c.sched.AdvanceFailed()
		if c.epochBoundary(c.round) && c.round > c.rosterDone && len(c.inflight) == 0 {
			c.awaitingRoster = true
			out.Timer = now.Add(rosterSyncInterval) // catch-up probe if the update is lost
		}
		if cr == nil || c.expelled {
			if cr != nil {
				c.retireRound(cr)
			}
			return out, nil
		}
		if c.depth == 1 {
			if c.awaitingRoster {
				// The roster update may reshape the schedule; the
				// resubmission waits for it (resubmitAfterRoster).
				c.parked = cr
				c.resubmitPending = true
				return out, nil
			}
			// Hard-timeout round: ciphertexts discarded; resubmit the same
			// vector under the next round number (§3.7).
			cr.r = c.round
			sub, err := c.submitVector(now, cr, cr.vec)
			if err != nil {
				return nil, err
			}
			c.inflight = append(c.inflight, cr)
			c.round++
			out.merge(sub)
			return out, nil
		}
		// Depth ≥ 2: the identical vector may not match a later layout
		// (younger rounds composed assuming this stage existed), so
		// recover the payload bytes and requeue them at the head of the
		// outbox for the next composition instead.
		if cr.sentSlot != nil {
			if pl, idle, err := dcnet.DecodeSlot(cr.sentSlot); err == nil && !idle && len(pl.Data) > 0 {
				data := append([]byte(nil), pl.Data...)
				c.outbox = append(c.outbox, nil)
				copy(c.outbox[1:], c.outbox)
				c.outbox[0] = data
			}
		}
		c.retireRound(cr)
		if c.awaitingRoster {
			return out, nil
		}
		sub, err := c.submitRound(now)
		if err != nil {
			return nil, err
		}
		out.merge(sub)
		return out, nil
	}

	out := &Output{}
	// Disruption detection (§3.9): compare our slot region against the
	// certified output. The applied (pre-Advance) layout is exactly the
	// layout this round was composed and decoded at, pipelined or not.
	if cr != nil && cr.sentSlot != nil {
		off, n := c.sched.SlotRange(c.mySlot)
		got := p.Cleartext[off : off+n]
		if !bytes.Equal(got, cr.sentSlot) {
			if bit := findWitnessBit(cr.sentSlot, got); bit >= 0 {
				if c.witness == nil {
					out.Events = append(out.Events, Event{Kind: EventDisruptionDetected, Round: m.Round,
						Detail: fmt.Sprintf("slot %d bit %d", c.mySlot, bit)})
				}
				// Always witness the NEWEST disrupted round. Servers evict
				// trace history after RetainRounds, so under a continuous
				// disruptor an accusation pinned to the first disruption
				// goes stale: every shuffle squashes it, every verdict is
				// inconclusive, and the blame path livelocks. Refreshing
				// keeps the accused round within the servers' retention
				// window however long the accusation takes to be carried.
				c.witness = &witnessInfo{round: m.Round, bit: bit}
			}
			// Whatever the cause — a disruptor's flips, or a round that
			// certified on an attempt excluding us (our upstream server
			// crashed with our ciphertext) — our payload did not reach the
			// group intact. Requeue it at the head of the outbox instead
			// of silently losing it.
			if pl, idle, err := dcnet.DecodeSlot(cr.sentSlot); err == nil && !idle && len(pl.Data) > 0 {
				data := append([]byte(nil), pl.Data...)
				c.outbox = append(c.outbox, nil)
				copy(c.outbox[1:], c.outbox)
				c.outbox[0] = data
			}
		}
	}

	// Extend the beacon chain before advancing the schedule, so an
	// epoch boundary rotates from this round's certified output on
	// client and server replicas alike. All m certification signatures
	// verified above cover the entry's chained value, so the per-share
	// signatures need no re-verification here.
	if bEntry != nil {
		if err := c.beaconChain.AppendTrusted(bEntry); err != nil {
			return c.violation(fmt.Errorf("round %d beacon: %w", m.Round, err)), nil
		}
	}
	// The request-bit state concerns rounds we have yet to compose, so
	// it reads the ahead view (applied plus queued directives).
	wasClosed := c.sched.AheadSlotLen(c.mySlot) == 0
	res, err := c.sched.Advance(p.Cleartext)
	if err != nil {
		return nil, fmt.Errorf("core: schedule advance: %w", err)
	}
	if wasClosed && c.sched.AheadSlotLen(c.mySlot) > 0 {
		c.reqPending = false
	}
	for slot, pl := range res.Payloads {
		if pl != nil && len(pl.Data) > 0 {
			out.Deliveries = append(out.Deliveries, Delivery{Round: m.Round, Slot: slot, Data: pl.Data})
		}
	}
	if res.Rotated {
		out.Events = append(out.Events, Event{Kind: EventEpochRotated, Round: m.Round,
			Detail: fmt.Sprintf("epoch at round %d", c.sched.Round())})
	}
	c.emitRoundTrace(now, m.Round, int(p.Count), false, cr)
	if cr != nil {
		c.retireRound(cr)
	}
	if c.epochBoundary(c.round) && c.round > c.rosterDone && len(c.inflight) == 0 {
		// Epoch boundary: servers run the roster phase before this round;
		// hold our submission until the certified MsgRosterUpdate. The
		// timer probes for a lost update via the catch-up path.
		c.awaitingRoster = true
		out.Timer = now.Add(rosterSyncInterval)
	}
	if res.ShuffleRequested {
		// Servers will open an accusation shuffle before the next
		// round; hold our submission until MsgBlameDone.
		c.awaitingBlame = true
	}
	if c.awaitingBlame || c.awaitingRoster || c.expelled {
		return out, nil
	}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}

func (c *Client) onBlameStart(now time.Time, m *Message) (*Output, error) {
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	p, err := DecodeBlameStart(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	var msg []byte
	if c.witness != nil {
		// The witness bit travels slot-relative; servers translate.
		sig, err := c.pseudonym.Sign("dissent/accusation",
			accusationDigest(c.grpID, c.witness.round, c.mySlot, c.witness.bit), c.rand)
		if err != nil {
			return nil, err
		}
		msg = accusationBytes(c.witness.round, c.mySlot, c.witness.bit,
			crypto.EncodeSignature(c.keyGrp, sig))
		c.accusedInSession = p.Session
	}
	width := shuffle.VecWidth(c.msgGrp, accusationLen(c.keyGrp))
	elems, err := shuffle.EmbedMessage(c.msgGrp, msg, width, c.rand)
	if err != nil {
		return nil, err
	}
	vec, err := shuffle.PrepareInput(c.msgGrp, c.serverMsgKeys(), elems, c.rand)
	if err != nil {
		return nil, err
	}
	var ctBytes []byte
	for _, ct := range vec {
		ctBytes = append(ctBytes, crypto.EncodeCiphertext(c.msgGrp, ct)...)
	}
	body := (&BlameSubmit{Session: p.Session, CT: ctBytes}).Encode()
	sm, err := c.sign(MsgBlameSubmit, m.Round, body)
	if err != nil {
		return nil, err
	}
	return &Output{Send: []Envelope{{To: c.upstream, Msg: sm}}}, nil
}

func (c *Client) serverMsgKeys() []crypto.Element {
	pubs := make([]crypto.Element, len(c.def.Servers))
	for j, srv := range c.def.Servers {
		pubs[j] = srv.MsgPubKey
	}
	return pubs
}

func (c *Client) onBlameDone(now time.Time, m *Message) (*Output, error) {
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	p, err := DecodeBlameDone(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	out := &Output{}
	if p.Verdict != 0 {
		out.Events = append(out.Events, Event{Kind: EventBlameVerdict, Round: m.Round, Culprit: p.Culprit})
	}
	if c.witness != nil && c.accusedInSession == p.Session && p.Verdict != 0 {
		// Our accusation was carried and judged; stop re-requesting.
		c.witness = nil
	}
	if p.Verdict == 1 && p.Culprit == c.id {
		// We were expelled: stop submitting (but keep advancing our
		// schedule and beacon replicas from certified outputs) until a
		// roster update re-admits us after the policy cooldown. In-flight
		// rounds stay queued so their outputs still match and retire.
		c.expelled = true
		out.Events = append(out.Events, Event{Kind: EventMemberExpelled, Round: m.Round, Culprit: c.id})
	}
	// A completed blame session is a pipeline drain point on every
	// replica — the servers held new windows while it ran — so later
	// rounds ramp their delta-queue depth from here. Recorded even by
	// expelled or non-submitting observers, whose decode layouts must
	// track the group's.
	if c.ready && c.nextOut > c.drain {
		c.drain = c.nextOut
	}
	if !c.awaitingBlame {
		return out, nil
	}
	c.awaitingBlame = false
	if c.awaitingRoster || c.expelled {
		return out, nil
	}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}

func (c *Client) onRebuttalRequest(now time.Time, m *Message) (*Output, error) {
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	p, err := DecodeRebuttalRequest(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	if len(p.ServerBits) != len(c.def.Servers) {
		return c.violation(errors.New("rebuttal request with wrong bit count")), nil
	}
	// Find the server whose published pairwise bit disagrees with the
	// truth we can compute from our own seeds.
	target := -1
	for j := range c.def.Servers {
		trueBit := c.pad.StreamBit(c.serverSeeds[j], p.AccRound, int(p.AccBit))
		if trueBit != p.ServerBits[j] {
			target = j
			break
		}
	}
	if target < 0 {
		// All bits are genuine; we cannot rebut (an honest client never
		// reaches this state). Stay silent.
		return &Output{}, nil
	}
	serverPub := c.def.Servers[target].PubKey
	secret, err := c.kp.SharedSecret(serverPub)
	if err != nil {
		return nil, err
	}
	ctx := crypto.Hash("dissent/rebuttal", c.grpID[:],
		crypto.HashUint64(uint64(c.idx)), crypto.HashUint64(uint64(target)))
	proof, err := crypto.ProveDLEQ(c.keyGrp, c.kp.Private, serverPub, c.kp.Public, secret, ctx, c.rand)
	if err != nil {
		return nil, err
	}
	body := (&Rebuttal{
		Session:   p.Session,
		ServerIdx: int32(target),
		Secret:    c.keyGrp.Encode(secret),
		ProofC:    proof.C.Bytes(),
		ProofZ:    proof.Z.Bytes(),
	}).Encode()
	rm, err := c.sign(MsgRebuttal, m.Round, body)
	if err != nil {
		return nil, err
	}
	return &Output{Send: []Envelope{{To: c.upstream, Msg: rm}}}, nil
}

func (c *Client) violation(err error) *Output {
	return &Output{Events: []Event{{Kind: EventProtocolViolation, Detail: err.Error()}}}
}

// findWitnessBit returns the first bit index where sent is 0 but got is
// 1, or -1 (LSB-first within bytes, matching dcnet.Bit).
func findWitnessBit(sent, got []byte) int {
	for i := range sent {
		if d := ^sent[i] & got[i]; d != 0 {
			for b := 0; b < 8; b++ {
				if d&(1<<uint(b)) != 0 {
					return i*8 + b
				}
			}
		}
	}
	return -1
}

// randBit draws a uniform bit.
func randBit(r io.Reader) bool {
	var b [1]byte
	readRand(r, b[:])
	return b[0]&1 == 1
}

// randNonzeroByte draws a uniform nonzero byte for the k-bit
// shuffle-request field (§3.9).
func randNonzeroByte(r io.Reader) byte {
	var b [1]byte
	for {
		readRand(r, b[:])
		if b[0] != 0 {
			return b[0]
		}
	}
}

func readRand(r io.Reader, p []byte) {
	if r == nil {
		r = rand.Reader
	}
	if _, err := io.ReadFull(r, p); err != nil {
		panic("core: randomness source failed: " + err.Error())
	}
}
