package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dissent/internal/group"
)

// pipelineScript is a deterministic workload for the differential
// pipeline test: the same script replayed at depth 1 and depth 2 must
// produce byte-identical per-sender delivery streams.
type pipelineScript struct {
	// sends[r] lists (client construction index, payload) pairs injected
	// once every server has passed round r.
	sends map[uint64][]scriptSend
	// straggler[r] is 1+construction index of a client whose round-r
	// submission is delayed past the first window close (0 = none),
	// forcing an α-policy reopen.
	straggler map[uint64]int
	lastRound uint64
}

type scriptSend struct {
	client  int
	payload []byte
}

// genPipelineScript draws a workload: bursty sends of varying sizes
// (idle gaps close slots, large payloads fragment and grow them) plus
// scripted stragglers that reopen submission windows.
func genPipelineScript(seed int64, clients int) *pipelineScript {
	rng := rand.New(rand.NewSource(seed))
	s := &pipelineScript{
		sends:     make(map[uint64][]scriptSend),
		straggler: make(map[uint64]int),
	}
	for r := uint64(1); r < 18; r += uint64(1 + rng.Intn(3)) {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			ci := rng.Intn(clients)
			body := make([]byte, 1+rng.Intn(90))
			rng.Read(body)
			payload := append([]byte(fmt.Sprintf("s%d-c%d-r%d|", seed, ci, r)), body...)
			s.sends[r] = append(s.sends[r], scriptSend{client: ci, payload: payload})
		}
		if s.lastRound < r {
			s.lastRound = r
		}
	}
	for r := uint64(2); r < s.lastRound; r += uint64(2 + rng.Intn(5)) {
		s.straggler[r] = 1 + rng.Intn(clients)
	}
	return s
}

// runPipelineScript replays the script over a fresh group at the given
// pipeline depth and returns each client's concatenated delivered byte
// stream as observed by server 0.
func runPipelineScript(t *testing.T, script *pipelineScript, depth int) map[int][]byte {
	t.Helper()
	const clients = 4
	f := newFixture(t, 2, clients, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			// Alpha 1.0: a straggler cannot be excluded, so its delayed
			// submission reopens the window (attempt 2) instead of failing
			// or garbling the round — the serial and pipelined runs then
			// certify identical include-sets every round.
			p.Alpha = 1.0
			p.BeaconEpochRounds = 5 // several epoch boundaries + rotations
			p.IdleCloseRounds = 2
			p.DefaultOpenLen = 32
			p.MaxSlotLen = 256
		},
		mutateOpts: func(o *Options) { o.PipelineDepth = depth },
	})
	clientIdx := make(map[group.NodeID]int, clients)
	for i, c := range f.clients {
		clientIdx[c.ID()] = i
	}
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if m.Type == MsgClientSubmit {
			if ci, ok := clientIdx[from]; ok && script.straggler[m.Round] == ci+1 {
				// Past the first WindowMin close, well before the attempt
				// budget runs out.
				return 15 * time.Millisecond, false
			}
		}
		return 0, false
	}

	f.h.StartAll()
	for r := uint64(0); r <= script.lastRound; r++ {
		f.stepUntilRound(r, 400_000)
		for _, sd := range script.sends[r] {
			f.clients[sd.client].Send(sd.payload)
		}
	}
	// Drain: enough further rounds for queued and request-bit-gated data
	// to flush through reopened slots.
	f.stepUntilRound(script.lastRound+12, 800_000)

	if v := f.violations(); len(v) > 0 {
		t.Fatalf("depth %d: protocol violations: %v", depth, v)
	}
	streams := make(map[int][]byte, clients)
	bySlot := make(map[int]int, clients)
	for i, c := range f.clients {
		bySlot[c.Slot()] = i
	}
	srv0 := f.servers[0].ID()
	for _, d := range f.h.Deliveries {
		if d.Node != srv0 {
			continue
		}
		if ci, ok := bySlot[d.Slot]; ok {
			streams[ci] = append(streams[ci], d.Data...)
		}
	}
	return streams
}

// TestPipelineParityDifferential is the correctness proof for the
// two-deep round pipeline: for randomized workloads — bursty variable
// size submissions, idle slot closures and request-bit reopenings,
// straggler-induced α-reopens, epoch rotations — the depth-2 engine
// must deliver byte-identical per-sender streams to the serial engine.
func TestPipelineParityDifferential(t *testing.T) {
	prop := func(seed int64) bool {
		script := genPipelineScript(seed, 4)
		serial := runPipelineScript(t, script, 1)
		pipelined := runPipelineScript(t, script, 2)
		ok := true
		for ci, want := range serial {
			if got := string(pipelined[ci]); got != string(want) {
				t.Errorf("seed %d client %d: depth-2 stream diverged\n serial:    %q\n pipelined: %q",
					seed, ci, want, got)
				ok = false
			}
		}
		for ci := range pipelined {
			if _, dual := serial[ci]; !dual && len(pipelined[ci]) > 0 {
				t.Errorf("seed %d client %d: depth-2 delivered data the serial run did not", seed, ci)
				ok = false
			}
		}
		// The workload must actually exercise the data plane.
		total := 0
		for _, s := range serial {
			total += len(s)
		}
		if total == 0 {
			t.Errorf("seed %d: serial run delivered nothing", seed)
			ok = false
		}
		return ok
	}
	cfg := &quick.Config{
		MaxCount: 3,
		Rand:     rand.New(rand.NewSource(20260807)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
