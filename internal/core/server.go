package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
	"dissent/internal/obs"
	"dissent/internal/shuffle"
)

// maxAttempts bounds α-threshold window reopenings per round so the
// reopen decision is deterministic across servers (§3.7).
const maxAttempts = 3

// serverRetryBase scales Policy.WindowMin into the first retry delay
// of the server's retransmission backoff (rounds and roster phases
// alike): on the healthy fast path rounds certify well inside one
// period, so the timer never fires. Subsequent retries back off per
// the resolved RetryPolicy.
const serverRetryBase = 8

// misbehaviorEscalateThreshold is how many attributed violations a
// member may accumulate before this server escalates: a client
// crossing it is queued for removal in the next certified roster
// update (any single server's pending removals propagate through the
// all-server proposal union), so repeated disruption guarantees
// expulsion even when no single incident reaches a blame verdict.
// Servers past the threshold are reported but cannot be removed — the
// anytrust server set is fixed at genesis.
const misbehaviorEscalateThreshold = 8

// dupFloodAllowance is how many identical duplicates of one client's
// round submission a server tolerates before attributing a replay
// flood. Honest resend loops are capped well below it by the
// retransmission backoff; only deliberate replay crosses it.
const dupFloodAllowance = 8

// withholdSuspectAfter is the retransmission attempt at which a round
// wedged in a server-server phase attributes withholding to the peers
// whose contributions are still missing. The first retries are
// ordinary loss recovery; by the third the silence is deliberate or
// indistinguishable from it.
const withholdSuspectAfter = 3

// stashMaxBytes bounds the total body bytes buffered for early
// messages, alongside the per-message count cap: a flooding adversary
// can otherwise grow the stash to arbitrary memory with large frames
// that never replay.
const stashMaxBytes = 8 << 20

// peerRecord is one member's misbehavior ledger at this server. The
// map is keyed by roster identity — only verified members are
// attributable — so its size is bounded by the roster.
type peerRecord struct {
	kinds     map[string]int
	total     int
	escalated bool
}

// serverPhase tracks a server's top-level protocol phase.
type serverPhase int

const (
	phaseSetupCollect serverPhase = iota
	phaseSetupShuffle
	phaseRunning
	phaseBlame
	phaseRoster
	phaseHalted
)

// roundPhase tracks the per-round state machine of Algorithm 2.
type roundPhase int

const (
	rpCollect roundPhase = iota
	rpInventory
	rpCommit
	rpShare
	rpCertify
	rpDone
)

// castMsg is one recorded server-broadcast of an in-flight round.
type castMsg struct {
	t    MsgType
	body []byte
}

// roundState is one in-flight round at a server. With pipelining
// several coexist, keyed by round number in Server.rounds; only the
// oldest (the head, Server.roundNum) may run the commit→certify
// sequence, so server-server phases stay strictly ordered while
// younger rounds collect submissions concurrently.
type roundState struct {
	r       uint64
	attempt int32
	phase   roundPhase

	// vecLen is the round's cleartext vector length, captured from the
	// schedule's ahead view when the window opens. Younger rounds must
	// not consult the live schedule: the head round's Advance moves it.
	vecLen int
	// depthAtStart counts in-flight rounds (this one included) when the
	// window opened, for the round's trace span.
	depthAtStart int

	start   time.Time
	closeAt time.Time // adaptive window close (zero until threshold)
	hardAt  time.Time

	// prefetch is this round's background full-roster pad expansion,
	// launched at window open, consumed by takeServerPad at commit, and
	// reaped at retirement if still unconsumed.
	prefetch *padPrefetch

	// Server-phase retransmission (liveness under message loss): every
	// server-broadcast message of the round's current attempt, re-sent
	// on a timer while the round sits in a server-server phase waiting
	// on peers. The whole sequence is re-sent — not just the newest
	// message — because a peer cut off mid-round can be a full phase
	// behind and need an earlier one (its commit, say) before the
	// latest means anything to it. Receivers drop duplicates per
	// (round, attempt, server), so the re-send is idempotent; it
	// restores liveness after a partition heals without waiting out the
	// hard timeout.
	resendAt time.Time
	resendN  int // retransmissions so far (drives the backoff)
	casts    []castMsg

	// dups counts identical duplicate submissions per client this
	// round; past dupFloodAllowance the excess is attributed as a
	// replay flood. suspected marks peers already attributed for
	// withholding this round, so the wedge check fires once per peer.
	dups      map[int]int
	suspected map[int]bool

	// Phase timestamps/durations for the round's trace span: the final
	// window close, cumulative critical-path pad and combine work, when
	// our certify signature went out, and whether the pad came from the
	// background prefetch.
	windowClosed time.Time
	certifySent  time.Time
	padDur       time.Duration
	combineDur   time.Duration
	prefetchHit  bool

	subs map[int]*Message // client index -> signed submission (evidence)
	cts  map[int][]byte   // client index -> ciphertext

	// Streaming combine (§3.4 hot path): ctAcc accumulates the XOR of
	// accepted ciphertexts as they arrive, so window close pays one
	// vector XOR instead of O(N). accSet records which clients are
	// folded in; at commit time the (normally empty) difference against
	// the deduped direct set is XORed out/in. Raw ciphertexts stay in
	// cts for blame evidence (§3.9). The accumulator persists across
	// α-policy window reopens — reopened windows only add submissions,
	// and the commit-time diff reconciles any inventory drift.
	ctAcc  []byte       // pooled; recycled when the round retires
	accSet map[int]bool // client indices folded into ctAcc

	invs    map[int]*Inventory // server index -> inventory (current attempt)
	commits map[int][]byte
	shares  map[int][]byte
	certs   map[int][]byte

	included   []int   // union l, sorted
	directSets [][]int // l'_j per server after dedup
	myShare    []byte
	cleartext  []byte
	failed     bool

	// Beacon commit–reveal state, riding the round's commit and share
	// exchanges (nil maps stay empty when the beacon is off).
	beaconCommits map[int][]byte // server index -> H(beacon share)
	beaconShares  map[int][]byte // server index -> beacon share
	myBeaconShare []byte
	beaconEntry   *beacon.Entry // verified entry, set at combine time
}

// roundHistory is the retained state needed for accusation tracing.
type roundHistory struct {
	included   []int
	directSets [][]int
	shares     [][]byte
	cleartext  []byte
	subs       map[int]*Message
	slotOff    []int // slot byte offsets in the round's layout
	slotLen    []int
	// ownShare/ownCleartext mark pooled buffers this server created
	// (its share and the assembled cleartext); they return to the pool
	// when the history entry is evicted. Peer shares alias received
	// message bodies and are left to the GC.
	ownShare, ownCleartext []byte
}

// blamePhase tracks the accusation sub-protocol (§3.9).
type blamePhase int

const (
	bpCollect blamePhase = iota
	bpShuffle
	bpTrace
	bpRebuttal
)

// blameState is one accusation shuffle + trace session.
type blameState struct {
	session int32
	phase   blamePhase

	closeAt time.Time
	subs    map[int][]byte     // client index -> encoded ct vector
	lists   map[int]*BlameList // server index -> list
	stage   int                // next shuffle stage
	cur     []shuffle.Vec      // current ciphertext list
	order   []int              // input client order (for bookkeeping)
	traces  map[int]*TraceBits // server index -> trace bits
	acc     *accusation        // the accusation being traced
	flagged int                // client index awaiting rebuttal, -1 none
	rebutAt time.Time
}

// accusation is a parsed, verified accusation message.
type accusation struct {
	round uint64
	slot  int
	bit   int // global bit index in the round's cleartext vector
}

// accusationLen is the wire length of an accusation message inside the
// blame shuffle: round(8) + slot(4) + bitInSlot(4) + Schnorr signature.
func accusationLen(keyGrp crypto.Group) int {
	return 16 + crypto.SignatureLen(keyGrp)
}

// Server is the Dissent server engine (Algorithm 2 plus scheduling and
// accusation sub-protocols). It is sans-I/O: callers feed it messages
// and ticks with timestamps and transmit the envelopes it returns.
type Server struct {
	node
	idx   int
	msgKP *crypto.KeyPair // message-shuffle (mod-p) keypair

	clientSeeds [][]byte // pairwise DC-net seeds, by client index
	myClients   []int    // client indices attached to this server

	phase serverPhase

	// Setup state.
	setupDeadline time.Time
	pseuSubs      map[int][]byte
	pseuSent      bool
	pseuLists     map[int]*PseudonymList
	shufOrder     []int // client index per shuffle input position
	shufCur       []shuffle.Vec
	shufStage     int
	slotKeys      []crypto.Element
	schedCerts    map[int][]byte
	// certKeys/certSigs retain the certified schedule (encoded slot
	// keys + per-server signatures) for ScheduleCertificate.
	certKeys [][]byte
	certSigs [][]byte

	// DC-net state. rounds holds every in-flight round keyed by round
	// number; the keys are always the contiguous range
	// [roundNum, nextOpen). roundNum is the head — the oldest in-flight
	// round, the only one allowed past inventory collection — and
	// nextOpen is the next window to open. depth caps len(rounds):
	// depth 1 is the serial engine, depth 2 overlaps round r+1's
	// submission window with round r's combine/certify. blameDue defers
	// a requested accusation shuffle until the pipeline drains.
	sched     *dcnet.Schedule
	pad       *dcnet.Pad
	roundNum  uint64
	nextOpen  uint64
	depth     int
	blameDue  bool
	prevCount int
	// drainRound is the first round after the latest pipeline drain
	// (session start, epoch boundary, post-blame resume). Rounds ramp
	// their schedule delta-queue depth up from this point — see
	// pendingAhead and dcnet.Schedule.SyncPipeline.
	drainRound uint64
	rounds     map[uint64]*roundState
	history    map[uint64]*roundHistory
	excluded   map[int]bool
	// Crash-recovery state (see restore.go): rounds below recoverUntil
	// reopen at a fresh, strictly-higher attempt so surviving peers
	// abandon the pre-crash attempt they are wedged on; outMsgs retains
	// recent certified round outputs so a restarted peer that missed a
	// certification can adopt it.
	recoverUntil uint64
	outMsgs      map[uint64][]byte

	// Data-plane hot path (see ARCHITECTURE.md "Data-plane hot path"):
	// ppad shards pad expansion across a worker pool for the foreground
	// (window-close) path; prefetchPads are dedicated expanders for the
	// background prefetchers, one per pipeline lane, because a
	// ParallelPad reuses lane buffers and is single-caller — round r
	// uses lane r mod depth, which is quiescent because round r−depth
	// retired (and reaped its prefetch) before r opened. bufs recycles
	// round-sized vectors; perf records hot-path timings for Metrics.
	ppad         *dcnet.ParallelPad
	prefetchPads []*dcnet.ParallelPad
	noPrefetch   bool
	bufs         bufPool
	perf         perfCounters

	blame        *blameState
	blameSession int32

	// Membership churn (see roster.go): pending admissions/removals
	// accumulated while rounds run, applied through a certified roster
	// update at each epoch boundary.
	allowlist        map[string]bool                // pre-approved identity keys (Admit)
	pendingJoin      map[group.NodeID]*JoinRequest  // new-member requests
	pendingRejoin    map[int]bool                   // client index → wants re-admission
	pendingRemove    map[int]bool                   // client index → remove at boundary
	expelRound       map[int]uint64                 // client index → round excluded
	rosterDue        bool                           // boundary crossed; roster phase pending
	roster           *rosterState                   // in-flight transition
	lastRosterUpdate *group.RosterUpdate            // latest applied certified update
	rosterLog        map[uint64]*group.RosterUpdate // recent updates by version, for catch-up
	rosterDigests    map[uint64][32]byte            // version → post-apply schedule digest
	joinedAt         map[group.NodeID]uint64        // new members → admitting version (welcome re-send)
	welcomeSent      map[group.NodeID]time.Time     // re-welcome rate limiting
	pairSeedFn       func(clientIdx, serverIdx int) []byte

	// stash buffers messages that arrived ahead of our local phase
	// (e.g. a peer's inventory for round r+1 while we still certify r);
	// they replay after each state transition. stashBytes tracks the
	// buffered body bytes against stashMaxBytes.
	stash      []*Message
	stashBytes int

	// retry is the resolved retransmission backoff policy;
	// misbehavior is the per-member violation ledger (bounded by the
	// roster: only verified members are attributable).
	retry       RetryPolicy
	misbehavior map[group.NodeID]*peerRecord

	// Test hooks, nil in production: testCorruptShare lets a test
	// server disrupt the channel by mutating its ciphertext before
	// committing; testTraceBit lets it lie during accusation tracing.
	testCorruptShare func(round uint64, share []byte)
	testTraceBit     func(round uint64, clientIdx int, trueBit byte) byte
}

// NewServer builds a server engine. kp is the P-256 identity key
// (matching the group definition); msgKP is the mod-p message-shuffle
// key.
func NewServer(def *group.Definition, kp, msgKP *crypto.KeyPair, opts Options) (*Server, error) {
	s := &Server{
		node:  newNode(def, kp, opts),
		msgKP: msgKP,
	}
	s.idx = def.ServerIndex(s.id)
	if s.idx < 0 {
		return nil, errors.New("core: key is not a server in this group")
	}
	if !s.msgGrp.Equal(msgKP.Public, def.Servers[s.idx].MsgPubKey) {
		return nil, errors.New("core: message-shuffle key mismatch with definition")
	}
	s.clientSeeds = make([][]byte, len(def.Clients))
	for i, c := range def.Clients {
		if opts.PairSeed != nil {
			s.clientSeeds[i] = opts.PairSeed(i, s.idx)
		} else {
			seed, err := s.pairSeed(c.PubKey)
			if err != nil {
				return nil, fmt.Errorf("core: client %d seed: %w", i, err)
			}
			s.clientSeeds[i] = seed
		}
		if def.UpstreamServer(i) == s.idx {
			s.myClients = append(s.myClients, i)
		}
	}
	s.pad = dcnet.NewPad(s.prng)
	s.ppad = dcnet.NewParallelPad(s.prng, opts.PadWorkers)
	s.depth = opts.PipelineDepth
	if s.depth < 1 {
		s.depth = 1
	}
	s.prefetchPads = make([]*dcnet.ParallelPad, s.depth)
	for i := range s.prefetchPads {
		s.prefetchPads[i] = dcnet.NewParallelPad(s.prng, opts.PadWorkers)
	}
	s.noPrefetch = opts.NoPadPrefetch
	s.rounds = make(map[uint64]*roundState)
	s.history = make(map[uint64]*roundHistory)
	s.outMsgs = make(map[uint64][]byte)
	s.excluded = make(map[int]bool)
	s.pseuSubs = make(map[int][]byte)
	s.pseuLists = make(map[int]*PseudonymList)
	s.schedCerts = make(map[int][]byte)
	s.pendingJoin = make(map[group.NodeID]*JoinRequest)
	s.pendingRejoin = make(map[int]bool)
	s.pendingRemove = make(map[int]bool)
	s.expelRound = make(map[int]uint64)
	s.rosterLog = make(map[uint64]*group.RosterUpdate)
	s.rosterDigests = make(map[uint64][32]byte)
	s.joinedAt = make(map[group.NodeID]uint64)
	s.welcomeSent = make(map[group.NodeID]time.Time)
	s.pairSeedFn = opts.PairSeed
	s.misbehavior = make(map[group.NodeID]*peerRecord)
	var retry RetryPolicy
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	s.retry = retry.withDefaults(serverRetryBase * def.Policy.WindowMin)
	return s, nil
}

// MisbehaviorCounts returns a copy of the server's per-kind
// misbehavior tallies across all attributed peers.
func (s *Server) MisbehaviorCounts() map[string]int {
	out := make(map[string]int)
	for _, rec := range s.misbehavior {
		for k, n := range rec.kinds {
			out[k] += n
		}
	}
	return out
}

// ID returns the server's node ID.
func (s *Server) ID() group.NodeID { return s.id }

// Index returns the server's index in the group definition.
func (s *Server) Index() int { return s.idx }

// Round returns the current DC-net round number.
func (s *Server) Round() uint64 { return s.roundNum }

// Participation returns the previous round's participation count.
func (s *Server) Participation() int { return s.prevCount }

// Excluded reports whether a client index has been expelled.
func (s *Server) Excluded(clientIdx int) bool { return s.excluded[clientIdx] }

// PerfStats returns the server's data-plane timing counters. Safe to
// call concurrently with engine progress.
func (s *Server) PerfStats() PerfStats { return s.perf.snapshot() }

// SchedulePermutation returns the current slot-layout permutation, or
// nil before the schedule is established.
func (s *Server) SchedulePermutation() []int {
	if s.sched == nil {
		return nil
	}
	return s.sched.Permutation()
}

// Start begins the setup phase: waiting for pseudonym submissions.
func (s *Server) Start(now time.Time) (*Output, error) {
	s.phase = phaseSetupCollect
	s.setupDeadline = now.Add(s.def.Policy.HardTimeout)
	return &Output{Timer: s.setupDeadline}, nil
}

// Handle processes one incoming message, then replays any stashed
// early messages that the resulting state transitions unblocked.
func (s *Server) Handle(now time.Time, m *Message) (*Output, error) {
	out, err := s.dispatch(now, m)
	if err != nil {
		return out, err
	}
	if err := s.drainStash(now, out); err != nil {
		return out, err
	}
	s.applyInterdict(out)
	return out, nil
}

// drainStash replays stashed early messages until no more progress is
// made, merging their outputs into out.
func (s *Server) drainStash(now time.Time, out *Output) error {
	for len(s.stash) > 0 {
		pending := s.stash
		s.stash = nil
		s.stashBytes = 0
		for _, pm := range pending {
			o, err := s.dispatch(now, pm)
			if err != nil {
				return err
			}
			out.merge(o)
		}
		if len(s.stash) >= len(pending) {
			break // no progress; keep waiting
		}
	}
	return nil
}

// stashMsg buffers an early message for replay, bounding both message
// count and total body bytes so a flooding peer cannot grow the stash
// to arbitrary memory.
func (s *Server) stashMsg(m *Message) *Output {
	const stashCap = 4096
	if len(s.stash) >= stashCap || s.stashBytes+len(m.Body) > stashMaxBytes {
		return s.misbehave(m.Round, m.From, "flood",
			fmt.Errorf("stash overflow dropping %s from %s", m.Type, m.From))
	}
	s.stash = append(s.stash, m)
	s.stashBytes += len(m.Body)
	return &Output{}
}

func (s *Server) dispatch(now time.Time, m *Message) (*Output, error) {
	switch m.Type {
	case MsgPseudonymSubmit:
		return s.onPseudonymSubmit(now, m)
	case MsgPseudonymList:
		return s.onPseudonymList(now, m)
	case MsgShuffleStep:
		return s.onShuffleStep(now, m)
	case MsgScheduleCert:
		return s.onScheduleCert(now, m)
	case MsgClientSubmit:
		return s.onClientSubmit(now, m)
	case MsgInventory:
		return s.onInventory(now, m)
	case MsgCommit:
		return s.onCommit(now, m)
	case MsgShare:
		return s.onShare(now, m)
	case MsgCertify:
		return s.onCertify(now, m)
	case MsgBlameSubmit:
		return s.onBlameSubmit(now, m)
	case MsgBlameList:
		return s.onBlameList(now, m)
	case MsgBlameStep:
		return s.onBlameStep(now, m)
	case MsgTraceBits:
		return s.onTraceBits(now, m)
	case MsgRebuttal:
		return s.onRebuttal(now, m)
	case MsgJoinRequest:
		return s.onJoinRequest(now, m)
	case MsgRosterPropose:
		return s.onRosterPropose(now, m)
	case MsgRosterCert:
		return s.onRosterCert(now, m)
	case MsgRosterUpdate:
		return s.onServerRosterUpdate(now, m)
	case MsgOutput:
		return s.onPeerOutput(now, m)
	default:
		return nil, fmt.Errorf("core: server got unexpected %s", m.Type)
	}
}

// Tick handles timer expiry, then replays stashed messages the
// resulting transitions unblocked (a window can close on a timer while
// every peer's next-phase message already waits in the stash).
func (s *Server) Tick(now time.Time) (*Output, error) {
	var out *Output
	var err error
	switch s.phase {
	case phaseSetupCollect:
		if !now.Before(s.setupDeadline) {
			out, err = s.sendPseudonymList(now)
		} else {
			out, err = &Output{Timer: s.setupDeadline}, nil
		}
	case phaseRunning:
		out, err = s.roundTick(now)
	case phaseBlame:
		out, err = s.blameTick(now)
	case phaseRoster:
		out, err = s.rosterTick(now)
	default:
		out, err = &Output{}, nil
	}
	if err != nil {
		return out, err
	}
	if err := s.drainStash(now, out); err != nil {
		return out, err
	}
	s.applyInterdict(out)
	return out, nil
}

// broadcastServers wraps a payload in a signed message addressed to
// every other server.
func (s *Server) broadcastServers(t MsgType, round uint64, body []byte, out *Output) error {
	m, err := s.sign(t, round, body)
	if err != nil {
		return err
	}
	for i, srv := range s.def.Servers {
		if i == s.idx {
			continue
		}
		out.Send = append(out.Send, Envelope{To: srv.ID, Msg: m})
	}
	return nil
}

// castServers broadcasts a round-phase message to the peer servers and
// records it for retransmission (roundTick) while the round waits on
// them.
func (s *Server) castServers(now time.Time, rs *roundState, t MsgType, body []byte, out *Output) error {
	rs.casts = append(rs.casts, castMsg{t: t, body: body})
	rs.resendN = 0
	rs.resendAt = now.Add(s.retry.delay(0, s.retrySeed^rs.r))
	out.merge(&Output{Timer: rs.resendAt})
	return s.broadcastServers(t, rs.r, body, out)
}

// broadcastClients sends a signed message to every attached client.
func (s *Server) broadcastClients(t MsgType, round uint64, body []byte, out *Output) error {
	m, err := s.sign(t, round, body)
	if err != nil {
		return err
	}
	for _, ci := range s.myClients {
		out.Send = append(out.Send, Envelope{To: s.def.Clients[ci].ID, Msg: m})
	}
	return nil
}

// --- Setup: pseudonym collection and scheduling shuffle ---------------

func (s *Server) onPseudonymSubmit(now time.Time, m *Message) (*Output, error) {
	if s.phase != phaseSetupCollect {
		return &Output{}, nil
	}
	if err := s.verify(m, false); err != nil {
		return s.violation(0, err), nil
	}
	ci := s.def.ClientIndex(m.From)
	p, err := DecodePseudonymSubmit(m.Body)
	if err != nil {
		return s.violation(0, err), nil
	}
	if _, dup := s.pseuSubs[ci]; dup {
		return &Output{}, nil
	}
	s.pseuSubs[ci] = p.CT
	// Early close: all our attached clients have submitted.
	done := true
	for _, mine := range s.myClients {
		if _, ok := s.pseuSubs[mine]; !ok {
			done = false
			break
		}
	}
	if done {
		return s.sendPseudonymList(now)
	}
	return &Output{Timer: s.setupDeadline}, nil
}

func (s *Server) sendPseudonymList(now time.Time) (*Output, error) {
	if s.pseuSent {
		return &Output{}, nil
	}
	s.pseuSent = true
	s.phase = phaseSetupShuffle
	list := &PseudonymList{}
	for _, ci := range sortedKeys(s.pseuSubs) {
		list.Clients = append(list.Clients, int32(ci))
		list.CTs = append(list.CTs, s.pseuSubs[ci])
	}
	out := &Output{}
	if err := s.broadcastServers(MsgPseudonymList, 0, list.Encode(), out); err != nil {
		return nil, err
	}
	s.pseuLists[s.idx] = list
	more, err := s.maybeStartShuffle(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onPseudonymList(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(0, err), nil
	}
	si := s.def.ServerIndex(m.From)
	list, err := DecodePseudonymList(m.Body)
	if err != nil {
		return s.violation(0, err), nil
	}
	if _, dup := s.pseuLists[si]; dup {
		return &Output{}, nil
	}
	s.pseuLists[si] = list
	// Keep collecting our own clients' submissions until they all
	// arrive or our deadline passes; the shuffle starts only once our
	// own list is in (maybeStartShuffle requires all M lists).
	return s.maybeStartShuffle(now)
}

// maybeStartShuffle assembles the canonical shuffle input once all
// server lists are present and runs stage 0 if this server is first.
func (s *Server) maybeStartShuffle(now time.Time) (*Output, error) {
	if len(s.pseuLists) < len(s.def.Servers) || s.shufOrder != nil {
		return &Output{}, nil
	}
	// Union with lowest-server-index-wins dedup, then canonical client
	// index order.
	byClient := make(map[int][]byte)
	for _, si := range sortedKeys(s.pseuLists) {
		list := s.pseuLists[si]
		for k, ci := range list.Clients {
			if _, ok := byClient[int(ci)]; !ok {
				byClient[int(ci)] = list.CTs[k]
			}
		}
	}
	s.shufOrder = sortedKeys(byClient)
	if len(s.shufOrder) == 0 {
		return nil, errors.New("core: no pseudonym submissions at setup deadline")
	}
	s.shufCur = make([]shuffle.Vec, 0, len(s.shufOrder))
	for _, ci := range s.shufOrder {
		ct, err := crypto.DecodeCiphertext(s.keyGrp, byClient[ci])
		if err != nil {
			return nil, fmt.Errorf("core: client %d pseudonym ciphertext: %w", ci, err)
		}
		s.shufCur = append(s.shufCur, shuffle.Vec{ct})
	}
	s.shufStage = 0
	return s.maybeRunShuffleStage(now)
}

// serverIdentityKeys returns the server identity public keys.
func (s *Server) serverIdentityKeys() []crypto.Element {
	return s.def.ServerPubKeys()
}

// maybeRunShuffleStage runs this server's shuffle step if it is next.
func (s *Server) maybeRunShuffleStage(now time.Time) (*Output, error) {
	out := &Output{}
	if s.shufStage == len(s.def.Servers) {
		return s.finishScheduleShuffle(now)
	}
	if s.shufStage != s.idx {
		return out, nil
	}
	remaining := crypto.AggregateKeys(s.keyGrp, s.serverIdentityKeys()[s.idx:])
	step, err := shuffle.Step(s.keyGrp, s.kp, remaining, s.shufCur, s.def.Policy.Shadows, s.rand)
	if err != nil {
		return nil, fmt.Errorf("core: scheduling shuffle step: %w", err)
	}
	body := (&ShuffleStep{Stage: int32(s.idx), Data: shuffle.EncodeStepOutput(s.keyGrp, step)}).Encode()
	if err := s.broadcastServers(MsgShuffleStep, 0, body, out); err != nil {
		return nil, err
	}
	s.shufCur = step.Stripped
	s.shufStage++
	more, err := s.maybeRunShuffleStage(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onShuffleStep(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(0, err), nil
	}
	p, err := DecodeShuffleStep(m.Body)
	if err != nil {
		return s.violation(0, err), nil
	}
	si := s.def.ServerIndex(m.From)
	if s.shufOrder == nil || int(p.Stage) > s.shufStage {
		return s.stashMsg(m), nil
	}
	if int(p.Stage) != si || int(p.Stage) != s.shufStage {
		return &Output{}, nil
	}
	step, err := shuffle.DecodeStepOutput(s.keyGrp, p.Data)
	if err != nil {
		return s.violation(0, err), nil
	}
	remaining := crypto.AggregateKeys(s.keyGrp, s.serverIdentityKeys()[si:])
	if err := shuffle.VerifyStep(s.keyGrp, s.def.Servers[si].PubKey, remaining, s.shufCur, step); err != nil {
		return s.violation(0, fmt.Errorf("server %d shuffle step invalid: %w", si, err)), nil
	}
	s.shufCur = step.Stripped
	s.shufStage++
	return s.maybeRunShuffleStage(now)
}

// finishScheduleShuffle extracts the slot keys and certifies them.
func (s *Server) finishScheduleShuffle(now time.Time) (*Output, error) {
	if s.slotKeys != nil {
		return &Output{}, nil
	}
	s.slotKeys = make([]crypto.Element, len(s.shufCur))
	for i, v := range s.shufCur {
		s.slotKeys[i] = v[0].C2
	}
	sig, err := s.kp.Sign("dissent/schedule", scheduleSignedBytes(s.grpID, s.encodedSlotKeys()), s.rand)
	if err != nil {
		return nil, err
	}
	sigBytes := crypto.EncodeSignature(s.keyGrp, sig)
	out := &Output{}
	body := (&Certify{Attempt: 0, Sig: sigBytes}).Encode()
	if err := s.broadcastServers(MsgScheduleCert, 0, body, out); err != nil {
		return nil, err
	}
	s.schedCerts[s.idx] = sigBytes
	more, err := s.maybeFinishSetup(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) encodedSlotKeys() [][]byte {
	keys := make([][]byte, len(s.slotKeys))
	for i, k := range s.slotKeys {
		keys[i] = s.keyGrp.Encode(k)
	}
	return keys
}

func (s *Server) onScheduleCert(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(0, err), nil
	}
	p, err := DecodeCertify(m.Body)
	if err != nil {
		return s.violation(0, err), nil
	}
	si := s.def.ServerIndex(m.From)
	if s.slotKeys == nil {
		// Certificates can only be validated once our own shuffle
		// replica finishes; buffer until then.
		return s.stashMsg(m), nil
	}
	sig, err := crypto.DecodeSignature(s.keyGrp, p.Sig)
	if err != nil {
		return s.violation(0, err), nil
	}
	if err := crypto.Verify(s.keyGrp, s.def.Servers[si].PubKey, "dissent/schedule",
		scheduleSignedBytes(s.grpID, s.encodedSlotKeys()), sig); err != nil {
		return s.violation(0, fmt.Errorf("server %d schedule cert: %w", si, err)), nil
	}
	s.schedCerts[si] = p.Sig
	return s.maybeFinishSetup(now)
}

// maybeFinishSetup distributes the schedule and starts round 0 once
// every server has certified.
func (s *Server) maybeFinishSetup(now time.Time) (*Output, error) {
	if s.phase != phaseSetupShuffle || len(s.schedCerts) < len(s.def.Servers) {
		return &Output{}, nil
	}
	// Bind the beacon chain to the certified schedule before any state
	// commits: a rebind failure (e.g. a non-empty store smuggled past
	// the SDK's archiving) must not leave the server half-running with
	// the schedule never broadcast.
	sigs := make([][]byte, len(s.def.Servers))
	for i := range sigs {
		sigs[i] = s.schedCerts[i]
	}
	certKeys := s.encodedSlotKeys()
	if err := s.bindBeaconSession(scheduleCertDigest(s.grpID, certKeys, sigs)); err != nil {
		return nil, err
	}
	cfg := dcnet.Config{
		NumSlots:        len(s.slotKeys),
		DefaultOpenLen:  s.def.Policy.DefaultOpenLen,
		MaxSlotLen:      s.def.Policy.MaxSlotLen,
		IdleCloseRounds: s.def.Policy.IdleCloseRounds,
	}
	sched, err := dcnet.NewSchedule(cfg)
	if err != nil {
		return nil, err
	}
	s.installRotation(sched)
	sched.SetLag(s.depth - 1)
	s.sched = sched
	s.prevCount = len(s.slotKeys)
	s.phase = phaseRunning
	s.certKeys, s.certSigs = certKeys, sigs
	// Record the base version's post-apply digest (the freshly built
	// schedule) so divergence checks work before any churn, and persist
	// the first restartable snapshot.
	s.rosterDigests[s.def.Version] = sched.Digest()
	s.persistSnapshot()

	out := &Output{Events: []Event{{Kind: EventScheduleReady, Detail: fmt.Sprintf("%d slots", len(s.slotKeys))}}}
	body := (&Schedule{Keys: s.certKeys, Sigs: sigs}).Encode()
	if err := s.broadcastClients(MsgSchedule, 0, body, out); err != nil {
		return nil, err
	}
	s.startRound(now, out)
	return out, nil
}

// ScheduleCertificate returns the certified schedule — the slot-key
// list and every server's signature over it — or nils before setup
// completes (including under trusted bootstrap, which certifies
// nothing). The dissent SDK serves it beside the beacon chain so
// external verifiers can derive the session's beacon genesis.
func (s *Server) ScheduleCertificate() (keys, sigs [][]byte) {
	return s.certKeys, s.certSigs
}

// --- DC-net rounds (Algorithm 2) --------------------------------------

// expectedClients counts clients not yet expelled.
func (s *Server) expectedClients() int {
	n := len(s.def.Clients)
	for range s.excluded {
		n--
	}
	return n
}

// myExpected counts this server's attached, non-expelled clients — the
// population whose submissions drive its window-closure policy (each
// client submits to its upstream server only, §3.5).
func (s *Server) myExpected() int {
	n := 0
	for _, ci := range s.myClients {
		if !s.excluded[ci] {
			n++
		}
	}
	return n
}

// startRound (re)fills the round pipeline: it opens submission windows
// until depth rounds are in flight or a gate blocks. Kept under its
// historical name — bootstrap and roster code call it wherever the
// serial engine opened its single round.
func (s *Server) startRound(now time.Time, out *Output) {
	s.maybeOpenRounds(now, out)
}

// maybeOpenRounds opens submission windows until the pipeline is full.
// The gates, in order: capacity (at most depth rounds in flight); a due
// accusation shuffle or roster phase drains the pipeline first; an
// epoch-boundary round only opens once every earlier round has retired
// (so the roster phase and permutation rotation build on a settled
// schedule); and only one submission window collects at a time — round
// r+1 opens the moment round r's collection closes, which is exactly
// the overlap that pipelining buys.
func (s *Server) maybeOpenRounds(now time.Time, out *Output) {
	if s.phase != phaseRunning || s.sched == nil {
		return
	}
	for len(s.rounds) < s.depth {
		if s.blameDue || s.rosterDue {
			return
		}
		if s.epochBoundary(s.nextOpen) && len(s.rounds) > 0 {
			return
		}
		if prev, ok := s.rounds[s.nextOpen-1]; ok && prev.phase == rpCollect {
			return
		}
		s.openRound(now, out)
	}
}

// pendingAhead returns how many of the schedule's queued deltas fall
// within the layout horizon of round r: round r is composed (and later
// decoded) against the deltas of rounds ≤ max(drainRound−1, r−depth).
// With p deltas queued for the rounds (roundNum−1−p, roundNum−1], the
// oldest p − ((roundNum−1) − horizon) of them are within the horizon.
// Bounding compose views this way (rather than consuming the whole
// queue) keeps compose and decode layouts equal through post-drain
// ramps, independent of how retirements interleave with window opens.
func (s *Server) pendingAhead(r uint64) int {
	p := s.sched.PendingDeltas()
	if p == 0 {
		return 0
	}
	a := int64(s.roundNum) - 1 // every round ≤ this has queued its delta
	h := int64(r) - int64(s.depth)
	if d := int64(s.drainRound) - 1; d > h {
		h = d
	}
	k := p - int(a-h)
	if k < 0 {
		k = 0
	}
	if k > p {
		k = p
	}
	return k
}

// openRound initializes round state and opens its submission window.
// The vector length is pinned from the schedule's ahead view bounded to
// the round's layout horizon: every delta up to that horizon has been
// queued (capacity gate), so the bounded view is exactly the layout this
// round's clients compose against.
func (s *Server) openRound(now time.Time, out *Output) {
	rs := &roundState{
		r:       s.nextOpen,
		phase:   rpCollect,
		vecLen:  s.sched.AheadLenUpTo(s.pendingAhead(s.nextOpen)),
		start:   now,
		hardAt:  now.Add(s.def.Policy.HardTimeout),
		subs:    make(map[int]*Message),
		cts:     make(map[int][]byte),
		accSet:  make(map[int]bool),
		invs:    make(map[int]*Inventory),
		commits: make(map[int][]byte),
		shares:  make(map[int][]byte),
		certs:   make(map[int][]byte),

		beaconCommits: make(map[int][]byte),
		beaconShares:  make(map[int][]byte),
	}
	if rs.r < s.recoverUntil {
		// Crash recovery (restore.go): surviving peers may hold this round
		// wedged at some pre-crash attempt we cannot know. Reopen strictly
		// above any attempt the α-policy can reach, so the moment our
		// inventory arrives their escalation reset (onInventory) abandons
		// the wedged attempt and rejoins ours.
		rs.attempt = maxAttempts + 1
		rs.closeAt = now.Add(s.def.Policy.WindowMin)
		out.merge(&Output{Timer: rs.closeAt})
	}
	s.rounds[rs.r] = rs
	s.nextOpen++
	rs.depthAtStart = len(s.rounds)
	s.perf.setRoundsInFlight(len(s.rounds))
	s.launchPadPrefetch(rs)
	out.merge(&Output{Timer: rs.hardAt})
}

// launchPadPrefetch starts the background expansion of a round's
// full-roster server pad: the (pair, round) seeds are known the moment
// the round number is, so the O(N·L) stream work runs concurrently with
// the submission window instead of on the critical path at its close.
// The expansion covers every non-excluded client; window close XORs out
// the (normally few) absentees. Epoch-boundary invalidation is
// structural: openRound runs after a roster transition applies, so a
// new prefetch is always expanded over the fresh roster, and
// takeServerPad double-checks round and roster version before trusting
// one.
func (s *Server) launchPadPrefetch(rs *roundState) {
	if s.noPrefetch || s.sched == nil {
		return
	}
	length := rs.vecLen
	clients := make([]int, 0, len(s.def.Clients))
	seeds := make([][]byte, 0, len(s.def.Clients))
	for ci := range s.def.Clients {
		if s.excluded[ci] || s.def.Clients[ci].Expelled {
			continue
		}
		clients = append(clients, ci)
		seeds = append(seeds, s.clientSeeds[ci])
	}
	if len(clients) == 0 || length == 0 {
		return
	}
	pf := &padPrefetch{
		round:   rs.r,
		version: s.def.Version,
		clients: clients,
		buf:     s.bufs.get(length),
		done:    make(chan struct{}),
	}
	rs.prefetch = pf
	pad := s.prefetchPads[int(rs.r%uint64(s.depth))] // dedicated lane; see the field comment
	go func() {
		pad.ServerPadInto(pf.buf, seeds, pf.round)
		close(pf.done)
	}()
}

// reapPrefetch retires a round's unconsumed prefetch, recycling its
// buffer.
func (s *Server) reapPrefetch(rs *roundState) {
	if pf := rs.prefetch; pf != nil {
		<-pf.done
		s.bufs.put(pf.buf)
		rs.prefetch = nil
	}
}

// takeServerPad produces ⊕_{i∈included} PRNG(K_ij, r) in a pooled
// buffer: from the prefetched full-roster pad when one is valid and the
// adjustment (XOR out absentees, XOR in unprefetched members) is
// cheaper than recomputing over the included set; otherwise by
// multicore expansion over exactly the included seeds.
func (s *Server) takeServerPad(rs *roundState, length int) []byte {
	if pf := rs.prefetch; pf != nil && pf.round == rs.r && pf.version == s.def.Version && len(pf.buf) == length {
		// Both pf.clients and rs.included are ascending: merge-diff.
		var missing, extra []int
		i, j := 0, 0
		for i < len(pf.clients) || j < len(rs.included) {
			switch {
			case j == len(rs.included) || (i < len(pf.clients) && pf.clients[i] < rs.included[j]):
				missing = append(missing, pf.clients[i])
				i++
			case i == len(pf.clients) || rs.included[j] < pf.clients[i]:
				extra = append(extra, rs.included[j])
				j++
			default:
				i, j = i+1, j+1
			}
		}
		if len(missing)+len(extra) < len(rs.included) {
			rs.prefetch = nil
			<-pf.done
			s.perf.prefetchHits.Add(1)
			rs.prefetchHit = true
			// The adjustment is just more streams to fold in (XOR toggles
			// absentees out and latecomers in alike); run it through the
			// worker pool so a large absentee set costs no more per core
			// than the recompute path it displaced.
			adjSeeds := make([][]byte, 0, len(missing)+len(extra))
			for _, ci := range missing {
				adjSeeds = append(adjSeeds, s.clientSeeds[ci])
			}
			for _, ci := range extra {
				adjSeeds = append(adjSeeds, s.clientSeeds[ci])
			}
			s.ppad.ServerPadInto(pf.buf, adjSeeds, rs.r)
			return pf.buf
		}
		// Participation collapsed below the adjustment break-even:
		// recompute over the included set; the stale prefetch is reaped
		// when the round retires.
	}
	s.perf.prefetchMisses.Add(1)
	share := s.bufs.get(length)
	seeds := make([][]byte, 0, len(rs.included))
	for _, ci := range rs.included {
		seeds = append(seeds, s.clientSeeds[ci])
	}
	s.ppad.ServerPadInto(share, seeds, rs.r)
	return share
}

func (s *Server) onClientSubmit(now time.Time, m *Message) (*Output, error) {
	if s.phase != phaseRunning && s.phase != phaseBlame {
		return &Output{}, nil
	}
	rs := s.rounds[m.Round]
	if rs == nil {
		// A pipelined client submits round r+1 the moment it has sent
		// round r; that can land here before round r's window closes and
		// opens r+1. Stash within one pipeline horizon, drop the rest
		// (retired rounds, or a client claiming an impossible future).
		if m.Round >= s.nextOpen && m.Round < s.nextOpen+uint64(s.depth) && s.phase == phaseRunning {
			return s.stashMsg(m), nil
		}
		// A submission for an already-retired round means the client
		// missed that round's output (its upstream crashed mid-epoch, or
		// it is laddering back after one did) — clients consume outputs
		// strictly in round order, so without help it would wedge here
		// forever. Replay the retained certified output; the client's
		// next submission lands one round later, repeating until it
		// reaches an open window.
		if body, ok := s.outMsgs[m.Round]; ok && m.Round < s.nextOpen {
			if ci := s.def.ClientIndex(m.From); ci >= 0 && !s.excluded[ci] {
				if err := s.verify(m, false); err != nil {
					return s.violation(m.Round, err), nil
				}
				reply, err := s.sign(MsgOutput, m.Round, body)
				if err != nil {
					return nil, err
				}
				return &Output{Send: []Envelope{{To: m.From, Msg: reply}}}, nil
			}
		}
		return &Output{}, nil // stale or too late for this round
	}
	if rs.phase > rpInventory {
		return &Output{}, nil // too late for this round
	}
	if err := s.verify(m, false); err != nil {
		return s.misbehave(rs.r, m.From, "bad-signature", err), nil
	}
	ci := s.def.ClientIndex(m.From)
	if s.excluded[ci] {
		return &Output{}, nil
	}
	p, err := DecodeClientSubmit(m.Body)
	if err != nil {
		return s.misbehave(rs.r, m.From, "malformed", err), nil
	}
	if len(p.CT) != rs.vecLen {
		return s.misbehave(rs.r, m.From, "malformed",
			fmt.Errorf("client %d ciphertext length %d, want %d", ci, len(p.CT), rs.vecLen)), nil
	}
	if _, dup := rs.subs[ci]; dup {
		// A duplicate is usually an honest retransmission and drops
		// silently — but two *distinct* signed submissions for one
		// round are provable equivocation, and a stream of identical
		// duplicates past the allowance is a replay flood (honest
		// resend loops are capped far below it by the backoff).
		if !bytes.Equal(rs.cts[ci], p.CT) {
			return s.misbehave(rs.r, m.From, "equivocation",
				fmt.Errorf("client %d submitted two distinct ciphertexts for round %d", ci, rs.r)), nil
		}
		if rs.dups == nil {
			rs.dups = make(map[int]int)
		}
		rs.dups[ci]++
		if rs.dups[ci] > dupFloodAllowance {
			return s.misbehave(rs.r, m.From, "replay",
				fmt.Errorf("client %d replayed round %d submission %d times", ci, rs.r, rs.dups[ci])), nil
		}
		return &Output{}, nil
	}
	rs.subs[ci] = m
	rs.cts[ci] = p.CT

	// Streaming combine: fold the ciphertext into the running
	// accumulator now, off the round's critical path. Window close then
	// costs one accumulator XOR regardless of N.
	if rs.ctAcc == nil {
		rs.ctAcc = s.bufs.get(rs.vecLen)
	}
	crypto.XORBytes(rs.ctAcc, p.CT)
	rs.accSet[ci] = true

	if rs.phase != rpCollect {
		return &Output{}, nil
	}
	expected := s.myExpected()
	if len(rs.subs) >= expected {
		return s.closeWindow(now, rs)
	}
	threshold := int(float64(expected)*s.def.Policy.WindowThreshold + 0.5)
	if threshold < 1 {
		threshold = 1
	}
	if rs.closeAt.IsZero() && len(rs.subs) >= threshold {
		elapsed := now.Sub(rs.start)
		window := time.Duration(float64(elapsed) * s.def.Policy.WindowMultiplier)
		if window < s.def.Policy.WindowMin {
			window = s.def.Policy.WindowMin
		}
		rs.closeAt = rs.start.Add(window)
		if rs.closeAt.After(rs.hardAt) {
			rs.closeAt = rs.hardAt
		}
		if !rs.closeAt.After(now) {
			return s.closeWindow(now, rs)
		}
		return &Output{Timer: rs.closeAt}, nil
	}
	return &Output{}, nil
}

// roundTick fires window deadlines and retransmission timers for every
// in-flight round, oldest first.
func (s *Server) roundTick(now time.Time) (*Output, error) {
	out := &Output{}
	for _, r := range sortedRounds(s.rounds) {
		rs := s.rounds[r]
		if rs == nil {
			continue // retired by an earlier round's cascade
		}
		if rs.phase == rpCollect {
			if (!rs.closeAt.IsZero() && !now.Before(rs.closeAt)) || !now.Before(rs.hardAt) {
				o, err := s.closeWindow(now, rs)
				if err != nil {
					return nil, err
				}
				out.merge(o)
				continue
			}
			t := rs.hardAt
			if !rs.closeAt.IsZero() && rs.closeAt.Before(t) {
				t = rs.closeAt
			}
			out.merge(&Output{Timer: t})
			continue
		}
		// Server-server phases: re-broadcast the round's phase messages
		// while peers keep us waiting. The transports are reliable streams
		// but not reliable links — a peer that reconnected after a partition
		// missed everything sent meanwhile, and without this the round would
		// wedge until the operator intervened. The whole cast sequence goes
		// out, not just the newest message: a peer can be a full phase
		// behind and needs the earlier ones first.
		if rs.phase > rpCollect && rs.phase < rpDone && len(rs.casts) > 0 {
			if now.Before(rs.resendAt) {
				out.merge(&Output{Timer: rs.resendAt})
				continue
			}
			rs.resendN++
			rs.resendAt = now.Add(s.retry.delay(rs.resendN, s.retrySeed^rs.r))
			out.merge(&Output{Timer: rs.resendAt})
			for _, c := range rs.casts {
				if err := s.broadcastServers(c.t, rs.r, c.body, out); err != nil {
					return nil, err
				}
			}
			// A round still wedged after several retries is being
			// withheld from: attribute the silence to the peers whose
			// phase contribution is missing (once per peer per round).
			if rs.resendN >= withholdSuspectAfter {
				out.merge(s.suspectWithholding(rs))
			}
		}
	}
	return out, nil
}

// sortedRounds returns the in-flight round numbers in ascending order.
func sortedRounds(m map[uint64]*roundState) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// closeWindow ends the collection phase and broadcasts the inventory.
// This is also the pipeline trigger: the moment one round stops
// collecting, the next round's window may open.
func (s *Server) closeWindow(now time.Time, rs *roundState) (*Output, error) {
	if rs.phase != rpCollect {
		return &Output{}, nil
	}
	rs.phase = rpInventory
	rs.windowClosed = now
	inv := &Inventory{Attempt: rs.attempt}
	for _, ci := range sortedKeys(rs.subs) {
		inv.Clients = append(inv.Clients, int32(ci))
	}
	s.log.Debug("window closed", "round", rs.r, "submissions", len(rs.subs),
		"attempt", rs.attempt, "window", now.Sub(rs.start))
	out := &Output{Events: []Event{{Kind: EventWindowClosed, Round: rs.r,
		Detail: fmt.Sprintf("%d submissions", len(rs.subs))}}}
	if err := s.castServers(now, rs, MsgInventory, inv.Encode(), out); err != nil {
		return nil, err
	}
	rs.invs[s.idx] = inv
	more, err := s.maybeCommit(now, rs)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	s.maybeOpenRounds(now, out)
	return out, nil
}

func (s *Server) onInventory(now time.Time, m *Message) (*Output, error) {
	rs := s.rounds[m.Round]
	if rs == nil {
		if m.Round >= s.nextOpen {
			return s.stashMsg(m), nil // a round we haven't opened yet
		}
		// Retired round. A server still inventorying it missed the
		// certification (it was down when the certs flew): hand it the
		// retained certified output so it adopts instead of wedging.
		if body, ok := s.outMsgs[m.Round]; ok && s.def.ServerIndex(m.From) >= 0 {
			if err := s.verify(m, true); err != nil {
				return s.violation(m.Round, err), nil
			}
			reply, err := s.sign(MsgOutput, m.Round, body)
			if err != nil {
				return nil, err
			}
			return &Output{Send: []Envelope{{To: m.From, Msg: reply}}}, nil
		}
		return &Output{}, nil
	}
	if err := s.verify(m, true); err != nil {
		return s.misbehave(rs.r, m.From, "bad-signature", err), nil
	}
	p, err := DecodeInventory(m.Body)
	if err != nil {
		return s.misbehave(rs.r, m.From, "malformed", err), nil
	}
	if p.Attempt != rs.attempt {
		if p.Attempt > maxAttempts && p.Attempt > rs.attempt {
			// A restarted peer reopened this round at a recovery attempt
			// (openRound); abandon the attempt we were wedged on and
			// rejoin. Kept submissions ride the new attempt through our
			// fresh inventory.
			return s.escalateAttempt(now, rs, p, s.def.ServerIndex(m.From))
		}
		// Inventories from a newer α-reopen attempt can arrive while we
		// are still collecting for it; only same-attempt ones are used.
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	if _, dup := rs.invs[si]; dup {
		return &Output{}, nil
	}
	rs.invs[si] = p
	return s.maybeCommit(now, rs)
}

// maybeCommit runs once all inventories for the attempt are in: apply
// the α-policy, then compute and commit this server's ciphertext.
// Gate B: only the head round (the oldest in flight) proceeds — its
// commit/share/certify sequence consumes the schedule and the beacon
// chain head, so those must run in round order. A younger round that
// has every inventory simply waits; retiring the head re-invokes this.
func (s *Server) maybeCommit(now time.Time, rs *roundState) (*Output, error) {
	if rs.phase != rpInventory || len(rs.invs) < len(s.def.Servers) {
		return &Output{}, nil
	}
	if rs.r != s.roundNum {
		return &Output{}, nil
	}
	// Union and dedup (lowest server index keeps a duplicate client).
	claimed := make(map[int]int) // client -> owning server
	for si := 0; si < len(s.def.Servers); si++ {
		for _, ci := range rs.invs[si].Clients {
			c := int(ci)
			if s.excluded[c] {
				continue
			}
			if _, ok := claimed[c]; !ok {
				claimed[c] = si
			}
		}
	}
	rs.included = sortedKeys(claimed)
	rs.directSets = make([][]int, len(s.def.Servers))
	for _, ci := range rs.included {
		si := claimed[ci]
		rs.directSets[si] = append(rs.directSets[si], ci)
	}

	// α-policy (§3.7): too few participants → reopen the window, a
	// bounded number of times.
	floor := int(float64(s.prevCount)*s.def.Policy.Alpha + 0.999999)
	if len(rs.included) < floor && rs.attempt < maxAttempts {
		rs.attempt++
		rs.phase = rpCollect
		rs.closeAt = now.Add(s.def.Policy.WindowMin)
		if rs.closeAt.After(rs.hardAt) {
			rs.closeAt = rs.hardAt
		}
		rs.invs = make(map[int]*Inventory)
		// The recorded casts are now a stale attempt; peers would drop
		// them on the attempt check anyway.
		rs.casts = nil
		return &Output{Timer: rs.closeAt}, nil
	}
	if len(rs.included) < floor || len(rs.included) == 0 {
		// Round failed: discard ciphertexts, certify a failure output
		// carrying the fresh participation count (§3.7).
		rs.failed = true
		rs.cleartext = nil
		return s.sendCertify(now, rs)
	}

	// Compute s_j = (⊕_{i∈l} PRNG(K_ij)) ⊕ (⊕_{i∈l'_j} c_i). The pad
	// comes from the window-long background prefetch (or multicore
	// expansion over the included seeds); the ciphertext term is the
	// streaming accumulator, corrected by the — normally empty — diff
	// between what we accumulated and the deduped direct set.
	length := rs.vecLen
	t0 := time.Now()
	share := s.takeServerPad(rs, length)
	d := time.Since(t0)
	s.perf.addPad(d)
	rs.padDur += d

	t0 = time.Now()
	inDirect := make(map[int]bool, len(rs.directSets[s.idx]))
	for _, ci := range rs.directSets[s.idx] {
		inDirect[ci] = true
	}
	if rs.ctAcc != nil {
		crypto.XORBytes(share, rs.ctAcc)
	}
	for ci := range rs.accSet {
		if !inDirect[ci] {
			// Accumulated but not ours after dedup (late submission past
			// our inventory, a duplicate claimed by a lower-index server,
			// or a mid-round exclusion): XOR it back out.
			crypto.XORBytes(share, rs.cts[ci])
			s.perf.accAdjusts.Add(1)
		}
	}
	for _, ci := range rs.directSets[s.idx] {
		if !rs.accSet[ci] {
			crypto.XORBytes(share, rs.cts[ci])
			s.perf.accAdjusts.Add(1)
		}
	}
	d = time.Since(t0)
	s.perf.addCombine(d)
	rs.combineDur += d
	if s.testCorruptShare != nil {
		s.testCorruptShare(rs.r, share)
	}
	if s.interdict != nil && s.interdict.Share != nil {
		s.interdict.Share(rs.r, share)
	}
	rs.myShare = share
	rs.phase = rpCommit

	out := &Output{}
	commit := &Commit{Attempt: rs.attempt, Hash: crypto.Hash("dissent/share-commit", share)}
	if s.beaconChain != nil && rs.myBeaconShare == nil {
		// Beacon commit phase rides the round's commit broadcast: the
		// share signs the chain head, and its hash commits us before we
		// see any peer's reveal (unbiasable with one honest server).
		bshare, err := beacon.MakeShare(s.kp, rs.r, s.beaconChain.Head(), s.rand)
		if err != nil {
			return nil, err
		}
		rs.myBeaconShare = bshare
	}
	if rs.myBeaconShare != nil {
		commit.BeaconCommit = beacon.CommitShare(rs.myBeaconShare)
		rs.beaconCommits[s.idx] = commit.BeaconCommit
	}
	if err := s.castServers(now, rs, MsgCommit, commit.Encode(), out); err != nil {
		return nil, err
	}
	rs.commits[s.idx] = commit.Hash
	more, err := s.maybeShare(now, rs)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onCommit(now time.Time, m *Message) (*Output, error) {
	rs := s.rounds[m.Round]
	if rs == nil {
		return &Output{}, nil
	}
	if err := s.verify(m, true); err != nil {
		return s.misbehave(rs.r, m.From, "bad-signature", err), nil
	}
	p, err := DecodeCommit(m.Body)
	if err != nil {
		return s.misbehave(rs.r, m.From, "malformed", err), nil
	}
	if p.Attempt != rs.attempt {
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	if prev, dup := rs.commits[si]; dup {
		if !bytes.Equal(prev, p.Hash) {
			return s.misbehave(rs.r, m.From, "equivocation",
				fmt.Errorf("server %d sent two distinct commitments for round %d", si, rs.r)), nil
		}
		return &Output{}, nil
	}
	rs.commits[si] = p.Hash
	if len(p.BeaconCommit) > 0 {
		rs.beaconCommits[si] = p.BeaconCommit
	}
	return s.maybeShare(now, rs)
}

func (s *Server) maybeShare(now time.Time, rs *roundState) (*Output, error) {
	if rs.phase != rpCommit || len(rs.commits) < len(s.def.Servers) {
		return &Output{}, nil
	}
	rs.phase = rpShare
	out := &Output{}
	body := (&Share{Attempt: rs.attempt, CT: rs.myShare, BeaconShare: rs.myBeaconShare}).Encode()
	if err := s.castServers(now, rs, MsgShare, body, out); err != nil {
		return nil, err
	}
	rs.shares[s.idx] = rs.myShare
	if rs.myBeaconShare != nil {
		rs.beaconShares[s.idx] = rs.myBeaconShare
	}
	more, err := s.maybeCombine(now, rs)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onShare(now time.Time, m *Message) (*Output, error) {
	rs := s.rounds[m.Round]
	if rs == nil {
		return &Output{}, nil
	}
	if err := s.verify(m, true); err != nil {
		return s.misbehave(rs.r, m.From, "bad-signature", err), nil
	}
	p, err := DecodeShare(m.Body)
	if err != nil {
		return s.misbehave(rs.r, m.From, "malformed", err), nil
	}
	if p.Attempt != rs.attempt {
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	if prev, dup := rs.shares[si]; dup {
		if !bytes.Equal(prev, p.CT) {
			return s.misbehave(rs.r, m.From, "equivocation",
				fmt.Errorf("server %d sent two distinct shares for round %d", si, rs.r)), nil
		}
		return &Output{}, nil
	}
	rs.shares[si] = p.CT
	if len(p.BeaconShare) > 0 {
		rs.beaconShares[si] = p.BeaconShare
	}
	return s.maybeCombine(now, rs)
}

// maybeCombine verifies commitments and assembles the cleartext.
func (s *Server) maybeCombine(now time.Time, rs *roundState) (*Output, error) {
	if rs.phase != rpShare || len(rs.shares) < len(s.def.Servers) {
		return &Output{}, nil
	}
	for si := 0; si < len(s.def.Servers); si++ {
		want := rs.commits[si]
		got := crypto.Hash("dissent/share-commit", rs.shares[si])
		if !bytes.Equal(want, got) {
			// The share this server distributed is not the one it
			// committed to: ciphertext equivocation (every honest peer
			// compares against the same broadcast commitment, so all
			// reach this verdict for the same sender).
			return s.misbehave(rs.r, s.def.Servers[si].ID, "equivocation",
				fmt.Errorf("server %d share does not match its commitment", si)), nil
		}
	}
	if s.beaconChain != nil {
		// Replay the beacon commit–reveal through a beacon.Round, which
		// checks every share against its commitment and signature and
		// assembles the round's chain entry.
		br := beacon.NewRound(s.keyGrp, s.serverIdentityKeys(), rs.r, s.beaconChain.Head())
		for si := 0; si < len(s.def.Servers); si++ {
			if err := br.Commit(si, rs.beaconCommits[si]); err != nil {
				return s.violation(rs.r, err), nil
			}
			if err := br.Reveal(si, rs.beaconShares[si]); err != nil {
				return s.violation(rs.r, err), nil
			}
		}
		entry, err := br.Entry()
		if err != nil {
			return s.violation(rs.r, err), nil
		}
		rs.beaconEntry = entry
	}
	t0 := time.Now()
	cleartext := s.bufs.get(rs.vecLen)
	for si := 0; si < len(s.def.Servers); si++ {
		crypto.XORBytes(cleartext, rs.shares[si])
	}
	rs.cleartext = cleartext
	d := time.Since(t0)
	s.perf.addCombine(d)
	rs.combineDur += d
	return s.sendCertify(now, rs)
}

func (s *Server) sendCertify(now time.Time, rs *roundState) (*Output, error) {
	rs.phase = rpCertify
	rs.certifySent = now
	sig, err := s.kp.Sign("dissent/cleartext",
		cleartextSignedBytes(s.grpID, rs.r, len(rs.included), rs.cleartext, beaconValueBytes(rs.beaconEntry)), s.rand)
	if err != nil {
		return nil, err
	}
	sigBytes := crypto.EncodeSignature(s.keyGrp, sig)
	out := &Output{}
	body := (&Certify{Attempt: rs.attempt, Sig: sigBytes}).Encode()
	if err := s.castServers(now, rs, MsgCertify, body, out); err != nil {
		return nil, err
	}
	rs.certs[s.idx] = sigBytes
	more, err := s.maybeOutput(now, rs)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onCertify(now time.Time, m *Message) (*Output, error) {
	rs := s.rounds[m.Round]
	if rs == nil {
		return &Output{}, nil
	}
	if err := s.verify(m, true); err != nil {
		return s.misbehave(rs.r, m.From, "bad-signature", err), nil
	}
	p, err := DecodeCertify(m.Body)
	if err != nil {
		return s.misbehave(rs.r, m.From, "malformed", err), nil
	}
	if p.Attempt > rs.attempt {
		return &Output{}, nil
	}
	if rs.phase < rpCertify {
		// A peer can certify before our own combine completes (its
		// copy of a slow share may arrive before ours under link
		// serialization); verify once we have the cleartext.
		return s.stashMsg(m), nil
	}
	if p.Attempt != rs.attempt {
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	sig, err := crypto.DecodeSignature(s.keyGrp, p.Sig)
	if err != nil {
		return s.misbehave(rs.r, m.From, "bad-certificate", err), nil
	}
	if err := crypto.Verify(s.keyGrp, s.def.Servers[si].PubKey, "dissent/cleartext",
		cleartextSignedBytes(s.grpID, rs.r, len(rs.included), rs.cleartext, beaconValueBytes(rs.beaconEntry)), sig); err != nil {
		return s.misbehave(rs.r, m.From, "bad-certificate",
			fmt.Errorf("server %d certify: %w", si, err)), nil
	}
	if _, dup := rs.certs[si]; dup {
		return &Output{}, nil
	}
	rs.certs[si] = p.Sig
	return s.maybeOutput(now, rs)
}

// maybeOutput completes the round: distribute the certified output,
// retire the round from the pipeline, advance the schedule, and let
// the next head proceed (or start a deferred blame/roster phase once
// the pipeline drains).
func (s *Server) maybeOutput(now time.Time, rs *roundState) (*Output, error) {
	if rs.phase != rpCertify || len(rs.certs) < len(s.def.Servers) {
		return &Output{}, nil
	}
	rs.phase = rpDone
	out := &Output{}
	sigs := make([][]byte, len(s.def.Servers))
	for i := range sigs {
		sigs[i] = rs.certs[i]
	}
	ro := &RoundOutput{
		Cleartext: rs.cleartext,
		Sigs:      sigs,
		Count:     int32(len(rs.included)),
		Failed:    rs.failed,
	}
	if rs.beaconEntry != nil && !rs.failed {
		ro.Beacon = rs.beaconEntry.Shares
	}
	roBody := ro.Encode()
	if err := s.broadcastClients(MsgOutput, rs.r, roBody, out); err != nil {
		return nil, err
	}
	// Retain the certified output so a peer that was down when the certs
	// flew can request it via a stale inventory and adopt (onPeerOutput).
	// Unlike history this covers failed rounds, which a recovering peer
	// must also sequence through.
	s.outMsgs[rs.r] = roBody
	if rs.r >= uint64(s.def.Policy.RetainRounds) {
		delete(s.outMsgs, rs.r-uint64(s.def.Policy.RetainRounds))
	}

	// The accumulator's job ends with the round; recycle it. (Raw
	// ciphertexts stay in rs.subs/cts for blame evidence.) Retire the
	// round from the pipeline; an unconsumed prefetch (failed round, or
	// participation below the adjustment break-even) is reaped here.
	s.bufs.put(rs.ctAcc)
	rs.ctAcc = nil
	s.reapPrefetch(rs)
	delete(s.rounds, rs.r)
	s.perf.setRoundsInFlight(len(s.rounds))

	s.emitRoundTrace(now, rs)
	s.prevCount = len(rs.included)
	s.roundNum++
	// Epoch boundary: the roster phase runs before the boundary round
	// starts (after any pending blame session), applying this epoch's
	// membership churn through a certified roster update. Gate A stops
	// opening rounds the moment rosterDue is set, so the pipeline
	// drains; the roster phase itself starts when it has.
	if s.epochBoundary(s.roundNum) {
		s.rosterDue = true
	}
	// Catch the applied layout up to the one round rs.r was composed at
	// before decoding: keep exactly q deltas queued, where q ramps up
	// from the last pipeline drain (the first post-drain round was
	// composed with every delta applied, the next with one withheld, and
	// so on up to the steady-state depth−1).
	q := s.depth - 1
	if d := rs.r - s.drainRound; d < uint64(q) {
		q = int(d)
	}
	s.sched.SyncPipeline(q)
	if rs.failed {
		out.Events = append(out.Events, Event{Kind: EventRoundFailed, Round: rs.r,
			Detail: fmt.Sprintf("participation %d", len(rs.included))})
		// A failed round contributes no schedule deltas, but the delta
		// queue must stay aligned with round numbers (exact no-op at
		// depth 1).
		s.sched.AdvanceFailed()
		if err := s.retireResume(now, out); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Record history for accusation tracing before advancing layout.
	hist := &roundHistory{
		included:   rs.included,
		directSets: rs.directSets,
		cleartext:  rs.cleartext,
		subs:       rs.subs,
		slotOff:    make([]int, s.sched.NumSlots()),
		slotLen:    make([]int, s.sched.NumSlots()),
	}
	hist.shares = make([][]byte, len(s.def.Servers))
	for i := range hist.shares {
		hist.shares[i] = rs.shares[i]
	}
	// Our own share and the assembled cleartext are pooled buffers; the
	// history entry owns them until eviction (blame tracing may read
	// them for RetainRounds rounds). Peer shares alias message bodies.
	hist.ownShare = rs.myShare
	hist.ownCleartext = rs.cleartext
	for i := 0; i < s.sched.NumSlots(); i++ {
		hist.slotOff[i], hist.slotLen[i] = s.sched.SlotRange(i)
	}
	s.history[rs.r] = hist
	// Evict everything older than the retention window — but never
	// while an accusation shuffle is open: the accusation names its
	// round only when the shuffle finishes, and evicting it mid-session
	// squashes the accusation into an inconclusive verdict (and, under
	// a continuous disruptor, a re-accuse livelock). Rounds mostly hold
	// during blame, so the map outgrows RetainRounds by at most the
	// in-flight pipeline depth; the first post-verdict completion
	// sweeps the backlog.
	if s.blame == nil && rs.r >= uint64(s.def.Policy.RetainRounds) {
		floor := rs.r - uint64(s.def.Policy.RetainRounds)
		for rnd, h := range s.history {
			if rnd <= floor {
				s.bufs.put(h.ownShare)
				s.bufs.put(h.ownCleartext)
				delete(s.history, rnd)
			}
		}
	}

	// Extend the beacon chain before advancing the schedule so an epoch
	// boundary crossed by this advance rotates on this round's output.
	// Every share was verified at combine time (beacon.Round.Reveal),
	// so only the linkage needs checking here.
	if rs.beaconEntry != nil {
		if err := s.beaconChain.AppendTrusted(rs.beaconEntry); err != nil {
			return nil, fmt.Errorf("core: beacon append: %w", err)
		}
	}
	res, err := s.sched.Advance(rs.cleartext)
	if err != nil {
		return nil, fmt.Errorf("core: schedule advance: %w", err)
	}
	for slot, p := range res.Payloads {
		if p != nil && len(p.Data) > 0 {
			out.Deliveries = append(out.Deliveries, Delivery{Round: rs.r, Slot: slot, Data: p.Data})
		}
	}
	out.Events = append(out.Events, Event{Kind: EventRoundComplete, Round: rs.r,
		Detail: fmt.Sprintf("participation %d", len(rs.included))})
	if res.Rotated {
		out.Events = append(out.Events, Event{Kind: EventEpochRotated, Round: rs.r,
			Detail: fmt.Sprintf("epoch at round %d", s.sched.Round())})
	}

	if res.ShuffleRequested {
		// Accusations run before any due roster phase: a verdict reached
		// now still makes this boundary's roster update. The shuffle
		// itself waits for the pipeline to drain — younger rounds were
		// composed before anyone saw the request and complete normally.
		s.blameDue = true
	}
	if err := s.retireResume(now, out); err != nil {
		return nil, err
	}
	return out, nil
}

// retireResume decides what runs after a round retires. While younger
// rounds remain in flight, the new head (which may already hold every
// inventory, blocked only by Gate B) gets to proceed and the pipeline
// refills. Once drained, a deferred accusation shuffle runs first,
// then resumeRounds handles any due roster phase or reopens windows.
func (s *Server) retireResume(now time.Time, out *Output) error {
	if len(s.rounds) == 0 {
		// The pipeline has drained: whatever runs next (accusation
		// shuffle, roster phase, or plain window reopening), rounds
		// restart with one in flight and ramp back up. Record the drain
		// point — it drives the per-round delta-queue depth, and
		// welcomes export it so joiners ramp identically.
		s.drainRound = s.nextOpen
		s.persistSnapshot()
		if s.blameDue {
			s.blameDue = false
			more, err := s.startBlame(now)
			if err != nil {
				return err
			}
			out.merge(more)
			return nil
		}
		return s.resumeRounds(now, out)
	}
	s.persistSnapshot()
	if rs := s.rounds[s.roundNum]; rs != nil {
		more, err := s.maybeCommit(now, rs)
		if err != nil {
			return err
		}
		out.merge(more)
	}
	s.maybeOpenRounds(now, out)
	return nil
}

// emitRoundTrace renders the round's phase timestamps as a span record
// for the trace hook, and logs the certification at Debug.
func (s *Server) emitRoundTrace(now time.Time, rs *roundState) {
	total := now.Sub(rs.start)
	s.log.Debug("round certified", "round", rs.r, "participation", len(rs.included),
		"failed", rs.failed, "total", total)
	if s.trace == nil {
		return
	}
	t := obs.RoundTrace{
		Round:         rs.r,
		Attempts:      int(rs.attempt),
		Start:         rs.start,
		Pad:           rs.padDur,
		Combine:       rs.combineDur,
		Total:         total,
		Participation: len(rs.included),
		PrefetchHit:   rs.prefetchHit,
		Failed:        rs.failed,
		Depth:         rs.depthAtStart,
	}
	if !rs.windowClosed.IsZero() {
		t.Window = rs.windowClosed.Sub(rs.start)
	}
	if !rs.certifySent.IsZero() {
		t.Certify = now.Sub(rs.certifySent)
	}
	if n := s.expectedClients() - len(rs.included); n > 0 {
		t.Stragglers = n
	}
	s.trace(t)
}

// violation wraps a protocol violation into an event output.
func (s *Server) violation(round uint64, err error) *Output {
	return &Output{Events: []Event{{Kind: EventProtocolViolation, Round: round, Detail: err.Error()}}}
}

// misbehave records an attributed protocol violation against a roster
// member and emits EventMisbehavior ("<kind>: <cause>"). A client
// accumulating misbehaviorEscalateThreshold attributed violations is
// queued for removal in the next certified roster update — the
// guaranteed escalation path for disruption that never produces a
// single blame-traceable incident. Unattributable senders (not in the
// roster) fall back to a plain violation event; the ledger only ever
// holds verified member identities, so its memory is roster-bounded.
func (s *Server) misbehave(round uint64, from group.NodeID, kind string, err error) *Output {
	if s.def.ServerIndex(from) < 0 && s.def.ClientIndex(from) < 0 {
		return s.violation(round, err)
	}
	rec := s.misbehavior[from]
	if rec == nil {
		rec = &peerRecord{kinds: make(map[string]int)}
		s.misbehavior[from] = rec
	}
	rec.kinds[kind]++
	rec.total++
	s.log.Warn("misbehavior observed", "peer", from, "kind", kind,
		"count", rec.total, "round", round, "err", err)
	out := &Output{Events: []Event{{Kind: EventMisbehavior, Round: round, Culprit: from,
		Detail: kind + ": " + err.Error()}}}
	if rec.total >= misbehaviorEscalateThreshold && !rec.escalated {
		if ci := s.def.ClientIndex(from); ci >= 0 && s.churnEnabled() && !s.excluded[ci] {
			rec.escalated = true
			s.pendingRemove[ci] = true
			s.log.Warn("misbehavior threshold crossed; client queued for certified removal",
				"peer", from, "violations", rec.total)
			out.Events = append(out.Events, Event{Kind: EventMisbehavior, Round: round,
				Culprit: from, Detail: fmt.Sprintf("escalated: %d violations, queued for removal", rec.total)})
		}
	}
	return out
}

// suspectWithholding attributes a wedged server-server phase to the
// peers whose contribution for the round's current phase is missing.
func (s *Server) suspectWithholding(rs *roundState) *Output {
	var has func(si int) bool
	switch rs.phase {
	case rpInventory:
		has = func(si int) bool { _, ok := rs.invs[si]; return ok }
	case rpCommit:
		has = func(si int) bool { _, ok := rs.commits[si]; return ok }
	case rpShare:
		has = func(si int) bool { _, ok := rs.shares[si]; return ok }
	case rpCertify:
		has = func(si int) bool { _, ok := rs.certs[si]; return ok }
	default:
		return &Output{}
	}
	if rs.suspected == nil {
		rs.suspected = make(map[int]bool)
	}
	out := &Output{}
	for si := range s.def.Servers {
		if si == s.idx || rs.suspected[si] || has(si) {
			continue
		}
		rs.suspected[si] = true
		out.merge(s.misbehave(rs.r, s.def.Servers[si].ID, "withholding",
			fmt.Errorf("server %d silent in round %d phase %d after %d retries", si, rs.r, rs.phase, rs.resendN)))
	}
	return out
}

// sortedKeys returns the sorted keys of an int-keyed map.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
