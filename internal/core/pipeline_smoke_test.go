package core

import (
	"testing"

	"dissent/internal/group"
)

func TestPipelineDepth2Smoke(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = 5 },
		mutateOpts:   func(o *Options) { o.PipelineDepth = 2 },
	})
	f.clients[0].Send([]byte("hello pipelined world"))
	f.h.StartAll()
	f.stepUntilRound(8, 400_000)
	t.Logf("server rounds: %d %d", f.servers[0].Round(), f.servers[1].Round())
	for i, c := range f.clients {
		t.Logf("client %d: round=%d", i, c.Round())
	}
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "hello pipelined world" {
			found = true
		}
	}
	if !found {
		t.Fatalf("message never delivered; violations: %v, events: %d", f.violations(), len(f.h.Events))
	}
}
