package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dissent/internal/dcnet"
	"dissent/internal/group"
)

// These tests exercise each scripted byzantine behavior class through
// the Options.Interdict hook (the same surface internal/adversary
// compiles to — that package cannot be imported here without a cycle)
// and assert the hardened ingress path both DETECTS the behavior and
// ATTRIBUTES it to the right culprit.

// misbehaviorCount counts EventMisbehavior occurrences whose detail is
// prefixed by kind and whose culprit matches, observed at servers.
func (f *fixture) misbehaviorCount(kind string, culprit group.NodeID) int {
	n := 0
	for _, ev := range f.h.EventsOf(EventMisbehavior) {
		if ev.Culprit == culprit && strings.HasPrefix(ev.Detail, kind+":") {
			n++
		}
	}
	return n
}

// TestRetryPolicyBackoff pins the unified retransmission backoff:
// exponential growth, cap, deterministic jitter within bounds, and the
// Options override reaching both engine roles.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{}.withDefaults(100 * time.Millisecond)
	if p.Base != 100*time.Millisecond || p.Cap != 800*time.Millisecond {
		t.Fatalf("defaults: %+v", p)
	}
	prev := time.Duration(0)
	for a := 0; a < 6; a++ {
		d := p.delay(a, 42)
		lo := time.Duration(float64(p.Base) * 0.9)
		hi := time.Duration(float64(p.Cap) * 1.1)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", a, d, lo, hi)
		}
		if d != p.delay(a, 42) {
			t.Fatalf("attempt %d: delay not deterministic", a)
		}
		if a > 0 && a < 3 && d <= prev {
			t.Fatalf("attempt %d: delay %v did not grow from %v", a, d, prev)
		}
		prev = d
	}
	// Jitter decorrelates seeds.
	if p.delay(1, 1) == p.delay(1, 2) && p.delay(2, 1) == p.delay(2, 2) {
		t.Fatal("jitter ignores the seed")
	}

	custom := &RetryPolicy{Base: 7 * time.Millisecond, Cap: 14 * time.Millisecond, Jitter: -1}
	f := newFixture(t, 2, 2, fixtureOpts{mutateOpts: func(o *Options) { o.Retry = custom }})
	if got := f.servers[0].retry.Base; got != 7*time.Millisecond {
		t.Fatalf("server retry base %v, want 7ms", got)
	}
	if got := f.clients[0].retry.Cap; got != 14*time.Millisecond {
		t.Fatalf("client retry cap %v, want 14ms", got)
	}
	if d := f.servers[0].retry.delay(5, 9); d != 14*time.Millisecond {
		t.Fatalf("disabled jitter: delay %v, want exact cap", d)
	}
}

// TestInterdictSlotJamTracedAndExpelled drives the catalog's slot-jam
// shape — a Vector interdict flipping a bit inside the victim's slot
// range before padding/signing — and asserts the full §3.9 pipeline:
// victim detection, accusation, trace, and a client-expelled verdict
// against the jammer at every server.
func TestInterdictSlotJamTracedAndExpelled(t *testing.T) {
	var victim *Client
	jam := &Interdict{Vector: func(info VectorInfo, vec []byte) {
		if victim == nil || victim.Slot() < 0 {
			return
		}
		off, n := info.SlotRange(victim.Slot())
		if n <= dcnet.SeedLen+13 {
			return
		}
		vec[off+dcnet.SeedLen+12] ^= 0xFF
	}}
	f := newFixture(t, 3, 5, fixtureOpts{
		clientOpts: func(idx int, o *Options) {
			if idx == 4 {
				o.Interdict = jam
			}
		},
	})
	victim = f.clients[0]
	victim.Send(bytes.Repeat([]byte("censored speech "), 20))

	f.runUntilRound(14, 3_000_000)

	if len(f.h.EventsOf(EventDisruptionDetected)) == 0 {
		t.Error("victim never detected the jam")
	}
	expelled := 0
	for _, v := range f.h.EventsOf(EventBlameVerdict) {
		if v.Culprit == f.clients[4].ID() && f.def.ServerIndex(v.Node) >= 0 {
			expelled++
		}
	}
	if expelled < 3 {
		t.Fatalf("jammer expelled at %d/3 servers; violations: %v", expelled, f.violations())
	}
	for _, s := range f.servers {
		if !s.Excluded(4) {
			t.Errorf("server %d did not exclude the jammer", s.Index())
		}
	}
}

// TestInterdictCorruptShareExposesServer installs the corrupt-share
// behavior on one server: its commit and share stay consistent, so
// only the blame trace's bit check can pin the garble — and it must
// yield a server-exposed verdict, not a client expulsion.
func TestInterdictCorruptShareExposesServer(t *testing.T) {
	var victim *Client
	var f *fixture
	corrupted := false
	f = newFixture(t, 3, 4, fixtureOpts{
		serverOpts: func(idx int, o *Options) {
			if idx == 2 {
				o.Interdict = &Interdict{Share: func(round uint64, share []byte) {
					if corrupted || victim == nil || victim.Slot() < 0 {
						return
					}
					off, n := f.servers[2].sched.SlotRange(victim.Slot())
					if n == 0 {
						return
					}
					share[off+dcnet.SeedLen+12] ^= 0xFF
					corrupted = true
				}}
			}
		},
	})
	victim = f.clients[0]
	victim.Send(bytes.Repeat([]byte("exposed traffic "), 20))

	f.runUntilRound(14, 3_000_000)

	if !corrupted {
		t.Fatal("the share interdict never fired")
	}
	exposed := 0
	for _, v := range f.h.EventsOf(EventBlameVerdict) {
		if v.Culprit == f.def.Servers[2].ID && f.def.ServerIndex(v.Node) >= 0 {
			exposed++
		}
	}
	if exposed < 2 {
		t.Fatalf("corrupting server exposed at %d servers; verdicts: %+v violations: %v",
			exposed, f.h.EventsOf(EventBlameVerdict), f.violations())
	}
	for i := range f.clients {
		if f.servers[0].Excluded(i) {
			t.Errorf("client %d was scapegoated for the server's corruption", i)
		}
	}
}

// TestInterdictEquivocatingClientEscalatesToExpulsion: a client that
// double-submits distinct signed ciphertexts every round is provably
// equivocating; the misbehavior ledger must attribute each offense and,
// past the escalation threshold, queue the client for certified
// removal at the next roster boundary.
func TestInterdictEquivocatingClientEscalatesToExpulsion(t *testing.T) {
	const epoch = 6
	equiv := &Interdict{Outbound: func(env Envelope, resign func(*Message) *Message) []Envelope {
		if env.Msg.Type != MsgClientSubmit {
			return []Envelope{env}
		}
		body := append([]byte(nil), env.Msg.Body...)
		body[len(body)-1] ^= 0xFF
		alt := resign(&Message{Type: MsgClientSubmit, Round: env.Msg.Round, Body: body})
		return []Envelope{env, {To: env.To, Msg: alt}}
	}}
	f := newFixture(t, 2, 4, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.5
		},
		clientOpts: func(idx int, o *Options) {
			if idx == 3 {
				o.Interdict = equiv
			}
		},
	})
	f.runUntilRound(4*epoch, 4_000_000)

	culprit := f.clients[3].ID()
	if n := f.misbehaviorCount("equivocation", culprit); n < misbehaviorEscalateThreshold {
		t.Fatalf("equivocation attributed %d times, want >= %d; violations: %v",
			n, misbehaviorEscalateThreshold, f.violations())
	}
	if f.misbehaviorCount("escalated", culprit) == 0 {
		t.Fatal("equivocator never escalated to removal")
	}
	expelled := false
	for _, ev := range f.h.EventsOf(EventMemberExpelled) {
		if ev.Culprit == culprit {
			expelled = true
		}
	}
	if !expelled {
		t.Fatalf("equivocator was not expelled by a certified roster update; violations: %v", f.violations())
	}
	// Honest members keep communicating after the expulsion.
	f.clients[0].Send([]byte("after the expulsion"))
	f.stepUntilRound(f.servers[0].Round()+epoch, 2_000_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "after the expulsion" {
			found = true
		}
	}
	if !found {
		t.Fatal("honest traffic did not survive the expulsion")
	}
}

// TestInterdictBadCertSigDetected: a server that corrupts the
// certificate signature inside its MsgCertify (outer envelope
// re-signed, so only payload validation can catch it) is attributed
// "bad-certificate" by every peer, and rounds heal once the behavior's
// round range ends.
func TestInterdictBadCertSigDetected(t *testing.T) {
	bad := &Interdict{Outbound: func(env Envelope, resign func(*Message) *Message) []Envelope {
		if env.Msg.Type != MsgCertify || env.Msg.Round < 1 || env.Msg.Round > 2 {
			return []Envelope{env}
		}
		body := append([]byte(nil), env.Msg.Body...)
		body[len(body)-1] ^= 0xFF
		return []Envelope{{To: env.To, Msg: resign(&Message{Type: MsgCertify, Round: env.Msg.Round, Body: body})}}
	}}
	f := newFixture(t, 3, 3, fixtureOpts{
		serverOpts: func(idx int, o *Options) {
			if idx == 1 {
				o.Interdict = bad
			}
		},
	})
	f.runUntilRound(6, 3_000_000)

	if n := f.misbehaviorCount("bad-certificate", f.def.Servers[1].ID); n == 0 {
		t.Fatalf("bad certificate never attributed; violations: %v", f.violations())
	}
	if got := f.servers[0].Round(); got <= 6 {
		t.Fatalf("rounds did not heal after the behavior window: at %d", got)
	}
}

// TestInterdictWithholdingSuspected: a server that silently drops its
// MsgShare broadcasts wedges the round — in an anytrust group no round
// completes without every server's share, so a forever-silent server
// halts the group by design. The test drops the first several share
// transmissions of round 1: after the retransmission backoff runs out
// of patience the waiting peers must attribute "withholding" to
// exactly the silent server, and the round must heal once the
// server's own backoff rebroadcast finally passes the interdict.
func TestInterdictWithholdingSuspected(t *testing.T) {
	dropped := 0
	withhold := &Interdict{Outbound: func(env Envelope, resign func(*Message) *Message) []Envelope {
		if env.Msg.Type == MsgShare && env.Msg.Round == 1 && dropped < 8 {
			dropped++
			return nil
		}
		return []Envelope{env}
	}}
	f := newFixture(t, 3, 3, fixtureOpts{
		serverOpts: func(idx int, o *Options) {
			if idx == 2 {
				o.Interdict = withhold
			}
		},
	})
	f.runUntilRound(6, 3_000_000)

	silent := f.def.Servers[2].ID
	if n := f.misbehaviorCount("withholding", silent); n == 0 {
		t.Fatalf("withholding never attributed; violations: %v", f.violations())
	}
	// No HONEST server may accuse another honest server. (The byzantine
	// server itself is free to emit bogus accusations — it is wedged
	// waiting on peers its own withholding wedged — which is exactly why
	// consumers must weigh accusations by observer.)
	for _, ev := range f.h.EventsOf(EventMisbehavior) {
		obs := f.def.ServerIndex(ev.Node)
		acc := f.def.ServerIndex(ev.Culprit)
		if obs >= 0 && obs != 2 && acc >= 0 && acc != 2 && strings.HasPrefix(ev.Detail, "withholding:") {
			t.Errorf("honest server %d attributed withholding to honest server %d", obs, acc)
		}
	}
	if got := f.servers[0].Round(); got <= 6 {
		t.Fatalf("rounds did not heal after the withholding window: at %d", got)
	}
}

// TestInterdictReplayFloodDetected: identical duplicates are tolerated
// up to the per-round allowance (honest retransmission), then
// attributed as "replay".
func TestInterdictReplayFloodDetected(t *testing.T) {
	replay := &Interdict{Outbound: func(env Envelope, resign func(*Message) *Message) []Envelope {
		if env.Msg.Type != MsgClientSubmit {
			return []Envelope{env}
		}
		out := make([]Envelope, 0, dupFloodAllowance+4)
		for i := 0; i < dupFloodAllowance+4; i++ {
			out = append(out, env)
		}
		return out
	}}
	f := newFixture(t, 2, 3, fixtureOpts{
		clientOpts: func(idx int, o *Options) {
			if idx == 2 {
				o.Interdict = replay
			}
		},
	})
	f.runUntilRound(4, 2_000_000)

	if n := f.misbehaviorCount("replay", f.clients[2].ID()); n == 0 {
		t.Fatalf("replay flood never attributed; violations: %v", f.violations())
	}
	if got := f.servers[0].Round(); got <= 4 {
		t.Fatalf("rounds wedged under the replay flood: at %d", got)
	}
}

// TestInterdictMalformedDetected: an authentically-signed frame whose
// body is garbage must be attributed "malformed" to its sender, and
// the session must ride through (the slot simply stays unproven that
// round).
func TestInterdictMalformedDetected(t *testing.T) {
	malform := &Interdict{Outbound: func(env Envelope, resign func(*Message) *Message) []Envelope {
		if env.Msg.Type != MsgClientSubmit || env.Msg.Round < 1 || env.Msg.Round > 2 {
			return []Envelope{env}
		}
		body := make([]byte, len(env.Msg.Body))
		for i := range body {
			body[i] = byte(i * 31)
		}
		return []Envelope{{To: env.To, Msg: resign(&Message{Type: MsgClientSubmit, Round: env.Msg.Round, Body: body})}}
	}}
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.Alpha = 0.5 },
		clientOpts: func(idx int, o *Options) {
			if idx == 1 {
				o.Interdict = malform
			}
		},
	})
	f.runUntilRound(6, 3_000_000)

	if n := f.misbehaviorCount("malformed", f.clients[1].ID()); n == 0 {
		t.Fatalf("malformed frames never attributed; violations: %v", f.violations())
	}
	if got := f.servers[0].Round(); got <= 6 {
		t.Fatalf("rounds did not heal after the malform window: at %d", got)
	}
}
