package core

import (
	"bytes"
	"testing"

	"dissent/internal/group"
)

func TestBootstrapEstablishesSchedule(t *testing.T) {
	f := newFixture(t, 3, 5, fixtureOpts{})
	f.runUntilRound(0, 200_000)

	ready := f.h.EventsOf(EventScheduleReady)
	// Every server and every client reports the schedule.
	if len(ready) != 3+5 {
		t.Fatalf("%d schedule-ready events, want 8; violations: %v", len(ready), f.violations())
	}
	for _, c := range f.clients {
		if !c.Ready() {
			t.Fatalf("client %d not ready", c.Index())
		}
		if c.Slot() < 0 || c.Slot() >= 5 {
			t.Fatalf("client slot %d out of range", c.Slot())
		}
	}
	// All slots distinct.
	seen := map[int]bool{}
	for _, c := range f.clients {
		if seen[c.Slot()] {
			t.Fatal("two clients share a slot")
		}
		seen[c.Slot()] = true
	}
}

func TestAnonymousMessageDelivered(t *testing.T) {
	f := newFixture(t, 2, 4, fixtureOpts{})
	msg := []byte("speak truth to power")
	f.clients[2].Send(msg)
	f.runUntilRound(4, 500_000)

	// The message should be delivered at every client and server, and
	// attributed only to a slot.
	got := 0
	for _, d := range f.h.Deliveries {
		if bytes.Equal(d.Data, msg) {
			got++
			if d.Slot != f.clients[2].Slot() {
				t.Errorf("delivery slot %d, want %d", d.Slot, f.clients[2].Slot())
			}
		}
	}
	if got != 2+4 {
		t.Errorf("message seen by %d nodes, want 6; violations: %v", got, f.violations())
	}
}

func TestMultipleSendersAllDelivered(t *testing.T) {
	f := newFixture(t, 2, 4, fixtureOpts{})
	msgs := [][]byte{
		[]byte("message from client zero"),
		[]byte("message from client one"),
		[]byte("message from client two"),
		[]byte("message from client three"),
	}
	for i, c := range f.clients {
		c.Send(msgs[i])
	}
	f.runUntilRound(5, 800_000)

	for i := range msgs {
		found := false
		for _, d := range f.h.Deliveries {
			if d.Node == f.servers[0].ID() && bytes.Equal(d.Data, msgs[i]) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("message %d never delivered at server 0", i)
		}
	}
}

func TestLargeMessageFragmented(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.MaxSlotLen = 128 // force fragmentation
		},
	})
	big := bytes.Repeat([]byte("0123456789abcdef"), 40) // 640 bytes
	f.clients[0].Send(big)
	f.runUntilRound(14, 2_000_000)

	// Reassemble fragments delivered at server 0 in slot order.
	slot := f.clients[0].Slot()
	var assembled []byte
	for _, d := range f.h.Deliveries {
		if d.Node == f.servers[0].ID() && d.Slot == slot {
			assembled = append(assembled, d.Data...)
		}
	}
	if !bytes.Equal(assembled, big) {
		t.Errorf("reassembled %d bytes, want %d; violations: %v",
			len(assembled), len(big), f.violations())
	}
}

func TestRoundsProgressWhenIdle(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{})
	f.runUntilRound(6, 500_000)
	for _, s := range f.servers {
		if s.Round() < 6 {
			t.Errorf("server %d stuck at round %d; violations: %v",
				s.Index(), s.Round(), f.violations())
		}
		if s.Participation() != 3 {
			t.Errorf("participation %d, want 3", s.Participation())
		}
	}
}

func TestServersAgreeOnRoundOutputs(t *testing.T) {
	f := newFixture(t, 3, 4, fixtureOpts{})
	f.clients[1].Send([]byte("agreement check"))
	f.runUntilRound(3, 500_000)

	// Compare the delivery stream across servers: identical contents.
	perServer := make(map[int][]string)
	for _, d := range f.h.Deliveries {
		for si, s := range f.servers {
			if d.Node == s.ID() {
				perServer[si] = append(perServer[si], string(d.Data))
			}
		}
	}
	for si := 1; si < 3; si++ {
		if len(perServer[si]) != len(perServer[0]) {
			t.Fatalf("server %d delivered %d messages, server 0 %d",
				si, len(perServer[si]), len(perServer[0]))
		}
		for k := range perServer[si] {
			if perServer[si][k] != perServer[0][k] {
				t.Fatal("servers delivered different messages")
			}
		}
	}
}
