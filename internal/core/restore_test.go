package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/crypto"
	"dissent/internal/group"
	"dissent/internal/store"
)

// blackholeEngine swallows everything addressed to a killed node.
type blackholeEngine struct{}

func (blackholeEngine) Start(time.Time) (*Output, error)            { return &Output{}, nil }
func (blackholeEngine) Handle(time.Time, *Message) (*Output, error) { return &Output{}, nil }
func (blackholeEngine) Tick(time.Time) (*Output, error)             { return &Output{}, nil }

// step drives the harness a bounded number of events regardless of
// round progress (used while the session is intentionally wedged).
func (f *fixture) step(n int64) {
	f.t.Helper()
	for i := int64(0); i < n; i++ {
		if !f.h.Net.Step() {
			break
		}
	}
	for _, err := range f.h.Errors {
		f.t.Errorf("harness error: %v", err)
	}
	f.h.Errors = nil
}

// TestServerSnapshotRoundTrip pins the snapshot codec.
func TestServerSnapshotRoundTrip(t *testing.T) {
	sn := &ServerSnapshot{
		Version:    7,
		Round:      123,
		PrevCount:  9,
		DrainRound: 120,
		RosterDue:  1,
		CertKeys:   [][]byte{{1, 2}, {3}},
		CertSigs:   [][]byte{{4}, {5, 6}},
		SlotKeys:   [][]byte{{7}, {8}, {9}},
		SchedRound: 122,
		Lens:       []int32{64, 0, 64},
		Idle:       []int32{0, 3, 1},
		Perm:       []int32{2, 0, 1},
		PendingOps: []int32{1},
		PendingNs:  []int32{64},
		ExpelIdx:   []int32{4},
		ExpelAt:    []uint64{100},
	}
	got, err := DecodeServerSnapshot(sn.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", sn) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sn)
	}
}

// TestServerRestartMidEpochResumes kills one of three servers mid-epoch
// (mid-session, with rounds in flight), restarts it from its durable
// store, and asserts the session resumes certifying rounds without any
// manual rejoin: the restored server replays its roster chain, reopens
// the wedged rounds at a recovery attempt, adopts any round its peers
// certified without it, and the whole group reaches round and roster
// convergence again — including payloads sent after the restart.
func TestServerRestartMidEpochResumes(t *testing.T) {
	const epoch = 6
	dir := t.TempDir()
	openKV := func(i int) *store.KV {
		kv, err := store.Open(filepath.Join(dir, fmt.Sprintf("srv%d.kv", i)))
		if err != nil {
			t.Fatal(err)
		}
		return kv
	}
	kvs := make([]*store.KV, 3)
	for i := range kvs {
		kvs[i] = openKV(i)
	}
	f := newFixture(t, 3, 4, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.25 // the victim's direct clients' submissions die with it
		},
		serverOpts: func(idx int, o *Options) {
			o.StateStore = kvs[idx]
			bs, err := beacon.NewKVStore(kvs[idx], "beacon")
			if err != nil {
				t.Fatal(err)
			}
			o.BeaconStore = bs
		},
	})

	// Run past the first epoch boundary into the middle of the second
	// epoch, then kill server 0 with rounds in flight.
	f.h.StartAll()
	f.stepUntilRound(epoch+2, 2_000_000)
	vid := f.def.Servers[0].ID
	killRound := f.servers[0].Round()
	f.h.SwapEngine(vid, blackholeEngine{})
	if err := kvs[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Let the survivors run into the wedge: no round can certify while
	// one server is down, so they re-broadcast and wait.
	f.step(3000)
	for _, s := range f.servers[1:] {
		if s.Round() > killRound+1 {
			t.Fatalf("server %d certified round %d with a peer down (killed at %d)",
				s.Index(), s.Round(), killRound)
		}
	}

	// Restart: a fresh engine over the genesis definition and the same
	// keys, restored from the reopened store.
	kv0 := openKV(0)
	bs0, err := beacon.NewKVStore(kv0, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewServer(f.def, f.kpByID[vid], f.msgKPByIdx[0],
		Options{MessageGroup: crypto.ModP512Test(), StateStore: kv0, BeaconStore: bs0})
	if err != nil {
		t.Fatal(err)
	}
	now := f.h.Net.Now()
	out, ok, err := restored.RestoreFromStore(now)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no snapshot found in the victim's store")
	}
	if restored.Round() > killRound || restored.Round()+2 < killRound {
		t.Fatalf("restored at round %d, killed at %d", restored.Round(), killRound)
	}
	f.servers[0] = restored
	f.h.SwapEngine(vid, restored)
	f.h.ProcessExternal(vid, now, out, nil)
	if f.h.FirstEvent(vid, EventStateRestored) == nil {
		t.Fatal("restore emitted no EventStateRestored")
	}

	// The session must resume certifying rounds, through the next epoch
	// boundary and beyond, with every replica converged.
	f.stepUntilRound(killRound+2*epoch, 4_000_000)
	for _, s := range f.servers {
		if s.Round() <= killRound+2*epoch {
			t.Fatalf("server %d stuck at round %d after restart (killed at %d); violations: %v",
				s.Index(), s.Round(), killRound, f.violations())
		}
	}
	v := f.servers[0].RosterVersion()
	if v == 0 {
		t.Fatal("roster version never advanced")
	}
	for _, s := range f.servers[1:] {
		if s.RosterVersion() != v {
			t.Fatalf("roster versions diverged after restart: %d vs %d", v, s.RosterVersion())
		}
	}

	// Anonymous traffic still flows end to end after the restart.
	f.clients[0].Send([]byte("after the restart"))
	f.stepUntilRound(f.servers[0].Round()+2, 1_000_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "after the restart" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("post-restart payload never delivered; violations: %v", f.violations())
	}
}

// TestVictimClientsResumeAfterAdoption kills the victim server inside
// the certify window: its certification signature has reached the
// peers (they retire the round) but it dies before retiring the round
// itself. On restart the victim must adopt the peer-certified output —
// and, critically, forward it to its own attached clients and answer
// their stale resubmissions with retained outputs so they ladder back
// to the live round within a few rounds of the restart. Those clients
// consume outputs strictly in round order; before these paths existed
// they wedged at the adopted round until the next epoch boundary's
// roster re-sync — a full epoch of hard-timeout rounds with the group
// limping at reduced participation. The assertions below therefore
// bound recovery to well inside the epoch.
func TestVictimClientsResumeAfterAdoption(t *testing.T) {
	const epoch = 12
	dir := t.TempDir()
	openKV := func(i int) *store.KV {
		kv, err := store.Open(filepath.Join(dir, fmt.Sprintf("srv%d.kv", i)))
		if err != nil {
			t.Fatal(err)
		}
		return kv
	}
	kvs := make([]*store.KV, 3)
	for i := range kvs {
		kvs[i] = openKV(i)
	}
	f := newFixture(t, 3, 4, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.25
		},
		serverOpts: func(idx int, o *Options) {
			o.StateStore = kvs[idx]
			bs, err := beacon.NewKVStore(kvs[idx], "beacon")
			if err != nil {
				t.Fatal(err)
			}
			o.BeaconStore = bs
		},
	})

	f.h.StartAll()
	f.stepUntilRound(epoch+2, 2_000_000)
	vid := f.def.Servers[0].ID

	// Single-step into the certify window: stop the moment a peer has
	// retired a round the victim has not — the victim's cert signature
	// is out, so killing it now leaves a round only the peers completed.
	caught := false
	for i := 0; i < 2_000_000; i++ {
		if f.servers[1].Round() > f.servers[0].Round() ||
			f.servers[2].Round() > f.servers[0].Round() {
			caught = true
			break
		}
		if !f.h.Net.Step() {
			break
		}
	}
	if !caught {
		t.Fatal("never caught a peer ahead of the victim (certify window)")
	}
	killRound := f.servers[0].Round()
	f.h.SwapEngine(vid, blackholeEngine{})
	if err := kvs[0].Close(); err != nil {
		t.Fatal(err)
	}
	f.step(3000)

	// Restart from the reopened store.
	kv0 := openKV(0)
	bs0, err := beacon.NewKVStore(kv0, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewServer(f.def, f.kpByID[vid], f.msgKPByIdx[0],
		Options{MessageGroup: crypto.ModP512Test(), StateStore: kv0, BeaconStore: bs0})
	if err != nil {
		t.Fatal(err)
	}
	now := f.h.Net.Now()
	out, ok, err := restored.RestoreFromStore(now)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no snapshot found in the victim's store")
	}
	f.servers[0] = restored
	f.h.SwapEngine(vid, restored)
	f.h.ProcessExternal(vid, now, out, nil)

	// The regression: clients homed on the victim must ladder back to
	// the live round and carry traffic again within a few rounds — NOT
	// only after the next epoch boundary's roster re-sync.
	f.clients[0].Send([]byte("from the victim's first client"))
	f.clients[3].Send([]byte("from the victim's second client"))
	f.stepUntilRound(killRound+5, 4_000_000)
	if r := f.servers[0].Round(); r >= killRound+epoch {
		t.Fatalf("rounds ran to %d (killed at %d): past the epoch boundary, the re-sync would mask the wedge", r, killRound)
	}

	// The kill point guarantees the adoption path ran (the peers retired
	// killRound without the victim); make sure the test keeps pinning it.
	adopted := false
	for _, e := range f.h.Events {
		if e.Node == vid && strings.Contains(e.Detail, "adopted") {
			adopted = true
			break
		}
	}
	if !adopted {
		t.Fatal("victim never adopted a peer-certified output")
	}

	for _, ci := range []int{0, 3} {
		if cr, sr := f.clients[ci].Round(), f.servers[0].Round(); cr < sr {
			t.Errorf("client %d still behind after restart: client round %d, server round %d", ci, cr, sr)
		}
	}
	want := map[string]bool{
		"from the victim's first client":  false,
		"from the victim's second client": false,
	}
	for _, d := range f.h.Deliveries {
		if _, ok := want[string(d.Data)]; ok {
			want[string(d.Data)] = true
		}
	}
	for msg, seen := range want {
		if !seen {
			t.Errorf("payload %q never delivered within %d rounds of the restart; violations: %v",
				msg, 5, f.violations())
		}
	}
}

// dropVersionClient wraps a client engine and swallows every original
// broadcast copy of the certified roster update for one specific
// version — the "client misses a non-empty roster update" fault the
// catch-up and divergence machinery exists for. Dropping stops once a
// later version is seen (the boundary has passed and the loss is
// irreversible), so a catch-up replay of the same version gets through
// like any real re-delivery would.
type dropVersionClient struct {
	*Client
	version  uint64
	dropped  *int
	sawLater bool
}

func (d *dropVersionClient) Handle(now time.Time, m *Message) (*Output, error) {
	if m.Type == MsgRosterUpdate && !d.sawLater {
		if w, err := DecodeRosterUpdateMsg(m.Body); err == nil {
			if u, err := group.DecodeRosterUpdate(w.Update); err == nil {
				if u.Version == d.version {
					*d.dropped++
					return &Output{}, nil
				}
				if u.Version > d.version {
					d.sawLater = true
				}
			}
		}
	}
	return d.Client.Handle(now, m)
}

// TestClientMissedRosterUpdateCatchUp makes one client miss every copy
// of a non-empty roster update (an expulsion — exactly the update whose
// loss used to leave the schedule replica silently diverged). The chain
// gap must be detected at the next update, and the catch-up probe must
// replay the missed update so the replica provably re-converges: same
// roster version, same slot count, and the client's traffic still
// decodes.
func TestClientMissedRosterUpdateCatchUp(t *testing.T) {
	const epoch = 4
	dropped := 0
	var f *fixture
	f = newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.25
		},
		wrapClient: func(idx int, c *Client) Engine {
			if idx != 0 {
				return nil
			}
			return &dropVersionClient{Client: c, version: 1, dropped: &dropped}
		},
	})

	// Expel client 2 before the first boundary: version 1 is a pure
	// removal — non-empty, and it also reseeds the slot permutation, so
	// missing it is precisely the historical divergence wedge.
	f.h.StartAll()
	f.stepUntilRound(1, 1_000_000)
	if err := f.servers[0].Expel(f.clients[2].ID()); err != nil {
		t.Fatal(err)
	}

	// Run through two boundaries: v1's copies are all dropped at client
	// 0; v2 exposes the chain gap; the probe replays v1 and v2.
	f.stepUntilRound(3*epoch, 4_000_000)
	if dropped == 0 {
		t.Fatal("no version-1 roster update was ever dropped")
	}
	v := f.servers[0].RosterVersion()
	if v < 2 {
		t.Fatalf("roster version %d, want >= 2", v)
	}
	if got := f.clients[0].RosterVersion(); got != v {
		t.Fatalf("client replica stuck at version %d, servers at %d; violations: %v",
			got, v, f.violations())
	}
	if got, want := f.clients[0].sched.NumSlots(), f.servers[0].sched.NumSlots(); got != want {
		t.Fatalf("client schedule has %d slots after catch-up, servers have %d", got, want)
	}

	// The re-converged replica still composes decodable traffic.
	f.clients[0].Send([]byte("post catch-up"))
	f.stepUntilRound(f.servers[0].Round()+epoch, 2_000_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "post catch-up" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("post-catch-up payload never delivered; violations: %v", f.violations())
	}
}

// TestClientResyncsFromSnapshotAfterTruncation is the catch-up wedge
// regression: the client misses a non-empty update AND every server's
// in-memory roster log has lost that version (no durable store), so the
// replay path genuinely cannot serve it. Instead of wedging forever in
// the probe loop, the server must fall back to a certified snapshot
// sync, and the client must adopt it and re-converge.
func TestClientResyncsFromSnapshotAfterTruncation(t *testing.T) {
	const epoch = 4
	dropped := 0
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.25
		},
		wrapClient: func(idx int, c *Client) Engine {
			if idx != 0 {
				return nil
			}
			return &dropVersionClient{Client: c, version: 1, dropped: &dropped}
		},
	})

	f.h.StartAll()
	f.stepUntilRound(1, 1_000_000)
	if err := f.servers[0].Expel(f.clients[2].ID()); err != nil {
		t.Fatal(err)
	}

	// Let version 1 certify and apply on the servers (dropped at client
	// 0), then truncate it from every server's in-memory log before the
	// client's catch-up probe can request a replay.
	f.stepUntilRound(epoch+1, 2_000_000)
	if dropped == 0 {
		t.Fatal("no version-1 roster update was ever dropped")
	}
	for _, s := range f.servers {
		if s.rosterLog[1] == nil {
			t.Fatalf("server %d has no version-1 update to truncate", s.Index())
		}
		delete(s.rosterLog, 1)
	}

	f.stepUntilRound(3*epoch, 4_000_000)
	resynced := f.h.FirstEvent(f.clients[0].ID(), EventReplicaResynced)
	if resynced == nil {
		t.Fatalf("client never resynced from a snapshot; violations: %v", f.violations())
	}
	v := f.servers[0].RosterVersion()
	if got := f.clients[0].RosterVersion(); got != v {
		t.Fatalf("client replica at version %d after resync, servers at %d", got, v)
	}

	f.clients[0].Send([]byte("post resync"))
	f.stepUntilRound(f.servers[0].Round()+epoch, 2_000_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "post resync" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("post-resync payload never delivered; violations: %v", f.violations())
	}
}
