package core

import (
	"fmt"
	"math/big"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
	"dissent/internal/shuffle"
)

// The accusation protocol (§3.9), server side. A disruption victim
// signals via the shuffle-request field; the servers then run a
// general message shuffle in the mod-p group through which the victim
// anonymously transmits a signed accusation naming a witness bit.
// Tracing publishes the single PRNG bit every pair contributed at that
// position and pins the unmatched 1 on a client or server.

// blameWindowFactor scales Policy.WindowMin into the blame submission
// window and the rebuttal deadline.
const blameWindowFactor = 4

// accusationBytes renders an accusation for embedding.
func accusationBytes(round uint64, slot, bit int, sig []byte) []byte {
	var e encBuf
	e.U64(round)
	e.U32(uint32(slot))
	e.U32(uint32(bit))
	e.B = append(e.B, sig...)
	return e.B
}

// accusationDigest is what the pseudonym key signs.
func accusationDigest(grpID [32]byte, round uint64, slot, bit int) []byte {
	return crypto.Hash("dissent/accusation", grpID[:],
		crypto.HashUint64(round), crypto.HashUint64(uint64(slot)), crypto.HashUint64(uint64(bit)))
}

// parseAccusation splits an accusation message; bit is still
// slot-relative here.
func parseAccusation(keyGrp crypto.Group, msg []byte) (round uint64, slot, bit int, sig []byte, ok bool) {
	want := accusationLen(keyGrp)
	if len(msg) != want {
		return 0, 0, 0, nil, false
	}
	d := decBuf{B: msg}
	r, _ := d.U64()
	sl, _ := d.U32()
	b, _ := d.U32()
	return r, int(sl), int(b), d.B, true
}

// serverMsgKeys returns the servers' message-shuffle public keys.
func (s *Server) serverMsgKeys() []crypto.Element {
	pubs := make([]crypto.Element, len(s.def.Servers))
	for i, srv := range s.def.Servers {
		pubs[i] = srv.MsgPubKey
	}
	return pubs
}

// blameWidth is the ciphertext vector width of accusations in the
// message group.
func (s *Server) blameWidth() int {
	return shuffle.VecWidth(s.msgGrp, accusationLen(s.keyGrp))
}

// startBlame opens an accusation shuffle session.
func (s *Server) startBlame(now time.Time) (*Output, error) {
	s.phase = phaseBlame
	s.blameSession++
	s.blame = &blameState{
		session: s.blameSession,
		phase:   bpCollect,
		closeAt: now.Add(blameWindowFactor * s.def.Policy.WindowMin),
		subs:    make(map[int][]byte),
		lists:   make(map[int]*BlameList),
		traces:  make(map[int]*TraceBits),
		flagged: -1,
	}
	s.log.Debug("blame session opened", "round", s.roundNum, "blame_session", s.blameSession)
	out := &Output{
		Timer:  s.blame.closeAt,
		Events: []Event{{Kind: EventBlameStarted, Round: s.roundNum, Detail: fmt.Sprintf("session %d", s.blameSession)}},
	}
	body := (&BlameStart{Session: s.blameSession}).Encode()
	if err := s.broadcastClients(MsgBlameStart, s.roundNum, body, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Server) blameTick(now time.Time) (*Output, error) {
	b := s.blame
	if b == nil {
		return &Output{}, nil
	}
	switch b.phase {
	case bpCollect:
		if !now.Before(b.closeAt) {
			return s.sendBlameList(now)
		}
		return &Output{Timer: b.closeAt}, nil
	case bpRebuttal:
		if !now.Before(b.rebutAt) {
			// No rebuttal: the flagged client is the disruptor.
			return s.blameVerdict(now, s.def.Clients[b.flagged].ID, 1)
		}
		return &Output{Timer: b.rebutAt}, nil
	default:
		return &Output{}, nil
	}
}

func (s *Server) onBlameSubmit(now time.Time, m *Message) (*Output, error) {
	b := s.blame
	if b == nil || b.phase != bpCollect {
		return &Output{}, nil
	}
	if err := s.verify(m, false); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeBlameSubmit(m.Body)
	if err != nil || p.Session != b.session {
		return &Output{}, nil
	}
	ci := s.def.ClientIndex(m.From)
	if s.excluded[ci] {
		return &Output{}, nil
	}
	if _, dup := b.subs[ci]; dup {
		return &Output{}, nil
	}
	b.subs[ci] = p.CT
	// Early close once all attached, non-excluded clients answered.
	for _, mine := range s.myClients {
		if s.excluded[mine] {
			continue
		}
		if _, ok := b.subs[mine]; !ok {
			return &Output{}, nil
		}
	}
	return s.sendBlameList(now)
}

func (s *Server) sendBlameList(now time.Time) (*Output, error) {
	b := s.blame
	if b.phase != bpCollect {
		return &Output{}, nil
	}
	b.phase = bpShuffle
	list := &BlameList{Session: b.session}
	for _, ci := range sortedKeys(b.subs) {
		list.Clients = append(list.Clients, int32(ci))
		list.CTs = append(list.CTs, b.subs[ci])
	}
	out := &Output{}
	if err := s.broadcastServers(MsgBlameList, s.roundNum, list.Encode(), out); err != nil {
		return nil, err
	}
	b.lists[s.idx] = list
	more, err := s.maybeStartBlameShuffle(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onBlameList(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeBlameList(m.Body)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	b := s.blame
	if b == nil || p.Session > b.session {
		if p.Session > s.blameSession {
			return s.stashMsg(m), nil
		}
		return &Output{}, nil
	}
	if p.Session != b.session {
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	if _, dup := b.lists[si]; dup {
		return &Output{}, nil
	}
	b.lists[si] = p
	// Another server closed its window; close ours too if still open.
	out := &Output{}
	if b.phase == bpCollect {
		o, err := s.sendBlameList(now)
		if err != nil {
			return nil, err
		}
		out.merge(o)
		return out, nil
	}
	o, err := s.maybeStartBlameShuffle(now)
	if err != nil {
		return nil, err
	}
	out.merge(o)
	return out, nil
}

func (s *Server) maybeStartBlameShuffle(now time.Time) (*Output, error) {
	b := s.blame
	if len(b.lists) < len(s.def.Servers) || b.order != nil {
		return &Output{}, nil
	}
	byClient := make(map[int][]byte)
	for _, si := range sortedKeys(b.lists) {
		list := b.lists[si]
		for k, ci := range list.Clients {
			if _, ok := byClient[int(ci)]; !ok {
				byClient[int(ci)] = list.CTs[k]
			}
		}
	}
	b.order = sortedKeys(byClient)
	if len(b.order) == 0 {
		// Nobody submitted: close the session with no verdict.
		return s.blameVerdict(now, group.NodeID{}, 0)
	}
	width := s.blameWidth()
	ctLen := 2 * s.msgGrp.ElementLen()
	b.cur = make([]shuffle.Vec, 0, len(b.order))
	for _, ci := range b.order {
		raw := byClient[ci]
		if len(raw) != width*ctLen {
			// Malformed submission: drop the client's entry.
			continue
		}
		v := make(shuffle.Vec, width)
		bad := false
		for c := 0; c < width; c++ {
			ct, err := crypto.DecodeCiphertext(s.msgGrp, raw[c*ctLen:(c+1)*ctLen])
			if err != nil {
				bad = true
				break
			}
			v[c] = ct
		}
		if !bad {
			b.cur = append(b.cur, v)
		}
	}
	if len(b.cur) == 0 {
		return s.blameVerdict(now, group.NodeID{}, 0)
	}
	b.stage = 0
	return s.maybeRunBlameStage(now)
}

func (s *Server) maybeRunBlameStage(now time.Time) (*Output, error) {
	b := s.blame
	out := &Output{}
	if b.stage == len(s.def.Servers) {
		return s.finishBlameShuffle(now)
	}
	if b.stage != s.idx {
		return out, nil
	}
	remaining := crypto.AggregateKeys(s.msgGrp, s.serverMsgKeys()[s.idx:])
	step, err := shuffle.Step(s.msgGrp, s.msgKP, remaining, b.cur, s.def.Policy.Shadows, s.rand)
	if err != nil {
		return nil, fmt.Errorf("core: blame shuffle step: %w", err)
	}
	body := (&ShuffleStep{Session: b.session, Stage: int32(s.idx), Data: shuffle.EncodeStepOutput(s.msgGrp, step)}).Encode()
	if err := s.broadcastServers(MsgBlameStep, s.roundNum, body, out); err != nil {
		return nil, err
	}
	b.cur = step.Stripped
	b.stage++
	more, err := s.maybeRunBlameStage(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onBlameStep(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeShuffleStep(m.Body)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	b := s.blame
	if b == nil || b.order == nil || p.Session > b.session ||
		(p.Session == b.session && int(p.Stage) > b.stage) {
		if p.Session >= s.blameSession {
			return s.stashMsg(m), nil
		}
		return &Output{}, nil
	}
	if p.Session != b.session {
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	if int(p.Stage) != si || int(p.Stage) != b.stage {
		return &Output{}, nil
	}
	step, err := shuffle.DecodeStepOutput(s.msgGrp, p.Data)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	remaining := crypto.AggregateKeys(s.msgGrp, s.serverMsgKeys()[si:])
	if err := shuffle.VerifyStep(s.msgGrp, s.def.Servers[si].MsgPubKey, remaining, b.cur, step); err != nil {
		return s.violation(s.roundNum, fmt.Errorf("server %d blame shuffle step invalid: %w", si, err)), nil
	}
	b.cur = step.Stripped
	b.stage++
	return s.maybeRunBlameStage(now)
}

// finishBlameShuffle extracts accusations from the shuffled output and
// starts tracing the first valid one.
func (s *Server) finishBlameShuffle(now time.Time) (*Output, error) {
	b := s.blame
	if b.phase != bpShuffle {
		return &Output{}, nil
	}
	for _, v := range b.cur {
		elems := make([]crypto.Element, len(v))
		for c, ct := range v {
			elems[c] = ct.C2
		}
		msg, err := shuffle.ExtractMessage(s.msgGrp, elems)
		if err != nil || len(msg) == 0 {
			continue // null message or garbage
		}
		round, slot, bitInSlot, sigBytes, ok := parseAccusation(s.keyGrp, msg)
		if !ok {
			continue
		}
		acc := s.validateAccusation(round, slot, bitInSlot, sigBytes)
		if acc == nil {
			continue
		}
		b.acc = acc
		break
	}
	if b.acc == nil {
		// No valid accusation survived (victim squashed or none sent):
		// resume rounds; the victim will re-request (§3.9).
		s.log.Info("blame shuffle carried no valid accusation",
			"round", s.roundNum, "blame_session", b.session)
		return s.blameVerdict(now, group.NodeID{}, 0)
	}
	b.phase = bpTrace
	out := &Output{}
	tb := s.buildTraceBits(b.acc)
	if err := s.broadcastServers(MsgTraceBits, s.roundNum, tb.Encode(), out); err != nil {
		return nil, err
	}
	b.traces[s.idx] = tb
	more, err := s.maybeEvaluateTrace(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

// validateAccusation checks signature and witness-bit plausibility and
// translates the slot-relative bit into a global bit index.
func (s *Server) validateAccusation(round uint64, slot, bitInSlot int, sigBytes []byte) *accusation {
	hist := s.history[round]
	if hist == nil || slot < 0 || slot >= len(s.slotKeys) {
		return nil
	}
	if bitInSlot < 0 || bitInSlot >= hist.slotLen[slot]*8 {
		return nil
	}
	sig, err := crypto.DecodeSignature(s.keyGrp, sigBytes)
	if err != nil {
		return nil
	}
	if err := crypto.Verify(s.keyGrp, s.slotKeys[slot], "dissent/accusation",
		accusationDigest(s.grpID, round, slot, bitInSlot), sig); err != nil {
		return nil
	}
	globalBit := hist.slotOff[slot]*8 + bitInSlot
	if dcnet.Bit(hist.cleartext, globalBit) != 1 {
		return nil // the claimed witness bit was not 1
	}
	return &accusation{round: round, slot: slot, bit: globalBit}
}

// buildTraceBits assembles this server's published bits for tracing.
func (s *Server) buildTraceBits(acc *accusation) *TraceBits {
	hist := s.history[acc.round]
	tb := &TraceBits{
		Session:   s.blame.session,
		ServerBit: dcnet.Bit(hist.shares[s.idx], acc.bit),
	}
	tb.ClientBits = make([]byte, len(hist.included))
	for pos, ci := range hist.included {
		bit := s.pad.StreamBit(s.clientSeeds[ci], acc.round, acc.bit)
		if s.testTraceBit != nil {
			bit = s.testTraceBit(acc.round, ci, bit)
		}
		tb.ClientBits[pos] = bit
	}
	for _, ci := range hist.directSets[s.idx] {
		sub := hist.subs[ci]
		p, _ := DecodeClientSubmit(sub.Body)
		tb.Direct = append(tb.Direct, int32(ci))
		tb.DirectBits = append(tb.DirectBits, dcnet.Bit(p.CT, acc.bit))
		tb.Evidence = append(tb.Evidence, EncodeMessage(sub))
	}
	return tb
}

func (s *Server) onTraceBits(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeTraceBits(m.Body)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	b := s.blame
	if b == nil || b.phase < bpTrace || p.Session > b.session {
		if p.Session >= s.blameSession {
			return s.stashMsg(m), nil
		}
		return &Output{}, nil
	}
	if b.phase != bpTrace || p.Session != b.session {
		return &Output{}, nil
	}
	si := s.def.ServerIndex(m.From)
	if _, dup := b.traces[si]; dup {
		return &Output{}, nil
	}
	b.traces[si] = p
	return s.maybeEvaluateTrace(now)
}

// maybeEvaluateTrace runs the paper's three checks once all trace
// contributions are in:
//
//	(a) a server did not publish the full bit set;
//	(b) a server's published bits do not XOR to the share it sent;
//	(c) a client's ciphertext bit does not match the XOR of the
//	    per-server bits — ask the client for a rebuttal.
func (s *Server) maybeEvaluateTrace(now time.Time) (*Output, error) {
	b := s.blame
	if b.phase != bpTrace || len(b.traces) < len(s.def.Servers) {
		return &Output{}, nil
	}
	hist := s.history[b.acc.round]
	if hist == nil {
		// History never recorded — an adopted post-restart round (live
		// rounds stay pinned while a blame session is open): the
		// accusation cannot be traced. Close inconclusively; the victim
		// re-accuses on a traceable round.
		s.log.Info("blame trace lacks round history",
			"round", s.roundNum, "accused_round", b.acc.round, "blame_session", b.session)
		return s.blameVerdict(now, group.NodeID{}, 0)
	}
	k := b.acc.bit
	n := len(hist.included)
	pos := make(map[int]int, n) // client index -> position in included
	for p, ci := range hist.included {
		pos[ci] = p
	}

	directBit := make(map[int]byte, n) // client index -> c_i[k]
	for si := 0; si < len(s.def.Servers); si++ {
		tb := b.traces[si]
		// (a) completeness.
		if len(tb.ClientBits) != n ||
			len(tb.Direct) != len(hist.directSets[si]) ||
			len(tb.DirectBits) != len(tb.Direct) ||
			len(tb.Evidence) != len(tb.Direct) {
			return s.blameVerdict(now, s.def.Servers[si].ID, 2)
		}
		// Evidence: each direct entry must match the agreed dedup set
		// and carry the client's signed ciphertext with that bit.
		acc := byte(0)
		for idx, ci32 := range tb.Direct {
			ci := int(ci32)
			if ci != hist.directSets[si][idx] {
				return s.blameVerdict(now, s.def.Servers[si].ID, 2)
			}
			ev, err := DecodeMessage(tb.Evidence[idx])
			if err != nil || ev.Type != MsgClientSubmit || ev.Round != b.acc.round ||
				ev.From != s.def.Clients[ci].ID {
				return s.blameVerdict(now, s.def.Servers[si].ID, 2)
			}
			if err := s.verify(ev, false); err != nil {
				return s.blameVerdict(now, s.def.Servers[si].ID, 2)
			}
			sub, err := DecodeClientSubmit(ev.Body)
			if err != nil || k/8 >= len(sub.CT) {
				return s.blameVerdict(now, s.def.Servers[si].ID, 2)
			}
			bit := dcnet.Bit(sub.CT, k)
			if bit != tb.DirectBits[idx] {
				return s.blameVerdict(now, s.def.Servers[si].ID, 2)
			}
			directBit[ci] = bit
			acc ^= bit
		}
		// (b) the bits must recombine into the share it distributed.
		for _, cb := range tb.ClientBits {
			acc ^= cb
		}
		if acc != dcnet.Bit(hist.shares[si], k) {
			return s.blameVerdict(now, s.def.Servers[si].ID, 2)
		}
	}

	// (c) per-client consistency.
	for p, ci := range hist.included {
		var x byte
		for si := 0; si < len(s.def.Servers); si++ {
			x ^= b.traces[si].ClientBits[p]
		}
		cb, ok := directBit[ci]
		if !ok {
			// Unreachable: every included client is in exactly one
			// direct set.
			continue
		}
		// A bit of cleartext message in position k is legitimate only
		// for the accused slot's owner... who signed an accusation
		// saying it sent 0. Any mismatch flags the client.
		if x != cb {
			b.flagged = ci
			b.phase = bpRebuttal
			b.rebutAt = now.Add(blameWindowFactor * s.def.Policy.WindowMin)
			out := &Output{Timer: b.rebutAt}
			// The flagged client's upstream server relays the request.
			if s.def.UpstreamServer(ci) == s.idx {
				bits := make([]byte, len(s.def.Servers))
				for si := 0; si < len(s.def.Servers); si++ {
					bits[si] = b.traces[si].ClientBits[p]
				}
				req := &RebuttalRequest{
					Session:    b.session,
					AccRound:   b.acc.round,
					AccBit:     uint32(k),
					ServerBits: bits,
				}
				msg, err := s.sign(MsgRebuttalRequest, s.roundNum, req.Encode())
				if err != nil {
					return nil, err
				}
				out.Send = append(out.Send, Envelope{To: s.def.Clients[ci].ID, Msg: msg})
			}
			return out, nil
		}
	}
	// All bits consistent: impossible for a verified witness bit; emit
	// an inconclusive verdict defensively.
	return s.blameVerdict(now, group.NodeID{}, 0)
}

func (s *Server) onRebuttal(now time.Time, m *Message) (*Output, error) {
	b := s.blame
	if b != nil && b.phase < bpRebuttal {
		return s.stashMsg(m), nil
	}
	if b == nil || b.phase != bpRebuttal {
		return &Output{}, nil
	}
	if err := s.verify(m, false); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	ci := s.def.ClientIndex(m.From)
	if ci != b.flagged {
		return &Output{}, nil
	}
	p, err := DecodeRebuttal(m.Body)
	if err != nil || p.Session != b.session {
		return &Output{}, nil
	}
	out := &Output{}
	// The upstream server relays the client's signed rebuttal to peers.
	if s.def.UpstreamServer(ci) == s.idx {
		for i, srv := range s.def.Servers {
			if i != s.idx {
				out.Send = append(out.Send, Envelope{To: srv.ID, Msg: m})
			}
		}
	}

	verdictOut, err := s.judgeRebuttal(now, ci, p)
	if err != nil {
		return nil, err
	}
	out.merge(verdictOut)
	return out, nil
}

// judgeRebuttal decides between the flagged client and the server it
// accuses of publishing a wrong pairwise bit.
func (s *Server) judgeRebuttal(now time.Time, ci int, p *Rebuttal) (*Output, error) {
	b := s.blame
	si := int(p.ServerIdx)
	if si < 0 || si >= len(s.def.Servers) {
		return s.blameVerdict(now, s.def.Clients[ci].ID, 1)
	}
	secret, err := s.keyGrp.Decode(p.Secret)
	if err != nil {
		return s.blameVerdict(now, s.def.Clients[ci].ID, 1)
	}
	proof := crypto.DLEQProof{C: new(big.Int).SetBytes(p.ProofC), Z: new(big.Int).SetBytes(p.ProofZ)}
	clientPub := s.def.Clients[ci].PubKey
	serverPub := s.def.Servers[si].PubKey
	ctx := crypto.Hash("dissent/rebuttal", s.grpID[:], crypto.HashUint64(uint64(ci)), crypto.HashUint64(uint64(si)))
	// Statement: log_G(clientPub) == log_serverPub(secret), i.e. the
	// revealed point is the true DH secret between the two keys.
	if err := crypto.VerifyDLEQ(s.keyGrp, serverPub, clientPub, secret, proof, ctx); err != nil {
		return s.blameVerdict(now, s.def.Clients[ci].ID, 1)
	}
	seed := crypto.SecretSeed(s.keyGrp, secret, clientPub, serverPub)
	trueBit := s.pad.StreamBit(seed, b.acc.round, b.acc.bit)
	hist := s.history[b.acc.round]
	if hist == nil {
		return s.blameVerdict(now, group.NodeID{}, 0)
	}
	var posCI int
	for p2, c := range hist.included {
		if c == ci {
			posCI = p2
			break
		}
	}
	if b.traces[si].ClientBits[posCI] != trueBit {
		// The server lied about the shared bit: server exposed.
		return s.blameVerdict(now, s.def.Servers[si].ID, 2)
	}
	// The server told the truth: the client's mismatch stands.
	return s.blameVerdict(now, s.def.Clients[ci].ID, 1)
}

// persistBlameTranscript records the closed session's verdict and the
// traced accusation in the durable store so an operator (or a restarted
// node) can audit why a member is excluded. The per-round evidence
// itself (histories, traces) is deliberately not persisted — it is
// pooled hot-path memory, and the verdict is what outlives the session.
// Also refreshes the session snapshot: a verdict can change the
// excluded set between round retirements, and a crash in that gap must
// not resurrect the culprit.
func (s *Server) persistBlameTranscript(b *blameState, culprit group.NodeID, verdict byte) {
	if s.store == nil {
		return
	}
	t := &BlameTranscript{Round: s.roundNum, Verdict: verdict, Culprit: culprit}
	if b.acc != nil {
		t.HasAccusation = true
		t.AccRound = b.acc.round
		t.AccSlot = uint32(b.acc.slot)
		t.AccBit = uint32(b.acc.bit)
	}
	key := fmt.Sprintf("%010d", b.session)
	if err := s.store.Put(bucketBlame, key, t.Encode()); err != nil {
		s.log.Error("blame transcript persist failed", "blame_session", b.session, "err", err)
	}
	s.persistSnapshot()
}

// blameVerdict closes the blame session, applies expulsion, notifies
// clients, and resumes DC-net rounds.
func (s *Server) blameVerdict(now time.Time, culprit group.NodeID, verdict byte) (*Output, error) {
	b := s.blame
	out := &Output{}
	s.log.Info("blame verdict", "round", s.roundNum, "blame_session", b.session,
		"verdict", verdict, "culprit", culprit)
	switch verdict {
	case 1:
		ci := s.def.ClientIndex(culprit)
		if ci >= 0 {
			// Every server reaches this verdict deterministically from
			// the same trace data, so immediate exclusion stays
			// consistent; the removal is additionally recorded in the
			// next epoch boundary's certified roster update (and the
			// expulsion round starts the re-admission cooldown).
			s.excluded[ci] = true
			s.pendingRemove[ci] = true
			if _, ok := s.expelRound[ci]; !ok {
				s.expelRound[ci] = s.roundNum
			}
		}
		out.Events = append(out.Events, Event{Kind: EventBlameVerdict, Round: s.roundNum,
			Culprit: culprit, Detail: "client expelled"})
	case 2:
		out.Events = append(out.Events, Event{Kind: EventBlameVerdict, Round: s.roundNum,
			Culprit: culprit, Detail: "server exposed"})
	default:
		out.Events = append(out.Events, Event{Kind: EventBlameVerdict, Round: s.roundNum,
			Detail: "inconclusive"})
	}
	body := (&BlameDone{Session: b.session, Verdict: verdict, Culprit: culprit}).Encode()
	if err := s.broadcastClients(MsgBlameDone, s.roundNum, body, out); err != nil {
		return nil, err
	}
	s.persistBlameTranscript(b, culprit, verdict)
	s.blame = nil
	s.phase = phaseRunning
	if err := s.resumeRounds(now, out); err != nil {
		return nil, err
	}
	return out, nil
}
