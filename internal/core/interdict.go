package core

// Interdict is the adversary-injection hook: a scripted byzantine node
// is an honest engine plus an Interdict that tampers with what the
// engine computes or sends. Robustness tests and the
// internal/adversary behavior catalog install one through
// Options.Interdict; production nodes leave it nil. Every field is
// optional, and each runs on the engine's calling goroutine.
//
// The hook deliberately sits inside the engine rather than at the
// transport: tampering happens after layout/pad/signing decisions, so
// a behavior can produce exactly the malformed-but-authentic traffic a
// compromised member would — correctly signed frames carrying jammed
// slots, equivocated shares, or corrupted certificates.
type Interdict struct {
	// Vector mutates the client's cleartext DC-net message vector
	// after layout but before the pairwise pads are XORed in and the
	// submission is signed. This is the slot-jamming surface: flipping
	// bits inside another member's slot range garbles that slot's
	// cleartext (all DC-net layers are stream XORs) while the
	// jammer's own submission stays well-formed and correctly signed.
	Vector func(info VectorInfo, vec []byte)
	// Share mutates the server's DC-net share after combination but
	// before it is committed, so commit and share stay mutually
	// consistent and the corruption surfaces downstream as a garbled
	// cleartext — the byzantine-server disruption the accusation
	// trace (§3.9 check (b)) pins on the corrupting server.
	Share func(round uint64, share []byte)
	// Outbound intercepts every outgoing envelope after the engine
	// signed it and returns the envelopes to transmit instead:
	// returning the original alone is a no-op, none is selective
	// withholding, the original twice is duplication/replay, and a
	// mutated copy is equivocation or frame corruption. resign
	// re-signs a mutated message with the node's identity key so
	// tampered payloads still pass outer signature verification and
	// exercise payload validation (skip it to model a broken signer).
	// Implementations must not mutate env.Msg in place — the engine
	// may retain it for retransmission.
	Outbound func(env Envelope, resign func(*Message) *Message) []Envelope
}

// VectorInfo hands a Vector interdict the round's slot geometry so a
// behavior can find a victim's byte range in the composed vector.
type VectorInfo struct {
	Round uint64
	// OwnSlot is the submitting client's pseudonym slot.
	OwnSlot int
	// NumSlots is the schedule's slot count; SlotRange returns the
	// byte range [off, off+n) a slot occupies in vec this round
	// (n = 0 for a closed slot).
	NumSlots  int
	SlotRange func(slot int) (off, n int)
}

// applyInterdict runs the Outbound interdict over an output's sends.
// Engines call it once per Handle/Tick/Start on the fully merged
// output, so retransmissions pass through the hook exactly like first
// sends — a behavior scoped to a round range stops corrupting the
// resends once the range ends, which is what lets a wedged phase heal.
func (n *node) applyInterdict(out *Output) {
	if out == nil || n.interdict == nil || n.interdict.Outbound == nil || len(out.Send) == 0 {
		return
	}
	resign := func(m *Message) *Message {
		signed, err := n.sign(m.Type, m.Round, m.Body)
		if err != nil {
			return m
		}
		return signed
	}
	send := make([]Envelope, 0, len(out.Send))
	for _, env := range out.Send {
		send = append(send, n.interdict.Outbound(env, resign)...)
	}
	out.Send = send
}
