package core

import (
	"fmt"
	"time"

	"dissent/internal/group"
	"dissent/internal/simnet"
)

// Engine is the sans-I/O contract both Client and Server satisfy.
type Engine interface {
	Start(now time.Time) (*Output, error)
	Handle(now time.Time, m *Message) (*Output, error)
	Tick(now time.Time) (*Output, error)
}

// TimedEvent is an engine event stamped with virtual time and origin.
type TimedEvent struct {
	At   time.Time
	Node group.NodeID
	Event
}

// TimedDelivery is a delivery stamped with virtual time and origin.
type TimedDelivery struct {
	At   time.Time
	Node group.NodeID
	Delivery
}

// Harness runs a set of engines over a simnet.Network, applying a
// latency/bandwidth topology, optional per-message compute costs, and
// optional outbound delay/drop injection (used to replay client
// straggler traces). The same engines run unchanged over TCP via
// internal/transport.
type Harness struct {
	Net *simnet.Network

	// Latency returns one-way propagation delay between two nodes.
	Latency func(from, to group.NodeID) time.Duration
	// Compute returns the modeled processing cost a node pays upon
	// receiving a message (applied before its responses transmit).
	Compute func(node group.NodeID, m *Message) time.Duration
	// Outbound may delay or drop an outgoing message (delay is added on
	// top of link delays; drop loses it entirely).
	Outbound func(from group.NodeID, m *Message) (delay time.Duration, drop bool)
	// MeasureCompute, when positive, charges each engine call's real
	// execution time (scaled by this factor) as virtual compute time:
	// the node's responses leave only after the work it actually did
	// (pads, XORs, proofs) would have finished on a machine
	// MeasureCompute times slower than this one. Combine with the
	// Compute hook for costs the engine skips (e.g. signatures in
	// unsigned simulation mode).
	MeasureCompute float64

	// OnDelivery, when set, observes every delivery as it happens —
	// application drivers (e.g. the web-browsing workload) react to
	// anonymous-channel traffic through this hook.
	OnDelivery func(d TimedDelivery)

	nodes map[group.NodeID]*harnessNode

	// Logs.
	Events     []TimedEvent
	Deliveries []TimedDelivery
	Errors     []error

	// BytesSent accumulates wire bytes by sender.
	BytesSent map[group.NodeID]int64
	// MsgCount accumulates message counts by type.
	MsgCount map[MsgType]int64
}

type harnessNode struct {
	id      group.NodeID
	engine  Engine
	uplink  simnet.Uplink
	cpuFree time.Time
}

// NewHarness creates an empty harness over a fresh network.
func NewHarness() *Harness {
	return &Harness{
		Net:       simnet.New(time.Unix(0, 0)),
		nodes:     make(map[group.NodeID]*harnessNode),
		BytesSent: make(map[group.NodeID]int64),
		MsgCount:  make(map[MsgType]int64),
	}
}

// AddNode registers an engine with an access-link bandwidth in bytes
// per second (0 = infinite).
func (h *Harness) AddNode(id group.NodeID, e Engine, uplinkBps float64) {
	h.nodes[id] = &harnessNode{id: id, engine: e, uplink: simnet.Uplink{Bandwidth: uplinkBps}}
}

// Node returns a registered engine.
func (h *Harness) Node(id group.NodeID) Engine {
	if n, ok := h.nodes[id]; ok {
		return n.engine
	}
	return nil
}

// SwapEngine replaces the engine behind a node id in place. In-flight
// messages and timers target the node, not the engine, so they reach
// whichever engine is installed when they fire — which is exactly the
// crash/restart model: swap in a black hole while the process is down
// (its traffic is lost), then the restored engine.
func (h *Harness) SwapEngine(id group.NodeID, e Engine) {
	if n, ok := h.nodes[id]; ok {
		n.engine = e
	}
}

// StartAll invokes Start on every engine at the current virtual time.
func (h *Harness) StartAll() {
	for _, n := range h.nodes {
		n := n
		h.Net.Schedule(h.Net.Now(), func(now time.Time) {
			out, err, dt := h.call(n, func() (*Output, error) { return n.engine.Start(now) })
			h.process(now.Add(dt), n, out, err)
		})
	}
}

// call runs an engine entry point, measuring its real execution time
// when MeasureCompute is enabled.
func (h *Harness) call(n *harnessNode, fn func() (*Output, error)) (*Output, error, time.Duration) {
	if h.MeasureCompute <= 0 {
		out, err := fn()
		return out, err, 0
	}
	t0 := time.Now()
	out, err := fn()
	return out, err, time.Duration(float64(time.Since(t0)) * h.MeasureCompute)
}

// process consumes one engine output: transmissions, timers, logs.
func (h *Harness) process(now time.Time, n *harnessNode, out *Output, err error) {
	if err != nil {
		h.Errors = append(h.Errors, fmt.Errorf("node %s: %w", n.id, err))
		return
	}
	if out == nil {
		return
	}
	for _, ev := range out.Events {
		h.Events = append(h.Events, TimedEvent{At: now, Node: n.id, Event: ev})
	}
	for _, d := range out.Deliveries {
		td := TimedDelivery{At: now, Node: n.id, Delivery: d}
		h.Deliveries = append(h.Deliveries, td)
		if h.OnDelivery != nil {
			h.OnDelivery(td)
		}
	}
	for _, env := range out.Send {
		h.transmit(now, n, env)
	}
	if !out.Timer.IsZero() {
		h.Net.Schedule(out.Timer, func(tnow time.Time) {
			tout, terr, dt := h.call(n, func() (*Output, error) { return n.engine.Tick(tnow) })
			h.process(tnow.Add(dt), n, tout, terr)
		})
	}
}

// transmit models one message's journey: uplink serialization, extra
// injected delay, propagation, receive-side compute, then Handle.
func (h *Harness) transmit(now time.Time, from *harnessNode, env Envelope) {
	to, ok := h.nodes[env.To]
	if !ok {
		h.Errors = append(h.Errors, fmt.Errorf("node %s sent %s to unknown node %s",
			from.id, env.Msg.Type, env.To))
		return
	}
	size := env.Msg.WireSize()
	h.BytesSent[from.id] += int64(size)
	h.MsgCount[env.Msg.Type]++

	var extra time.Duration
	if h.Outbound != nil {
		delay, drop := h.Outbound(from.id, env.Msg)
		if drop {
			return
		}
		extra = delay
	}
	txDone := from.uplink.Reserve(now.Add(extra), size)
	var lat time.Duration
	if h.Latency != nil {
		lat = h.Latency(from.id, env.To)
	}
	arrival := txDone.Add(lat)
	h.Net.Schedule(arrival, func(anow time.Time) {
		// Receive-side compute is serialized on the node's CPU so that
		// per-pair message ordering (FIFO) is preserved even when
		// different message types have different modeled costs.
		handleAt := anow
		if to.cpuFree.After(handleAt) {
			handleAt = to.cpuFree
		}
		if h.Compute != nil {
			handleAt = handleAt.Add(h.Compute(env.To, env.Msg))
		}
		to.cpuFree = handleAt
		h.Net.Schedule(handleAt, func(hnow time.Time) {
			out, err, dt := h.call(to, func() (*Output, error) { return to.engine.Handle(hnow, env.Msg) })
			if dt > 0 {
				to.cpuFree = hnow.Add(dt)
			}
			h.process(hnow.Add(dt), to, out, err)
		})
	})
}

// ProcessExternal feeds an engine output produced outside the normal
// Start/Handle/Tick flow (e.g. a trusted-bootstrap InstallSchedule)
// into the harness: its sends, timers, and logs are processed as if
// the engine had emitted them at time t.
func (h *Harness) ProcessExternal(id group.NodeID, t time.Time, out *Output, err error) {
	n, ok := h.nodes[id]
	if !ok {
		h.Errors = append(h.Errors, fmt.Errorf("ProcessExternal: unknown node %s", id))
		return
	}
	h.process(t, n, out, err)
}

// Run drives the network until idle or maxEvents (<=0: unbounded).
func (h *Harness) Run(maxEvents int64) { h.Net.Run(maxEvents) }

// RunUntil drives the network up to virtual time t.
func (h *Harness) RunUntil(t time.Duration) {
	h.Net.RunUntil(time.Unix(0, 0).Add(t))
}

// EventsOf filters logged events by kind.
func (h *Harness) EventsOf(kind EventKind) []TimedEvent {
	var out []TimedEvent
	for _, e := range h.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// FirstEvent returns the earliest event of the kind at the node, or nil.
func (h *Harness) FirstEvent(node group.NodeID, kind EventKind) *TimedEvent {
	for i := range h.Events {
		e := &h.Events[i]
		if e.Node == node && e.Kind == kind {
			return e
		}
	}
	return nil
}
