package core

import (
	"fmt"

	"dissent/internal/group"
)

// BlameTranscript is the durable record of one closed blame session:
// the verdict, the culprit (zero for inconclusive sessions), and — when
// tracing got that far — the accusation that drove it. Servers persist
// one per session in the state store's "blame" bucket (see
// persistBlameTranscript) so an operator or a restarted node can audit
// why a member is excluded.
type BlameTranscript struct {
	// Round is the server's round number when the session closed.
	Round uint64
	// Verdict is 0 (inconclusive), 1 (client expelled), or 2 (server
	// exposed).
	Verdict byte
	// Culprit names the member the verdict fell on (zero when
	// inconclusive).
	Culprit group.NodeID
	// HasAccusation reports whether tracing reached a valid
	// accusation; the Acc fields below are meaningful only then.
	HasAccusation bool
	AccRound      uint64
	AccSlot       uint32
	AccBit        uint32
}

// Encode renders the transcript in the persisted wire form.
func (t *BlameTranscript) Encode() []byte {
	var e encBuf
	e.U64(t.Round)
	e.U8(t.Verdict)
	e.Bytes(t.Culprit[:])
	if t.HasAccusation {
		e.U8(1)
		e.U64(t.AccRound)
		e.U32(t.AccSlot)
		e.U32(t.AccBit)
	} else {
		e.U8(0)
	}
	return e.B
}

// DecodeBlameTranscript parses a persisted blame transcript. It never
// panics on hostile input: every field read is bounds-checked, the
// culprit must be exactly one node ID wide, the accusation flag must
// be 0 or 1, and trailing bytes are rejected.
func DecodeBlameTranscript(b []byte) (*BlameTranscript, error) {
	d := decBuf{B: b}
	t := &BlameTranscript{}
	var err error
	if t.Round, err = d.U64(); err != nil {
		return nil, err
	}
	if t.Verdict, err = d.U8(); err != nil {
		return nil, err
	}
	if t.Verdict > 2 {
		return nil, fmt.Errorf("core: blame transcript verdict %d out of range", t.Verdict)
	}
	culprit, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if len(culprit) != len(t.Culprit) {
		return nil, fmt.Errorf("core: blame transcript culprit length %d, want %d", len(culprit), len(t.Culprit))
	}
	copy(t.Culprit[:], culprit)
	hasAcc, err := d.U8()
	if err != nil {
		return nil, err
	}
	switch hasAcc {
	case 0:
	case 1:
		t.HasAccusation = true
		if t.AccRound, err = d.U64(); err != nil {
			return nil, err
		}
		if t.AccSlot, err = d.U32(); err != nil {
			return nil, err
		}
		if t.AccBit, err = d.U32(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: blame transcript accusation flag %d", hasAcc)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return t, nil
}

// BlameTranscripts decodes every persisted blame transcript from a
// state store in session order. Undecodable records are skipped — the
// store may hold records from a newer version — rather than failing
// the whole listing.
func BlameTranscripts(st StateStore) []*BlameTranscript {
	if st == nil {
		return nil
	}
	var out []*BlameTranscript
	for _, key := range st.List(bucketBlame) {
		raw, ok := st.Get(bucketBlame, key)
		if !ok {
			continue
		}
		t, err := DecodeBlameTranscript(raw)
		if err != nil {
			continue
		}
		out = append(out, t)
	}
	return out
}
