package core

import (
	"bytes"
	"testing"
	"time"

	"dissent/internal/dcnet"
	"dissent/internal/group"
)

// disruptorClient wraps an honest Client engine and flips bits inside
// a victim's message slot in every ciphertext it submits — the §3.9
// adversary. Flipping ciphertext bits flips the same cleartext bits
// because all DC-net layers are stream XORs.
type disruptorClient struct {
	*Client
	victim *Client // to locate the victim's slot in the shared layout
}

func (d *disruptorClient) Start(now time.Time) (*Output, error) {
	out, err := d.Client.Start(now)
	return d.mangle(out), err
}

func (d *disruptorClient) Handle(now time.Time, m *Message) (*Output, error) {
	out, err := d.Client.Handle(now, m)
	return d.mangle(out), err
}

func (d *disruptorClient) mangle(out *Output) *Output {
	if out == nil || d.victim.Slot() < 0 || !d.Client.ready {
		return out
	}
	vslot := d.victim.Slot()
	sched := d.Client.sched
	off, n := sched.SlotRange(vslot)
	if n == 0 {
		return out
	}
	for i, env := range out.Send {
		if env.Msg.Type != MsgClientSubmit {
			continue
		}
		sub, err := DecodeClientSubmit(env.Msg.Body)
		if err != nil {
			continue
		}
		ct := append([]byte(nil), sub.CT...)
		// Corrupt one byte of the victim's slot body (past the seed and
		// header, so the schedule fields still parse and the victim's
		// shuffle request survives).
		target := off + dcnet.SeedLen + 12
		if target >= off+n {
			target = off + n - 1
		}
		ct[target] ^= 0xFF
		body := (&ClientSubmit{CT: ct}).Encode()
		msg, err := d.Client.sign(MsgClientSubmit, env.Msg.Round, body)
		if err != nil {
			continue
		}
		out.Send[i] = Envelope{To: env.To, Msg: msg}
	}
	return out
}

func TestDisruptorClientTracedAndExpelled(t *testing.T) {
	var disruptor *disruptorClient
	f := newFixture(t, 3, 5, fixtureOpts{})
	// Client 4 disrupts client 0's slot.
	disruptor = &disruptorClient{Client: f.clients[4], victim: f.clients[0]}
	f.h.AddNode(f.clients[4].ID(), disruptor, 0) // replace engine

	// The victim transmits across several rounds so its slot is open.
	f.clients[0].Send(bytes.Repeat([]byte("censored speech "), 20))

	f.runUntilRound(14, 3_000_000)

	// Every server reaches a verdict expelling the disruptor.
	verdicts := f.h.EventsOf(EventBlameVerdict)
	expelled := 0
	for _, v := range verdicts {
		if v.Culprit == f.clients[4].ID() && f.def.ServerIndex(v.Node) >= 0 {
			expelled++
		}
	}
	if expelled < 3 {
		t.Fatalf("disruptor expelled at %d/3 servers; verdicts: %+v violations: %v",
			expelled, verdicts, f.violations())
	}
	for _, s := range f.servers {
		if !s.Excluded(4) {
			t.Errorf("server %d did not exclude the disruptor", s.Index())
		}
	}
	// The victim detected the disruption.
	if len(f.h.EventsOf(EventDisruptionDetected)) == 0 {
		t.Error("victim never detected the disruption")
	}
	// After expulsion, rounds keep completing.
	found := false
	var verdictAt time.Time
	for _, v := range verdicts {
		verdictAt = v.At
	}
	for _, e := range f.h.EventsOf(EventRoundComplete) {
		if e.At.After(verdictAt) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no rounds completed after the verdict")
	}
}

func TestDisruptingServerExposedByRebuttal(t *testing.T) {
	f := newFixture(t, 3, 4, fixtureOpts{})
	victim := f.clients[0]
	scapegoat := 1 // client index the lying server blames
	mal := f.servers[2]

	corrupted := false
	var corruptedRound uint64
	mal.testCorruptShare = func(round uint64, share []byte) {
		if corrupted || victim.Slot() < 0 {
			return
		}
		off, n := mal.sched.SlotRange(victim.Slot())
		if n == 0 {
			return
		}
		share[off+dcnet.SeedLen+12] ^= 0xFF
		corrupted = true
		corruptedRound = round
	}
	mal.testTraceBit = func(round uint64, clientIdx int, trueBit byte) byte {
		// Shift the unmatched bit onto the scapegoat so check (b)
		// passes and suspicion lands on an honest client.
		if round == corruptedRound && clientIdx == scapegoat {
			return trueBit ^ 1
		}
		return trueBit
	}

	victim.Send(bytes.Repeat([]byte("persistent message "), 15))
	f.runUntilRound(14, 3_000_000)

	if !corrupted {
		t.Fatal("malicious server never corrupted a share (victim slot never open?)")
	}
	// Honest servers must expose the malicious server, not the
	// scapegoat client.
	exposed := 0
	for _, v := range f.h.EventsOf(EventBlameVerdict) {
		if v.Culprit == mal.ID() {
			exposed++
		}
		if v.Culprit == f.clients[scapegoat].ID() {
			t.Fatalf("honest scapegoat expelled: %+v", v)
		}
	}
	if exposed == 0 {
		t.Fatalf("malicious server never exposed; verdicts: %+v violations: %v",
			f.h.EventsOf(EventBlameVerdict), f.violations())
	}
	for _, s := range f.servers {
		if s.Excluded(scapegoat) {
			t.Error("scapegoat client wrongly excluded")
		}
	}
}

func TestClientChurnToleratedWithinRound(t *testing.T) {
	f := newFixture(t, 2, 5, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.Alpha = 0.5
			p.WindowThreshold = 0.6
			p.HardTimeout = 5 * time.Second
		},
	})
	// Client 3 goes offline from round 3 on.
	offline := f.clients[3].ID()
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if from == offline && m.Type == MsgClientSubmit && m.Round >= 3 {
			return 0, true
		}
		return 0, false
	}
	f.clients[1].Send([]byte("before churn"))
	f.runUntilRound(8, 2_000_000)

	for _, s := range f.servers {
		if s.Round() < 8 {
			t.Fatalf("server stuck at round %d after churn; violations: %v",
				s.Round(), f.violations())
		}
		if s.Participation() != 4 {
			t.Errorf("participation %d after churn, want 4", s.Participation())
		}
	}
	// Remaining clients can still communicate.
	f.clients[2].Send([]byte("after churn"))
	f.h.Run(30_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "after churn" {
			found = true
			break
		}
	}
	if !found {
		t.Error("message lost after churn")
	}
}

func TestAlphaPolicyReopensWindow(t *testing.T) {
	f := newFixture(t, 2, 5, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.Alpha = 0.9           // floor of 5 clients
			p.WindowThreshold = 0.6 // close the window after 3
		},
	})
	// Client 4 is a straggler: every submission arrives 25 ms late,
	// after the adaptive window first closes.
	slow := f.clients[4].ID()
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if from == slow && m.Type == MsgClientSubmit {
			return 25 * time.Millisecond, false
		}
		return 0, false
	}
	f.runUntilRound(4, 2_000_000)

	for _, s := range f.servers {
		if s.Round() < 4 {
			t.Fatalf("rounds stalled at %d; violations: %v", s.Round(), f.violations())
		}
		// The α floor forces the reopened window to catch the straggler.
		if s.Participation() != 5 {
			t.Errorf("participation %d, want 5 (α reopen should wait for straggler)",
				s.Participation())
		}
	}
	if len(f.h.EventsOf(EventRoundFailed)) != 0 {
		t.Error("rounds failed despite reopening")
	}
}

func TestHardTimeoutFailsRound(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.HardTimeout = 500 * time.Millisecond
		},
	})
	// All clients go silent from round 2 on.
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if m.Type == MsgClientSubmit && m.Round >= 2 {
			return 0, true
		}
		return 0, false
	}
	f.h.StartAll()
	f.h.Run(40_000)

	serverFails := 0
	clientFails := 0
	for _, e := range f.h.EventsOf(EventRoundFailed) {
		if f.def.ServerIndex(e.Node) >= 0 {
			serverFails++
		} else {
			clientFails++
		}
	}
	if serverFails == 0 {
		t.Errorf("servers never failed a round; violations: %v", f.violations())
	}
	if clientFails == 0 {
		t.Error("clients never observed a failed round")
	}
}
