package core

import (
	"bytes"
	"testing"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/group"
)

// TestBeaconChainGrowsWithRounds checks that every node — servers via
// the round protocol's commit–reveal, clients via certified outputs —
// maintains an identical, fully verifiable beacon chain replica.
func TestBeaconChainGrowsWithRounds(t *testing.T) {
	f := newFixture(t, 3, 4, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = 3 },
	})
	f.runUntilRound(5, 800_000)

	ref := f.servers[0].BeaconChain()
	if ref == nil {
		t.Fatal("beacon disabled despite policy")
	}
	if ref.Len() < 5 {
		t.Fatalf("server 0 chain has %d entries after 5+ rounds; violations: %v",
			ref.Len(), f.violations())
	}
	if err := ref.Verify(); err != nil {
		t.Fatalf("server 0 chain invalid: %v", err)
	}
	for _, s := range f.servers[1:] {
		c := s.BeaconChain()
		if c.Get(4) == nil || c.Get(4).Value != ref.Get(4).Value {
			t.Fatalf("server %d beacon diverged at round 4", s.Index())
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("server %d chain invalid: %v", s.Index(), err)
		}
	}
	for _, cl := range f.clients {
		c := cl.BeaconChain()
		if c.Get(4) == nil || c.Get(4).Value != ref.Get(4).Value {
			t.Fatalf("client %d beacon diverged at round 4", cl.Index())
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("client %d chain invalid: %v", cl.Index(), err)
		}
	}
}

// TestBeaconDrivesScheduleRotation checks the acceptance criterion:
// the slot permutation is identical on every node and changes exactly
// at epoch boundaries, derived from beacon output.
func TestBeaconDrivesScheduleRotation(t *testing.T) {
	// 8 slots: the chance a beacon-derived rotation is the identity
	// permutation is 1/8! — negligible, so the assertions are stable.
	const epoch = 3
	f := newFixture(t, 2, 8, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = epoch },
	})
	// Keep traffic flowing so rotated layouts carry real payloads.
	msg := []byte("rotating message")
	f.clients[3].Send(msg)
	f.runUntilRound(2*epoch+1, 1_500_000)

	// Rotation events fired on servers and clients at epoch boundaries.
	rotated := f.h.EventsOf(EventEpochRotated)
	if len(rotated) == 0 {
		t.Fatalf("no epoch rotations observed; violations: %v", f.violations())
	}
	for _, e := range rotated {
		// The event's Round is the last round of the finished epoch.
		if (e.Round+1)%epoch != 0 {
			t.Fatalf("rotation after round %d, not an epoch boundary", e.Round)
		}
	}

	// All nodes agree on the (non-identity, beacon-derived) permutation.
	perm := f.servers[0].SchedulePermutation()
	identity := true
	for i, v := range perm {
		if v != i {
			identity = false
			break
		}
	}
	if identity {
		t.Fatalf("permutation still identity after %d rounds (epoch %d)", 2*epoch+1, epoch)
	}
	for _, s := range f.servers[1:] {
		got := s.SchedulePermutation()
		for i := range perm {
			if got[i] != perm[i] {
				t.Fatalf("server %d permutation %v != server 0 %v", s.Index(), got, perm)
			}
		}
	}
	for _, cl := range f.clients {
		got := cl.SchedulePermutation()
		for i := range perm {
			if got[i] != perm[i] {
				t.Fatalf("client %d permutation %v != server 0 %v", cl.Index(), got, perm)
			}
		}
	}

	// The anonymous message still arrives intact, attributed to the
	// sender's slot, under rotated layouts.
	delivered := 0
	for _, d := range f.h.Deliveries {
		if bytes.Equal(d.Data, msg) {
			delivered++
			if d.Slot != f.clients[3].Slot() {
				t.Fatalf("delivery slot %d, want %d", d.Slot, f.clients[3].Slot())
			}
		}
	}
	if delivered == 0 {
		t.Fatalf("message lost under rotation; violations: %v", f.violations())
	}
}

// TestBeaconGenesisBoundToSession checks the replay defence: once the
// schedule certifies, every replica's chain genesis is the
// SessionGenesis derived from the schedule-certificate digest — not
// the group-wide pre-session value — and an external verifier can
// recompute it from the served certificate with group keys alone. A
// chain grown under a different session's certificate therefore fails
// verification against the live genesis.
func TestBeaconGenesisBoundToSession(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = 2 },
	})
	f.runUntilRound(2, 400_000)

	srv := f.servers[0]
	keys, sigs := srv.ScheduleCertificate()
	if keys == nil || sigs == nil {
		t.Fatal("no schedule certificate after setup")
	}
	digest, err := VerifyScheduleCert(f.def, keys, sigs)
	if err != nil {
		t.Fatalf("schedule certificate rejected: %v", err)
	}
	want := beacon.SessionGenesis(f.def.GroupID(), digest)
	if got := srv.BeaconChain().Genesis(); got != want {
		t.Fatalf("server genesis %x, want session genesis %x", got[:8], want[:8])
	}
	if pre := beacon.GenesisValue(f.def.GroupID()); srv.BeaconChain().Genesis() == pre {
		t.Fatal("chain genesis still the pre-session group value")
	}
	for _, s := range f.servers[1:] {
		if s.BeaconChain().Genesis() != want {
			t.Fatalf("server %d genesis diverged", s.Index())
		}
	}
	for _, cl := range f.clients {
		if cl.BeaconChain().Genesis() != want {
			t.Fatalf("client %d genesis diverged", cl.Index())
		}
	}

	// A verifier anchored at the pre-session genesis — the situation of
	// someone replaying an archived chain's context — must reject the
	// live chain's first entry.
	stale := beacon.NewChain(f.def.Group(), f.def.ServerPubKeys(), beacon.GenesisValue(f.def.GroupID()))
	if err := stale.Append(srv.BeaconChain().Get(0)); err == nil {
		t.Fatal("live entry accepted under the pre-session genesis")
	}
	// Tampered certificates must not verify.
	badSigs := append([][]byte(nil), sigs...)
	badSigs[0] = append([]byte(nil), badSigs[0]...)
	badSigs[0][0] ^= 1
	if _, err := VerifyScheduleCert(f.def, keys, badSigs); err == nil {
		t.Fatal("tampered schedule certificate verified")
	}
}

// TestBeaconDisabledByPolicy checks the beacon-off path stays clean:
// no chains, no rotation, rounds progress.
func TestBeaconDisabledByPolicy(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = 0 },
	})
	f.runUntilRound(3, 400_000)
	if f.servers[0].BeaconChain() != nil || f.clients[0].BeaconChain() != nil {
		t.Fatal("beacon chain exists despite disabled policy")
	}
	if got := len(f.h.EventsOf(EventEpochRotated)); got != 0 {
		t.Fatalf("%d rotation events with beacon off", got)
	}
	for _, s := range f.servers {
		if s.Round() < 3 {
			t.Fatalf("rounds stalled with beacon off; violations: %v", f.violations())
		}
	}
}

// TestBeaconSurvivesFailedRound checks that hard-timeout rounds (which
// produce no beacon entry) leave gaps the chain tolerates: subsequent
// entries chain across the gap and still verify on every replica.
func TestBeaconSurvivesFailedRound(t *testing.T) {
	f := newFixture(t, 2, 2, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = 2
			p.HardTimeout = 2 * time.Second
		},
	})
	// Drop every client submission for round 1 so it fails at the hard
	// timeout and completes as an empty round with no beacon entry.
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		return 0, m.Type == MsgClientSubmit && m.Round == 1
	}
	f.runUntilRound(4, 600_000)

	failed := f.h.EventsOf(EventRoundFailed)
	if len(failed) == 0 {
		t.Fatal("round 1 did not fail despite dropped submissions")
	}
	ref := f.servers[0].BeaconChain()
	if err := ref.Verify(); err != nil {
		t.Fatalf("chain invalid: %v", err)
	}
	if ref.Get(1) != nil {
		t.Fatal("failed round produced a beacon entry")
	}
	if ref.Get(0) == nil || ref.Get(2) == nil {
		t.Fatalf("chain missing entries around the gap (len %d)", ref.Len())
	}
	if ref.Get(2).Prev != ref.Get(0).Value {
		t.Fatal("entry 2 does not chain across the round-1 gap")
	}
	// Clients may trail the servers by one in-flight output, but their
	// chains must be verified prefixes of the servers' chain.
	for _, cl := range f.clients {
		c := cl.BeaconChain()
		if err := c.Verify(); err != nil {
			t.Fatalf("client %d chain invalid: %v", cl.Index(), err)
		}
		latest := c.Latest()
		if latest == nil || latest.Round < 2 {
			t.Fatalf("client %d chain too short", cl.Index())
		}
		if want := ref.Get(latest.Round); want == nil || want.Value != latest.Value {
			t.Fatalf("client %d diverged at round %d", cl.Index(), latest.Round)
		}
	}
}
