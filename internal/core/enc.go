// Package core assembles Dissent's anonymity protocol (the paper's
// primary contribution) from the substrates: the anytrust client/server
// DC-net round protocol of Algorithms 1 and 2, verifiable-shuffle
// scheduling (§3.10), adaptive submission windows and the α
// participation policy (§3.7, §5.1), and the accusation protocol
// (§3.9). Engines are written sans-I/O: they consume timestamped
// messages and ticks and emit envelopes, so the same code runs over
// in-process channels, TCP (internal/transport), and the
// discrete-event simulator (internal/simnet).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// errTruncated reports a wire payload that ended early.
var errTruncated = errors.New("core: truncated message")

// encBuf is a tiny append-only binary writer: all protocol payloads
// are encoded with length-prefixed fields so signatures cover a
// canonical byte string.
type encBuf struct {
	b []byte
}

func (e *encBuf) u8(v byte)    { e.b = append(e.b, v) }
func (e *encBuf) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *encBuf) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }

func (e *encBuf) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}

func (e *encBuf) byteSlices(v [][]byte) {
	e.u32(uint32(len(v)))
	for _, s := range v {
		e.bytes(s)
	}
}

func (e *encBuf) ints(v []int32) {
	e.u32(uint32(len(v)))
	for _, s := range v {
		e.u32(uint32(s))
	}
}

// decBuf is the matching reader.
type decBuf struct {
	b []byte
}

func (d *decBuf) u8() (byte, error) {
	if len(d.b) < 1 {
		return 0, errTruncated
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *decBuf) u32() (uint32, error) {
	if len(d.b) < 4 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v, nil
}

func (d *decBuf) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

func (d *decBuf) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(d.b)) < n {
		return nil, errTruncated
	}
	v := d.b[:n:n]
	d.b = d.b[n:]
	return v, nil
}

func (d *decBuf) byteSlices() ([][]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(d.b)) { // each element needs >= 4 bytes of length
		return nil, errTruncated
	}
	out := make([][]byte, n)
	for i := range out {
		out[i], err = d.bytes()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decBuf) ints() ([]int32, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n)*4 > uint64(len(d.b)) {
		return nil, errTruncated
	}
	out := make([]int32, n)
	for i := range out {
		v, err := d.u32()
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}

func (d *decBuf) done() error {
	if len(d.b) != 0 {
		return fmt.Errorf("core: %d trailing bytes", len(d.b))
	}
	return nil
}
