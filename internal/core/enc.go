// Package core assembles Dissent's anonymity protocol (the paper's
// primary contribution) from the substrates: the anytrust client/server
// DC-net round protocol of Algorithms 1 and 2, verifiable-shuffle
// scheduling (§3.10), adaptive submission windows and the α
// participation policy (§3.7, §5.1), and the accusation protocol
// (§3.9). Engines are written sans-I/O: they consume timestamped
// messages and ticks and emit envelopes, so the same code runs over
// in-process channels, TCP (internal/transport), and the
// discrete-event simulator (internal/simnet).
package core

import (
	"dissent/internal/wire"
)

// errTruncated reports a wire payload that ended early.
var errTruncated = wire.ErrTruncated

// encBuf and decBuf are the shared bounds-checked wire codec
// (internal/wire), which both core's protocol payloads and group's
// roster updates encode with: length-prefixed fields so signatures
// cover a canonical byte string.
type (
	encBuf = wire.Writer
	decBuf = wire.Reader
)
