package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
)

// Membership churn: expulsions, re-admissions, and new joiners become a
// first-class, beacon-anchored epoch transition. While rounds run,
// servers accumulate pending churn — blame verdicts and operator Expel
// calls queue removals, JoinRequests (gated by the admission policy)
// queue admissions. At every BeaconEpochRounds boundary the servers
// pause rounds briefly and run the roster phase:
//
//	propose:  each server broadcasts its pending admissions/removals
//	certify:  all M proposals are unioned into one canonical
//	          group.RosterUpdate (deterministically, so every server
//	          builds identical bytes) and each server signs it
//	apply:    with all M signatures collected, every replica applies
//	          the certified update, grows the slot schedule for new
//	          members, re-derives the layout permutation from the
//	          beacon output plus the roster digest, and resumes rounds
//
// Clients know the epoch schedule, so at each boundary they hold their
// next submission until the certified MsgRosterUpdate arrives (exactly
// as they hold for MsgBlameDone during accusation shuffles). Roster
// versions increase by one per boundary — also across boundaries with
// no churn — so any replica can reject stale-version roster traffic
// outright. Mechanism (the versioned, hash-chained update; see
// internal/group/roster.go) is shared; policy (who to admit or expel,
// cooldowns) stays server-side.

// --- Payload codecs ---------------------------------------------------

// JoinRequest asks a server to propose the sender for admission at the
// next epoch boundary. Expelled members seeking re-admission send it
// with an empty PubKey (their identity is already in the roster); new
// members embed their identity key, a pseudonym key to seed their slot,
// and optionally a dialable address for TCP fabrics.
type JoinRequest struct {
	Version uint64 // roster version known to the requester
	// Rejoin marks an expelled member's explicit request for
	// re-admission. A known member's request without it is only a
	// roster-sync probe (catch-up for a lost update) and must never
	// queue a re-admission — expelled clients probe too.
	Rejoin  bool
	PubKey  []byte // encoded identity key; empty for known members
	PseuKey []byte // encoded pseudonym slot key; new members only
	Addr    string // transport address; empty on address-less fabrics
	// SchedDigest carries an established member's post-apply schedule
	// digest for its Version (dcnet.Schedule.Digest captured right after
	// the version's roster update was applied). Empty when the member
	// holds no apply-point digest (fresh joiner, pre-churn session). A
	// server that retains the digest for that version compares: mismatch
	// means the member's replica silently diverged, and chain replay
	// would grow a wrong layout — it gets a certified snapshot re-sync
	// instead.
	SchedDigest []byte
}

// Encode serializes the payload.
func (p *JoinRequest) Encode() []byte {
	var e encBuf
	e.U64(p.Version)
	if p.Rejoin {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Bytes(p.PubKey)
	e.Bytes(p.PseuKey)
	e.Bytes([]byte(p.Addr))
	e.Bytes(p.SchedDigest)
	return e.B
}

// DecodeJoinRequest parses a JoinRequest payload.
func DecodeJoinRequest(b []byte) (*JoinRequest, error) {
	d := decBuf{B: b}
	v, err := d.U64()
	if err != nil {
		return nil, err
	}
	rejoin, err := d.U8()
	if err != nil {
		return nil, err
	}
	pub, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	pseu, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	addr, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	dig, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &JoinRequest{Version: v, Rejoin: rejoin != 0, PubKey: pub, PseuKey: pseu,
		Addr: string(addr), SchedDigest: dig}, nil
}

// RosterPropose is one server's pending churn for the upcoming version.
type RosterPropose struct {
	Version uint64
	Admit   []group.RosterMember
	Remove  []group.NodeID
}

// Encode serializes the payload (list framing shared with the group
// package's RosterUpdate codec).
func (p *RosterPropose) Encode() []byte {
	var e encBuf
	e.U64(p.Version)
	e.B = group.AppendRosterMembers(e.B, p.Admit)
	e.B = group.AppendNodeIDs(e.B, p.Remove)
	return e.B
}

// DecodeRosterPropose parses a RosterPropose payload.
func DecodeRosterPropose(b []byte) (*RosterPropose, error) {
	d := decBuf{B: b}
	p := &RosterPropose{}
	var err error
	if p.Version, err = d.U64(); err != nil {
		return nil, err
	}
	if p.Admit, d.B, err = group.DecodeRosterMembers(d.B); err != nil {
		return nil, err
	}
	if p.Remove, d.B, err = group.DecodeNodeIDs(d.B); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return p, nil
}

// RosterCert is one server's signature certifying the canonical update.
type RosterCert struct {
	Version uint64
	Sig     []byte
}

// Encode serializes the payload.
func (p *RosterCert) Encode() []byte {
	var e encBuf
	e.U64(p.Version)
	e.Bytes(p.Sig)
	return e.B
}

// DecodeRosterCert parses a RosterCert payload.
func DecodeRosterCert(b []byte) (*RosterCert, error) {
	d := decBuf{B: b}
	v, err := d.U64()
	if err != nil {
		return nil, err
	}
	sig, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &RosterCert{Version: v, Sig: sig}, nil
}

// RosterUpdateMsg is the MsgRosterUpdate transport body: the certified
// update plus the sender's post-apply schedule digest. The digest
// cannot live inside the certified update material (the proposer
// cannot predict the beacon head at apply time, and the group codec is
// strict), so it rides the server-signed transport wrapper instead —
// sufficient for divergence *detection*, since a mismatch only ever
// triggers a fully verified snapshot re-sync.
type RosterUpdateMsg struct {
	Update []byte // encoded certified group.RosterUpdate
	// SchedDigest is dcnet.Schedule.Digest() captured right after the
	// sender applied Update; empty when unrecorded (e.g. replay from a
	// store predating digest tracking).
	SchedDigest []byte
}

// Encode serializes the payload.
func (p *RosterUpdateMsg) Encode() []byte {
	var e encBuf
	e.Bytes(p.Update)
	e.Bytes(p.SchedDigest)
	return e.B
}

// DecodeRosterUpdateMsg parses a RosterUpdateMsg payload.
func DecodeRosterUpdateMsg(b []byte) (*RosterUpdateMsg, error) {
	d := decBuf{B: b}
	u, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	dig, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &RosterUpdateMsg{Update: u, SchedDigest: dig}, nil
}

// JoinWelcome hands a newly admitted member the replicated session
// state it missed: the full current client roster (so its definition
// replica catches up from genesis in one step), the slot key list, the
// schedule snapshot, and the beacon chain head. It is signed by one
// server — the upstream at admission time, or whichever server a
// retry reaches when the original was lost — a trust-on-join
// simplification relative to the fully certified RosterUpdate chain;
// the joiner independently verifies the embedded update that admits
// it.
type JoinWelcome struct {
	Version    uint64
	Digest     [32]byte // roster digest at Version
	Update     []byte   // encoded certified RosterUpdate admitting the joiner
	RosterKeys [][]byte // all client identity keys, definition order
	Expelled   []byte   // 0/1 per client, parallel to RosterKeys
	SlotKeys   [][]byte // pseudonym slot keys, slot order
	MySlot     int32
	Round      uint64 // next engine round to submit
	// SchedRound is the schedule's internal round counter, which lags
	// Round by the number of hard-timeout rounds (failed rounds advance
	// the engine round but never the schedule). The joiner must restore
	// its schedule replica at this counter or its epoch rotations would
	// fire at different real rounds than every established replica's.
	SchedRound uint64
	Lens       []int32
	Idle       []int32
	Perm       []int32
	// PendingOps/PendingNs carry the donor schedule's queued, not-yet-
	// applied round deltas (rows of len(Lens) entries, oldest first) and
	// DrainRound its latest pipeline drain point. A welcome captured
	// mid-pipeline needs both so the joiner's replica pops each delta at
	// the same round as every established replica; at depth 1 and at
	// epoch-boundary welcomes the queue is empty.
	DrainRound uint64
	PendingOps []int32
	PendingNs  []int32
	BeaconHead []byte // 32-byte chain head the joiner's replica resumes from
}

// Encode serializes the payload.
func (p *JoinWelcome) Encode() []byte {
	var e encBuf
	e.U64(p.Version)
	e.B = append(e.B, p.Digest[:]...)
	e.Bytes(p.Update)
	e.ByteSlices(p.RosterKeys)
	e.Bytes(p.Expelled)
	e.ByteSlices(p.SlotKeys)
	e.U32(uint32(p.MySlot))
	e.U64(p.Round)
	e.U64(p.SchedRound)
	e.Int32s(p.Lens)
	e.Int32s(p.Idle)
	e.Int32s(p.Perm)
	e.U64(p.DrainRound)
	e.Int32s(p.PendingOps)
	e.Int32s(p.PendingNs)
	e.Bytes(p.BeaconHead)
	return e.B
}

// DecodeJoinWelcome parses a JoinWelcome payload.
func DecodeJoinWelcome(b []byte) (*JoinWelcome, error) {
	d := decBuf{B: b}
	p := &JoinWelcome{}
	var err error
	if p.Version, err = d.U64(); err != nil {
		return nil, err
	}
	if len(d.B) < 32 {
		return nil, errTruncated
	}
	copy(p.Digest[:], d.B[:32])
	d.B = d.B[32:]
	if p.Update, err = d.Bytes(); err != nil {
		return nil, err
	}
	if p.RosterKeys, err = d.ByteSlices(); err != nil {
		return nil, err
	}
	if p.Expelled, err = d.Bytes(); err != nil {
		return nil, err
	}
	if p.SlotKeys, err = d.ByteSlices(); err != nil {
		return nil, err
	}
	slot, err := d.U32()
	if err != nil {
		return nil, err
	}
	p.MySlot = int32(slot)
	if p.Round, err = d.U64(); err != nil {
		return nil, err
	}
	if p.SchedRound, err = d.U64(); err != nil {
		return nil, err
	}
	if p.Lens, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.Idle, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.Perm, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.DrainRound, err = d.U64(); err != nil {
		return nil, err
	}
	if p.PendingOps, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.PendingNs, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.BeaconHead, err = d.Bytes(); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return p, nil
}

// --- Shared helpers ---------------------------------------------------

// churnEnabled reports whether epoch membership churn runs: it is
// anchored to the beacon epoch schedule, so it requires the beacon.
func (n *node) churnEnabled() bool { return n.def.Policy.BeaconEpochRounds > 0 }

// epochBoundary reports whether round is an epoch boundary — the round
// that begins a new epoch, before which the roster phase runs.
func (n *node) epochBoundary(round uint64) bool {
	return n.churnEnabled() && round > 0 && round%uint64(n.def.Policy.BeaconEpochRounds) == 0
}

// rosterPermSeed derives the layout-permutation seed applied with a
// roster change: the beacon chain head bound to the new roster digest,
// so the permutation over the enlarged slot set is unpredictable yet
// identical on every replica. The chain *head* — not Latest(), which
// is nil on a mid-session joiner whose rebound chain has no entries
// yet — agrees across established replicas and joiners alike.
func (n *node) rosterPermSeed(def *group.Definition) []byte {
	dig := def.RosterDigest()
	var beaconVal []byte
	if n.beaconChain != nil {
		h := n.beaconChain.Head()
		beaconVal = h[:]
	}
	return crypto.Hash("dissent/roster-perm", beaconVal, dig[:])
}

// Definition returns the node's current (roster-versioned) group
// definition. Callers must treat it as read-only.
func (n *node) Definition() *group.Definition { return n.def }

// RosterVersion returns the node's current roster version.
func (n *node) RosterVersion() uint64 { return n.def.Version }

// RosterDigest returns the node's current roster hash-chain head.
func (n *node) RosterDigest() [32]byte { return n.def.RosterDigest() }

// --- Server: pending churn and the roster phase -----------------------

// rosterState is one in-flight roster transition at a server.
type rosterState struct {
	version  uint64
	props    map[int]*RosterPropose
	update   *group.RosterUpdate
	sigs     map[int][]byte
	resendAt time.Time // next propose/cert rebroadcast while stuck
	resendN  int       // rebroadcasts so far (drives the backoff)
}

// Admit pre-approves an identity key (its canonical encoding) for
// admission: a JoinRequest bearing it is accepted even when the policy
// keeps OpenAdmission off. Admission still happens only through a
// certified roster update at the next epoch boundary.
func (s *Server) Admit(encodedPub []byte) {
	if s.allowlist == nil {
		s.allowlist = make(map[string]bool)
	}
	s.allowlist[string(encodedPub)] = true
}

// Expel queues a client for removal at the next epoch boundary. Unlike
// a blame verdict — which every server reaches independently and
// deterministically, so immediate exclusion stays consistent — an
// operator's Expel is known to this server alone, so the exclusion
// takes effect only when the certified roster update applies everywhere
// at once.
func (s *Server) Expel(id group.NodeID) error {
	ci := s.def.ClientIndex(id)
	if ci < 0 {
		return fmt.Errorf("core: %s is not a client of this group", id)
	}
	if s.def.Clients[ci].Expelled {
		return fmt.Errorf("core: client %s already expelled", id)
	}
	if !s.churnEnabled() {
		return errors.New("core: membership churn requires a nonzero BeaconEpochRounds")
	}
	s.pendingRemove[ci] = true
	return nil
}

// LatestRosterUpdate returns the most recently applied certified
// update, or nil before the first boundary.
func (s *Server) LatestRosterUpdate() *group.RosterUpdate { return s.lastRosterUpdate }

// rosterLogCap bounds the in-memory certified-update mirror (one entry
// per epoch boundary). With a durable StateStore configured the full
// chain persists there, so members arbitrarily far behind still catch
// up by replay; without one, members behind the cap fall back to a
// certified snapshot re-sync instead of wedging.
const rosterLogCap = 64

// persistRosterUpdate records a certified update and its post-apply
// schedule digest in the durable store. Persistence failures are
// logged, not fatal: the in-memory mirror still serves the hot path,
// and durability degrades rather than halting rounds.
func (s *Server) persistRosterUpdate(u *group.RosterUpdate, dig [32]byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(bucketRoster, versionKey(u.Version), u.Encode()); err != nil {
		s.log.Error("roster update persist failed", "version", u.Version, "err", err)
		return
	}
	if err := s.store.Put(bucketRosterDigest, versionKey(u.Version), dig[:]); err != nil {
		s.log.Error("roster digest persist failed", "version", u.Version, "err", err)
	}
}

// lookupRosterUpdate returns the certified update for one version from
// the in-memory mirror, falling back to the durable store — the fix
// for the rosterLogCap catch-up wedge: eviction from the mirror no
// longer strands version-behind members.
func (s *Server) lookupRosterUpdate(v uint64) *group.RosterUpdate {
	if u := s.rosterLog[v]; u != nil {
		return u
	}
	if s.store == nil {
		return nil
	}
	raw, ok := s.store.Get(bucketRoster, versionKey(v))
	if !ok {
		return nil
	}
	u, err := group.DecodeRosterUpdate(raw)
	if err != nil {
		s.log.Error("stored roster update corrupt", "version", v, "err", err)
		return nil
	}
	return u
}

// rosterDigestFor returns the recorded post-apply schedule digest for
// one roster version (in-memory mirror first, then the durable store).
func (s *Server) rosterDigestFor(v uint64) ([32]byte, bool) {
	if dig, ok := s.rosterDigests[v]; ok {
		return dig, true
	}
	if s.store != nil {
		if raw, ok := s.store.Get(bucketRosterDigest, versionKey(v)); ok && len(raw) == 32 {
			var dig [32]byte
			copy(dig[:], raw)
			return dig, true
		}
	}
	return [32]byte{}, false
}

// schedDigestDiverged reports whether a member's claimed post-apply
// schedule digest for one version provably disagrees with ours. Either
// side lacking a digest (fresh joiner, pre-churn session, unrecorded
// version) is inconclusive, not divergence.
func (s *Server) schedDigestDiverged(version uint64, memberDigest []byte) bool {
	if len(memberDigest) != 32 {
		return false
	}
	dig, ok := s.rosterDigestFor(version)
	if !ok {
		return false
	}
	return !bytes.Equal(memberDigest, dig[:])
}

// resendRosterChain replays the certified updates a version-behind
// member missed, in order, so it can re-apply the chain and unwedge.
// The member applies each sequentially (onRosterUpdate requires exact
// version succession), so envelopes go out oldest-first on one FIFO
// link. When the history is genuinely truncated (no durable store and
// the mirror evicted the version), a client falls back to a certified
// snapshot re-sync at the current version instead of staying wedged.
func (s *Server) resendRosterChain(now time.Time, to group.NodeID, fromVersion uint64, out *Output) error {
	for v := fromVersion + 1; v <= s.def.Version; v++ {
		u := s.lookupRosterUpdate(v)
		if u == nil {
			if s.def.ClientIndex(to) >= 0 {
				return s.sendSnapshotSync(now, to, out)
			}
			out.Events = append(out.Events, Event{Kind: EventProtocolViolation, Round: s.roundNum,
				Detail: fmt.Sprintf("member %s behind retained roster history (asked from %d, log starts past it)", to, fromVersion)})
			return nil
		}
		var digBytes []byte // empty when unrecorded; receivers skip the self-check
		if dig, ok := s.rosterDigestFor(v); ok {
			digBytes = dig[:]
		}
		body := (&RosterUpdateMsg{Update: u.Encode(), SchedDigest: digBytes}).Encode()
		m, err := s.sign(MsgRosterUpdate, s.roundNum, body)
		if err != nil {
			return err
		}
		out.Send = append(out.Send, Envelope{To: to, Msg: m})
	}
	return nil
}

// onJoinRequest validates and queues a join/rejoin request. Known
// members whose request carries an old roster version are replayed the
// missed certified updates first (the catch-up path for a client that
// lost a MsgRosterUpdate frame); their rejoin intent, if any, is
// re-asserted by the next retry once they are current.
func (s *Server) onJoinRequest(now time.Time, m *Message) (*Output, error) {
	if !s.churnEnabled() {
		return s.violation(m.Round, errors.New("join request but churn is disabled by policy")), nil
	}
	if s.def.ServerIndex(m.From) >= 0 {
		return s.violation(m.Round, fmt.Errorf("join request from server %s", m.From)), nil
	}
	if ci := s.def.ClientIndex(m.From); ci >= 0 {
		// Known member: rejoin (expelled), roster-sync (version-behind),
		// or an admitted joiner whose welcome was lost — verified like
		// any client message.
		if err := s.verify(m, false); err != nil {
			return s.violation(m.Round, err), nil
		}
		p, err := DecodeJoinRequest(m.Body)
		if err != nil {
			return s.violation(m.Round, err), nil
		}
		if len(p.PubKey) > 0 {
			// Full join requests from a member already in the roster mean
			// its JoinWelcome never arrived: it keeps retrying because it
			// is not bootstrapped. Its upstream re-sends a fresh welcome.
			return s.rewelcome(now, m.From)
		}
		if p.Version > s.def.Version {
			return s.violation(m.Round, fmt.Errorf("join request from the future roster version %d (current %d)",
				p.Version, s.def.Version)), nil
		}
		if p.Version < s.def.Version {
			// Expected recovery, not a violation: the member lost roster
			// updates; replay the chain so it catches up (its rejoin
			// intent, if any, lands on a retry once current). But first
			// validate the member's post-apply schedule digest for its
			// version: replaying onto a silently diverged base would Grow
			// a wrong layout and cement the divergence — a diverged
			// member gets a certified snapshot re-sync instead.
			out := &Output{}
			if s.schedDigestDiverged(p.Version, p.SchedDigest) {
				if err := s.sendSnapshotSync(now, m.From, out); err != nil {
					return nil, err
				}
				return out, nil
			}
			if err := s.resendRosterChain(now, m.From, p.Version, out); err != nil {
				return nil, err
			}
			return out, nil
		}
		if !p.Rejoin {
			// Sync probe from a current member: nothing to replay — unless
			// its post-apply schedule digest disagrees with ours for this
			// version, which means its replica diverged and only a
			// certified snapshot re-sync converges it.
			if s.schedDigestDiverged(p.Version, p.SchedDigest) {
				out := &Output{}
				if err := s.sendSnapshotSync(now, m.From, out); err != nil {
					return nil, err
				}
				return out, nil
			}
			return &Output{}, nil
		}
		if !s.excluded[ci] && !s.def.Clients[ci].Expelled {
			return &Output{}, nil // already active
		}
		s.pendingRejoin[ci] = true
		return &Output{}, nil
	}
	// New-member path: the request is self-certifying — the sender signs
	// with the key embedded in the body, and its NodeID must hash from
	// that key.
	p, err := DecodeJoinRequest(m.Body)
	if err != nil {
		return s.violation(m.Round, err), nil
	}
	pub, err := s.keyGrp.Decode(p.PubKey)
	if err != nil {
		return s.violation(m.Round, fmt.Errorf("join request key: %w", err)), nil
	}
	if group.IDFromKey(s.keyGrp, pub) != m.From {
		return s.violation(m.Round, fmt.Errorf("join request ID %s does not match its key", m.From)), nil
	}
	if s.signing {
		sig, err := crypto.DecodeSignature(s.keyGrp, m.Sig)
		if err != nil {
			return s.violation(m.Round, err), nil
		}
		if err := crypto.Verify(s.keyGrp, pub, "dissent/msg", signedBytes(s.grpID, m), sig); err != nil {
			return s.violation(m.Round, fmt.Errorf("join request signature: %w", err)), nil
		}
	}
	if _, err := s.keyGrp.Decode(p.PseuKey); err != nil {
		return s.violation(m.Round, fmt.Errorf("join request pseudonym key: %w", err)), nil
	}
	if !s.def.Policy.OpenAdmission && !s.allowlist[string(p.PubKey)] {
		return &Output{Events: []Event{{Kind: EventProtocolViolation, Round: m.Round,
			Detail: fmt.Sprintf("admission denied for %s (closed admission, not pre-approved)", m.From)}}}, nil
	}
	s.pendingJoin[m.From] = p
	return &Output{}, nil
}

// rewelcome rebuilds and re-sends the session snapshot to an admitted
// member whose original JoinWelcome was lost. The snapshot is current
// (the member bootstraps at the in-flight round); the embedded update
// is the one that admitted it, so the member can still verify its own
// admission was certified. Unlike the initial welcome — sent by the
// member's upstream at apply time — the recovery is served by
// whichever server the retry reaches (the joiner keeps contacting its
// original contact point, which may not be its assigned upstream);
// every server holds the identical replicated state the snapshot
// needs.
func (s *Server) rewelcome(now time.Time, id group.NodeID) (*Output, error) {
	// Rate-limit per member: legitimate retries pace themselves at
	// joinRetryInterval, while a replayed join request would otherwise
	// amplify a tiny frame into a full session snapshot every time.
	if last, ok := s.welcomeSent[id]; ok && now.Sub(last) < joinRetryInterval {
		return &Output{}, nil
	}
	v, ok := s.joinedAt[id]
	if !ok {
		return s.violation(s.roundNum, fmt.Errorf("full join request from established member %s", id)), nil
	}
	u := s.lookupRosterUpdate(v)
	if u == nil {
		// Without a durable store the admitting update can age out of the
		// in-memory mirror; a joiner needs exactly that update (its
		// admission proof), so this stays a hard error there. With a
		// store the chain never truncates and this is unreachable.
		return &Output{Events: []Event{{Kind: EventProtocolViolation, Round: s.roundNum,
			Detail: fmt.Sprintf("cannot re-welcome %s: admitting update %d evicted from the roster log", id, v)}}}, nil
	}
	// Recover the member's slot: its pseudonym key from the admitting
	// update locates the slot appended for it.
	slot := -1
	for _, am := range u.Admit {
		pub, err := s.keyGrp.Decode(am.PubKey)
		if err != nil || group.IDFromKey(s.keyGrp, pub) != id {
			continue
		}
		for i, sk := range s.slotKeys {
			if bytes.Equal(s.keyGrp.Encode(sk), am.PseuKey) {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		return s.violation(s.roundNum, fmt.Errorf("no slot found for admitted member %s", id)), nil
	}
	s.welcomeSent[id] = now
	out := &Output{}
	if err := s.sendWelcome(u, id, slot, out); err != nil {
		return nil, err
	}
	return out, nil
}

// resumeRounds restarts normal operation after a round completes (or a
// blame session closes): the roster phase first when an epoch boundary
// is due, then the next round. Accusation shuffles are dispatched
// before this runs (maybeOutput starts them directly on a shuffle
// request), so by the boundary any blame session has already closed.
func (s *Server) resumeRounds(now time.Time, out *Output) error {
	if s.rosterDue {
		more, err := s.startRoster(now)
		if err != nil {
			return err
		}
		out.merge(more)
		return nil
	}
	s.startRound(now, out)
	return nil
}

// buildProposal assembles this server's pending churn for the next
// version, applying the re-admission cooldown policy.
func (s *Server) buildProposal() *RosterPropose {
	p := &RosterPropose{Version: s.def.Version + 1}
	for _, ci := range sortedKeys(s.pendingRemove) {
		p.Remove = append(p.Remove, s.def.Clients[ci].ID)
	}
	cooldown := uint64(s.def.Policy.ReadmitCooldownRounds)
	for _, ci := range sortedKeys(s.pendingRejoin) {
		if s.pendingRemove[ci] {
			continue
		}
		if at, ok := s.expelRound[ci]; ok && s.roundNum < at+cooldown {
			continue // not yet eligible; stays pending for a later boundary
		}
		p.Admit = append(p.Admit, group.RosterMember{
			PubKey: s.keyGrp.Encode(s.def.Clients[ci].PubKey),
		})
	}
	for _, id := range sortedIDKeys(s.pendingJoin) {
		req := s.pendingJoin[id]
		p.Admit = append(p.Admit, group.RosterMember{
			PubKey:  req.PubKey,
			PseuKey: req.PseuKey,
			Addr:    req.Addr,
		})
	}
	return p
}

// startRoster opens the roster phase for the upcoming epoch boundary.
func (s *Server) startRoster(now time.Time) (*Output, error) {
	s.rosterDue = false
	s.phase = phaseRoster
	s.roster = &rosterState{
		version:  s.def.Version + 1,
		props:    make(map[int]*RosterPropose),
		sigs:     make(map[int][]byte),
		resendAt: now.Add(s.retry.delay(0, s.retrySeed^(s.def.Version+1))),
	}
	prop := s.buildProposal()
	out := &Output{Timer: s.roster.resendAt}
	if err := s.broadcastServers(MsgRosterPropose, s.roundNum, prop.Encode(), out); err != nil {
		return nil, err
	}
	s.roster.props[s.idx] = prop
	more, err := s.maybeBuildUpdate(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

// rosterTick rebroadcasts this server's proposal (and certificate,
// once built) while the roster phase is stuck waiting on peers: with
// duplicate-dropping receivers this is idempotent, and it restores
// liveness after a lost propose/cert frame. Retries follow the unified
// retransmission backoff, so a dead peer draws a decaying rebroadcast
// stream rather than a fixed-period storm.
func (s *Server) rosterTick(now time.Time) (*Output, error) {
	r := s.roster
	if s.phase != phaseRoster || r == nil {
		return &Output{}, nil
	}
	if now.Before(r.resendAt) {
		return &Output{Timer: r.resendAt}, nil
	}
	r.resendN++
	r.resendAt = now.Add(s.retry.delay(r.resendN, s.retrySeed^r.version))
	out := &Output{Timer: r.resendAt}
	if prop := r.props[s.idx]; prop != nil {
		if err := s.broadcastServers(MsgRosterPropose, s.roundNum, prop.Encode(), out); err != nil {
			return nil, err
		}
	}
	if r.update != nil {
		body := (&RosterCert{Version: r.version, Sig: r.sigs[s.idx]}).Encode()
		if err := s.broadcastServers(MsgRosterCert, s.roundNum, body, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *Server) onRosterPropose(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeRosterPropose(m.Body)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	if p.Version == 0 {
		return s.violation(s.roundNum, errors.New("roster proposal for version 0")), nil
	}
	if p.Version <= s.def.Version {
		// The peer is rebroadcasting a transition we already completed —
		// its copy of some cert was lost. Replay the certified chain so
		// it can apply and resume (the server-to-server analogue of the
		// client catch-up path).
		out := &Output{}
		if err := s.resendRosterChain(now, m.From, p.Version-1, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if s.phase != phaseRoster || s.roster == nil || p.Version > s.roster.version {
		// A peer reached the boundary before us; replay once we open our
		// own roster phase.
		return s.stashMsg(m), nil
	}
	si := s.def.ServerIndex(m.From)
	if _, dup := s.roster.props[si]; dup {
		return &Output{}, nil
	}
	s.roster.props[si] = p
	return s.maybeBuildUpdate(now)
}

// maybeBuildUpdate runs once all proposals are in: union them into the
// canonical update (identical bytes on every server), sign, and
// broadcast the certification signature.
func (s *Server) maybeBuildUpdate(now time.Time) (*Output, error) {
	r := s.roster
	if r == nil || r.update != nil || len(r.props) < len(s.def.Servers) {
		return &Output{}, nil
	}
	removeSet := make(map[group.NodeID]bool)
	for si := 0; si < len(s.def.Servers); si++ {
		for _, id := range r.props[si].Remove {
			ci := s.def.ClientIndex(id)
			if ci < 0 || s.def.Clients[ci].Expelled {
				continue // invalid or redundant; dropped identically everywhere
			}
			removeSet[id] = true
		}
	}
	cooldown := uint64(s.def.Policy.ReadmitCooldownRounds)
	admitByID := make(map[group.NodeID]group.RosterMember)
	for si := 0; si < len(s.def.Servers); si++ {
		for _, m := range r.props[si].Admit {
			pub, err := s.keyGrp.Decode(m.PubKey)
			if err != nil {
				continue
			}
			id := group.IDFromKey(s.keyGrp, pub)
			if removeSet[id] || s.def.ServerIndex(id) >= 0 {
				continue
			}
			if ci := s.def.ClientIndex(id); ci >= 0 {
				if !s.def.Clients[ci].Expelled && !s.excluded[ci] {
					continue // already active
				}
				// The re-admission cooldown is group policy over
				// replicated state (expulsion rounds agree on every
				// server), so each server enforces it on the union — a
				// single server cannot short-circuit the cooldown for
				// the group.
				if at, ok := s.expelRound[ci]; ok && s.roundNum < at+cooldown {
					continue
				}
			} else if len(m.PseuKey) == 0 {
				continue // new members need a pseudonym key
			} else if _, err := s.keyGrp.Decode(m.PseuKey); err != nil {
				continue
			}
			if _, dup := admitByID[id]; !dup {
				admitByID[id] = m
			}
		}
	}
	update := &group.RosterUpdate{
		Version:    r.version,
		PrevDigest: s.def.RosterDigest(),
	}
	for _, id := range sortedIDKeys(removeSet) {
		update.Remove = append(update.Remove, id)
	}
	for _, id := range sortedIDKeys(admitByID) {
		update.Admit = append(update.Admit, admitByID[id])
	}
	sigBytes, err := group.SignRosterUpdate(update, s.grpID, s.kp, s.rand)
	if err != nil {
		return nil, err
	}
	r.update = update
	r.sigs[s.idx] = sigBytes
	out := &Output{}
	body := (&RosterCert{Version: r.version, Sig: sigBytes}).Encode()
	if err := s.broadcastServers(MsgRosterCert, s.roundNum, body, out); err != nil {
		return nil, err
	}
	more, err := s.maybeApplyRoster(now)
	if err != nil {
		return nil, err
	}
	out.merge(more)
	return out, nil
}

func (s *Server) onRosterCert(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeRosterCert(m.Body)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	if p.Version == 0 {
		return s.violation(s.roundNum, errors.New("roster certificate for version 0")), nil
	}
	if p.Version <= s.def.Version {
		// Stuck peer rebroadcasting a completed transition: replay the
		// certified chain (see onRosterPropose).
		out := &Output{}
		if err := s.resendRosterChain(now, m.From, p.Version-1, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	r := s.roster
	if s.phase != phaseRoster || r == nil || r.update == nil || p.Version > r.version {
		return s.stashMsg(m), nil
	}
	si := s.def.ServerIndex(m.From)
	sig, err := crypto.DecodeSignature(s.keyGrp, p.Sig)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	if err := crypto.Verify(s.keyGrp, s.def.Servers[si].PubKey, group.RosterSignContext,
		r.update.SignedBytes(s.grpID), sig); err != nil {
		return s.violation(s.roundNum, fmt.Errorf("server %d roster cert: %w", si, err)), nil
	}
	if _, dup := r.sigs[si]; dup {
		return &Output{}, nil
	}
	r.sigs[si] = p.Sig
	return s.maybeApplyRoster(now)
}

// onServerRosterUpdate handles a certified update replayed by a peer
// that completed a transition we are stuck in (our copy of a propose
// or cert frame was lost): the update carries every server's
// signature, so it can be verified and applied directly.
func (s *Server) onServerRosterUpdate(now time.Time, m *Message) (*Output, error) {
	if err := s.verify(m, true); err != nil {
		return s.violation(s.roundNum, err), nil
	}
	p, err := DecodeRosterUpdateMsg(m.Body)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	u, err := group.DecodeRosterUpdate(p.Update)
	if err != nil {
		return s.violation(s.roundNum, err), nil
	}
	if u.Version <= s.def.Version {
		return &Output{}, nil // already applied
	}
	if s.phase != phaseRoster || u.Version > s.def.Version+1 {
		return s.stashMsg(m), nil
	}
	out := &Output{}
	if err := s.applyCertifiedRoster(now, u, out); err != nil {
		// A replayed update that fails verification is a peer fault,
		// not a local fatal: stay in the phase (retries continue).
		return s.violation(s.roundNum, err), nil
	}
	s.roster = nil
	s.phase = phaseRunning
	s.startRound(now, out)
	return out, nil
}

// maybeApplyRoster applies the fully certified update and resumes
// rounds (or a pending blame session).
func (s *Server) maybeApplyRoster(now time.Time) (*Output, error) {
	r := s.roster
	if r == nil || r.update == nil || len(r.sigs) < len(s.def.Servers) {
		return &Output{}, nil
	}
	update := r.update
	update.Sigs = make([][]byte, len(s.def.Servers))
	for i := range update.Sigs {
		update.Sigs[i] = r.sigs[i]
	}
	out := &Output{}
	if err := s.applyCertifiedRoster(now, update, out); err != nil {
		return nil, err
	}
	s.roster = nil
	s.phase = phaseRunning
	s.startRound(now, out)
	return out, nil
}

// applyCertifiedRoster applies one certified update to this server's
// replica: definition swap, seeds and slot keys for new members,
// exclusion bookkeeping, schedule growth, permutation reseed, welcomes
// for joiners, and the client broadcast.
func (s *Server) applyCertifiedRoster(now time.Time, u *group.RosterUpdate, out *Output) error {
	newDef, err := s.def.ApplyRosterUpdate(u)
	if err != nil {
		return fmt.Errorf("core: certified roster update rejected locally: %w", err)
	}
	oldN := len(s.def.Clients)
	s.def = newDef

	for _, id := range u.Remove {
		ci := newDef.ClientIndex(id)
		s.excluded[ci] = true
		if _, ok := s.expelRound[ci]; !ok {
			s.expelRound[ci] = s.roundNum
		}
		delete(s.pendingRemove, ci)
		// A pending rejoin survives: for a blame-expelled client the
		// removal here merely formalizes the earlier verdict, and its
		// rejoin request stays queued behind the cooldown.
		out.Events = append(out.Events, Event{Kind: EventMemberExpelled, Round: s.roundNum, Culprit: id})
	}

	type welcomeTarget struct {
		id   group.NodeID
		slot int
	}
	var welcomes []welcomeTarget
	for _, m := range u.Admit {
		pub, err := s.keyGrp.Decode(m.PubKey)
		if err != nil {
			return fmt.Errorf("core: admitted key: %w", err)
		}
		id := group.IDFromKey(s.keyGrp, pub)
		ci := newDef.ClientIndex(id)
		if ci < oldN {
			// Re-admission: original seeds and slot survive.
			delete(s.excluded, ci)
			delete(s.expelRound, ci)
			delete(s.pendingRejoin, ci)
		} else {
			// New member: pairwise seed, attachment, slot key.
			var seed []byte
			if s.pairSeedFn != nil {
				seed = s.pairSeedFn(ci, s.idx)
			} else {
				seed, err = s.pairSeed(pub)
				if err != nil {
					return fmt.Errorf("core: joiner %s seed: %w", id, err)
				}
			}
			s.clientSeeds = append(s.clientSeeds, seed)
			if newDef.UpstreamServer(ci) == s.idx {
				s.myClients = append(s.myClients, ci)
			}
			pseu, err := s.keyGrp.Decode(m.PseuKey)
			if err != nil {
				return fmt.Errorf("core: joiner %s pseudonym key: %w", id, err)
			}
			s.slotKeys = append(s.slotKeys, pseu)
			s.joinedAt[id] = u.Version
			delete(s.pendingJoin, id)
			if m.Addr != "" {
				out.NewPeers = append(out.NewPeers, PeerInfo{ID: id, Addr: m.Addr})
			}
			if newDef.UpstreamServer(ci) == s.idx {
				welcomes = append(welcomes, welcomeTarget{id: id, slot: len(s.slotKeys) - 1})
			}
		}
		out.Events = append(out.Events, Event{Kind: EventMemberJoined, Round: s.roundNum, Culprit: id})
	}

	if len(u.Admit)+len(u.Remove) > 0 {
		s.sched.Grow(len(newDef.Clients)-oldN, s.rosterPermSeed(newDef))
	}
	// Certified removals shrink the α-policy baseline (§3.7) with the
	// roster: a formally removed member must not count toward the
	// participation floor of the next round. Identical on every server,
	// since the update and exclusion set are.
	if expected := s.expectedClients(); s.prevCount > expected {
		s.prevCount = expected
	}
	s.lastRosterUpdate = u
	s.rosterLog[u.Version] = u
	if u.Version > rosterLogCap {
		delete(s.rosterLog, u.Version-rosterLogCap)
		delete(s.rosterDigests, u.Version-rosterLogCap)
	}
	// The post-apply schedule digest: captured after Grow and before any
	// further round advances, so every replica applying this update at
	// its boundary computes the identical value. It anchors divergence
	// detection (schedDigestDiverged) and rides every MsgRosterUpdate.
	dig := s.sched.Digest()
	s.rosterDigests[u.Version] = dig
	s.persistRosterUpdate(u, dig)
	s.persistSnapshot()
	s.log.Info("roster update applied", "round", s.roundNum, "version", newDef.Version,
		"admitted", len(u.Admit), "removed", len(u.Remove))
	out.Events = append(out.Events, Event{Kind: EventRosterChanged, Round: s.roundNum,
		Detail: fmt.Sprintf("version %d (%d admitted, %d removed)", newDef.Version, len(u.Admit), len(u.Remove))})

	// Broadcast the certified update to attached clients (including the
	// joiners just added to myClients — they ignore it and wait for
	// their welcome, which follows on the same FIFO link).
	body := (&RosterUpdateMsg{Update: u.Encode(), SchedDigest: dig[:]}).Encode()
	if err := s.broadcastClients(MsgRosterUpdate, s.roundNum, body, out); err != nil {
		return err
	}
	for _, w := range welcomes {
		if err := s.sendWelcome(u, w.id, w.slot, out); err != nil {
			return err
		}
	}
	return nil
}

// buildSnapshot assembles the JoinWelcome-shaped session snapshot: the
// certified update u as the verifiable anchor, the full roster, slot
// keys, schedule replica, pipeline queue, and beacon head. slot is the
// recipient's slot when the server knows it (a joiner, whose admitting
// update links key to slot) or -1 for an established member re-sync —
// the server cannot link an established member to its anonymous slot,
// so the member locates it by its own pseudonym key.
func (s *Server) buildSnapshot(u *group.RosterUpdate, slot int) *JoinWelcome {
	w := &JoinWelcome{
		Version:  s.def.Version,
		Digest:   s.def.RosterDigest(),
		Update:   u.Encode(),
		SlotKeys: s.encodedSlotKeys(),
		MySlot:   int32(slot),
		Round:    s.roundNum,
	}
	for _, c := range s.def.Clients {
		w.RosterKeys = append(w.RosterKeys, s.keyGrp.Encode(c.PubKey))
		if c.Expelled {
			w.Expelled = append(w.Expelled, 1)
		} else {
			w.Expelled = append(w.Expelled, 0)
		}
	}
	schedRound, lens, idle, perm := s.sched.Snapshot()
	w.SchedRound = schedRound
	w.Lens = toInt32(lens)
	w.Idle = toInt32(idle)
	w.Perm = toInt32(perm)
	// Under pipelining a re-welcome can capture the schedule mid-stream;
	// the queued deltas and drain point complete the snapshot so the
	// joiner pops each delta at the same round as every established
	// replica. Boundary welcomes always export an empty queue: a welcome
	// implies an admission, so Grow just flushed it.
	w.DrainRound = s.drainRound
	pendOps, pendNs := s.sched.PendingSnapshot()
	w.PendingOps = toInt32(pendOps)
	w.PendingNs = toInt32(pendNs)
	if s.beaconChain != nil {
		head := s.beaconChain.Head()
		w.BeaconHead = append([]byte(nil), head[:]...)
	}
	return w
}

// sendWelcome snapshots the session state for one admitted joiner.
func (s *Server) sendWelcome(u *group.RosterUpdate, id group.NodeID, slot int, out *Output) error {
	m, err := s.sign(MsgJoinWelcome, s.roundNum, s.buildSnapshot(u, slot).Encode())
	if err != nil {
		return err
	}
	out.Send = append(out.Send, Envelope{To: id, Msg: m})
	return nil
}

// sendSnapshotSync ships an established member the certified session
// snapshot (the JoinWelcome shape under MsgSnapshotSync) so it can
// replace a diverged or behind-retained-history schedule replica
// instead of wedging. The anchor is the latest certified update: the
// member verifies all m signatures over it and checks the snapshot's
// roster digest against the update's before adopting anything.
func (s *Server) sendSnapshotSync(now time.Time, id group.NodeID, out *Output) error {
	u := s.lastRosterUpdate
	if u == nil {
		// Pre-churn session: no certified update exists to anchor a
		// snapshot. Nothing diverged either — the schedule is still the
		// certified setup one — so there is nothing to re-sync.
		out.Events = append(out.Events, Event{Kind: EventProtocolViolation, Round: s.roundNum,
			Detail: fmt.Sprintf("cannot snapshot-sync %s before the first certified roster update", id)})
		return nil
	}
	// Rate-limit per member like rewelcome: re-sync probes pace at
	// rosterSyncInterval, and a replayed probe must not amplify into a
	// full session snapshot every time.
	if last, ok := s.welcomeSent[id]; ok && now.Sub(last) < joinRetryInterval {
		return nil
	}
	s.welcomeSent[id] = now
	m, err := s.sign(MsgSnapshotSync, s.roundNum, s.buildSnapshot(u, -1).Encode())
	if err != nil {
		return err
	}
	out.Send = append(out.Send, Envelope{To: id, Msg: m})
	s.log.Info("snapshot re-sync sent", "member", id.String(), "version", s.def.Version, "round", s.roundNum)
	return nil
}

func toInt32(v []int) []int32 {
	out := make([]int32, len(v))
	for i, x := range v {
		out[i] = int32(x)
	}
	return out
}

func toInt(v []int32) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}

// sortedIDKeys returns a NodeID-keyed map's keys in canonical order.
func sortedIDKeys[V any](m map[group.NodeID]V) []group.NodeID {
	ids := make([]group.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		return bytes.Compare(ids[a][:], ids[b][:]) < 0
	})
	return ids
}

// --- Client: roster application, rejoin, joining ----------------------

// Expelled reports whether this client is currently expelled (by blame
// verdict or certified removal) and therefore not submitting.
func (c *Client) Expelled() bool { return c.expelled }

// Joining reports whether this engine is a prospective member still
// awaiting admission.
func (c *Client) Joining() bool { return c.joining && !c.ready }

// RequestRejoin asks the client's upstream server to propose it for
// re-admission at the next eligible epoch boundary. The caller
// transmits the returned envelopes like any engine output.
func (c *Client) RequestRejoin(now time.Time) (*Output, error) {
	if !c.churnEnabled() {
		return nil, errors.New("core: membership churn requires a nonzero BeaconEpochRounds")
	}
	if !c.expelled {
		return nil, errors.New("core: client is not expelled")
	}
	body := (&JoinRequest{Version: c.def.Version, Rejoin: true}).Encode()
	m, err := c.sign(MsgJoinRequest, c.round, body)
	if err != nil {
		return nil, err
	}
	return &Output{Send: []Envelope{{To: c.upstream, Msg: m}}}, nil
}

// onRosterUpdate applies a certified roster transition at the client.
func (c *Client) onRosterUpdate(now time.Time, m *Message) (*Output, error) {
	if c.joining && !c.ready {
		// A joiner's own admission arrives as a JoinWelcome carrying the
		// same update plus the state snapshot; the broadcast copy is
		// redundant for it.
		return &Output{}, nil
	}
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	p, err := DecodeRosterUpdateMsg(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	u, err := group.DecodeRosterUpdate(p.Update)
	if err != nil {
		return c.violation(err), nil
	}
	if u.Version <= c.def.Version {
		// Benign: a catch-up replay racing the slow original (both
		// apply-able copies of a version we already hold). Same silent
		// drop as the server-side handler.
		return &Output{}, nil
	}
	if u.Version != c.def.Version+1 {
		return c.violation(fmt.Errorf("roster update version %d rejected (current %d, chain gap)",
			u.Version, c.def.Version)), nil
	}
	newDef, err := c.def.ApplyRosterUpdate(u)
	if err != nil {
		return c.violation(err), nil
	}
	grown := len(newDef.Clients) - len(c.def.Clients)
	reshaped := len(u.Admit)+len(u.Remove) > 0
	c.def = newDef
	out := &Output{}
	for _, id := range u.Remove {
		if id == c.id {
			// Emit only on the actual transition: a blame verdict may
			// have expelled us already (onBlameDone emitted then), and
			// this removal just formalizes it — applications looping on
			// EventMemberExpelled → Rejoin must not see a duplicate.
			if !c.expelled {
				out.Events = append(out.Events, Event{Kind: EventMemberExpelled, Round: c.round, Culprit: id})
			}
			c.expelled = true
			continue
		}
		out.Events = append(out.Events, Event{Kind: EventMemberExpelled, Round: c.round, Culprit: id})
	}
	for _, am := range u.Admit {
		pub, err := c.keyGrp.Decode(am.PubKey)
		if err != nil {
			continue
		}
		id := group.IDFromKey(c.keyGrp, pub)
		if id == c.id {
			c.expelled = false
		}
		out.Events = append(out.Events, Event{Kind: EventMemberJoined, Round: c.round, Culprit: id})
	}
	if c.ready && len(u.Admit)+len(u.Remove) > 0 {
		c.sched.Grow(grown, c.rosterPermSeed(newDef))
	}
	diverged := false
	if c.ready {
		// Capture the post-apply schedule digest — the replication point
		// every replica reaches with identical state — and compare it to
		// the server's copy riding the update. A mismatch means our
		// replica silently diverged before this boundary (e.g. we applied
		// a caught-up update before draining the rounds it presupposed);
		// submitting under the wrong layout would disrupt rounds, so we
		// hold and probe for a certified snapshot re-sync instead.
		dig := c.sched.Digest()
		c.applyDigest = dig[:]
		diverged = len(p.SchedDigest) == 32 && !bytes.Equal(p.SchedDigest, dig[:])
	}
	out.Events = append(out.Events, Event{Kind: EventRosterChanged, Round: c.round,
		Detail: fmt.Sprintf("version %d (%d admitted, %d removed)", newDef.Version, len(u.Admit), len(u.Remove))})

	c.awaitingRoster = false
	if c.round > c.rosterDone {
		c.rosterDone = c.round
	}
	// An applied roster update marks a pipeline drain point (the servers
	// drained before running the roster phase); later rounds ramp their
	// delta-queue depth from here. Recorded before the not-ready/expelled
	// early returns so observer replicas track the group's layout too.
	if c.ready && c.nextOut > c.drain {
		c.drain = c.nextOut
	}
	if diverged {
		c.awaitingRoster = true
		c.resubmitPending = false
		out.Events = append(out.Events, Event{Kind: EventProtocolViolation, Round: c.round,
			Detail: fmt.Sprintf("schedule replica diverged at roster version %d (post-apply digest mismatch); requesting snapshot re-sync", newDef.Version)})
		probe, err := c.Tick(now) // the catch-up probe carries our digest; the server answers with MsgSnapshotSync
		if err != nil {
			return nil, err
		}
		out.merge(probe)
		return out, nil
	}
	if !c.ready || c.awaitingBlame || c.expelled {
		c.resubmitPending = false
		return out, nil
	}
	if c.resubmitPending {
		c.resubmitPending = false
		sub, err := c.resubmitAfterRoster(now, reshaped)
		if err != nil {
			return nil, err
		}
		out.merge(sub)
		return out, nil
	}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}

// resubmitAfterRoster re-sends the vector a failed round discarded
// (parked across the epoch boundary). If the roster update reshaped
// the schedule — any non-empty update reseeds the layout permutation,
// and admissions grow it — the saved vector was composed under the old
// layout; the slot payload is recovered and re-queued so the data
// still rides the next round.
func (c *Client) resubmitAfterRoster(now time.Time, reshaped bool) (*Output, error) {
	cr := c.parked
	c.parked = nil
	if cr == nil {
		return c.submitRound(now)
	}
	if !reshaped && cr.vec != nil && len(cr.vec) == c.sched.Len() {
		cr.r = c.round
		sub, err := c.submitVector(now, cr, cr.vec)
		if err != nil {
			return nil, err
		}
		c.inflight = append(c.inflight, cr)
		c.round++
		return sub, nil
	}
	if cr.sentSlot != nil {
		if payload, idle, err := dcnet.DecodeSlot(cr.sentSlot); err == nil && !idle && len(payload.Data) > 0 {
			c.outbox = append([][]byte{append([]byte(nil), payload.Data...)}, c.outbox...)
		}
	}
	c.retireRound(cr)
	return c.submitRound(now)
}

// onJoinWelcome bootstraps a joining client from the admission
// snapshot.
func (c *Client) onJoinWelcome(now time.Time, m *Message) (*Output, error) {
	if !c.joining || c.ready {
		return &Output{}, nil
	}
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	w, err := DecodeJoinWelcome(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	if len(w.RosterKeys) != len(w.Expelled) {
		return c.violation(errors.New("join welcome roster shape mismatch")), nil
	}
	expelled := make([]bool, len(w.Expelled))
	for i, b := range w.Expelled {
		expelled[i] = b != 0
	}
	newDef, err := group.RebuildDefinition(c.def, w.Version, w.Digest, w.RosterKeys, expelled)
	if err != nil {
		return c.violation(err), nil
	}
	// The welcome snapshot is trusted-on-join from the upstream server,
	// but the admitting transition itself is independently verifiable:
	// the embedded update must be certified by every server and must
	// admit us.
	u, err := group.DecodeRosterUpdate(w.Update)
	if err != nil {
		return c.violation(err), nil
	}
	// A re-sent welcome (original lost) snapshots a later version than
	// the admitting update it embeds; the update's version can only lag.
	if u.Version > w.Version {
		return c.violation(errors.New("join welcome update version ahead of its snapshot")), nil
	}
	if err := c.def.VerifyRosterUpdateSigs(u); err != nil {
		return c.violation(err), nil
	}
	// When the welcome snapshots the admitting version itself, its
	// digest is fully derivable from the certified update — never trust
	// the welcome's copy there, or a wrong digest would wedge us out of
	// every subsequent update's chain check. For later-version re-sends
	// the digest is trust-on-join like the rest of the snapshot.
	if u.Version == w.Version && u.Digest(c.grpID) != w.Digest {
		return c.violation(errors.New("join welcome digest does not match the certified update")), nil
	}
	idx := newDef.ClientIndex(c.id)
	if idx < 0 {
		return c.violation(errors.New("join welcome roster does not include us")), nil
	}
	admitted := false
	myKey := c.keyGrp.Encode(c.kp.Public)
	for _, am := range u.Admit {
		if bytes.Equal(am.PubKey, myKey) {
			admitted = true
		}
	}
	if !admitted {
		return c.violation(errors.New("join welcome update does not admit us")), nil
	}
	slot := int(w.MySlot)
	if slot < 0 || slot >= len(w.SlotKeys) ||
		!bytes.Equal(w.SlotKeys[slot], c.keyGrp.Encode(c.pseudonym.Public)) {
		return c.violation(errors.New("join welcome slot does not carry our pseudonym key")), nil
	}

	cfg := dcnet.Config{
		NumSlots:        len(w.Lens),
		DefaultOpenLen:  c.def.Policy.DefaultOpenLen,
		MaxSlotLen:      c.def.Policy.MaxSlotLen,
		IdleCloseRounds: c.def.Policy.IdleCloseRounds,
	}
	if w.SchedRound > w.Round {
		return c.violation(errors.New("join welcome schedule round ahead of engine round")), nil
	}
	sched, err := dcnet.RestoreSchedule(cfg, w.SchedRound, toInt(w.Lens), toInt(w.Idle), toInt(w.Perm))
	if err != nil {
		return c.violation(err), nil
	}
	if w.DrainRound > w.Round {
		return c.violation(errors.New("join welcome drain round ahead of engine round")), nil
	}

	c.def = newDef
	c.idx = idx
	c.upstream = newDef.Servers[newDef.UpstreamServer(idx)].ID
	c.serverSeeds = make([][]byte, len(newDef.Servers))
	for j, srv := range newDef.Servers {
		if c.pairSeedFn != nil {
			c.serverSeeds[j] = c.pairSeedFn(idx, j)
		} else {
			seed, err := c.pairSeed(srv.PubKey)
			if err != nil {
				return nil, fmt.Errorf("core: server %d seed: %w", j, err)
			}
			c.serverSeeds[j] = seed
		}
	}
	if c.beaconChain != nil {
		if len(w.BeaconHead) != len(beacon.Value{}) {
			return c.violation(errors.New("join welcome beacon head malformed")), nil
		}
		var head beacon.Value
		copy(head[:], w.BeaconHead)
		if err := c.beaconChain.Rebind(head); err != nil {
			return nil, err
		}
	}
	c.installRotation(sched)
	sched.SetLag(c.depth - 1)
	// Restore after SetLag (which flushes the queue): a re-sent welcome
	// can capture the donor mid-pipeline, and the restored queue plus the
	// donor's drain point make our replica pop each delta at the same
	// round as every established one.
	if err := sched.RestorePending(toInt(w.PendingOps), toInt(w.PendingNs)); err != nil {
		return c.violation(err), nil
	}
	c.sched = sched
	c.mySlot = slot
	c.round = w.Round
	c.nextOut = w.Round
	c.rosterDone = w.Round
	c.drain = w.DrainRound
	c.ready = true
	c.expelled = false
	if u.Version == w.Version {
		// Apply-time welcome: the donor snapshotted its schedule at the
		// admitting version's apply point, so the restored digest IS that
		// version's post-apply digest. A later re-sent welcome snapshots
		// mid-stream and leaves no apply-point digest (probes omit it).
		dig := sched.Digest()
		c.applyDigest = dig[:]
	} else {
		c.applyDigest = nil
	}

	out := &Output{Events: []Event{
		{Kind: EventScheduleReady, Round: w.Round, Detail: fmt.Sprintf("slot %d of %d (joined mid-session)", slot, len(w.Lens))},
		{Kind: EventMemberJoined, Round: w.Round, Culprit: c.id},
		{Kind: EventRosterChanged, Round: w.Round, Detail: fmt.Sprintf("version %d (joined)", w.Version)},
	}}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}

// onSnapshotSync replaces an established client's schedule replica
// with a certified snapshot from a server — the forced re-sync after a
// post-apply digest mismatch or a catch-up past the retained roster
// history. Verification mirrors onJoinWelcome: the embedded update
// carries every server's signature and (at equal versions) fully
// determines the snapshot's roster digest; only current membership is
// required, not admission by the update, and the anonymous slot is
// located by our own pseudonym key because the server cannot link an
// established member to its slot.
func (c *Client) onSnapshotSync(now time.Time, m *Message) (*Output, error) {
	if !c.ready || c.joining || c.pseudonym == nil {
		return &Output{}, nil
	}
	if err := c.verify(m, true); err != nil {
		return c.violation(err), nil
	}
	w, err := DecodeJoinWelcome(m.Body)
	if err != nil {
		return c.violation(err), nil
	}
	if w.Version < c.def.Version {
		return &Output{}, nil // stale snapshot racing updates we already applied
	}
	if len(w.RosterKeys) != len(w.Expelled) {
		return c.violation(errors.New("snapshot sync roster shape mismatch")), nil
	}
	expelled := make([]bool, len(w.Expelled))
	for i, b := range w.Expelled {
		expelled[i] = b != 0
	}
	newDef, err := group.RebuildDefinition(c.def, w.Version, w.Digest, w.RosterKeys, expelled)
	if err != nil {
		return c.violation(err), nil
	}
	u, err := group.DecodeRosterUpdate(w.Update)
	if err != nil {
		return c.violation(err), nil
	}
	if u.Version > w.Version {
		return c.violation(errors.New("snapshot sync update version ahead of its snapshot")), nil
	}
	if err := c.def.VerifyRosterUpdateSigs(u); err != nil {
		return c.violation(err), nil
	}
	if u.Version == w.Version && u.Digest(c.grpID) != w.Digest {
		return c.violation(errors.New("snapshot sync digest does not match the certified update")), nil
	}
	idx := newDef.ClientIndex(c.id)
	if idx < 0 {
		return c.violation(errors.New("snapshot sync roster does not include us")), nil
	}
	slot := -1
	myPseu := c.keyGrp.Encode(c.pseudonym.Public)
	for i, sk := range w.SlotKeys {
		if bytes.Equal(sk, myPseu) {
			slot = i
			break
		}
	}
	if slot < 0 {
		return c.violation(errors.New("snapshot sync slot keys do not carry our pseudonym key")), nil
	}
	cfg := dcnet.Config{
		NumSlots:        len(w.Lens),
		DefaultOpenLen:  c.def.Policy.DefaultOpenLen,
		MaxSlotLen:      c.def.Policy.MaxSlotLen,
		IdleCloseRounds: c.def.Policy.IdleCloseRounds,
	}
	if w.SchedRound > w.Round {
		return c.violation(errors.New("snapshot sync schedule round ahead of engine round")), nil
	}
	sched, err := dcnet.RestoreSchedule(cfg, w.SchedRound, toInt(w.Lens), toInt(w.Idle), toInt(w.Perm))
	if err != nil {
		return c.violation(err), nil
	}
	if w.DrainRound > w.Round {
		return c.violation(errors.New("snapshot sync drain round ahead of engine round")), nil
	}

	// Recover queued payload bytes from in-flight (and parked) rounds
	// before dropping them: their vectors were composed under the
	// replaced layout and can never match a certified output now.
	reclaim := func(cr *clientRound) {
		if cr.sentSlot != nil {
			if pl, idle, err := dcnet.DecodeSlot(cr.sentSlot); err == nil && !idle && len(pl.Data) > 0 {
				c.outbox = append([][]byte{append([]byte(nil), pl.Data...)}, c.outbox...)
			}
		}
		c.retireRound(cr)
	}
	for i := len(c.inflight) - 1; i >= 0; i-- { // newest first, so reclaimed bytes land oldest-first
		reclaim(c.inflight[i])
	}
	c.inflight = c.inflight[:0]
	if c.parked != nil {
		reclaim(c.parked)
		c.parked = nil
	}
	c.resubmitPending = false
	c.reqPending = false

	c.def = newDef
	c.idx = idx
	c.upstream = newDef.Servers[newDef.UpstreamServer(idx)].ID
	c.serverSeeds = make([][]byte, len(newDef.Servers))
	for j, srv := range newDef.Servers {
		if c.pairSeedFn != nil {
			c.serverSeeds[j] = c.pairSeedFn(idx, j)
		} else {
			seed, err := c.pairSeed(srv.PubKey)
			if err != nil {
				return nil, fmt.Errorf("core: server %d seed: %w", j, err)
			}
			c.serverSeeds[j] = seed
		}
	}
	if c.beaconChain != nil {
		if len(w.BeaconHead) != len(beacon.Value{}) {
			return c.violation(errors.New("snapshot sync beacon head malformed")), nil
		}
		var head beacon.Value
		copy(head[:], w.BeaconHead)
		// Our chain replica may have diverged with the schedule: discard
		// it and resume from the snapshot's head, trusted like the rest
		// of the server-signed snapshot (the certified update anchors the
		// roster; round outputs re-verify every appended entry).
		if err := c.beaconChain.ResetTrusted(head); err != nil {
			return nil, err
		}
	}
	c.installRotation(sched)
	sched.SetLag(c.depth - 1)
	if err := sched.RestorePending(toInt(w.PendingOps), toInt(w.PendingNs)); err != nil {
		return c.violation(err), nil
	}
	c.sched = sched
	c.mySlot = slot
	c.round = w.Round
	c.nextOut = w.Round
	c.rosterDone = w.Round
	c.drain = w.DrainRound
	c.awaitingRoster = false
	c.applyDigest = nil // mid-stream snapshot: no apply-point digest until the next boundary
	c.expelled = expelled[idx]
	c.nextStreams = nil

	out := &Output{Events: []Event{{Kind: EventReplicaResynced, Round: w.Round,
		Detail: fmt.Sprintf("version %d, slot %d of %d", w.Version, slot, len(w.Lens))}}}
	if c.awaitingBlame || c.expelled {
		return out, nil
	}
	sub, err := c.submitRound(now)
	if err != nil {
		return nil, err
	}
	out.merge(sub)
	return out, nil
}

// NewJoinerClient builds a client engine for a prospective member whose
// key is not (yet) in the group definition. Start sends a JoinRequest
// instead of a pseudonym submission; once a certified roster update
// admits the key, the upstream server's JoinWelcome bootstraps the
// engine mid-session and it begins submitting like any client.
// advertiseAddr is the dialable address servers should attach for this
// node (empty on address-less fabrics like SimNet).
func NewJoinerClient(def *group.Definition, kp *crypto.KeyPair, advertiseAddr string, opts Options) (*Client, error) {
	if def.Policy.BeaconEpochRounds == 0 {
		return nil, errors.New("core: joining requires a group with membership churn (BeaconEpochRounds > 0)")
	}
	c := &Client{node: newNode(def, kp, opts)}
	if def.ClientIndex(c.id) >= 0 || def.ServerIndex(c.id) >= 0 {
		return nil, errors.New("core: key already belongs to this group (use NewClient)")
	}
	c.idx = -1
	c.joining = true
	c.joinAddr = advertiseAddr
	c.upstream = def.Servers[0].ID // contact point until admission assigns one
	c.pad = dcnet.NewPad(c.prng)
	c.mySlot = -1
	c.pairSeedFn = opts.PairSeed
	c.depth = opts.PipelineDepth
	if c.depth < 1 {
		c.depth = 1
	}
	var retry RetryPolicy
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	c.retry = retry.withDefaults(submitResendInterval)
	return c, nil
}

// joinRetryInterval paces join-request retries: the single frame may
// be lost, or the operator may Admit the key only after the joiner
// started. Duplicate requests just overwrite the pending entry.
const joinRetryInterval = time.Second

// rosterSyncInterval paces a held client's catch-up probes: when the
// certified update it is waiting for does not arrive (lost frame), it
// asks its upstream server to replay the missed chain.
const rosterSyncInterval = time.Second

// startJoin generates the pseudonym key and sends the join request.
func (c *Client) startJoin(now time.Time) (*Output, error) {
	pseu, err := crypto.GenerateKeyPair(c.keyGrp, c.rand)
	if err != nil {
		return nil, err
	}
	c.pseudonym = pseu
	return c.sendJoinRequest(now)
}

// sendJoinRequest (re-)sends the join request with the same pseudonym
// key — the admitting slot must match the key generated at Start — and
// arms the retry timer.
func (c *Client) sendJoinRequest(now time.Time) (*Output, error) {
	body := (&JoinRequest{
		Version: c.def.Version,
		PubKey:  c.keyGrp.Encode(c.kp.Public),
		PseuKey: c.keyGrp.Encode(c.pseudonym.Public),
		Addr:    c.joinAddr,
	}).Encode()
	m, err := c.sign(MsgJoinRequest, 0, body)
	if err != nil {
		return nil, err
	}
	return &Output{
		Send:  []Envelope{{To: c.upstream, Msg: m}},
		Timer: now.Add(joinRetryInterval),
	}, nil
}
