package core

import "time"

// RetryPolicy is the unified retransmission discipline for every timer
// that re-sends protocol messages while peers keep a node waiting: the
// servers' round-phase casts, the roster phase's propose/cert
// rebroadcast, and the clients' stale-submission resend. Delays grow
// exponentially from Base by Factor up to Cap, with a deterministic
// ±Jitter/2 fraction derived from the node identity and attempt count
// so a fleet of retransmitting nodes decorrelates instead of storming
// in lockstep after a partition heals. The zero value takes defaults
// derived from the engine's natural period (8×Policy.WindowMin at
// servers, the legacy 2 s submit interval at clients), so existing
// deployments keep their first-retry latency and gain only the
// backoff.
type RetryPolicy struct {
	// Base is the first retransmission delay. Zero derives the
	// engine's legacy fixed period.
	Base time.Duration
	// Cap bounds the backed-off delay. Zero derives 8×Base.
	Cap time.Duration
	// Factor multiplies the delay per retry. Zero means 2; values
	// below 1 clamp to 1 (constant delay).
	Factor float64
	// Jitter is the fraction of each delay spread uniformly (and
	// deterministically, seeded by node identity) across ±Jitter/2.
	// Zero means 0.2; negative disables jitter.
	Jitter float64
}

// withDefaults resolves zero fields against the engine's legacy fixed
// period and normalizes out-of-range values.
func (p RetryPolicy) withDefaults(base time.Duration) RetryPolicy {
	if p.Base <= 0 {
		p.Base = base
	}
	if p.Base <= 0 {
		p.Base = time.Second
	}
	if p.Cap <= 0 {
		p.Cap = 8 * p.Base
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	if p.Factor == 0 {
		p.Factor = 2
	}
	if p.Factor < 1 {
		p.Factor = 1
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// delay returns the jittered delay before retransmission number
// attempt (0 = the first retry, scheduled when the message is first
// cast). seed decorrelates nodes and rounds; the same (attempt, seed)
// always yields the same delay, keeping simulations reproducible.
func (p RetryPolicy) delay(attempt int, seed uint64) time.Duration {
	d := float64(p.Base)
	cap := float64(p.Cap)
	for i := 0; i < attempt && d < cap; i++ {
		d *= p.Factor
	}
	if d > cap {
		d = cap
	}
	if p.Jitter > 0 {
		u := splitmix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
		frac := float64(u>>11) / float64(1<<53) // uniform [0,1)
		d *= 1 + p.Jitter*(frac-0.5)
	}
	return time.Duration(d)
}

// splitmix64 is the standard 64-bit finalizer used for deterministic
// jitter; it is not cryptographic and does not need to be.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
