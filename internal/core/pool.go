package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// bufPool recycles round-vector-sized byte buffers (client message
// vectors and ciphertexts, server pad accumulators, shares, and
// cleartexts). Round vectors dominate steady-state allocation — O(L)
// per client per round, O(N·L) per server per round — and their size is
// sticky (sched.Len() changes only when slots open/close), so a
// sync.Pool turns them into near-zero garbage.
//
// Ownership rule: a buffer may be put back only by the engine that got
// it, and only once nothing else aliases it — for buffers recorded in
// roundHistory that means at history eviction, not at round certify.
type bufPool struct {
	p sync.Pool
}

// get returns a zeroed buffer of length n.
func (bp *bufPool) get(n int) []byte {
	if v, ok := bp.p.Get().(*[]byte); ok && cap(*v) >= n {
		b := (*v)[:n]
		clear(b)
		return b
	}
	return make([]byte, n)
}

// put recycles a buffer. nil (or zero-capacity) buffers are ignored so
// callers can pass optional fields unconditionally.
func (bp *bufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp.p.Put(&b)
}

// padPrefetch is one in-flight background pad expansion at a server:
// launched when a round's submission window opens, consumed (or
// discarded) when the window closes. The goroutine writes only buf and
// then closes done; the engine reads buf only after receiving done, so
// the handoff is race-free.
type padPrefetch struct {
	round   uint64 // round the pad was expanded for
	version uint64 // roster version at launch (invalidates across churn)
	clients []int  // client indices covered, ascending
	buf     []byte // ⊕_i PRNG(K_i, round) over clients, pooled
	done    chan struct{}
}

// perfCounters is the lock-free timing record behind PerfStats.
// Engines run single-threaded, but metrics snapshots come from other
// goroutines, hence atomics.
type perfCounters struct {
	padNanos       atomic.Int64
	combineNanos   atomic.Int64
	prefetchHits   atomic.Uint64
	prefetchMisses atomic.Uint64
	// accAdjusts counts ciphertexts XORed out of (or into) the share to
	// reconcile the streaming accumulator with the deduped direct set —
	// normally zero; nonzero means stragglers or duplicates were
	// reconciled.
	accAdjusts atomic.Uint64
	// roundsInFlight gauges the pipeline occupancy: how many rounds are
	// currently between window open and retirement.
	roundsInFlight atomic.Int64
}

func (p *perfCounters) addPad(d time.Duration)     { p.padNanos.Add(int64(d)) }
func (p *perfCounters) addCombine(d time.Duration) { p.combineNanos.Add(int64(d)) }
func (p *perfCounters) setRoundsInFlight(n int)    { p.roundsInFlight.Store(int64(n)) }

// PerfStats is a point-in-time snapshot of an engine's data-plane
// timings, surfaced per session by the SDK's Metrics.
type PerfStats struct {
	// PadCompute is cumulative time spent expanding DC-net pad streams
	// on the critical path: for servers, the residual pad work at
	// window close (waiting out an unfinished prefetch included); for
	// clients, ciphertext construction at submit.
	PadCompute time.Duration
	// Combine is cumulative server combine latency: folding client
	// ciphertexts into the share and assembling the cleartext from the
	// M shares. Zero for clients.
	Combine time.Duration
	// PrefetchHits counts rounds served from a prefetched pad (servers)
	// or prefetched streams (clients); PrefetchMisses counts rounds
	// that had to expand on the critical path instead.
	PrefetchHits, PrefetchMisses uint64
	// RoundsInFlight is the current pipeline occupancy: rounds between
	// window open and retirement. At PipelineDepth 1 it is 0 or 1.
	RoundsInFlight int
}

// snapshot renders the counters as a PerfStats.
func (p *perfCounters) snapshot() PerfStats {
	return PerfStats{
		PadCompute:     time.Duration(p.padNanos.Load()),
		Combine:        time.Duration(p.combineNanos.Load()),
		PrefetchHits:   p.prefetchHits.Load(),
		PrefetchMisses: p.prefetchMisses.Load(),
		RoundsInFlight: int(p.roundsInFlight.Load()),
	}
}
