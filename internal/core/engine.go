package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
	"dissent/internal/obs"
)

// Envelope is one outbound message with its destination.
type Envelope struct {
	To  group.NodeID
	Msg *Message
}

// EventKind classifies engine events surfaced to the application.
type EventKind int

// Event kinds.
const (
	// EventScheduleReady fires when the slot schedule is established.
	EventScheduleReady EventKind = iota + 1
	// EventRoundComplete fires at a server when a round certifies.
	EventRoundComplete
	// EventRoundFailed fires when a round hits the hard timeout.
	EventRoundFailed
	// EventDisruptionDetected fires at a client whose slot was garbled.
	EventDisruptionDetected
	// EventBlameStarted fires when an accusation shuffle begins.
	EventBlameStarted
	// EventBlameVerdict fires when tracing identifies a disruptor.
	EventBlameVerdict
	// EventProtocolViolation fires when a signed message fails
	// verification or a shuffle proof is invalid.
	EventProtocolViolation
	// EventWindowClosed fires at a server when it closes a round's
	// submission window — the boundary between "client submission" and
	// "server processing" time in the paper's Figures 7–8.
	EventWindowClosed
	// EventEpochRotated fires when a node crosses an epoch boundary and
	// re-derives the slot permutation from the randomness beacon.
	EventEpochRotated
	// EventMemberJoined fires when a certified roster update admits a
	// member (new joiner or re-admitted expellee); Culprit carries the
	// member's ID.
	EventMemberJoined
	// EventMemberExpelled fires when a certified roster update removes a
	// member; Culprit carries the member's ID.
	EventMemberExpelled
	// EventRosterChanged fires whenever a certified roster update is
	// applied; Detail carries the new version.
	EventRosterChanged
	// EventStateRestored fires when a restarted server resumes a live
	// session from its durable state store instead of running setup.
	EventStateRestored
	// EventReplicaResynced fires when a client replaces its diverged
	// schedule replica with a certified snapshot from its upstream
	// server (the forced re-sync after a schedule-digest mismatch or a
	// catch-up past the retained roster history).
	EventReplicaResynced
	// EventMisbehavior fires when a server attributes a protocol
	// violation to a specific roster member: Culprit names the peer
	// and Detail is "<kind>: <cause>", where kind is a stable label
	// (bad-signature, malformed, equivocation, bad-certificate,
	// withholding, replay, flood, escalated). Repeated misbehavior
	// past the escalation threshold queues a client for certified
	// removal at the next epoch boundary.
	EventMisbehavior
)

func (k EventKind) String() string {
	switch k {
	case EventScheduleReady:
		return "schedule-ready"
	case EventRoundComplete:
		return "round-complete"
	case EventRoundFailed:
		return "round-failed"
	case EventDisruptionDetected:
		return "disruption-detected"
	case EventBlameStarted:
		return "blame-started"
	case EventBlameVerdict:
		return "blame-verdict"
	case EventProtocolViolation:
		return "protocol-violation"
	case EventWindowClosed:
		return "window-closed"
	case EventEpochRotated:
		return "epoch-rotated"
	case EventMemberJoined:
		return "member-joined"
	case EventMemberExpelled:
		return "member-expelled"
	case EventRosterChanged:
		return "roster-changed"
	case EventStateRestored:
		return "state-restored"
	case EventReplicaResynced:
		return "replica-resynced"
	case EventMisbehavior:
		return "misbehavior"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is a notable state transition.
type Event struct {
	Kind  EventKind
	Round uint64
	// Culprit names the member an event concerns: the disruptor for
	// blame verdicts, the joined/expelled member for roster events.
	Culprit group.NodeID
	Detail  string
}

// PeerInfo announces a newly admitted member's transport address so
// address-based fabrics (TCP) can attach it mid-session.
type PeerInfo struct {
	ID   group.NodeID
	Addr string
}

// Delivery is one decoded anonymous message handed to the application:
// slot identifies the anonymous sender's pseudonym slot, not a client.
type Delivery struct {
	Round uint64
	Slot  int
	Data  []byte
}

// Output aggregates everything an engine produced during one call.
type Output struct {
	// Send lists messages to transmit.
	Send []Envelope
	// Timer requests a Tick at (or soon after) the given time; zero
	// means no timer is needed.
	Timer time.Time
	// Deliveries are decoded slot messages (clients and servers both
	// observe the anonymous channel's cleartext).
	Deliveries []Delivery
	// Events are notable transitions.
	Events []Event
	// NewPeers lists members admitted by a roster update this call,
	// with their transport addresses. The I/O layer must register them
	// with the fabric before transmitting Send (the welcome message to
	// a joiner needs its address already routable).
	NewPeers []PeerInfo
}

func (o *Output) merge(other *Output) {
	if other == nil {
		return
	}
	o.Send = append(o.Send, other.Send...)
	o.Deliveries = append(o.Deliveries, other.Deliveries...)
	o.Events = append(o.Events, other.Events...)
	o.NewPeers = append(o.NewPeers, other.NewPeers...)
	if o.Timer.IsZero() || (!other.Timer.IsZero() && other.Timer.Before(o.Timer)) {
		o.Timer = other.Timer
	}
}

// StateStore is the durable key-value surface the engines persist
// protocol state through — satisfied by *store.KV. Mutations must be
// durable before they return. The engines use fixed buckets: "roster"
// for certified roster updates keyed by version, "roster-digest" for
// the post-apply schedule digests beside them, "blame" for completed
// blame-session transcripts, and "snapshot" for the server's restart
// snapshot.
type StateStore interface {
	Put(bucket, key string, value []byte) error
	Get(bucket, key string) ([]byte, bool)
	List(bucket string) []string
	Delete(bucket, key string) error
}

// StateStore bucket names.
const (
	bucketRoster       = "roster"
	bucketRosterDigest = "roster-digest"
	bucketBlame        = "blame"
	bucketSnapshot     = "snapshot"
)

// snapshotKey names the single server restart snapshot record.
const snapshotKey = "server"

// HasSnapshot reports whether st holds a server restart snapshot —
// i.e. whether a server session can resume from it.
func HasSnapshot(st StateStore) bool {
	if st == nil {
		return false
	}
	_, ok := st.Get(bucketSnapshot, snapshotKey)
	return ok
}

// versionKey renders a roster version as a fixed-width store key so
// the store's sorted key listing is numeric version order.
func versionKey(v uint64) string { return fmt.Sprintf("%020d", v) }

// node is state common to client and server engines.
type node struct {
	def     *group.Definition
	grpID   [32]byte
	keyGrp  crypto.Group // identity/pseudonym key group (P-256)
	msgGrp  crypto.Group // message shuffle group (modp-2048 by default)
	kp      *crypto.KeyPair
	id      group.NodeID
	rand    io.Reader
	prng    crypto.PRNGMaker
	signing bool

	// beaconChain is this node's replica of the anytrust randomness
	// beacon (nil when Policy.BeaconEpochRounds is 0). Servers extend
	// it through the round protocol's commit–reveal; clients extend it
	// from certified round outputs.
	beaconChain *beacon.Chain

	// store is the durable state store (nil = memory-only operation;
	// catch-up then serves only the in-memory roster log and restart
	// recovery is unavailable).
	store StateStore

	// trace receives one span record per completed round (nil = off);
	// log carries the engine's structured logger (never nil — a discard
	// handler when the embedder injects none).
	trace func(obs.RoundTrace)
	log   *slog.Logger

	// interdict is the adversary-injection hook (nil on honest nodes);
	// retrySeed feeds the retransmission policy's deterministic jitter,
	// derived from the node identity so peers decorrelate.
	interdict *Interdict
	retrySeed uint64
}

func newNode(def *group.Definition, kp *crypto.KeyPair, opts Options) node {
	msgGrp := opts.MessageGroup
	if msgGrp == nil {
		msgGrp = crypto.ModP2048()
	}
	prng := opts.PRNG
	if prng == nil {
		prng = crypto.NewAESPRNG
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	n := node{
		def:     def,
		grpID:   def.GroupID(),
		keyGrp:  def.Group(),
		msgGrp:  msgGrp,
		kp:      kp,
		id:      group.IDFromKey(def.Group(), kp.Public),
		rand:    opts.Rand,
		prng:    prng,
		signing: def.Policy.SignMessages,
		store:   opts.StateStore,
		trace:   opts.OnRoundTrace,
		log:     logger,
	}
	n.interdict = opts.Interdict
	n.retrySeed = binary.BigEndian.Uint64(n.id[:8])
	if def.Policy.BeaconEpochRounds > 0 {
		pubs := def.ServerPubKeys()
		genesis := beacon.GenesisValue(n.grpID)
		if opts.BeaconStore != nil {
			n.beaconChain = beacon.NewChainWithStore(n.keyGrp, pubs, genesis, opts.BeaconStore)
		} else {
			n.beaconChain = beacon.NewChain(n.keyGrp, pubs, genesis)
		}
	}
	return n
}

// BeaconChain returns the node's beacon chain replica, or nil when the
// beacon is disabled by policy. The chain is safe for concurrent
// reads, so servers can expose it over HTTP while rounds progress.
func (n *node) BeaconChain() *beacon.Chain { return n.beaconChain }

// bindBeaconSession rebinds the node's (still empty) beacon chain to
// the session genesis derived from the freshly certified schedule's
// digest. Every node runs this with identical inputs — servers from
// their collected certificates, clients from the verified Schedule
// message — so all replicas agree on the new genesis before the first
// entry. Trusted-bootstrap paths (InstallSchedule) certify nothing and
// keep the group-wide genesis.
func (n *node) bindBeaconSession(certDigest [32]byte) error {
	if n.beaconChain == nil {
		return nil
	}
	return n.beaconChain.Rebind(beacon.SessionGenesis(n.grpID, certDigest))
}

// installRotation wires the beacon-driven epoch rotation into a fresh
// schedule: every BeaconEpochRounds rounds the slot permutation is
// re-derived from the latest beacon value. All replicas install the
// same hook over identical chains, so layouts stay in lockstep.
func (n *node) installRotation(sched *dcnet.Schedule) {
	if n.beaconChain == nil {
		return
	}
	sched.SetEpochRotation(uint64(n.def.Policy.BeaconEpochRounds), func(round uint64) []byte {
		if e := n.beaconChain.Latest(); e != nil {
			return e.Value[:]
		}
		return nil // no beacon output yet: keep the current permutation
	})
}

// beaconValueBytes renders an entry's value for certification (nil
// entry -> nil, for failed rounds and beacon-off groups).
func beaconValueBytes(e *beacon.Entry) []byte {
	if e == nil {
		return nil
	}
	return e.Value[:]
}

// Options tunes engine construction.
type Options struct {
	// Rand is the randomness source (nil = crypto/rand).
	Rand io.Reader
	// PRNG builds DC-net streams (nil = crypto.NewAESPRNG; benchmarks
	// may pass crypto.NewFastPRNG, see internal/bench).
	PRNG crypto.PRNGMaker
	// MessageGroup is the accusation-shuffle group (nil = modp-2048).
	// Tests substitute a small Schnorr group for speed.
	MessageGroup crypto.Group
	// PairSeed, when non-nil, supplies the (clientIdx, serverIdx)
	// pairwise DC-net seed directly instead of deriving it from a
	// Diffie–Hellman exchange. Benchmark harnesses use this to skip
	// O(N·M) scalar multiplications at setup; both sides must use the
	// same function. Production deployments leave it nil.
	PairSeed func(clientIdx, serverIdx int) []byte
	// BeaconStore backs the node's beacon chain (nil = in-memory).
	// cmd/dissentd passes a beacon.KVStore over the node's embedded
	// state store for durable, checkpointable chains.
	BeaconStore beacon.Store
	// StateStore backs the engine's durable protocol state: the
	// certified roster-update log (with post-apply schedule digests),
	// blame transcripts, and the server restart snapshot. nil keeps
	// everything in memory — catch-up is then limited to the bounded
	// in-memory roster log and crash recovery is unavailable.
	StateStore StateStore
	// PadWorkers bounds the DC-net pad expansion worker pool at servers
	// (0 = GOMAXPROCS). Each worker expands a shard of the per-client
	// streams into a private lane; see dcnet.ParallelPad.
	PadWorkers int
	// NoPadPrefetch disables the servers' background pad expansion
	// during the submission window. The benchmark harness sets it so
	// its calibrated per-call compute accounting stays well-defined;
	// production deployments leave it off.
	NoPadPrefetch bool
	// PipelineDepth is how many DC-net rounds may be in flight at once
	// (0 or 1 = serial). At depth d, round r+1's submission window opens
	// the moment round r's collection closes, overlapping r's pad/
	// combine/certify work with r+1's collection; clients submit into
	// r+1 while still awaiting r's certified output. Every node in a
	// group MUST use the same depth — the schedule's lagged layout
	// (layout for round k excludes the d−1 most recent rounds' deltas)
	// is part of the replicated state. The pipeline drains to empty at
	// epoch boundaries and before accusation shuffles.
	PipelineDepth int
	// Retry tunes the unified retransmission backoff applied to the
	// servers' round-phase and roster-phase rebroadcasts and the
	// clients' stale-submission resend. nil (or the zero value) keeps
	// the engines' legacy first-retry delays — 8×Policy.WindowMin at
	// servers, 2 s at clients — and adds capped exponential backoff
	// with deterministic jitter on top, so sustained loss or a wedged
	// peer triggers a decaying retransmit stream instead of a fixed-
	// period storm.
	Retry *RetryPolicy
	// Interdict installs the adversary-injection hook (see Interdict).
	// Robustness tests and the internal/adversary catalog use it to
	// script byzantine members; production nodes leave it nil.
	Interdict *Interdict
	// OnRoundTrace, when non-nil, receives one obs.RoundTrace per
	// completed round — the engine's phase timestamps as a span record.
	// It runs on the engine's calling goroutine and must be fast and
	// non-blocking; the SDK wires it to a bounded per-session ring and
	// the phase-latency histograms.
	OnRoundTrace func(obs.RoundTrace)
	// Logger receives the engine's structured logs (round milestones at
	// Debug, blame verdicts at Info). nil discards them.
	Logger *slog.Logger
}

// sign builds a Message, signing it when the policy requires.
func (n *node) sign(t MsgType, round uint64, body []byte) (*Message, error) {
	m := &Message{From: n.id, Type: t, Round: round, Body: body}
	if n.signing {
		sig, err := n.kp.Sign("dissent/msg", signedBytes(n.grpID, m), n.rand)
		if err != nil {
			return nil, err
		}
		m.Sig = crypto.EncodeSignature(n.keyGrp, sig)
	}
	return m, nil
}

// verify checks a message's signature against the sender's registered
// key and confirms the sender holds the expected role.
func (n *node) verify(m *Message, wantServer bool) error {
	var pub crypto.Element
	if si := n.def.ServerIndex(m.From); si >= 0 {
		if !wantServer {
			return fmt.Errorf("core: %s from server %s not allowed", m.Type, m.From)
		}
		pub = n.def.Servers[si].PubKey
	} else if ci := n.def.ClientIndex(m.From); ci >= 0 {
		if wantServer {
			return fmt.Errorf("core: %s from client %s not allowed", m.Type, m.From)
		}
		pub = n.def.Clients[ci].PubKey
	} else {
		return fmt.Errorf("core: message from unknown node %s", m.From)
	}
	if !n.signing {
		return nil
	}
	sig, err := crypto.DecodeSignature(n.keyGrp, m.Sig)
	if err != nil {
		return fmt.Errorf("core: %s from %s: %w", m.Type, m.From, err)
	}
	if err := crypto.Verify(n.keyGrp, pub, "dissent/msg", signedBytes(n.grpID, m), sig); err != nil {
		return fmt.Errorf("core: %s from %s: %w", m.Type, m.From, err)
	}
	return nil
}

// pairSeed derives the DC-net pairwise seed between this node and peer.
func (n *node) pairSeed(peerPub crypto.Element) ([]byte, error) {
	shared, err := n.kp.SharedSecret(peerPub)
	if err != nil {
		return nil, err
	}
	return crypto.SecretSeed(n.keyGrp, shared, n.kp.Public, peerPub), nil
}
