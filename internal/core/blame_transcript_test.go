package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dissent/internal/group"
	"dissent/internal/store"
)

// transcriptFixtures covers the codec's full shape space: every
// verdict, with and without a traced accusation, and boundary field
// values.
func transcriptFixtures() []*BlameTranscript {
	var culprit group.NodeID
	for i := range culprit {
		culprit[i] = byte(i * 7)
	}
	return []*BlameTranscript{
		{Round: 0, Verdict: 0},
		{Round: 42, Verdict: 1, Culprit: culprit,
			HasAccusation: true, AccRound: 41, AccSlot: 3, AccBit: 511},
		{Round: 1<<64 - 1, Verdict: 2, Culprit: culprit},
		{Round: 7, Verdict: 0, HasAccusation: true,
			AccRound: 6, AccSlot: 1<<32 - 1, AccBit: 0},
	}
}

func TestBlameTranscriptRoundTrip(t *testing.T) {
	for i, want := range transcriptFixtures() {
		got, err := DecodeBlameTranscript(want.Encode())
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("fixture %d round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestDecodeBlameTranscriptRejects(t *testing.T) {
	valid := transcriptFixtures()[1].Encode()
	cases := map[string][]byte{
		"empty":          nil,
		"truncated":      valid[:len(valid)-1],
		"trailing":       append(append([]byte{}, valid...), 0),
		"bad verdict":    func() []byte { b := append([]byte{}, valid...); b[8] = 3; return b }(),
		"bad acc flag":   func() []byte { b := append([]byte{}, valid...); b[9+4+8] = 2; return b }(),
		"culprit length": encodeWith(func(e *encBuf) { e.U64(1); e.U8(0); e.Bytes(make([]byte, 16)); e.U8(0) }),
	}
	for name, b := range cases {
		if _, err := DecodeBlameTranscript(b); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
}

// encodeWith is a tiny test helper to build an encoding inline.
func encodeWith(f func(*encBuf)) []byte {
	var e encBuf
	f(&e)
	return e.B
}

// TestBlameTranscriptSimNetCorpusDecodes drives a full SimNet blame
// session (the slot disruptor from TestDisruptorClientTracedAndExpelled,
// with durable stores attached) and asserts every transcript the
// servers persisted decodes through the public codec with the verdict
// the events reported. With DISSENT_UPDATE_FUZZ_CORPUS=1 it also
// refreshes FuzzBlameTranscriptDecode's seed corpus from those live
// records.
func TestBlameTranscriptSimNetCorpusDecodes(t *testing.T) {
	dir := t.TempDir()
	kvs := make([]*store.KV, 3)
	for i := range kvs {
		kv, err := store.Open(filepath.Join(dir, fmt.Sprintf("srv%d.kv", i)))
		if err != nil {
			t.Fatal(err)
		}
		kvs[i] = kv
	}
	f := newFixture(t, 3, 5, fixtureOpts{
		serverOpts: func(idx int, o *Options) { o.StateStore = kvs[idx] },
	})
	disruptor := &disruptorClient{Client: f.clients[4], victim: f.clients[0]}
	f.h.AddNode(f.clients[4].ID(), disruptor, 0)
	f.clients[0].Send(bytes.Repeat([]byte("censored speech "), 20))
	f.runUntilRound(14, 3_000_000)

	var corpus [][]byte
	decoded := 0
	for si, kv := range kvs {
		for _, key := range kv.List(bucketBlame) {
			raw, ok := kv.Get(bucketBlame, key)
			if !ok {
				t.Fatalf("server %d: blame record %q vanished", si, key)
			}
			tr, err := DecodeBlameTranscript(raw)
			if err != nil {
				t.Fatalf("server %d: persisted blame record %q does not decode: %v", si, key, err)
			}
			if tr.Verdict == 1 && tr.Culprit != f.clients[4].ID() {
				t.Errorf("server %d: transcript expels %x, want the disruptor", si, tr.Culprit[:4])
			}
			if got := BlameTranscripts(kv); len(got) == 0 {
				t.Errorf("server %d: BlameTranscripts listed nothing", si)
			}
			decoded++
			corpus = append(corpus, raw)
		}
	}
	if decoded == 0 {
		t.Fatalf("no blame transcripts were persisted; violations: %v", f.violations())
	}

	if os.Getenv("DISSENT_UPDATE_FUZZ_CORPUS") != "" {
		dir := filepath.Join("testdata", "fuzz", "FuzzBlameTranscriptDecode")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, raw := range corpus {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
			name := filepath.Join(dir, fmt.Sprintf("simnet-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d SimNet-derived corpus seeds to %s", len(corpus), dir)
	}
}

// FuzzBlameTranscriptDecode hammers the persisted-transcript decoder
// with hostile bytes: it must never panic, and anything it accepts
// must re-encode to the exact input (canonical form). Seeds combine
// synthetic fixtures with SimNet-derived records checked in under
// testdata/fuzz (refresh with DISSENT_UPDATE_FUZZ_CORPUS=1).
func FuzzBlameTranscriptDecode(f *testing.F) {
	for _, tr := range transcriptFixtures() {
		f.Add(tr.Encode())
	}
	valid := transcriptFixtures()[1].Encode()
	for i := 0; i <= len(valid); i += 7 {
		f.Add(valid[:i])
	}
	mut := append([]byte{}, valid...)
	mut[8] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := DecodeBlameTranscript(b)
		if err != nil {
			return
		}
		if got := tr.Encode(); !bytes.Equal(got, b) {
			t.Fatalf("accepted non-canonical encoding:\n  in %x\n out %x", b, got)
		}
	})
}
