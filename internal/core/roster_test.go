package core

import (
	"bytes"
	"testing"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
)

// stepUntilRound continues driving an already-started harness until
// every server passes the round (or the event budget runs out).
func (f *fixture) stepUntilRound(round uint64, maxEvents int64) {
	f.t.Helper()
	var steps int64
	for steps < maxEvents {
		done := true
		for _, s := range f.servers {
			if s.Round() <= round {
				done = false
				break
			}
		}
		if done {
			break
		}
		if !f.h.Net.Step() {
			break
		}
		steps++
	}
	for _, err := range f.h.Errors {
		f.t.Errorf("harness error: %v", err)
	}
	f.h.Errors = nil
}

// requestRejoin injects a client's rejoin request at current virtual
// time.
func (f *fixture) requestRejoin(c *Client) {
	f.t.Helper()
	now := f.h.Net.Now()
	out, err := c.RequestRejoin(now)
	f.h.ProcessExternal(c.ID(), now, out, err)
}

// stoppableDisruptor flips bits in a victim's slot (the §3.9 adversary)
// until its own expulsion, then behaves honestly — so a re-admission
// sticks.
type stoppableDisruptor struct {
	*Client
	victim *Client
}

func (d *stoppableDisruptor) Start(now time.Time) (*Output, error) {
	out, err := d.Client.Start(now)
	return d.mangle(out), err
}

func (d *stoppableDisruptor) Handle(now time.Time, m *Message) (*Output, error) {
	out, err := d.Client.Handle(now, m)
	return d.mangle(out), err
}

func (d *stoppableDisruptor) mangle(out *Output) *Output {
	if out == nil || d.victim.Slot() < 0 || !d.Client.ready || d.Client.expelled {
		return out
	}
	off, n := d.Client.sched.SlotRange(d.victim.Slot())
	if n == 0 {
		return out
	}
	for i, env := range out.Send {
		if env.Msg.Type != MsgClientSubmit {
			continue
		}
		sub, err := DecodeClientSubmit(env.Msg.Body)
		if err != nil {
			continue
		}
		ct := append([]byte(nil), sub.CT...)
		target := off + dcnet.SeedLen + 12
		if target >= off+n {
			target = off + n - 1
		}
		ct[target] ^= 0xFF
		msg, err := d.Client.sign(MsgClientSubmit, env.Msg.Round, (&ClientSubmit{CT: ct}).Encode())
		if err != nil {
			continue
		}
		out.Send[i] = Envelope{To: env.To, Msg: msg}
	}
	return out
}

// TestChurnStateMachine drives the expel → cooldown → rejoin → re-admit
// state machine end to end over the harness, table-driven across
// expulsion modes (operator Expel vs blame verdict) and cooldowns.
func TestChurnStateMachine(t *testing.T) {
	const epoch = 4
	cases := []struct {
		name     string
		cooldown int
		viaBlame bool
		// runTo is how far to drive before asserting re-admission.
		runTo uint64
	}{
		{name: "api-expel-immediate-cooldown", cooldown: 0, runTo: 14},
		{name: "api-expel-cooldown-gates-boundary", cooldown: 6, runTo: 18},
		{name: "blame-expel-then-rejoin", cooldown: 0, viaBlame: true, runTo: 26},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t, 2, 4, fixtureOpts{
				mutatePolicy: func(p *group.Policy) {
					p.BeaconEpochRounds = epoch
					p.ReadmitCooldownRounds = tc.cooldown
					p.Alpha = 0.5
					p.WindowThreshold = 0.6
				},
			})
			culpritIdx := 3
			culprit := f.clients[culpritIdx]
			if tc.viaBlame {
				d := &stoppableDisruptor{Client: culprit, victim: f.clients[0]}
				f.h.AddNode(culprit.ID(), d, 0)
				f.clients[0].Send(bytes.Repeat([]byte("victim speech "), 20))
			}

			f.h.StartAll()
			f.stepUntilRound(1, 500_000)
			if !tc.viaBlame {
				// Operator policy: expel on one server only; the proposal
				// exchange spreads it.
				if err := f.servers[0].Expel(culprit.ID()); err != nil {
					t.Fatal(err)
				}
				// Before the boundary nothing changes anywhere.
				if f.servers[1].Excluded(culpritIdx) || culprit.Expelled() {
					t.Fatal("expulsion leaked before the epoch boundary")
				}
			}

			// Drive until the expulsion lands (boundary for API expel,
			// verdict + boundary for blame).
			expelledAt := uint64(0)
			budget := int64(3_000_000)
			for f.servers[0].Round() < tc.runTo && !f.servers[0].Excluded(culpritIdx) {
				if !f.h.Net.Step() || budget == 0 {
					break
				}
				budget--
			}
			f.stepUntilRound(f.servers[0].Round(), 100_000) // settle in-flight traffic
			for _, s := range f.servers {
				if !s.Excluded(culpritIdx) {
					t.Fatalf("server %d did not exclude the culprit; violations: %v",
						s.Index(), f.violations())
				}
			}
			expelledAt = f.servers[0].Round()

			// The expelled client stops submitting but keeps its replicas
			// advancing; all roster versions agree after the boundary.
			if !culprit.Expelled() {
				// A blame verdict reaches the client via MsgBlameDone, an
				// API expulsion via MsgRosterUpdate; give in-flight
				// messages a moment.
				f.stepUntilRound(expelledAt+1, 400_000)
			}
			if !culprit.Expelled() {
				t.Fatal("culprit engine does not consider itself expelled")
			}

			// Rejoin: request now; admission waits for cooldown + boundary.
			f.requestRejoin(culprit)
			f.stepUntilRound(tc.runTo, 3_000_000)

			for _, s := range f.servers {
				if s.Excluded(culpritIdx) {
					t.Fatalf("server %d still excludes the culprit at round %d (version %d)",
						s.Index(), s.Round(), s.RosterVersion())
				}
				if s.Definition().Clients[culpritIdx].Expelled {
					t.Fatalf("roster flag still expelled at server %d", s.Index())
				}
			}
			if culprit.Expelled() {
				t.Fatal("culprit engine still expelled after re-admission")
			}

			// Cooldown actually gated the earliest re-admission boundary.
			joined := f.h.EventsOf(EventMemberJoined)
			var joinRound uint64
			for _, e := range joined {
				if e.Culprit == culprit.ID() && f.def.ServerIndex(e.Node) >= 0 {
					joinRound = e.Round
					break
				}
			}
			if joinRound == 0 {
				t.Fatalf("no member-joined event for the culprit; events: %v", joined)
			}
			if joinRound%epoch != 0 {
				t.Fatalf("re-admission at round %d, not an epoch boundary", joinRound)
			}
			var expelEvent uint64
			for _, e := range f.h.EventsOf(EventMemberExpelled) {
				if e.Culprit == culprit.ID() && f.def.ServerIndex(e.Node) >= 0 {
					expelEvent = e.Round
					break
				}
			}
			if tc.cooldown > 0 && joinRound < expelEvent+uint64(tc.cooldown) {
				t.Fatalf("re-admitted at round %d, before cooldown %d from expulsion at %d",
					joinRound, tc.cooldown, expelEvent)
			}

			// Roster versions advanced monotonically and agree everywhere.
			v := f.servers[0].RosterVersion()
			if v == 0 {
				t.Fatal("roster version never advanced")
			}
			for _, s := range f.servers[1:] {
				if s.RosterVersion() != v {
					t.Fatalf("server versions diverge: %d vs %d", s.RosterVersion(), v)
				}
			}

			// The re-admitted client communicates again.
			culprit.Send([]byte("back in the group"))
			f.stepUntilRound(f.servers[0].Round()+2*epoch, 2_000_000)
			found := false
			for _, d := range f.h.Deliveries {
				if string(d.Data) == "back in the group" {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("re-admitted client's message never delivered; violations: %v", f.violations())
			}
		})
	}
}

// TestJoinerAdmittedMidSession admits a brand-new member into a live
// session: allowlisted on its contact server, proposed at the next
// boundary, bootstrapped from the upstream server's welcome snapshot,
// and anonymously communicating afterwards.
func TestJoinerAdmittedMidSession(t *testing.T) {
	const epoch = 4
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.5
		},
	})
	keyGrp := crypto.P256()
	joinKP, _ := crypto.GenerateKeyPair(keyGrp, nil)
	joiner, err := NewJoinerClient(f.def, joinKP, "", Options{MessageGroup: crypto.ModP512Test()})
	if err != nil {
		t.Fatal(err)
	}
	f.h.AddNode(joiner.ID(), joiner, 0)

	// Closed admission: the contact server (definition server 0) must
	// pre-approve the key.
	contact := f.servers[0]
	contact.Admit(keyGrp.Encode(joinKP.Public))

	f.h.StartAll()
	f.stepUntilRound(3*epoch, 3_000_000)

	if !joiner.Ready() {
		t.Fatalf("joiner not bootstrapped after %d rounds; violations: %v", 3*epoch, f.violations())
	}
	ji := f.servers[0].Definition().ClientIndex(joiner.ID())
	if ji < 0 {
		t.Fatal("joiner missing from the server roster")
	}
	for _, s := range f.servers {
		if s.RosterVersion() == 0 {
			t.Fatalf("server %d roster version never advanced", s.Index())
		}
		if s.Definition().ClientIndex(joiner.ID()) != ji {
			t.Fatalf("joiner index inconsistent across servers")
		}
	}
	for _, c := range f.clients {
		if c.Definition().ClientIndex(joiner.ID()) != ji {
			t.Fatalf("client %d roster replica lacks the joiner", c.Index())
		}
	}

	// The joiner's slot works: send and observe delivery everywhere.
	joiner.Send([]byte("hello from the joiner"))
	f.stepUntilRound(f.servers[0].Round()+2*epoch, 2_000_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "hello from the joiner" {
			if d.Slot != joiner.Slot() {
				t.Fatalf("joiner delivery in slot %d, want %d", d.Slot, joiner.Slot())
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("joiner message never delivered; violations: %v", f.violations())
	}

	// Existing clients' schedules grew in lockstep.
	if got := f.servers[0].sched.NumSlots(); got != 4 {
		t.Fatalf("server schedule has %d slots, want 4", got)
	}
	for _, c := range f.clients {
		if got := c.sched.NumSlots(); got != 4 {
			t.Fatalf("client %d schedule has %d slots, want 4", c.Index(), got)
		}
	}
}

// TestJoinerRecoversFromLostWelcome drops the joiner's first
// JoinWelcome frame: the joiner's retry loop must obtain a fresh
// welcome (served by whichever server the retry reaches — here the
// contact server, which is NOT the joiner's assigned upstream, since
// the new member's index is 3 and 3 mod 2 = server 1) and bootstrap
// anyway.
func TestJoinerRecoversFromLostWelcome(t *testing.T) {
	const epoch = 4
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.5
			p.OpenAdmission = true
		},
	})
	keyGrp := crypto.P256()
	joinKP, _ := crypto.GenerateKeyPair(keyGrp, nil)
	joiner, err := NewJoinerClient(f.def, joinKP, "", Options{MessageGroup: crypto.ModP512Test()})
	if err != nil {
		t.Fatal(err)
	}
	f.h.AddNode(joiner.ID(), joiner, 0)

	dropped := 0
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if m.Type == MsgJoinWelcome && dropped == 0 {
			dropped++
			return 0, true
		}
		return 0, false
	}

	f.h.StartAll()
	f.stepUntilRound(4*epoch, 4_000_000)
	if dropped == 0 {
		t.Fatal("no welcome was ever sent (admission never happened)")
	}
	if !joiner.Ready() {
		t.Fatalf("joiner did not recover from the lost welcome; violations: %v", f.violations())
	}
	joiner.Send([]byte("recovered joiner"))
	f.stepUntilRound(f.servers[0].Round()+2*epoch, 2_000_000)
	found := false
	for _, d := range f.h.Deliveries {
		if string(d.Data) == "recovered joiner" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("recovered joiner's message never delivered; violations: %v", f.violations())
	}
}

// TestRosterPhaseRecoversFromLostCert drops one server's roster
// certificate to a peer at a boundary: the stuck peer's rosterTick
// rebroadcast must trigger a certified-update replay from the
// completed server, unwedging the whole session.
func TestRosterPhaseRecoversFromLostCert(t *testing.T) {
	const epoch = 3
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = epoch },
	})
	// Drop the first MsgRosterCert from server 0 to server 1: server 0
	// still completes (it gets server 1's cert), server 1 wedges until
	// the replay path kicks in.
	srv0 := f.servers[0].ID()
	srv1 := f.servers[1].ID()
	dropped := 0
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		if m.Type == MsgRosterCert && from == srv0 && dropped == 0 {
			dropped++
			return 0, true
		}
		return 0, false
	}
	// The dropped cert is addressed to server 1 only in a 2-server
	// group, so the scenario is exact.
	_ = srv1

	f.h.StartAll()
	f.stepUntilRound(3*epoch, 4_000_000)
	if dropped == 0 {
		t.Fatal("no roster certificate was ever dropped (no boundary reached)")
	}
	for _, s := range f.servers {
		if s.Round() <= 3*epoch {
			t.Fatalf("server %d stuck at round %d after a lost roster cert; violations: %v",
				s.Index(), s.Round(), f.violations())
		}
	}
	v := f.servers[0].RosterVersion()
	if v == 0 || f.servers[1].RosterVersion() != v {
		t.Fatalf("versions diverged after recovery: %d vs %d", v, f.servers[1].RosterVersion())
	}
}

// TestStaleRosterVersionMessagesRejected feeds stale-version roster
// traffic to live engines and asserts each is rejected as a protocol
// violation without corrupting state. Signatures are disabled so the
// test can forge sender identities; version checks run either way.
func TestStaleRosterVersionMessagesRejected(t *testing.T) {
	const epoch = 3
	f := newFixture(t, 2, 3, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.SignMessages = false
		},
	})
	f.h.StartAll()
	f.stepUntilRound(2*epoch, 2_000_000) // at least two boundaries: version >= 2
	now := f.h.Net.Now()
	srv := f.servers[0]
	cl := f.clients[0]
	peer := f.servers[1].ID()
	if srv.RosterVersion() < 2 {
		t.Fatalf("roster version %d after two boundaries", srv.RosterVersion())
	}

	countViolations := func(out *Output) int {
		n := 0
		for _, e := range out.Events {
			if e.Kind == EventProtocolViolation {
				n++
			}
		}
		return n
	}

	countReplays := func(out *Output) int {
		n := 0
		for _, env := range out.Send {
			if env.Msg.Type == MsgRosterUpdate {
				n++
			}
		}
		return n
	}

	t.Run("stale propose at server", func(t *testing.T) {
		// A stale proposal is never processed as a proposal (the version
		// it targets is already certified); the peer gets the certified
		// chain replayed so it can recover.
		before := srv.RosterVersion()
		stale := &RosterPropose{Version: before} // must be current+1
		out, err := srv.Handle(now, &Message{From: peer, Type: MsgRosterPropose,
			Round: srv.Round(), Body: stale.Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if srv.RosterVersion() != before || srv.roster != nil {
			t.Fatal("stale proposal mutated roster state")
		}
		if countReplays(out) == 0 {
			t.Fatal("stale proposal got no catch-up replay")
		}
	})

	t.Run("stale cert at server", func(t *testing.T) {
		before := srv.RosterVersion()
		stale := &RosterCert{Version: before - 1, Sig: []byte("sig")}
		out, err := srv.Handle(now, &Message{From: peer, Type: MsgRosterCert,
			Round: srv.Round(), Body: stale.Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if srv.RosterVersion() != before || srv.roster != nil {
			t.Fatal("stale certificate mutated roster state")
		}
		if countReplays(out) == 0 {
			t.Fatal("stale certificate got no catch-up replay")
		}
	})

	t.Run("stale replayed update at server", func(t *testing.T) {
		before := srv.RosterVersion()
		staleUpdate := srv.rosterLog[before-1]
		if staleUpdate == nil {
			t.Fatal("no logged update to replay")
		}
		out, err := srv.Handle(now, &Message{From: peer, Type: MsgRosterUpdate,
			Round: srv.Round(), Body: (&RosterUpdateMsg{Update: staleUpdate.Encode()}).Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if srv.RosterVersion() != before {
			t.Fatal("stale replayed update changed the version")
		}
		if len(out.Send) != 0 {
			t.Fatal("stale replayed update triggered traffic")
		}
	})

	t.Run("stale update at client", func(t *testing.T) {
		// A replayed old version is dropped silently (it races the slow
		// original on the catch-up path); only the version is pinned.
		beforeVer := cl.RosterVersion()
		stale := &group.RosterUpdate{Version: beforeVer}
		_, err := cl.Handle(now, &Message{From: cl.def.Servers[cl.def.UpstreamServer(cl.Index())].ID,
			Type: MsgRosterUpdate, Round: cl.Round(), Body: (&RosterUpdateMsg{Update: stale.Encode()}).Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if cl.RosterVersion() != beforeVer {
			t.Fatal("stale update changed the client's roster version")
		}
	})

	t.Run("chain-gap update at client", func(t *testing.T) {
		// A version we cannot chain to (we missed an intermediate) is a
		// rejection the application should see.
		beforeVer := cl.RosterVersion()
		gap := &group.RosterUpdate{Version: beforeVer + 3}
		out, err := cl.Handle(now, &Message{From: cl.def.Servers[cl.def.UpstreamServer(cl.Index())].ID,
			Type: MsgRosterUpdate, Round: cl.Round(), Body: (&RosterUpdateMsg{Update: gap.Encode()}).Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if countViolations(out) == 0 {
			t.Fatal("chain-gap roster update accepted silently")
		}
		if cl.RosterVersion() != beforeVer {
			t.Fatal("chain-gap update changed the client's roster version")
		}
	})

	t.Run("version-behind member gets catch-up replay", func(t *testing.T) {
		// An active member that lost a roster update probes with its old
		// version; besides the stale-version violation, the server must
		// replay the missed certified updates so the member can unwedge.
		stale := &JoinRequest{Version: srv.RosterVersion() - 2}
		out, err := srv.Handle(now, &Message{From: f.clients[1].ID(), Type: MsgJoinRequest,
			Round: srv.Round(), Body: stale.Encode()})
		if err != nil {
			t.Fatal(err)
		}
		replayed := 0
		for _, env := range out.Send {
			if env.Msg.Type == MsgRosterUpdate && env.To == f.clients[1].ID() {
				wrap, err := DecodeRosterUpdateMsg(env.Msg.Body)
				if err != nil {
					t.Fatal(err)
				}
				u, err := group.DecodeRosterUpdate(wrap.Update)
				if err != nil {
					t.Fatal(err)
				}
				if want := stale.Version + 1 + uint64(replayed); u.Version != want {
					t.Fatalf("replayed version %d, want %d (chain order)", u.Version, want)
				}
				replayed++
			}
		}
		if replayed != 2 {
			t.Fatalf("replayed %d updates, want 2", replayed)
		}
	})

	t.Run("stale rejoin request at server", func(t *testing.T) {
		// Forge an expelled state for client 2, then send a rejoin with an
		// old version number: the intent is rejected (not queued) and the
		// member is replayed the missed chain so a retry can land current.
		ci := 2
		srv.excluded[ci] = true
		defer delete(srv.excluded, ci)
		stale := &JoinRequest{Version: srv.RosterVersion() - 1, Rejoin: true}
		out, err := srv.Handle(now, &Message{From: f.clients[ci].ID(), Type: MsgJoinRequest,
			Round: srv.Round(), Body: stale.Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if srv.pendingRejoin[ci] {
			t.Fatal("stale rejoin request queued")
		}
		replayed := false
		for _, env := range out.Send {
			if env.Msg.Type == MsgRosterUpdate {
				replayed = true
			}
		}
		if !replayed {
			t.Fatal("stale rejoin got no catch-up replay")
		}
	})

	t.Run("future-version join request at server", func(t *testing.T) {
		future := &JoinRequest{Version: srv.RosterVersion() + 3, Rejoin: true}
		out, err := srv.Handle(now, &Message{From: f.clients[1].ID(), Type: MsgJoinRequest,
			Round: srv.Round(), Body: future.Encode()})
		if err != nil {
			t.Fatal(err)
		}
		if countViolations(out) == 0 {
			t.Fatal("future-version join request accepted silently")
		}
	})
}

// TestEmptyBoundariesStillAdvanceVersion pins the always-certify
// behavior: every epoch boundary produces a certified (possibly empty)
// update, so versions count boundaries and stale traffic is always
// detectable.
func TestEmptyBoundariesStillAdvanceVersion(t *testing.T) {
	const epoch = 3
	f := newFixture(t, 2, 2, fixtureOpts{
		mutatePolicy: func(p *group.Policy) { p.BeaconEpochRounds = epoch },
	})
	f.h.StartAll()
	f.stepUntilRound(3*epoch, 2_000_000)
	want := f.servers[0].Round() / epoch
	for _, s := range f.servers {
		if s.RosterVersion() < want-1 {
			t.Fatalf("server %d version %d after %d boundaries", s.Index(), s.RosterVersion(), want)
		}
	}
	changed := f.h.EventsOf(EventRosterChanged)
	if len(changed) == 0 {
		t.Fatal("no roster-changed events across boundaries")
	}
	for _, e := range changed {
		if e.Round%epoch != 0 {
			t.Fatalf("roster change at round %d, not a boundary", e.Round)
		}
	}
}
