package core

import (
	"testing"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/group"
)

// fixture wires M server and N client engines over a zero-ish-latency
// harness with the small test message group.
type fixture struct {
	t       testing.TB
	def     *group.Definition
	servers []*Server
	clients []*Client
	h       *Harness
	// kpByID/msgKPByIdx retain the identity material so restart tests
	// can rebuild an engine for an existing member.
	kpByID     map[group.NodeID]*crypto.KeyPair
	msgKPByIdx map[int]*crypto.KeyPair
}

// fixtureOpts tunes fixture construction.
type fixtureOpts struct {
	mutatePolicy func(*group.Policy)
	// mutateOpts adjusts the engine options every node is built with
	// (e.g. PipelineDepth, which must match across the group).
	mutateOpts func(*Options)
	// serverOpts adjusts one server's options after mutateOpts (e.g. a
	// per-server StateStore for restart tests). idx is the definition
	// index.
	serverOpts func(idx int, o *Options)
	// clientOpts adjusts one client's options after mutateOpts (e.g. an
	// Interdict for a scripted byzantine client).
	clientOpts func(idx int, o *Options)
	// wrapServer/wrapClient substitute a (possibly malicious) engine
	// for the node at the given definition index.
	wrapServer func(idx int, s *Server) Engine
	wrapClient func(idx int, c *Client) Engine
}

func newFixture(t testing.TB, m, n int, fo fixtureOpts) *fixture {
	t.Helper()
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test()

	serverKPs := make([]*crypto.KeyPair, m)
	serverMsgKPs := make([]*crypto.KeyPair, m)
	serverKeys := make([]crypto.Element, m)
	serverMsgKeys := make([]crypto.Element, m)
	for i := 0; i < m; i++ {
		serverKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		serverMsgKPs[i], _ = crypto.GenerateKeyPair(msgGrp, nil)
		serverKeys[i] = serverKPs[i].Public
		serverMsgKeys[i] = serverMsgKPs[i].Public
	}
	clientKPs := make([]*crypto.KeyPair, n)
	clientKeys := make([]crypto.Element, n)
	for i := 0; i < n; i++ {
		clientKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		clientKeys[i] = clientKPs[i].Public
	}

	policy := group.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.Shadows = 4
	policy.WindowMin = 10 * time.Millisecond
	policy.HardTimeout = 30 * time.Second
	policy.DefaultOpenLen = 64
	if fo.mutatePolicy != nil {
		fo.mutatePolicy(&policy)
	}

	def, err := group.NewDefinition("core-test", serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		t.Fatal(err)
	}

	// NewDefinition sorts by ID; re-associate keypairs by member order.
	kpByID := make(map[group.NodeID]*crypto.KeyPair)
	msgKPByKey := make(map[string]*crypto.KeyPair)
	for i := 0; i < m; i++ {
		kpByID[group.IDFromKey(keyGrp, serverKeys[i])] = serverKPs[i]
		msgKPByKey[string(msgGrp.Encode(serverMsgKeys[i]))] = serverMsgKPs[i]
	}
	for i := 0; i < n; i++ {
		kpByID[group.IDFromKey(keyGrp, clientKeys[i])] = clientKPs[i]
	}

	f := &fixture{t: t, def: def, h: NewHarness(),
		kpByID: kpByID, msgKPByIdx: make(map[int]*crypto.KeyPair)}
	f.h.Latency = func(from, to group.NodeID) time.Duration { return time.Millisecond }
	opts := Options{MessageGroup: msgGrp}
	if fo.mutateOpts != nil {
		fo.mutateOpts(&opts)
	}

	for i, mem := range def.Servers {
		srvOpts := opts
		if fo.serverOpts != nil {
			fo.serverOpts(i, &srvOpts)
		}
		msgKP := msgKPByKey[string(msgGrp.Encode(mem.MsgPubKey))]
		f.msgKPByIdx[i] = msgKP
		srv, err := NewServer(def, kpByID[mem.ID], msgKP, srvOpts)
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, srv)
		var eng Engine = srv
		if fo.wrapServer != nil {
			if w := fo.wrapServer(i, srv); w != nil {
				eng = w
			}
		}
		f.h.AddNode(mem.ID, eng, 0)
	}
	for i, mem := range def.Clients {
		cliOpts := opts
		if fo.clientOpts != nil {
			fo.clientOpts(i, &cliOpts)
		}
		cl, err := NewClient(def, kpByID[mem.ID], cliOpts)
		if err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, cl)
		var eng Engine = cl
		if fo.wrapClient != nil {
			if w := fo.wrapClient(i, cl); w != nil {
				eng = w
			}
		}
		f.h.AddNode(mem.ID, eng, 0)
	}
	return f
}

// run starts everything and drives the network for a bounded number of
// events, failing the test on any engine error.
func (f *fixture) run(maxEvents int64) {
	f.t.Helper()
	f.h.StartAll()
	f.h.Run(maxEvents)
	for _, err := range f.h.Errors {
		f.t.Errorf("harness error: %v", err)
	}
}

// runUntilRound drives until every server reports at least the given
// round number complete (or the event budget runs out).
func (f *fixture) runUntilRound(round uint64, maxEvents int64) {
	f.t.Helper()
	f.h.StartAll()
	var steps int64
	for steps < maxEvents {
		done := true
		for _, s := range f.servers {
			if s.Round() <= round {
				done = false
				break
			}
		}
		if done {
			break
		}
		if !f.h.Net.Step() {
			break
		}
		steps++
	}
	for _, err := range f.h.Errors {
		f.t.Errorf("harness error: %v", err)
	}
}

// violations returns all protocol-violation events for debugging.
func (f *fixture) violations() []TimedEvent {
	return f.h.EventsOf(EventProtocolViolation)
}
