package core

import (
	"bytes"
	"testing"
	"time"

	"dissent/internal/group"
)

// TestLateSubmissionReconciledByAccumulatorDiff drives the streaming
// combine's correction path: one client's ciphertext always arrives
// after its upstream server broadcast the round inventory (but before
// the commit), so it lands in the accumulator without being part of the
// server's direct set. The commit-time diff must XOR it back out, or
// every round's cleartext would be garbage.
func TestLateSubmissionReconciledByAccumulatorDiff(t *testing.T) {
	f := newFixture(t, 2, 4, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.Alpha = 0.5
			p.WindowThreshold = 0.5
		},
	})
	late := f.clients[3].ID()
	f.h.Outbound = func(from group.NodeID, m *Message) (time.Duration, bool) {
		switch {
		case m.Type == MsgClientSubmit && from == late:
			// Past the window close (~10 ms) but before the delayed
			// inventory exchange completes.
			return 11 * time.Millisecond, false
		case m.Type == MsgInventory:
			// Hold the inventory exchange open (12 ms) so the late ciphertext
			// arrives while the round is still in the inventory phase.
			return 12 * time.Millisecond, false
		}
		return 0, false
	}
	msg := []byte("on time despite the straggler")
	f.clients[0].Send(msg)
	f.runUntilRound(4, 800_000)

	if len(f.h.EventsOf(EventRoundFailed)) != 0 {
		t.Fatalf("rounds failed; violations: %v", f.violations())
	}
	if n := len(f.violations()); n != 0 {
		t.Fatalf("%d protocol violations: %v", n, f.violations())
	}
	found := false
	for _, d := range f.h.Deliveries {
		if d.Node == f.servers[0].ID() && bytes.Equal(d.Data, msg) {
			found = true
		}
	}
	if !found {
		t.Fatal("delivery lost — late ciphertext was not XORed back out of the share")
	}
	// The straggler must have been accumulated-then-reconciled at least
	// once: the servers never count it as a participant.
	if p := f.servers[0].Participation(); p != 3 {
		t.Fatalf("participation %d, want 3 (late client reconciled out)", p)
	}
	var adjusts uint64
	for _, s := range f.servers {
		adjusts += s.perf.accAdjusts.Load()
	}
	if adjusts == 0 {
		t.Fatal("reconcile path never ran — the late ciphertext missed the accumulator entirely")
	}
}

// TestPadPrefetchSurvivesEpochChurn runs epoch rotations plus a roster
// admission with the background prefetcher on (the fixture default):
// the boundary reshapes the schedule and bumps the roster version, so
// any pad prefetched under the old roster must be invalidated, and the
// next rounds must still produce decodable output. Run with -race in
// CI: the prefetch goroutine and the engine share the round's buffers
// across the handoff.
func TestPadPrefetchSurvivesEpochChurn(t *testing.T) {
	const epoch = 3
	f := newFixture(t, 2, 4, fixtureOpts{
		mutatePolicy: func(p *group.Policy) {
			p.BeaconEpochRounds = epoch
			p.Alpha = 0.5
			p.WindowThreshold = 0.6
		},
	})
	f.h.StartAll()
	f.stepUntilRound(1, 500_000)
	// Queue an operator expulsion so the next boundary carries a
	// non-empty roster update (version bump + permutation reseed).
	if err := f.servers[0].Expel(f.clients[3].ID()); err != nil {
		t.Fatal(err)
	}
	msg := []byte("across the boundary")
	f.clients[1].Send(msg)
	f.stepUntilRound(2*epoch+2, 3_000_000)

	if n := len(f.violations()); n != 0 {
		t.Fatalf("%d protocol violations: %v", n, f.violations())
	}
	for _, s := range f.servers {
		if !s.Excluded(3) {
			t.Fatalf("server %d did not apply the boundary expulsion", s.Index())
		}
	}
	found := false
	for _, d := range f.h.Deliveries {
		if bytes.Equal(d.Data, msg) {
			found = true
		}
	}
	if !found {
		t.Fatal("delivery lost across the epoch boundary")
	}
	// Prefetches must have been consumed on the steady rounds.
	ps := f.servers[0].PerfStats()
	if ps.PrefetchHits == 0 {
		t.Fatalf("no prefetch hits recorded: %+v", ps)
	}
}

// TestPerfStatsAccumulate checks that the data-plane timing counters
// surface through both engines' PerfStats.
func TestPerfStatsAccumulate(t *testing.T) {
	f := newFixture(t, 2, 3, fixtureOpts{})
	f.clients[0].Send([]byte("time me"))
	f.runUntilRound(3, 500_000)

	sps := f.servers[0].PerfStats()
	if sps.PadCompute <= 0 {
		t.Errorf("server pad-compute time not recorded: %+v", sps)
	}
	if sps.Combine <= 0 {
		t.Errorf("server combine time not recorded: %+v", sps)
	}
	if sps.PrefetchHits+sps.PrefetchMisses == 0 {
		t.Errorf("server prefetch counters empty: %+v", sps)
	}
	cps := f.clients[0].PerfStats()
	if cps.PadCompute <= 0 {
		t.Errorf("client pad-compute time not recorded: %+v", cps)
	}
	if cps.PrefetchHits == 0 {
		t.Errorf("client stream prefetch never hit: %+v", cps)
	}
	if cps.Combine != 0 {
		t.Errorf("client combine time should be zero, got %+v", cps)
	}
}
