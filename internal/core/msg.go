package core

import (
	"fmt"

	"dissent/internal/crypto"
	"dissent/internal/group"
)

// MsgType enumerates the protocol's wire messages.
type MsgType byte

// Message types. Setup messages establish the shuffled slot schedule;
// round messages implement Algorithms 1–2; blame messages implement
// the accusation protocol of §3.9.
const (
	// MsgPseudonymSubmit: client → upstream server; onion-encrypted
	// pseudonym key for the scheduling shuffle.
	MsgPseudonymSubmit MsgType = iota + 1
	// MsgPseudonymList: server → all servers; collected submissions.
	MsgPseudonymList
	// MsgShuffleStep: server j → all servers; its shuffle step output.
	MsgShuffleStep
	// MsgSchedule: server → its clients; final slot key list + server
	// signatures.
	MsgSchedule
	// MsgClientSubmit: client → upstream server; round ciphertext.
	MsgClientSubmit
	// MsgInventory: server → all servers; clients heard this round.
	MsgInventory
	// MsgCommit: server → all servers; hash commit of its ciphertext.
	MsgCommit
	// MsgShare: server → all servers; its ciphertext.
	MsgShare
	// MsgCertify: server → all servers; signature over the cleartext.
	MsgCertify
	// MsgOutput: server → its clients; signed round output.
	MsgOutput
	// MsgBlameStart: server → its clients; an accusation shuffle opens.
	MsgBlameStart
	// MsgBlameSubmit: client → upstream server; encrypted accusation
	// (or null message) for the accusation shuffle.
	MsgBlameSubmit
	// MsgBlameList: server → all servers; collected blame submissions.
	MsgBlameList
	// MsgBlameStep: server j → all servers; blame shuffle step output.
	MsgBlameStep
	// MsgTraceBits: server → all servers; per-client PRNG bits at the
	// witness position, for disruptor tracing.
	MsgTraceBits
	// MsgRebuttalRequest: upstream server → flagged client.
	MsgRebuttalRequest
	// MsgRebuttal: client → all servers (via upstream); reveals the
	// pairwise secret shared with an equivocating server.
	MsgRebuttal
	// MsgScheduleCert: server → all servers; signature certifying the
	// scheduling shuffle's output key list.
	MsgScheduleCert
	// MsgBlameDone: server → its clients; the accusation session ended
	// (with or without a verdict) and DC-net rounds resume.
	MsgBlameDone
	// MsgJoinRequest: prospective member (or expelled client seeking
	// re-admission) → a server; asks to be proposed for admission at
	// the next epoch boundary. New members sign with the key embedded
	// in the request body (self-certifying, like NodeIDs).
	MsgJoinRequest
	// MsgRosterPropose: server → all servers; its pending admissions and
	// removals for the upcoming roster version.
	MsgRosterPropose
	// MsgRosterCert: server → all servers; its signature certifying the
	// canonical roster update assembled from all proposals.
	MsgRosterCert
	// MsgRosterUpdate: server → its clients; the fully certified roster
	// update to apply before the next round.
	MsgRosterUpdate
	// MsgJoinWelcome: upstream server → newly admitted member; the
	// certified update plus the session state snapshot (current roster,
	// slot keys, schedule, beacon head) a mid-session joiner needs.
	MsgJoinWelcome
	// MsgSnapshotSync: upstream server → an established member whose
	// replica diverged or fell behind the retained roster history; a
	// JoinWelcome-shaped certified snapshot the member re-syncs its
	// schedule replica from instead of wedging.
	MsgSnapshotSync
)

var msgTypeNames = map[MsgType]string{
	MsgPseudonymSubmit: "pseudonym-submit",
	MsgPseudonymList:   "pseudonym-list",
	MsgShuffleStep:     "shuffle-step",
	MsgSchedule:        "schedule",
	MsgClientSubmit:    "client-submit",
	MsgInventory:       "inventory",
	MsgCommit:          "commit",
	MsgShare:           "share",
	MsgCertify:         "certify",
	MsgOutput:          "output",
	MsgBlameStart:      "blame-start",
	MsgBlameSubmit:     "blame-submit",
	MsgBlameList:       "blame-list",
	MsgBlameStep:       "blame-step",
	MsgTraceBits:       "trace-bits",
	MsgRebuttalRequest: "rebuttal-request",
	MsgRebuttal:        "rebuttal",
	MsgScheduleCert:    "schedule-cert",
	MsgBlameDone:       "blame-done",
	MsgJoinRequest:     "join-request",
	MsgRosterPropose:   "roster-propose",
	MsgRosterCert:      "roster-cert",
	MsgRosterUpdate:    "roster-update",
	MsgJoinWelcome:     "join-welcome",
	MsgSnapshotSync:    "snapshot-sync",
}

func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("msgtype(%d)", byte(t))
}

// Message is one signed protocol message. Body is the canonical
// payload encoding; Sig covers (GroupID, Type, Round, From, Body).
type Message struct {
	From  group.NodeID
	Type  MsgType
	Round uint64
	Body  []byte
	Sig   []byte
}

// signedBytes is the byte string a message signature covers.
func signedBytes(groupID [32]byte, m *Message) []byte {
	var e encBuf
	e.B = append(e.B, groupID[:]...)
	e.U8(byte(m.Type))
	e.U64(m.Round)
	e.B = append(e.B, m.From[:]...)
	e.Bytes(m.Body)
	return e.B
}

// WireSize returns the message's approximate on-the-wire size in
// bytes, used by the network simulator for bandwidth accounting:
// header (type, round, from, body length) + body + signature.
func (m *Message) WireSize() int {
	n := 1 + 8 + 8 + 4 + len(m.Body)
	if m.Sig != nil {
		n += len(m.Sig)
	} else {
		n += 64 // unsigned simulation mode still accounts a signature
	}
	return n
}

// EncodeMessage serializes a complete message for transport framing or
// for inclusion as evidence in tracing.
func EncodeMessage(m *Message) []byte {
	var e encBuf
	e.U8(byte(m.Type))
	e.U64(m.Round)
	e.B = append(e.B, m.From[:]...)
	e.Bytes(m.Body)
	e.Bytes(m.Sig)
	return e.B
}

// DecodeMessage parses a message serialized by EncodeMessage.
func DecodeMessage(data []byte) (*Message, error) {
	d := decBuf{B: data}
	t, err := d.U8()
	if err != nil {
		return nil, err
	}
	round, err := d.U64()
	if err != nil {
		return nil, err
	}
	if len(d.B) < 8 {
		return nil, errTruncated
	}
	var from group.NodeID
	copy(from[:], d.B[:8])
	d.B = d.B[8:]
	body, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	sig, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	m := &Message{From: from, Type: MsgType(t), Round: round, Body: body}
	if len(sig) > 0 {
		m.Sig = sig
	}
	return m, nil
}

// --- Payload codecs -------------------------------------------------

// PseudonymSubmit carries a client's onion-encrypted pseudonym key.
type PseudonymSubmit struct {
	CT []byte // encoded ElGamal ciphertext (width-1 vector)
}

// Encode serializes the payload.
func (p *PseudonymSubmit) Encode() []byte {
	var e encBuf
	e.Bytes(p.CT)
	return e.B
}

// DecodePseudonymSubmit parses a PseudonymSubmit payload.
func DecodePseudonymSubmit(b []byte) (*PseudonymSubmit, error) {
	d := decBuf{B: b}
	ct, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &PseudonymSubmit{CT: ct}, nil
}

// PseudonymList carries the submissions a server collected, keyed by
// client index in the group definition.
type PseudonymList struct {
	Clients []int32
	CTs     [][]byte
}

// Encode serializes the payload.
func (p *PseudonymList) Encode() []byte {
	var e encBuf
	e.Int32s(p.Clients)
	e.ByteSlices(p.CTs)
	return e.B
}

// DecodePseudonymList parses a PseudonymList payload.
func DecodePseudonymList(b []byte) (*PseudonymList, error) {
	d := decBuf{B: b}
	cs, err := d.Int32s()
	if err != nil {
		return nil, err
	}
	cts, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	if len(cs) != len(cts) {
		return nil, fmt.Errorf("core: pseudonym list shape mismatch")
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &PseudonymList{Clients: cs, CTs: cts}, nil
}

// ShuffleStep carries one server's shuffle step for stage (its server
// index) of a shuffle session. Blame and scheduling shuffles share
// this format; Session is 0 for scheduling.
type ShuffleStep struct {
	Session int32
	Stage   int32
	Data    []byte // encoded shuffle.StepOutput
}

// Encode serializes the payload.
func (p *ShuffleStep) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.U32(uint32(p.Stage))
	e.Bytes(p.Data)
	return e.B
}

// DecodeShuffleStep parses a ShuffleStep payload.
func DecodeShuffleStep(b []byte) (*ShuffleStep, error) {
	d := decBuf{B: b}
	session, err := d.U32()
	if err != nil {
		return nil, err
	}
	stage, err := d.U32()
	if err != nil {
		return nil, err
	}
	data, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &ShuffleStep{Session: int32(session), Stage: int32(stage), Data: data}, nil
}

// Schedule carries the final slot schedule: pseudonym keys in slot
// order plus every server's signature over the key list.
type Schedule struct {
	Keys [][]byte // encoded pseudonym public keys, slot order
	Sigs [][]byte // per server index, Schnorr over scheduleSignedBytes
}

// Encode serializes the payload.
func (p *Schedule) Encode() []byte {
	var e encBuf
	e.ByteSlices(p.Keys)
	e.ByteSlices(p.Sigs)
	return e.B
}

// DecodeSchedule parses a Schedule payload.
func DecodeSchedule(b []byte) (*Schedule, error) {
	d := decBuf{B: b}
	keys, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	sigs, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &Schedule{Keys: keys, Sigs: sigs}, nil
}

// scheduleSignedBytes is the byte string servers sign to certify a
// schedule.
func scheduleSignedBytes(groupID [32]byte, keys [][]byte) []byte {
	var e encBuf
	e.B = append(e.B, groupID[:]...)
	e.ByteSlices(keys)
	return crypto.Hash("dissent/schedule-cert", e.B)
}

// scheduleCertDigest condenses a complete schedule certificate — the
// signed key list plus every server's signature in index order — into
// the session artifact the beacon genesis binds to (§3.2's
// self-certifying style: the digest authenticates one session's
// certified schedule and nothing else).
func scheduleCertDigest(groupID [32]byte, keys, sigs [][]byte) [32]byte {
	var e encBuf
	e.B = append(e.B, scheduleSignedBytes(groupID, keys)...)
	e.ByteSlices(sigs)
	var d [32]byte
	copy(d[:], crypto.Hash("dissent/schedule-cert-digest", e.B))
	return d
}

// VerifyScheduleCert checks a schedule certificate fetched out of band
// (e.g. from a server's /beacon/schedule endpoint) against the group
// definition: one signature per server, each a valid Schnorr signature
// over the key list. It returns the certificate digest that, fed to
// beacon.SessionGenesis, yields the session's beacon genesis — the
// path an external verifier uses to reject archived previous-session
// chains replayed as live.
func VerifyScheduleCert(def *group.Definition, keys, sigs [][]byte) ([32]byte, error) {
	if len(sigs) != len(def.Servers) {
		return [32]byte{}, fmt.Errorf("core: schedule certificate has %d signatures, want %d",
			len(sigs), len(def.Servers))
	}
	grpID := def.GroupID()
	keyGrp := def.Group()
	signed := scheduleSignedBytes(grpID, keys)
	for j, srv := range def.Servers {
		sig, err := crypto.DecodeSignature(keyGrp, sigs[j])
		if err != nil {
			return [32]byte{}, fmt.Errorf("core: schedule cert %d: %w", j, err)
		}
		if err := crypto.Verify(keyGrp, srv.PubKey, "dissent/schedule", signed, sig); err != nil {
			return [32]byte{}, fmt.Errorf("core: schedule cert %d: %w", j, err)
		}
	}
	return scheduleCertDigest(grpID, keys, sigs), nil
}

// ClientSubmit carries a client's DC-net ciphertext for a round.
type ClientSubmit struct {
	CT []byte
}

// Encode serializes the payload.
func (p *ClientSubmit) Encode() []byte {
	var e encBuf
	e.Bytes(p.CT)
	return e.B
}

// DecodeClientSubmit parses a ClientSubmit payload.
func DecodeClientSubmit(b []byte) (*ClientSubmit, error) {
	d := decBuf{B: b}
	ct, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &ClientSubmit{CT: ct}, nil
}

// Inventory is a server's list of client indices heard this round, per
// α-threshold attempt (§3.7: servers may re-open the window and retry).
type Inventory struct {
	Attempt int32
	Clients []int32
}

// Encode serializes the payload.
func (p *Inventory) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Attempt))
	e.Int32s(p.Clients)
	return e.B
}

// DecodeInventory parses an Inventory payload.
func DecodeInventory(b []byte) (*Inventory, error) {
	d := decBuf{B: b}
	at, err := d.U32()
	if err != nil {
		return nil, err
	}
	cs, err := d.Int32s()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &Inventory{Attempt: int32(at), Clients: cs}, nil
}

// Commit is a server's hash commitment to its ciphertext (Algorithm 2
// step 3), preventing dishonest servers from adapting their share to
// others'. When the randomness beacon is enabled, the same message
// carries the server's binding commitment to its beacon share, so the
// beacon's commit phase rides the round's existing commit exchange.
type Commit struct {
	Attempt      int32
	Hash         []byte
	BeaconCommit []byte // H(beacon share); empty when the beacon is off
}

// Encode serializes the payload.
func (p *Commit) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Attempt))
	e.Bytes(p.Hash)
	e.Bytes(p.BeaconCommit)
	return e.B
}

// DecodeCommit parses a Commit payload.
func DecodeCommit(b []byte) (*Commit, error) {
	d := decBuf{B: b}
	at, err := d.U32()
	if err != nil {
		return nil, err
	}
	h, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	bc, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &Commit{Attempt: int32(at), Hash: h, BeaconCommit: bc}, nil
}

// Share is a server's ciphertext, revealed after all commits. It also
// reveals the server's beacon share (a Schnorr signature over the
// previous beacon value and round; see internal/beacon), completing
// the beacon's commit–reveal exchange.
type Share struct {
	Attempt     int32
	CT          []byte
	BeaconShare []byte // empty when the beacon is off
}

// Encode serializes the payload.
func (p *Share) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Attempt))
	e.Bytes(p.CT)
	e.Bytes(p.BeaconShare)
	return e.B
}

// DecodeShare parses a Share payload.
func DecodeShare(b []byte) (*Share, error) {
	d := decBuf{B: b}
	at, err := d.U32()
	if err != nil {
		return nil, err
	}
	ct, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	bs, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &Share{Attempt: int32(at), CT: ct, BeaconShare: bs}, nil
}

// Certify is a server's signature over the assembled cleartext.
type Certify struct {
	Attempt int32
	Sig     []byte
}

// Encode serializes the payload.
func (p *Certify) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Attempt))
	e.Bytes(p.Sig)
	return e.B
}

// DecodeCertify parses a Certify payload.
func DecodeCertify(b []byte) (*Certify, error) {
	d := decBuf{B: b}
	at, err := d.U32()
	if err != nil {
		return nil, err
	}
	sig, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &Certify{Attempt: int32(at), Sig: sig}, nil
}

// cleartextSignedBytes is the byte string certifying signatures cover.
// beaconValue is the round's chained beacon output (nil for failed
// rounds or when the beacon is off), so certification also pins the
// beacon chain: a server cannot certify the round yet equivocate about
// its randomness.
func cleartextSignedBytes(groupID [32]byte, round uint64, count int, cleartext, beaconValue []byte) []byte {
	var e encBuf
	e.B = append(e.B, groupID[:]...)
	e.U64(round)
	e.U32(uint32(count))
	e.Bytes(cleartext)
	e.Bytes(beaconValue)
	return crypto.Hash("dissent/cleartext-cert", e.B)
}

// RoundOutput carries the certified round result to clients. Failed
// indicates a hard-timeout round whose ciphertexts were discarded; its
// Count resets the participation baseline (§3.7). Beacon holds every
// server's beacon share for this round (in server-index order) so
// clients extend and verify their beacon chain replica; it is empty
// for failed rounds and when the beacon is off.
type RoundOutput struct {
	Cleartext []byte
	Sigs      [][]byte // per server index
	Count     int32
	Failed    bool
	Beacon    [][]byte // per server index
}

// Encode serializes the payload.
func (p *RoundOutput) Encode() []byte {
	var e encBuf
	e.Bytes(p.Cleartext)
	e.ByteSlices(p.Sigs)
	e.U32(uint32(p.Count))
	if p.Failed {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.ByteSlices(p.Beacon)
	return e.B
}

// DecodeRoundOutput parses a RoundOutput payload.
func DecodeRoundOutput(b []byte) (*RoundOutput, error) {
	d := decBuf{B: b}
	ct, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	sigs, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	count, err := d.U32()
	if err != nil {
		return nil, err
	}
	failed, err := d.U8()
	if err != nil {
		return nil, err
	}
	bc, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &RoundOutput{Cleartext: ct, Sigs: sigs, Count: int32(count), Failed: failed != 0, Beacon: bc}, nil
}

// BlameStart announces an accusation shuffle session to clients.
type BlameStart struct {
	Session int32
}

// Encode serializes the payload.
func (p *BlameStart) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	return e.B
}

// DecodeBlameStart parses a BlameStart payload.
func DecodeBlameStart(b []byte) (*BlameStart, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &BlameStart{Session: int32(s)}, nil
}

// BlameSubmit carries a client's encrypted accusation vector (or an
// encrypted null message) for an accusation shuffle.
type BlameSubmit struct {
	Session int32
	CT      []byte // encoded modp ciphertext vector
}

// Encode serializes the payload.
func (p *BlameSubmit) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.Bytes(p.CT)
	return e.B
}

// DecodeBlameSubmit parses a BlameSubmit payload.
func DecodeBlameSubmit(b []byte) (*BlameSubmit, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	ct, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &BlameSubmit{Session: int32(s), CT: ct}, nil
}

// BlameList carries a server's collected blame submissions.
type BlameList struct {
	Session int32
	Clients []int32
	CTs     [][]byte
}

// Encode serializes the payload.
func (p *BlameList) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.Int32s(p.Clients)
	e.ByteSlices(p.CTs)
	return e.B
}

// DecodeBlameList parses a BlameList payload.
func DecodeBlameList(b []byte) (*BlameList, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	cs, err := d.Int32s()
	if err != nil {
		return nil, err
	}
	cts, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	if len(cs) != len(cts) {
		return nil, fmt.Errorf("core: blame list shape mismatch")
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &BlameList{Session: int32(s), Clients: cs, CTs: cts}, nil
}

// TraceBits carries one server's contribution to disruptor tracing
// (§3.9): for each client included in the accused round, the PRNG bit
// s_ij[k] it shares with that client at the witness position; its own
// server-ciphertext bit; and for its direct clients, the client
// ciphertext bit it received.
type TraceBits struct {
	Session    int32
	ClientBits []byte  // s_ij[k] for each included client, in inventory order
	ServerBit  byte    // s_j[k] as derivable from its published share
	Direct     []int32 // client indices whose ciphertexts this server received
	DirectBits []byte  // c_i[k] for each of Direct
	// Evidence holds the original signed ClientSubmit messages for
	// each entry of Direct (encoded with EncodeMessage), letting every
	// server verify the published ciphertext bits itself.
	Evidence [][]byte
}

// Encode serializes the payload.
func (p *TraceBits) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.Bytes(p.ClientBits)
	e.U8(p.ServerBit)
	e.Int32s(p.Direct)
	e.Bytes(p.DirectBits)
	e.ByteSlices(p.Evidence)
	return e.B
}

// DecodeTraceBits parses a TraceBits payload.
func DecodeTraceBits(b []byte) (*TraceBits, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	cb, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	sb, err := d.U8()
	if err != nil {
		return nil, err
	}
	direct, err := d.Int32s()
	if err != nil {
		return nil, err
	}
	db, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	ev, err := d.ByteSlices()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &TraceBits{Session: int32(s), ClientBits: cb, ServerBit: sb, Direct: direct, DirectBits: db, Evidence: ev}, nil
}

// RebuttalRequest asks a flagged client to explain a ciphertext-bit
// mismatch by identifying the equivocating server.
type RebuttalRequest struct {
	Session int32
	// AccRound and AccBit locate the witness bit: the disrupted round
	// and the global bit index within its cleartext vector.
	AccRound uint64
	AccBit   uint32
	// ServerBits are the s_ij[k] bits each server claimed for this
	// client, in server-index order.
	ServerBits []byte
}

// Encode serializes the payload.
func (p *RebuttalRequest) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.U64(p.AccRound)
	e.U32(p.AccBit)
	e.Bytes(p.ServerBits)
	return e.B
}

// DecodeRebuttalRequest parses a RebuttalRequest payload.
func DecodeRebuttalRequest(b []byte) (*RebuttalRequest, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	round, err := d.U64()
	if err != nil {
		return nil, err
	}
	bit, err := d.U32()
	if err != nil {
		return nil, err
	}
	bits, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &RebuttalRequest{Session: int32(s), AccRound: round, AccBit: bit, ServerBits: bits}, nil
}

// Rebuttal reveals the pairwise DH point a client shares with the
// server it says equivocated, with a DLEQ proof that the point matches
// both public keys. Every server can then recompute s_ij[k] itself.
type Rebuttal struct {
	Session   int32
	ServerIdx int32
	Secret    []byte // encoded DH point
	ProofC    []byte
	ProofZ    []byte
}

// Encode serializes the payload.
func (p *Rebuttal) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.U32(uint32(p.ServerIdx))
	e.Bytes(p.Secret)
	e.Bytes(p.ProofC)
	e.Bytes(p.ProofZ)
	return e.B
}

// DecodeRebuttal parses a Rebuttal payload.
func DecodeRebuttal(b []byte) (*Rebuttal, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	idx, err := d.U32()
	if err != nil {
		return nil, err
	}
	secret, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	pc, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	pz, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return &Rebuttal{Session: int32(s), ServerIdx: int32(idx), Secret: secret, ProofC: pc, ProofZ: pz}, nil
}

// BlameDone reports an accusation session's outcome to clients. Round
// in the enclosing message is the next DC-net round to submit for.
type BlameDone struct {
	Session int32
	// Verdict is 0 (inconclusive), 1 (client expelled), 2 (server
	// exposed).
	Verdict byte
	Culprit group.NodeID
}

// Encode serializes the payload.
func (p *BlameDone) Encode() []byte {
	var e encBuf
	e.U32(uint32(p.Session))
	e.U8(p.Verdict)
	e.B = append(e.B, p.Culprit[:]...)
	return e.B
}

// DecodeBlameDone parses a BlameDone payload.
func DecodeBlameDone(b []byte) (*BlameDone, error) {
	d := decBuf{B: b}
	s, err := d.U32()
	if err != nil {
		return nil, err
	}
	v, err := d.U8()
	if err != nil {
		return nil, err
	}
	if len(d.B) != 8 {
		return nil, errTruncated
	}
	var c group.NodeID
	copy(c[:], d.B)
	return &BlameDone{Session: int32(s), Verdict: v, Culprit: c}, nil
}
