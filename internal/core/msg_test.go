package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"dissent/internal/group"
)

func TestEncDecPrimitives(t *testing.T) {
	var e encBuf
	e.U8(7)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.Bytes([]byte("hello"))
	e.ByteSlices([][]byte{[]byte("a"), nil, []byte("ccc")})
	e.Int32s([]int32{3, -1, 99})

	d := decBuf{B: e.B}
	if v, _ := d.U8(); v != 7 {
		t.Fatal("u8")
	}
	if v, _ := d.U32(); v != 1<<30 {
		t.Fatal("u32")
	}
	if v, _ := d.U64(); v != 1<<60 {
		t.Fatal("u64")
	}
	if v, _ := d.Bytes(); string(v) != "hello" {
		t.Fatal("bytes")
	}
	bs, err := d.ByteSlices()
	if err != nil || len(bs) != 3 || string(bs[2]) != "ccc" {
		t.Fatal("byteSlices")
	}
	is, err := d.Int32s()
	if err != nil || len(is) != 3 || is[1] != -1 {
		t.Fatal("ints")
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDecBufTruncation(t *testing.T) {
	var e encBuf
	e.Bytes([]byte("payload"))
	for cut := 0; cut < len(e.B); cut++ {
		d := decBuf{B: e.B[:cut]}
		if v, err := d.Bytes(); err == nil && len(v) == 7 {
			t.Fatalf("truncation at %d yielded full payload", cut)
		}
	}
}

func TestDecBufRejectsHugeCounts(t *testing.T) {
	// A length prefix claiming 2^31 elements must not allocate.
	var e encBuf
	e.U32(1 << 31)
	d := decBuf{B: e.B}
	if _, err := d.ByteSlices(); err == nil {
		t.Error("huge byteSlices count accepted")
	}
	d = decBuf{B: e.B}
	if _, err := d.Int32s(); err == nil {
		t.Error("huge ints count accepted")
	}
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	var from group.NodeID
	copy(from[:], []byte("abcdefgh"))
	m := &Message{From: from, Type: MsgClientSubmit, Round: 42, Body: []byte("body"), Sig: []byte("sig")}
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || got.Type != m.Type || got.Round != m.Round ||
		!bytes.Equal(got.Body, m.Body) || !bytes.Equal(got.Sig, m.Sig) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	// Unsigned message round-trips with nil sig.
	m2 := &Message{From: from, Type: MsgOutput, Round: 1, Body: []byte("x")}
	got2, err := DecodeMessage(EncodeMessage(m2))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Sig != nil {
		t.Error("empty sig decoded as non-nil")
	}
}

func TestMessageDecodeRejectsTruncated(t *testing.T) {
	m := &Message{Type: MsgCommit, Round: 3, Body: []byte("abc")}
	enc := EncodeMessage(m)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeMessage(enc[:cut]); err == nil {
			t.Fatalf("truncated message at %d accepted", cut)
		}
	}
	if _, err := DecodeMessage(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPayloadCodecsRoundTrip(t *testing.T) {
	checks := []struct {
		name   string
		encode func() []byte
		decode func([]byte) error
	}{
		{"PseudonymSubmit", func() []byte { return (&PseudonymSubmit{CT: []byte("ct")}).Encode() },
			func(b []byte) error {
				p, err := DecodePseudonymSubmit(b)
				if err == nil && string(p.CT) != "ct" {
					t.Error("CT mismatch")
				}
				return err
			}},
		{"PseudonymList", func() []byte {
			return (&PseudonymList{Clients: []int32{1, 5}, CTs: [][]byte{[]byte("a"), []byte("b")}}).Encode()
		}, func(b []byte) error {
			p, err := DecodePseudonymList(b)
			if err == nil && (len(p.Clients) != 2 || p.Clients[1] != 5) {
				t.Error("clients mismatch")
			}
			return err
		}},
		{"ShuffleStep", func() []byte {
			return (&ShuffleStep{Session: 2, Stage: 1, Data: []byte("step")}).Encode()
		}, func(b []byte) error {
			p, err := DecodeShuffleStep(b)
			if err == nil && (p.Session != 2 || p.Stage != 1) {
				t.Error("fields mismatch")
			}
			return err
		}},
		{"Schedule", func() []byte {
			return (&Schedule{Keys: [][]byte{[]byte("k1")}, Sigs: [][]byte{[]byte("s1"), []byte("s2")}}).Encode()
		}, func(b []byte) error {
			p, err := DecodeSchedule(b)
			if err == nil && (len(p.Keys) != 1 || len(p.Sigs) != 2) {
				t.Error("fields mismatch")
			}
			return err
		}},
		{"ClientSubmit", func() []byte { return (&ClientSubmit{CT: []byte("ciphertext")}).Encode() },
			func(b []byte) error { _, err := DecodeClientSubmit(b); return err }},
		{"Inventory", func() []byte { return (&Inventory{Attempt: 3, Clients: []int32{0, 2}}).Encode() },
			func(b []byte) error {
				p, err := DecodeInventory(b)
				if err == nil && p.Attempt != 3 {
					t.Error("attempt mismatch")
				}
				return err
			}},
		{"Commit", func() []byte {
			return (&Commit{Attempt: 1, Hash: []byte("h"), BeaconCommit: []byte("bc")}).Encode()
		}, func(b []byte) error {
			p, err := DecodeCommit(b)
			if err == nil && string(p.BeaconCommit) != "bc" {
				t.Error("beacon commit mismatch")
			}
			return err
		}},
		{"Share", func() []byte {
			return (&Share{Attempt: 1, CT: []byte("share"), BeaconShare: []byte("bs")}).Encode()
		}, func(b []byte) error {
			p, err := DecodeShare(b)
			if err == nil && string(p.BeaconShare) != "bs" {
				t.Error("beacon share mismatch")
			}
			return err
		}},
		{"Certify", func() []byte { return (&Certify{Attempt: 0, Sig: []byte("sig")}).Encode() },
			func(b []byte) error { _, err := DecodeCertify(b); return err }},
		{"RoundOutput", func() []byte {
			return (&RoundOutput{Cleartext: []byte("clear"), Sigs: [][]byte{[]byte("s")}, Count: 9, Failed: true,
				Beacon: [][]byte{[]byte("b0"), []byte("b1")}}).Encode()
		}, func(b []byte) error {
			p, err := DecodeRoundOutput(b)
			if err == nil && (!p.Failed || p.Count != 9 || len(p.Beacon) != 2 || string(p.Beacon[1]) != "b1") {
				t.Error("fields mismatch")
			}
			return err
		}},
		{"BlameStart", func() []byte { return (&BlameStart{Session: 7}).Encode() },
			func(b []byte) error { _, err := DecodeBlameStart(b); return err }},
		{"BlameSubmit", func() []byte { return (&BlameSubmit{Session: 7, CT: []byte("ct")}).Encode() },
			func(b []byte) error { _, err := DecodeBlameSubmit(b); return err }},
		{"BlameList", func() []byte {
			return (&BlameList{Session: 7, Clients: []int32{1}, CTs: [][]byte{[]byte("x")}}).Encode()
		}, func(b []byte) error { _, err := DecodeBlameList(b); return err }},
		{"TraceBits", func() []byte {
			return (&TraceBits{Session: 7, ClientBits: []byte{1, 0}, ServerBit: 1,
				Direct: []int32{0}, DirectBits: []byte{1}, Evidence: [][]byte{[]byte("ev")}}).Encode()
		}, func(b []byte) error {
			p, err := DecodeTraceBits(b)
			if err == nil && (p.ServerBit != 1 || len(p.Evidence) != 1) {
				t.Error("fields mismatch")
			}
			return err
		}},
		{"RebuttalRequest", func() []byte {
			return (&RebuttalRequest{Session: 7, AccRound: 3, AccBit: 99, ServerBits: []byte{0, 1}}).Encode()
		}, func(b []byte) error {
			p, err := DecodeRebuttalRequest(b)
			if err == nil && (p.AccRound != 3 || p.AccBit != 99) {
				t.Error("fields mismatch")
			}
			return err
		}},
		{"Rebuttal", func() []byte {
			return (&Rebuttal{Session: 7, ServerIdx: 2, Secret: []byte("k"), ProofC: []byte("c"), ProofZ: []byte("z")}).Encode()
		}, func(b []byte) error { _, err := DecodeRebuttal(b); return err }},
		{"BlameDone", func() []byte {
			return (&BlameDone{Session: 7, Verdict: 2, Culprit: group.NodeID{1, 2}}).Encode()
		}, func(b []byte) error {
			p, err := DecodeBlameDone(b)
			if err == nil && p.Verdict != 2 {
				t.Error("verdict mismatch")
			}
			return err
		}},
	}
	for _, c := range checks {
		enc := c.encode()
		if err := c.decode(enc); err != nil {
			t.Errorf("%s: decode failed: %v", c.name, err)
		}
		// Every codec must reject truncation of the final byte.
		if len(enc) > 0 {
			if err := c.decode(enc[:len(enc)-1]); err == nil {
				t.Errorf("%s: truncated payload accepted", c.name)
			}
		}
		// And trailing garbage.
		if err := c.decode(append(append([]byte(nil), enc...), 0xFF)); err == nil {
			t.Errorf("%s: trailing garbage accepted", c.name)
		}
	}
}

func TestInventoryCodecProperty(t *testing.T) {
	f := func(attempt int32, clients []int32) bool {
		p := &Inventory{Attempt: attempt, Clients: clients}
		got, err := DecodeInventory(p.Encode())
		if err != nil {
			return false
		}
		if got.Attempt != attempt || len(got.Clients) != len(clients) {
			return false
		}
		for i := range clients {
			if got.Clients[i] != clients[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWireSizeAccountsSignature(t *testing.T) {
	m := &Message{Type: MsgCommit, Body: make([]byte, 100)}
	unsigned := m.WireSize()
	m.Sig = make([]byte, 64)
	signed := m.WireSize()
	if unsigned != signed {
		t.Errorf("unsigned %d vs signed %d: simulation mode should account the same", unsigned, signed)
	}
	if signed < 100+64 {
		t.Error("wire size below payload+sig")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for mt := MsgPseudonymSubmit; mt <= MsgBlameDone; mt++ {
		if s := mt.String(); s == "" || s[:3] == "msg" && s != "msgtype(0)" && len(s) > 8 && s[:8] == "msgtype(" {
			t.Errorf("missing name for type %d", mt)
		}
	}
	if MsgType(200).String() != "msgtype(200)" {
		t.Error("unknown type formatting")
	}
}
