package core

import (
	"errors"
	"fmt"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/crypto"
	"dissent/internal/dcnet"
	"dissent/internal/group"
)

// Durable server state (see ARCHITECTURE.md "Durability & restart").
// The server persists a compact session snapshot into its StateStore at
// every round retirement and roster apply; RestoreFromStore rebuilds a
// freshly constructed engine from that snapshot plus the durable
// certified roster-update log, so a killed server resumes certifying
// rounds without operator intervention or a manual rejoin.
//
// What is NOT snapshotted, and why restart still converges:
//   - In-flight (unretired) rounds: certification requires every
//     server, so a surviving peer's copy of such a round is wedged at
//     its pre-crash attempt until we return. The restored server
//     reopens those rounds at a recovery attempt strictly above any
//     the α-policy can reach (openRound); peers abandon the wedged
//     attempt and rejoin ours, keeping the client submissions they
//     hold (escalateAttempt), so the round certifies over the union of
//     surviving submissions — or fails consistently, in which case
//     clients recover their payloads from the output and resubmit.
//     Rounds the peers certified without us (we crashed after signing)
//     come back as certified outputs we adopt wholesale (onPeerOutput).
//   - Round history and any in-flight blame session: accusations
//     against pre-restart rounds cannot be traced afterwards. A
//     disrupted slot owner simply re-accuses on a post-restart round.
//   - Pending join requests: joiners re-send on their retry timer.

// ServerSnapshot is the durable image of a server's session state at a
// round boundary — everything needed to resume that is not already
// derivable from the group definition, the stored roster-update chain,
// or the beacon chain's own store.
type ServerSnapshot struct {
	Version    uint64 // roster version the snapshot was taken at
	Round      uint64 // first unretired round: resume point
	PrevCount  uint32 // previous round's participation (α baseline)
	DrainRound uint64 // latest pipeline drain point (delta-queue ramp)
	RosterDue  byte   // boundary crossed; roster phase pending
	CertKeys   [][]byte
	CertSigs   [][]byte // certified schedule; empty under trusted bootstrap
	SlotKeys   [][]byte // current slot pseudonym keys, slot order
	SchedRound uint64   // schedule's internal round counter
	Lens       []int32
	Idle       []int32
	Perm       []int32
	PendingOps []int32 // queued, not-yet-applied round deltas
	PendingNs  []int32
	ExpelIdx   []int32  // excluded client indices…
	ExpelAt    []uint64 // …and the round each was excluded at
}

// Encode serializes the snapshot.
func (p *ServerSnapshot) Encode() []byte {
	var e encBuf
	e.U64(p.Version)
	e.U64(p.Round)
	e.U32(p.PrevCount)
	e.U64(p.DrainRound)
	e.U8(p.RosterDue)
	e.ByteSlices(p.CertKeys)
	e.ByteSlices(p.CertSigs)
	e.ByteSlices(p.SlotKeys)
	e.U64(p.SchedRound)
	e.Int32s(p.Lens)
	e.Int32s(p.Idle)
	e.Int32s(p.Perm)
	e.Int32s(p.PendingOps)
	e.Int32s(p.PendingNs)
	e.Int32s(p.ExpelIdx)
	e.U32(uint32(len(p.ExpelAt)))
	for _, r := range p.ExpelAt {
		e.U64(r)
	}
	return e.B
}

// DecodeServerSnapshot parses a ServerSnapshot.
func DecodeServerSnapshot(b []byte) (*ServerSnapshot, error) {
	d := decBuf{B: b}
	p := &ServerSnapshot{}
	var err error
	if p.Version, err = d.U64(); err != nil {
		return nil, err
	}
	if p.Round, err = d.U64(); err != nil {
		return nil, err
	}
	if p.PrevCount, err = d.U32(); err != nil {
		return nil, err
	}
	if p.DrainRound, err = d.U64(); err != nil {
		return nil, err
	}
	if p.RosterDue, err = d.U8(); err != nil {
		return nil, err
	}
	if p.CertKeys, err = d.ByteSlices(); err != nil {
		return nil, err
	}
	if p.CertSigs, err = d.ByteSlices(); err != nil {
		return nil, err
	}
	if p.SlotKeys, err = d.ByteSlices(); err != nil {
		return nil, err
	}
	if p.SchedRound, err = d.U64(); err != nil {
		return nil, err
	}
	if p.Lens, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.Idle, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.Perm, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.PendingOps, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.PendingNs, err = d.Int32s(); err != nil {
		return nil, err
	}
	if p.ExpelIdx, err = d.Int32s(); err != nil {
		return nil, err
	}
	n, err := d.Count(1 << 20)
	if err != nil {
		return nil, err
	}
	p.ExpelAt = make([]uint64, n)
	for i := range p.ExpelAt {
		if p.ExpelAt[i], err = d.U64(); err != nil {
			return nil, err
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return p, nil
}

// persistSnapshot writes the current session state to the durable
// store. Called at every round retirement and roster apply; a persist
// failure is logged but never fails the round — durability degrades,
// the protocol does not.
func (s *Server) persistSnapshot() {
	if s.store == nil || s.sched == nil {
		return
	}
	sn := &ServerSnapshot{
		Version:    s.def.Version,
		Round:      s.roundNum,
		PrevCount:  uint32(s.prevCount),
		DrainRound: s.drainRound,
		CertKeys:   s.certKeys,
		CertSigs:   s.certSigs,
		SlotKeys:   s.encodedSlotKeys(),
	}
	if s.rosterDue {
		sn.RosterDue = 1
	}
	schedRound, lens, idle, perm := s.sched.Snapshot()
	sn.SchedRound = schedRound
	sn.Lens = toInt32(lens)
	sn.Idle = toInt32(idle)
	sn.Perm = toInt32(perm)
	ops, ns := s.sched.PendingSnapshot()
	sn.PendingOps = toInt32(ops)
	sn.PendingNs = toInt32(ns)
	for _, ci := range sortedKeys(s.expelRound) {
		sn.ExpelIdx = append(sn.ExpelIdx, int32(ci))
		sn.ExpelAt = append(sn.ExpelAt, s.expelRound[ci])
	}
	if err := s.store.Put(bucketSnapshot, snapshotKey, sn.Encode()); err != nil {
		s.log.Error("session snapshot persist failed", "round", s.roundNum, "err", err)
	}
}

// RestoreFromStore rebuilds a freshly constructed server engine from
// its durable store and resumes rounds. It must be called instead of
// Start (or InstallSchedule), on a Server built with the same genesis
// definition and keys as the crashed instance. Returns ok=false, with
// the engine untouched, when the store holds no snapshot — the caller
// then runs the normal setup path.
func (s *Server) RestoreFromStore(now time.Time) (out *Output, ok bool, err error) {
	if s.store == nil {
		return nil, false, nil
	}
	raw, have := s.store.Get(bucketSnapshot, snapshotKey)
	if !have {
		return nil, false, nil
	}
	if s.sched != nil || s.phase != phaseSetupCollect || s.roundNum != 0 {
		return nil, false, errors.New("core: restore on an already-started engine")
	}
	sn, err := DecodeServerSnapshot(raw)
	if err != nil {
		return nil, false, fmt.Errorf("core: session snapshot: %w", err)
	}
	if sn.Version < s.def.Version {
		return nil, false, fmt.Errorf("core: snapshot version %d below definition version %d", sn.Version, s.def.Version)
	}

	// Replay the certified roster-update chain from the durable log to
	// rebuild the definition, pairwise seeds, attachments, and the
	// welcome bookkeeping. Each update is signature-verified against
	// the definition it extends, so a corrupted store cannot smuggle in
	// membership.
	for v := s.def.Version + 1; v <= sn.Version; v++ {
		ub, have := s.store.Get(bucketRoster, versionKey(v))
		if !have {
			return nil, false, fmt.Errorf("core: roster log truncated: missing version %d below snapshot version %d", v, sn.Version)
		}
		u, err := group.DecodeRosterUpdate(ub)
		if err != nil {
			return nil, false, fmt.Errorf("core: stored roster update %d: %w", v, err)
		}
		if err := s.def.VerifyRosterUpdateSigs(u); err != nil {
			return nil, false, fmt.Errorf("core: stored roster update %d: %w", v, err)
		}
		if err := s.replayRosterUpdate(u); err != nil {
			return nil, false, err
		}
		if v+rosterLogCap > sn.Version {
			s.rosterLog[v] = u
		}
		s.lastRosterUpdate = u
	}

	if len(sn.SlotKeys) != len(sn.Lens) || len(sn.ExpelIdx) != len(sn.ExpelAt) {
		return nil, false, errors.New("core: session snapshot shape mismatch")
	}
	slotKeys := make([]crypto.Element, len(sn.SlotKeys))
	for i, kb := range sn.SlotKeys {
		k, err := s.keyGrp.Decode(kb)
		if err != nil {
			return nil, false, fmt.Errorf("core: snapshot slot key %d: %w", i, err)
		}
		slotKeys[i] = k
	}
	s.slotKeys = slotKeys
	s.certKeys, s.certSigs = sn.CertKeys, sn.CertSigs

	// The beacon chain reloaded its entries from its own store during
	// construction; only the session genesis binding is in-memory. A
	// certified-setup session rebinds to the schedule-derived genesis
	// (trusted: the chain is non-empty, and its entries were verified
	// when first appended); a trusted-bootstrap session never rebound.
	if s.beaconChain != nil && len(sn.CertKeys) > 0 {
		s.beaconChain.RebindTrusted(beacon.SessionGenesis(s.grpID, scheduleCertDigest(s.grpID, sn.CertKeys, sn.CertSigs)))
	}

	cfg := dcnet.Config{
		NumSlots:        len(sn.Lens),
		DefaultOpenLen:  s.def.Policy.DefaultOpenLen,
		MaxSlotLen:      s.def.Policy.MaxSlotLen,
		IdleCloseRounds: s.def.Policy.IdleCloseRounds,
	}
	sched, err := dcnet.RestoreSchedule(cfg, sn.SchedRound, toInt(sn.Lens), toInt(sn.Idle), toInt(sn.Perm))
	if err != nil {
		return nil, false, fmt.Errorf("core: snapshot schedule: %w", err)
	}
	s.installRotation(sched)
	sched.SetLag(s.depth - 1)
	if err := sched.RestorePending(toInt(sn.PendingOps), toInt(sn.PendingNs)); err != nil {
		return nil, false, fmt.Errorf("core: snapshot pipeline queue: %w", err)
	}
	s.sched = sched
	if dig, have := s.rosterDigestFor(sn.Version); have {
		s.rosterDigests[sn.Version] = dig
	}

	for i, ci := range sn.ExpelIdx {
		idx := int(ci)
		if idx < 0 || idx >= len(s.def.Clients) {
			return nil, false, fmt.Errorf("core: snapshot expelled index %d out of range", idx)
		}
		s.excluded[idx] = true
		s.expelRound[idx] = sn.ExpelAt[i]
		// An exclusion not yet formalized in the definition was pending
		// removal at the next boundary; re-queue it so the restart does
		// not strand the client excluded-but-never-removed.
		if !s.def.Clients[idx].Expelled {
			s.pendingRemove[idx] = true
		}
	}

	s.prevCount = int(sn.PrevCount)
	s.drainRound = sn.DrainRound
	s.rosterDue = sn.RosterDue != 0
	s.roundNum = sn.Round
	s.nextOpen = sn.Round
	s.phase = phaseRunning
	// Every round that could have been in flight at the crash reopens as
	// a recovery round (see the file comment and openRound). Peers may
	// have certified our snapshot head without us — our own pre-crash
	// certify completed it — putting their heads one past ours, with in
	// flight rounds up to snapshot+depth; cover all of them.
	s.recoverUntil = sn.Round + uint64(s.depth) + 1

	out = &Output{Events: []Event{{Kind: EventStateRestored, Round: sn.Round,
		Detail: fmt.Sprintf("version %d, round %d, %d slots", sn.Version, sn.Round, len(sn.Lens))}}}
	s.log.Info("session state restored", "round", sn.Round, "version", sn.Version,
		"slots", len(sn.Lens), "rosterDue", s.rosterDue)
	if err := s.resumeRounds(now, out); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// replayRosterUpdate applies one stored certified update during
// restore: the quiet subset of applyCertifiedRoster — definition swap,
// seeds, attachments, and admit bookkeeping — without welcomes,
// broadcasts, schedule growth (the snapshot carries the final
// schedule), or events.
func (s *Server) replayRosterUpdate(u *group.RosterUpdate) error {
	newDef, err := s.def.ApplyRosterUpdate(u)
	if err != nil {
		return fmt.Errorf("core: stored roster update %d rejected: %w", u.Version, err)
	}
	oldN := len(s.def.Clients)
	s.def = newDef
	for _, m := range u.Admit {
		pub, err := s.keyGrp.Decode(m.PubKey)
		if err != nil {
			return fmt.Errorf("core: stored admitted key: %w", err)
		}
		id := group.IDFromKey(s.keyGrp, pub)
		ci := newDef.ClientIndex(id)
		if ci >= oldN {
			var seed []byte
			if s.pairSeedFn != nil {
				seed = s.pairSeedFn(ci, s.idx)
			} else {
				seed, err = s.pairSeed(pub)
				if err != nil {
					return fmt.Errorf("core: stored joiner %s seed: %w", id, err)
				}
			}
			s.clientSeeds = append(s.clientSeeds, seed)
			if newDef.UpstreamServer(ci) == s.idx {
				s.myClients = append(s.myClients, ci)
			}
			s.joinedAt[id] = u.Version
		}
	}
	return nil
}

// resetRoundAttempt rewinds a round to the collection state of a fresh
// attempt, discarding every server-phase artifact of the old one. The
// client submissions (subs/cts and the streaming accumulator) are kept:
// they re-enter through our new inventory, so surviving clients' data
// rides the recovery attempt instead of being dropped. The pooled
// share/cleartext buffers are deliberately released to GC rather than
// the pool — the shares map may alias them and recovery is rare.
func (s *Server) resetRoundAttempt(rs *roundState, attempt int32) {
	rs.attempt = attempt
	rs.phase = rpCollect
	rs.invs = make(map[int]*Inventory)
	rs.commits = make(map[int][]byte)
	rs.shares = make(map[int][]byte)
	rs.certs = make(map[int][]byte)
	rs.beaconCommits = make(map[int][]byte)
	rs.beaconShares = make(map[int][]byte)
	rs.myBeaconShare = nil
	rs.beaconEntry = nil
	rs.myShare = nil
	rs.cleartext = nil
	rs.included = nil
	rs.directSets = nil
	rs.failed = false
	rs.casts = nil
}

// escalateAttempt abandons the attempt a round was wedged on and rejoins
// the strictly-higher recovery attempt a restarted peer reopened it at.
// Our window closes immediately — the clients we carry already submitted
// pre-crash, and the restarted peer's own window bounds how long its
// direct clients had to reach it.
func (s *Server) escalateAttempt(now time.Time, rs *roundState, p *Inventory, si int) (*Output, error) {
	s.log.Info("round attempt escalated for peer recovery", "round", rs.r,
		"from", rs.attempt, "to", p.Attempt)
	s.resetRoundAttempt(rs, p.Attempt)
	out, err := s.closeWindow(now, rs)
	if err != nil {
		return nil, err
	}
	if si >= 0 {
		if _, dup := rs.invs[si]; !dup {
			rs.invs[si] = p
			more, err := s.maybeCommit(now, rs)
			if err != nil {
				return nil, err
			}
			out.merge(more)
		}
	}
	return out, nil
}

// onPeerOutput adopts a certified round output forwarded by a peer
// (onInventory's retired-round reply): the peers certified this round
// while we were down — our own pre-crash certify signature completed it
// — so our reopened copy can never certify again. All m certification
// signatures make the output self-authenticating; adopting it replays
// exactly the retirement the crash interrupted, minus blame history
// (adopted rounds cannot be traced — see the file comment).
func (s *Server) onPeerOutput(now time.Time, m *Message) (*Output, error) {
	if s.def.ServerIndex(m.From) < 0 {
		return s.violation(m.Round, fmt.Errorf("MsgOutput from non-server %s", m.From)), nil
	}
	if err := s.verify(m, true); err != nil {
		return s.violation(m.Round, err), nil
	}
	if s.phase != phaseRunning || m.Round < s.roundNum {
		return &Output{}, nil // already retired, or not in the round loop
	}
	if m.Round > s.roundNum {
		return s.stashMsg(m), nil // adoption must run in round order
	}
	ro, err := DecodeRoundOutput(m.Body)
	if err != nil {
		return s.violation(m.Round, err), nil
	}
	if len(ro.Sigs) != len(s.def.Servers) {
		return s.violation(m.Round, fmt.Errorf("adopted round %d carries %d certs", m.Round, len(ro.Sigs))), nil
	}
	var entry *beacon.Entry
	if !ro.Failed && s.beaconChain != nil {
		entry = beacon.NewEntry(m.Round, s.beaconChain.Head(), ro.Beacon)
	}
	signed := cleartextSignedBytes(s.grpID, m.Round, int(ro.Count), ro.Cleartext, beaconValueBytes(entry))
	for j, srv := range s.def.Servers {
		sig, err := crypto.DecodeSignature(s.keyGrp, ro.Sigs[j])
		if err != nil {
			return s.violation(m.Round, err), nil
		}
		if err := crypto.Verify(s.keyGrp, srv.PubKey, "dissent/cleartext", signed, sig); err != nil {
			return s.violation(m.Round, fmt.Errorf("adopted round %d cert %d: %w", m.Round, j, err)), nil
		}
	}

	out := &Output{}
	if rs := s.rounds[m.Round]; rs != nil {
		s.bufs.put(rs.ctAcc)
		rs.ctAcc = nil
		s.reapPrefetch(rs)
		delete(s.rounds, m.Round)
		s.perf.setRoundsInFlight(len(s.rounds))
	}
	s.prevCount = int(ro.Count)
	s.roundNum++
	if s.epochBoundary(s.roundNum) {
		s.rosterDue = true
	}
	// Same delta-queue catch-up as maybeOutput: the adopted round was
	// composed at the same layout horizon ours would have been.
	q := s.depth - 1
	if d := m.Round - s.drainRound; d < uint64(q) {
		q = int(d)
	}
	s.sched.SyncPipeline(q)
	s.outMsgs[m.Round] = m.Body
	if m.Round >= uint64(s.def.Policy.RetainRounds) {
		delete(s.outMsgs, m.Round-uint64(s.def.Policy.RetainRounds))
	}
	// Our downstream clients never saw this output — the peers certified
	// it while we were down, and clients consume outputs strictly in
	// round order. Forward it so they re-sequence past the round instead
	// of wedging on it (the output is self-authenticating either way).
	if err := s.broadcastClients(MsgOutput, m.Round, m.Body, out); err != nil {
		return nil, err
	}
	s.log.Info("adopted certified output", "round", m.Round, "from", m.From,
		"failed", ro.Failed, "participation", ro.Count)
	if ro.Failed {
		out.Events = append(out.Events, Event{Kind: EventRoundFailed, Round: m.Round,
			Detail: fmt.Sprintf("adopted, participation %d", ro.Count)})
		s.sched.AdvanceFailed()
		if err := s.retireResume(now, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	if entry != nil {
		if err := s.beaconChain.AppendTrusted(entry); err != nil {
			return nil, fmt.Errorf("core: beacon append: %w", err)
		}
	}
	res, err := s.sched.Advance(ro.Cleartext)
	if err != nil {
		return nil, fmt.Errorf("core: schedule advance: %w", err)
	}
	for slot, pl := range res.Payloads {
		if pl != nil && len(pl.Data) > 0 {
			out.Deliveries = append(out.Deliveries, Delivery{Round: m.Round, Slot: slot, Data: pl.Data})
		}
	}
	out.Events = append(out.Events, Event{Kind: EventRoundComplete, Round: m.Round,
		Detail: fmt.Sprintf("adopted, participation %d", ro.Count)})
	if res.Rotated {
		out.Events = append(out.Events, Event{Kind: EventEpochRotated, Round: m.Round,
			Detail: fmt.Sprintf("epoch at round %d", s.sched.Round())})
	}
	if res.ShuffleRequested {
		s.blameDue = true
	}
	if err := s.retireResume(now, out); err != nil {
		return nil, err
	}
	return out, nil
}
