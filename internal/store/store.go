// Package store implements the embedded durable key-value store
// shared by the beacon chain, the certified roster-update log, blame
// transcripts, and server restart snapshots.
//
// The design is deliberately minimal: a single append-only file of
// JSON lines (one record per mutation), fsynced before the in-memory
// index accepts the mutation, with the same torn-write healing rules
// proven in beacon.FileStore — a torn final line is the artifact of a
// crash mid-append and is truncated away; garbage anywhere else is
// content damage and refuses to open. Reads are served from the
// in-memory index, so the file is only touched on writes and at open.
//
// Records are namespaced by bucket so one file can back several
// subsystems (the beacon chain, the roster log, blame transcripts, the
// restart snapshot) without their key spaces colliding. The log grows
// with every overwrite and delete; Compact rewrites it down to the
// live set through a temp-file rename, preserving crash safety.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCorrupt marks mid-file garbage in a store file — content damage,
// as opposed to I/O or permission errors opening it. Callers archive
// corrupt files and start fresh but abort on anything else.
var ErrCorrupt = errors.New("store: corrupt store file")

// record is one logged mutation. A put carries the value; a delete
// sets D and carries none. Replaying the log in order rebuilds the
// index: last writer wins.
type record struct {
	B string `json:"b"`           // bucket
	K string `json:"k"`           // key
	V []byte `json:"v,omitempty"` // value (base64 in JSON); nil for deletes
	D bool   `json:"d,omitempty"` // delete marker
}

// KV is a crash-safe embedded key-value store over one append-only
// log file. All methods are safe for concurrent use. The zero value is
// not usable; call Open.
type KV struct {
	mu   sync.RWMutex
	file *os.File
	path string
	idx  map[string]map[string][]byte // bucket -> key -> value
	recs int                          // total records in the log (live + shadowed)
}

// Open opens (creating if needed) the store file at path and replays
// its log into the in-memory index. A torn final line — the artifact
// of a crash mid-append — is truncated away and loading continues;
// garbage anywhere else returns an error wrapping ErrCorrupt. A valid
// final line that lost its newline to a crash is completed so the next
// append lands on its own line.
func Open(path string) (*KV, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	kv := &KV{file: f, path: path, idx: make(map[string]map[string][]byte)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	goodEnd := int64(0) // byte offset just past the last valid line
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		var r record
		lineErr := json.Unmarshal(raw, &r)
		if lineErr == nil && r.K == "" {
			lineErr = errors.New("record missing key")
		}
		if lineErr != nil {
			if !sc.Scan() && sc.Err() == nil {
				// Final line: a torn write from a crash mid-append.
				// Drop it and keep the valid prefix.
				if err := f.Truncate(goodEnd); err != nil {
					f.Close()
					return nil, err
				}
				if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
					f.Close()
					return nil, err
				}
				return kv, nil
			}
			f.Close()
			return nil, fmt.Errorf("%w: %s line %d: %v", ErrCorrupt, path, line, lineErr)
		}
		kv.apply(r)
		kv.recs++
		goodEnd += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, err
	}
	// A valid final line may have lost its newline to a crash between
	// the JSON bytes and the '\n'. Complete it, or the next append
	// would concatenate onto it and turn a good record into "garbage"
	// a later reopen truncates away.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, info.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return kv, nil
}

// apply folds one record into the index.
func (kv *KV) apply(r record) {
	if r.D {
		if b := kv.idx[r.B]; b != nil {
			delete(b, r.K)
			if len(b) == 0 {
				delete(kv.idx, r.B)
			}
		}
		return
	}
	b := kv.idx[r.B]
	if b == nil {
		b = make(map[string][]byte)
		kv.idx[r.B] = b
	}
	b[r.K] = append([]byte(nil), r.V...)
}

// append writes one record and fsyncs it before the index accepts it,
// so an acknowledged mutation survives a crash.
func (kv *KV) append(r record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := kv.file.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := kv.file.Sync(); err != nil {
		return err
	}
	kv.apply(r)
	kv.recs++
	return nil
}

// Put durably stores value under (bucket, key), overwriting any
// previous value. The value is copied; the caller may reuse it.
func (kv *KV) Put(bucket, key string, value []byte) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.file == nil {
		return errors.New("store: closed")
	}
	return kv.append(record{B: bucket, K: key, V: append([]byte(nil), value...)})
}

// Get returns the value under (bucket, key). The returned slice is a
// copy.
func (kv *KV) Get(bucket, key string) ([]byte, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.idx[bucket][key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete durably removes (bucket, key); removing an absent key is a
// no-op that writes nothing.
func (kv *KV) Delete(bucket, key string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.file == nil {
		return errors.New("store: closed")
	}
	if _, ok := kv.idx[bucket][key]; !ok {
		return nil
	}
	return kv.append(record{B: bucket, K: key, D: true})
}

// List returns the keys of bucket in sorted order. Fixed-width numeric
// keys therefore list in numeric order.
func (kv *KV) List(bucket string) []string {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	b := kv.idx[bucket]
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of live keys across all buckets.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	n := 0
	for _, b := range kv.idx {
		n += len(b)
	}
	return n
}

// Path returns the store's file path.
func (kv *KV) Path() string { return kv.path }

// Compact rewrites the log down to the live record set through a
// temp-file rename, reclaiming the space held by shadowed overwrites
// and deletes. The rename is atomic on POSIX filesystems, so a crash
// mid-compaction leaves either the old or the new file intact.
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.file == nil {
		return errors.New("store: closed")
	}
	tmpPath := kv.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	live := 0
	buckets := make([]string, 0, len(kv.idx))
	for b := range kv.idx {
		buckets = append(buckets, b)
	}
	sort.Strings(buckets)
	for _, b := range buckets {
		keys := make([]string, 0, len(kv.idx[b]))
		for k := range kv.idx[b] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			data, err := json.Marshal(record{B: b, K: k, V: kv.idx[b][k]})
			if err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return err
			}
			if _, err := w.Write(append(data, '\n')); err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return err
			}
			live++
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, kv.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Fsync the directory so the rename itself is durable.
	if dir, err := os.Open(filepath.Dir(kv.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	old := kv.file
	f, err := os.OpenFile(kv.path, os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	old.Close()
	kv.file = f
	kv.recs = live
	return nil
}

// Garbage returns the number of shadowed log records (total minus
// live) — the caller's compaction heuristic input.
func (kv *KV) Garbage() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	n := kv.recs
	for _, b := range kv.idx {
		n -= len(b)
	}
	return n
}

// Reset durably drops every record — the new-session path when a
// store file is reused across protocol sessions whose round numbers
// restart.
func (kv *KV) Reset() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.file == nil {
		return errors.New("store: closed")
	}
	if err := kv.file.Truncate(0); err != nil {
		return err
	}
	if _, err := kv.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := kv.file.Sync(); err != nil {
		return err
	}
	kv.idx = make(map[string]map[string][]byte)
	kv.recs = 0
	return nil
}

// Close releases the underlying file. Further mutations fail; reads
// keep serving the in-memory index.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.file == nil {
		return nil
	}
	err := kv.file.Close()
	kv.file = nil
	return err
}
