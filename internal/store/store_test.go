package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustPut(t *testing.T, kv *KV, bucket, key, val string) {
	t.Helper()
	if err := kv.Put(bucket, key, []byte(val)); err != nil {
		t.Fatalf("Put(%s,%s): %v", bucket, key, err)
	}
}

func wantGet(t *testing.T, kv *KV, bucket, key, val string) {
	t.Helper()
	got, ok := kv.Get(bucket, key)
	if !ok {
		t.Fatalf("Get(%s,%s): missing", bucket, key)
	}
	if string(got) != val {
		t.Fatalf("Get(%s,%s) = %q, want %q", bucket, key, got, val)
	}
}

func TestPutGetDeleteAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, kv, "roster", "001", "update-1")
	mustPut(t, kv, "roster", "002", "update-2")
	mustPut(t, kv, "beacon", "001", "entry-1")
	mustPut(t, kv, "roster", "001", "update-1b") // overwrite
	if err := kv.Delete("beacon", "001"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	wantGet(t, kv, "roster", "001", "update-1b")
	wantGet(t, kv, "roster", "002", "update-2")
	if _, ok := kv.Get("beacon", "001"); ok {
		t.Fatal("deleted key survived reopen")
	}
	if got := kv.List("roster"); !reflect.DeepEqual(got, []string{"001", "002"}) {
		t.Fatalf("List(roster) = %v", got)
	}
	if kv.Len() != 2 {
		t.Fatalf("Len = %d, want 2", kv.Len())
	}
}

// TestHealsTornFinalLine mirrors beacon's TestFileStoreHealsTornFinalLine:
// a crash mid-append leaves a torn final line; reopening truncates it
// away, keeps the valid prefix, and the store accepts new writes that
// a further reopen sees intact.
func TestHealsTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustPut(t, kv, "b", fmt.Sprintf("%03d", i), fmt.Sprintf("v%d", i))
	}
	kv.Close()

	// Simulate a crash mid-append: a partial JSON line at the end.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"b":"b","k":"003","v":"YW`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	kv, err = Open(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	if n := len(kv.List("b")); n != 3 {
		t.Fatalf("after healing: %d keys, want 3", n)
	}
	wantGet(t, kv, "b", "002", "v2")
	// The healed store must accept the write the crash interrupted.
	mustPut(t, kv, "b", "003", "v3")
	kv.Close()

	kv, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if n := len(kv.List("b")); n != 4 {
		t.Fatalf("after heal+append+reopen: %d keys, want 4", n)
	}
	wantGet(t, kv, "b", "003", "v3")
}

// TestHealsMissingFinalNewline: a crash between the JSON bytes and the
// trailing '\n' leaves a valid line without its newline. Reopening
// keeps the record and completes the newline so the next append lands
// on its own line.
func TestHealsMissingFinalNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, kv, "b", "001", "v1")
	mustPut(t, kv, "b", "002", "v2")
	kv.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("fixture: expected trailing newline")
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o600); err != nil {
		t.Fatal(err)
	}

	kv, err = Open(path)
	if err != nil {
		t.Fatalf("reopen after chopped newline: %v", err)
	}
	if n := len(kv.List("b")); n != 2 {
		t.Fatalf("after reopen: %d keys, want 2", n)
	}
	mustPut(t, kv, "b", "003", "v3")
	kv.Close()

	kv, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if n := len(kv.List("b")); n != 3 {
		t.Fatalf("after reopen: %d keys, want 3", n)
	}
	wantGet(t, kv, "b", "002", "v2")
	wantGet(t, kv, "b", "003", "v3")
}

func TestMidFileGarbageRefusesToOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, kv, "b", "001", "v1")
	mustPut(t, kv, "b", "002", "v2")
	kv.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append([]byte("{garbage}\n"), data...), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-file garbage: err = %v, want ErrCorrupt", err)
	}
}

func TestCompactDropsShadowedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, kv, "b", "hot", fmt.Sprintf("v%d", i))
	}
	mustPut(t, kv, "b", "cold", "keep")
	if err := kv.Delete("b", "hot"); err != nil {
		t.Fatal(err)
	}
	if g := kv.Garbage(); g != 11 { // 9 shadowed puts + shadowed final put + delete marker
		t.Fatalf("Garbage = %d, want 11", g)
	}
	before, _ := os.Stat(path)
	if err := kv.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	if g := kv.Garbage(); g != 0 {
		t.Fatalf("Garbage after compact = %d", g)
	}
	// The compacted store keeps working and survives reopen.
	mustPut(t, kv, "b", "new", "v")
	kv.Close()
	kv, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	wantGet(t, kv, "b", "cold", "keep")
	wantGet(t, kv, "b", "new", "v")
	if _, ok := kv.Get("b", "hot"); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
}

func TestResetClearsEverything(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.kv")
	kv, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, kv, "b", "001", "v1")
	if err := kv.Reset(); err != nil {
		t.Fatal(err)
	}
	if kv.Len() != 0 {
		t.Fatalf("Len after reset = %d", kv.Len())
	}
	mustPut(t, kv, "b", "002", "v2")
	kv.Close()
	kv, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if _, ok := kv.Get("b", "001"); ok {
		t.Fatal("pre-reset key survived")
	}
	wantGet(t, kv, "b", "002", "v2")
}
