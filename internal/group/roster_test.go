package group

import (
	"bytes"
	"testing"

	"dissent/internal/crypto"
)

// buildRosterFixture builds a small definition plus the server
// keypairs needed to certify updates (usable from fuzz seed setup).
func buildRosterFixture(servers, clients int) (*Definition, []*crypto.KeyPair, []*crypto.KeyPair, error) {
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test()
	sKPs := make([]*crypto.KeyPair, servers)
	sKeys := make([]crypto.Element, servers)
	sMsgKeys := make([]crypto.Element, servers)
	for i := range sKPs {
		sKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		sKeys[i] = sKPs[i].Public
		mk, _ := crypto.GenerateKeyPair(msgGrp, nil)
		sMsgKeys[i] = mk.Public
	}
	cKPs := make([]*crypto.KeyPair, clients)
	cKeys := make([]crypto.Element, clients)
	for i := range cKPs {
		cKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		cKeys[i] = cKPs[i].Public
	}
	policy := DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	def, err := NewDefinition("roster-test", sKeys, sMsgKeys, cKeys, policy)
	if err != nil {
		return nil, nil, nil, err
	}
	// Re-associate server keypairs with the (ID-sorted) definition.
	ordered := make([]*crypto.KeyPair, servers)
	for i, m := range def.Servers {
		for _, kp := range sKPs {
			if IDFromKey(keyGrp, kp.Public) == m.ID {
				ordered[i] = kp
			}
		}
	}
	return def, ordered, cKPs, nil
}

func rosterFixture(t *testing.T, servers, clients int) (*Definition, []*crypto.KeyPair, []*crypto.KeyPair) {
	t.Helper()
	def, sKPs, cKPs, err := buildRosterFixture(servers, clients)
	if err != nil {
		t.Fatal(err)
	}
	return def, sKPs, cKPs
}

// certify signs an update with every server key in index order.
func certify(t *testing.T, def *Definition, u *RosterUpdate, sKPs []*crypto.KeyPair) {
	t.Helper()
	u.Sigs = nil
	for _, kp := range sKPs {
		sig, err := SignRosterUpdate(u, def.GroupID(), kp, nil)
		if err != nil {
			t.Fatal(err)
		}
		u.Sigs = append(u.Sigs, sig)
	}
}

func TestRosterUpdateChain(t *testing.T) {
	def, sKPs, _ := rosterFixture(t, 3, 4)
	genesisID := def.GroupID()

	// Version 1: expel client 1.
	u1 := &RosterUpdate{
		Version:    1,
		PrevDigest: def.RosterDigest(),
		Remove:     []NodeID{def.Clients[1].ID},
	}
	certify(t, def, u1, sKPs)
	d1, err := def.ApplyRosterUpdate(u1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Version != 1 || !d1.Clients[1].Expelled {
		t.Fatalf("version %d expelled=%v after removal", d1.Version, d1.Clients[1].Expelled)
	}
	if d1.GroupID() != genesisID {
		t.Fatal("group ID changed across roster evolution")
	}
	if d1.ActiveClients() != 3 {
		t.Fatalf("active clients %d, want 3", d1.ActiveClients())
	}
	if def.Version != 0 || def.Clients[1].Expelled {
		t.Fatal("ApplyRosterUpdate mutated the receiver")
	}

	// Version 2: re-admit client 1 and admit a new member.
	keyGrp := crypto.P256()
	joiner, _ := crypto.GenerateKeyPair(keyGrp, nil)
	pseu, _ := crypto.GenerateKeyPair(keyGrp, nil)
	u2 := &RosterUpdate{
		Version:    2,
		PrevDigest: d1.RosterDigest(),
		Admit: []RosterMember{
			{PubKey: keyGrp.Encode(d1.Clients[1].PubKey)},
			{PubKey: keyGrp.Encode(joiner.Public), PseuKey: keyGrp.Encode(pseu.Public), Addr: "127.0.0.1:9999"},
		},
	}
	certify(t, d1, u2, sKPs)
	d2, err := d1.ApplyRosterUpdate(u2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Clients[1].Expelled {
		t.Fatal("re-admission left the client expelled")
	}
	if len(d2.Clients) != 5 {
		t.Fatalf("%d clients after admission, want 5", len(d2.Clients))
	}
	if d2.ClientIndex(IDFromKey(keyGrp, joiner.Public)) != 4 {
		t.Fatal("joiner not appended at a stable index")
	}
	if d2.RosterDigest() != u2.Digest(genesisID) {
		t.Fatal("digest chain head mismatch")
	}
}

func TestRosterUpdateRejections(t *testing.T) {
	def, sKPs, _ := rosterFixture(t, 2, 3)
	keyGrp := crypto.P256()
	joiner, _ := crypto.GenerateKeyPair(keyGrp, nil)

	base := func() *RosterUpdate {
		return &RosterUpdate{Version: 1, PrevDigest: def.RosterDigest(),
			Remove: []NodeID{def.Clients[0].ID}}
	}
	cases := []struct {
		name   string
		mutate func(*RosterUpdate)
	}{
		{"stale version", func(u *RosterUpdate) { u.Version = 0 }},
		{"future version", func(u *RosterUpdate) { u.Version = 5 }},
		{"wrong prev digest", func(u *RosterUpdate) { u.PrevDigest[0] ^= 1 }},
		{"missing signature", func(u *RosterUpdate) { u.Sigs = u.Sigs[:1] }},
		{"tampered signature", func(u *RosterUpdate) {
			u.Sigs[0] = append([]byte(nil), u.Sigs[0]...)
			u.Sigs[0][0] ^= 1
		}},
		{"tampered content", func(u *RosterUpdate) { u.Remove = nil }},
		{"unknown removal", func(u *RosterUpdate) {
			u.Remove = append(u.Remove, NodeID{9, 9, 9})
		}},
		{"admit and remove overlap", func(u *RosterUpdate) {
			u.Admit = append(u.Admit, RosterMember{PubKey: keyGrp.Encode(def.Clients[0].PubKey)})
		}},
		{"new member without pseudonym key", func(u *RosterUpdate) {
			u.Admit = append(u.Admit, RosterMember{PubKey: keyGrp.Encode(joiner.Public)})
		}},
		{"admit a server", func(u *RosterUpdate) {
			u.Admit = append(u.Admit, RosterMember{PubKey: keyGrp.Encode(def.Servers[0].PubKey)})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := base()
			certify(t, def, u, sKPs)
			tc.mutate(u)
			if _, err := def.ApplyRosterUpdate(u); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}

	// The unmutated update still applies (the harness itself is sound).
	u := base()
	certify(t, def, u, sKPs)
	if _, err := def.ApplyRosterUpdate(u); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}
}

func TestRosterUpdateCodecRoundTrip(t *testing.T) {
	def, sKPs, _ := rosterFixture(t, 2, 2)
	keyGrp := crypto.P256()
	joiner, _ := crypto.GenerateKeyPair(keyGrp, nil)
	pseu, _ := crypto.GenerateKeyPair(keyGrp, nil)
	u := &RosterUpdate{
		Version:    1,
		PrevDigest: def.RosterDigest(),
		Admit: []RosterMember{
			{PubKey: keyGrp.Encode(joiner.Public), PseuKey: keyGrp.Encode(pseu.Public), Addr: "host:1234"},
		},
		Remove: []NodeID{def.Clients[0].ID},
	}
	certify(t, def, u, sKPs)
	enc := u.Encode()
	dec, err := DecodeRosterUpdate(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("roundtrip changed the encoding")
	}
	if _, err := def.ApplyRosterUpdate(dec); err != nil {
		t.Fatalf("decoded update rejected: %v", err)
	}
	// Truncations never crash and never decode successfully at lengths
	// that drop bytes.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeRosterUpdate(enc[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
}

// FuzzRosterUpdateDecode fuzzes the wire decoder (the path a hostile
// peer reaches first) and checks that successful decodes re-encode
// canonically.
func FuzzRosterUpdateDecode(f *testing.F) {
	// Seed corpus: an empty update, a certified realistic one, and a few
	// hostile shapes (huge counts, truncations).
	empty := (&RosterUpdate{Version: 1}).Encode()
	f.Add(empty)
	f.Add(empty[:7])
	def, sKPs, _, err := buildRosterFixture(2, 2)
	if err != nil {
		f.Fatal(err)
	}
	keyGrp := crypto.P256()
	joiner, _ := crypto.GenerateKeyPair(keyGrp, nil)
	pseu, _ := crypto.GenerateKeyPair(keyGrp, nil)
	u := &RosterUpdate{
		Version:    1,
		PrevDigest: def.RosterDigest(),
		Admit:      []RosterMember{{PubKey: keyGrp.Encode(joiner.Public), PseuKey: keyGrp.Encode(pseu.Public), Addr: "a:1"}},
		Remove:     []NodeID{def.Clients[0].ID},
	}
	for _, kp := range sKPs {
		sig, _ := SignRosterUpdate(u, def.GroupID(), kp, nil)
		u.Sigs = append(u.Sigs, sig)
	}
	full := u.Encode()
	f.Add(full)
	f.Add(full[:len(full)/2])
	huge := append([]byte(nil), full...)
	for i := 40; i < 44 && i < len(huge); i++ {
		huge[i] = 0xFF // blow up the admit count
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeRosterUpdate(data)
		if err != nil {
			return
		}
		reenc := u.Encode()
		if !bytes.Equal(reenc, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, reenc)
		}
	})
}
