// Package group defines Dissent group membership: the static list of
// server and client public keys that constitutes a group, the policy
// knobs fixed at group creation, and the self-certifying group
// identifier (the hash of the definition file, §3.2).
package group

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"dissent/internal/crypto"
)

// NodeID identifies a member: the first 8 bytes of the SHA-256 of its
// encoded public key, so identities are self-certifying.
type NodeID [8]byte

// String returns the hex form of the ID.
func (id NodeID) String() string { return hex.EncodeToString(id[:]) }

// IDFromKey derives a member's NodeID from its public key.
func IDFromKey(g crypto.Group, pub crypto.Element) NodeID {
	h := crypto.Hash("dissent/node-id", []byte(g.Name()), g.Encode(pub))
	var id NodeID
	copy(id[:], h[:8])
	return id
}

// Member is one group participant.
type Member struct {
	ID     NodeID
	PubKey crypto.Element
	// MsgPubKey is a server's public key in the message-shuffle group
	// (general message shuffles run in a mod-p group whose cheap
	// embedding suits arbitrary byte strings, §3.10). Nil for clients.
	MsgPubKey crypto.Element
	// Expelled marks a client removed by a certified RosterUpdate.
	// Expelled members stay in the list so client indices (and retained
	// round history) remain stable; they may be re-admitted by a later
	// update after the policy cooldown.
	Expelled bool
}

// Policy holds the group-creation-time protocol constants.
type Policy struct {
	// Alpha is the participation floor: round r does not complete until
	// at least Alpha * (round r-1 participation) clients submit (§3.7).
	Alpha float64
	// WindowThreshold is the client fraction that must submit before
	// the adaptive window starts closing (the paper uses 0.95, §5.1).
	WindowThreshold float64
	// WindowMultiplier scales the time-to-threshold to set the final
	// window (the paper evaluates 1.1, 1.2 and 2.0; default 1.1).
	WindowMultiplier float64
	// WindowMin is a lower bound on the submission window.
	WindowMin time.Duration
	// HardTimeout fails the round outright (the paper's 120 s).
	HardTimeout time.Duration
	// Shadows is the shuffle proof's cut-and-choose parameter.
	Shadows int
	// DefaultOpenLen, MaxSlotLen, IdleCloseRounds configure the DC-net
	// slot schedule (see internal/dcnet).
	DefaultOpenLen  int
	MaxSlotLen      int
	IdleCloseRounds int
	// RetainRounds bounds per-round state kept for accusation tracing.
	RetainRounds int
	// BeaconEpochRounds enables the anytrust randomness beacon
	// (internal/beacon): servers contribute commit–reveal shares every
	// round and the slot schedule's layout permutation is re-derived
	// from the beacon output every BeaconEpochRounds rounds. 0 disables
	// the beacon entirely (large unsigned simulations).
	BeaconEpochRounds int
	// ReadmitCooldownRounds is the number of DC-net rounds an expelled
	// client must wait after its expulsion before a rejoin request is
	// eligible for re-admission at an epoch boundary (membership churn
	// runs only when BeaconEpochRounds is nonzero).
	ReadmitCooldownRounds int
	// OpenAdmission lets servers accept join requests from keys they
	// have not explicitly pre-approved with Admit. Admission remains a
	// per-server policy decision either way: a member enters only via a
	// certified roster update at an epoch boundary.
	OpenAdmission bool
	// MessageGroup names the group used for general message shuffles
	// (accusations): "modp-2048" in production, "modp-512-test" in
	// tests. See crypto.GroupByName.
	MessageGroup string
	// SignMessages controls per-message Schnorr signatures. Production
	// deployments leave this on; very large single-process simulations
	// may disable it and account signature cost analytically.
	SignMessages bool
}

// DefaultPolicy returns the policy used in the paper's evaluation.
func DefaultPolicy() Policy {
	return Policy{
		Alpha:                 0.95,
		WindowThreshold:       0.95,
		WindowMultiplier:      1.1,
		WindowMin:             50 * time.Millisecond,
		HardTimeout:           120 * time.Second,
		Shadows:               16,
		DefaultOpenLen:        1024,
		MaxSlotLen:            256 << 10,
		IdleCloseRounds:       4,
		RetainRounds:          8,
		BeaconEpochRounds:     16,
		ReadmitCooldownRounds: 32,
		OpenAdmission:         false,
		MessageGroup:          "modp-2048",
		SignMessages:          true,
	}
}

// Validate checks policy sanity.
func (p Policy) Validate() error {
	switch {
	case p.Alpha < 0 || p.Alpha > 1:
		return errors.New("group: Alpha outside [0,1]")
	case p.WindowThreshold <= 0 || p.WindowThreshold > 1:
		return errors.New("group: WindowThreshold outside (0,1]")
	case p.WindowMultiplier < 1:
		return errors.New("group: WindowMultiplier below 1")
	case p.HardTimeout <= 0:
		return errors.New("group: HardTimeout must be positive")
	case p.Shadows <= 0:
		return errors.New("group: Shadows must be positive")
	case p.RetainRounds <= 0:
		return errors.New("group: RetainRounds must be positive")
	case p.BeaconEpochRounds < 0:
		return errors.New("group: BeaconEpochRounds must be non-negative")
	case p.ReadmitCooldownRounds < 0:
		return errors.New("group: ReadmitCooldownRounds must be non-negative")
	}
	if _, err := crypto.GroupByName(p.MessageGroup); err != nil {
		return fmt.Errorf("group: %w", err)
	}
	return nil
}

// Definition is a complete group definition: the membership lists and
// policy. The hash of the genesis (Version 0) definition is the
// group's self-certifying ID; the client roster then evolves through
// certified RosterUpdates (see roster.go), with Version counting
// applied updates. The server set is fixed for the group's lifetime.
type Definition struct {
	Name    string
	Servers []Member
	Clients []Member
	Policy  Policy

	// Version is the roster version: 0 at genesis, incremented by each
	// applied RosterUpdate.
	Version uint64

	// genesisID caches the genesis definition's GroupID across roster
	// evolution; rosterDigest is the roster hash-chain head.
	genesisID    [32]byte
	genesisSet   bool
	rosterDigest [32]byte
	rosterSet    bool
}

// Group returns the identity-key group (fixed to P-256).
func (d *Definition) Group() crypto.Group { return crypto.P256() }

// MsgGroup returns the message-shuffle group named by the policy.
func (d *Definition) MsgGroup() crypto.Group {
	g, err := crypto.GroupByName(d.Policy.MessageGroup)
	if err != nil {
		panic("group: validated policy has unknown message group")
	}
	return g
}

// Validate checks structural validity: non-empty member lists, valid
// policy, unique IDs consistent with keys.
func (d *Definition) Validate() error {
	if len(d.Servers) == 0 {
		return errors.New("group: no servers")
	}
	if len(d.Clients) == 0 {
		return errors.New("group: no clients")
	}
	if err := d.Policy.Validate(); err != nil {
		return err
	}
	g := d.Group()
	mg := d.MsgGroup()
	for _, m := range d.Servers {
		if m.MsgPubKey == nil {
			return fmt.Errorf("group: server %s lacks a message-shuffle key", m.ID)
		}
		if mg.IsIdentity(m.MsgPubKey) {
			return fmt.Errorf("group: server %s has identity message key", m.ID)
		}
	}
	seen := make(map[NodeID]bool)
	for _, m := range append(append([]Member(nil), d.Servers...), d.Clients...) {
		if m.PubKey == nil {
			return fmt.Errorf("group: member %s has no key", m.ID)
		}
		if IDFromKey(g, m.PubKey) != m.ID {
			return fmt.Errorf("group: member %s ID does not match key", m.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("group: duplicate member %s", m.ID)
		}
		seen[m.ID] = true
	}
	return nil
}

// GroupID returns the self-certifying identifier: the hash of the
// canonical encoding of the genesis definition. Definitions evolved by
// ApplyRosterUpdate keep the genesis ID — the group's identity (and
// its session tag on shared transports) is stable across churn.
func (d *Definition) GroupID() [32]byte {
	if d.genesisSet {
		return d.genesisID
	}
	enc, err := d.MarshalJSON()
	if err != nil {
		// Marshal of a validated definition cannot fail.
		panic("group: marshal: " + err.Error())
	}
	var id [32]byte
	copy(id[:], crypto.Hash("dissent/group-id", enc))
	return id
}

// ServerPubKeys returns the servers' identity public keys in server
// index order (the verification key set for schedule certificates,
// round certificates, and beacon shares).
func (d *Definition) ServerPubKeys() []crypto.Element {
	pubs := make([]crypto.Element, len(d.Servers))
	for i, m := range d.Servers {
		pubs[i] = m.PubKey
	}
	return pubs
}

// ServerIndex returns the index of server id, or -1.
func (d *Definition) ServerIndex(id NodeID) int {
	for i, m := range d.Servers {
		if m.ID == id {
			return i
		}
	}
	return -1
}

// ClientIndex returns the index of client id, or -1.
func (d *Definition) ClientIndex(id NodeID) int {
	for i, m := range d.Clients {
		if m.ID == id {
			return i
		}
	}
	return -1
}

// UpstreamServer returns the server a client connects to by default:
// clients spread uniformly over servers by index.
func (d *Definition) UpstreamServer(clientIndex int) int {
	return clientIndex % len(d.Servers)
}

// jsonDef is the serialized form: keys as hex strings.
type jsonDef struct {
	Name    string       `json:"name"`
	Servers []jsonMember `json:"servers"`
	Clients []jsonMember `json:"clients"`
	Policy  Policy       `json:"policy"`
}

type jsonMember struct {
	PubKey string `json:"pubkey"`
	MsgKey string `json:"msgkey,omitempty"`
}

// MarshalJSON encodes the definition canonically (members in list
// order, keys hex-encoded; IDs are derived, not stored).
func (d *Definition) MarshalJSON() ([]byte, error) {
	g := d.Group()
	jd := jsonDef{Name: d.Name, Policy: d.Policy}
	mg := d.MsgGroup()
	for _, m := range d.Servers {
		jm := jsonMember{PubKey: hex.EncodeToString(g.Encode(m.PubKey))}
		if m.MsgPubKey != nil {
			jm.MsgKey = hex.EncodeToString(mg.Encode(m.MsgPubKey))
		}
		jd.Servers = append(jd.Servers, jm)
	}
	for _, m := range d.Clients {
		jd.Clients = append(jd.Clients, jsonMember{PubKey: hex.EncodeToString(g.Encode(m.PubKey))})
	}
	return json.Marshal(jd)
}

// UnmarshalJSON decodes and re-derives member IDs.
func (d *Definition) UnmarshalJSON(data []byte) error {
	var jd jsonDef
	if err := json.Unmarshal(data, &jd); err != nil {
		return err
	}
	g := crypto.P256()
	decode := func(jm jsonMember) (Member, error) {
		raw, err := hex.DecodeString(jm.PubKey)
		if err != nil {
			return Member{}, fmt.Errorf("group: bad key hex: %w", err)
		}
		pub, err := g.Decode(raw)
		if err != nil {
			return Member{}, fmt.Errorf("group: bad key: %w", err)
		}
		return Member{ID: IDFromKey(g, pub), PubKey: pub}, nil
	}
	d.Name = jd.Name
	d.Policy = jd.Policy
	mg, err := crypto.GroupByName(jd.Policy.MessageGroup)
	if err != nil {
		return fmt.Errorf("group: %w", err)
	}
	d.Servers, d.Clients = nil, nil
	for _, jm := range jd.Servers {
		m, err := decode(jm)
		if err != nil {
			return err
		}
		if jm.MsgKey != "" {
			raw, err := hex.DecodeString(jm.MsgKey)
			if err != nil {
				return fmt.Errorf("group: bad msg key hex: %w", err)
			}
			if m.MsgPubKey, err = mg.Decode(raw); err != nil {
				return fmt.Errorf("group: bad msg key: %w", err)
			}
		}
		d.Servers = append(d.Servers, m)
	}
	for _, jm := range jd.Clients {
		m, err := decode(jm)
		if err != nil {
			return err
		}
		d.Clients = append(d.Clients, m)
	}
	return nil
}

// NewDefinition assembles a definition from raw public keys, deriving
// IDs and sorting members by ID for canonical ordering. serverMsgKeys
// are the servers' message-shuffle-group keys, parallel to serverKeys.
func NewDefinition(name string, serverKeys, serverMsgKeys, clientKeys []crypto.Element, policy Policy) (*Definition, error) {
	if len(serverMsgKeys) != len(serverKeys) {
		return nil, errors.New("group: server key list lengths differ")
	}
	g := crypto.P256()
	servers := make([]Member, len(serverKeys))
	for i, k := range serverKeys {
		servers[i] = Member{ID: IDFromKey(g, k), PubKey: k, MsgPubKey: serverMsgKeys[i]}
	}
	sort.Slice(servers, func(a, b int) bool {
		return string(servers[a].ID[:]) < string(servers[b].ID[:])
	})
	clients := make([]Member, len(clientKeys))
	for i, k := range clientKeys {
		clients[i] = Member{ID: IDFromKey(g, k), PubKey: k}
	}
	sort.Slice(clients, func(a, b int) bool {
		return string(clients[a].ID[:]) < string(clients[b].ID[:])
	})
	d := &Definition{
		Name:    name,
		Servers: servers,
		Clients: clients,
		Policy:  policy,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
