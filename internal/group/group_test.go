package group

import (
	"encoding/json"
	"testing"
	"time"

	"dissent/internal/crypto"
)

func testKeys(t *testing.T, n int) []crypto.Element {
	t.Helper()
	g := crypto.P256()
	keys := make([]crypto.Element, n)
	for i := range keys {
		kp, err := crypto.GenerateKeyPair(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp.Public
	}
	return keys
}

func testMsgKeys(t *testing.T, n int) []crypto.Element {
	t.Helper()
	g := crypto.ModP512Test()
	keys := make([]crypto.Element, n)
	for i := range keys {
		kp, err := crypto.GenerateKeyPair(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp.Public
	}
	return keys
}

func testPolicy() Policy {
	p := DefaultPolicy()
	p.MessageGroup = "modp-512-test"
	return p
}

func testDef(t *testing.T, servers, clients int) *Definition {
	t.Helper()
	d, err := NewDefinition("test", testKeys(t, servers), testMsgKeys(t, servers), testKeys(t, clients), testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDefinitionValid(t *testing.T) {
	d := testDef(t, 3, 8)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Servers) != 3 || len(d.Clients) != 8 {
		t.Fatalf("membership counts wrong: %d/%d", len(d.Servers), len(d.Clients))
	}
}

func TestNewDefinitionRejectsEmpty(t *testing.T) {
	if _, err := NewDefinition("x", nil, nil, testKeys(t, 2), testPolicy()); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := NewDefinition("x", testKeys(t, 2), testMsgKeys(t, 2), nil, testPolicy()); err == nil {
		t.Error("no clients accepted")
	}
	if _, err := NewDefinition("x", testKeys(t, 2), testMsgKeys(t, 1), testKeys(t, 2), testPolicy()); err == nil {
		t.Error("mismatched msg key count accepted")
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Policy){
		func(p *Policy) { p.Alpha = 1.5 },
		func(p *Policy) { p.Alpha = -0.1 },
		func(p *Policy) { p.WindowThreshold = 0 },
		func(p *Policy) { p.WindowMultiplier = 0.9 },
		func(p *Policy) { p.HardTimeout = 0 },
		func(p *Policy) { p.Shadows = 0 },
		func(p *Policy) { p.RetainRounds = 0 },
		func(p *Policy) { p.MessageGroup = "bogus" },
	}
	for i, mut := range bad {
		p := testPolicy()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestIDFromKeyDeterministic(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	if IDFromKey(g, kp.Public) != IDFromKey(g, kp.Public) {
		t.Error("non-deterministic ID derivation")
	}
	other, _ := crypto.GenerateKeyPair(g, nil)
	if IDFromKey(g, kp.Public) == IDFromKey(g, other.Public) {
		t.Error("ID collision for distinct keys")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := testDef(t, 2, 4)
	enc, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var got Definition
	if err := json.Unmarshal(enc, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped definition invalid: %v", err)
	}
	if got.GroupID() != d.GroupID() {
		t.Error("group ID changed across serialization")
	}
	if got.Name != d.Name || len(got.Servers) != 2 || len(got.Clients) != 4 {
		t.Error("fields lost in round trip")
	}
	g := d.Group()
	for i := range d.Servers {
		if !g.Equal(got.Servers[i].PubKey, d.Servers[i].PubKey) {
			t.Error("server key changed")
		}
	}
}

func TestUnmarshalRejectsBadKeys(t *testing.T) {
	var d Definition
	if err := json.Unmarshal([]byte(`{"servers":[{"pubkey":"zz"}]}`), &d); err == nil {
		t.Error("bad hex accepted")
	}
	if err := json.Unmarshal([]byte(`{"servers":[{"pubkey":"ffff"}]}`), &d); err == nil {
		t.Error("bad point accepted")
	}
}

func TestGroupIDBindsEverything(t *testing.T) {
	d1 := testDef(t, 2, 3)
	id1 := d1.GroupID()

	// Changing the name changes the ID.
	d1.Name = "other"
	if d1.GroupID() == id1 {
		t.Error("group ID ignores name")
	}
	d1.Name = "test"

	// Changing policy changes the ID.
	d1.Policy.Alpha = 0.5
	if d1.GroupID() == id1 {
		t.Error("group ID ignores policy")
	}
}

func TestIndexLookups(t *testing.T) {
	d := testDef(t, 3, 7)
	for i, m := range d.Servers {
		if d.ServerIndex(m.ID) != i {
			t.Errorf("ServerIndex(%s) != %d", m.ID, i)
		}
		if d.ClientIndex(m.ID) != -1 {
			t.Error("server found in client list")
		}
	}
	for i, m := range d.Clients {
		if d.ClientIndex(m.ID) != i {
			t.Errorf("ClientIndex(%s) != %d", m.ID, i)
		}
	}
	var unknown NodeID
	if d.ServerIndex(unknown) != -1 || d.ClientIndex(unknown) != -1 {
		t.Error("unknown ID found")
	}
}

func TestUpstreamServerSpread(t *testing.T) {
	d := testDef(t, 3, 9)
	counts := make([]int, 3)
	for i := range d.Clients {
		s := d.UpstreamServer(i)
		if s < 0 || s >= 3 {
			t.Fatalf("upstream index %d out of range", s)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c != 3 {
			t.Errorf("server %d has %d clients, want 3", i, c)
		}
	}
}

func TestValidateCatchesTamperedID(t *testing.T) {
	d := testDef(t, 2, 2)
	d.Clients[0].ID[0] ^= 0xFF
	if err := d.Validate(); err == nil {
		t.Error("tampered member ID accepted")
	}
}

func TestValidateCatchesDuplicate(t *testing.T) {
	d := testDef(t, 2, 2)
	d.Clients[1] = d.Clients[0]
	if err := d.Validate(); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestDefaultPolicyMatchesPaper(t *testing.T) {
	p := DefaultPolicy()
	if p.WindowThreshold != 0.95 {
		t.Error("threshold should be 95% per §5.1")
	}
	if p.WindowMultiplier != 1.1 {
		t.Error("multiplier should default to the paper's chosen 1.1x")
	}
	if p.HardTimeout != 120*time.Second {
		t.Error("hard timeout should be the paper's 120s")
	}
}
