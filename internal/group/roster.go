package group

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dissent/internal/crypto"
	"dissent/internal/wire"
)

// Membership churn (§3.7, §3.9 aftermath): the group's client roster is
// versioned. Version 0 is the genesis definition; every epoch boundary
// the anytrust server set certifies a RosterUpdate — a delta of
// admissions (new joiners, re-admitted expellees) and removals — that
// is hash-chained to the previous version. The server list never
// changes: churn decisions are server-side policy, the versioned
// update is the shared mechanism every replica applies in lockstep.

// RosterSignContext is the Schnorr context servers sign roster updates
// under — shared by the certifying servers (internal/core) and every
// verifier, so the two sides can never drift apart.
const RosterSignContext = "dissent/roster"

// RosterMember is one admitted member in a roster update: the identity
// key, the pseudonym key that seeds the member's message slot (empty
// for re-admissions, whose original slot survives), and an optional
// dialable transport address for TCP fabrics.
type RosterMember struct {
	PubKey  []byte // encoded identity public key (P-256)
	PseuKey []byte // encoded pseudonym slot key; empty when re-admitting
	Addr    string // transport address; empty on address-less fabrics
}

// RosterUpdate is one certified roster transition: applying it to the
// definition at Version-1 yields the definition at Version. PrevDigest
// chains it to the previous version's roster digest, and Sigs holds one
// Schnorr signature per server (in server index order) over
// SignedBytes, so a single honest server suffices to prevent a forged
// transition.
type RosterUpdate struct {
	Version    uint64
	PrevDigest [32]byte
	Admit      []RosterMember
	Remove     []NodeID
	Sigs       [][]byte
}

// maxRosterList bounds decoded list lengths against hostile inputs.
const maxRosterList = 1 << 20

// AppendRosterMembers appends a count-prefixed member list in the wire
// format shared by RosterUpdate and internal/core's RosterPropose —
// one codec, so the proposal framing and the certified update framing
// can never drift apart.
func AppendRosterMembers(b []byte, ms []RosterMember) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(ms)))
	for _, m := range ms {
		b = appendBytes(b, m.PubKey)
		b = appendBytes(b, m.PseuKey)
		b = appendBytes(b, []byte(m.Addr))
	}
	return b
}

// DecodeRosterMembers parses a list written by AppendRosterMembers and
// returns the remaining bytes.
func DecodeRosterMembers(data []byte) ([]RosterMember, []byte, error) {
	d := rosterDec{B: data}
	n, err := d.Count(maxRosterList)
	if err != nil {
		return nil, nil, err
	}
	var ms []RosterMember
	for i := 0; i < n; i++ {
		var m RosterMember
		if m.PubKey, err = d.Bytes(); err != nil {
			return nil, nil, err
		}
		if m.PseuKey, err = d.Bytes(); err != nil {
			return nil, nil, err
		}
		addr, err := d.Bytes()
		if err != nil {
			return nil, nil, err
		}
		m.Addr = string(addr)
		ms = append(ms, m)
	}
	return ms, d.B, nil
}

// AppendNodeIDs appends a count-prefixed node-ID list.
func AppendNodeIDs(b []byte, ids []NodeID) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		b = append(b, id[:]...)
	}
	return b
}

// DecodeNodeIDs parses a list written by AppendNodeIDs and returns the
// remaining bytes.
func DecodeNodeIDs(data []byte) ([]NodeID, []byte, error) {
	d := rosterDec{B: data}
	n, err := d.Count(maxRosterList)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n)*8 > uint64(len(d.B)) {
		return nil, nil, errRosterTruncated
	}
	var ids []NodeID
	for i := 0; i < n; i++ {
		var id NodeID
		copy(id[:], d.B[:8])
		d.B = d.B[8:]
		ids = append(ids, id)
	}
	return ids, d.B, nil
}

// encodeBody serializes everything the signatures cover.
func (u *RosterUpdate) encodeBody() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint64(b, u.Version)
	b = append(b, u.PrevDigest[:]...)
	b = AppendRosterMembers(b, u.Admit)
	b = AppendNodeIDs(b, u.Remove)
	return b
}

// Encode serializes the update, signatures included.
func (u *RosterUpdate) Encode() []byte {
	b := u.encodeBody()
	b = binary.BigEndian.AppendUint32(b, uint32(len(u.Sigs)))
	for _, s := range u.Sigs {
		b = appendBytes(b, s)
	}
	return b
}

func appendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// rosterDec is the shared bounds-checked wire reader (internal/wire),
// the same codec internal/core's message payloads decode with.
type rosterDec = wire.Reader

// errRosterTruncated aliases the shared truncation error so existing
// callers (and errors.Is checks) keep working.
var errRosterTruncated = wire.ErrTruncated

// DecodeRosterUpdate parses an update serialized by Encode.
func DecodeRosterUpdate(data []byte) (*RosterUpdate, error) {
	d := rosterDec{B: data}
	u := &RosterUpdate{}
	var err error
	if u.Version, err = d.U64(); err != nil {
		return nil, err
	}
	if len(d.B) < 32 {
		return nil, errRosterTruncated
	}
	copy(u.PrevDigest[:], d.B[:32])
	d.B = d.B[32:]
	if u.Admit, d.B, err = DecodeRosterMembers(d.B); err != nil {
		return nil, err
	}
	if u.Remove, d.B, err = DecodeNodeIDs(d.B); err != nil {
		return nil, err
	}
	nSigs, err := d.Count(maxRosterList)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSigs; i++ {
		s, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		u.Sigs = append(u.Sigs, s)
	}
	if len(d.B) != 0 {
		return nil, fmt.Errorf("group: %d trailing bytes after roster update", len(d.B))
	}
	return u, nil
}

// SignedBytes is the byte string each server signs (and every replica
// verifies) to certify the update for one group.
func (u *RosterUpdate) SignedBytes(groupID [32]byte) []byte {
	return crypto.Hash("dissent/roster-update", groupID[:], u.encodeBody())
}

// Digest condenses the certified transition into the chain head the
// next version's PrevDigest must match. Signatures are excluded so the
// digest is computable before certification completes.
func (u *RosterUpdate) Digest(groupID [32]byte) [32]byte {
	var d [32]byte
	copy(d[:], crypto.Hash("dissent/roster-digest", u.SignedBytes(groupID)))
	return d
}

// SignRosterUpdate produces one server's certification signature.
// rand is the signature randomness source (nil = crypto/rand).
func SignRosterUpdate(u *RosterUpdate, groupID [32]byte, kp *crypto.KeyPair, rand io.Reader) ([]byte, error) {
	g := crypto.P256()
	sig, err := kp.Sign(RosterSignContext, u.SignedBytes(groupID), rand)
	if err != nil {
		return nil, err
	}
	return crypto.EncodeSignature(g, sig), nil
}

// RosterDigest returns the hash-chain head authenticating the current
// roster version: the genesis digest for Version 0, or the digest of
// the update that produced this version.
func (d *Definition) RosterDigest() [32]byte {
	if d.rosterSet {
		return d.rosterDigest
	}
	gid := d.GroupID()
	var dig [32]byte
	copy(dig[:], crypto.Hash("dissent/roster-genesis", gid[:]))
	return dig
}

// VerifyRosterUpdate checks an update against this definition: the
// version must follow ours, the chain digest must match, the delta must
// be well formed, and every server must have signed.
func (d *Definition) VerifyRosterUpdate(u *RosterUpdate) error {
	if u.Version != d.Version+1 {
		return fmt.Errorf("group: roster update version %d, want %d (stale or future)", u.Version, d.Version+1)
	}
	if u.PrevDigest != d.RosterDigest() {
		return errors.New("group: roster update chains from a different roster")
	}
	if len(u.Sigs) != len(d.Servers) {
		return fmt.Errorf("group: roster update has %d signatures, want %d", len(u.Sigs), len(d.Servers))
	}
	g := d.Group()
	removed := make(map[NodeID]bool, len(u.Remove))
	for _, id := range u.Remove {
		if removed[id] {
			return fmt.Errorf("group: duplicate removal of %s", id)
		}
		removed[id] = true
		if ci := d.ClientIndex(id); ci < 0 {
			return fmt.Errorf("group: removal of unknown client %s", id)
		}
	}
	admitted := make(map[NodeID]bool, len(u.Admit))
	for _, m := range u.Admit {
		pub, err := g.Decode(m.PubKey)
		if err != nil {
			return fmt.Errorf("group: admitted key: %w", err)
		}
		id := IDFromKey(g, pub)
		if admitted[id] {
			return fmt.Errorf("group: duplicate admission of %s", id)
		}
		admitted[id] = true
		if removed[id] {
			return fmt.Errorf("group: %s both admitted and removed", id)
		}
		if d.ServerIndex(id) >= 0 {
			return fmt.Errorf("group: cannot admit server %s as a client", id)
		}
		if d.ClientIndex(id) < 0 {
			// Brand-new member: it needs a pseudonym key to seed a slot.
			if len(m.PseuKey) == 0 {
				return fmt.Errorf("group: new member %s lacks a pseudonym key", id)
			}
			if _, err := g.Decode(m.PseuKey); err != nil {
				return fmt.Errorf("group: new member %s pseudonym key: %w", id, err)
			}
		}
	}
	return d.VerifyRosterUpdateSigs(u)
}

// VerifyRosterUpdateSigs checks only the certification signatures —
// one valid Schnorr signature per server over SignedBytes — without
// the version/digest chain. Mid-session joiners use it directly: they
// cannot replay the intermediate update chain, but the (static) server
// set still authenticates the transition that admits them.
func (d *Definition) VerifyRosterUpdateSigs(u *RosterUpdate) error {
	if len(u.Sigs) != len(d.Servers) {
		return fmt.Errorf("group: roster update has %d signatures, want %d", len(u.Sigs), len(d.Servers))
	}
	g := d.Group()
	signed := u.SignedBytes(d.GroupID())
	for j, srv := range d.Servers {
		sig, err := crypto.DecodeSignature(g, u.Sigs[j])
		if err != nil {
			return fmt.Errorf("group: roster sig %d: %w", j, err)
		}
		if err := crypto.Verify(g, srv.PubKey, RosterSignContext, signed, sig); err != nil {
			return fmt.Errorf("group: roster sig %d: %w", j, err)
		}
	}
	return nil
}

// ApplyRosterUpdate verifies u and returns the evolved definition at
// u.Version. The receiver is not mutated — engine replicas swap in the
// returned definition at the epoch boundary. Client indices are stable:
// removals mark members expelled in place, admissions of new members
// append, re-admissions clear the expelled flag.
func (d *Definition) ApplyRosterUpdate(u *RosterUpdate) (*Definition, error) {
	if err := d.VerifyRosterUpdate(u); err != nil {
		return nil, err
	}
	nd := *d
	nd.Clients = append([]Member(nil), d.Clients...)
	nd.Version = u.Version
	nd.genesisID, nd.genesisSet = d.GroupID(), true
	nd.rosterDigest, nd.rosterSet = u.Digest(nd.genesisID), true
	for _, id := range u.Remove {
		nd.Clients[nd.ClientIndex(id)].Expelled = true
	}
	g := d.Group()
	for _, m := range u.Admit {
		pub, err := g.Decode(m.PubKey)
		if err != nil {
			return nil, err
		}
		id := IDFromKey(g, pub)
		if ci := nd.ClientIndex(id); ci >= 0 {
			nd.Clients[ci].Expelled = false
		} else {
			nd.Clients = append(nd.Clients, Member{ID: id, PubKey: pub})
		}
	}
	return &nd, nil
}

// RebuildDefinition reconstructs a roster-evolved definition from a
// trusted snapshot: the genesis definition (obtained out of band) plus
// the full current client key list, expulsion flags, version, and
// roster digest — the mid-session joiner's path, which cannot replay
// the intermediate update chain. The genesis clients must survive as a
// prefix (indices are stable across churn), which guards against a
// snapshot for a different group.
func RebuildDefinition(genesis *Definition, version uint64, digest [32]byte, clientKeys [][]byte, expelled []bool) (*Definition, error) {
	if len(clientKeys) != len(expelled) {
		return nil, errors.New("group: snapshot shape mismatch")
	}
	if len(clientKeys) < len(genesis.Clients) {
		return nil, errors.New("group: snapshot roster smaller than genesis")
	}
	g := genesis.Group()
	nd := *genesis
	nd.Clients = make([]Member, len(clientKeys))
	for i, raw := range clientKeys {
		pub, err := g.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("group: snapshot client %d key: %w", i, err)
		}
		nd.Clients[i] = Member{ID: IDFromKey(g, pub), PubKey: pub, Expelled: expelled[i]}
	}
	for i, m := range genesis.Clients {
		if nd.Clients[i].ID != m.ID {
			return nil, fmt.Errorf("group: snapshot client %d does not match genesis", i)
		}
	}
	nd.Version = version
	nd.genesisID, nd.genesisSet = genesis.GroupID(), true
	nd.rosterDigest, nd.rosterSet = digest, true
	return &nd, nil
}

// ActiveClients counts clients not currently expelled from the roster.
func (d *Definition) ActiveClients() int {
	n := 0
	for _, m := range d.Clients {
		if !m.Expelled {
			n++
		}
	}
	return n
}
