package cli

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"dissent/internal/crypto"
	"dissent/internal/group"
	"dissent/internal/transport"
)

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test()
	kp, _ := crypto.GenerateKeyPair(keyGrp, nil)
	mkp, _ := crypto.GenerateKeyPair(msgGrp, nil)

	path := filepath.Join(dir, "server.key")
	err := WriteKeyFile(path, KeyFile{
		Role:       "server",
		Private:    kp.Private.Text(16),
		Public:     hex.EncodeToString(keyGrp.Encode(kp.Public)),
		MsgPrivate: mkp.Private.Text(16),
		MsgPublic:  hex.EncodeToString(msgGrp.Encode(mkp.Public)),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, gotMsg, err := LoadKeyFile(path, msgGrp)
	if err != nil {
		t.Fatal(err)
	}
	if !keyGrp.Equal(got.Public, kp.Public) {
		t.Error("identity key changed")
	}
	if gotMsg == nil || !msgGrp.Equal(gotMsg.Public, mkp.Public) {
		t.Error("message key changed")
	}
	// Client-style load (no message group).
	got2, gotMsg2, err := LoadKeyFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got2 == nil || gotMsg2 != nil {
		t.Error("nil msg group should skip the message key")
	}
}

func TestLoadKeyFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadKeyFile(filepath.Join(dir, "missing.key"), nil); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.key")
	if err := WriteKeyFile(bad, KeyFile{Private: "zz-not-hex"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadKeyFile(bad, nil); err == nil {
		t.Error("bad private key accepted")
	}
}

func TestRosterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	keyGrp := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(keyGrp, nil)
	id := group.IDFromKey(keyGrp, kp.Public)
	roster := transport.Roster{id: "127.0.0.1:7000"}
	path := filepath.Join(dir, "roster.json")
	if err := WriteRoster(path, roster); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[id] != "127.0.0.1:7000" {
		t.Errorf("roster round trip: %v", got)
	}
}

func TestLoadGroup(t *testing.T) {
	dir := t.TempDir()
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test()
	var sKeys, sMsgKeys, cKeys []crypto.Element
	for i := 0; i < 2; i++ {
		kp, _ := crypto.GenerateKeyPair(keyGrp, nil)
		mkp, _ := crypto.GenerateKeyPair(msgGrp, nil)
		sKeys = append(sKeys, kp.Public)
		sMsgKeys = append(sMsgKeys, mkp.Public)
	}
	for i := 0; i < 3; i++ {
		kp, _ := crypto.GenerateKeyPair(keyGrp, nil)
		cKeys = append(cKeys, kp.Public)
	}
	policy := group.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	def, err := group.NewDefinition("cli-test", sKeys, sMsgKeys, cKeys, policy)
	if err != nil {
		t.Fatal(err)
	}
	data, err := def.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "group.json")
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGroup(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GroupID() != def.GroupID() {
		t.Error("group ID changed through file round trip")
	}
	if _, err := LoadGroup(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing group accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
