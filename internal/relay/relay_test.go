package relay

import (
	"bytes"
	"testing"
	"time"

	"dissent/internal/simnet"
)

func testCircuit(t *testing.T) *Circuit {
	t.Helper()
	hops := make([]Hop, 3)
	for i := range hops {
		hops[i] = Hop{
			Link:   simnet.Link{Latency: 50 * time.Millisecond, Bandwidth: simnet.Mbps(10)},
			Uplink: &simnet.Uplink{Bandwidth: simnet.Mbps(10)},
		}
	}
	c, err := NewCircuit(hops, simnet.Link{Latency: 30 * time.Millisecond, Bandwidth: simnet.Mbps(50)}, 512)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSealUnsealLayers(t *testing.T) {
	c := testCircuit(t)
	payload := []byte("GET / HTTP/1.1")
	padded := make([]byte, c.wireBytes(len(payload)))
	copy(padded, payload)
	sealed := c.Seal(padded)
	if bytes.Equal(sealed, padded) {
		t.Fatal("sealing did not change the payload")
	}
	for i := 0; i < 3; i++ {
		c.Unseal(i, sealed)
	}
	if !bytes.Equal(sealed, padded) {
		t.Fatal("stripping all layers did not recover the payload")
	}
}

func TestCellPadding(t *testing.T) {
	c := testCircuit(t)
	cases := []struct{ n, want int }{
		{0, 512}, {1, 512}, {512, 512}, {513, 1024}, {2000, 2048},
	}
	for _, tc := range cases {
		if got := c.wireBytes(tc.n); got != tc.want {
			t.Errorf("wireBytes(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestRoundTripLatencyFloor(t *testing.T) {
	c := testCircuit(t)
	net := simnet.New(time.Unix(0, 0))
	var doneAt time.Time
	c.RoundTrip(net, 200, 10_000, 20*time.Millisecond, func(at time.Time) { doneAt = at })
	net.Run(0)
	if doneAt.IsZero() {
		t.Fatal("round trip never completed")
	}
	// Lower bound: 2x (3 hop latencies + exit latency) + origin delay =
	// 2*(150+30)ms + 20ms = 380ms.
	elapsed := doneAt.Sub(time.Unix(0, 0))
	if elapsed < 380*time.Millisecond {
		t.Errorf("round trip %v below propagation floor", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("round trip %v implausibly slow", elapsed)
	}
}

func TestRoundTripBandwidthMatters(t *testing.T) {
	fast := testCircuit(t)
	slowHops := make([]Hop, 3)
	for i := range slowHops {
		slowHops[i] = Hop{
			Link:   simnet.Link{Latency: 50 * time.Millisecond, Bandwidth: simnet.Mbps(0.5)},
			Uplink: &simnet.Uplink{Bandwidth: simnet.Mbps(0.5)},
		}
	}
	slow, _ := NewCircuit(slowHops, simnet.Link{Latency: 30 * time.Millisecond, Bandwidth: simnet.Mbps(50)}, 512)

	run := func(c *Circuit) time.Duration {
		net := simnet.New(time.Unix(0, 0))
		var doneAt time.Time
		c.RoundTrip(net, 200, 500_000, 0, func(at time.Time) { doneAt = at })
		net.Run(0)
		return doneAt.Sub(time.Unix(0, 0))
	}
	if run(slow) <= run(fast) {
		t.Error("slow circuit not slower than fast circuit for a bulk response")
	}
}

func TestRelayContention(t *testing.T) {
	// Two circuits sharing the same relays contend on uplinks: two
	// concurrent bulk transfers must take longer than one.
	c := testCircuit(t)
	one := func(k int) time.Duration {
		net := simnet.New(time.Unix(0, 0))
		var last time.Time
		for i := 0; i < k; i++ {
			c.RoundTrip(net, 200, 2_000_000, 0, func(at time.Time) {
				if at.After(last) {
					last = at
				}
			})
		}
		net.Run(0)
		return last.Sub(time.Unix(0, 0))
	}
	t1 := one(1)
	// Fresh circuit for fair state.
	c = testCircuit(t)
	t2 := one(2)
	if t2 <= t1 {
		t.Errorf("2 concurrent transfers (%v) not slower than 1 (%v)", t2, t1)
	}
}

func TestNetworkBuildCircuit(t *testing.T) {
	n := NewNetwork(DefaultTorParams())
	c, err := n.BuildCircuit(40 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hops) != 3 {
		t.Fatalf("circuit has %d hops, want 3", len(c.Hops))
	}
	p := DefaultTorParams()
	for _, h := range c.Hops {
		if h.Link.Latency < p.LatencyMin || h.Link.Latency > p.LatencyMax {
			t.Errorf("hop latency %v outside configured range", h.Link.Latency)
		}
	}
}

func TestNetworkTooSmall(t *testing.T) {
	n := NewNetwork(NetworkParams{Relays: 2, LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond})
	if _, err := n.BuildCircuit(0); err == nil {
		t.Error("circuit built from a 2-relay pool")
	}
}
