// Package relay implements an onion-routing baseline — a small
// Tor-like circuit simulator used as the comparison point in the
// paper's web-browsing evaluation (Figures 10–11). It is deliberately
// minimal: three-hop circuits, layered AES sealing, store-and-forward
// relays over the simnet link model. The comparison needs a relaying
// anonymity system with realistic per-hop costs, not a full Tor.
package relay

import (
	"crypto/rand"
	"fmt"
	"io"
	mrand "math/rand"
	"time"

	"dissent/internal/crypto"
	"dissent/internal/simnet"
)

// Hop is one relay in a circuit.
type Hop struct {
	// Link models the path from the previous hop (or the client).
	Link simnet.Link
	// Uplink is the relay's access link, shared across circuits.
	Uplink *simnet.Uplink
	key    []byte
}

// Circuit is a three-hop (by convention) onion circuit. Payloads are
// sealed under one AES-CTR layer per hop; each relay strips its layer
// and forwards after serialization on its uplink.
type Circuit struct {
	Hops []Hop
	// Exit models the final leg: exit relay to the origin server.
	Exit simnet.Link
	// CellSize is the fixed relay cell granularity (Tor uses 512 B).
	CellSize int
}

// NewCircuit builds a circuit with per-hop keys.
func NewCircuit(hops []Hop, exit simnet.Link, cellSize int) (*Circuit, error) {
	if cellSize <= 0 {
		cellSize = 512
	}
	c := &Circuit{Hops: hops, Exit: exit, CellSize: cellSize}
	for i := range c.Hops {
		key := make([]byte, 32)
		if _, err := io.ReadFull(rand.Reader, key); err != nil {
			return nil, err
		}
		c.Hops[i].key = key
	}
	return c, nil
}

// Seal applies all hop layers (innermost = exit hop) to a payload —
// exercising the real cipher work a client performs per cell.
func (c *Circuit) Seal(payload []byte) []byte {
	out := append([]byte(nil), payload...)
	for i := len(c.Hops) - 1; i >= 0; i-- {
		crypto.NewAESPRNG(c.Hops[i].key).XORKeyStream(out, out)
	}
	return out
}

// Unseal strips layer i from a sealed payload in place.
func (c *Circuit) Unseal(i int, payload []byte) {
	crypto.NewAESPRNG(c.Hops[i].key).XORKeyStream(payload, payload)
}

// cells returns the number of fixed-size cells covering n bytes.
func (c *Circuit) cells(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + c.CellSize - 1) / c.CellSize
}

// wireBytes is the padded on-wire size of n payload bytes.
func (c *Circuit) wireBytes(n int) int { return c.cells(n) * c.CellSize }

// RoundTrip schedules a request/response exchange over the circuit on
// net, calling done with the completion time. reqLen travels outward
// through every hop; the origin "thinks" for originDelay; respLen
// travels back. Bytes are serialized on each relay's shared uplink, so
// concurrent circuits through a busy relay contend — the effect that
// gives relay systems their tail.
func (c *Circuit) RoundTrip(net *simnet.Network, reqLen, respLen int, originDelay time.Duration, done func(at time.Time)) {
	// Outward: client seals reqLen; each hop forwards.
	sealed := c.Seal(make([]byte, c.wireBytes(reqLen)))
	t := net.Now()
	for i := range c.Hops {
		hop := &c.Hops[i]
		t = t.Add(hop.Link.Latency).Add(hop.Link.TransferTime(len(sealed)))
		if hop.Uplink != nil {
			t = hop.Uplink.Reserve(t, len(sealed))
		}
		c.Unseal(i, sealed)
	}
	// Exit leg and origin processing.
	t = t.Add(c.Exit.Latency).Add(c.Exit.TransferTime(c.wireBytes(reqLen))).Add(originDelay)
	// Response: origin to exit, then back through the hops.
	resp := c.wireBytes(respLen)
	t = t.Add(c.Exit.Latency).Add(c.Exit.TransferTime(resp))
	for i := len(c.Hops) - 1; i >= 0; i-- {
		hop := &c.Hops[i]
		if hop.Uplink != nil {
			t = hop.Uplink.Reserve(t, resp)
		}
		t = t.Add(hop.Link.Latency).Add(hop.Link.TransferTime(resp))
	}
	net.Schedule(t, done)
}

// Network is a pool of relays from which circuits are drawn, standing
// in for the public Tor network's volunteer relays.
type Network struct {
	relays []relayNode
	rng    *mrand.Rand
}

type relayNode struct {
	link   simnet.Link
	uplink *simnet.Uplink
}

// NetworkParams sizes a relay pool.
type NetworkParams struct {
	Relays int
	// LatencyMin/Max bound per-hop WAN latencies.
	LatencyMin, LatencyMax time.Duration
	// RelayBandwidth is each relay's access-link bandwidth (bytes/s).
	RelayBandwidth float64
	Seed           int64
}

// DefaultTorParams models a 2012-era public relay path: wide-area
// hops of 30–120 ms and relays pushing a few megabits per second per
// client flow.
func DefaultTorParams() NetworkParams {
	return NetworkParams{
		Relays:         40,
		LatencyMin:     30 * time.Millisecond,
		LatencyMax:     120 * time.Millisecond,
		RelayBandwidth: simnet.Mbps(6),
		Seed:           1,
	}
}

// NewNetwork builds the relay pool.
func NewNetwork(p NetworkParams) *Network {
	rng := mrand.New(mrand.NewSource(p.Seed))
	n := &Network{rng: rng}
	for i := 0; i < p.Relays; i++ {
		span := p.LatencyMax - p.LatencyMin
		lat := p.LatencyMin + time.Duration(rng.Int63n(int64(span)+1))
		n.relays = append(n.relays, relayNode{
			link:   simnet.Link{Latency: lat, Bandwidth: p.RelayBandwidth},
			uplink: &simnet.Uplink{Bandwidth: p.RelayBandwidth},
		})
	}
	return n
}

// BuildCircuit samples a 3-hop circuit and an exit leg to an origin
// with the given latency.
func (n *Network) BuildCircuit(exitLatency time.Duration) (*Circuit, error) {
	if len(n.relays) < 3 {
		return nil, fmt.Errorf("relay: pool too small (%d)", len(n.relays))
	}
	idx := n.rng.Perm(len(n.relays))[:3]
	hops := make([]Hop, 3)
	for i, k := range idx {
		hops[i] = Hop{Link: n.relays[k].link, Uplink: n.relays[k].uplink}
	}
	exit := simnet.Link{Latency: exitLatency, Bandwidth: simnet.Mbps(50)}
	return NewCircuit(hops, exit, 512)
}
