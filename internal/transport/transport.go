// Package transport runs core engines over real TCP connections: the
// deployment path for cmd/dissentd and cmd/dissent. Frames are
// length-prefixed encoded Messages; identity and integrity come from
// the protocol-level signatures, so connections need no additional
// handshake. The same engines run unchanged under the discrete-event
// harness; this package supplies real time, real sockets, and a timer
// goroutine instead.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dissent/internal/core"
	"dissent/internal/group"
)

// maxFrame bounds a single message frame (a 128 KiB bulk slot plus
// generous protocol overhead).
const maxFrame = 64 << 20

// Roster maps node IDs to dialable addresses.
type Roster map[group.NodeID]string

// Node hosts one engine over TCP.
type Node struct {
	self   group.NodeID
	engine core.Engine
	roster Roster

	ln net.Listener

	mu      sync.Mutex
	conns   map[group.NodeID]*lockedConn
	inbound []net.Conn
	timer   *time.Timer
	timerAt time.Time
	closed  bool

	// OnDelivery and OnEvent observe engine outputs (called with the
	// node lock released).
	OnDelivery func(core.Delivery)
	OnEvent    func(core.Event)
	// OnError observes engine or transport errors.
	OnError func(error)

	wg sync.WaitGroup
}

// Listen starts a node: it binds addr, starts the engine, and serves
// until Close.
func Listen(self group.NodeID, addr string, roster Roster, engine core.Engine) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		self:   self,
		engine: engine,
		roster: roster,
		ln:     ln,
		conns:  make(map[group.NodeID]*lockedConn),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Start invokes the engine's Start and processes its output.
func (n *Node) Start() error {
	n.mu.Lock()
	out, err := n.engine.Start(time.Now())
	n.mu.Unlock()
	return n.process(out, err)
}

// InstallSchedule is invoked by callers performing trusted bootstrap
// (see core.Server.InstallSchedule); fn runs under the engine lock.
func (n *Node) WithEngine(fn func(e core.Engine) (*core.Output, error)) error {
	n.mu.Lock()
	out, err := fn(n.engine)
	n.mu.Unlock()
	return n.process(out, err)
}

// Close shuts the node down.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	if n.timer != nil {
		n.timer.Stop()
	}
	for _, c := range n.conns {
		c.close()
	}
	for _, c := range n.inbound {
		c.Close()
	}
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.inbound = append(n.inbound, conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(conn)
		}()
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !n.isClosed() {
				n.reportError(fmt.Errorf("transport: read: %w", err))
			}
			return
		}
		n.inject(msg)
	}
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// inject feeds one message to the engine.
func (n *Node) inject(msg *core.Message) {
	n.mu.Lock()
	out, err := n.engine.Handle(time.Now(), msg)
	n.mu.Unlock()
	if perr := n.process(out, err); perr != nil {
		n.reportError(perr)
	}
}

// process handles an engine output: transmissions, timer, callbacks.
func (n *Node) process(out *core.Output, err error) error {
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	for _, d := range out.Deliveries {
		if n.OnDelivery != nil {
			n.OnDelivery(d)
		}
	}
	for _, e := range out.Events {
		if n.OnEvent != nil {
			n.OnEvent(e)
		}
	}
	for _, env := range out.Send {
		if serr := n.send(env); serr != nil {
			n.reportError(serr)
		}
	}
	if !out.Timer.IsZero() {
		n.armTimer(out.Timer)
	}
	return nil
}

// armTimer keeps the earliest requested wakeup: engines request
// timers liberally (window close, hard deadline) and ticks are
// idempotent, so only the soonest pending one matters.
func (n *Node) armTimer(at time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if !n.timerAt.IsZero() && !at.Before(n.timerAt) {
		return // an earlier wakeup is already pending
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	if n.timer != nil {
		n.timer.Stop()
	}
	n.timerAt = at
	n.timer = time.AfterFunc(d, n.tick)
}

func (n *Node) tick() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.timerAt = time.Time{}
	out, err := n.engine.Tick(time.Now())
	n.mu.Unlock()
	if perr := n.process(out, err); perr != nil {
		n.reportError(perr)
	}
}

// lockedConn serializes frame writes through a dedicated writer
// goroutine: engine outputs from different reader goroutines would
// otherwise interleave partial frames, and synchronous writes from
// within read handlers could form distributed write-deadlocks when
// every node's TCP buffers fill simultaneously.
type lockedConn struct {
	c      net.Conn
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	err    error
}

func newLockedConn(c net.Conn) *lockedConn {
	lc := &lockedConn{c: c}
	lc.cond = sync.NewCond(&lc.mu)
	go lc.writeLoop()
	return lc
}

func (lc *lockedConn) writeLoop() {
	for {
		lc.mu.Lock()
		for len(lc.queue) == 0 && !lc.closed {
			lc.cond.Wait()
		}
		if lc.closed {
			lc.mu.Unlock()
			return
		}
		frame := lc.queue[0]
		lc.queue = lc.queue[1:]
		lc.mu.Unlock()
		if _, err := lc.c.Write(frame); err != nil {
			lc.mu.Lock()
			lc.err = err
			lc.closed = true
			lc.mu.Unlock()
			lc.c.Close()
			return
		}
	}
}

// enqueue queues one already-framed message; it reports any write
// error observed so far so callers can re-dial.
func (lc *lockedConn) enqueue(frame []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		if lc.err != nil {
			return lc.err
		}
		return errors.New("transport: connection closed")
	}
	lc.queue = append(lc.queue, frame)
	lc.cond.Signal()
	return nil
}

// close stops the writer goroutine and closes the socket.
func (lc *lockedConn) close() {
	lc.mu.Lock()
	lc.closed = true
	lc.cond.Broadcast()
	lc.mu.Unlock()
	lc.c.Close()
}

func (lc *lockedConn) writeFrame(msg *core.Message) error {
	body := core.EncodeMessage(msg)
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	return lc.enqueue(frame)
}

// send transmits one envelope, dialing (with retry) as needed.
func (n *Node) send(env core.Envelope) error {
	conn, err := n.conn(env.To)
	if err != nil {
		return err
	}
	if err := conn.writeFrame(env.Msg); err != nil {
		// Drop the cached connection and retry once on a fresh dial.
		n.dropConn(env.To)
		conn, err2 := n.conn(env.To)
		if err2 != nil {
			return err2
		}
		return conn.writeFrame(env.Msg)
	}
	return nil
}

func (n *Node) dropConn(to group.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.conns[to]; ok {
		c.close()
		delete(n.conns, to)
	}
}

func (n *Node) conn(to group.NodeID) (*lockedConn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.roster[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %s", to)
	}
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		conn, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(time.Duration(50*(attempt+1)) * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.conns[to]; ok {
		conn.Close()
		return existing, nil
	}
	lc := newLockedConn(conn)
	n.conns[to] = lc
	return lc, nil
}

func (n *Node) reportError(err error) {
	if n.OnError != nil {
		n.OnError(err)
	}
}

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, msg *core.Message) error {
	body := core.EncodeMessage(msg)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (*core.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrame {
		return nil, fmt.Errorf("transport: frame size %d out of range", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return core.DecodeMessage(body)
}
